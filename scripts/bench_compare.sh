#!/bin/sh
# bench_compare.sh [base.json] — run the full benchmark harness and gate
# it against a recorded baseline with cmd/benchcmp: any pinned hot-path
# benchmark whose bytes/op regresses >20% (beyond a small absolute slack)
# fails the script. This is the repo's benchstat-equivalent regression
# gate; `make bench-compare BASE=BENCH_PR2.json` runs the same thing.
set -eu
cd "$(dirname "$0")/.."
base="${1:-BENCH_PR2.json}"

if [ ! -f "$base" ]; then
  echo "bench_compare: baseline $base not found (record one with scripts/bench_baseline.sh $base)" >&2
  exit 2
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
echo "== benchmarks (full run, -benchmem) ==" >&2
go test -bench=. -benchmem -count=1 -timeout 60m . | tee "$tmp" >&2

echo "== bytes/op gate vs $base ==" >&2
go run ./cmd/benchcmp -base "$base" -new "$tmp"
