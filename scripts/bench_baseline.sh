#!/bin/sh
# bench_baseline.sh [out.json] — run the full benchmark harness
# (go test -bench=. -benchmem -count=1) and record the results as JSON:
# metadata plus one entry per benchmark line. Diff future runs against
# the committed BENCH_PR1.json to spot hot-path regressions.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_PR1.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -bench=. -benchmem -count=1 -timeout 60m . | tee "$tmp" >&2

{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "goos": "%s",\n' "$(go env GOOS)"
  printf '  "goarch": "%s",\n' "$(go env GOARCH)"
  printf '  "ncpu": %s,\n' "$(nproc 2>/dev/null || sysctl -n hw.ncpu)"
  printf '  "command": "go test -bench=. -benchmem -count=1",\n'
  printf '  "benchmarks": [\n'
  awk '/^Benchmark/ {
    gsub(/"/, "");
    line = $0;
    if (n++) printf ",\n";
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3;
    if (match(line, /[0-9.]+ B\/op/))  { v = substr(line, RSTART, RLENGTH); sub(/ B\/op/, "", v);  printf ", \"bytes_per_op\": %s", v }
    if (match(line, /[0-9]+ allocs\/op/)) { v = substr(line, RSTART, RLENGTH); sub(/ allocs\/op/, "", v); printf ", \"allocs_per_op\": %s", v }
    printf "}";
  }
  END { printf "\n" }' "$tmp"
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "baseline written to $out" >&2
