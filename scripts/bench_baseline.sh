#!/bin/sh
# bench_baseline.sh [out.json] — run the full benchmark harness
# (go test -bench=. -benchmem -count=1) and record the results as JSON:
# metadata plus one entry per benchmark line. Diff future runs against
# the committed BENCH_PR*.json with scripts/bench_compare.sh to spot
# hot-path regressions.
#
# The metadata records the *actual* run environment: ncpu is read from
# the machine the benchmarks executed on (not assumed), and when the
# machine has a single CPU the Serial/Parallel benchmark pairs are
# annotated as uninformative — on 1 CPU the parallel engine degenerates
# to the serial path plus scheduling overhead, so a "parallel is not
# faster" reading from such a file is a property of the recording host,
# not of the code (BENCH_PR1.json was recorded on 1 CPU).
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_PR1.json}"

ncpu="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
if [ "$ncpu" -gt 1 ]; then
  pairs_informative=true
  pairs_note="serial-vs-parallel pairs recorded on $ncpu CPUs"
else
  pairs_informative=false
  pairs_note="recorded on 1 CPU: Serial/Parallel benchmark pairs are uninformative (the parallel engine cannot beat serial without cores); compare ns/op for those pairs only on a multi-core host"
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -bench=. -benchmem -count=1 -timeout 60m . | tee "$tmp" >&2

{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "goos": "%s",\n' "$(go env GOOS)"
  printf '  "goarch": "%s",\n' "$(go env GOARCH)"
  printf '  "ncpu": %s,\n' "$ncpu"
  printf '  "parallel_pairs_informative": %s,\n' "$pairs_informative"
  printf '  "parallel_pairs_note": "%s",\n' "$pairs_note"
  printf '  "command": "go test -bench=. -benchmem -count=1",\n'
  printf '  "benchmarks": [\n'
  awk '/^Benchmark/ {
    gsub(/"/, "");
    line = $0;
    if (n++) printf ",\n";
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3;
    if (match(line, /[0-9.]+ B\/op/))  { v = substr(line, RSTART, RLENGTH); sub(/ B\/op/, "", v);  printf ", \"bytes_per_op\": %s", v }
    if (match(line, /[0-9]+ allocs\/op/)) { v = substr(line, RSTART, RLENGTH); sub(/ allocs\/op/, "", v); printf ", \"allocs_per_op\": %s", v }
    printf "}";
  }
  END { printf "\n" }' "$tmp"
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "baseline written to $out (ncpu=$ncpu, parallel pairs informative: $pairs_informative)" >&2
