#!/bin/sh
# bench_baseline.sh [out.json] — run the full benchmark harness
# (go test -bench=. -benchmem -count=1) and record the results as JSON:
# metadata plus one entry per benchmark line. Diff future runs against
# the committed BENCH_PR*.json with scripts/bench_compare.sh or
# cmd/benchcmp to spot hot-path regressions.
#
# The metadata records the *actual* run environment — ncpu, GOMAXPROCS,
# the parallel engine's worker count and its chunk/tuner configuration —
# because a baseline is only comparable to runs from a similar machine:
#
#   - bytes/op is deterministic and compares across any pair of hosts;
#   - ns/op and the custom throughput metrics (evals/sec, sims/sec from
#     b.ReportMetric) only mean something between multi-core hosts, so
#     cmd/benchcmp gates them only when both sides report ncpu > 1;
#   - when the machine has a single CPU the Serial/Parallel benchmark
#     pairs are annotated as uninformative — on 1 CPU the parallel engine
#     degenerates to the serial path plus scheduling overhead, so a
#     "parallel is not faster" reading from such a file is a property of
#     the recording host, not of the code (BENCH_PR1.json and
#     BENCH_PR6.json were recorded on 1 CPU).
#
# Each benchmark entry carries ns_per_op, bytes_per_op, allocs_per_op and
# a "metrics" object with any custom b.ReportMetric units on the line.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_PR1.json}"

ncpu="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
gomaxprocs="${GOMAXPROCS:-$ncpu}"
if [ "$ncpu" -gt 1 ]; then
  pairs_informative=true
  pairs_note="serial-vs-parallel pairs recorded on $ncpu CPUs"
else
  pairs_informative=false
  pairs_note="recorded on 1 CPU: Serial/Parallel benchmark pairs are uninformative (the parallel engine cannot beat serial without cores); compare ns/op for those pairs only on a multi-core host"
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -bench=. -benchmem -count=1 -timeout 60m . | tee "$tmp" >&2

{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "goos": "%s",\n' "$(go env GOOS)"
  printf '  "goarch": "%s",\n' "$(go env GOARCH)"
  printf '  "ncpu": %s,\n' "$ncpu"
  printf '  "gomaxprocs": %s,\n' "$gomaxprocs"
  printf '  "parallel_workers": %s,\n' "$gomaxprocs"
  printf '  "chunk_config": {"mc_chunk": 4096, "defect_sim_chunk": 1024, "sweep_unit_chunk": 16, "tuner_target_task_seconds": 0.0005},\n'
  printf '  "parallel_pairs_informative": %s,\n' "$pairs_informative"
  printf '  "parallel_pairs_note": "%s",\n' "$pairs_note"
  printf '  "command": "go test -bench=. -benchmem -count=1",\n'
  printf '  "benchmarks": [\n'
  awk '/^Benchmark/ {
    gsub(/"/, "");
    if (n++) printf ",\n";
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3;
    metrics = "";
    for (i = 5; i + 1 <= NF; i += 2) {
      v = $i; u = $(i+1);
      if (u == "B/op")            printf ", \"bytes_per_op\": %s", v;
      else if (u == "allocs/op")  printf ", \"allocs_per_op\": %s", v;
      else if (index(u, "/") > 0) metrics = metrics (metrics == "" ? "" : ", ") "\"" u "\": " v;
    }
    if (metrics != "") printf ", \"metrics\": {%s}", metrics;
    printf "}";
  }
  END { printf "\n" }' "$tmp"
  printf '  ]\n'
  printf '}\n'
} > "$out"
echo "baseline written to $out (ncpu=$ncpu, GOMAXPROCS=$gomaxprocs, parallel pairs informative: $pairs_informative)" >&2
