#!/bin/sh
# check.sh — the repository's verification gate: vet, build, race-enabled
# tests, and a one-iteration benchmark smoke so a broken benchmark fails
# fast. Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ==" >&2
go vet ./...

echo "== go build ==" >&2
go build ./...

echo "== go test -race ==" >&2
go test -race ./...

echo "== serve smoke (short, race-enabled) ==" >&2
go test -race -short -count=1 ./internal/serve/ ./cmd/nanocostd/

echo "== obs conformance (registry, tracing, exposition; race-enabled) ==" >&2
go test -race -count=1 ./internal/obs/
go test -race -count=1 -run 'TestMetricsExpositionConformance|TestTrace|TestRequestID|TestAccessLog|TestStreamedStatus' ./internal/serve/

echo "== bench smoke (1 iteration each) ==" >&2
go test -run xxx -bench=. -benchtime=1x .

# Memory-regression gate: compare the smoke run's bytes/op against the
# recorded baseline with cmd/benchcmp (the repo's benchstat stand-in).
# A pinned hot-path benchmark regressing >20% bytes/op fails the check;
# ns/op from a 1x smoke run is noise, so only allocation data is gated.
# For the full-fidelity version run `make bench-compare BASE=BENCH_PR2.json`.
base="BENCH_PR2.json"
if [ -f "$base" ]; then
  echo "== bytes/op gate vs $base ==" >&2
  go test -run xxx -bench=. -benchtime=1x -benchmem . | go run ./cmd/benchcmp -base "$base"
else
  echo "== bytes/op gate skipped ($base not recorded yet) ==" >&2
fi

echo "check: all gates passed" >&2
