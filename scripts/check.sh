#!/bin/sh
# check.sh — the repository's verification gate: vet, build, race-enabled
# tests, and a one-iteration benchmark smoke so a broken benchmark fails
# fast. Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ==" >&2
go vet ./...

echo "== go build ==" >&2
go build ./...

echo "== go test -race ==" >&2
go test -race ./...

echo "== bench smoke (1 iteration each) ==" >&2
go test -run xxx -bench=. -benchtime=1x .

echo "check: all gates passed" >&2
