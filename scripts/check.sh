#!/bin/sh
# check.sh — the repository's verification gate: vet, build, race-enabled
# tests, and a one-iteration benchmark smoke so a broken benchmark fails
# fast. Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ==" >&2
go vet ./...

echo "== go build ==" >&2
go build ./...

echo "== go test -race ==" >&2
go test -race ./...

echo "== serve smoke (short, race-enabled) ==" >&2
go test -race -short -count=1 ./internal/serve/ ./cmd/nanocostd/

echo "== /v1/batch at 1024 items under -race (pooled-scratch contract) ==" >&2
go test -race -count=1 -run 'TestBatchFullCapacityReusesScratch|TestBatchConcurrentFullCapacity' ./internal/serve/

echo "== obs conformance (registry, tracing, exposition; race-enabled) ==" >&2
go test -race -count=1 ./internal/obs/
go test -race -count=1 -run 'TestMetricsExpositionConformance|TestTrace|TestRequestID|TestAccessLog|TestStreamedStatus' ./internal/serve/

echo "== bench smoke (1 iteration each) ==" >&2
go test -run xxx -bench=. -benchtime=1x .

# Regression gate: compare the smoke run against the most recent recorded
# baseline with cmd/benchcmp (the repo's benchstat stand-in). bytes/op is
# gated unconditionally (allocation counts are deterministic); ns/op and
# the custom throughput metrics (evals/sec, sims/sec) are gated by
# benchcmp only when both the baseline and this host are multi-core —
# wall-clock from a 1x smoke run on a single-core box is noise, and
# benchcmp knows to skip it. For the full-fidelity version run
# `make bench-compare BASE=BENCH_PR6.json`.
base=""
for candidate in BENCH_PR6.json BENCH_PR2.json; do
  if [ -f "$candidate" ]; then base="$candidate"; break; fi
done
if [ -n "$base" ]; then
  echo "== benchmark gate (bytes/op always; ns/op + metrics on multi-core) vs $base ==" >&2
  go test -run xxx -bench=. -benchtime=1x -benchmem . | go run ./cmd/benchcmp -base "$base"
else
  echo "== benchmark gate skipped (no baseline recorded yet) ==" >&2
fi

echo "== router SLO gate (nanocostfront + 2 replicas + loadgen, kill -9 mid-load) ==" >&2
./scripts/slo_check.sh

echo "== distributed-job gate (2 replicas, kill -9 worker mid-job, byte-identical merge) ==" >&2
./scripts/distjob_check.sh

echo "check: all gates passed" >&2
