#!/bin/sh
# smoke_serve.sh — end-to-end daemon smoke test: build nanocostd, boot it
# on an ephemeral port, hit /healthz and /v1/cost, require the eq (6) pole
# to answer 400 out_of_domain, round-trip /v1/batch against the individual
# endpoint, stream a sweep as NDJSON, revalidate a figure ETag, follow an
# X-Trace-Id to its /debug/trace span tree, check the X-Request-Id error
# envelope contract and the opt-in pprof listener, run a sharded
# simulation job through /v1/jobs (including a kill -9 mid-job and a
# checkpoint resume whose result must be byte-identical to an
# uninterrupted run), follow a job's event timeline and require a
# cancelled job's NDJSON event stream to end with the cancelled event,
# route one traced request through nanocostfront and require the
# router's federated /debug/trace view to hold both processes' spans,
# then deliver SIGTERM and verify the process drains and exits cleanly.
set -eu
cd "$(dirname "$0")/.."

command -v curl >/dev/null 2>&1 || { echo "smoke_serve: curl not found" >&2; exit 1; }

workdir=$(mktemp -d)
bin="$workdir/nanocostd"
log="$workdir/nanocostd.log"
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  [ -n "${jpid:-}" ] && kill -9 "$jpid" 2>/dev/null || true
  [ -n "${fpid:-}" ] && kill -9 "$fpid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# wait_addr LOGFILE PID: poll LOGFILE for the daemon's bound address.
wait_addr() {
  wa_log=$1; wa_pid=$2; wa_addr=""
  i=0
  while [ $i -lt 100 ]; do
    wa_addr=$(sed -n 's/.*nanocostd listening.*addr=\([^ ]*\).*/\1/p' "$wa_log" | head -n 1)
    [ -n "$wa_addr" ] && break
    kill -0 "$wa_pid" 2>/dev/null || { echo "smoke_serve: daemon died during startup:" >&2; cat "$wa_log" >&2; exit 1; }
    i=$((i + 1))
    sleep 0.1
  done
  [ -n "$wa_addr" ] || { echo "smoke_serve: no listen address in log:" >&2; cat "$wa_log" >&2; exit 1; }
  echo "$wa_addr"
}

echo "== build nanocostd ==" >&2
go build -o "$bin" ./cmd/nanocostd

"$bin" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -job-dir "$workdir/jobsA" 2>"$log" &
pid=$!

# The daemon logs its bound address ("nanocostd listening ... addr=HOST:PORT")
# once the listener is up; poll for it rather than racing a fixed sleep.
addr=$(wait_addr "$log" "$pid")
echo "== daemon up at $addr ==" >&2

echo "== /healthz ==" >&2
health=$(curl -sf "http://$addr/healthz")
echo "$health" | grep -q '"status":"ok"' || { echo "smoke_serve: bad healthz: $health" >&2; exit 1; }

echo "== /v1/cost (valid scenario) ==" >&2
body='{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":5000}'
cost=$(curl -sf -X POST -d "$body" "http://$addr/v1/cost")
echo "$cost" | grep -q '"breakdown"' || { echo "smoke_serve: bad cost response: $cost" >&2; exit 1; }

echo "== /v1/cost (s_d at the eq (6) pole -> 400 out_of_domain) ==" >&2
bad='{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":90},"wafers":5000}'
status=$(curl -s -o "$workdir/pole.json" -w '%{http_code}' -X POST -d "$bad" "http://$addr/v1/cost")
[ "$status" = "400" ] || { echo "smoke_serve: pole request got HTTP $status, want 400" >&2; exit 1; }
grep -q '"out_of_domain"' "$workdir/pole.json" || { echo "smoke_serve: pole response lacks out_of_domain: $(cat "$workdir/pole.json")" >&2; exit 1; }

echo "== /v1/batch (item bytes == individual call bytes) ==" >&2
batch_req='{"items":[{"kind":"cost","body":'"$body"'},{"kind":"cost","body":'"$bad"'},{"kind":"designcost","body":{"transistors":10e6,"sd":300}}]}'
batch=$(curl -sf -X POST -d "$batch_req" "http://$addr/v1/batch")
echo "$batch" | grep -q '"count":3' || { echo "smoke_serve: batch count wrong: $batch" >&2; exit 1; }
# Item 0 must embed exactly the bytes the single endpoint answers (modulo
# its trailing newline); item 1 is the pole and must carry its own error
# envelope inside a 200 batch.
single=$(printf '%s' "$cost")
case "$batch" in
  *"$single"*) : ;;
  *) echo "smoke_serve: batch item 0 differs from individual /v1/cost bytes" >&2; exit 1 ;;
esac
echo "$batch" | grep -q '"status":400' || { echo "smoke_serve: batch did not isolate the pole item: $batch" >&2; exit 1; }
echo "$batch" | grep -q '"out_of_domain"' || { echo "smoke_serve: batch pole item lacks out_of_domain: $batch" >&2; exit 1; }

echo "== /v1/batch throughput (1024 items, timed) ==" >&2
big_req="$workdir/batch1024.json"
awk 'BEGIN {
  printf "{\"items\":[";
  for (i = 0; i < 1024; i++) {
    if (i) printf ",";
    printf "{\"kind\":\"cost\",\"body\":{\"process\":{\"lambda_um\":0.18,\"yield\":0.4},\"design\":{\"transistors\":10e6,\"sd\":%d},\"wafers\":5000}}", 150 + i % 600;
  }
  printf "]}";
}' > "$big_req"
elapsed=$(curl -sf -o "$workdir/batch1024_resp.json" -w '%{time_total}' -X POST --data-binary @"$big_req" "http://$addr/v1/batch") \
  || { echo "smoke_serve: 1024-item batch request failed" >&2; exit 1; }
grep -q '"count":1024' "$workdir/batch1024_resp.json" || { echo "smoke_serve: 1024-item batch count wrong: $(head -c 200 "$workdir/batch1024_resp.json")" >&2; exit 1; }
rate=$(awk -v t="$elapsed" 'BEGIN { if (t > 0) printf "%.0f", 1024 / t; else printf "inf" }')
echo "smoke_serve: 1024-item batch served in ${elapsed}s (~${rate} evals/sec)" >&2
# The batch must show up in the telemetry: the per-item outcome counter
# covers every item sent so far (1024 + the 2 ok / 1 error from the
# mixed batch above), and the worker-pool chunk histograms must have
# observed tasks — the pooled batch path runs on the chunked engine.
metrics_now=$(curl -sf "http://$addr/metrics")
ok_items=$(echo "$metrics_now" | awk '$1 == "nanocostd_batch_items_total{outcome=\"ok\"}" { print $2 }')
[ -n "$ok_items" ] || { echo "smoke_serve: /metrics lacks nanocostd_batch_items_total{outcome=\"ok\"}" >&2; exit 1; }
[ "${ok_items%.*}" -ge 1024 ] || { echo "smoke_serve: batch ok-item counter = $ok_items, want >= 1024" >&2; exit 1; }
for hist in nanocostd_pool_chunk_wait_seconds nanocostd_pool_chunk_exec_seconds; do
  cnt=$(echo "$metrics_now" | awk -v h="${hist}_count" '$1 == h { print $2 }')
  [ -n "$cnt" ] && [ "${cnt%.*}" -gt 0 ] || { echo "smoke_serve: $hist histogram did not move (count=$cnt)" >&2; exit 1; }
done

echo "== /v1/sweep NDJSON streaming ==" >&2
sweep_req='{"scenario":'"$body"',"variable":"sd","lo":200,"hi":2000,"points":64}'
lines=$(curl -sfN -H 'Accept: application/x-ndjson' -X POST -d "$sweep_req" "http://$addr/v1/sweep" | wc -l)
[ "$lines" -eq 64 ] || { echo "smoke_serve: streamed sweep produced $lines lines, want 64" >&2; exit 1; }

echo "== X-Trace-Id -> /debug/trace span tree ==" >&2
trace_id="cafe0123456789abcdef0123456789ab"
curl -sf -H "X-Trace-Id: $trace_id" -X POST -d "$body" "http://$addr/v1/cost" >/dev/null
trace=$(curl -sf "http://$addr/debug/trace/$trace_id")
echo "$trace" | grep -q '"serve.request"' || { echo "smoke_serve: trace lacks serve.request root: $trace" >&2; exit 1; }
echo "$trace" | grep -q '"core.eval"' || { echo "smoke_serve: trace lacks core.eval child: $trace" >&2; exit 1; }

echo "== federated trace across nanocostfront ==" >&2
go build -o "$workdir/nanocostfront" ./cmd/nanocostfront
flog="$workdir/front.log"
"$workdir/nanocostfront" -addr 127.0.0.1:0 -replicas "$addr" 2>"$flog" &
fpid=$!
faddr=""
i=0
while [ $i -lt 100 ]; do
  faddr=$(sed -n 's/.*nanocostfront listening.*addr=\([^ ]*\).*/\1/p' "$flog" | head -n 1)
  [ -n "$faddr" ] && break
  kill -0 "$fpid" 2>/dev/null || { echo "smoke_serve: router died during startup:" >&2; cat "$flog" >&2; exit 1; }
  i=$((i + 1))
  sleep 0.1
done
[ -n "$faddr" ] || { echo "smoke_serve: no router listen address in log:" >&2; cat "$flog" >&2; exit 1; }
fed_id="feedface0123456789abcdef01234567"
curl -sf -H "X-Trace-Id: $fed_id" -X POST -d "$body" "http://$faddr/v1/cost" >/dev/null
fed=$(curl -sf "http://$faddr/debug/trace/$fed_id")
# One tree, spans from both processes: the router's root and hop span
# plus the replica's serve.request subtree fetched over federation.
for name in front.request front.attempt serve.request; do
  echo "$fed" | grep -q "\"$name\"" || { echo "smoke_serve: federated trace lacks $name span: $fed" >&2; exit 1; }
done
echo "$fed" | grep -q '"partial":true' && { echo "smoke_serve: federated trace flagged partial with the replica alive: $fed" >&2; exit 1; }
kill -TERM "$fpid"
rc=0
wait "$fpid" || rc=$?
fpid=""
[ "$rc" -eq 0 ] || { echo "smoke_serve: router exited with status $rc after SIGTERM:" >&2; cat "$flog" >&2; exit 1; }

echo "== X-Request-Id header/body match on a 400 ==" >&2
hdrs="$workdir/err_headers.txt"
status=$(curl -s -D "$hdrs" -o "$workdir/err.json" -w '%{http_code}' -X POST -d '{"bogus":true}' "http://$addr/v1/cost")
[ "$status" = "400" ] || { echo "smoke_serve: malformed body got HTTP $status, want 400" >&2; exit 1; }
req_id=$(sed -n 's/^[Xx]-[Rr]equest-[Ii]d: *//p' "$hdrs" | tr -d '\r')
[ -n "$req_id" ] || { echo "smoke_serve: 400 response carries no X-Request-Id" >&2; exit 1; }
grep -q "\"request_id\":\"$req_id\"" "$workdir/err.json" || { echo "smoke_serve: error body request_id != header $req_id: $(cat "$workdir/err.json")" >&2; exit 1; }

echo "== /metrics exposes span and runtime families ==" >&2
metrics=$(curl -sf "http://$addr/metrics")
for family in nanocostd_span_seconds go_goroutines nanocostd_pool_chunk_exec_seconds; do
  echo "$metrics" | grep -q "^# TYPE $family " || { echo "smoke_serve: /metrics lacks family $family" >&2; exit 1; }
done

echo "== pprof on the -debug-addr listener ==" >&2
debug_addr=$(sed -n 's/.*nanocostd debug listening.*addr=\([^ ]*\).*/\1/p' "$log" | head -n 1)
[ -n "$debug_addr" ] || { echo "smoke_serve: no debug listen address in log:" >&2; cat "$log" >&2; exit 1; }
curl -sf "http://$debug_addr/debug/pprof/" >/dev/null || { echo "smoke_serve: pprof index unreachable at $debug_addr" >&2; exit 1; }
# The profiler must stay off the service address.
status=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/pprof/")
[ "$status" = "404" ] || { echo "smoke_serve: service address serves pprof (HTTP $status), want 404" >&2; exit 1; }

echo "== /v1/figures/4 ETag revalidation ==" >&2
etag=$(curl -sf -D - -o /dev/null "http://$addr/v1/figures/4" | sed -n 's/^[Ee][Tt]ag: *//p' | tr -d '\r')
[ -n "$etag" ] || { echo "smoke_serve: figure response carries no ETag" >&2; exit 1; }
status=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" "http://$addr/v1/figures/4")
[ "$status" = "304" ] || { echo "smoke_serve: If-None-Match revalidation got HTTP $status, want 304" >&2; exit 1; }

echo "== /v1/jobs: 2x10^8-trial sharded defect job with progress ==" >&2
job_spec='{"kind":"defect","trials":200000000,"shards":64,"seed":77,"checkpoint":true,"defect":{"lambda":1.1,"alpha":2}}'
submit=$(curl -sf -X POST -d "$job_spec" "http://$addr/v1/jobs")
job_id=$(echo "$submit" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p')
[ -n "$job_id" ] || { echo "smoke_serve: job submit returned no id: $submit" >&2; exit 1; }
i=0
state=""
while [ $i -lt 600 ]; do
  st=$(curl -sf "http://$addr/v1/jobs/$job_id")
  state=$(echo "$st" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [ "$state" != "running" ] && break
  i=$((i + 1))
  sleep 0.1
done
[ "$state" = "done" ] || { echo "smoke_serve: reference job ended in state '$state': $st" >&2; exit 1; }
echo "$st" | grep -q '"shards_done":64' || { echo "smoke_serve: reference job progress wrong: $st" >&2; exit 1; }
echo "$st" | grep -q '"trials_per_sec":' || { echo "smoke_serve: reference job reports no throughput: $st" >&2; exit 1; }
curl -sf "http://$addr/v1/jobs/$job_id/result" > "$workdir/job_ref.json"
grep -q '"trials":200000000' "$workdir/job_ref.json" || { echo "smoke_serve: bad job result: $(head -c 200 "$workdir/job_ref.json")" >&2; exit 1; }
# The job families must have moved in the telemetry.
metrics_now=$(curl -sf "http://$addr/metrics")
echo "$metrics_now" | grep -q 'nanocostd_jobs_total{state="completed"} [1-9]' || { echo "smoke_serve: jobs_total{completed} did not move" >&2; exit 1; }
shard_count=$(echo "$metrics_now" | awk '$1 == "nanocostd_job_shard_seconds_count" { print $2 }')
[ -n "$shard_count" ] && [ "${shard_count%.*}" -ge 64 ] || { echo "smoke_serve: job shard histogram count = $shard_count, want >= 64" >&2; exit 1; }

echo "== /v1/jobs NDJSON progress stream ==" >&2
small_spec='{"kind":"defect","trials":1000000,"shards":4,"seed":78,"defect":{"lambda":1.1}}'
small_id=$(curl -sf -X POST -d "$small_spec" "http://$addr/v1/jobs" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p')
stream=$(curl -sfN -H 'Accept: application/x-ndjson' "http://$addr/v1/jobs/$small_id")
lines=$(echo "$stream" | wc -l)
[ "$lines" -ge 1 ] || { echo "smoke_serve: job stream produced no lines" >&2; exit 1; }
echo "$stream" | tail -n 1 | grep -q '"state":"done"' || { echo "smoke_serve: job stream did not end in done: $(echo "$stream" | tail -n 1)" >&2; exit 1; }

echo "== /v1/jobs/{id}/events timeline ==" >&2
events=$(curl -sf "http://$addr/v1/jobs/$small_id/events")
for typ in submitted shard_merged completed; do
  echo "$events" | grep -q "\"type\":\"$typ\"" || { echo "smoke_serve: events timeline lacks $typ: $events" >&2; exit 1; }
done

echo "== cancelled job's NDJSON event stream ends with cancelled ==" >&2
huge_spec='{"kind":"defect","trials":4000000000,"seed":9,"defect":{"lambda":0.9}}'
cancel_id=$(curl -sf -X POST -d "$huge_spec" "http://$addr/v1/jobs" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p')
[ -n "$cancel_id" ] || { echo "smoke_serve: cancel-round submit returned no id" >&2; exit 1; }
curl -sf -X DELETE "http://$addr/v1/jobs/$cancel_id" >/dev/null
i=0
state=""
while [ $i -lt 100 ]; do
  state=$(curl -sf "http://$addr/v1/jobs/$cancel_id" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [ "$state" = "cancelled" ] && break
  i=$((i + 1))
  sleep 0.1
done
[ "$state" = "cancelled" ] || { echo "smoke_serve: job never reached cancelled (state=$state)" >&2; exit 1; }
ev_stream=$(curl -sfN -H 'Accept: application/x-ndjson' "http://$addr/v1/jobs/$cancel_id/events")
[ -n "$ev_stream" ] || { echo "smoke_serve: cancelled job produced an empty event stream" >&2; exit 1; }
echo "$ev_stream" | tail -n 1 | grep -q '"type":"cancelled"' || {
  echo "smoke_serve: event stream does not end with cancelled: $(echo "$ev_stream" | tail -n 1)" >&2
  exit 1
}

echo "== /v1/jobs kill -9 mid-job, resume must be byte-identical ==" >&2
jlog="$workdir/jobs_daemon.log"
"$bin" -addr 127.0.0.1:0 -job-dir "$workdir/jobsB" 2>"$jlog" &
jpid=$!
jaddr=$(wait_addr "$jlog" "$jpid")
curl -sf -X POST -d "$job_spec" "http://$jaddr/v1/jobs" >/dev/null
# Wait for a few shards to be checkpointed, then pull the plug.
i=0
while [ $i -lt 300 ]; do
  done_shards=$(curl -sf "http://$jaddr/v1/jobs/$job_id" | sed -n 's/.*"shards_done":\([0-9]*\).*/\1/p')
  [ -n "$done_shards" ] && [ "$done_shards" -ge 3 ] && break
  i=$((i + 1))
  sleep 0.05
done
[ "${done_shards:-0}" -ge 3 ] || { echo "smoke_serve: job checkpointed only ${done_shards:-0} shards before kill window" >&2; exit 1; }
[ "$done_shards" -lt 64 ] || { echo "smoke_serve: job finished before the kill; enlarge the spec" >&2; exit 1; }
kill -9 "$jpid"
wait "$jpid" 2>/dev/null || true

"$bin" -addr 127.0.0.1:0 -job-dir "$workdir/jobsB" 2>"$jlog.2" &
jpid=$!
jaddr=$(wait_addr "$jlog.2" "$jpid")
resumed_id=$(curl -sf -X POST -d "$job_spec" "http://$jaddr/v1/jobs" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p')
[ "$resumed_id" = "$job_id" ] || { echo "smoke_serve: resumed job id $resumed_id != $job_id (content hash drifted)" >&2; exit 1; }
i=0
state=""
while [ $i -lt 600 ]; do
  st=$(curl -sf "http://$jaddr/v1/jobs/$job_id")
  state=$(echo "$st" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [ "$state" != "running" ] && break
  i=$((i + 1))
  sleep 0.1
done
[ "$state" = "done" ] || { echo "smoke_serve: resumed job ended in state '$state': $st" >&2; exit 1; }
resumed=$(echo "$st" | sed -n 's/.*"shards_resumed":\([0-9]*\).*/\1/p')
[ -n "$resumed" ] && [ "$resumed" -ge 3 ] || { echo "smoke_serve: resumed run replayed only '${resumed:-0}' shards from the checkpoint: $st" >&2; exit 1; }
curl -sf "http://$jaddr/v1/jobs/$job_id/result" > "$workdir/job_resumed.json"
cmp -s "$workdir/job_ref.json" "$workdir/job_resumed.json" || {
  echo "smoke_serve: resumed result differs from uninterrupted run:" >&2
  diff "$workdir/job_ref.json" "$workdir/job_resumed.json" >&2 || true
  exit 1
}
kill -TERM "$jpid"
wait "$jpid" || { echo "smoke_serve: jobs daemon did not drain cleanly" >&2; exit 1; }
jpid=""
echo "smoke_serve: resumed result byte-identical to uninterrupted run ($resumed shards resumed)" >&2

echo "== SIGTERM drain ==" >&2
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || { echo "smoke_serve: daemon exited with status $rc after SIGTERM:" >&2; cat "$log" >&2; exit 1; }
grep -q "nanocostd stopped" "$log" || { echo "smoke_serve: no clean-stop log line:" >&2; cat "$log" >&2; exit 1; }

echo "smoke_serve: all checks passed" >&2
