#!/bin/sh
# distjob_check.sh — the distributed-job gate: build nanocostd, run a
# 2×10⁸-trial defect job on a single plain replica to record the
# reference result bytes, then run the identical spec on a two-replica
# tier — coordinator A (shard-lease coordinator + local worker) and
# peer worker B pulling shards over HTTP — kill -9 worker B after its
# first shard upload lands, and require the merged distributed result
# byte-identical to the single-replica reference. The determinism
# contract (fixed chunks on jump-ahead streams, canonical-order fold)
# is what makes byte equality the correct bar; the kill proves expired
# leases are reclaimed and re-run without disturbing it. The
# coordinator's event timeline must then tell the same story: leases
# granted to worker B, its partial accepted, its orphaned leases expired
# and reclaimed after the kill, and the job completed.
set -eu
cd "$(dirname "$0")/.."

command -v curl >/dev/null 2>&1 || { echo "distjob_check: curl not found" >&2; exit 1; }

TRIALS=${DISTJOB_TRIALS:-200000000}
SHARDS=${DISTJOB_SHARDS:-16}
LEASE_TTL=${DISTJOB_LEASE_TTL:-2s}
spec='{"kind":"defect","trials":'$TRIALS',"shards":'$SHARDS',"seed":42,"defect":{"lambda":0.9}}'

workdir=$(mktemp -d)
cleanup() {
  for p in "${refpid:-}" "${apid:-}" "${bpid:-}"; do
    [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# wait_addr PATTERN LOGFILE PID: poll LOGFILE for a bound address logged
# as "...PATTERN...addr=HOST:PORT".
wait_addr() {
  wa_pat=$1; wa_log=$2; wa_pid=$3; wa_addr=""
  i=0
  while [ $i -lt 100 ]; do
    wa_addr=$(sed -n "s/.*$wa_pat.*addr=\([^ ]*\).*/\1/p" "$wa_log" | head -n 1)
    [ -n "$wa_addr" ] && break
    kill -0 "$wa_pid" 2>/dev/null || { echo "distjob_check: process died during startup:" >&2; cat "$wa_log" >&2; exit 1; }
    i=$((i + 1))
    sleep 0.1
  done
  [ -n "$wa_addr" ] || { echo "distjob_check: no listen address in log:" >&2; cat "$wa_log" >&2; exit 1; }
  echo "$wa_addr"
}

# submit ADDR: POST the spec, print the job id.
submit() {
  sj_id=$(curl -sf -X POST -d "$spec" "http://$1/v1/jobs" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p')
  [ -n "$sj_id" ] || { echo "distjob_check: job submit to $1 returned no id" >&2; exit 1; }
  echo "$sj_id"
}

# wait_done ADDR ID SECONDS: poll job status until it leaves "running".
wait_done() {
  wd_addr=$1; wd_id=$2; wd_limit=$3
  i=0
  while [ $i -lt $((wd_limit * 10)) ]; do
    wd_state=$(curl -sf "http://$wd_addr/v1/jobs/$wd_id" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$wd_state" = "running" ] || { echo "$wd_state"; return 0; }
    i=$((i + 1))
    sleep 0.1
  done
  echo "distjob_check: job $wd_id still running after ${wd_limit}s" >&2
  exit 1
}

echo "== build nanocostd ==" >&2
go build -o "$workdir/nanocostd" ./cmd/nanocostd

echo "== single-replica reference run ($TRIALS trials, $SHARDS shards) ==" >&2
"$workdir/nanocostd" -addr 127.0.0.1:0 2>"$workdir/ref.log" &
refpid=$!
refaddr=$(wait_addr "nanocostd listening" "$workdir/ref.log" "$refpid")
refid=$(submit "$refaddr")
state=$(wait_done "$refaddr" "$refid" 120)
[ "$state" = "done" ] || { echo "distjob_check: reference job ended '$state'" >&2; cat "$workdir/ref.log" >&2; exit 1; }
curl -sf "http://$refaddr/v1/jobs/$refid/result" > "$workdir/ref.json"
kill -TERM "$refpid" && wait "$refpid" || true
refpid=""
echo "distjob_check: reference result recorded ($(wc -c < "$workdir/ref.json") bytes)" >&2

echo "== two-replica distributed run (coordinator A + peer worker B, lease TTL $LEASE_TTL) ==" >&2
"$workdir/nanocostd" -addr 127.0.0.1:0 -distribute -job-dir "$workdir/jobs" \
  -lease-ttl "$LEASE_TTL" -worker-id coord-a 2>"$workdir/a.log" &
apid=$!
aaddr=$(wait_addr "nanocostd listening" "$workdir/a.log" "$apid")
"$workdir/nanocostd" -addr 127.0.0.1:0 -peers "$aaddr" -worker-id worker-b 2>"$workdir/b.log" &
bpid=$!
wait_addr "nanocostd listening" "$workdir/b.log" "$bpid" >/dev/null
distid=$(submit "$aaddr")
[ "$distid" = "$refid" ] || { echo "distjob_check: job id differs across replicas: $refid vs $distid" >&2; exit 1; }

# The accepted-partials counter counts exactly the remote uploads, so
# waiting for it to move proves worker B contributed real shards before
# we kill it.
echo "== wait for worker B's first shard upload, then kill -9 it mid-job ==" >&2
i=0
accepted=0
while [ $i -lt 600 ]; do
  accepted=$(curl -sf "http://$aaddr/metrics" | sed -n 's/^nanocostd_job_partials_total{outcome="accepted"} //p')
  [ "${accepted:-0}" -ge 1 ] 2>/dev/null && break
  state=$(curl -sf "http://$aaddr/v1/jobs/$distid" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [ "$state" = "running" ] || { echo "distjob_check: job finished ($state) before any remote upload — worker B never contributed" >&2; exit 1; }
  i=$((i + 1))
  sleep 0.1
done
[ "${accepted:-0}" -ge 1 ] || { echo "distjob_check: no remote shard upload within 60s" >&2; cat "$workdir/b.log" >&2; exit 1; }
state=$(curl -sf "http://$aaddr/v1/jobs/$distid" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
echo "distjob_check: worker B uploaded $accepted shard(s), job state=$state — killing B" >&2
kill -9 "$bpid"
bpid=""

state=$(wait_done "$aaddr" "$distid" 180)
[ "$state" = "done" ] || { echo "distjob_check: distributed job ended '$state'" >&2; cat "$workdir/a.log" >&2; exit 1; }
curl -sf "http://$aaddr/v1/jobs/$distid/result" > "$workdir/dist.json"

echo "== distributed result must be byte-identical to the reference ==" >&2
cmp -s "$workdir/ref.json" "$workdir/dist.json" || {
  echo "distjob_check: distributed result differs from single-replica reference:" >&2
  diff "$workdir/ref.json" "$workdir/dist.json" >&2 || true
  exit 1
}

echo "== events timeline must explain the kill ==" >&2
events=$(curl -sf "http://$aaddr/v1/jobs/$distid/events")
for typ in submitted lease_acquired partial_accepted shard_merged completed; do
  echo "$events" | grep -q "\"type\":\"$typ\"" || { echo "distjob_check: timeline lacks $typ: $events" >&2; exit 1; }
done
# Worker B must appear as a lease holder and partial uploader, and its
# orphaned leases must show up as expired then reclaimed under its name
# — that is the kill, narrated.
echo "$events" | grep -Eq '"type":"lease_acquired","shard":[0-9]+,"owner":"worker-b"' \
  || { echo "distjob_check: timeline shows no lease granted to worker-b: $events" >&2; exit 1; }
echo "$events" | grep -Eq '"type":"partial_accepted","shard":[0-9]+,"owner":"worker-b"' \
  || { echo "distjob_check: timeline shows no partial accepted from worker-b: $events" >&2; exit 1; }
echo "$events" | grep -Eq '"type":"lease_expired","shard":[0-9]+,"owner":"worker-b"' \
  || { echo "distjob_check: timeline shows no expired worker-b lease after the kill: $events" >&2; exit 1; }
echo "$events" | grep -Eq '"type":"lease_reclaimed","shard":[0-9]+,"owner":"worker-b"' \
  || { echo "distjob_check: timeline shows no reclaimed worker-b lease after the kill: $events" >&2; exit 1; }
echo "distjob_check: timeline narrates the kill (worker-b leases expired and reclaimed, job completed)" >&2

kill -TERM "$apid"
rc=0
wait "$apid" || rc=$?
apid=""
[ "$rc" -eq 0 ] || { echo "distjob_check: coordinator exited with status $rc" >&2; exit 1; }

echo "distjob_check: all gates passed ($TRIALS trials across 2 replicas, kill -9 mid-job, byte-identical result)" >&2
