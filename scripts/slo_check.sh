#!/bin/sh
# slo_check.sh — the router SLO gate: build nanocostd, nanocostfront and
# loadgen; boot two replicas and one router on ephemeral ports; record
# reference response hashes straight from one replica; then require that
# (a) a pinned-rate open-loop run through the router stays inside the
# p99 budget with zero non-2xx and byte-identical responses, and (b) a
# kill -9 of the replica that owns the cost endpoint, delivered
# mid-load, leaves the SLO green — the survivors' responses must still
# match the reference hashes byte for byte. While the kill-phase load is
# running, one /fleetz pull must show both replicas scraped and a fleet
# request-count rollup exactly equal to the sum of the per-replica
# counters it re-exposes. Finishes by checking the
# router benched the killed replica, that /readyz stayed ready, and
# that the surviving replica drains cleanly and writes its memo
# snapshot.
set -eu
cd "$(dirname "$0")/.."

command -v curl >/dev/null 2>&1 || { echo "slo_check: curl not found" >&2; exit 1; }

# The client-side p99 budget at the pinned rate, and the arrival rate
# itself. Generous enough for a loaded CI box, tight enough that a
# retry storm or a dead router would blow it.
RPS=${SLO_RPS:-150}
P99_BUDGET=${SLO_P99:-500ms}

workdir=$(mktemp -d)
cleanup() {
  for p in "${apid:-}" "${bpid:-}" "${fpid:-}" "${lgpid:-}"; do
    [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# wait_addr PATTERN LOGFILE PID: poll LOGFILE for a bound address logged
# as "...PATTERN...addr=HOST:PORT".
wait_addr() {
  wa_pat=$1; wa_log=$2; wa_pid=$3; wa_addr=""
  i=0
  while [ $i -lt 100 ]; do
    wa_addr=$(sed -n "s/.*$wa_pat.*addr=\([^ ]*\).*/\1/p" "$wa_log" | head -n 1)
    [ -n "$wa_addr" ] && break
    kill -0 "$wa_pid" 2>/dev/null || { echo "slo_check: process died during startup:" >&2; cat "$wa_log" >&2; exit 1; }
    i=$((i + 1))
    sleep 0.1
  done
  [ -n "$wa_addr" ] || { echo "slo_check: no listen address in log:" >&2; cat "$wa_log" >&2; exit 1; }
  echo "$wa_addr"
}

echo "== build nanocostd, nanocostfront, loadgen ==" >&2
go build -o "$workdir/nanocostd" ./cmd/nanocostd
go build -o "$workdir/nanocostfront" ./cmd/nanocostfront
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== boot 2 replicas ==" >&2
"$workdir/nanocostd" -addr 127.0.0.1:0 -memo-snapshot "$workdir/memoA.snapshot" 2>"$workdir/a.log" &
apid=$!
"$workdir/nanocostd" -addr 127.0.0.1:0 -memo-snapshot "$workdir/memoB.snapshot" 2>"$workdir/b.log" &
bpid=$!
aaddr=$(wait_addr "nanocostd listening" "$workdir/a.log" "$apid")
baddr=$(wait_addr "nanocostd listening" "$workdir/b.log" "$bpid")
echo "slo_check: replicas at $aaddr and $baddr" >&2

echo "== replica /readyz ==" >&2
curl -sf "http://$aaddr/readyz" | grep -q '"status":"ready"' || { echo "slo_check: replica A not ready" >&2; exit 1; }

echo "== reference hashes from a single replica ==" >&2
"$workdir/loadgen" -base "http://$aaddr" -duration 2s -concurrency 2 -max-non2xx 0 > "$workdir/ref.out"
grep '^hash ' "$workdir/ref.out" | sort > "$workdir/ref.hashes"
[ -s "$workdir/ref.hashes" ] || { echo "slo_check: reference run produced no hash lines:" >&2; cat "$workdir/ref.out" >&2; exit 1; }

echo "== boot nanocostfront over both replicas ==" >&2
# A long bench keeps the killed replica out of rotation for the rest of
# the run (and visible as benched on /frontz afterwards).
"$workdir/nanocostfront" -addr 127.0.0.1:0 -replicas "$aaddr,$baddr" -bench 60s 2>"$workdir/f.log" &
fpid=$!
faddr=$(wait_addr "nanocostfront listening" "$workdir/f.log" "$fpid")
echo "slo_check: router at $faddr" >&2
curl -sf "http://$faddr/healthz" | grep -q '"status":"ok"' || { echo "slo_check: bad router healthz" >&2; exit 1; }
curl -sf "http://$faddr/readyz" | grep -q '"status":"ready"' || { echo "slo_check: router not ready" >&2; exit 1; }
frontz=$(curl -sf "http://$faddr/frontz")
echo "$frontz" | grep -q "$aaddr" && echo "$frontz" | grep -q "$baddr" || { echo "slo_check: frontz lacks a replica: $frontz" >&2; exit 1; }

echo "== steady-state SLO: ${RPS}rps open loop, p99 <= $P99_BUDGET, zero non-2xx ==" >&2
"$workdir/loadgen" -base "http://$faddr" -duration 3s -rps "$RPS" -max-p99 "$P99_BUDGET" -max-non2xx 0 > "$workdir/steady.out" \
  || { echo "slo_check: steady-state SLO failed:" >&2; cat "$workdir/steady.out" >&2; exit 1; }
grep '^hash ' "$workdir/steady.out" | sort > "$workdir/steady.hashes"
cmp -s "$workdir/ref.hashes" "$workdir/steady.hashes" || {
  echo "slo_check: routed responses differ from single-replica reference:" >&2
  diff "$workdir/ref.hashes" "$workdir/steady.hashes" >&2 || true
  exit 1
}
sed -n '1,2p' "$workdir/steady.out" >&2

echo "== kill the cost-endpoint owner mid-load ==" >&2
cost_body='{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":5000}'
owner=$(curl -s -D - -o /dev/null -X POST -d "$cost_body" "http://$faddr/v1/cost" | sed -n 's/^[Xx]-[Bb]ackend: *//p' | tr -d '\r')
case "$owner" in
  "$aaddr") victim=$apid; victim_addr=$aaddr ;;
  "$baddr") victim=$bpid; victim_addr=$baddr ;;
  *) echo "slo_check: unknown X-Backend '$owner'" >&2; exit 1 ;;
esac
echo "slo_check: cost endpoint owned by $victim_addr, killing it mid-run" >&2
"$workdir/loadgen" -base "http://$faddr" -duration 4s -rps "$RPS" -max-p99 "$P99_BUDGET" -max-non2xx 0 > "$workdir/kill.out" &
lgpid=$!
sleep 0.7

echo "== /fleetz under load: rollup equals the sum of replica counters ==" >&2
fleet="$workdir/fleet.txt"
curl -sf "http://$faddr/fleetz" > "$fleet" || { echo "slo_check: /fleetz pull failed under load" >&2; exit 1; }
grep -q "front_fleet_scrape_ok{replica=\"$aaddr\"} 1" "$fleet" || { echo "slo_check: /fleetz did not scrape replica A" >&2; exit 1; }
grep -q "front_fleet_scrape_ok{replica=\"$baddr\"} 1" "$fleet" || { echo "slo_check: /fleetz did not scrape replica B" >&2; exit 1; }
for family in front_fleet_requests_total front_fleet_rps front_fleet_request_seconds_p99 front_fleet_jobs_in_flight front_fleet_replicas_benched; do
  grep -q "^# TYPE $family " "$fleet" || { echo "slo_check: /fleetz lacks rollup family $family" >&2; exit 1; }
done
# The rollup and the re-exposed per-replica samples come from the same
# scrape pass, so exact equality holds even mid-load.
rollup=$(awk '$1 == "front_fleet_requests_total" { print $2 }' "$fleet")
[ -n "$rollup" ] || { echo "slo_check: /fleetz has no front_fleet_requests_total sample" >&2; exit 1; }
replica_sum=$(awk '/^nanocostd_requests_total\{/ { s += $NF } END { printf "%.10g", s }' "$fleet")
awk -v a="$rollup" -v b="$replica_sum" 'BEGIN { exit (a + 0 == b + 0) ? 0 : 1 }' || {
  echo "slo_check: fleet rollup $rollup != per-replica sum $replica_sum" >&2
  exit 1
}
echo "slo_check: fleet rollup $rollup requests matches the per-replica sum" >&2

sleep 0.8
kill -9 "$victim"
rc=0
wait "$lgpid" || rc=$?
lgpid=""
[ "$rc" -eq 0 ] || { echo "slo_check: SLO violated across the replica kill:" >&2; cat "$workdir/kill.out" >&2; exit 1; }
grep '^hash ' "$workdir/kill.out" | sort > "$workdir/kill.hashes"
cmp -s "$workdir/ref.hashes" "$workdir/kill.hashes" || {
  echo "slo_check: failover responses differ from reference:" >&2
  diff "$workdir/ref.hashes" "$workdir/kill.hashes" >&2 || true
  exit 1
}
sed -n '1,2p' "$workdir/kill.out" >&2
if [ "$victim" = "$apid" ]; then apid=""; survivor=$bpid; survivor_snap="$workdir/memoB.snapshot"; else bpid=""; survivor=$apid; survivor_snap="$workdir/memoA.snapshot"; fi

echo "== router state after the kill ==" >&2
curl -sf "http://$faddr/readyz" | grep -q '"status":"ready"' || { echo "slo_check: router lost readiness with a live replica" >&2; exit 1; }
curl -sf "http://$faddr/frontz" | grep -q "{\"addr\":\"$victim_addr\",\"benched\":true}" || {
  echo "slo_check: killed replica not benched on /frontz: $(curl -sf "http://$faddr/frontz")" >&2
  exit 1
}
curl -sf "http://$faddr/metrics" | grep -q "front_replica_up{replica=\"$victim_addr\"} 0" || {
  echo "slo_check: front_replica_up did not drop for the killed replica" >&2
  exit 1
}

echo "== survivor drains cleanly and snapshots its memo state ==" >&2
kill -TERM "$survivor"
rc=0
wait "$survivor" || rc=$?
[ "$rc" -eq 0 ] || { echo "slo_check: surviving replica exited with status $rc" >&2; exit 1; }
if [ "$survivor" = "${bpid:-none}" ]; then bpid=""; else apid=""; fi
[ -s "$survivor_snap" ] || { echo "slo_check: survivor left no memo snapshot at $survivor_snap" >&2; exit 1; }
grep -q '"serve.figures"' "$survivor_snap" || { echo "slo_check: snapshot lacks the figure cache" >&2; exit 1; }

kill -TERM "$fpid"
rc=0
wait "$fpid" || rc=$?
fpid=""
[ "$rc" -eq 0 ] || { echo "slo_check: router exited with status $rc" >&2; exit 1; }

echo "slo_check: all gates passed (p99 budget $P99_BUDGET at ${RPS}rps, byte-identical across failover)" >&2
