package repro_test

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/layout"
	"repro/internal/mcjob"
	"repro/internal/memo"
	"repro/internal/parallel"
	"repro/internal/regularity"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/wafer"
	"repro/internal/yield"
)

// The benchmarks below regenerate every table and figure of the paper
// (T-A1, F-1…F-4) and every extension study from DESIGN.md's experiment
// index (X-1…X-8). Run `go test -bench=. -benchmem` to execute the full
// harness; `cmd/figures` prints the same artifacts in readable form.

func BenchmarkTableA1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.TableA1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 49 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if res.IndustryTrend.Slope <= 0 {
			b.Fatal("industry trend not positive")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if rows[len(rows)-1].Ratio <= rows[0].Ratio {
			b.Fatal("ratio not rising")
		}
	}
}

func BenchmarkFigure4a(b *testing.B) {
	benchFigure4(b, experiments.Figure4Cases()[0])
}

func BenchmarkFigure4b(b *testing.B) {
	benchFigure4(b, experiments.Figure4Cases()[1])
}

func benchFigure4(b *testing.B, c experiments.Figure4Case) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		curves, _, err := experiments.Figure4(c, 60)
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) == 0 {
			b.Fatal("no curves")
		}
	}
}

func BenchmarkOptimalSd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.OptimalSdVsVolume(500, 1e6, 12)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].OptimalSd <= rows[len(rows)-1].OptimalSd {
			b.Fatal("optimum did not move with volume")
		}
	}
}

func BenchmarkYieldModels(b *testing.B) {
	lambdas := []float64{0.2, 0.6, 1.2}
	for i := 0; i < b.N; i++ {
		_, _, err := experiments.YieldModelComparison(lambdas, 1.0,
			yield.SimConfig{DiePerWafer: 200, Wafers: 60, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.UtilizationCrossover(0.4, 10, 1e6, 24)
		if err != nil {
			b.Fatal(err)
		}
		if res.Crossover <= 0 {
			b.Fatal("no crossover")
		}
	}
}

func BenchmarkRegularity(b *testing.B) {
	if _, _, err := experiments.RegularityStudy(1); err != nil { // warm pools + style layouts
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.RegularityStudy(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("styles missing")
		}
	}
}

func BenchmarkGrossDie(b *testing.B) {
	areas := []float64{0.5, 1, 2, 4}
	for i := 0; i < b.N; i++ {
		_, _, err := experiments.GrossDieStudy(areas)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaferCost(b *testing.B) {
	months := []float64{0, 6, 12, 24, 48}
	vols := []float64{1000, 10000, 100000}
	for i := 0; i < b.N; i++ {
		_, _, err := experiments.WaferCostStudy(0.18, months, vols)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskAmortization(b *testing.B) {
	nodes := []float64{0.25, 0.18, 0.13, 0.1}
	for i := 0; i < b.N; i++ {
		_, _, err := experiments.MaskAmortization(nodes, 100, 1e6, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayoutDensity(b *testing.B) {
	if _, _, err := experiments.LayoutDensityStudy(1); err != nil { // warm pools + style layouts
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.LayoutDensityStudy(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("styles missing")
		}
	}
}

func BenchmarkFigure3Stress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Figure3Stress(0.15, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkLayoutYield(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.LayoutYieldStudy(3.0, 1500, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("styles missing")
		}
	}
}

func BenchmarkTestCost(b *testing.B) {
	sizes := []float64{1e6, 10e6, 100e6}
	yields := []float64{0.4, 0.8}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TestCostStudy(sizes, yields); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPW(b *testing.B) {
	nodes := []float64{0.25, 0.18, 0.13, 0.1}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.MPWStudy(nodes, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoutability(b *testing.B) {
	fanouts := []float64{1.5, 2.5, 4}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.RoutabilityStudy(fanouts, 144, 4, 60, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.DeviceCostStudy()
		if err != nil {
			b.Fatal(err)
		}
		if res.K6OverPentium <= 1 {
			b.Fatal("K6 comparison inverted")
		}
	}
}

func BenchmarkUncertainty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.UncertaintyStudy(2000, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaferMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.WaferMapStudy(4, 100, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.Sites == 0 {
			b.Fatal("no sites")
		}
	}
}

func BenchmarkTTM(b *testing.B) {
	taus := []float64{36, 12, 6}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TTMStudy(taus); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPUvsDRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.MPUvsDRAM()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkSoC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.SoCStudy(300, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.SdChip <= 0 {
			b.Fatal("bad decomposition")
		}
	}
}

func BenchmarkRepair(b *testing.B) {
	lambdas := []float64{0.5, 1.5, 3}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.RepairStudy(lambdas, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.FamilyStudy(8)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("rows missing")
		}
	}
}

func BenchmarkTestEconomics(b *testing.B) {
	yields := []float64{0.9, 0.7, 0.5, 0.3}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TestEconomicsStudy(yields, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the hot substrate paths, so regressions in the
// underlying algorithms are visible independently of the experiment
// harness.

func BenchmarkScenarioTransistorCost(b *testing.B) {
	s, err := experiments.Figure4Scenario(experiments.Figure4Cases()[0], 0.18)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TransistorCost(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalSdSingle(b *testing.B) {
	s, err := experiments.Figure4Scenario(experiments.Figure4Cases()[0], 0.18)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimalSd(s, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGrossDieExact(b *testing.B) {
	d := wafer.SquareDie(1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wafer.GrossDie(wafer.Wafer300, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloYield(b *testing.B) {
	cfg := yield.SimConfig{DiePerWafer: 400, Wafers: 50, Lambda: 0.8, ClusterAlpha: 1, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yield.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegularityScan(b *testing.B) {
	l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: 400, RowUtil: 0.7, RouteTracks: 4, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := regularity.Analyze(l, 60); err != nil { // warm the scanner pool
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regularity.Analyze(l, 60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCriticalArea(b *testing.B) {
	l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: 200, RowUtil: 0.7, RouteTracks: 4, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := layout.CriticalArea(l, layout.Metal1, 4); err != nil { // warm the evaluator pool
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.CriticalArea(l, layout.Metal1, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnionArea(b *testing.B) {
	l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: 200, RowUtil: 0.7, RouteTracks: 4, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	if layout.UnionArea(l.Rects) <= 0 { // warm the scratch pool
		b.Fatal("empty union")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if layout.UnionArea(l.Rects) <= 0 {
			b.Fatal("empty union")
		}
	}
}

// benchCurveSizes is the defect-size grid shared by the cached
// critical-area benchmarks: cold measures one full extraction + curve
// evaluation per iteration (the memo fill path), warm measures the steady
// state the layout-vs-yield studies live in (pure cache hits).
func benchCurveSizes() []float64 {
	sizes := make([]float64, 64)
	for i := range sizes {
		sizes[i] = 0.5 + float64(i)*0.5
	}
	return sizes
}

func BenchmarkCriticalAreaCachedCold(b *testing.B) {
	l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: 200, RowUtil: 0.7, RouteTracks: 4, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	sizes := benchCurveSizes()
	if _, err := layout.CriticalAreaCurveCached(l, layout.Metal1, sizes); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memo.PurgeAll()
		if _, err := layout.CriticalAreaCurveCached(l, layout.Metal1, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCriticalAreaCachedWarm(b *testing.B) {
	l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: 200, RowUtil: 0.7, RouteTracks: 4, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	sizes := benchCurveSizes()
	if _, err := layout.CriticalAreaCurveCached(l, layout.Metal1, sizes); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.CriticalAreaCurveCached(l, layout.Metal1, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// Serial-vs-parallel pairs for the hot paths wired into the
// internal/parallel engine. Each parallel variant first asserts
// bit-identical output against the serial baseline (determinism is
// enforced, not assumed), then measures throughput at all cores. Compare
// with: go test -bench 'MonteCarlo(Serial|Parallel)' -benchmem

const benchMCSamples = 100000

func benchUncertain(b *testing.B) core.UncertainScenario {
	b.Helper()
	s, err := experiments.Figure4Scenario(experiments.Figure4Cases()[0], 0.18)
	if err != nil {
		b.Fatal(err)
	}
	return core.UncertainScenario{
		Base:  s,
		Yield: core.Uniform(0.3, 0.9),
		CmSq:  core.LogNormal(8, 1.4),
		Sd:    core.Uniform(150, 600),
	}
}

func BenchmarkMonteCarloSerial(b *testing.B) {
	u := benchUncertain(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.MonteCarloRun(benchMCSamples, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloParallel(b *testing.B) {
	u := benchUncertain(b)
	ref, err := u.MonteCarloRun(benchMCSamples, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		got, err := u.MonteCarloRun(benchMCSamples, 1, w)
		if err != nil {
			b.Fatal(err)
		}
		if got.Redraws != ref.Redraws {
			b.Fatalf("workers=%d: redraws diverge", w)
		}
		for i := range ref.Samples {
			if got.Samples[i] != ref.Samples[i] {
				b.Fatalf("workers=%d: sample %d diverges from serial", w, i)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.MonteCarloRun(benchMCSamples, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWaferMapConfig(workers int) yield.WaferMapConfig {
	return yield.WaferMapConfig{
		UsableRadiusMM: 145,
		DieWMM:         6, DieHMM: 6,
		Lambda: 0.5, EdgeFactor: 3, ClusterAlpha: 1,
		Wafers: 200, Seed: 9, Workers: workers,
	}
}

func BenchmarkWaferMapSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := yield.SimulateWaferMap(benchWaferMapConfig(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaferMapParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := yield.SimulateWaferMap(benchWaferMapConfig(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSweep(b *testing.B, workers int) {
	b.Helper()
	s, err := experiments.Figure4Scenario(experiments.Figure4Cases()[0], 0.18)
	if err != nil {
		b.Fatal(err)
	}
	parallel.SetDefaultWorkers(workers)
	defer parallel.SetDefaultWorkers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := core.SweepSd(s, 110, 2000, 2000)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2000 {
			b.Fatal("short sweep")
		}
	}
}

func BenchmarkSweepSdSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepSdParallel(b *testing.B) { benchSweep(b, 0) }

func benchDefectSim(b *testing.B, workers int) {
	b.Helper()
	l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: 200, RowUtil: 0.7, RouteTracks: 4, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := layout.DefectSimConfig{
		Layer:       layout.Metal1,
		MeanDefects: 2,
		SizeSampler: func(r *stats.RNG) float64 { return r.Range(2, 10) },
		Trials:      20000,
		Seed:        11,
		Workers:     workers,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.SimulateDefects(l, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDefectSimSerial(b *testing.B)   { benchDefectSim(b, 1) }
func BenchmarkDefectSimParallel(b *testing.B) { benchDefectSim(b, 0) }

// Throughput benchmarks for the arena-backed batch paths and the
// vectorized wafer-map kernel. Each reports a custom metric
// (evals/sec, sims/sec) via b.ReportMetric; cmd/benchcmp compares those
// against the recorded baseline between multi-core hosts.

func benchBatchScenarios(b *testing.B, n int) []core.Scenario {
	b.Helper()
	s, err := experiments.Figure4Scenario(experiments.Figure4Cases()[0], 0.18)
	if err != nil {
		b.Fatal(err)
	}
	scs := make([]core.Scenario, n)
	for i := range scs {
		sc := s
		sc.Design.Sd = 150 + float64(i%600)
		scs[i] = sc
	}
	return scs
}

// BenchmarkEvalBatch1024: the core batch engine on a warm arena — the
// steady state the serving layer holds it in. Allocations here are the
// fixed dispatch cost, not per item.
func BenchmarkEvalBatch1024(b *testing.B) {
	const n = 1024
	scs := benchBatchScenarios(b, n)
	var a core.BatchArena
	ctx := b.Context()
	if _, _, err := a.EvalBatchInto(ctx, scs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.EvalBatchInto(ctx, scs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*n/secs, "evals/sec")
	}
}

// BenchmarkServeBatch1024: the same 1024 evaluations through the full
// HTTP stack — decode, pooled scratch, parallel fan-out, response
// encode — which is what /v1/batch clients actually observe.
func BenchmarkServeBatch1024(b *testing.B) {
	const n = 1024
	items := make([]string, n)
	for i := range items {
		items[i] = fmt.Sprintf(`{"kind":"cost","body":{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":%d},"wafers":5000}}`, 150+i%600)
	}
	payload := `{"items":[` + strings.Join(items, ",") + `]}`
	s := serve.NewServer(serve.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	h := s.Handler()
	{ // warm the scratch pool so a 1x run measures the steady state
		req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(payload))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("warm-up status %d", rec.Code)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(payload))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*n/secs, "evals/sec")
	}
}

// BenchmarkWaferMapSims: wafer-map Monte Carlo throughput in whole-wafer
// simulations per second, on the vectorized site-factor/exp-LUT kernel.
func BenchmarkWaferMapSims(b *testing.B) {
	cfg := benchWaferMapConfig(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yield.SimulateWaferMap(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*float64(cfg.Wafers)/secs, "sims/sec")
	}
}

// BenchmarkShardedMC: the sharded Monte Carlo engine end to end — shard
// planning, the per-chunk stream walk, kernel evaluation across all
// workers and the canonical-order merge — in trials per second on the
// defect kernel. This is the giga-trial job path /v1/jobs and
// yieldsim -shards run on.
func BenchmarkShardedMC(b *testing.B) {
	k, err := mcjob.NewDefectKernel(mcjob.DefectSpec{Lambda: 1.1})
	if err != nil {
		b.Fatal(err)
	}
	const trials = 1 << 21
	cfg := mcjob.RunConfig{Trials: trials, Shards: 8, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcjob.Run(b.Context(), k, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*trials/secs, "trials/sec")
	}
}
