package report

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestHistogramRender(t *testing.T) {
	xs := []float64{1, 1, 1, 2, 2, 3, 10}
	var b strings.Builder
	if err := (Histogram{Title: "demo", Bins: 4}).Render(&b, xs); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "demo (n=7)") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + 4 bins
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// First bin (values 1-3) has the most mass → longest bar.
	if !strings.Contains(lines[1], "*") {
		t.Fatal("first bin has no bar")
	}
}

func TestHistogramDefaultBins(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	var b strings.Builder
	if err := (Histogram{}).Render(&b, xs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 12 {
		t.Fatalf("default bins = %d, want 12", len(lines))
	}
}

func TestHistogramConstantSample(t *testing.T) {
	var b strings.Builder
	if err := (Histogram{Bins: 3}).Render(&b, []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "3") {
		t.Fatal("constant sample not counted")
	}
}

func TestHistogramErrors(t *testing.T) {
	var b strings.Builder
	if err := (Histogram{}).Render(&b, nil); err == nil {
		t.Fatal("accepted empty sample")
	}
	if err := (Histogram{}).Render(&b, []float64{1, math.NaN()}); err == nil {
		t.Fatal("accepted NaN")
	}
	if err := (Histogram{}).Render(&b, []float64{1, math.Inf(1)}); err == nil {
		t.Fatal("accepted Inf")
	}
}

func TestHistogramBinCoverage(t *testing.T) {
	// Every sample lands in exactly one bin: bar total equals n.
	xs := []float64{0, 0.999, 1, 2, 3, 3.999, 4}
	var b strings.Builder
	if err := (Histogram{Bins: 4}).Render(&b, xs); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if n, err := strconv.Atoi(fields[len(fields)-1]); err == nil {
			total += n
		}
	}
	if total != len(xs) {
		t.Fatalf("bin counts sum to %d, want %d", total, len(xs))
	}
}
