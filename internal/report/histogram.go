package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Histogram bins a sample and renders it as horizontal ASCII bars, the
// terminal view of Monte Carlo output distributions.
type Histogram struct {
	Title string
	Bins  int // default 12 when <= 0
}

// Render bins xs and writes the chart. It returns an error for an empty
// sample or a sample containing NaN/Inf.
func (h Histogram) Render(w io.Writer, xs []float64) error {
	if len(xs) == 0 {
		return fmt.Errorf("report: histogram of empty sample")
	}
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("report: histogram sample contains %v", x)
		}
	}
	bins := h.Bins
	if bins <= 0 {
		bins = 12
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, x := range xs {
		b := int((x - lo) / (hi - lo) * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s (n=%d)\n", h.Title, len(xs))
	}
	const width = 50
	for i, c := range counts {
		binLo := lo + (hi-lo)*float64(i)/float64(bins)
		bars := 0
		if maxC > 0 {
			bars = c * width / maxC
		}
		fmt.Fprintf(&b, "%12s |%s %d\n", Num(binLo), strings.Repeat("*", bars), c)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
