package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("beta", 123456.789)
	out := tbl.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") {
		t.Fatalf("missing row content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Separator under the header.
	if !strings.HasPrefix(lines[2], "----") {
		t.Fatalf("missing separator: %q", lines[2])
	}
}

func TestTableArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	NewTable("x", "a", "b").AddRow("only-one")
}

func TestNumFormats(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		1234.56: "1235",
		1e-9:    "1.000e-09",
		2.5e8:   "2.500e+08",
	}
	for v, want := range cases {
		if got := Num(v); got != want {
			t.Errorf("Num(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("plain", "with,comma")
	tbl.AddRow(`quo"te`, "line\nbreak")
	csv := tbl.CSV()
	lines := strings.SplitN(csv, "\n", 2)
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(csv, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"quo""te"`) {
		t.Fatalf("quote cell not escaped: %q", csv)
	}
}

func TestSeriesValidate(t *testing.T) {
	if err := (Series{Name: "s", X: []float64{1}, Y: []float64{1, 2}}).Validate(); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if err := (Series{Name: "s"}).Validate(); err == nil {
		t.Fatal("accepted empty series")
	}
	if err := (Series{Name: "s", X: []float64{1}, Y: []float64{2}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigureTableAndRender(t *testing.T) {
	f := &Figure{Title: "Fig", XLabel: "x", YLabel: "y"}
	f.Add(Series{Name: "one", X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}})
	f.Add(Series{Name: "two", X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}})
	tbl := f.Table()
	if len(tbl.Rows) != 6 {
		t.Fatalf("long-form rows = %d, want 6", len(tbl.Rows))
	}
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig", "a = one", "b = two", "x: x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderLogScale(t *testing.T) {
	f := &Figure{Title: "Log", XLabel: "x", YLabel: "y", LogY: true}
	f.Add(Series{Name: "s", X: []float64{1, 2}, Y: []float64{10, 1000}})
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "log10") {
		t.Fatal("log scale not annotated")
	}
	// Non-positive y on log scale must error.
	f.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{0}})
	if err := f.Render(&strings.Builder{}); err == nil {
		t.Fatal("accepted zero y on log scale")
	}
}

func TestFigureValidate(t *testing.T) {
	if err := (&Figure{Title: "empty"}).Validate(); err == nil {
		t.Fatal("accepted empty figure")
	}
}

func TestFigureRenderConstantSeries(t *testing.T) {
	f := &Figure{Title: "Flat", XLabel: "x", YLabel: "y"}
	f.Add(Series{Name: "s", X: []float64{1, 1}, Y: []float64{5, 5}})
	if err := f.Render(&strings.Builder{}); err != nil {
		t.Fatalf("constant series should render: %v", err)
	}
}
