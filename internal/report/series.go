package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is a named (x, y) data series, the figure-regeneration unit.
type Series struct {
	Name string
	X, Y []float64
}

// Validate reports the first structural problem with s, or nil.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x and %d y values", s.Name, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("report: series %q is empty", s.Name)
	}
	return nil
}

// Figure is a titled collection of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Series []Series
}

// Add appends a series to the figure.
func (f *Figure) Add(s Series) { f.Series = append(f.Series, s) }

// Validate reports the first structural problem with f, or nil.
func (f *Figure) Validate() error {
	if len(f.Series) == 0 {
		return fmt.Errorf("report: figure %q has no series", f.Title)
	}
	for _, s := range f.Series {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Table converts the figure to a long-form table (series, x, y) for
// textual inspection and CSV export.
func (f *Figure) Table() *Table {
	t := NewTable(f.Title, "series", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		for i := range s.X {
			t.AddRow(s.Name, s.X[i], s.Y[i])
		}
	}
	return t
}

// Render draws an ASCII scatter of the figure: 64×20 characters, one
// marker letter per series, with min/max axis annotations. It is the
// terminal stand-in for the paper's plots.
func (f *Figure) Render(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	const cols, rows = 64, 20
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	yv := func(y float64) float64 {
		if f.LogY {
			return math.Log10(y)
		}
		return y
	}
	for _, s := range f.Series {
		for i := range s.X {
			x, y := s.X[i], yv(s.Y[i])
			if f.LogY && (s.Y[i] <= 0 || math.IsInf(y, 0) || math.IsNaN(y)) {
				return fmt.Errorf("report: figure %q: log scale with non-positive y %v", f.Title, s.Y[i])
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range f.Series {
		marker := byte('a' + si%26)
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(cols-1))
			cy := int((yv(s.Y[i]) - minY) / (maxY - minY) * float64(rows-1))
			grid[rows-1-cy][cx] = marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	scale := ""
	if f.LogY {
		scale = " (log10)"
	}
	fmt.Fprintf(&b, "y: %s%s  [%s .. %s]\n", f.YLabel, scale, Num(unlog(minY, f.LogY)), Num(unlog(maxY, f.LogY)))
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(&b, "x: %s  [%s .. %s]\n", f.XLabel, Num(minX), Num(maxX))
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", 'a'+si%26, s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func unlog(v float64, logged bool) float64 {
	if logged {
		return math.Pow(10, v)
	}
	return v
}
