// Package report renders experiment results as aligned ASCII tables and
// CSV, the output layer of the figure/table regeneration harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular result set with a title and column headers.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates an empty table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are formatted with %v; float64 values get
// 4 significant digits via Num. It panics when the arity does not match
// the header, which is a programmer error in experiment code.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells for %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = Num(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Num formats a float with 4 significant digits, dropping the exponent
// form for values in comfortable ranges.
func Num(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 0.01 && av < 100000:
		s := fmt.Sprintf("%.4g", v)
		return s
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// WriteTo renders the table to w with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		// strings.Builder never errors; keep the contract visible anyway.
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas, quotes, or newlines), without the title.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
