// Package maskcost models the lithography mask-set price C_MA of the
// paper's eq (5). Mask cost is one of the two non-recurring charges that
// make low-volume products expensive per transistor, and it grows steeply
// as the feature size shrinks (more layers, tighter mask tolerances, OPC
// decoration).
package maskcost

import (
	"fmt"
	"math"
)

// Model parameterizes mask-set cost versus feature size:
//
//	perLayer(λ) = BaseLayerCost · (RefLambdaUM/λ)^CostExp
//	layers(λ)   = BaseLayers + LayersPerShrink · log_{0.7}(RefLambdaUM/λ)
//	set(λ)      = perLayer(λ) · layers(λ)
//
// Defaults (DefaultModel) are calibrated to the paper era: a ~$250k set of
// ~22 masks at 0.25 µm, growing toward $1M+ at 0.13 µm, consistent with
// the $1M mask budget the Figure 4 reproduction uses.
type Model struct {
	RefLambdaUM     float64 // reference node, µm
	BaseLayerCost   float64 // $ per mask at the reference node
	CostExp         float64 // per-layer cost growth exponent vs shrink
	BaseLayers      int     // mask count at the reference node
	LayersPerShrink float64 // extra masks per full (×0.7) node shrink
}

// DefaultModel returns the paper-era calibration.
func DefaultModel() Model {
	return Model{
		RefLambdaUM:     0.25,
		BaseLayerCost:   11000,
		CostExp:         2.2,
		BaseLayers:      22,
		LayersPerShrink: 2,
	}
}

// Validate reports the first invalid field of m, or nil.
func (m Model) Validate() error {
	switch {
	case m.RefLambdaUM <= 0:
		return fmt.Errorf("maskcost: reference node must be positive, got %v", m.RefLambdaUM)
	case m.BaseLayerCost <= 0:
		return fmt.Errorf("maskcost: base layer cost must be positive, got %v", m.BaseLayerCost)
	case m.CostExp < 0:
		return fmt.Errorf("maskcost: cost exponent must be non-negative, got %v", m.CostExp)
	case m.BaseLayers <= 0:
		return fmt.Errorf("maskcost: base layer count must be positive, got %d", m.BaseLayers)
	case m.LayersPerShrink < 0:
		return fmt.Errorf("maskcost: layers per shrink must be non-negative, got %v", m.LayersPerShrink)
	}
	return nil
}

// Layers returns the mask count at the given node, never below 1.
func (m Model) Layers(lambdaUM float64) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if lambdaUM <= 0 {
		return 0, fmt.Errorf("maskcost: feature size must be positive, got %v", lambdaUM)
	}
	shrinks := math.Log(m.RefLambdaUM/lambdaUM) / math.Log(1/0.7)
	n := float64(m.BaseLayers) + m.LayersPerShrink*shrinks
	if n < 1 {
		n = 1
	}
	return int(math.Round(n)), nil
}

// LayerCost returns the price of a single mask at the given node.
func (m Model) LayerCost(lambdaUM float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if lambdaUM <= 0 {
		return 0, fmt.Errorf("maskcost: feature size must be positive, got %v", lambdaUM)
	}
	return m.BaseLayerCost * math.Pow(m.RefLambdaUM/lambdaUM, m.CostExp), nil
}

// SetCost returns the full mask-set price C_MA at the given node.
func (m Model) SetCost(lambdaUM float64) (float64, error) {
	layers, err := m.Layers(lambdaUM)
	if err != nil {
		return 0, err
	}
	perLayer, err := m.LayerCost(lambdaUM)
	if err != nil {
		return 0, err
	}
	return float64(layers) * perLayer, nil
}

// AmortizedPerWafer returns the mask-set cost spread over a production run
// of the given wafer count — the C_MA/(N_w·A_w) contribution to eq (5)
// times A_w.
func (m Model) AmortizedPerWafer(lambdaUM, wafers float64) (float64, error) {
	if wafers <= 0 {
		return 0, fmt.Errorf("maskcost: wafer volume must be positive, got %v", wafers)
	}
	set, err := m.SetCost(lambdaUM)
	if err != nil {
		return 0, err
	}
	return set / wafers, nil
}
