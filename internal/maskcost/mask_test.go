package maskcost

import (
	"math"
	"testing"
)

func TestDefaultModelPaperScale(t *testing.T) {
	m := DefaultModel()
	set, err := m.SetCost(0.25)
	if err != nil {
		t.Fatal(err)
	}
	// ~$250k at the reference node.
	if set < 150e3 || set > 400e3 {
		t.Fatalf("0.25 µm set cost = %v, want ~250k", set)
	}
	set130, err := m.SetCost(0.13)
	if err != nil {
		t.Fatal(err)
	}
	if set130 < 700e3 || set130 > 3e6 {
		t.Fatalf("0.13 µm set cost = %v, want roughly $1M", set130)
	}
	if set130 <= set {
		t.Fatal("mask cost did not grow with shrink")
	}
}

func TestLayersGrowWithShrink(t *testing.T) {
	m := DefaultModel()
	l250, err := m.Layers(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if l250 != 22 {
		t.Fatalf("layers(0.25) = %d, want 22", l250)
	}
	l130, err := m.Layers(0.13)
	if err != nil {
		t.Fatal(err)
	}
	if l130 <= l250 {
		t.Fatalf("layers did not grow: %d vs %d", l130, l250)
	}
	// Very old node floors at 1 mask, never 0 or negative.
	lOld, err := m.Layers(100)
	if err != nil {
		t.Fatal(err)
	}
	if lOld < 1 {
		t.Fatalf("layers(100µm) = %d", lOld)
	}
}

func TestLayerCostPower(t *testing.T) {
	m := DefaultModel()
	c1, err := m.LayerCost(0.25)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.LayerCost(0.125)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(2, m.CostExp)
	if math.Abs(c2/c1-want) > 1e-9 {
		t.Fatalf("halving λ scaled layer cost by %v, want %v", c2/c1, want)
	}
}

func TestAmortizedPerWafer(t *testing.T) {
	m := DefaultModel()
	set, err := m.SetCost(0.18)
	if err != nil {
		t.Fatal(err)
	}
	per, err := m.AmortizedPerWafer(0.18, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(per-set/1000) > 1e-9 {
		t.Fatalf("amortized = %v, want %v", per, set/1000)
	}
	if _, err := m.AmortizedPerWafer(0.18, 0); err == nil {
		t.Fatal("accepted zero volume")
	}
}

func TestModelValidation(t *testing.T) {
	bad := []Model{
		{RefLambdaUM: 0, BaseLayerCost: 1, BaseLayers: 1},
		{RefLambdaUM: 1, BaseLayerCost: 0, BaseLayers: 1},
		{RefLambdaUM: 1, BaseLayerCost: 1, CostExp: -1, BaseLayers: 1},
		{RefLambdaUM: 1, BaseLayerCost: 1, BaseLayers: 0},
		{RefLambdaUM: 1, BaseLayerCost: 1, BaseLayers: 1, LayersPerShrink: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
	if _, err := DefaultModel().SetCost(0); err == nil {
		t.Fatal("accepted zero feature size")
	}
	if _, err := DefaultModel().Layers(-1); err == nil {
		t.Fatal("accepted negative feature size")
	}
	if _, err := DefaultModel().LayerCost(0); err == nil {
		t.Fatal("accepted zero feature size in LayerCost")
	}
}

func TestSetCostMonotoneAcrossNodes(t *testing.T) {
	m := DefaultModel()
	nodes := []float64{0.35, 0.25, 0.18, 0.13, 0.1, 0.07, 0.05}
	prev := 0.0
	for _, n := range nodes {
		c, err := m.SetCost(n)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Fatalf("set cost not strictly increasing at %v µm: %v after %v", n, c, prev)
		}
		prev = c
	}
}
