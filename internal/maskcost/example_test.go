package maskcost_test

import (
	"fmt"

	"repro/internal/maskcost"
)

// The mask-set price C_MA across nodes — the NRE that eq (5) amortizes.
func ExampleModel_SetCost() {
	m := maskcost.DefaultModel()
	for _, lam := range []float64{0.25, 0.18, 0.13} {
		set, err := m.SetCost(lam)
		if err != nil {
			fmt.Println(err)
			return
		}
		layers, err := m.Layers(lam)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%.0f nm: %d masks, $%.0fk\n", lam*1000, layers, set/1e3)
	}
	// Output:
	// 250 nm: 22 masks, $242k
	// 180 nm: 24 masks, $544k
	// 130 nm: 26 masks, $1205k
}
