package maskcost

import (
	"testing"
	"testing/quick"
)

// Property: the mask set is strictly more expensive on any strictly
// smaller feature size.
func TestSetCostMonotoneProperty(t *testing.T) {
	m := DefaultModel()
	f := func(a, b uint16) bool {
		lam := 0.05 + float64(a%1000)/1000  // [0.05, 1.05)
		shrink := 0.5 + float64(b%400)/1000 // [0.5, 0.9)
		big, err1 := m.SetCost(lam)
		small, err2 := m.SetCost(lam * shrink)
		return err1 == nil && err2 == nil && small > big
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: amortization is exactly linear in 1/volume.
func TestAmortizationLinearityProperty(t *testing.T) {
	m := DefaultModel()
	f := func(a uint16) bool {
		w := 1 + float64(a%10000)
		one, err1 := m.AmortizedPerWafer(0.18, w)
		two, err2 := m.AmortizedPerWafer(0.18, 2*w)
		if err1 != nil || err2 != nil {
			return false
		}
		diff := one - 2*two
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
