// Package profiling wires the shared observability flags into the
// command-line binaries: pprof CPU and heap profiles (-cpuprofile,
// -memprofile) and a memo-cache effectiveness dump (-stats). Every cmd
// registers the same three flags, so capturing a profile of any workload
// is uniform:
//
//	figures -only x10 -cpuprofile cpu.out -memprofile mem.out -stats
//	go tool pprof -top cpu.out
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/memo"
)

// Flags holds the observability flag values for one binary. Construct
// with Register before flag.Parse.
type Flags struct {
	cpuProfile string
	memProfile string
	stats      bool

	cpuFile *os.File
}

// Register adds -cpuprofile, -memprofile and -stats to the default flag
// set and returns the handle the binary starts and stops around its work.
func Register() *Flags {
	return RegisterOn(flag.CommandLine)
}

// RegisterOn is Register against an arbitrary flag set, for tests and
// embedders that do not use the global one.
func RegisterOn(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.cpuProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&f.memProfile, "memprofile", "", "write a pprof heap profile to `file` on exit")
	fs.BoolVar(&f.stats, "stats", false, "print memo cache hit/miss statistics to stderr on exit")
	return f
}

// Validate checks that every requested profile path is writable, so a
// typo'd -cpuprofile fails at flag-validation time with a usage error
// instead of after the workload ran. It creates (or opens) each file and
// closes it again; Start re-creates them for the real write.
func (f *Flags) Validate() error {
	for _, path := range []string{f.cpuProfile, f.memProfile} {
		if path == "" {
			continue
		}
		file, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("profiling: profile path is not writable: %w", err)
		}
		if err := file.Close(); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
	}
	return nil
}

// Start begins CPU profiling when requested. Call it after flag.Parse and
// pair it with Stop.
func (f *Flags) Start() error {
	if f.cpuProfile == "" {
		return nil
	}
	file, err := os.Create(f.cpuProfile)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("profiling: start CPU profile: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finalizes the requested observability outputs: it stops the CPU
// profile, writes the heap profile (after a GC, so it reflects live
// objects rather than transient garbage), and dumps the memo cache
// statistics. It is safe to call when nothing was requested.
func (f *Flags) Stop() error {
	var firstErr error
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("profiling: close CPU profile: %w", err)
		}
		f.cpuFile = nil
	}
	if f.memProfile != "" {
		file, err := os.Create(f.memProfile)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("profiling: %w", err)
			}
		} else {
			runtime.GC()
			if err := pprof.WriteHeapProfile(file); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: write heap profile: %w", err)
			}
			if err := file.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: close heap profile: %w", err)
			}
		}
	}
	if f.stats {
		fmt.Fprint(os.Stderr, memo.StatsString())
	}
	return firstErr
}
