package regularity

import (
	"testing"

	"repro/internal/layout"
)

func TestScanValidation(t *testing.T) {
	l, err := layout.GenerateSRAMArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(l, 0); err == nil {
		t.Fatal("accepted zero pitch")
	}
	bad := &layout.Layout{Name: "b", Width: 0, Height: 1}
	if _, err := Scan(bad, 10); err == nil {
		t.Fatal("accepted invalid layout")
	}
}

func TestScanWindowCount(t *testing.T) {
	l := &layout.Layout{Name: "t", Width: 30, Height: 20, Transistors: 1}
	pats, err := Scan(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 6 { // 3 × 2
		t.Fatalf("windows = %d, want 6", len(pats))
	}
	for _, p := range pats {
		if !p.Empty() {
			t.Fatal("empty layout produced non-empty pattern")
		}
	}
	// Partial edge windows are still scanned: 25×25 at pitch 10 → 3×3.
	l = &layout.Layout{Name: "t2", Width: 25, Height: 25, Transistors: 1}
	pats, err = Scan(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 9 {
		t.Fatalf("windows = %d, want 9", len(pats))
	}
}

func TestSRAMArrayPerfectlyRegular(t *testing.T) {
	// 20 rows × 16 cols of the 15×12 cell give a 240×240 array — an exact
	// multiple of the 60 = lcm(15, 12) scan pitch, so every window (edge
	// included) is identical.
	l, err := layout.GenerateSRAMArray(20, 16)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(l, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UniquePatterns != 1 {
		t.Fatalf("SRAM array at aligned pitch has %d unique patterns, want 1", rep.UniquePatterns)
	}
	// Regularity is capped at 1 − 1/windows; with a 4×4 window grid the
	// perfect score is 15/16.
	if want := 1 - 1/float64(rep.NonEmpty); rep.Regularity < want-1e-9 {
		t.Fatalf("SRAM regularity = %v, want %v (perfect for %d windows)", rep.Regularity, want, rep.NonEmpty)
	}
	if rep.MaxRepeat != rep.NonEmpty {
		t.Fatalf("max repeat %d != non-empty windows %d", rep.MaxRepeat, rep.NonEmpty)
	}
}

func TestRandomLogicLessRegularThanSRAM(t *testing.T) {
	sram, err := layout.GenerateSRAMArray(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	asic, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: 300, RowUtil: 0.6, RouteTracks: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	repS, err := Analyze(sram, 60)
	if err != nil {
		t.Fatal(err)
	}
	repA, err := Analyze(asic, 60)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Regularity >= repS.Regularity {
		t.Fatalf("ASIC regularity %v not below SRAM %v", repA.Regularity, repS.Regularity)
	}
	if repA.UniquePatterns <= repS.UniquePatterns {
		t.Fatalf("ASIC unique patterns %d not above SRAM %d", repA.UniquePatterns, repS.UniquePatterns)
	}
}

func TestScanDeterministic(t *testing.T) {
	l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: 100, RowUtil: 0.7, RouteTracks: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Scan(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scan(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("scan lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pattern %d differs between identical scans", i)
		}
	}
}

func TestTranslationInvariance(t *testing.T) {
	// The same geometry at the same in-window offset hashes identically
	// wherever the window sits.
	mk := func(offset int) *layout.Layout {
		l := &layout.Layout{Name: "t", Width: 200, Height: 20, Transistors: 1}
		l.Rects = append(l.Rects, layout.Rect{
			X0: offset + 3, Y0: 5, X1: offset + 8, Y1: 9, Layer: layout.Metal1,
		})
		return l
	}
	// Rect in window 0 at x=3 vs identical rect in window 5 at x=3.
	a, err := Scan(mk(0), 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scan(mk(100), 20)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[5] {
		t.Fatal("identical window content hashed differently after translation")
	}
}

func TestBoundarySpanningClip(t *testing.T) {
	// A rect spanning two windows contributes its clipped part to each.
	l := &layout.Layout{Name: "span", Width: 40, Height: 20, Transistors: 1}
	l.Rects = append(l.Rects, layout.Rect{X0: 15, Y0: 5, X1: 25, Y1: 9, Layer: layout.Metal1})
	pats, err := Scan(l, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pats[0].Empty() || pats[1].Empty() {
		t.Fatal("spanning rect missing from one of its windows")
	}
	if pats[0] == pats[1] {
		t.Fatal("differently-clipped halves hashed identically")
	}
}

func TestAnalyzeEmptyLayout(t *testing.T) {
	l := &layout.Layout{Name: "empty", Width: 100, Height: 100, Transistors: 1}
	rep, err := Analyze(l, 25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NonEmpty != 0 || rep.UniquePatterns != 0 || rep.Regularity != 0 {
		t.Fatalf("empty layout report = %+v", rep)
	}
}

func TestBestPitchPrefersAligned(t *testing.T) {
	l, err := layout.GenerateSRAMArray(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	// 60 divides both cell dimensions (15, 12); 37 divides neither.
	best, err := BestPitch(l, []int{37, 60})
	if err != nil {
		t.Fatal(err)
	}
	if best.Pitch != 60 {
		t.Fatalf("best pitch = %d, want 60 (cell-aligned)", best.Pitch)
	}
	if _, err := BestPitch(l, nil); err == nil {
		t.Fatal("accepted empty candidate list")
	}
}

func TestPredictionErrorModel(t *testing.T) {
	m := DefaultPredictionErrorModel()
	e0, err := m.Error(0)
	if err != nil {
		t.Fatal(err)
	}
	if e0 != m.Baseline {
		t.Fatalf("error at reg=0 is %v, want baseline %v", e0, m.Baseline)
	}
	e1, err := m.Error(1)
	if err != nil {
		t.Fatal(err)
	}
	if e1 >= e0 {
		t.Fatal("full regularity did not reduce error")
	}
	// Clamping.
	eNeg, err := m.Error(-5)
	if err != nil {
		t.Fatal(err)
	}
	if eNeg != e0 {
		t.Fatal("negative regularity not clamped")
	}
	eBig, err := m.Error(5)
	if err != nil {
		t.Fatal(err)
	}
	if eBig != e1 {
		t.Fatal("oversized regularity not clamped")
	}
	// Monotone decreasing in regularity.
	prev := 1e9
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
		e, err := m.Error(r)
		if err != nil {
			t.Fatal(err)
		}
		if e >= prev {
			t.Fatalf("error not decreasing at reg=%v", r)
		}
		prev = e
	}
}

func TestPredictionErrorModelValidation(t *testing.T) {
	if _, err := (PredictionErrorModel{Baseline: 0, ReuseEfficiency: 0.5}).Error(0.5); err == nil {
		t.Fatal("accepted zero baseline")
	}
	if _, err := (PredictionErrorModel{Baseline: 0.3, ReuseEfficiency: 1.5}).Error(0.5); err == nil {
		t.Fatal("accepted reuse efficiency > 1")
	}
}
