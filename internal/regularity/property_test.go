package regularity

import (
	"testing"
	"testing/quick"

	"repro/internal/layout"
)

// Property: for any generated layout and any reasonable pitch, the
// regularity metrics respect their structural bounds: regularity ∈
// [0, 1), unique ≤ non-empty ≤ windows, top coverage ∈ (0, 1] when
// anything exists, and the most frequent pattern accounts for at least
// the mean multiplicity.
func TestMetricsBoundsProperty(t *testing.T) {
	f := func(seed uint64, p uint8) bool {
		pitch := 20 + int(p%8)*10 // 20..90
		l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
			Cells: 80, RowUtil: 0.7, RouteTracks: 3, Seed: seed,
		})
		if err != nil {
			return false
		}
		rep, err := Analyze(l, pitch)
		if err != nil {
			return false
		}
		if rep.NonEmpty > rep.Windows || rep.UniquePatterns > rep.NonEmpty {
			return false
		}
		if rep.NonEmpty == 0 {
			return rep.Regularity == 0 && rep.UniquePatterns == 0
		}
		if rep.Regularity < 0 || rep.Regularity >= 1 {
			return false
		}
		if rep.TopCoverage <= 0 || rep.TopCoverage > 1 {
			return false
		}
		// Pigeonhole: max repeat ≥ ceil(nonEmpty/unique).
		minMax := (rep.NonEmpty + rep.UniquePatterns - 1) / rep.UniquePatterns
		return rep.MaxRepeat >= minMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling the scan to a coarser pitch never increases the
// total window count.
func TestPitchCoarseningProperty(t *testing.T) {
	f := func(seed uint64) bool {
		l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
			Cells: 60, RowUtil: 0.8, RouteTracks: 2, Seed: seed,
		})
		if err != nil {
			return false
		}
		fine, err := Analyze(l, 25)
		if err != nil {
			return false
		}
		coarse, err := Analyze(l, 50)
		if err != nil {
			return false
		}
		return coarse.Windows <= fine.Windows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
