package regularity

import (
	"testing"

	"repro/internal/layout"
)

// The scratch-reuse contract of the Scanner: after a warm-up scan,
// re-analyzing the same layout and pitch allocates nothing — the window
// buckets, canonicalization scratch, hash buffer, pattern list, and
// tallies are all reused.

func TestScannerWarmAnalyzeZeroAlloc(t *testing.T) {
	l, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: 150, RowUtil: 0.7, RouteTracks: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner()
	want, err := s.Analyze(l, 60)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		got, err := s.Analyze(l, 60)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("warm Analyze diverged: %+v != %+v", got, want)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Scanner.Analyze allocates %v per run, want 0", allocs)
	}
}

func TestScannerMatchesPackageAnalyze(t *testing.T) {
	l, err := layout.GenerateSRAMArray(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner()
	for _, pitch := range []int{15, 30, 60} {
		fromScanner, err := s.Analyze(l, pitch)
		if err != nil {
			t.Fatal(err)
		}
		fromPackage, err := Analyze(l, pitch)
		if err != nil {
			t.Fatal(err)
		}
		if fromScanner != fromPackage {
			t.Fatalf("pitch %d: scanner %+v != package %+v", pitch, fromScanner, fromPackage)
		}
	}
}

func TestScanReturnsCallerOwnedSlice(t *testing.T) {
	l, err := layout.GenerateSRAMArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Scan(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]Pattern(nil), a...)
	// A second scan through the pooled scanner must not clobber the first
	// result.
	if _, err := Scan(l, 16); err != nil {
		t.Fatal(err)
	}
	for i := range saved {
		if a[i] != saved[i] {
			t.Fatalf("Scan result mutated by a later scan at %d", i)
		}
	}
}
