package regularity

import (
	"fmt"
	"slices"

	"repro/internal/layout"
)

// Report summarizes the repetitive-pattern structure of a layout at one
// window pitch.
type Report struct {
	Pitch          int
	Windows        int     // total windows scanned
	NonEmpty       int     // windows containing geometry
	UniquePatterns int     // distinct non-empty patterns
	Regularity     float64 // 1 − unique/non-empty: 0 = all distinct, →1 = one tile
	TopCoverage    float64 // fraction of non-empty windows covered by the 8 most frequent patterns
	MaxRepeat      int     // occurrence count of the most frequent pattern
}

// Analyze scans the layout at the given pitch and computes pattern-reuse
// metrics using the Scanner's reused buffers. The Regularity figure is
// the §3.2 quantity: the fraction of windows whose characterization can
// be reused from an identical twin.
func (s *Scanner) Analyze(l *layout.Layout, pitch int) (Report, error) {
	pats, err := s.scan(l, pitch)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Pitch: pitch, Windows: len(pats)}
	clear(s.counts)
	counts := s.counts
	for _, p := range pats {
		if p.Empty() {
			continue
		}
		rep.NonEmpty++
		counts[p.Key]++
	}
	rep.UniquePatterns = len(counts)
	if rep.NonEmpty == 0 {
		return rep, nil
	}
	rep.Regularity = 1 - float64(rep.UniquePatterns)/float64(rep.NonEmpty)
	freqs := s.freqs[:0]
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	s.freqs = freqs
	slices.SortFunc(freqs, func(a, b int) int { return b - a })
	top := 0
	for i, c := range freqs {
		if i >= 8 {
			break
		}
		top += c
	}
	rep.TopCoverage = float64(top) / float64(rep.NonEmpty)
	rep.MaxRepeat = freqs[0]
	return rep, nil
}

// Analyze scans the layout at the given pitch and computes pattern-reuse
// metrics. It draws a Scanner from the internal pool; callers analyzing
// many layouts or pitches in a loop should hold their own Scanner.
func Analyze(l *layout.Layout, pitch int) (Report, error) {
	s := scannerPool.Get().(*Scanner)
	defer scannerPool.Put(s)
	return s.Analyze(l, pitch)
}

// BestPitch analyzes the layout at each candidate pitch and returns the
// report with the highest Regularity, preferring larger pitches on ties
// (bigger reusable tiles are worth more). Candidates must be positive.
// One Scanner serves every candidate, so the window index, pattern list,
// and tallies are allocated once and reused across pitches.
func BestPitch(l *layout.Layout, candidates []int) (Report, error) {
	if len(candidates) == 0 {
		return Report{}, fmt.Errorf("regularity: no candidate pitches")
	}
	s := scannerPool.Get().(*Scanner)
	defer scannerPool.Put(s)
	var best Report
	found := false
	for _, p := range candidates {
		r, err := s.Analyze(l, p)
		if err != nil {
			return Report{}, err
		}
		if !found || r.Regularity > best.Regularity ||
			(r.Regularity == best.Regularity && r.Pitch > best.Pitch) {
			best = r
			found = true
		}
	}
	return best, nil
}

// PredictionErrorModel maps a regularity figure to the relative error of
// pre-layout physical prediction, the §3.2 mechanism: characterized
// patterns predict exactly (their simulation is reused), novel patterns
// carry baseline error. The expected error interpolates linearly:
//
//	err(reg) = baseline · (1 − reuseEfficiency·reg)
//
// with reuseEfficiency in [0, 1] capturing how transferable a
// characterization is in practice.
type PredictionErrorModel struct {
	Baseline        float64 // relative prediction error with no reuse, > 0
	ReuseEfficiency float64 // in [0, 1]
}

// DefaultPredictionErrorModel uses a 30% baseline interconnect-delay
// prediction error and 90% reuse efficiency.
func DefaultPredictionErrorModel() PredictionErrorModel {
	return PredictionErrorModel{Baseline: 0.30, ReuseEfficiency: 0.9}
}

// Validate reports the first invalid field of m, or nil.
func (m PredictionErrorModel) Validate() error {
	if m.Baseline <= 0 {
		return fmt.Errorf("regularity: baseline error must be positive, got %v", m.Baseline)
	}
	if m.ReuseEfficiency < 0 || m.ReuseEfficiency > 1 {
		return fmt.Errorf("regularity: reuse efficiency must be in [0,1], got %v", m.ReuseEfficiency)
	}
	return nil
}

// Error returns the expected relative prediction error at the given
// regularity (clamped to [0, 1]).
func (m PredictionErrorModel) Error(reg float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if reg < 0 {
		reg = 0
	}
	if reg > 1 {
		reg = 1
	}
	return m.Baseline * (1 - m.ReuseEfficiency*reg), nil
}
