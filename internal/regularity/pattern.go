// Package regularity implements repetitive-pattern analysis of layouts in
// the spirit of the paper's reference [33] (Niewczas, Maly, Strojwas, "An
// Algorithm for Determining Repetitive Patterns in Very Large IC
// Layouts"): it partitions a layout into fixed-pitch windows, canonicalizes
// the geometry inside each window, and counts how many distinct window
// patterns the design uses. §3.2's thesis is that designs built from few
// unique patterns let expensive simulation/characterization results be
// reused, containing design cost; the metrics here quantify exactly that
// reuse opportunity.
package regularity

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/layout"
)

// Pattern is the canonical form of one window's geometry: rectangles
// clipped to the window and expressed in window-local coordinates, sorted
// deterministically. Two windows with identical Pattern keys contain
// pixel-identical geometry.
type Pattern struct {
	Key   [32]byte // content hash
	Rects int      // rectangle count inside the window (post-clip)
}

// Empty reports whether the pattern contains no geometry.
func (p Pattern) Empty() bool { return p.Rects == 0 }

// canonicalize clips every rectangle of l to the window at (wx, wy) with
// the given pitch and produces the canonical pattern. Clipping keeps the
// analysis exact for geometry spanning window boundaries: each window sees
// precisely the shapes that fall inside it.
func canonicalize(rects []layout.Rect, wx, wy, pitch int) Pattern {
	type local struct{ x0, y0, x1, y1, layer int }
	var ls []local
	for _, r := range rects {
		x0, y0 := r.X0-wx, r.Y0-wy
		x1, y1 := r.X1-wx, r.Y1-wy
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 > pitch {
			x1 = pitch
		}
		if y1 > pitch {
			y1 = pitch
		}
		if x1 <= x0 || y1 <= y0 {
			continue
		}
		ls = append(ls, local{x0, y0, x1, y1, int(r.Layer)})
	}
	sort.Slice(ls, func(a, b int) bool {
		if ls[a].layer != ls[b].layer {
			return ls[a].layer < ls[b].layer
		}
		if ls[a].x0 != ls[b].x0 {
			return ls[a].x0 < ls[b].x0
		}
		if ls[a].y0 != ls[b].y0 {
			return ls[a].y0 < ls[b].y0
		}
		if ls[a].x1 != ls[b].x1 {
			return ls[a].x1 < ls[b].x1
		}
		return ls[a].y1 < ls[b].y1
	})
	h := sha256.New()
	var buf [8]byte
	for _, r := range ls {
		for _, v := range [5]int{r.layer, r.x0, r.y0, r.x1, r.y1} {
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
			h.Write(buf[:])
		}
	}
	var p Pattern
	copy(p.Key[:], h.Sum(nil))
	p.Rects = len(ls)
	return p
}

// windowIndex buckets rectangles by the windows they touch so the scan is
// linear in (rects × windows-touched) instead of rects × windows.
func windowIndex(l *layout.Layout, pitch int) map[[2]int][]layout.Rect {
	idx := make(map[[2]int][]layout.Rect)
	for _, r := range l.Rects {
		wx0, wy0 := r.X0/pitch, r.Y0/pitch
		wx1, wy1 := (r.X1-1)/pitch, (r.Y1-1)/pitch
		for wx := wx0; wx <= wx1; wx++ {
			for wy := wy0; wy <= wy1; wy++ {
				k := [2]int{wx, wy}
				idx[k] = append(idx[k], r)
			}
		}
	}
	return idx
}

// Scan partitions the layout into pitch×pitch windows and returns the
// canonical pattern of every window in row-major order. Windows beyond
// the bounding box are not generated; partial windows at the right/top
// edges are included (their clip region is still pitch-sized, so identical
// partial content matches identically). It returns an error for a
// non-positive pitch or an invalid layout.
func Scan(l *layout.Layout, pitch int) ([]Pattern, error) {
	if pitch <= 0 {
		return nil, fmt.Errorf("regularity: pitch must be positive, got %d", pitch)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	idx := windowIndex(l, pitch)
	nx := (l.Width + pitch - 1) / pitch
	ny := (l.Height + pitch - 1) / pitch
	out := make([]Pattern, 0, nx*ny)
	for wy := 0; wy < ny; wy++ {
		for wx := 0; wx < nx; wx++ {
			rects := idx[[2]int{wx, wy}]
			out = append(out, canonicalize(rects, wx*pitch, wy*pitch, pitch))
		}
	}
	return out, nil
}
