// Package regularity implements repetitive-pattern analysis of layouts in
// the spirit of the paper's reference [33] (Niewczas, Maly, Strojwas, "An
// Algorithm for Determining Repetitive Patterns in Very Large IC
// Layouts"): it partitions a layout into fixed-pitch windows, canonicalizes
// the geometry inside each window, and counts how many distinct window
// patterns the design uses. §3.2's thesis is that designs built from few
// unique patterns let expensive simulation/characterization results be
// reused, containing design cost; the metrics here quantify exactly that
// reuse opportunity.
package regularity

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"slices"
	"sync"

	"repro/internal/layout"
)

// Pattern is the canonical form of one window's geometry: rectangles
// clipped to the window and expressed in window-local coordinates, sorted
// deterministically. Two windows with identical Pattern keys contain
// pixel-identical geometry.
type Pattern struct {
	Key   [32]byte // content hash
	Rects int      // rectangle count inside the window (post-clip)
}

// Empty reports whether the pattern contains no geometry.
func (p Pattern) Empty() bool { return p.Rects == 0 }

// localRect is a window-local clipped rectangle, the canonicalization
// intermediate.
type localRect struct{ x0, y0, x1, y1, layer int }

// cmpLocalRect is the canonical (total) ordering of clipped rectangles.
func cmpLocalRect(a, b localRect) int {
	switch {
	case a.layer != b.layer:
		return a.layer - b.layer
	case a.x0 != b.x0:
		return a.x0 - b.x0
	case a.y0 != b.y0:
		return a.y0 - b.y0
	case a.x1 != b.x1:
		return a.x1 - b.x1
	}
	return a.y1 - b.y1
}

// Scanner runs window scans while reusing every intermediate buffer —
// the per-window rectangle index, the canonicalization scratch, the hash
// input buffer, the pattern list, and the Analyze tallies — so repeated
// scans (one per candidate pitch in BestPitch, one per style in the
// regularity studies) allocate almost nothing after the first.
//
// A Scanner is not safe for concurrent use; create one per goroutine or
// use the package-level functions, which draw from an internal pool.
type Scanner struct {
	cells  [][]layout.Rect // window buckets, row-major nx×ny, capacity reused
	ls     []localRect     // canonicalize scratch
	buf    []byte          // hash input scratch
	pats   []Pattern       // scan output, reused across scans
	counts map[[32]byte]int
	freqs  []int
}

// NewScanner returns a Scanner with empty buffers.
func NewScanner() *Scanner {
	return &Scanner{counts: make(map[[32]byte]int)}
}

var scannerPool = sync.Pool{New: func() any { return NewScanner() }}

// canonicalize clips every rectangle of the bucket to the window at
// (wx, wy) with the given pitch and produces the canonical pattern.
// Clipping keeps the analysis exact for geometry spanning window
// boundaries: each window sees precisely the shapes that fall inside it.
func (s *Scanner) canonicalize(rects []layout.Rect, wx, wy, pitch int) Pattern {
	ls := s.ls[:0]
	for _, r := range rects {
		x0, y0 := r.X0-wx, r.Y0-wy
		x1, y1 := r.X1-wx, r.Y1-wy
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 > pitch {
			x1 = pitch
		}
		if y1 > pitch {
			y1 = pitch
		}
		if x1 <= x0 || y1 <= y0 {
			continue
		}
		ls = append(ls, localRect{x0, y0, x1, y1, int(r.Layer)})
	}
	s.ls = ls
	slices.SortFunc(ls, cmpLocalRect)
	buf := s.buf[:0]
	for _, r := range ls {
		for _, v := range [5]int{r.layer, r.x0, r.y0, r.x1, r.y1} {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
		}
	}
	s.buf = buf
	return Pattern{Key: sha256.Sum256(buf), Rects: len(ls)}
}

// index buckets rectangles by the windows they touch, so the scan is
// linear in (rects × windows-touched) instead of rects × windows. The
// buckets live in a flat row-major grid whose backing (and per-bucket
// capacity) persists across scans.
func (s *Scanner) index(l *layout.Layout, pitch, nx, ny int) {
	n := nx * ny
	if cap(s.cells) < n {
		s.cells = append(s.cells[:cap(s.cells)], make([][]layout.Rect, n-cap(s.cells))...)
	}
	s.cells = s.cells[:n]
	for i := range s.cells {
		s.cells[i] = s.cells[i][:0]
	}
	for _, r := range l.Rects {
		wx0, wy0 := r.X0/pitch, r.Y0/pitch
		wx1, wy1 := (r.X1-1)/pitch, (r.Y1-1)/pitch
		for wy := wy0; wy <= wy1; wy++ {
			for wx := wx0; wx <= wx1; wx++ {
				s.cells[wy*nx+wx] = append(s.cells[wy*nx+wx], r)
			}
		}
	}
}

// scan produces the canonical pattern of every window in row-major order
// into the Scanner's reused pattern buffer. The returned slice is owned
// by the Scanner and valid until the next scan.
func (s *Scanner) scan(l *layout.Layout, pitch int) ([]Pattern, error) {
	if pitch <= 0 {
		return nil, fmt.Errorf("regularity: pitch must be positive, got %d", pitch)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	nx := (l.Width + pitch - 1) / pitch
	ny := (l.Height + pitch - 1) / pitch
	s.index(l, pitch, nx, ny)
	pats := s.pats[:0]
	for wy := 0; wy < ny; wy++ {
		for wx := 0; wx < nx; wx++ {
			pats = append(pats, s.canonicalize(s.cells[wy*nx+wx], wx*pitch, wy*pitch, pitch))
		}
	}
	s.pats = pats
	return pats, nil
}

// Scan partitions the layout into pitch×pitch windows and returns the
// canonical pattern of every window in row-major order. Windows beyond
// the bounding box are not generated; partial windows at the right/top
// edges are included (their clip region is still pitch-sized, so identical
// partial content matches identically). It returns an error for a
// non-positive pitch or an invalid layout. The returned slice is freshly
// allocated and owned by the caller.
func Scan(l *layout.Layout, pitch int) ([]Pattern, error) {
	s := scannerPool.Get().(*Scanner)
	defer scannerPool.Put(s)
	pats, err := s.scan(l, pitch)
	if err != nil {
		return nil, err
	}
	return slices.Clone(pats), nil
}
