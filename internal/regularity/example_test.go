package regularity_test

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/regularity"
)

// Scan a perfectly tiled array: one unique pattern covers every window.
func ExampleAnalyze() {
	sram, err := layout.GenerateSRAMArray(20, 16) // 240×240, multiple of 60
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := regularity.Analyze(sram, 60)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d windows, %d unique pattern(s), regularity %.3f\n",
		rep.NonEmpty, rep.UniquePatterns, rep.Regularity)
	// Output:
	// 16 windows, 1 unique pattern(s), regularity 0.938
}

// The §3.2 chain: regularity sets the physical prediction error.
func ExamplePredictionErrorModel_Error() {
	m := regularity.DefaultPredictionErrorModel()
	for _, reg := range []float64{0, 0.5, 0.95} {
		sigma, err := m.Error(reg)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("regularity %.2f → prediction error %.3f\n", reg, sigma)
	}
	// Output:
	// regularity 0.00 → prediction error 0.300
	// regularity 0.50 → prediction error 0.165
	// regularity 0.95 → prediction error 0.044
}
