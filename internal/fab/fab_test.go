package fab

import (
	"math"
	"testing"
)

func TestCapexForNodeDoublesPerShrink(t *testing.T) {
	c250, err := CapexForNode(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c250-1.5e9) > 1 {
		t.Fatalf("capex(0.25) = %v, want 1.5e9", c250)
	}
	c175, err := CapexForNode(0.25 * 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c175/c250-2) > 1e-9 {
		t.Fatalf("one shrink multiplied capex by %v, want 2", c175/c250)
	}
	// Nanometer territory: 0.05 µm should be well past $10 B — the
	// paper's "billions of dollars" premise.
	c50, err := CapexForNode(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if c50 < 10e9 {
		t.Fatalf("capex(50nm) = %v, want > 1e10", c50)
	}
	if _, err := CapexForNode(0); err == nil {
		t.Fatal("accepted zero feature size")
	}
}

func TestReferenceFabline(t *testing.T) {
	f, err := ReferenceFabline(0.18, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.WafersPerYear != 30000*12 {
		t.Fatalf("200mm capacity = %v, want 360000", f.WafersPerYear)
	}
	f300, err := ReferenceFabline(0.18, 300)
	if err != nil {
		t.Fatal(err)
	}
	if f300.WafersPerYear >= f.WafersPerYear {
		t.Fatal("300mm line should start fewer (bigger) wafers per year")
	}
	if _, err := ReferenceFabline(0.18, 0); err == nil {
		t.Fatal("accepted zero diameter")
	}
}

func TestWaferCost(t *testing.T) {
	f := Fabline{
		Name: "test", CapexDollars: 1.5e9, LifetimeYears: 5,
		WafersPerYear: 360000, LambdaUM: 0.25, WaferDiameterMM: 200,
	}
	wc, err := f.WaferCost(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// (1.5e9/5 + 1.5e9·0.15)/360000 = (3e8 + 2.25e8)/3.6e5 = 1458.33
	want := (1.5e9/5 + 1.5e9*0.15) / 360000
	if math.Abs(wc-want) > 1e-6 {
		t.Fatalf("wafer cost = %v, want %v", wc, want)
	}
	// Half utilization doubles the cost.
	half, err := f.WaferCost(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half-2*wc) > 1e-6 {
		t.Fatalf("half-utilization cost = %v, want %v", half, 2*wc)
	}
	if _, err := f.WaferCost(0); err == nil {
		t.Fatal("accepted zero utilization")
	}
	if _, err := f.WaferCost(1.5); err == nil {
		t.Fatal("accepted utilization > 1")
	}
}

func TestCostPerCM2PaperScale(t *testing.T) {
	// The paper uses C_sq = 8 $/cm² for a mature 1999 process; the
	// reference 0.25 µm line at healthy utilization should land in the
	// single-digit $/cm² range.
	f, err := ReferenceFabline(0.25, 200)
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.CostPerCM2(0.85)
	if err != nil {
		t.Fatal(err)
	}
	if c < 2 || c > 20 {
		t.Fatalf("cost/cm² = %v, want paper-scale 2–20 $/cm²", c)
	}
}

func TestFablineValidation(t *testing.T) {
	bad := []Fabline{
		{CapexDollars: 0, LifetimeYears: 5, WafersPerYear: 1, LambdaUM: 0.25, WaferDiameterMM: 200},
		{CapexDollars: 1, LifetimeYears: 0, WafersPerYear: 1, LambdaUM: 0.25, WaferDiameterMM: 200},
		{CapexDollars: 1, LifetimeYears: 5, WafersPerYear: 0, LambdaUM: 0.25, WaferDiameterMM: 200},
		{CapexDollars: 1, LifetimeYears: 5, WafersPerYear: 1, LambdaUM: 0, WaferDiameterMM: 200},
		{CapexDollars: 1, LifetimeYears: 5, WafersPerYear: 1, LambdaUM: 0.25, WaferDiameterMM: 0},
		{CapexDollars: 1, LifetimeYears: 5, WafersPerYear: 1, LambdaUM: 0.25, WaferDiameterMM: 200, OperatingFactor: -1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: invalid fabline accepted", i)
		}
	}
}

func TestExperienceCurve(t *testing.T) {
	c := ExperienceCurve{FirstUnitCost: 100, LearningRate: 0.9}
	u1, err := c.UnitCost(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u1-100) > 1e-9 {
		t.Fatalf("first unit = %v", u1)
	}
	u2, err := c.UnitCost(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u2-90) > 1e-9 {
		t.Fatalf("unit 2 = %v, want 90 (90%% curve)", u2)
	}
	u4, err := c.UnitCost(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u4-81) > 1e-9 {
		t.Fatalf("unit 4 = %v, want 81", u4)
	}
	if _, err := c.UnitCost(0.5); err == nil {
		t.Fatal("accepted unit index < 1")
	}
}

func TestExperienceCurveValidation(t *testing.T) {
	if err := (ExperienceCurve{FirstUnitCost: 0, LearningRate: 0.9}).Validate(); err == nil {
		t.Fatal("accepted zero first-unit cost")
	}
	if err := (ExperienceCurve{FirstUnitCost: 1, LearningRate: 0}).Validate(); err == nil {
		t.Fatal("accepted zero learning rate")
	}
	if err := (ExperienceCurve{FirstUnitCost: 1, LearningRate: 1.1}).Validate(); err == nil {
		t.Fatal("accepted learning rate > 1")
	}
}

func TestAverageCostAboveMarginal(t *testing.T) {
	c := ExperienceCurve{FirstUnitCost: 100, LearningRate: 0.85}
	for _, n := range []float64{1, 10, 1000, 1e6} {
		avg, err := c.AverageCost(n)
		if err != nil {
			t.Fatal(err)
		}
		unit, err := c.UnitCost(n)
		if err != nil {
			t.Fatal(err)
		}
		if avg < unit {
			t.Fatalf("n=%v: average %v below marginal %v", n, avg, unit)
		}
		if avg > c.FirstUnitCost+1e-9 {
			t.Fatalf("n=%v: average %v above first-unit cost", n, avg)
		}
	}
	// Flat curve: average equals first-unit cost up to the O(1/n) error of
	// the continuous approximation.
	flat := ExperienceCurve{FirstUnitCost: 50, LearningRate: 1}
	avg, err := flat.AverageCost(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-50) > 50.0/1e6+1e-9 {
		t.Fatalf("flat curve average = %v, want ~50", avg)
	}
}

func TestMatureWaferCost(t *testing.T) {
	f, err := ReferenceFabline(0.18, 200)
	if err != nil {
		t.Fatal(err)
	}
	curve := ExperienceCurve{FirstUnitCost: 1, LearningRate: 0.92}
	young, err := MatureWaferCost(f, 9, 0, curve, 10000)
	if err != nil {
		t.Fatal(err)
	}
	old, err := MatureWaferCost(f, 9, 36, curve, 10000)
	if err != nil {
		t.Fatal(err)
	}
	aw := f.WaferAreaCM2()
	cy := young(aw, 0.18, 10000)
	co := old(aw, 0.18, 10000)
	if co >= cy {
		t.Fatalf("mature cost %v not below bring-up cost %v", co, cy)
	}
	// Volume helps: 100k wafers cheaper per cm² than 1k.
	big := old(aw, 0.18, 100000)
	small := old(aw, 0.18, 1000)
	if big >= small {
		t.Fatalf("high-volume cost %v not below low-volume %v", big, small)
	}
	// At the reference volume and high maturity the cost approaches the
	// base cost/cm².
	base, _ := f.CostPerCM2(0.85)
	atRef := old(aw, 0.18, 10000)
	if math.Abs(atRef-base)/base > 0.05 {
		t.Fatalf("mature at-reference cost %v far from base %v", atRef, base)
	}
}

func TestMatureWaferCostValidation(t *testing.T) {
	f, _ := ReferenceFabline(0.18, 200)
	curve := ExperienceCurve{FirstUnitCost: 1, LearningRate: 0.92}
	if _, err := MatureWaferCost(f, 0, 0, curve, 1000); err == nil {
		t.Fatal("accepted zero tau")
	}
	if _, err := MatureWaferCost(f, 9, -1, curve, 1000); err == nil {
		t.Fatal("accepted negative age")
	}
	if _, err := MatureWaferCost(f, 9, 0, curve, 0); err == nil {
		t.Fatal("accepted zero reference volume")
	}
	if _, err := MatureWaferCost(f, 9, 0, ExperienceCurve{}, 1000); err == nil {
		t.Fatal("accepted invalid curve")
	}
	// Sub-wafer volumes clamp instead of erroring.
	fn, err := MatureWaferCost(f, 9, 12, curve, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if c := fn(f.WaferAreaCM2(), 0.18, 0); !(c > 0) {
		t.Fatalf("clamped volume produced cost %v", c)
	}
}
