package fab

import (
	"fmt"
	"math"
)

// ExperienceCurve is the classic manufacturing learning curve: unit cost
// falls by a fixed ratio with every doubling of cumulative output,
//
//	c(n) = FirstUnitCost · n^{log2(LearningRate)}
//
// with LearningRate in (0, 1] (0.9 = "90% curve": each doubling cuts cost
// to 90%). Reference [30] uses volume as a first-order wafer-cost driver;
// the experience curve is the standard functional form for it.
type ExperienceCurve struct {
	FirstUnitCost float64
	LearningRate  float64
}

// Validate reports the first invalid field of c, or nil.
func (c ExperienceCurve) Validate() error {
	if c.FirstUnitCost <= 0 {
		return fmt.Errorf("fab: experience curve first-unit cost must be positive, got %v", c.FirstUnitCost)
	}
	if !(c.LearningRate > 0 && c.LearningRate <= 1) {
		return fmt.Errorf("fab: learning rate must be in (0,1], got %v", c.LearningRate)
	}
	return nil
}

// UnitCost returns the cost of the n-th unit (n >= 1).
func (c ExperienceCurve) UnitCost(n float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("fab: unit index must be >= 1, got %v", n)
	}
	return c.FirstUnitCost * math.Pow(n, math.Log2(c.LearningRate)), nil
}

// AverageCost returns the average unit cost over the first n units, via
// the continuous approximation ∫₁ⁿ c(x) dx / n (exact closed form).
func (c ExperienceCurve) AverageCost(n float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("fab: unit count must be >= 1, got %v", n)
	}
	b := math.Log2(c.LearningRate)
	if n == 1 {
		return c.FirstUnitCost, nil
	}
	if math.Abs(b+1) < 1e-12 {
		return c.FirstUnitCost * math.Log(n) / n, nil
	}
	return c.FirstUnitCost * (math.Pow(n, b+1) - 1) / ((b + 1) * n), nil
}

// MatureWaferCost combines the fabline amortization view with maturity and
// volume effects into the Cm_sq(A_w, λ, N_w) function eq (7) asks for:
//
//   - base: the fabline's cost/cm² at reference utilization 0.85;
//   - maturity: process age discounts cost toward the floor with time
//     constant tauMonths (equipment debug, recipe stabilization);
//   - volume: an experience-curve multiplier normalized to refWafers.
//
// The returned closure is safe for concurrent use.
func MatureWaferCost(f Fabline, tauMonths, months float64, curve ExperienceCurve, refWafers float64) (func(waferAreaCM2, lambdaUM, wafers float64) float64, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := curve.Validate(); err != nil {
		return nil, err
	}
	if tauMonths <= 0 {
		return nil, fmt.Errorf("fab: maturity time constant must be positive, got %v", tauMonths)
	}
	if months < 0 {
		return nil, fmt.Errorf("fab: process age must be non-negative, got %v", months)
	}
	if refWafers < 1 {
		return nil, fmt.Errorf("fab: reference volume must be >= 1 wafer, got %v", refWafers)
	}
	base, err := f.CostPerCM2(0.85)
	if err != nil {
		return nil, err
	}
	// Immature processes cost up to 60% more; the premium decays with age.
	maturityMult := 1 + 0.6*math.Exp(-months/tauMonths)
	refAvg, err := curve.AverageCost(refWafers)
	if err != nil {
		return nil, err
	}
	return func(waferAreaCM2, lambdaUM, wafers float64) float64 {
		if wafers < 1 {
			wafers = 1
		}
		avg, err := curve.AverageCost(wafers)
		if err != nil {
			// Unreachable after the wafers clamp; keep the multiplier neutral.
			avg = refAvg
		}
		volMult := avg / refAvg
		return base * maturityMult * volMult
	}, nil
}
