package fab_test

import (
	"fmt"

	"repro/internal/fab"
)

// The paper's premise quantified: fabline capital doubles per node shrink.
func ExampleCapexForNode() {
	for _, lam := range []float64{0.25, 0.18, 0.13, 0.05} {
		capex, err := fab.CapexForNode(lam)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%.0f nm: $%.1fB\n", lam*1000, capex/1e9)
	}
	// Output:
	// 250 nm: $1.5B
	// 180 nm: $2.8B
	// 130 nm: $5.3B
	// 50 nm: $34.2B
}

// Wafer cost from amortization: low utilization punishes low volume.
func ExampleFabline_WaferCost() {
	line, err := fab.ReferenceFabline(0.25, 200)
	if err != nil {
		fmt.Println(err)
		return
	}
	full, err := line.WaferCost(1.0)
	if err != nil {
		fmt.Println(err)
		return
	}
	half, err := line.WaferCost(0.5)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("full line $%.0f/wafer, half-empty line $%.0f/wafer\n", full, half)
	// Output:
	// full line $1458/wafer, half-empty line $2917/wafer
}
