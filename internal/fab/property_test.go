package fab

import (
	"testing"
	"testing/quick"
)

// Property: capex strictly grows as the feature size shrinks.
func TestCapexMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		lam := 0.02 + float64(a%1000)/1000
		shrink := 0.5 + float64(b%400)/1000
		big, err1 := CapexForNode(lam)
		small, err2 := CapexForNode(lam * shrink)
		return err1 == nil && err2 == nil && small > big
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the experience curve's unit cost never increases with
// cumulative volume, and the running average always dominates it.
func TestExperienceCurveProperty(t *testing.T) {
	f := func(a uint16, b uint8) bool {
		rate := 0.7 + 0.3*float64(b%100)/100 // [0.7, 1.0)
		n := 1 + float64(a)                  // [1, 65536]
		c := ExperienceCurve{FirstUnitCost: 100, LearningRate: rate}
		u1, err1 := c.UnitCost(n)
		u2, err2 := c.UnitCost(2 * n)
		avg, err3 := c.AverageCost(2 * n)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return u2 <= u1 && avg >= u2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
