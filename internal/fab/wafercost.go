// Package fab models the economics of the fabrication line itself: capital
// amortization, throughput, process maturity, and the resulting cost of a
// fabricated wafer — the Cm_sq(A_w, λ, N_w) dependence that the paper's
// generalized model eq (7) demands and its reference [30] ("Estimation of
// Wafer Cost for Technology Design") sketches. The paper's central premise
// — exponentially growing fab cost with shrinking feature size — is the
// CapexForNode curve.
package fab

import (
	"fmt"
	"math"
)

// Fabline describes a fabrication facility.
type Fabline struct {
	Name            string
	CapexDollars    float64 // total capital cost of the line
	LifetimeYears   float64 // depreciation horizon
	WafersPerYear   float64 // nameplate capacity at full utilization
	OperatingFactor float64 // yearly opex as a fraction of capex (0 → default 0.15)
	LambdaUM        float64 // process minimum feature size
	WaferDiameterMM float64 // wafer size the line runs
}

// Validate reports the first invalid field of f, or nil.
func (f Fabline) Validate() error {
	switch {
	case f.CapexDollars <= 0:
		return fmt.Errorf("fab: %q: capex must be positive, got %v", f.Name, f.CapexDollars)
	case f.LifetimeYears <= 0:
		return fmt.Errorf("fab: %q: lifetime must be positive, got %v", f.Name, f.LifetimeYears)
	case f.WafersPerYear <= 0:
		return fmt.Errorf("fab: %q: capacity must be positive, got %v", f.Name, f.WafersPerYear)
	case f.OperatingFactor < 0:
		return fmt.Errorf("fab: %q: operating factor must be non-negative, got %v", f.Name, f.OperatingFactor)
	case f.LambdaUM <= 0:
		return fmt.Errorf("fab: %q: feature size must be positive, got %v", f.Name, f.LambdaUM)
	case f.WaferDiameterMM <= 0:
		return fmt.Errorf("fab: %q: wafer diameter must be positive, got %v", f.Name, f.WaferDiameterMM)
	}
	return nil
}

// operatingFactor returns the opex fraction with the zero default applied.
func (f Fabline) operatingFactor() float64 {
	if f.OperatingFactor == 0 {
		return 0.15
	}
	return f.OperatingFactor
}

// WaferAreaCM2 returns the full area of the wafers the line runs.
func (f Fabline) WaferAreaCM2() float64 {
	r := f.WaferDiameterMM / 20
	return math.Pi * r * r
}

// CapexForNode returns the paper-era rule-of-thumb capital cost of a
// leading-edge fabline at the given feature size: roughly $1.5 B at
// 0.25 µm, doubling with every full node shrink (×0.7 in λ). This is the
// "billions of dollars for nanometer fablines" premise quantified:
//
//	capex(λ) = $1.5e9 · 2^(log_{0.7}(λ/0.25))
func CapexForNode(lambdaUM float64) (float64, error) {
	if lambdaUM <= 0 {
		return 0, fmt.Errorf("fab: feature size must be positive, got %v", lambdaUM)
	}
	nodes := math.Log(lambdaUM/0.25) / math.Log(0.7)
	return 1.5e9 * math.Pow(2, nodes), nil
}

// ReferenceFabline builds a plausible leading-edge line for the node:
// CapexForNode capital, 5-year depreciation, and capacity scaled to 30k
// wafer starts/month at 200 mm (smaller wafers run proportionally more).
func ReferenceFabline(lambdaUM, waferDiameterMM float64) (Fabline, error) {
	capex, err := CapexForNode(lambdaUM)
	if err != nil {
		return Fabline{}, err
	}
	if waferDiameterMM <= 0 {
		return Fabline{}, fmt.Errorf("fab: wafer diameter must be positive, got %v", waferDiameterMM)
	}
	f := Fabline{
		Name:            fmt.Sprintf("ref-%.0fnm-%.0fmm", lambdaUM*1000, waferDiameterMM),
		CapexDollars:    capex,
		LifetimeYears:   5,
		WafersPerYear:   30000 * 12 * (200 * 200) / (waferDiameterMM * waferDiameterMM),
		LambdaUM:        lambdaUM,
		WaferDiameterMM: waferDiameterMM,
	}
	if err := f.Validate(); err != nil {
		return Fabline{}, err
	}
	return f, nil
}

// WaferCost returns the cost of one fabricated wafer when the line runs at
// the given utilization in (0, 1]: the depreciation plus opex of a year,
// divided over the wafers actually produced. Low utilization is how
// expensive fabs punish low-volume products.
func (f Fabline) WaferCost(utilization float64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if !(utilization > 0 && utilization <= 1) {
		return 0, fmt.Errorf("fab: utilization must be in (0,1], got %v", utilization)
	}
	yearly := f.CapexDollars/f.LifetimeYears + f.CapexDollars*f.operatingFactor()
	return yearly / (f.WafersPerYear * utilization), nil
}

// CostPerCM2 returns the wafer cost expressed per cm² of wafer area, the
// Cm_sq the core cost model consumes.
func (f Fabline) CostPerCM2(utilization float64) (float64, error) {
	wc, err := f.WaferCost(utilization)
	if err != nil {
		return 0, err
	}
	return wc / f.WaferAreaCM2(), nil
}
