package devices_test

import (
	"fmt"

	"repro/internal/devices"
)

// Look up a Table A1 row and its derived quantities.
func ExampleByID() {
	k7, err := devices.ByID(17)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: logic s_d = %.1f on %.2f µm\n", k7.Name, k7.SdLogic, k7.LambdaUM)
	// Output:
	// K7 (Athlon): logic s_d = 335.6 on 0.25 µm
}

// The §2.2.2 market comparison: same node, different density strategy.
func ExampleSameNodeComparison() {
	ratio, err := devices.SameNodeComparison(14, 9) // K6 vs Pentium II, 0.25 µm
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("Pentium II transistors cost %.2fx the K6's\n", ratio)
	// Output:
	// Pentium II transistors cost 2.25x the K6's
}

// The headline spread of the Table A1 study.
func ExampleLogicSdRange() {
	r, err := devices.LogicSdRange()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("logic s_d spans %.1f to %.1f over %d designs\n", r.Min, r.Max, r.N)
	// Output:
	// logic s_d spans 104.1 to 765.3 over 48 designs
}
