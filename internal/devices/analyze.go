package devices

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/stats"
)

// SdRange reports the spread of an s_d population.
type SdRange struct {
	Min, Max, Mean, Median float64
	N                      int
}

// LogicSdRange summarizes the logic s_d of all devices that have logic.
// The paper quotes this range as ≈100 (full custom) to ≈1000 (sparse
// ASICs).
func LogicSdRange() (SdRange, error) {
	return sdRange(func(d Device) (float64, bool) {
		return d.SdLogic, d.LogicTransistors > 0
	})
}

// MemSdRange summarizes the memory s_d of all devices with embedded
// memory. The paper quotes SRAM values near 30.
func MemSdRange() (SdRange, error) {
	return sdRange(func(d Device) (float64, bool) {
		return d.SdMem, d.MemTransistors > 0
	})
}

func sdRange(pick func(Device) (float64, bool)) (SdRange, error) {
	var xs []float64
	for _, d := range tableA1 {
		if v, ok := pick(d); ok {
			xs = append(xs, v)
		}
	}
	s, err := stats.Summarize(xs)
	if err != nil {
		return SdRange{}, err
	}
	return SdRange{Min: s.Min, Max: s.Max, Mean: s.Mean, Median: s.Median, N: s.N}, nil
}

// VendorTrend fits logic s_d against year for one vendor's CPUs and
// returns the regression. A positive slope is the "worsening design
// density" trend §2.2.2 identifies for major microprocessor producers.
func VendorTrend(vendor string) (stats.LinearFit, error) {
	var xs, ys []float64
	for _, d := range tableA1 {
		if d.Vendor == vendor && d.Kind == KindCPU && d.LogicTransistors > 0 {
			xs = append(xs, float64(d.Year))
			ys = append(ys, d.SdLogic)
		}
	}
	if len(xs) < 2 {
		return stats.LinearFit{}, fmt.Errorf("devices: vendor %q has %d CPU rows, need at least 2", vendor, len(xs))
	}
	return stats.LinearRegression(xs, ys)
}

// MeanLogicSd returns the mean logic s_d of a vendor's CPUs, optionally
// restricted to years strictly before beforeYear (0 = no restriction).
func MeanLogicSd(vendor string, beforeYear int) (float64, error) {
	var xs []float64
	for _, d := range tableA1 {
		if d.Vendor != vendor || d.Kind != KindCPU || d.LogicTransistors == 0 {
			continue
		}
		if beforeYear != 0 && d.Year >= beforeYear {
			continue
		}
		xs = append(xs, d.SdLogic)
	}
	if len(xs) == 0 {
		return 0, errors.New("devices: no matching rows")
	}
	mean, _, err := stats.MeanStderr(xs)
	return mean, err
}

// Figure1Point is one marker of the Figure 1 scatter: a device's logic
// s_d against its feature size.
type Figure1Point struct {
	Device   string
	Vendor   string
	Kind     Kind
	Year     int
	LambdaUM float64
	SdLogic  float64
}

// Figure1Series returns the Figure 1 scatter data — every device with
// logic, ordered by year then table order — from which the paper reads the
// industry-wide worsening of design density.
func Figure1Series() []Figure1Point {
	var pts []Figure1Point
	for _, d := range tableA1 {
		if d.LogicTransistors == 0 {
			continue
		}
		pts = append(pts, Figure1Point{
			Device: d.Name, Vendor: d.Vendor, Kind: d.Kind,
			Year: d.Year, LambdaUM: d.LambdaUM, SdLogic: d.SdLogic,
		})
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Year < pts[j].Year })
	return pts
}

// IndustryTrend fits logic s_d against year across all CPUs in the table.
// The paper's headline observation is that this slope is positive: time-to-
// market pressure is decompressing designs faster than interconnect needs
// explain.
func IndustryTrend() (stats.LinearFit, error) {
	var xs, ys []float64
	for _, d := range tableA1 {
		if d.Kind == KindCPU && d.LogicTransistors > 0 {
			xs = append(xs, float64(d.Year))
			ys = append(ys, d.SdLogic)
		}
	}
	return stats.LinearRegression(xs, ys)
}

// KindSummary reports the logic-s_d summary per device kind, showing the
// customization spectrum: CPUs densest, ASIC-class parts sparsest.
func KindSummary() (map[Kind]SdRange, error) {
	out := make(map[Kind]SdRange)
	for _, k := range []Kind{KindCPU, KindDSP, KindMPEG, KindASIC} {
		var xs []float64
		for _, d := range ByKind(k) {
			if d.LogicTransistors > 0 {
				xs = append(xs, d.SdLogic)
			}
		}
		if len(xs) == 0 {
			continue
		}
		s, err := stats.Summarize(xs)
		if err != nil {
			return nil, err
		}
		out[k] = SdRange{Min: s.Min, Max: s.Max, Mean: s.Mean, Median: s.Median, N: s.N}
	}
	return out, nil
}
