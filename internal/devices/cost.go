package devices

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// EraCostPerCM2 estimates the manufacturing cost per cm² a design's node
// faced, anchored at the paper's 8 $/cm² for the 0.18 µm generation and
// declining ~12% per full node backward (older, depreciated lines are
// cheaper per area):
//
//	C_sq(λ) = 8 · 0.88^g,  g = log_{1/0.7}(λ/0.18)  (generations older than 0.18 µm)
//
// It returns an error for non-positive feature sizes.
func EraCostPerCM2(lambdaUM float64) (float64, error) {
	if lambdaUM <= 0 {
		return 0, fmt.Errorf("devices: feature size must be positive, got %v", lambdaUM)
	}
	generationsOlder := math.Log(lambdaUM/0.18) / math.Log(1/0.7)
	return 8 * math.Pow(0.88, generationsOlder), nil
}

// DeviceCost is a Table A1 device priced through eq (3).
type DeviceCost struct {
	Device
	CostPerCM2    float64 // era-adjusted Cm_sq
	TransistorUSD float64 // eq (3) at Y = 0.8
	DieUSD        float64
}

// CostAnalysis prices every Table A1 device through eq (3) at the era's
// cost per cm² and the paper's Y = 0.8, sorted by cost per transistor.
// The ranking makes the paper's Intel-vs-AMD point quantitative: the
// denser design literally sells cheaper transistors on the same node.
func CostAnalysis() ([]DeviceCost, error) {
	var out []DeviceCost
	for _, d := range All() {
		csq, err := EraCostPerCM2(d.LambdaUM)
		if err != nil {
			return nil, err
		}
		p := core.Process{
			Name:         d.Name,
			LambdaUM:     d.LambdaUM,
			CostPerCM2:   csq,
			Yield:        0.8,
			WaferAreaCM2: 300,
		}
		sdTotal, err := d.SdTotal()
		if err != nil {
			return nil, err
		}
		ctr, err := core.ManufacturingCostPerTransistor(p, core.Design{
			Name:        d.Name,
			Transistors: d.TotalTransistors(),
			Sd:          sdTotal,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, DeviceCost{
			Device:        d,
			CostPerCM2:    csq,
			TransistorUSD: ctr,
			DieUSD:        ctr * d.TotalTransistors(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TransistorUSD < out[j].TransistorUSD })
	return out, nil
}

// SameNodeComparison prices two devices that share a feature size and
// returns the cost ratio b/a per transistor — >1 means a sells cheaper
// transistors. It errors when the nodes differ, because cross-node
// comparisons conflate design density with scaling.
func SameNodeComparison(aID, bID int) (ratio float64, err error) {
	a, err := ByID(aID)
	if err != nil {
		return 0, err
	}
	b, err := ByID(bID)
	if err != nil {
		return 0, err
	}
	if math.Abs(a.LambdaUM-b.LambdaUM) > 1e-9 {
		return 0, fmt.Errorf("devices: %s (%v µm) and %s (%v µm) are on different nodes",
			a.Name, a.LambdaUM, b.Name, b.LambdaUM)
	}
	sdA, err := a.SdTotal()
	if err != nil {
		return 0, err
	}
	sdB, err := b.SdTotal()
	if err != nil {
		return 0, err
	}
	// Same node, same C_sq and Y: the eq (3) ratio reduces to s_d ratio.
	return sdB / sdA, nil
}
