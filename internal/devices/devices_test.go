package devices

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestTableHas49Rows(t *testing.T) {
	all := All()
	if len(all) != 49 {
		t.Fatalf("Table A1 has %d rows, want 49", len(all))
	}
	for i, d := range all {
		if d.ID != i+1 {
			t.Fatalf("row %d has ID %d", i, d.ID)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].SdLogic = -1
	if All()[0].SdLogic == -1 {
		t.Fatal("All exposes internal state")
	}
}

func TestRowSelfConsistency(t *testing.T) {
	// Every row must satisfy eq (2) exactly: recomputing s_d from the
	// implied areas returns the stored value.
	for _, d := range All() {
		if d.LogicTransistors > 0 {
			sd, err := core.SdFromLayout(d.LogicAreaCM2(), d.LogicTransistors, d.LambdaUM)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sd-d.SdLogic) > 1e-9*d.SdLogic {
				t.Errorf("row %d (%s): recomputed logic s_d %v != stored %v", d.ID, d.Name, sd, d.SdLogic)
			}
		}
		if d.MemTransistors > 0 {
			sd, err := core.SdFromLayout(d.MemAreaCM2(), d.MemTransistors, d.LambdaUM)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sd-d.SdMem) > 1e-9*d.SdMem {
				t.Errorf("row %d (%s): recomputed mem s_d %v != stored %v", d.ID, d.Name, sd, d.SdMem)
			}
		}
	}
}

func TestPaperHeadlineRanges(t *testing.T) {
	logic, err := LogicSdRange()
	if err != nil {
		t.Fatal(err)
	}
	// §2.2.2: logic s_d ranges from ≈100 up toward 1000.
	if logic.Min < 95 || logic.Min > 130 {
		t.Errorf("min logic s_d = %v, want ≈100–130", logic.Min)
	}
	if logic.Max < 600 || logic.Max > 1000 {
		t.Errorf("max logic s_d = %v, want 600–1000", logic.Max)
	}
	mem, err := MemSdRange()
	if err != nil {
		t.Fatal(err)
	}
	// SRAM values "in range of 30".
	if mem.Min < 25 || mem.Min > 45 {
		t.Errorf("min memory s_d = %v, want ≈30–45", mem.Min)
	}
	if mem.Median > 100 {
		t.Errorf("median memory s_d = %v, want under 100", mem.Median)
	}
	if logic.Median < 2*mem.Median {
		t.Errorf("logic median %v not well above memory median %v", logic.Median, mem.Median)
	}
}

func TestIntelDensityWorsens(t *testing.T) {
	fit, err := VendorTrend("Intel")
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope <= 0 {
		t.Fatalf("Intel logic s_d slope = %v squares/year, want positive (worsening density)", fit.Slope)
	}
	// Concrete anchor: Pentium P5 (1993) vs Pentium II on 0.25 µm (1998).
	p5, err := ByID(2)
	if err != nil {
		t.Fatal(err)
	}
	pii, err := ByID(9)
	if err != nil {
		t.Fatal(err)
	}
	if pii.SdLogic < 2*p5.SdLogic {
		t.Fatalf("Pentium II s_d %v not a two-fold increase over P5 %v", pii.SdLogic, p5.SdLogic)
	}
}

func TestAMDDenserThanIntelUntilK7(t *testing.T) {
	amd, err := MeanLogicSd("AMD", 1999)
	if err != nil {
		t.Fatal(err)
	}
	intel, err := MeanLogicSd("Intel", 1999)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-K7, the market follower used cheaper (denser) transistors.
	if amd >= intel {
		t.Fatalf("pre-1999 AMD mean s_d %v not below Intel %v", amd, intel)
	}
	k7, err := ByID(17)
	if err != nil {
		t.Fatal(err)
	}
	if k7.Name != "K7 (Athlon)" {
		t.Fatalf("row 17 = %q, want the K7", k7.Name)
	}
	if k7.SdLogic <= 300 {
		t.Fatalf("K7 s_d = %v, paper says well above 300", k7.SdLogic)
	}
}

func TestIndustryTrendPositive(t *testing.T) {
	fit, err := IndustryTrend()
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope <= 0 {
		t.Fatalf("industry slope = %v, want positive", fit.Slope)
	}
	if fit.N < 30 {
		t.Fatalf("industry fit over %d CPUs, want the bulk of the table", fit.N)
	}
}

func TestKindSummaryOrdering(t *testing.T) {
	ks, err := KindSummary()
	if err != nil {
		t.Fatal(err)
	}
	// ASIC-class parts are the sparse tail; their mean must exceed CPUs'.
	if ks[KindASIC].Mean <= ks[KindCPU].Mean {
		t.Fatalf("ASIC mean s_d %v not above CPU mean %v", ks[KindASIC].Mean, ks[KindCPU].Mean)
	}
	// MPEG parts too (544.5, 350.9, 408.1).
	if ks[KindMPEG].Mean <= ks[KindCPU].Mean {
		t.Fatalf("MPEG mean s_d %v not above CPU mean %v", ks[KindMPEG].Mean, ks[KindCPU].Mean)
	}
}

func TestFigure1Series(t *testing.T) {
	pts := Figure1Series()
	if len(pts) != 48 { // 49 rows minus the memory-only SRAM
		t.Fatalf("Figure 1 has %d points, want 48", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Year < pts[i-1].Year {
			t.Fatal("Figure 1 points not ordered by year")
		}
	}
	for _, p := range pts {
		if p.SdLogic <= 0 || p.LambdaUM <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
}

func TestByAccessors(t *testing.T) {
	if _, err := ByID(0); err == nil {
		t.Fatal("accepted missing ID")
	}
	intel := ByVendor("Intel")
	if len(intel) != 11 {
		t.Fatalf("Intel rows = %d, want 11", len(intel))
	}
	srams := ByKind(KindSRAM)
	if len(srams) != 1 || srams[0].SdMem > 40 {
		t.Fatalf("SRAM rows = %+v", srams)
	}
	vendors := Vendors()
	if len(vendors) < 10 {
		t.Fatalf("vendor list too small: %v", vendors)
	}
	for i := 1; i < len(vendors); i++ {
		if vendors[i] <= vendors[i-1] {
			t.Fatal("vendors not sorted")
		}
	}
}

func TestSdTotalBetweenComponents(t *testing.T) {
	for _, d := range All() {
		if d.MemTransistors == 0 || d.LogicTransistors == 0 {
			continue
		}
		total, err := d.SdTotal()
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := d.SdMem, d.SdLogic
		if lo > hi {
			lo, hi = hi, lo
		}
		if total < lo-1e-9 || total > hi+1e-9 {
			t.Errorf("row %d: blended s_d %v outside [%v, %v]", d.ID, total, lo, hi)
		}
	}
}

func TestDieAreasPlausible(t *testing.T) {
	// Every die in the table should land between 0.1 and 6 cm² — the
	// physical envelope of the era's reticles.
	for _, d := range All() {
		a := d.DieAreaCM2()
		if a < 0.1 || a > 6 {
			t.Errorf("row %d (%s): die area %v cm² implausible", d.ID, d.Name, a)
		}
	}
}

func TestMeanLogicSdValidation(t *testing.T) {
	if _, err := MeanLogicSd("NoSuchVendor", 0); err == nil {
		t.Fatal("accepted unknown vendor")
	}
	if _, err := VendorTrend("Sun"); err == nil {
		t.Fatal("accepted single-row vendor trend") // Sun has one CPU row
	}
}
