package devices

import (
	"math"
	"testing"
)

func TestEraCostPerCM2(t *testing.T) {
	// Anchored at the paper's 8 $/cm² for 0.18 µm.
	c, err := EraCostPerCM2(0.18)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-8) > 1e-9 {
		t.Fatalf("cost at anchor = %v, want 8", c)
	}
	// Older nodes cheaper, newer dearer.
	older, err := EraCostPerCM2(0.35)
	if err != nil {
		t.Fatal(err)
	}
	newer, err := EraCostPerCM2(0.13)
	if err != nil {
		t.Fatal(err)
	}
	if !(older < 8 && 8 < newer) {
		t.Fatalf("era ordering wrong: %v, 8, %v", older, newer)
	}
	if _, err := EraCostPerCM2(0); err == nil {
		t.Fatal("accepted zero feature size")
	}
}

func TestCostAnalysisSortedAndComplete(t *testing.T) {
	rows, err := CostAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 49 {
		t.Fatalf("rows = %d, want 49", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TransistorUSD < rows[i-1].TransistorUSD {
			t.Fatal("not sorted by transistor cost")
		}
	}
	// The SRAM sells the cheapest transistors in the table (densest, and
	// on a late node).
	if rows[0].Kind != KindSRAM {
		t.Fatalf("cheapest transistor = %s (%s), want the SRAM", rows[0].Name, rows[0].Kind)
	}
	// Die prices stay within the plausible envelope of the era.
	for _, r := range rows {
		if r.DieUSD < 0.5 || r.DieUSD > 500 {
			t.Errorf("%s: die cost $%v implausible", r.Name, r.DieUSD)
		}
	}
}

func TestSameNodeComparisonK6vsPentiumII(t *testing.T) {
	// Both on 0.25 µm: K6 (Model 7, row 14) vs Pentium II (row 9). The
	// paper: AMD competed "by using less expensive transistors".
	ratio, err := SameNodeComparison(14, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1 {
		t.Fatalf("Pentium II / K6 transistor cost ratio = %v, want > 1 (AMD cheaper)", ratio)
	}
}

func TestSameNodeComparisonRejectsCrossNode(t *testing.T) {
	// Row 2 (0.8 µm) vs row 9 (0.25 µm).
	if _, err := SameNodeComparison(2, 9); err == nil {
		t.Fatal("accepted cross-node comparison")
	}
	if _, err := SameNodeComparison(999, 9); err == nil {
		t.Fatal("accepted missing row")
	}
	if _, err := SameNodeComparison(9, 999); err == nil {
		t.Fatal("accepted missing row")
	}
}
