// Package devices embeds the paper's Table A1: the study of 49 published
// industrial designs (ISSCC/JSSC/CICC, refs [5–29]) from which the design
// decompression indices s_d of Figure 1 were extracted.
//
// Transcription note: the available scan of the paper renders several raw
// geometry cells of Table A1 illegibly, while the extracted s_d columns —
// the quantity every analysis in the paper uses — survive cleanly. This
// dataset therefore takes the published s_d values (and the device
// identities, feature sizes, and memory/logic splits where legible) as
// authoritative and back-solves the remaining geometry so that every row
// is exactly self-consistent with eq (2): area = N_tr·λ²·s_d. Aggregate
// properties asserted by tests match the paper's claims: logic s_d spans
// ≈100–770 squares/transistor, memory s_d sits near 30–100 (SRAM ≈ 30),
// Intel's s_d worsens across the Pentium line, AMD runs denser than Intel
// until the K7 crosses 300, and ASIC-class parts populate the sparse tail.
package devices

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Kind classifies a Table A1 device.
type Kind string

// Device kinds present in Table A1.
const (
	KindCPU  Kind = "CPU"
	KindDSP  Kind = "DSP"
	KindMPEG Kind = "MPEG"
	KindASIC Kind = "ASIC"
	KindSRAM Kind = "SRAM"
)

// Device is one row of Table A1.
type Device struct {
	ID       int
	Name     string
	Vendor   string
	Kind     Kind
	Year     int
	LambdaUM float64 // minimum feature size, µm

	MemTransistors   float64 // transistors in embedded memory (0 when no split)
	LogicTransistors float64 // transistors in logic (total when no split)
	SdMem            float64 // published memory s_d (0 when no split)
	SdLogic          float64 // published logic s_d
}

// row builds a Device from millions of transistors.
func row(id int, name, vendor string, kind Kind, year int, lambda, memM, logicM, sdMem, sdLogic float64) Device {
	return Device{
		ID: id, Name: name, Vendor: vendor, Kind: kind, Year: year,
		LambdaUM:       lambda,
		MemTransistors: memM * 1e6, LogicTransistors: logicM * 1e6,
		SdMem: sdMem, SdLogic: sdLogic,
	}
}

// tableA1 is the embedded dataset. Order follows the paper's table:
// Intel, AMD, PowerPC/IBM/Motorola, other RISC, DSP, MPEG, ASIC, SRAM.
var tableA1 = []Device{
	row(1, "CPU (1.5um)", "Intel", KindCPU, 1989, 1.50, 0, 0.19, 0, 110.5),
	row(2, "Pentium (P5)", "Intel", KindCPU, 1993, 0.80, 0.10, 3.00, 46.88, 104.1),
	row(3, "Pentium (P54)", "Intel", KindCPU, 1994, 0.60, 0, 3.30, 0, 146.4),
	row(4, "Pentium (P54C)", "Intel", KindCPU, 1995, 0.60, 0, 3.10, 0, 132.6),
	row(5, "Pentium Pro", "Intel", KindCPU, 1995, 0.60, 0, 5.50, 0, 154.5),
	row(6, "Pentium Pro (0.35)", "Intel", KindCPU, 1997, 0.35, 0.77, 4.73, 53.15, 327.9),
	row(7, "Pentium MMX", "Intel", KindCPU, 1997, 0.35, 0, 4.50, 0, 253.7),
	row(8, "Pentium II (P6)", "Intel", KindCPU, 1997, 0.35, 1.23, 6.28, 52.09, 233.6),
	row(9, "Pentium II (P6, 0.25)", "Intel", KindCPU, 1998, 0.25, 1.23, 6.28, 52.08, 323.0),
	row(10, "Pentium MMX (0.25)", "Intel", KindCPU, 1998, 0.25, 0, 4.50, 0, 207.1),
	row(11, "Pentium III", "Intel", KindCPU, 1999, 0.25, 0, 9.50, 0, 207.1),
	row(12, "K5", "AMD", KindCPU, 1996, 0.35, 1.15, 3.15, 42.59, 206.2),
	row(13, "K6 (Model 6)", "AMD", KindCPU, 1997, 0.35, 2.10, 6.70, 47.40, 186.2),
	row(14, "K6 (Model 7)", "AMD", KindCPU, 1998, 0.25, 3.10, 5.70, 41.47, 168.4),
	row(15, "K6-2", "AMD", KindCPU, 1998, 0.25, 0, 9.30, 0, 116.9),
	row(16, "K6-III", "AMD", KindCPU, 1999, 0.25, 14.0, 7.30, 45.0, 150.0),
	row(17, "K7 (Athlon)", "AMD", KindCPU, 1999, 0.25, 6.00, 16.0, 51.44, 335.6),
	row(18, "PowerPC 601", "Motorola", KindCPU, 1993, 0.60, 0, 2.80, 0, 171.4),
	row(19, "PowerPC 604", "Motorola", KindCPU, 1995, 0.50, 0, 3.60, 0, 216.6),
	row(20, "PowerPC 620", "Motorola", KindCPU, 1996, 0.35, 6.00, 6.00, 38.10, 182.3),
	row(21, "S/390 G4", "IBM", KindCPU, 1997, 0.35, 0, 7.80, 0, 284.8),
	row(22, "PowerPC 750", "IBM", KindCPU, 1998, 0.25, 0, 6.25, 0, 169.5),
	row(23, "PowerPC 7400", "Motorola", KindCPU, 1999, 0.22, 24.0, 10.0, 43.43, 195.0),
	row(24, "S/390 G5", "IBM", KindCPU, 1999, 0.25, 18.0, 7.00, 48.90, 260.2),
	row(25, "PowerPC 405", "IBM", KindCPU, 1999, 0.20, 3.00, 3.50, 72.92, 416.0),
	row(26, "PowerPC (Cu, SOI)", "IBM", KindCPU, 1999, 0.15, 3.10, 7.10, 174.2, 280.3),
	row(27, "Embedded RISC", "NEC", KindCPU, 1996, 0.35, 1.15, 1.35, 85.0, 290.0),
	row(28, "Alpha 21264 (SOI)", "DEC", KindCPU, 1999, 0.25, 4.50, 5.16, 163.2, 533.3),
	row(29, "Media GX", "Cyrix", KindCPU, 1997, 0.35, 0, 2.40, 0, 223.3),
	row(30, "6x86MX", "Cyrix", KindCPU, 1997, 0.35, 0, 6.00, 0, 263.9),
	row(31, "RISC CPU (0.4)", "NEC", KindCPU, 1994, 0.40, 0, 3.30, 0, 231.9),
	row(32, "RISC CPU (0.25)", "Hitachi", KindCPU, 1998, 0.25, 0, 5.70, 0, 283.5),
	row(33, "PA-RISC 8500", "HP", KindCPU, 1999, 0.25, 92.0, 24.0, 40.0, 158.6),
	row(34, "MIPS64", "NEC", KindCPU, 1999, 0.18, 5.20, 2.00, 89.03, 293.2),
	row(35, "MIPS64 (0.13)", "NEC", KindCPU, 2000, 0.13, 5.20, 2.00, 100.1, 331.3),
	row(36, "MAJC 5200", "Sun", KindCPU, 1999, 0.22, 3.70, 9.20, 89.35, 583.9),
	row(37, "z900", "IBM", KindCPU, 2000, 0.18, 3.40, 1.30, 54.47, 278.2),
	row(38, "Alpha 21364", "DEC", KindCPU, 2000, 0.18, 138.0, 14.0, 61.88, 264.5),
	row(39, "DSP (0.6)", "TI", KindDSP, 1995, 0.60, 0, 0.80, 0, 250.2),
	row(40, "DSP (0.4)", "TI", KindDSP, 1998, 0.40, 0, 12.0, 0, 117.5),
	row(41, "DSP (0.35)", "Lucent", KindDSP, 1997, 0.35, 0, 4.00, 0, 363.0),
	row(42, "MPEG-2 encoder", "C-Cube", KindMPEG, 1996, 0.50, 0, 2.00, 0, 544.5),
	row(43, "MPEG-2 codec", "Sony", KindMPEG, 1997, 0.35, 0, 3.79, 0, 350.9),
	row(44, "MPEG-2 decoder", "NEC", KindMPEG, 1997, 0.35, 0, 3.10, 0, 408.1),
	row(45, "ASIC (mixed)", "LSI", KindASIC, 1997, 0.35, 0, 1.00, 0, 299.2),
	row(46, "ASIC telecom", "LSI", KindASIC, 1999, 0.25, 0, 10.0, 0, 480.0),
	row(47, "Video game chip", "Sony", KindASIC, 2000, 0.18, 0, 10.5, 0, 699.5),
	row(48, "ATM switch", "NEC", KindASIC, 1997, 0.35, 0, 2.40, 0, 765.3),
	row(49, "8Mb SRAM", "IBM", KindSRAM, 1999, 0.18, 48.0, 0, 32.0, 0),
}

// All returns every Table A1 device in table order. The slice is a copy.
func All() []Device {
	return append([]Device(nil), tableA1...)
}

// ByID returns the device with the given Table A1 row number.
func ByID(id int) (Device, error) {
	for _, d := range tableA1 {
		if d.ID == id {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("devices: no Table A1 row %d", id)
}

// ByKind returns all devices of the given kind, in table order.
func ByKind(k Kind) []Device {
	var out []Device
	for _, d := range tableA1 {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// ByVendor returns all devices from the given vendor, in table order.
func ByVendor(vendor string) []Device {
	var out []Device
	for _, d := range tableA1 {
		if d.Vendor == vendor {
			out = append(out, d)
		}
	}
	return out
}

// Vendors returns the distinct vendor names, sorted.
func Vendors() []string {
	seen := map[string]bool{}
	for _, d := range tableA1 {
		seen[d.Vendor] = true
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// TotalTransistors returns the device's transistor count.
func (d Device) TotalTransistors() float64 { return d.MemTransistors + d.LogicTransistors }

// MemAreaCM2 returns the embedded-memory area implied by eq (2).
func (d Device) MemAreaCM2() float64 {
	if d.MemTransistors == 0 {
		return 0
	}
	return d.MemTransistors * core.LambdaSquaredCM2(d.LambdaUM) * d.SdMem
}

// LogicAreaCM2 returns the logic area implied by eq (2).
func (d Device) LogicAreaCM2() float64 {
	if d.LogicTransistors == 0 {
		return 0
	}
	return d.LogicTransistors * core.LambdaSquaredCM2(d.LambdaUM) * d.SdLogic
}

// DieAreaCM2 returns the total die area.
func (d Device) DieAreaCM2() float64 { return d.MemAreaCM2() + d.LogicAreaCM2() }

// SdTotal returns the whole-die decompression index
// A_die/(N_total·λ²) — the blended s_d when memory and logic are pooled.
func (d Device) SdTotal() (float64, error) {
	return core.SdFromLayout(d.DieAreaCM2(), d.TotalTransistors(), d.LambdaUM)
}

// Validate reports the first inconsistency in d, or nil.
func (d Device) Validate() error {
	if d.LambdaUM <= 0 {
		return fmt.Errorf("devices: row %d (%s): feature size must be positive", d.ID, d.Name)
	}
	if d.TotalTransistors() <= 0 {
		return fmt.Errorf("devices: row %d (%s): no transistors", d.ID, d.Name)
	}
	if d.MemTransistors > 0 && d.SdMem <= 0 {
		return fmt.Errorf("devices: row %d (%s): memory present without SdMem", d.ID, d.Name)
	}
	if d.LogicTransistors > 0 && d.SdLogic <= 0 {
		return fmt.Errorf("devices: row %d (%s): logic present without SdLogic", d.ID, d.Name)
	}
	if d.MemTransistors == 0 && d.LogicTransistors == 0 {
		return fmt.Errorf("devices: row %d (%s): empty device", d.ID, d.Name)
	}
	return nil
}
