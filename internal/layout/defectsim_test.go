package layout

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func fixedSize(size float64) func(*stats.RNG) float64 {
	return func(*stats.RNG) float64 { return size }
}

func TestIsFatalShort(t *testing.T) {
	rects := []Rect{
		{X0: 10, Y0: 10, X1: 110, Y1: 12, Layer: Metal1},
		{X0: 10, Y0: 16, X1: 110, Y1: 18, Layer: Metal1},
	}
	// Defect of size 6 centered in the gap bridges both wires.
	if !IsFatal(rects, 50, 14, 6) {
		t.Fatal("bridging defect not fatal")
	}
	// Size 3 in the gap touches neither fully; reaches only one wire.
	if IsFatal(rects, 50, 14.9, 3) && IsFatal(rects, 50, 13.1, 3) {
		t.Fatal("small defect reported as bridging both wires")
	}
	// Far away: harmless.
	if IsFatal(rects, 500, 500, 6) {
		t.Fatal("distant defect fatal")
	}
}

func TestIsFatalOpen(t *testing.T) {
	// A single horizontal wire of width 2.
	rects := []Rect{{X0: 10, Y0: 10, X1: 110, Y1: 12, Layer: Metal1}}
	// A size-4 defect centered on the wire spans its width: open.
	if !IsFatal(rects, 50, 11, 4) {
		t.Fatal("severing defect not fatal")
	}
	// A size-1.5 defect inside the wire does not span it.
	if IsFatal(rects, 50, 11, 1.5) {
		t.Fatal("sub-width defect fatal")
	}
	// A spanning defect beyond the wire end does not sever anything.
	if IsFatal(rects, 115, 11, 4) {
		t.Fatal("defect beyond wire end fatal")
	}
}

func TestSimulateDefectsMatchesCriticalArea(t *testing.T) {
	// Two parallel wires, fixed defect size: the analytic fatal area is
	// shorts + opens from critarea.go; the Monte Carlo kill probability
	// per defect must match fatalArea/dieArea, and the yield must match
	// Poisson with λ = meanDefects · fatalFraction.
	l := twoWires(4)
	const size = 6.0
	shorts, err := CriticalArea(l, Metal1, size)
	if err != nil {
		t.Fatal(err)
	}
	opens, err := OpenCriticalArea(l, Metal1, size)
	if err != nil {
		t.Fatal(err)
	}
	fatalFraction := (shorts + opens) / float64(l.AreaLambda2())

	const meanDefects = 2.0
	res, err := SimulateDefects(l, DefectSimConfig{
		Layer:       Metal1,
		MeanDefects: meanDefects,
		SizeSampler: fixedSize(size),
		Trials:      40000,
		Seed:        77,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-meanDefects * fatalFraction)
	if math.Abs(res.Yield-want) > 4*res.StdErr+0.01 {
		t.Fatalf("measured yield %v ± %v, analytic Poisson(λ=%v) = %v",
			res.Yield, res.StdErr, meanDefects*fatalFraction, want)
	}
	if math.Abs(res.MeanDefects-meanDefects) > 0.05 {
		t.Fatalf("realized defect rate %v, want %v", res.MeanDefects, meanDefects)
	}
}

func TestSimulateDefectsZeroRate(t *testing.T) {
	l := twoWires(4)
	res, err := SimulateDefects(l, DefectSimConfig{
		Layer: Metal1, MeanDefects: 0, SizeSampler: fixedSize(6), Trials: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != 1 || res.TrialsKilled != 0 {
		t.Fatalf("zero defects killed dies: %+v", res)
	}
}

func TestSimulateDefectsBiggerDefectsKillMore(t *testing.T) {
	l, err := GenerateRandomLogic(RandomLogicConfig{Cells: 150, RowUtil: 0.8, RouteTracks: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	run := func(size float64) float64 {
		res, err := SimulateDefects(l, DefectSimConfig{
			Layer: Metal2, MeanDefects: 3, SizeSampler: fixedSize(size), Trials: 4000, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Yield
	}
	small, big := run(1.5), run(8)
	if big >= small {
		t.Fatalf("bigger defects did not reduce yield: %v vs %v", big, small)
	}
}

func TestSimulateDefectsDeterministic(t *testing.T) {
	l := twoWires(4)
	cfg := DefectSimConfig{Layer: Metal1, MeanDefects: 1, SizeSampler: fixedSize(5), Trials: 500, Seed: 3}
	a, err := SimulateDefects(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateDefects(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed, different results")
	}
}

func TestSimulateDefectsValidation(t *testing.T) {
	l := twoWires(4)
	if _, err := SimulateDefects(l, DefectSimConfig{Layer: Metal1, MeanDefects: -1, SizeSampler: fixedSize(1), Trials: 10}); err == nil {
		t.Fatal("accepted negative rate")
	}
	if _, err := SimulateDefects(l, DefectSimConfig{Layer: Metal1, MeanDefects: 1, Trials: 10}); err == nil {
		t.Fatal("accepted nil sampler")
	}
	if _, err := SimulateDefects(l, DefectSimConfig{Layer: Metal1, MeanDefects: 1, SizeSampler: fixedSize(1), Trials: 0}); err == nil {
		t.Fatal("accepted zero trials")
	}
	bad := &Layout{Name: "b", Width: 0, Height: 1}
	if _, err := SimulateDefects(bad, DefectSimConfig{Layer: Metal1, MeanDefects: 1, SizeSampler: fixedSize(1), Trials: 10}); err == nil {
		t.Fatal("accepted invalid layout")
	}
}

func TestSimulateDefectsDeterministicAcrossWorkers(t *testing.T) {
	l := twoWires(4)
	cfg := DefectSimConfig{
		Layer:       Metal1,
		MeanDefects: 2.0,
		SizeSampler: func(r *stats.RNG) float64 { return r.Range(2, 8) },
		Trials:      5000,
		Seed:        23,
	}
	cfg.Workers = 1
	ref, err := SimulateDefects(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg.Workers = workers
		got, err := SimulateDefects(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: %+v, serial %+v", workers, got, ref)
		}
	}
}
