package layout

import (
	"math"
	"testing"
)

// The zero-/low-allocation contracts of the geometry kernels, pinned with
// testing.AllocsPerRun so a regression in the scratch-reuse machinery is
// a test failure, not a silent GC-pressure creep.

func allocTestLayout(t testing.TB) *Layout {
	t.Helper()
	l, err := GenerateRandomLogic(RandomLogicConfig{Cells: 120, RowUtil: 0.7, RouteTracks: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCritEvaluatorZeroAllocEval(t *testing.T) {
	l := allocTestLayout(t)
	ev, err := NewCritEvaluator(l, Metal1)
	if err != nil {
		t.Fatal(err)
	}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += ev.ShortArea(4) + ev.OpenArea(4) + ev.Area(2.5) + ev.Fraction(3)
	})
	if allocs != 0 {
		t.Fatalf("CritEvaluator eval allocates %v per run, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("kernel returned nothing")
	}
}

func TestCritEvaluatorResetReusesBuffers(t *testing.T) {
	l := allocTestLayout(t)
	ev, err := NewCritEvaluator(l, Metal1)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := ev.Reset(l, Metal1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("same-geometry Reset allocates %v per run, want 0", allocs)
	}
}

func TestCritEvaluatorMatchesPublicKernels(t *testing.T) {
	l := allocTestLayout(t)
	ev, err := NewCritEvaluator(l, Metal1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.5, 2, 4, 9.5, 30} {
		s, err := CriticalArea(l, Metal1, x)
		if err != nil {
			t.Fatal(err)
		}
		if got := ev.ShortArea(x); got != s {
			t.Fatalf("x=%v: evaluator shorts %v != CriticalArea %v", x, got, s)
		}
		o, err := OpenCriticalArea(l, Metal1, x)
		if err != nil {
			t.Fatal(err)
		}
		if got := ev.OpenArea(x); got != o {
			t.Fatalf("x=%v: evaluator opens %v != OpenCriticalArea %v", x, got, o)
		}
		f, err := CriticalFraction(l, Metal1, x)
		if err != nil {
			t.Fatal(err)
		}
		if got := ev.Fraction(x); math.Abs(got-f) > 0 {
			t.Fatalf("x=%v: evaluator fraction %v != CriticalFraction %v", x, got, f)
		}
	}
}

func TestUnionAreaSmallInputsNoAlloc(t *testing.T) {
	one := []Rect{{X0: 2, Y0: 3, X1: 7, Y1: 9, Layer: Metal1}}
	if got := UnionArea(nil); got != 0 {
		t.Fatalf("UnionArea(nil) = %d, want 0", got)
	}
	if got := UnionArea(one); got != 30 {
		t.Fatalf("UnionArea(one rect) = %d, want 30", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if UnionArea(nil) != 0 || UnionArea(one) != 30 {
			t.Fatal("wrong area")
		}
	})
	if allocs != 0 {
		t.Fatalf("0/1-rect UnionArea allocates %v per run, want 0", allocs)
	}
}

func TestDedupIntsSmallInputsUntouched(t *testing.T) {
	if got := dedupInts(nil); got != nil {
		t.Fatalf("dedupInts(nil) = %v", got)
	}
	single := []int{5}
	got := dedupInts(single)
	if len(got) != 1 || got[0] != 5 || &got[0] != &single[0] {
		t.Fatalf("dedupInts(single) did not return the input in place: %v", got)
	}
	allocs := testing.AllocsPerRun(100, func() { dedupInts(single) })
	if allocs != 0 {
		t.Fatalf("1-element dedupInts allocates %v per run, want 0", allocs)
	}
}

func TestUnionAreaScratchReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; reuse bound holds only in regular builds")
	}
	rects := allocTestLayout(t).LayerRects(Metal1)
	want := UnionArea(rects) // warm the pooled scratch
	allocs := testing.AllocsPerRun(50, func() {
		if UnionArea(rects) != want {
			t.Fatal("union area changed between runs")
		}
	})
	// The pool can be drained by a concurrent GC, so allow a stray refill
	// but reject per-call churn (the old implementation allocated one
	// interval slice per x-slab).
	if allocs > 1 {
		t.Fatalf("warm UnionArea allocates %v per run, want ≤1", allocs)
	}
}

func TestCriticalAreaCurveCachedMatchesUncached(t *testing.T) {
	l := allocTestLayout(t)
	sizes := []float64{0.5, 1, 2, 4, 8, 16}
	want, err := CriticalAreaCurve(l, Metal1, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ { // cold then warm
		got, err := CriticalAreaCurveCached(l, Metal1, sizes)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("pass %d: length %d != %d", pass, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pass %d: point %d: cached %v != uncached %v", pass, i, got[i], want[i])
			}
		}
	}
}

func TestContentHashGeometryOnly(t *testing.T) {
	a := allocTestLayout(t)
	b := allocTestLayout(t)
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("identical geometry hashes differently")
	}
	b.Name = "renamed"
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("Name leaked into the content hash")
	}
	b.Rects[0].X1++
	if a.ContentHash() == b.ContentHash() {
		t.Fatal("geometry change did not change the hash")
	}
	b.Rects[0].X1--
	b.Transistors++
	if a.ContentHash() == b.ContentHash() {
		t.Fatal("transistor count change did not change the hash")
	}
}
