package layout

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text interchange format is a minimal GDS-flavoured line protocol so
// layouts survive between tools (cmd/regscan, external generators, test
// fixtures):
//
//	LAYOUT <name> <width> <height> <transistors>
//	RECT <layer> <x0> <y0> <x1> <y1>
//	...
//	END
//
// Layer is the lowercase layer name (diffusion, poly, metal1, metal2).
// Blank lines and lines starting with '#' are ignored.

// layerByName maps format names back to layers.
var layerByName = map[string]Layer{
	"diffusion": Diffusion,
	"poly":      Poly,
	"metal1":    Metal1,
	"metal2":    Metal2,
}

// Write serializes the layout in the text interchange format. The layout
// is validated first.
func Write(w io.Writer, l *Layout) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if strings.ContainsAny(l.Name, " \t\n") {
		return fmt.Errorf("layout: name %q must not contain whitespace", l.Name)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "LAYOUT %s %d %d %d\n", l.Name, l.Width, l.Height, l.Transistors)
	for _, r := range l.Rects {
		fmt.Fprintf(bw, "RECT %s %d %d %d %d\n", r.Layer, r.X0, r.Y0, r.X1, r.Y1)
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}

// Read parses a layout from the text interchange format and validates it.
func Read(r io.Reader) (*Layout, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var l *Layout
	ended := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ended {
			return nil, fmt.Errorf("layout: line %d: content after END", lineNo)
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "LAYOUT":
			if l != nil {
				return nil, fmt.Errorf("layout: line %d: duplicate LAYOUT header", lineNo)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("layout: line %d: LAYOUT needs name width height transistors", lineNo)
			}
			w, err1 := strconv.Atoi(fields[2])
			h, err2 := strconv.Atoi(fields[3])
			tx, err3 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("layout: line %d: malformed LAYOUT numbers", lineNo)
			}
			l = &Layout{Name: fields[1], Width: w, Height: h, Transistors: tx}
		case "RECT":
			if l == nil {
				return nil, fmt.Errorf("layout: line %d: RECT before LAYOUT header", lineNo)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("layout: line %d: RECT needs layer x0 y0 x1 y1", lineNo)
			}
			layer, ok := layerByName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("layout: line %d: unknown layer %q", lineNo, fields[1])
			}
			var coords [4]int
			for i := 0; i < 4; i++ {
				v, err := strconv.Atoi(fields[2+i])
				if err != nil {
					return nil, fmt.Errorf("layout: line %d: malformed coordinate %q", lineNo, fields[2+i])
				}
				coords[i] = v
			}
			l.Rects = append(l.Rects, Rect{
				X0: coords[0], Y0: coords[1], X1: coords[2], Y1: coords[3], Layer: layer,
			})
		case "END":
			if l == nil {
				return nil, fmt.Errorf("layout: line %d: END before LAYOUT header", lineNo)
			}
			ended = true
		default:
			return nil, fmt.Errorf("layout: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("layout: read: %w", err)
	}
	if l == nil {
		return nil, fmt.Errorf("layout: no LAYOUT header found")
	}
	if !ended {
		return nil, fmt.Errorf("layout: missing END record")
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}
