package layout

import "fmt"

// Cell is a leaf layout block: a standard cell or a memory bit cell, with
// its geometry in cell-local λ coordinates.
type Cell struct {
	Name        string
	Width       int // λ
	Height      int // λ
	Transistors int
	Rects       []Rect
}

// Validate reports the first structural problem with c, or nil.
func (c Cell) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("layout: cell %q: non-positive dimensions", c.Name)
	}
	if c.Transistors <= 0 {
		return fmt.Errorf("layout: cell %q: no transistors", c.Name)
	}
	for i, r := range c.Rects {
		if !r.Valid() {
			return fmt.Errorf("layout: cell %q: rect %d invalid", c.Name, i)
		}
		if r.X0 < 0 || r.Y0 < 0 || r.X1 > c.Width || r.Y1 > c.Height {
			return fmt.Errorf("layout: cell %q: rect %d escapes the cell", c.Name, i)
		}
	}
	return nil
}

// Sd returns the cell's intrinsic decompression index (λ² per transistor).
func (c Cell) Sd() float64 { return float64(c.Width*c.Height) / float64(c.Transistors) }

// transistorGeometry returns the diffusion+poly skeleton of n gate
// transistors laid out in a row starting at (x, y): a diffusion strip
// crossed by n poly gates at pitch 4λ.
func transistorGeometry(x, y, n int) []Rect {
	rects := []Rect{{X0: x, Y0: y, X1: x + 4*n + 2, Y1: y + 5, Layer: Diffusion}}
	for i := 0; i < n; i++ {
		gx := x + 2 + 4*i
		rects = append(rects, Rect{X0: gx, Y0: y - 2, X1: gx + 2, Y1: y + 7, Layer: Poly})
	}
	return rects
}

// SRAMCell returns the 6-transistor SRAM bit cell: the densest structure
// in the library, s_d ≈ 30 as the paper quotes for SRAM arrays.
func SRAMCell() Cell {
	c := Cell{Name: "sram6t", Width: 15, Height: 12, Transistors: 6}
	// Cross-coupled pair: two 2-transistor rows plus two access devices.
	c.Rects = append(c.Rects, transistorGeometry(1, 3, 2)...)
	c.Rects = append(c.Rects, Rect{X0: 1, Y0: 9, X1: 11, Y1: 11, Layer: Diffusion})
	c.Rects = append(c.Rects,
		Rect{X0: 3, Y0: 8, X1: 5, Y1: 12, Layer: Poly},     // access gate (word line)
		Rect{X0: 8, Y0: 8, X1: 10, Y1: 12, Layer: Poly},    // access gate
		Rect{X0: 0, Y0: 0, X1: 15, Y1: 2, Layer: Metal1},   // bit line
		Rect{X0: 12, Y0: 0, X1: 14, Y1: 12, Layer: Metal2}, // word line strap
	)
	return c
}

// Inverter returns a 2-transistor inverter cell.
func Inverter() Cell {
	c := Cell{Name: "inv", Width: 12, Height: 20, Transistors: 2}
	c.Rects = append(c.Rects, transistorGeometry(1, 3, 1)...)  // NMOS
	c.Rects = append(c.Rects, transistorGeometry(1, 12, 1)...) // PMOS
	c.Rects = append(c.Rects,
		Rect{X0: 0, Y0: 0, X1: 12, Y1: 2, Layer: Metal1},   // ground rail
		Rect{X0: 0, Y0: 18, X1: 12, Y1: 20, Layer: Metal1}, // power rail
		Rect{X0: 8, Y0: 4, X1: 10, Y1: 16, Layer: Metal1},  // output
	)
	return c
}

// NAND2 returns a 4-transistor two-input NAND cell.
func NAND2() Cell {
	c := Cell{Name: "nand2", Width: 16, Height: 20, Transistors: 4}
	c.Rects = append(c.Rects, transistorGeometry(1, 3, 2)...)
	c.Rects = append(c.Rects, transistorGeometry(1, 12, 2)...)
	c.Rects = append(c.Rects,
		Rect{X0: 0, Y0: 0, X1: 16, Y1: 2, Layer: Metal1},
		Rect{X0: 0, Y0: 18, X1: 16, Y1: 20, Layer: Metal1},
		Rect{X0: 12, Y0: 4, X1: 14, Y1: 16, Layer: Metal1},
	)
	return c
}

// DFF returns a 20-transistor D flip-flop cell.
func DFF() Cell {
	c := Cell{Name: "dff", Width: 46, Height: 20, Transistors: 20}
	c.Rects = append(c.Rects, transistorGeometry(1, 3, 10)...)
	c.Rects = append(c.Rects, transistorGeometry(1, 12, 10)...)
	c.Rects = append(c.Rects,
		Rect{X0: 0, Y0: 0, X1: 46, Y1: 2, Layer: Metal1},
		Rect{X0: 0, Y0: 18, X1: 46, Y1: 20, Layer: Metal1},
		Rect{X0: 20, Y0: 4, X1: 22, Y1: 16, Layer: Metal1}, // clock spine
		Rect{X0: 42, Y0: 4, X1: 44, Y1: 16, Layer: Metal1}, // output
	)
	return c
}

// Adder returns a 28-transistor full-adder bit slice, the datapath tile.
func Adder() Cell {
	c := Cell{Name: "fa", Width: 60, Height: 20, Transistors: 28}
	c.Rects = append(c.Rects, transistorGeometry(1, 3, 14)...)
	c.Rects = append(c.Rects, transistorGeometry(1, 12, 14)...)
	c.Rects = append(c.Rects,
		Rect{X0: 0, Y0: 0, X1: 60, Y1: 2, Layer: Metal1},
		Rect{X0: 0, Y0: 18, X1: 60, Y1: 20, Layer: Metal1},
		Rect{X0: 28, Y0: 4, X1: 30, Y1: 16, Layer: Metal1}, // carry chain
		Rect{X0: 56, Y0: 4, X1: 58, Y1: 16, Layer: Metal2}, // sum out
	)
	return c
}

// StdCells returns the logic-cell library (no SRAM) in a deterministic
// order for generator sampling.
func StdCells() []Cell {
	return []Cell{Inverter(), NAND2(), DFF(), Adder()}
}

// Place stamps a cell instance into the layout at origin (x, y). It
// returns an error when the instance would escape the layout bounds.
func (l *Layout) Place(c Cell, x, y int) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if x < 0 || y < 0 || x+c.Width > l.Width || y+c.Height > l.Height {
		return fmt.Errorf("layout %q: cell %q at (%d,%d) escapes %d×%d bounds",
			l.Name, c.Name, x, y, l.Width, l.Height)
	}
	for _, r := range c.Rects {
		l.Rects = append(l.Rects, r.Translate(x, y))
	}
	l.Transistors += c.Transistors
	return nil
}
