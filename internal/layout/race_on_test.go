//go:build race

package layout

// raceEnabled reports whether the race detector instruments this build.
// sync.Pool intentionally drops items under the race detector, so
// pool-reuse allocation bounds only hold in regular builds.
const raceEnabled = true
