package layout

import (
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig, err := GenerateRandomLogic(RandomLogicConfig{Cells: 60, RowUtil: 0.7, RouteTracks: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Width != orig.Width || back.Height != orig.Height || back.Transistors != orig.Transistors {
		t.Fatalf("header mismatch: %+v vs %+v", back, orig)
	}
	if len(back.Rects) != len(orig.Rects) {
		t.Fatalf("rect count %d vs %d", len(back.Rects), len(orig.Rects))
	}
	for i := range back.Rects {
		if back.Rects[i] != orig.Rects[i] {
			t.Fatalf("rect %d mismatch: %+v vs %+v", i, back.Rects[i], orig.Rects[i])
		}
	}
	// Derived quantities survive.
	sdO, _ := orig.Sd()
	sdB, _ := back.Sd()
	if sdO != sdB {
		t.Fatalf("s_d changed through serialization: %v vs %v", sdO, sdB)
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
LAYOUT demo 20 20 2

RECT metal1 0 0 10 2
# another comment
END
`
	l, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "demo" || len(l.Rects) != 1 || l.Rects[0].Layer != Metal1 {
		t.Fatalf("parsed %+v", l)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no header":        "RECT metal1 0 0 1 1\nEND\n",
		"no end":           "LAYOUT d 10 10 1\n",
		"dup header":       "LAYOUT d 10 10 1\nLAYOUT e 10 10 1\nEND\n",
		"after end":        "LAYOUT d 10 10 1\nEND\nRECT metal1 0 0 1 1\n",
		"bad record":       "LAYOUT d 10 10 1\nBOGUS\nEND\n",
		"bad layer":        "LAYOUT d 10 10 1\nRECT metal9 0 0 1 1\nEND\n",
		"bad coord":        "LAYOUT d 10 10 1\nRECT metal1 0 0 x 1\nEND\n",
		"short rect":       "LAYOUT d 10 10 1\nRECT metal1 0 0 1\nEND\n",
		"short header":     "LAYOUT d 10 10\nEND\n",
		"bad header num":   "LAYOUT d ten 10 1\nEND\n",
		"end before head":  "END\n",
		"escaping rect":    "LAYOUT d 10 10 1\nRECT metal1 0 0 20 5\nEND\n",
		"zero-extent rect": "LAYOUT d 10 10 1\nRECT metal1 3 3 3 5\nEND\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted malformed input", name)
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	bad := &Layout{Name: "b", Width: 0, Height: 1}
	if err := Write(&strings.Builder{}, bad); err == nil {
		t.Fatal("accepted invalid layout")
	}
	spaced := &Layout{Name: "has space", Width: 10, Height: 10, Transistors: 1}
	if err := Write(&strings.Builder{}, spaced); err == nil {
		t.Fatal("accepted whitespace in name")
	}
}

func TestSRAMRoundTripPreservesRegularityInput(t *testing.T) {
	orig, err := GenerateSRAMArray(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	uo := orig.GeometryUtilization()
	ub := back.GeometryUtilization()
	for layer, v := range uo {
		if ub[layer] != v {
			t.Fatalf("layer %v utilization changed: %v vs %v", layer, ub[layer], v)
		}
	}
}
