package layout

import "fmt"

// Block is a named region of a composed chip: a sub-layout placed at an
// offset, tagged as memory or logic so the composition can report the
// per-class densities Table A1 publishes.
type Block struct {
	Layout   *Layout
	X, Y     int // placement offset in the parent, λ
	IsMemory bool
}

// Compose assembles blocks into one chip layout with the given outer
// dimensions, translating every rectangle into parent coordinates. Blocks
// must fit inside the parent and must not overlap each other's bounding
// boxes (abutment is allowed).
func Compose(name string, width, height int, blocks []Block) (*Layout, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("layout: compose %q: non-positive dimensions %d×%d", name, width, height)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("layout: compose %q: no blocks", name)
	}
	chip := &Layout{Name: name, Width: width, Height: height}
	for i, b := range blocks {
		if b.Layout == nil {
			return nil, fmt.Errorf("layout: compose %q: block %d has nil layout", name, i)
		}
		if err := b.Layout.Validate(); err != nil {
			return nil, fmt.Errorf("layout: compose %q: block %d: %w", name, i, err)
		}
		if b.X < 0 || b.Y < 0 || b.X+b.Layout.Width > width || b.Y+b.Layout.Height > height {
			return nil, fmt.Errorf("layout: compose %q: block %d (%s) escapes the chip", name, i, b.Layout.Name)
		}
		for j := 0; j < i; j++ {
			o := blocks[j]
			if b.X < o.X+o.Layout.Width && o.X < b.X+b.Layout.Width &&
				b.Y < o.Y+o.Layout.Height && o.Y < b.Y+b.Layout.Height {
				return nil, fmt.Errorf("layout: compose %q: blocks %d (%s) and %d (%s) overlap",
					name, j, o.Layout.Name, i, b.Layout.Name)
			}
		}
		for _, r := range b.Layout.Rects {
			chip.Rects = append(chip.Rects, r.Translate(b.X, b.Y))
		}
		chip.Transistors += b.Layout.Transistors
	}
	return chip, nil
}

// Decomposition reports the Table A1-style split of a composed chip: the
// per-class transistor counts, areas (block bounding boxes), densities,
// and the whole-chip blended s_d including the unassigned routing/pad
// area between blocks.
type Decomposition struct {
	MemTransistors   float64
	LogicTransistors float64
	MemAreaL2        float64 // λ²
	LogicAreaL2      float64 // λ²
	SdMem            float64 // 0 when no memory blocks
	SdLogic          float64 // 0 when no logic blocks
	SdChip           float64 // chip bounding box over all transistors
	OverheadFraction float64 // chip area not covered by any block
}

// Decompose computes the split for the given blocks against the composed
// chip. The same blocks must have been used to build chip (transistor
// totals are cross-checked).
func Decompose(chip *Layout, blocks []Block) (Decomposition, error) {
	if err := chip.Validate(); err != nil {
		return Decomposition{}, err
	}
	var d Decomposition
	var blockArea float64
	var totalTx int
	for _, b := range blocks {
		if b.Layout == nil {
			return Decomposition{}, fmt.Errorf("layout: decompose: nil block layout")
		}
		area := float64(b.Layout.AreaLambda2())
		blockArea += area
		totalTx += b.Layout.Transistors
		if b.IsMemory {
			d.MemTransistors += float64(b.Layout.Transistors)
			d.MemAreaL2 += area
		} else {
			d.LogicTransistors += float64(b.Layout.Transistors)
			d.LogicAreaL2 += area
		}
	}
	if totalTx != chip.Transistors {
		return Decomposition{}, fmt.Errorf("layout: decompose: blocks hold %d transistors, chip %d", totalTx, chip.Transistors)
	}
	if chip.Transistors == 0 {
		return Decomposition{}, fmt.Errorf("layout: decompose: chip has no transistors")
	}
	if d.MemTransistors > 0 {
		d.SdMem = d.MemAreaL2 / d.MemTransistors
	}
	if d.LogicTransistors > 0 {
		d.SdLogic = d.LogicAreaL2 / d.LogicTransistors
	}
	d.SdChip = float64(chip.AreaLambda2()) / float64(chip.Transistors)
	d.OverheadFraction = 1 - blockArea/float64(chip.AreaLambda2())
	return d, nil
}
