package layout

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{X0: 1, Y0: 2, X1: 4, Y1: 7, Layer: Metal1}
	if !r.Valid() || r.W() != 3 || r.H() != 5 || r.Area() != 15 {
		t.Fatalf("rect geometry wrong: %+v", r)
	}
	if (Rect{X0: 1, X1: 1, Y0: 0, Y1: 1}).Valid() {
		t.Fatal("zero-width rect reported valid")
	}
	tr := r.Translate(10, 20)
	if tr.X0 != 11 || tr.Y1 != 27 || tr.Layer != Metal1 {
		t.Fatalf("translate wrong: %+v", tr)
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{X0: 0, Y0: 0, X1: 10, Y1: 10, Layer: Metal1}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{X0: 5, Y0: 5, X1: 15, Y1: 15, Layer: Metal1}, true},
		{Rect{X0: 10, Y0: 0, X1: 20, Y1: 10, Layer: Metal1}, false}, // abutting
		{Rect{X0: 5, Y0: 5, X1: 15, Y1: 15, Layer: Metal2}, false},  // other layer
		{Rect{X0: -5, Y0: -5, X1: 1, Y1: 1, Layer: Metal1}, true},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestLayerString(t *testing.T) {
	names := map[Layer]string{Diffusion: "diffusion", Poly: "poly", Metal1: "metal1", Metal2: "metal2"}
	for l, want := range names {
		if got := l.String(); got != want {
			t.Errorf("Layer(%d).String() = %q, want %q", l, got, want)
		}
	}
}

func TestCellLibraryValid(t *testing.T) {
	cells := append(StdCells(), SRAMCell())
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			t.Errorf("cell %q invalid: %v", c.Name, err)
		}
	}
}

func TestSRAMCellDensity(t *testing.T) {
	// The paper: SRAM s_d in the range of 30.
	sd := SRAMCell().Sd()
	if sd < 25 || sd > 40 {
		t.Fatalf("SRAM cell s_d = %v, want ≈30", sd)
	}
}

func TestPlaceBoundsChecked(t *testing.T) {
	l := &Layout{Name: "t", Width: 20, Height: 20}
	if err := l.Place(Inverter(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if l.Transistors != 2 {
		t.Fatalf("transistors = %d, want 2", l.Transistors)
	}
	if err := l.Place(Inverter(), 15, 0); err == nil {
		t.Fatal("accepted out-of-bounds placement")
	}
	if err := l.Place(Cell{Name: "bad"}, 0, 0); err == nil {
		t.Fatal("accepted invalid cell")
	}
}

func TestSRAMArraySd(t *testing.T) {
	l, err := GenerateSRAMArray(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	sd, err := l.Sd()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-30) > 1 {
		t.Fatalf("SRAM array s_d = %v, want 30 (pitch-perfect tiling)", sd)
	}
	if l.Transistors != 16*16*6 {
		t.Fatalf("transistors = %d", l.Transistors)
	}
}

func TestDatapathSd(t *testing.T) {
	l, err := GenerateDatapath(16, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	sd, err := l.Sd()
	if err != nil {
		t.Fatal(err)
	}
	// Adder tile is ~43 λ²/tx; channels decompress it somewhat.
	if sd < 40 || sd > 80 {
		t.Fatalf("datapath s_d = %v, want 40–80", sd)
	}
}

func TestRandomLogicDecompression(t *testing.T) {
	tight, err := GenerateRandomLogic(RandomLogicConfig{Cells: 400, RowUtil: 0.9, RouteTracks: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tight.Validate(); err != nil {
		t.Fatal(err)
	}
	sparse, err := GenerateRandomLogic(RandomLogicConfig{Cells: 400, RowUtil: 0.35, RouteTracks: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.Validate(); err != nil {
		t.Fatal(err)
	}
	sdTight, err := tight.Sd()
	if err != nil {
		t.Fatal(err)
	}
	sdSparse, err := sparse.Sd()
	if err != nil {
		t.Fatal(err)
	}
	if sdSparse <= 1.5*sdTight {
		t.Fatalf("sparse s_d %v not well above tight %v", sdSparse, sdTight)
	}
	// ASIC territory per the paper: well above custom (100+) when sparse.
	if sdSparse < 100 {
		t.Fatalf("sparse ASIC s_d = %v, want > 100", sdSparse)
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	cfg := RandomLogicConfig{Cells: 100, RowUtil: 0.7, RouteTracks: 4, Seed: 42}
	a, err := GenerateRandomLogic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRandomLogic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Width != b.Width || a.Height != b.Height || len(a.Rects) != len(b.Rects) || a.Transistors != b.Transistors {
		t.Fatal("same seed produced different layouts")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := GenerateSRAMArray(0, 4); err == nil {
		t.Fatal("accepted zero rows")
	}
	if _, err := GenerateDatapath(4, 0, 2); err == nil {
		t.Fatal("accepted zero stages")
	}
	if _, err := GenerateDatapath(4, 2, -1); err == nil {
		t.Fatal("accepted negative channel")
	}
	if _, err := GenerateRandomLogic(RandomLogicConfig{Cells: 0, RowUtil: 0.5}); err == nil {
		t.Fatal("accepted zero cells")
	}
	if _, err := GenerateRandomLogic(RandomLogicConfig{Cells: 10, RowUtil: 1.5}); err == nil {
		t.Fatal("accepted utilization > 1")
	}
	if _, err := GenerateRandomLogic(RandomLogicConfig{Cells: 10, RowUtil: 0.5, RouteTracks: -1}); err == nil {
		t.Fatal("accepted negative tracks")
	}
}

func TestStyleSdOrdering(t *testing.T) {
	sds, err := StyleSd(7)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's customization spectrum: SRAM < datapath < tight ASIC <
	// sparse ASIC.
	if !(sds["sram"] < sds["datapath"] && sds["datapath"] < sds["asic-tight"] && sds["asic-tight"] < sds["asic-sparse"]) {
		t.Fatalf("style ordering violated: %+v", sds)
	}
}

func TestUnionArea(t *testing.T) {
	rects := []Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 10, Layer: Metal1},
		{X0: 5, Y0: 5, X1: 15, Y1: 15, Layer: Metal1}, // overlaps 25
		{X0: 20, Y0: 0, X1: 22, Y1: 2, Layer: Metal1}, // disjoint 4
	}
	if got := UnionArea(rects); got != 100+100-25+4 {
		t.Fatalf("union area = %d, want 179", got)
	}
	if got := UnionArea(nil); got != 0 {
		t.Fatalf("empty union = %d", got)
	}
}

func TestGeometryUtilization(t *testing.T) {
	l := &Layout{Name: "u", Width: 10, Height: 10}
	l.Rects = append(l.Rects, Rect{X0: 0, Y0: 0, X1: 5, Y1: 10, Layer: Metal1})
	got := l.GeometryUtilization()
	if math.Abs(got[Metal1]-0.5) > 1e-12 {
		t.Fatalf("metal1 utilization = %v, want 0.5", got[Metal1])
	}
	if _, ok := got[Poly]; ok {
		t.Fatal("empty layer reported")
	}
}

func TestLayoutValidate(t *testing.T) {
	bad := &Layout{Name: "b", Width: 0, Height: 10}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero width")
	}
	bad = &Layout{Name: "b", Width: 10, Height: 10, Rects: []Rect{{X0: 0, Y0: 0, X1: 20, Y1: 5, Layer: Metal1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted escaping rect")
	}
	bad = &Layout{Name: "b", Width: 10, Height: 10, Rects: []Rect{{X0: 0, Y0: 0, X1: 5, Y1: 5, Layer: Layer(9)}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted unknown layer")
	}
}

func TestSdAndAreaCM2(t *testing.T) {
	l := &Layout{Name: "a", Width: 100, Height: 100, Transistors: 50}
	sd, err := l.Sd()
	if err != nil {
		t.Fatal(err)
	}
	if sd != 200 {
		t.Fatalf("s_d = %v, want 200", sd)
	}
	a, err := l.AreaCM2(0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e4 * math.Pow(0.25e-4, 2)
	if math.Abs(a-want) > 1e-18 {
		t.Fatalf("area = %v, want %v", a, want)
	}
	empty := &Layout{Name: "e", Width: 10, Height: 10}
	if _, err := empty.Sd(); err == nil {
		t.Fatal("accepted s_d of empty design")
	}
	if _, err := l.AreaCM2(0); err == nil {
		t.Fatal("accepted zero feature size")
	}
}

// Property: denser row utilization never increases measured s_d
// (same seed, same cells).
func TestUtilizationMonotoneProperty(t *testing.T) {
	f := func(s uint64) bool {
		lo, err1 := GenerateRandomLogic(RandomLogicConfig{Cells: 150, RowUtil: 0.4, RouteTracks: 4, Seed: s})
		hi, err2 := GenerateRandomLogic(RandomLogicConfig{Cells: 150, RowUtil: 0.95, RouteTracks: 4, Seed: s})
		if err1 != nil || err2 != nil {
			return false
		}
		sdLo, err1 := lo.Sd()
		sdHi, err2 := hi.Sd()
		return err1 == nil && err2 == nil && sdHi < sdLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
