//go:build !race

package layout

const raceEnabled = false
