package layout

import (
	"math"
	"testing"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// isFatalFlat must reach the identical verdict as IsFatal on every
// defect: same rects, same comparison sequence, minus the per-call
// int→float64 conversions.
func TestIsFatalFlatMatchesIsFatal(t *testing.T) {
	l := twoWires(4)
	rects := l.LayerRects(Metal1)
	flat := flattenRects(rects)
	r := stats.NewRNG(99)
	for i := 0; i < 200000; i++ {
		x := r.Range(-5, float64(l.Width)+5)
		y := r.Range(-5, float64(l.Height)+5)
		size := r.Range(0, 12)
		if IsFatal(rects, x, y, size) != isFatalFlat(flat, x, y, size) {
			t.Fatalf("verdicts diverge at (%v, %v) size %v", x, y, size)
		}
	}
	if isFatalFlat(flattenRects(nil), 1, 1, 5) {
		t.Fatal("empty layout killed a die")
	}
}

// scalarSimulateDefects is the pre-vectorization hot loop: IsFatal on the
// int rects, exp recomputed inside every Poisson draw, serial chunks.
func scalarSimulateDefects(l *Layout, c DefectSimConfig) (killed, defects int) {
	rects := l.LayerRects(c.Layer)
	chunks := parallel.Chunks(c.Trials, defectSimChunk)
	streams := stats.NewRNG(c.Seed).SplitN(chunks)
	for chunk := 0; chunk < chunks; chunk++ {
		r := streams[chunk]
		lo := chunk * defectSimChunk
		hi := min(lo+defectSimChunk, c.Trials)
		for t := lo; t < hi; t++ {
			n := r.Poisson(c.MeanDefects)
			defects += n
			dead := false
			for d := 0; d < n && !dead; d++ {
				x := r.Range(0, float64(l.Width))
				y := r.Range(0, float64(l.Height))
				size := c.SizeSampler(r)
				if IsFatal(rects, x, y, size) {
					dead = true
				}
			}
			if dead {
				killed++
			}
		}
	}
	return killed, defects
}

func TestSimulateDefectsMatchesScalarReference(t *testing.T) {
	l := twoWires(4)
	cfg := DefectSimConfig{
		Layer:       Metal1,
		MeanDefects: 2.0,
		SizeSampler: func(r *stats.RNG) float64 { return r.Range(2, 8) },
		Trials:      20000,
		Seed:        31,
	}
	killed, defects := scalarSimulateDefects(l, cfg)
	res, err := SimulateDefects(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrialsKilled != killed {
		t.Fatalf("killed %d, scalar %d", res.TrialsKilled, killed)
	}
	wantMean := float64(defects) / float64(cfg.Trials)
	if math.Float64bits(res.MeanDefects) != math.Float64bits(wantMean) {
		t.Fatalf("mean defects %x, scalar %x", res.MeanDefects, wantMean)
	}
}

func TestSimulateDefectsDeterministicAcrossWorkersAndTunerRegimes(t *testing.T) {
	l := twoWires(4)
	cfg := DefectSimConfig{
		Layer:       Metal1,
		MeanDefects: 1.5,
		SizeSampler: func(r *stats.RNG) float64 { return r.Range(2, 8) },
		Trials:      30000,
		Seed:        7,
		Workers:     1,
	}
	defectSimTuner.Reset()
	ref, err := SimulateDefects(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer defectSimTuner.Reset()
	regimes := []struct {
		name  string
		apply func()
	}{
		{"cold", func() { defectSimTuner.Reset() }},
		{"heavy", func() { defectSimTuner.Reset(); defectSimTuner.Observe(1, 10e-3) }},
		{"light", func() { defectSimTuner.Reset(); defectSimTuner.Observe(100000, 1e-3) }},
	}
	for _, rg := range regimes {
		for _, workers := range []int{1, 2, 4} {
			rg.apply()
			cfg.Workers = workers
			got, err := SimulateDefects(l, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.TrialsKilled != ref.TrialsKilled ||
				math.Float64bits(got.MeanDefects) != math.Float64bits(ref.MeanDefects) ||
				math.Float64bits(got.Yield) != math.Float64bits(ref.Yield) {
				t.Fatalf("regime %s workers %d: %+v, want %+v", rg.name, workers, got, ref)
			}
		}
	}
}
