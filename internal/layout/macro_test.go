package layout

import (
	"math"
	"testing"
)

// socBlocks builds a small SoC: an SRAM block and a random-logic block
// side by side with a routing gutter.
func socBlocks(t *testing.T) (mem, logic *Layout) {
	t.Helper()
	var err error
	mem, err = GenerateSRAMArray(16, 16) // 240×192
	if err != nil {
		t.Fatal(err)
	}
	logic, err = GenerateRandomLogic(RandomLogicConfig{Cells: 150, RowUtil: 0.7, RouteTracks: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return mem, logic
}

func TestComposeAndDecompose(t *testing.T) {
	mem, logic := socBlocks(t)
	w := mem.Width + logic.Width + 40
	h := mem.Height
	if logic.Height > h {
		h = logic.Height
	}
	h += 20
	blocks := []Block{
		{Layout: mem, X: 0, Y: 0, IsMemory: true},
		{Layout: logic, X: mem.Width + 40, Y: 0},
	}
	chip, err := Compose("soc", w, h, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Validate(); err != nil {
		t.Fatal(err)
	}
	if chip.Transistors != mem.Transistors+logic.Transistors {
		t.Fatalf("transistors = %d", chip.Transistors)
	}
	d, err := Decompose(chip, blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Per-class densities match the standalone blocks.
	memSd, _ := mem.Sd()
	logicSd, _ := logic.Sd()
	if math.Abs(d.SdMem-memSd) > 1e-9 {
		t.Fatalf("mem s_d = %v, want %v", d.SdMem, memSd)
	}
	if math.Abs(d.SdLogic-logicSd) > 1e-9 {
		t.Fatalf("logic s_d = %v, want %v", d.SdLogic, logicSd)
	}
	// The Table A1 pattern: memory far denser than logic, chip blend in
	// between or above (overhead inflates it past the block average).
	if !(d.SdMem < d.SdLogic) {
		t.Fatalf("memory s_d %v not below logic %v", d.SdMem, d.SdLogic)
	}
	if d.SdChip < d.SdMem {
		t.Fatalf("chip s_d %v below memory block %v", d.SdChip, d.SdMem)
	}
	if d.OverheadFraction <= 0 || d.OverheadFraction >= 1 {
		t.Fatalf("overhead fraction = %v", d.OverheadFraction)
	}
}

func TestComposeValidation(t *testing.T) {
	mem, logic := socBlocks(t)
	if _, err := Compose("x", 0, 10, []Block{{Layout: mem}}); err == nil {
		t.Fatal("accepted zero width")
	}
	if _, err := Compose("x", 1000, 1000, nil); err == nil {
		t.Fatal("accepted no blocks")
	}
	if _, err := Compose("x", 1000, 1000, []Block{{Layout: nil}}); err == nil {
		t.Fatal("accepted nil block")
	}
	// Escaping block.
	if _, err := Compose("x", 100, 100, []Block{{Layout: mem}}); err == nil {
		t.Fatal("accepted escaping block")
	}
	// Overlapping blocks.
	w := mem.Width + logic.Width + 100
	h := mem.Height + logic.Height + 100
	_, err := Compose("x", w, h, []Block{
		{Layout: mem, X: 0, Y: 0},
		{Layout: logic, X: mem.Width - 10, Y: 0},
	})
	if err == nil {
		t.Fatal("accepted overlapping blocks")
	}
	// Abutment is fine.
	if _, err := Compose("x", w, h, []Block{
		{Layout: mem, X: 0, Y: 0},
		{Layout: logic, X: mem.Width, Y: 0},
	}); err != nil {
		t.Fatalf("rejected abutting blocks: %v", err)
	}
}

func TestDecomposeValidation(t *testing.T) {
	mem, _ := socBlocks(t)
	chip, err := Compose("soc", mem.Width+10, mem.Height+10, []Block{{Layout: mem, IsMemory: true}})
	if err != nil {
		t.Fatal(err)
	}
	// Mismatched blocks (extra transistors) rejected.
	other, err := GenerateSRAMArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompose(chip, []Block{{Layout: mem, IsMemory: true}, {Layout: other}}); err == nil {
		t.Fatal("accepted mismatched block set")
	}
	if _, err := Decompose(chip, []Block{{Layout: nil}}); err == nil {
		t.Fatal("accepted nil block")
	}
	// Memory-only chip: SdLogic stays 0.
	d, err := Decompose(chip, []Block{{Layout: mem, IsMemory: true}})
	if err != nil {
		t.Fatal(err)
	}
	if d.SdLogic != 0 || d.SdMem <= 0 {
		t.Fatalf("memory-only split = %+v", d)
	}
}
