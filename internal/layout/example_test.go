package layout_test

import (
	"fmt"

	"repro/internal/layout"
)

// Measure the design decompression index of generated layouts — the
// quantity Table A1 extracts from die photographs.
func ExampleLayout_Sd() {
	sram, err := layout.GenerateSRAMArray(16, 16)
	if err != nil {
		fmt.Println(err)
		return
	}
	sd, err := sram.Sd()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("SRAM array s_d = %.0f\n", sd)
	// Output:
	// SRAM array s_d = 30
}

// Critical area for shorts: two parallel wires at spacing 4λ under a
// size-6λ defect.
func ExampleCriticalArea() {
	l := &layout.Layout{
		Name: "wires", Width: 120, Height: 40, Transistors: 1,
		Rects: []layout.Rect{
			{X0: 10, Y0: 10, X1: 110, Y1: 12, Layer: layout.Metal1},
			{X0: 10, Y0: 16, X1: 110, Y1: 18, Layer: layout.Metal1},
		},
	}
	a, err := layout.CriticalArea(l, layout.Metal1, 6)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("shorts-critical area = %.0f λ²\n", a)
	// Output:
	// shorts-critical area = 200 λ²
}

// Compose a chip from blocks and decompose it Table A1-style.
func ExampleCompose() {
	mem, err := layout.GenerateSRAMArray(8, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	logic, err := layout.GenerateDatapath(8, 2, 12)
	if err != nil {
		fmt.Println(err)
		return
	}
	blocks := []layout.Block{
		{Layout: mem, X: 0, Y: 0, IsMemory: true},
		{Layout: logic, X: mem.Width + 20, Y: 0},
	}
	chip, err := layout.Compose("soc", mem.Width+20+logic.Width, 200, blocks)
	if err != nil {
		fmt.Println(err)
		return
	}
	d, err := layout.Decompose(chip, blocks)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("s_d: memory %.0f, logic %.1f\n", d.SdMem, d.SdLogic)
	// Output:
	// s_d: memory 30, logic 47.1
}
