package layout

import (
	"context"
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// DefectSimConfig parameterizes the geometric defect Monte Carlo: spot
// defects with random positions and sizes are thrown at the layout, and a
// die is killed when a defect bridges two shapes (short) or severs a wire
// (open) on the monitored layer. Unlike the abstract simulator in
// internal/yield, this one works on the actual geometry, so its measured
// yield validates the analytic critical-area model end to end.
type DefectSimConfig struct {
	Layer       Layer
	MeanDefects float64                  // mean defects per die per Monte Carlo trial
	SizeSampler func(*stats.RNG) float64 // defect diameter in λ; must be pure (called concurrently)
	Trials      int
	Seed        uint64
	Workers     int // simulation goroutines; <= 0 uses parallel.DefaultWorkers
}

// Validate reports the first invalid field of c, or nil.
func (c DefectSimConfig) Validate() error {
	if c.MeanDefects < 0 {
		return fmt.Errorf("layout: defect rate must be non-negative, got %v", c.MeanDefects)
	}
	if c.SizeSampler == nil {
		return fmt.Errorf("layout: defect size sampler required")
	}
	if c.Trials <= 0 {
		return fmt.Errorf("layout: trials must be positive, got %d", c.Trials)
	}
	return nil
}

// DefectSimResult reports a geometric yield measurement.
type DefectSimResult struct {
	Yield        float64
	StdErr       float64
	TrialsKilled int
	Trials       int
	MeanDefects  float64 // realized defects per trial
}

// defectSimChunk fixes the trial sharding granularity: chunk boundaries
// and their RNG streams depend only on (Trials, Seed), so the measured
// yield is bit-identical for every worker count.
const defectSimChunk = 1024

// DefectThrower is the prepared chunk-at-a-time kernel behind
// SimulateDefects: layout geometry flattened once, exp(-mean) hoisted
// once, ready to evaluate any number of independent trial chunks. The
// sharded job engine (internal/mcjob) uses it to spread one giga-trial
// geometric simulation over shards; SimulateDefects drives it through
// the in-process worker pool.
type DefectThrower struct {
	flat    []float64
	w, h    float64
	mean    float64
	expMean float64
	sampler func(*stats.RNG) float64
}

// NewDefectThrower validates the inputs and prepares the kernel. The
// sampler must be pure: Throw is called concurrently from many chunks.
func NewDefectThrower(l *Layout, layer Layer, meanDefects float64, sampler func(*stats.RNG) float64) (*DefectThrower, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if meanDefects < 0 {
		return nil, fmt.Errorf("layout: defect rate must be non-negative, got %v", meanDefects)
	}
	if sampler == nil {
		return nil, fmt.Errorf("layout: defect size sampler required")
	}
	// Flatten the rect coordinates to float64 once: IsFatal converts four
	// int fields per rect per defect; the flat buffer pays the conversion
	// once per run. int→float64 conversion is exact on layout coordinates,
	// so the flat test is bit-identical to IsFatal.
	return &DefectThrower{
		flat: flattenRects(l.LayerRects(layer)),
		w:    float64(l.Width), h: float64(l.Height),
		mean: meanDefects,
		// The Poisson rate is constant across every trial: hoist exp(-mean)
		// out of the trial loop (PoissonL keeps the draw sequence identical).
		expMean: math.Exp(-meanDefects),
		sampler: sampler,
	}, nil
}

// Throw evaluates trials die drawn from r: per die a Poisson number of
// defects land uniformly on the bounding box with sampled diameters, and
// the die is killed if any defect is fatal per IsFatal. The stream is
// consumed in exactly SimulateDefects' per-trial order, so a chunk
// evaluated here is bit-identical to the same chunk inside a full run.
func (dt *DefectThrower) Throw(r *stats.RNG, trials int) (killed, defects int) {
	for t := 0; t < trials; t++ {
		n := r.PoissonL(dt.mean, dt.expMean)
		defects += n
		dead := false
		for d := 0; d < n && !dead; d++ {
			x := r.Range(0, dt.w)
			y := r.Range(0, dt.h)
			size := dt.sampler(r)
			if isFatalFlat(dt.flat, x, y, size) {
				dead = true
			}
		}
		if dead {
			killed++
		}
	}
	return killed, defects
}

// SimulateDefects runs the geometric Monte Carlo: per trial (die), a
// Poisson number of defects land uniformly on the bounding box with
// sampled diameters; the die dies if any defect is fatal per IsFatal.
// Trials are sharded into fixed chunks, each driven by its own
// guaranteed-disjoint RNG sub-stream (stats.RNG.SplitN) and evaluated on
// the worker pool; tallies fold in chunk order, so the result depends
// only on the config.
func SimulateDefects(l *Layout, c DefectSimConfig) (DefectSimResult, error) {
	if err := l.Validate(); err != nil {
		return DefectSimResult{}, err
	}
	if err := c.Validate(); err != nil {
		return DefectSimResult{}, err
	}
	thrower, err := NewDefectThrower(l, c.Layer, c.MeanDefects, c.SizeSampler)
	if err != nil {
		return DefectSimResult{}, err
	}
	chunks := parallel.Chunks(c.Trials, defectSimChunk)
	streams := stats.NewRNG(c.Seed).SplitN(chunks)
	type tally struct{ killed, defects int }
	counts := make([]tally, chunks)
	err = parallel.ForEachChunkTuned(context.Background(), c.Trials, defectSimChunk, c.Workers, &defectSimTuner, func(chunk, lo, hi int) error {
		k, d := thrower.Throw(streams[chunk], hi-lo)
		counts[chunk] = tally{killed: k, defects: d}
		return nil
	})
	if err != nil {
		return DefectSimResult{}, err
	}
	var killed, totalDefects int
	for _, t := range counts {
		killed += t.killed
		totalDefects += t.defects
	}
	res := DefectSimResult{
		Trials: c.Trials, TrialsKilled: killed,
		Yield:       1 - float64(killed)/float64(c.Trials),
		MeanDefects: float64(totalDefects) / float64(c.Trials),
	}
	// Binomial standard error of the yield estimate.
	p := res.Yield
	res.StdErr = math.Sqrt(p * (1 - p) / float64(c.Trials))
	return res, nil
}

// defectSimTuner adapts how many trial chunks one scheduled task covers.
// Grouping never moves a chunk's RNG stream or bounds, so the measured
// yield cannot depend on it.
var defectSimTuner parallel.ChunkTuner

// flattenRects converts rect corners to a flat float64 buffer, four
// values per rect in (x0, y0, x1, y1) order, for the simulation hot loop.
func flattenRects(rects []Rect) []float64 {
	flat := make([]float64, 4*len(rects))
	for i, r := range rects {
		flat[4*i] = float64(r.X0)
		flat[4*i+1] = float64(r.Y0)
		flat[4*i+2] = float64(r.X1)
		flat[4*i+3] = float64(r.Y1)
	}
	return flat
}

// isFatalFlat is IsFatal over a flattened rect buffer: the identical
// comparison sequence on identical float values, minus the per-call
// int→float64 conversions. The equivalence test holds the two paths to
// the same verdict on every defect.
func isFatalFlat(flat []float64, x, y, size float64) bool {
	half := size / 2
	dx0, dy0, dx1, dy1 := x-half, y-half, x+half, y+half
	touched := -1
	// The j+3 < len(flat) guard proves every load below in bounds, so the
	// loop body runs without bounds checks.
	for j := 0; j+3 < len(flat); j += 4 {
		rx0, ry0, rx1, ry1 := flat[j], flat[j+1], flat[j+2], flat[j+3]
		if dx0 < rx1 && rx0 < dx1 && dy0 < ry1 && ry0 < dy1 {
			// Overlaps this shape. Short: second distinct shape touched.
			if touched >= 0 && touched != j {
				return true
			}
			touched = j
			// Open: the defect spans the wire's short dimension. Orient by
			// the wire's long side.
			w, h := rx1-rx0, ry1-ry0
			if w <= h {
				// Vertical wire: defect must cover [rx0, rx1] in x and sit
				// strictly inside the wire's run so it truly severs it.
				if dx0 <= rx0 && dx1 >= rx1 && dy0 > ry0 && dy1 < ry1 {
					return true
				}
			} else {
				if dy0 <= ry0 && dy1 >= ry1 && dx0 > rx0 && dx1 < rx1 {
					return true
				}
			}
		}
	}
	return false
}

// IsFatal reports whether a square defect of the given size centered at
// (x, y) kills the die: it shorts two distinct shapes (touches both) or
// opens a wire (spans its full width). The square-defect approximation
// matches the parallel-edge critical-area formulas in critarea.go, so the
// Monte Carlo and the analytic model measure the same physics.
func IsFatal(rects []Rect, x, y, size float64) bool {
	half := size / 2
	dx0, dy0, dx1, dy1 := x-half, y-half, x+half, y+half
	touched := -1
	for i, r := range rects {
		rx0, ry0, rx1, ry1 := float64(r.X0), float64(r.Y0), float64(r.X1), float64(r.Y1)
		if dx0 < rx1 && rx0 < dx1 && dy0 < ry1 && ry0 < dy1 {
			// Overlaps this shape. Short: second distinct shape touched.
			if touched >= 0 && touched != i {
				return true
			}
			touched = i
			// Open: the defect spans the wire's short dimension. Orient by
			// the wire's long side.
			w, h := rx1-rx0, ry1-ry0
			if w <= h {
				// Vertical wire: defect must cover [rx0, rx1] in x and sit
				// strictly inside the wire's run so it truly severs it.
				if dx0 <= rx0 && dx1 >= rx1 && dy0 > ry0 && dy1 < ry1 {
					return true
				}
			} else {
				if dy0 <= ry0 && dy1 >= ry1 && dx0 > rx0 && dx1 < rx1 {
					return true
				}
			}
		}
	}
	return false
}
