package layout

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/stats"
)

// GenerateSRAMArray tiles rows×cols SRAM bit cells at minimum pitch — the
// densest design style, measuring s_d ≈ 30.
func GenerateSRAMArray(rows, cols int) (*Layout, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("layout: SRAM array requires positive dimensions, got %d×%d", rows, cols)
	}
	cell := SRAMCell()
	l := &Layout{
		Name:   fmt.Sprintf("sram-%dx%d", rows, cols),
		Width:  cols * cell.Width,
		Height: rows * cell.Height,
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if err := l.Place(cell, c*cell.Width, r*cell.Height); err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}

// GenerateDatapath tiles a bits×stages array of full-adder slices with a
// routing channel between stages — the regular custom style of a datapath,
// measuring s_d ≈ 50–80.
func GenerateDatapath(bits, stages, channelWidth int) (*Layout, error) {
	if bits <= 0 || stages <= 0 {
		return nil, fmt.Errorf("layout: datapath requires positive dimensions, got %d×%d", bits, stages)
	}
	if channelWidth < 0 {
		return nil, fmt.Errorf("layout: channel width must be non-negative, got %d", channelWidth)
	}
	cell := Adder()
	pitchX := cell.Width + channelWidth
	l := &Layout{
		Name:   fmt.Sprintf("datapath-%dx%d", bits, stages),
		Width:  stages*pitchX - channelWidth,
		Height: bits * cell.Height,
	}
	for b := 0; b < bits; b++ {
		for s := 0; s < stages; s++ {
			if err := l.Place(cell, s*pitchX, b*cell.Height); err != nil {
				return nil, err
			}
		}
		// Stage-to-stage buses in the channels.
		for s := 0; s+1 < stages; s++ {
			x := s*pitchX + cell.Width
			if channelWidth >= 2 {
				l.Rects = append(l.Rects, Rect{
					X0: x, Y0: b*cell.Height + 4,
					X1: x + channelWidth, Y1: b*cell.Height + 6,
					Layer: Metal2,
				})
			}
		}
	}
	return l, nil
}

// RandomLogicConfig parameterizes GenerateRandomLogic.
type RandomLogicConfig struct {
	Cells       int     // standard-cell instances to place
	RowUtil     float64 // fraction of each row occupied by cells, (0, 1]
	RouteTracks int     // metal2 routing tracks per channel (decompression)
	Seed        uint64
}

// GenerateRandomLogic places standard cells in rows separated by routing
// channels, with random cell selection and random in-row gaps — the
// synthesized-ASIC style. Lower RowUtil and more RouteTracks decompress
// the layout, raising the measured s_d exactly as §2.2.2's ASIC range
// (up to ≈1000) describes.
func GenerateRandomLogic(cfg RandomLogicConfig) (*Layout, error) {
	if cfg.Cells <= 0 {
		return nil, fmt.Errorf("layout: random logic requires positive cell count, got %d", cfg.Cells)
	}
	if !(cfg.RowUtil > 0 && cfg.RowUtil <= 1) {
		return nil, fmt.Errorf("layout: row utilization must be in (0,1], got %v", cfg.RowUtil)
	}
	if cfg.RouteTracks < 0 {
		return nil, fmt.Errorf("layout: route tracks must be non-negative, got %d", cfg.RouteTracks)
	}
	rng := stats.NewRNG(cfg.Seed)
	lib := StdCells()
	cellH := lib[0].Height // library cells share a row height

	// Pick instances up front to size the floorplan.
	instances := make([]Cell, cfg.Cells)
	totalW := 0
	for i := range instances {
		instances[i] = lib[rng.Intn(len(lib))]
		totalW += instances[i].Width
	}
	// Aim for a roughly square floorplan: rows ≈ sqrt(total cell width /
	// (row width)) with row width chosen so rows × rowWidth ≈ totalW/util.
	channelH := 2 * (cfg.RouteTracks + 1)
	effW := float64(totalW) / cfg.RowUtil
	rowPitch := float64(cellH + channelH)
	// rows × rowWidth = effW and rows × rowPitch ≈ rowWidth (square).
	rows := int(0.5+math.Sqrt(effW/rowPitch)) + 1
	rowWidth := int(effW/float64(rows)) + lib[len(lib)-1].Width + 2

	l := &Layout{
		Name:   fmt.Sprintf("asic-%d", cfg.Cells),
		Width:  rowWidth,
		Height: rows*(cellH+channelH) + channelH,
	}
	x, row := 0, 0
	for _, c := range instances {
		// Random gap models pin-access and congestion spreading.
		gap := 0
		if cfg.RowUtil < 1 {
			mean := float64(c.Width) * (1 - cfg.RowUtil) / cfg.RowUtil
			gap = int(rng.Exp(1/(mean+1e-9)) + 0.5)
		}
		if x+gap+c.Width > rowWidth {
			row++
			x = 0
			gap = 0 // the spreading gap belongs to the abandoned row
			if row >= rows {
				// Grow the layout rather than fail: append one more row.
				rows++
				l.Height = rows*(cellH+channelH) + channelH
			}
		}
		y := channelH + row*(cellH+channelH)
		if err := l.Place(c, x+gap, y); err != nil {
			return nil, err
		}
		x += gap + c.Width
	}
	// Routing tracks in each channel.
	for r := 0; r <= rows; r++ {
		yBase := r * (cellH + channelH)
		for t := 0; t < cfg.RouteTracks; t++ {
			y := yBase + 1 + 2*t
			if y+1 > l.Height {
				break
			}
			l.Rects = append(l.Rects, Rect{X0: 0, Y0: y, X1: l.Width, Y1: y + 1, Layer: Metal2})
		}
	}
	return l, nil
}

// fixedStyleSd computes the densities of the seed-independent styles
// (SRAM array, datapath) once per process: their geometry is fully
// determined by the generator parameters, so regenerating them for every
// seed in a sweep is pure allocation churn.
var fixedStyleSd = sync.OnceValues(func() (map[string]float64, error) {
	out := make(map[string]float64, 2)
	sram, err := GenerateSRAMArray(32, 32)
	if err != nil {
		return nil, err
	}
	if out["sram"], err = sram.Sd(); err != nil {
		return nil, err
	}
	dp, err := GenerateDatapath(32, 8, 12)
	if err != nil {
		return nil, err
	}
	if out["datapath"], err = dp.Sd(); err != nil {
		return nil, err
	}
	return out, nil
})

// StyleSd generates a representative layout for each style and reports the
// measured s_d, the experiment X-8 rows: SRAM ≈ 30, datapath ≈ 50,
// random logic from ~150 (tight) to 1000+ (sparse).
func StyleSd(seed uint64) (map[string]float64, error) {
	fixed, err := fixedStyleSd()
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, 4)
	out["sram"] = fixed["sram"]
	out["datapath"] = fixed["datapath"]
	tight, err := GenerateRandomLogic(RandomLogicConfig{Cells: 600, RowUtil: 0.9, RouteTracks: 2, Seed: seed})
	if err != nil {
		return nil, err
	}
	if out["asic-tight"], err = tight.Sd(); err != nil {
		return nil, err
	}
	sparse, err := GenerateRandomLogic(RandomLogicConfig{Cells: 600, RowUtil: 0.35, RouteTracks: 10, Seed: seed})
	if err != nil {
		return nil, err
	}
	if out["asic-sparse"], err = sparse.Sd(); err != nil {
		return nil, err
	}
	return out, nil
}
