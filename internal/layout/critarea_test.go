package layout

import (
	"math"
	"testing"
)

// twoWires builds a layout with two parallel metal1 wires of length 100
// at spacing 4, the textbook shorts-critical-area case.
func twoWires(spacing int) *Layout {
	return &Layout{
		Name: "wires", Width: 120, Height: 40, Transistors: 1,
		Rects: []Rect{
			{X0: 10, Y0: 10, X1: 110, Y1: 12, Layer: Metal1},
			{X0: 10, Y0: 12 + spacing, X1: 110, Y1: 14 + spacing, Layer: Metal1},
		},
	}
}

func TestCriticalAreaTwoWires(t *testing.T) {
	l := twoWires(4)
	// Defect smaller than the spacing: no short possible.
	a, err := CriticalArea(l, Metal1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Fatalf("defect below spacing produced critical area %v", a)
	}
	// Defect of size 6 over spacing 4: strip = overlap 100 × (6−4) = 200.
	a, err = CriticalArea(l, Metal1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-200) > 1e-9 {
		t.Fatalf("critical area = %v, want 200", a)
	}
	// Wrong layer: nothing there.
	a, err = CriticalArea(l, Metal2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Fatalf("empty layer critical area = %v", a)
	}
}

func TestCriticalAreaVerticalPairs(t *testing.T) {
	// Two wires side by side (gap along x).
	l := &Layout{
		Name: "vwires", Width: 40, Height: 120, Transistors: 1,
		Rects: []Rect{
			{X0: 10, Y0: 10, X1: 12, Y1: 110, Layer: Metal1},
			{X0: 16, Y0: 10, X1: 18, Y1: 110, Layer: Metal1},
		},
	}
	a, err := CriticalArea(l, Metal1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-200) > 1e-9 {
		t.Fatalf("vertical-pair critical area = %v, want 200", a)
	}
}

func TestCriticalAreaGrowsWithDefectSize(t *testing.T) {
	l, err := GenerateRandomLogic(RandomLogicConfig{Cells: 100, RowUtil: 0.8, RouteTracks: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, x := range []float64{1, 2, 4, 8, 16} {
		a, err := CriticalArea(l, Metal2, x)
		if err != nil {
			t.Fatal(err)
		}
		if a < prev {
			t.Fatalf("critical area not monotone at defect size %v", x)
		}
		prev = a
	}
}

func TestCriticalAreaRejectsNegativeSize(t *testing.T) {
	if _, err := CriticalArea(twoWires(4), Metal1, -1); err == nil {
		t.Fatal("accepted negative defect size")
	}
	if _, err := OpenCriticalArea(twoWires(4), Metal1, -1); err == nil {
		t.Fatal("accepted negative defect size")
	}
}

func TestOpenCriticalArea(t *testing.T) {
	l := twoWires(4) // two wires of width 2, length 100
	// Defect narrower than the wire: no open.
	a, err := OpenCriticalArea(l, Metal1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Fatalf("narrow defect produced open area %v", a)
	}
	// Defect of 5 over width 2: per wire 100 × 3 = 300; two wires = 600.
	a, err = OpenCriticalArea(l, Metal1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-600) > 1e-9 {
		t.Fatalf("open area = %v, want 600", a)
	}
}

func TestCriticalAreaCurveAndFraction(t *testing.T) {
	l := twoWires(4)
	sizes := []float64{1, 3, 5, 8}
	curve, err := CriticalAreaCurve(l, Metal1, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(sizes) {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("combined curve not monotone")
		}
	}
	f, err := CriticalFraction(l, Metal1, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := (200.0 + 2*100*4) / float64(120*40) // shorts + opens
	if math.Abs(f-want) > 1e-9 {
		t.Fatalf("critical fraction = %v, want %v", f, want)
	}
	// Huge defects clamp at 1.
	f, err = CriticalFraction(l, Metal1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("huge-defect fraction = %v, want 1 (clamped)", f)
	}
}

func TestDenserLayoutHasLargerCriticalFraction(t *testing.T) {
	// The DensityScaledStack assumption made measurable: at a fixed defect
	// size, a tighter layout exposes more shorts-critical area per unit
	// area than a sparse one.
	tight := twoWires(2)
	sparse := twoWires(10)
	ft, err := CriticalFraction(tight, Metal1, 6)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := CriticalFraction(sparse, Metal1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ft <= fs {
		t.Fatalf("tight fraction %v not above sparse %v", ft, fs)
	}
}
