package layout

import (
	"fmt"
	"sort"
)

// CriticalArea computes the short-circuit critical area of one layer for a
// circular defect of diameter x (in λ): the area of defect-center
// positions that bridge two distinct rectangles. It uses the standard
// parallel-edge approximation: for each pair of rectangles on the layer
// with facing edges at spacing s < x, the critical strip has length equal
// to the facing overlap and width (x − s), clipped to the half-spacing
// band between the shapes.
//
// The computation considers vertical and horizontal facing pairs found by
// a sweep over sorted rectangles; diagonal adjacency is a second-order
// contribution the approximation ignores, as does the literature it
// follows.
func CriticalArea(l *Layout, layer Layer, defectSize float64) (float64, error) {
	if defectSize < 0 {
		return 0, fmt.Errorf("layout: defect size must be non-negative, got %v", defectSize)
	}
	if err := l.Validate(); err != nil {
		return 0, err
	}
	rects := l.LayerRects(layer)
	if len(rects) < 2 {
		return 0, nil
	}
	var total float64
	// Horizontal facing pairs (gap along x): sort by X0 and look right.
	total += facingCritArea(rects, defectSize, false)
	// Vertical facing pairs (gap along y).
	total += facingCritArea(rects, defectSize, true)
	return total, nil
}

// facingCritArea sums critical strip areas for pairs facing along one
// axis. When vertical is true the roles of x and y swap.
func facingCritArea(rects []Rect, x float64, vertical bool) float64 {
	type box struct{ lo, hi, tLo, tHi float64 } // gap axis lo/hi, transverse lo/hi
	bs := make([]box, len(rects))
	for i, r := range rects {
		if vertical {
			bs[i] = box{float64(r.Y0), float64(r.Y1), float64(r.X0), float64(r.X1)}
		} else {
			bs[i] = box{float64(r.X0), float64(r.X1), float64(r.Y0), float64(r.Y1)}
		}
	}
	sort.Slice(bs, func(a, b int) bool { return bs[a].lo < bs[b].lo })
	var total float64
	for i := range bs {
		for j := i + 1; j < len(bs); j++ {
			gap := bs[j].lo - bs[i].hi
			if gap >= x {
				// bs is sorted by lo and bs[i].hi is fixed, so the gap only
				// grows with j: no later rect can face this one.
				break
			}
			if gap < 0 {
				continue // overlapping or abutting along the axis: not a facing pair
			}
			overlap := minF(bs[i].tHi, bs[j].tHi) - maxF(bs[i].tLo, bs[j].tLo)
			if overlap <= 0 {
				continue
			}
			total += overlap * (x - gap)
		}
	}
	return total
}

// OpenCriticalArea computes the open-circuit critical area of a layer for
// a defect of diameter x: for each wire (rectangle), a missing-material
// defect wider than the wire severs it; the critical strip runs the length
// of the wire with width (x − w) when x exceeds the wire width w.
func OpenCriticalArea(l *Layout, layer Layer, defectSize float64) (float64, error) {
	if defectSize < 0 {
		return 0, fmt.Errorf("layout: defect size must be non-negative, got %v", defectSize)
	}
	if err := l.Validate(); err != nil {
		return 0, err
	}
	var total float64
	for _, r := range l.LayerRects(layer) {
		w, h := float64(r.W()), float64(r.H())
		// Orient along the long side: width is the short dimension.
		width, length := w, h
		if h < w {
			width, length = h, w
		}
		if defectSize > width {
			total += length * (defectSize - width)
		}
	}
	return total, nil
}

// CriticalAreaCurve samples the combined (shorts + opens) critical area of
// a layer at the given defect sizes, returning a function-ready table for
// yield.AverageCriticalArea. Sizes must be non-negative.
func CriticalAreaCurve(l *Layout, layer Layer, sizes []float64) ([]float64, error) {
	out := make([]float64, len(sizes))
	for i, x := range sizes {
		s, err := CriticalArea(l, layer, x)
		if err != nil {
			return nil, err
		}
		o, err := OpenCriticalArea(l, layer, x)
		if err != nil {
			return nil, err
		}
		out[i] = s + o
	}
	return out, nil
}

// CriticalFraction returns the combined critical area at defect size x as
// a fraction of the layout bounding box, the per-layer critical fraction
// the yield.Stack consumes. The fraction is clamped to [0, 1]: beyond
// defect sizes comparable to the die, the geometric approximation
// overcounts.
func CriticalFraction(l *Layout, layer Layer, defectSize float64) (float64, error) {
	s, err := CriticalArea(l, layer, defectSize)
	if err != nil {
		return 0, err
	}
	o, err := OpenCriticalArea(l, layer, defectSize)
	if err != nil {
		return 0, err
	}
	f := (s + o) / float64(l.AreaLambda2())
	if f > 1 {
		f = 1
	}
	return f, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
