package layout

import (
	"fmt"
	"slices"
	"sync"
)

// critBox is one rectangle projected onto a gap axis: lo/hi span the axis
// a defect bridges across, tLo/tHi the transverse extent that determines
// the facing overlap.
type critBox struct{ lo, hi, tLo, tHi float64 }

// cmpCritBox is a total order on boxes, so sorted order — and therefore
// the floating-point summation order of the critical-area kernels — is
// canonical regardless of the sort algorithm.
func cmpCritBox(a, b critBox) int {
	switch {
	case a.lo != b.lo:
		if a.lo < b.lo {
			return -1
		}
		return 1
	case a.hi != b.hi:
		if a.hi < b.hi {
			return -1
		}
		return 1
	case a.tLo != b.tLo:
		if a.tLo < b.tLo {
			return -1
		}
		return 1
	case a.tHi != b.tHi:
		if a.tHi < b.tHi {
			return -1
		}
		return 1
	}
	return 0
}

// openWire is a rectangle reduced to the open-circuit geometry: its short
// dimension (width) and long dimension (length).
type openWire struct{ width, length float64 }

// CritEvaluator holds the sorted per-axis geometry of one layer so the
// critical area can be evaluated at many defect sizes without re-deriving
// or re-sorting anything: Reset is O(n log n) once, ShortArea/OpenArea
// allocate nothing. This is the kernel behind critical-area curves and
// the size-averaged yield integrals, which sample hundreds of defect
// sizes against the same geometry.
type CritEvaluator struct {
	h, v    []critBox // sorted by cmpCritBox; h gaps along x, v along y
	wires   []openWire
	dieArea int // bounding-box area, λ²
}

// NewCritEvaluator builds an evaluator for one layer of l.
func NewCritEvaluator(l *Layout, layer Layer) (*CritEvaluator, error) {
	e := &CritEvaluator{}
	if err := e.Reset(l, layer); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset re-targets the evaluator at a (layout, layer) pair, reusing its
// internal buffers: resetting to same-sized geometry allocates nothing.
func (e *CritEvaluator) Reset(l *Layout, layer Layer) error {
	if err := l.Validate(); err != nil {
		return err
	}
	e.h, e.v, e.wires = e.h[:0], e.v[:0], e.wires[:0]
	e.dieArea = l.AreaLambda2()
	for _, r := range l.Rects {
		if r.Layer != layer {
			continue
		}
		e.h = append(e.h, critBox{float64(r.X0), float64(r.X1), float64(r.Y0), float64(r.Y1)})
		e.v = append(e.v, critBox{float64(r.Y0), float64(r.Y1), float64(r.X0), float64(r.X1)})
		w, h := float64(r.W()), float64(r.H())
		width, length := w, h
		if h < w {
			width, length = h, w
		}
		e.wires = append(e.wires, openWire{width: width, length: length})
	}
	slices.SortFunc(e.h, cmpCritBox)
	slices.SortFunc(e.v, cmpCritBox)
	return nil
}

// ShortArea returns the short-circuit critical area at defect diameter x
// using the parallel-edge approximation over both facing axes. It
// allocates nothing.
func (e *CritEvaluator) ShortArea(x float64) float64 {
	if len(e.h) < 2 {
		return 0
	}
	return facingSum(e.h, x) + facingSum(e.v, x)
}

// facingSum sums critical strip areas for pairs facing along one axis:
// for facing edges at spacing s < x the strip has length equal to the
// facing overlap and width (x − s).
func facingSum(bs []critBox, x float64) float64 {
	var total float64
	for i := range bs {
		for j := i + 1; j < len(bs); j++ {
			gap := bs[j].lo - bs[i].hi
			if gap >= x {
				// bs is sorted by lo and bs[i].hi is fixed, so the gap only
				// grows with j: no later rect can face this one.
				break
			}
			if gap < 0 {
				continue // overlapping or abutting along the axis: not a facing pair
			}
			overlap := minF(bs[i].tHi, bs[j].tHi) - maxF(bs[i].tLo, bs[j].tLo)
			if overlap <= 0 {
				continue
			}
			total += overlap * (x - gap)
		}
	}
	return total
}

// OpenArea returns the open-circuit critical area at defect diameter x: a
// missing-material defect wider than a wire severs it, with a strip the
// length of the wire and width (x − w). It allocates nothing.
func (e *CritEvaluator) OpenArea(x float64) float64 {
	var total float64
	for _, w := range e.wires {
		if x > w.width {
			total += w.length * (x - w.width)
		}
	}
	return total
}

// Area returns the combined (shorts + opens) critical area at defect
// diameter x.
func (e *CritEvaluator) Area(x float64) float64 {
	return e.ShortArea(x) + e.OpenArea(x)
}

// Fraction returns the combined critical area at x as a fraction of the
// layout bounding box, clamped to [0, 1].
func (e *CritEvaluator) Fraction(x float64) float64 {
	f := e.Area(x) / float64(e.dieArea)
	if f > 1 {
		f = 1
	}
	return f
}

// critEvalPool recycles evaluators across the convenience wrappers below,
// so one-shot calls reuse box and wire buffers instead of reallocating
// them per invocation.
var critEvalPool = sync.Pool{New: func() any { return new(CritEvaluator) }}

// CriticalArea computes the short-circuit critical area of one layer for a
// circular defect of diameter x (in λ): the area of defect-center
// positions that bridge two distinct rectangles. It uses the standard
// parallel-edge approximation; diagonal adjacency is a second-order
// contribution the approximation ignores, as does the literature it
// follows. Callers evaluating many defect sizes should build a
// CritEvaluator once instead.
func CriticalArea(l *Layout, layer Layer, defectSize float64) (float64, error) {
	if defectSize < 0 {
		return 0, fmt.Errorf("layout: defect size must be non-negative, got %v", defectSize)
	}
	e := critEvalPool.Get().(*CritEvaluator)
	defer critEvalPool.Put(e)
	if err := e.Reset(l, layer); err != nil {
		return 0, err
	}
	return e.ShortArea(defectSize), nil
}

// OpenCriticalArea computes the open-circuit critical area of a layer for
// a defect of diameter x: for each wire (rectangle), a missing-material
// defect wider than the wire severs it; the critical strip runs the length
// of the wire with width (x − w) when x exceeds the wire width w.
func OpenCriticalArea(l *Layout, layer Layer, defectSize float64) (float64, error) {
	if defectSize < 0 {
		return 0, fmt.Errorf("layout: defect size must be non-negative, got %v", defectSize)
	}
	if err := l.Validate(); err != nil {
		return 0, err
	}
	var total float64
	for _, r := range l.Rects {
		if r.Layer != layer {
			continue
		}
		w, h := float64(r.W()), float64(r.H())
		// Orient along the long side: width is the short dimension.
		width, length := w, h
		if h < w {
			width, length = h, w
		}
		if defectSize > width {
			total += length * (defectSize - width)
		}
	}
	return total, nil
}

// CriticalAreaCurve samples the combined (shorts + opens) critical area of
// a layer at the given defect sizes, returning a function-ready table for
// yield.AverageCriticalArea. Sizes must be non-negative. The geometry is
// extracted and sorted once for the whole curve.
func CriticalAreaCurve(l *Layout, layer Layer, sizes []float64) ([]float64, error) {
	e := critEvalPool.Get().(*CritEvaluator)
	defer critEvalPool.Put(e)
	if err := e.Reset(l, layer); err != nil {
		return nil, err
	}
	out := make([]float64, len(sizes))
	for i, x := range sizes {
		if x < 0 {
			return nil, fmt.Errorf("layout: defect size must be non-negative, got %v", x)
		}
		out[i] = e.Area(x)
	}
	return out, nil
}

// CriticalFraction returns the combined critical area at defect size x as
// a fraction of the layout bounding box, the per-layer critical fraction
// the yield.Stack consumes. The fraction is clamped to [0, 1]: beyond
// defect sizes comparable to the die, the geometric approximation
// overcounts.
func CriticalFraction(l *Layout, layer Layer, defectSize float64) (float64, error) {
	if defectSize < 0 {
		return 0, fmt.Errorf("layout: defect size must be non-negative, got %v", defectSize)
	}
	e := critEvalPool.Get().(*CritEvaluator)
	defer critEvalPool.Put(e)
	if err := e.Reset(l, layer); err != nil {
		return 0, err
	}
	return e.Fraction(defectSize), nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
