// Package layout provides a simplified mask-layout substrate: rectangles
// on named layers over a λ-unit grid, a small standard-cell library, and
// generators for the three design styles the paper contrasts (dense SRAM
// arrays, tiled datapaths, and sparsely-placed random logic). From a
// generated layout the package measures the design decompression index s_d
// directly — the quantity Table A1 extracts from die photographs — and
// extracts critical-area curves for the yield models.
//
// Coordinates are integers in units of λ (the minimum feature size), so a
// layout is process-independent exactly the way s_d is; multiplying by a
// concrete λ instantiates physical dimensions.
package layout

import (
	"fmt"
	"slices"
	"sync"
)

// Layer identifies a mask layer.
type Layer uint8

// The layers the cell library uses.
const (
	Diffusion Layer = iota
	Poly
	Metal1
	Metal2
	numLayers
)

// String returns the layer name.
func (l Layer) String() string {
	switch l {
	case Diffusion:
		return "diffusion"
	case Poly:
		return "poly"
	case Metal1:
		return "metal1"
	case Metal2:
		return "metal2"
	default:
		return fmt.Sprintf("layer(%d)", uint8(l))
	}
}

// Rect is an axis-aligned rectangle on a layer, in λ units. X1/Y1 are
// exclusive: the rectangle covers [X0, X1) × [Y0, Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
	Layer          Layer
}

// Valid reports whether the rectangle has positive extent.
func (r Rect) Valid() bool { return r.X1 > r.X0 && r.Y1 > r.Y0 }

// W returns the width in λ.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the height in λ.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the area in λ².
func (r Rect) Area() int { return r.W() * r.H() }

// Translate returns the rectangle shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy, Layer: r.Layer}
}

// Intersects reports whether two rectangles on the same layer overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.Layer == o.Layer && r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1
}

// Layout is a collection of rectangles over a bounding box, annotated with
// the number of transistors it implements.
type Layout struct {
	Name        string
	Width       int // bounding box, λ
	Height      int // bounding box, λ
	Transistors int
	Rects       []Rect
}

// Validate reports the first structural problem with l, or nil.
func (l *Layout) Validate() error {
	if l.Width <= 0 || l.Height <= 0 {
		return fmt.Errorf("layout %q: bounding box must be positive, got %d×%d", l.Name, l.Width, l.Height)
	}
	if l.Transistors < 0 {
		return fmt.Errorf("layout %q: negative transistor count", l.Name)
	}
	for i, r := range l.Rects {
		if !r.Valid() {
			return fmt.Errorf("layout %q: rect %d has non-positive extent", l.Name, i)
		}
		if r.Layer >= numLayers {
			return fmt.Errorf("layout %q: rect %d on unknown layer %d", l.Name, i, r.Layer)
		}
		if r.X0 < 0 || r.Y0 < 0 || r.X1 > l.Width || r.Y1 > l.Height {
			return fmt.Errorf("layout %q: rect %d escapes the bounding box", l.Name, i)
		}
	}
	return nil
}

// AreaLambda2 returns the bounding-box area in λ².
func (l *Layout) AreaLambda2() int { return l.Width * l.Height }

// Sd returns the measured design decompression index: bounding-box λ²
// squares per transistor. It returns an error for an empty design.
func (l *Layout) Sd() (float64, error) {
	if l.Transistors <= 0 {
		return 0, fmt.Errorf("layout %q: s_d undefined without transistors", l.Name)
	}
	return float64(l.AreaLambda2()) / float64(l.Transistors), nil
}

// AreaCM2 returns the physical area at feature size lambdaUM (µm).
func (l *Layout) AreaCM2(lambdaUM float64) (float64, error) {
	if lambdaUM <= 0 {
		return 0, fmt.Errorf("layout %q: feature size must be positive", l.Name)
	}
	side := lambdaUM / 1e4 // λ in cm
	return float64(l.AreaLambda2()) * side * side, nil
}

// LayerRects returns the rectangles on one layer, in insertion order.
func (l *Layout) LayerRects(layer Layer) []Rect {
	var out []Rect
	for _, r := range l.Rects {
		if r.Layer == layer {
			out = append(out, r)
		}
	}
	return out
}

// GeometryUtilization returns the fraction of the bounding box covered by
// drawn geometry per layer (overlaps counted once), a proxy for how tight
// the layout is. Layers with no geometry are omitted.
func (l *Layout) GeometryUtilization() map[Layer]float64 {
	out := make(map[Layer]float64)
	for layer := Layer(0); layer < numLayers; layer++ {
		rects := l.LayerRects(layer)
		if len(rects) == 0 {
			continue
		}
		out[layer] = float64(UnionArea(rects)) / float64(l.AreaLambda2())
	}
	return out
}

// ContentHash returns a cheap 64-bit FNV-1a-style digest of the layout
// geometry: dimensions, transistor count, and every rectangle in order.
// The Name is excluded, so two layouts with identical geometry hash
// identically. It is the memoization key for derived quantities
// (critical-area curves, averaged critical fractions); it is not
// cryptographic, but a collision needs two distinct geometries to meet in
// 64 bits, negligible at cache scale.
func (l *Layout) ContentHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h = (h ^ v) * prime64
	}
	mix(uint64(int64(l.Width)))
	mix(uint64(int64(l.Height)))
	mix(uint64(int64(l.Transistors)))
	for _, r := range l.Rects {
		mix(uint64(int64(r.X0)))
		mix(uint64(int64(r.Y0)))
		mix(uint64(int64(r.X1)))
		mix(uint64(int64(r.Y1)))
		mix(uint64(r.Layer))
	}
	return h
}

// unionScratch holds the reusable coordinate buffers of the union-area
// sweep, so repeated calls allocate nothing once the buffers have grown
// to the working-set size.
type unionScratch struct {
	xs []int
	ys [][2]int
}

var unionPool = sync.Pool{New: func() any { return new(unionScratch) }}

// UnionArea computes the exact union area of rectangles by coordinate
// compression and sweep. Inputs of zero or one rectangle return without
// allocating or touching the scratch pool.
func UnionArea(rects []Rect) int {
	switch len(rects) {
	case 0:
		return 0
	case 1:
		return rects[0].Area()
	}
	s := unionPool.Get().(*unionScratch)
	defer unionPool.Put(s)
	return s.unionArea(rects)
}

// unionArea is the sweep body; the scratch buffers persist on s.
func (s *unionScratch) unionArea(rects []Rect) int {
	xs := s.xs[:0]
	for _, r := range rects {
		xs = append(xs, r.X0, r.X1)
	}
	slices.Sort(xs)
	s.xs = xs
	xs = dedupInts(xs)
	total := 0
	for i := 0; i+1 < len(xs); i++ {
		x0, x1 := xs[i], xs[i+1]
		// Collect y intervals of rects spanning this x slab, reusing the
		// interval buffer across slabs.
		ys := s.ys[:0]
		for _, r := range rects {
			if r.X0 <= x0 && r.X1 >= x1 {
				ys = append(ys, [2]int{r.Y0, r.Y1})
			}
		}
		s.ys = ys
		if len(ys) == 0 {
			continue
		}
		slices.SortFunc(ys, func(a, b [2]int) int {
			if a[0] != b[0] {
				return a[0] - b[0]
			}
			return a[1] - b[1]
		})
		covered := 0
		curLo, curHi := ys[0][0], ys[0][1]
		for _, iv := range ys[1:] {
			if iv[0] > curHi {
				covered += curHi - curLo
				curLo, curHi = iv[0], iv[1]
			} else if iv[1] > curHi {
				curHi = iv[1]
			}
		}
		covered += curHi - curLo
		total += covered * (x1 - x0)
	}
	return total
}

// dedupInts compacts consecutive duplicates of a sorted slice in place.
// Inputs of length 0 or 1 are returned untouched.
func dedupInts(xs []int) []int {
	if len(xs) <= 1 {
		return xs
	}
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
