package layout

import (
	"math"

	"repro/internal/memo"
)

// curveKey identifies one memoized critical-area curve: the layout
// geometry (by content hash), the layer, and the defect-size grid (by
// hash of the sampled sizes).
type curveKey struct {
	layout uint64
	layer  Layer
	sizes  uint64
}

// curveCache memoizes whole critical-area curves. Layout-vs-yield sweeps
// evaluate the same generated geometries row after row; keying on the
// content hash makes every repeat extraction a lookup.
var curveCache = memo.New[curveKey, []float64]("layout.critarea-curve", 64)

// hashSizes digests a defect-size grid for curve keying.
func hashSizes(sizes []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(len(sizes))) * prime64
	for _, x := range sizes {
		h = (h ^ math.Float64bits(x)) * prime64
	}
	return h
}

// CriticalAreaCurveCached is CriticalAreaCurve behind the memo layer:
// identical (geometry, layer, sizes) requests are served from cache. The
// returned slice is shared between callers and must be treated as
// read-only; use CriticalAreaCurve for a private copy.
func CriticalAreaCurveCached(l *Layout, layer Layer, sizes []float64) ([]float64, error) {
	key := curveKey{layout: l.ContentHash(), layer: layer, sizes: hashSizes(sizes)}
	return curveCache.Get(key, func() ([]float64, error) {
		return CriticalAreaCurve(l, layer, sizes)
	})
}
