// Package loadgen is the in-repo load generator behind cmd/loadgen and
// the SLO gate in scripts/check.sh. It drives a pinned, deterministic
// endpoint set against a nanocostd (or nanocostfront) base URL in
// either of the two canonical modes:
//
//   - closed loop: a fixed number of workers, each issuing its next
//     request the moment the previous one finishes. Throughput floats,
//     concurrency is pinned — the classic saturation probe.
//   - open loop: a fixed arrival rate, arrivals independent of
//     completions. Latency under a pinned rate is the honest SLO
//     measurement — a closed loop silently slows its own arrival rate
//     when the server degrades (coordinated omission).
//
// Latency percentiles are exact (sorted samples, no sketch), and every
// endpoint's response bodies are fingerprinted with sha256 so a routing
// layer can be checked for byte-identical responses across replicas and
// failovers, not just for 200s.
package loadgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Endpoint is one request shape in the driven set. Bodies must make the
// request a pure function — same bytes back on every replica — or hash
// checking will (correctly) flag the endpoint.
type Endpoint struct {
	Name   string // short label for reports ("cost", "figure1", ...)
	Method string
	Path   string // path plus query
	Body   string // empty for GET
}

// DefaultEndpoints is the pinned set the SLO gate drives: the three
// model-evaluation POSTs, a batch, and two memoized figures. All are
// deterministic functions of the request, so responses are byte-stable
// across replicas, restarts and retries.
func DefaultEndpoints() []Endpoint {
	const scenario = `{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":5000}`
	return []Endpoint{
		{Name: "cost", Method: "POST", Path: "/v1/cost", Body: scenario},
		{Name: "designcost", Method: "POST", Path: "/v1/designcost",
			Body: `{"transistors":10e6,"sd":300}`},
		{Name: "generalized", Method: "POST", Path: "/v1/generalized",
			Body: `{"scenario":{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":5000,"utilization":0.85}}`},
		{Name: "batch", Method: "POST", Path: "/v1/batch",
			Body: `{"items":[{"kind":"cost","body":` + scenario + `},{"kind":"designcost","body":{"transistors":10e6,"sd":300}}]}`},
		{Name: "figure1", Method: "GET", Path: "/v1/figures/1"},
		{Name: "figure3", Method: "GET", Path: "/v1/figures/3"},
	}
}

// Config parameterizes one run. RPS > 0 selects the open loop;
// otherwise Concurrency closed-loop workers run back to back.
type Config struct {
	BaseURL     string // e.g. "http://127.0.0.1:8087"
	Endpoints   []Endpoint
	Duration    time.Duration
	Concurrency int     // closed loop (default 4)
	RPS         float64 // open loop when > 0
	Timeout     time.Duration
	Client      *http.Client // override for tests; nil builds one
}

func (c Config) withDefaults() Config {
	if len(c.Endpoints) == 0 {
		c.Endpoints = DefaultEndpoints()
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Timeout: c.Timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: max(c.Concurrency, 64),
			},
		}
	}
	return c
}

// EndpointResult is the per-endpoint slice of a run.
type EndpointResult struct {
	Name           string
	Requests       int
	Non2xx         int
	TransportErrs  int
	BodySHA256     string // hash of the first 2xx body
	HashMismatches int    // later 2xx bodies that disagreed with the first
}

// Result is one finished run.
type Result struct {
	Mode          string // "closed" or "open"
	Requests      int
	Non2xx        int
	TransportErrs int
	Elapsed       time.Duration
	AchievedRPS   float64
	RequestedRPS  float64 // open loop: the pinned arrival rate asked for
	ArrivalRPS    float64 // open loop: arrivals actually launched per second of Duration
	P50, P90, P99 time.Duration
	Max           time.Duration
	Endpoints     []EndpointResult
}

// recorder accumulates samples across workers.
type recorder struct {
	mu        sync.Mutex
	latencies []time.Duration
	byName    map[string]*EndpointResult
}

func (rec *recorder) record(name string, elapsed time.Duration, status int, body []byte, transportErr bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	er := rec.byName[name]
	er.Requests++
	switch {
	case transportErr:
		er.TransportErrs++
	case status < 200 || status > 299:
		er.Non2xx++
	default:
		sum := sha256.Sum256(body)
		h := hex.EncodeToString(sum[:])
		if er.BodySHA256 == "" {
			er.BodySHA256 = h
		} else if er.BodySHA256 != h {
			er.HashMismatches++
		}
	}
	if !transportErr {
		rec.latencies = append(rec.latencies, elapsed)
	}
}

// Percentile returns the exact q-quantile (0 < q <= 1) of sorted
// ascending samples: the smallest sample with at least q of the mass at
// or below it. Empty input yields 0.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run drives the configured load until Duration elapses (or ctx is
// cancelled, whichever first) and returns the aggregated result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")

	rec := &recorder{byName: map[string]*EndpointResult{}}
	for _, e := range cfg.Endpoints {
		if _, dup := rec.byName[e.Name]; dup {
			return nil, fmt.Errorf("loadgen: duplicate endpoint name %q", e.Name)
		}
		rec.byName[e.Name] = &EndpointResult{Name: e.Name}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	shoot := func(e Endpoint) {
		var rd io.Reader
		if e.Body != "" {
			rd = strings.NewReader(e.Body)
		}
		// The request context is NOT runCtx: an arrival admitted before
		// the deadline gets its full timeout, so the tail of the run is
		// measured, not truncated.
		req, err := http.NewRequestWithContext(ctx, e.Method, base+e.Path, rd)
		if err != nil {
			rec.record(e.Name, 0, 0, nil, true)
			return
		}
		if e.Body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		start := time.Now()
		resp, err := cfg.Client.Do(req)
		if err != nil {
			rec.record(e.Name, time.Since(start), 0, nil, true)
			return
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		elapsed := time.Since(start)
		if rerr != nil {
			rec.record(e.Name, elapsed, 0, nil, true)
			return
		}
		rec.record(e.Name, elapsed, resp.StatusCode, body, false)
	}

	start := time.Now()
	mode := "closed"
	arrivals := 0
	var wg sync.WaitGroup
	if cfg.RPS > 0 {
		mode = "open"
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		// Arrival n fires at start+n·interval, an absolute schedule. A
		// ticker here coalesces: its channel buffers exactly one tick, so
		// whenever this loop stalls past one interval (goroutine storms on
		// a small box, a GC pause) every tick that should have queued in
		// the stall is dropped and the achieved rate silently undershoots
		// the pinned one — coordinated omission smuggled back into the
		// open loop. Falling behind an absolute schedule instead fires
		// immediately, bursting until the arrival count catches up.
		timer := time.NewTimer(time.Hour)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	openLoop:
		for {
			next := start.Add(time.Duration(float64(arrivals) * float64(interval)))
			if d := time.Until(next); d > 0 {
				timer.Reset(d)
				select {
				case <-runCtx.Done():
					break openLoop
				case <-timer.C:
				}
			} else if runCtx.Err() != nil {
				break openLoop
			}
			e := cfg.Endpoints[arrivals%len(cfg.Endpoints)]
			arrivals++
			wg.Add(1)
			go func() { defer wg.Done(); shoot(e) }()
		}
	} else {
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(offset int) {
				defer wg.Done()
				for i := offset; runCtx.Err() == nil; i++ {
					shoot(cfg.Endpoints[i%len(cfg.Endpoints)])
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rec.mu.Lock()
	defer rec.mu.Unlock()
	sort.Slice(rec.latencies, func(a, b int) bool { return rec.latencies[a] < rec.latencies[b] })
	res := &Result{Mode: mode, Elapsed: elapsed}
	for _, e := range cfg.Endpoints {
		er := rec.byName[e.Name]
		res.Endpoints = append(res.Endpoints, *er)
		res.Requests += er.Requests
		res.Non2xx += er.Non2xx
		res.TransportErrs += er.TransportErrs
	}
	if elapsed > 0 {
		res.AchievedRPS = float64(res.Requests) / elapsed.Seconds()
	}
	if mode == "open" {
		res.RequestedRPS = cfg.RPS
		// Arrivals are judged against the configured window, not Elapsed:
		// Elapsed includes the post-deadline drain of in-flight requests,
		// which would flatter a generator that fell behind.
		res.ArrivalRPS = float64(arrivals) / cfg.Duration.Seconds()
	}
	res.P50 = Percentile(rec.latencies, 0.50)
	res.P90 = Percentile(rec.latencies, 0.90)
	res.P99 = Percentile(rec.latencies, 0.99)
	if n := len(rec.latencies); n > 0 {
		res.Max = rec.latencies[n-1]
	}
	return res, nil
}

// Report renders the run for humans plus one machine-greppable
// "hash <endpoint> <sha256>" line per endpoint, which the SLO script
// compares across router topologies for byte identity.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s requests=%d non2xx=%d transport_errs=%d elapsed=%s rps=%.1f",
		r.Mode, r.Requests, r.Non2xx, r.TransportErrs,
		r.Elapsed.Round(time.Millisecond), r.AchievedRPS)
	if r.Mode == "open" {
		fmt.Fprintf(&b, " requested_rps=%.1f arrival_rps=%.1f", r.RequestedRPS, r.ArrivalRPS)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "latency p50=%s p90=%s p99=%s max=%s\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	for _, e := range r.Endpoints {
		fmt.Fprintf(&b, "endpoint %-12s requests=%-6d non2xx=%-4d mismatches=%d\n",
			e.Name, e.Requests, e.Non2xx, e.HashMismatches)
	}
	for _, e := range r.Endpoints {
		if e.BodySHA256 != "" {
			fmt.Fprintf(&b, "hash %s %s\n", e.Name, e.BodySHA256)
		}
	}
	return b.String()
}

// CheckSLO returns the list of violated constraints, empty when the run
// met them all. maxP99 <= 0 and maxNon2xx < 0 disable their checks;
// hash mismatches and transport errors always violate.
func (r *Result) CheckSLO(maxP99 time.Duration, maxNon2xx int) []string {
	var v []string
	if maxP99 > 0 && r.P99 > maxP99 {
		v = append(v, fmt.Sprintf("p99 %s exceeds budget %s", r.P99, maxP99))
	}
	if maxNon2xx >= 0 && r.Non2xx > maxNon2xx {
		v = append(v, fmt.Sprintf("%d non-2xx responses exceed budget %d", r.Non2xx, maxNon2xx))
	}
	if r.TransportErrs > 0 {
		v = append(v, fmt.Sprintf("%d transport errors", r.TransportErrs))
	}
	for _, e := range r.Endpoints {
		if e.HashMismatches > 0 {
			v = append(v, fmt.Sprintf("endpoint %s: %d response-hash mismatches", e.Name, e.HashMismatches))
		}
	}
	// An open loop that cannot sustain its own pinned rate measures a
	// gentler load than requested; the whole run is then untrustworthy,
	// not just slow.
	if r.Mode == "open" && r.RequestedRPS > 0 && r.ArrivalRPS < 0.95*r.RequestedRPS {
		v = append(v, fmt.Sprintf("arrival rate %.1f/s undershoots requested %.1f/s by more than 5%%",
			r.ArrivalRPS, r.RequestedRPS))
	}
	if r.Requests == 0 {
		v = append(v, "no requests completed")
	}
	return v
}
