package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPercentileExact pins the exact-quantile definition on a small
// known sample set.
func TestPercentileExact(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms sorted
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
		{0.01, 1 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := Percentile(samples, tc.q); got != tc.want {
			t.Errorf("Percentile(1..100ms, %v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.99); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile(samples[:1], 0.99); got != time.Millisecond {
		t.Errorf("Percentile(single sample) = %v", got)
	}
}

// stableServer answers every endpoint deterministically.
func stableServer() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "stable response for %s %s", r.Method, r.URL.Path)
	}))
}

var testEndpoints = []Endpoint{
	{Name: "a", Method: "GET", Path: "/a"},
	{Name: "b", Method: "POST", Path: "/b", Body: `{"x":1}`},
}

// TestClosedLoopRun drives a short closed loop and checks the
// aggregate bookkeeping: all 2xx, consistent hashes, sane percentiles.
func TestClosedLoopRun(t *testing.T) {
	ts := stableServer()
	defer ts.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Endpoints:   testEndpoints,
		Duration:    200 * time.Millisecond,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" || res.Requests == 0 {
		t.Fatalf("result = %+v, want closed-loop traffic", res)
	}
	if res.Non2xx != 0 || res.TransportErrs != 0 {
		t.Fatalf("clean server produced non2xx=%d errs=%d", res.Non2xx, res.TransportErrs)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("percentiles out of order: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	for _, e := range res.Endpoints {
		if e.Requests == 0 || e.BodySHA256 == "" || e.HashMismatches != 0 {
			t.Fatalf("endpoint %+v, want traffic with one stable hash", e)
		}
	}
	if v := res.CheckSLO(time.Minute, 0); len(v) != 0 {
		t.Fatalf("clean run violates SLO: %v", v)
	}
}

// TestOpenLoopPacesArrivals: the open loop issues roughly rate×duration
// requests regardless of completion times.
func TestOpenLoopPacesArrivals(t *testing.T) {
	ts := stableServer()
	defer ts.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:   ts.URL,
		Endpoints: testEndpoints,
		Duration:  500 * time.Millisecond,
		RPS:       200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200 rps × 0.5 s = 100 arrivals; allow generous scheduler slack.
	if res.Mode != "open" || res.Requests < 50 || res.Requests > 150 {
		t.Fatalf("open loop issued %d requests at 200rps/500ms, want ≈100", res.Requests)
	}
}

// TestHashMismatchDetected: a server whose responses vary must be
// flagged — this is the byte-identity check the router SLO leans on.
func TestHashMismatchDetected(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "response %d", n.Add(1))
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Endpoints:   []Endpoint{{Name: "flap", Method: "GET", Path: "/"}},
		Duration:    100 * time.Millisecond,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Endpoints[0].HashMismatches == 0 {
		t.Fatal("varying responses produced no hash mismatches")
	}
	if v := res.CheckSLO(0, -1); len(v) == 0 {
		t.Fatal("hash mismatches did not violate the SLO")
	}
}

// TestNon2xxCountedAndBudgeted: error responses count per endpoint and
// trip the budget check.
func TestNon2xxCountedAndBudgeted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Endpoints:   []Endpoint{{Name: "err", Method: "GET", Path: "/"}},
		Duration:    50 * time.Millisecond,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Non2xx == 0 || res.Non2xx != res.Endpoints[0].Non2xx {
		t.Fatalf("non-2xx accounting: %+v", res)
	}
	if v := res.CheckSLO(0, 0); len(v) == 0 {
		t.Fatal("non-2xx over budget did not violate the SLO")
	}
	if v := res.CheckSLO(0, -1); len(v) != 0 {
		t.Fatalf("disabled non-2xx budget still violated: %v", v)
	}
}

// TestReportCarriesHashLines: the machine-readable hash lines the SLO
// script greps must be present and stable.
func TestReportCarriesHashLines(t *testing.T) {
	ts := stableServer()
	defer ts.Close()
	run := func() *Result {
		res, err := Run(context.Background(), Config{
			BaseURL:     ts.URL,
			Endpoints:   testEndpoints,
			Duration:    50 * time.Millisecond,
			Concurrency: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	for i := range r1.Endpoints {
		if r1.Endpoints[i].BodySHA256 != r2.Endpoints[i].BodySHA256 {
			t.Fatalf("endpoint %s hash differs across runs", r1.Endpoints[i].Name)
		}
		want := fmt.Sprintf("hash %s %s\n", r1.Endpoints[i].Name, r1.Endpoints[i].BodySHA256)
		if report := r1.Report(); !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// stubTransport answers every request in-process with a canned 200, so
// the pacing test below measures the arrival loop's scheduling — not
// this box's capacity to serve real HTTP at the requested rate.
type stubTransport struct{}

func (stubTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("ok")),
		Header:     http.Header{},
	}, nil
}

// TestOpenLoopHoldsRateUnderLoad is the pacing regression test: at
// 2000 rps on a small box the per-request goroutine launches stall the
// arrival loop past single intervals, and a ticker-driven loop (whose
// channel buffers exactly one tick) silently drops every tick the stall
// swallowed — this box measured ~50% of the requested arrivals even
// against the in-process stub. The absolute schedule must burst through
// stalls and deliver the pinned rate.
func TestOpenLoopHoldsRateUnderLoad(t *testing.T) {
	res, err := Run(context.Background(), Config{
		BaseURL:   "http://stub.invalid",
		Endpoints: []Endpoint{{Name: "ok", Method: "GET", Path: "/ok"}},
		Duration:  700 * time.Millisecond,
		RPS:       2000,
		Client:    &http.Client{Transport: stubTransport{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const want = 1400 // 2000 rps × 0.7 s
	if res.Requests < want*85/100 {
		t.Fatalf("open loop launched %d arrivals at 2000rps/700ms, want ≥ %d (ticker coalescing?)", res.Requests, want*85/100)
	}
	if res.Requests > want+want/10 {
		t.Fatalf("open loop launched %d arrivals, more than the schedule admits (~%d)", res.Requests, want)
	}
	if res.RequestedRPS != 2000 {
		t.Fatalf("RequestedRPS = %v, want 2000", res.RequestedRPS)
	}
	if res.ArrivalRPS < 0.95*res.RequestedRPS {
		t.Fatalf("ArrivalRPS = %.1f, want ≥ 95%% of %.1f", res.ArrivalRPS, res.RequestedRPS)
	}
	if v := res.CheckSLO(0, -1); len(v) != 0 {
		t.Fatalf("unexpected SLO violations: %v", v)
	}
	if !strings.Contains(res.Report(), "arrival_rps=") {
		t.Fatalf("open-loop report misses arrival_rps: %s", res.Report())
	}
}

// TestCheckSLOFlagsArrivalUndershoot: an open-loop run that failed to
// sustain its own requested rate is a violation in itself, even with
// perfect latencies.
func TestCheckSLOFlagsArrivalUndershoot(t *testing.T) {
	r := &Result{Mode: "open", Requests: 700, RequestedRPS: 2000, ArrivalRPS: 1000}
	v := r.CheckSLO(0, -1)
	found := false
	for _, s := range v {
		if strings.Contains(s, "undershoots") {
			found = true
		}
	}
	if !found {
		t.Fatalf("50%% arrival undershoot not flagged: %v", v)
	}
	ok := &Result{Mode: "open", Requests: 1400, RequestedRPS: 2000, ArrivalRPS: 1960}
	for _, s := range ok.CheckSLO(0, -1) {
		if strings.Contains(s, "undershoots") {
			t.Fatalf("96%% arrival rate wrongly flagged: %v", ok.CheckSLO(0, -1))
		}
	}
	closed := &Result{Mode: "closed", Requests: 100}
	for _, s := range closed.CheckSLO(0, -1) {
		if strings.Contains(s, "undershoots") {
			t.Fatalf("closed loop wrongly checked for arrival rate: %v", s)
		}
	}
}
