package yield

import (
	"fmt"
	"math"
)

// Layer describes one process layer's contribution to random-defect yield:
// its defect density (defects/cm²) and the fraction of the die area that is
// critical for that layer (a defect landing there kills the die).
type Layer struct {
	Name             string
	DefectDensity    float64 // D0, defects per cm²
	CriticalFraction float64 // in [0, 1]
}

// Validate reports the first invalid field of l, or nil.
func (l Layer) Validate() error {
	if l.DefectDensity < 0 {
		return fmt.Errorf("yield: layer %q: defect density must be non-negative, got %v", l.Name, l.DefectDensity)
	}
	if l.CriticalFraction < 0 || l.CriticalFraction > 1 {
		return fmt.Errorf("yield: layer %q: critical fraction must be in [0,1], got %v", l.Name, l.CriticalFraction)
	}
	return nil
}

// Stack is a multi-layer process description with an optional systematic
// yield multiplier (lithography, parametric, and equipment-excursion loss
// that does not scale with area the way random defects do).
type Stack struct {
	Layers     []Layer
	Systematic float64 // Y_sys in (0, 1]; 0 means 1
	Model      Model   // per-layer random model; nil means Poisson
}

// systematic returns Y_sys with the zero-value default applied.
func (s Stack) systematic() float64 {
	if s.Systematic == 0 {
		return 1
	}
	return s.Systematic
}

// model returns the random-defect model with the nil default applied.
func (s Stack) model() Model {
	if s.Model == nil {
		return Poisson{}
	}
	return s.Model
}

// Validate reports the first invalid field of s, or nil.
func (s Stack) Validate() error {
	if len(s.Layers) == 0 {
		return fmt.Errorf("yield: stack has no layers")
	}
	for _, l := range s.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	if sys := s.systematic(); !(sys > 0 && sys <= 1) {
		return fmt.Errorf("yield: systematic yield must be in (0,1], got %v", sys)
	}
	return nil
}

// TotalLambda returns the summed mean fatal-defect count per die of the
// given area: Σ_layers D0_i · cf_i · A.
func (s Stack) TotalLambda(areaCM2 float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if areaCM2 < 0 {
		return 0, fmt.Errorf("yield: area must be non-negative, got %v", areaCM2)
	}
	var sum float64
	for _, l := range s.Layers {
		sum += l.DefectDensity * l.CriticalFraction * areaCM2
	}
	return sum, nil
}

// Yield returns the composite die yield: Y_sys · Π_layers M(λ_i). For the
// Poisson model the product equals M(Σλ_i); for clustered models the
// per-layer product is the standard industrial convention.
func (s Stack) Yield(areaCM2 float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if areaCM2 < 0 {
		return 0, fmt.Errorf("yield: area must be non-negative, got %v", areaCM2)
	}
	m := s.model()
	y := s.systematic()
	for _, l := range s.Layers {
		y *= m.Yield(l.DefectDensity * l.CriticalFraction * areaCM2)
	}
	return y, nil
}

// UniformStack builds an n-layer stack with identical defect density and
// critical fraction per layer — the common first-order process template.
func UniformStack(n int, d0PerLayer, criticalFraction float64, m Model) (Stack, error) {
	if n <= 0 {
		return Stack{}, fmt.Errorf("yield: layer count must be positive, got %d", n)
	}
	layers := make([]Layer, n)
	for i := range layers {
		layers[i] = Layer{
			Name:             fmt.Sprintf("layer-%d", i+1),
			DefectDensity:    d0PerLayer,
			CriticalFraction: criticalFraction,
		}
	}
	s := Stack{Layers: layers, Model: m}
	if err := s.Validate(); err != nil {
		return Stack{}, err
	}
	return s, nil
}

// DensityScaledStack models the paper's observation that yield is a
// function of minimum feature size and design density: defect densities
// grow as the node shrinks (more process steps, tighter tolerances) and a
// denser design (smaller s_d) exposes a larger critical fraction. It
// returns a stack with
//
//	D0_i = baseD0 · (refLambdaUM/lambdaUM)^densityExp
//	cf_i = clamp(baseCF · sqrt(refSd/sd), 0, 1)
//
// The square-root coupling to s_d reflects that critical area tracks
// feature adjacency, which grows sublinearly as layout is compacted.
func DensityScaledStack(n int, baseD0, baseCF, lambdaUM, refLambdaUM, sd, refSd, densityExp float64, m Model) (Stack, error) {
	if lambdaUM <= 0 || refLambdaUM <= 0 {
		return Stack{}, fmt.Errorf("yield: feature sizes must be positive, got %v and %v", lambdaUM, refLambdaUM)
	}
	if sd <= 0 || refSd <= 0 {
		return Stack{}, fmt.Errorf("yield: s_d values must be positive, got %v and %v", sd, refSd)
	}
	d0 := baseD0 * math.Pow(refLambdaUM/lambdaUM, densityExp)
	cf := baseCF * math.Sqrt(refSd/sd)
	if cf > 1 {
		cf = 1
	}
	if cf < 0 {
		cf = 0
	}
	return UniformStack(n, d0, cf, m)
}
