package yield

import (
	"math"
	"testing"
)

func TestNegBinomialYieldE(t *testing.T) {
	m := NegBinomial{Alpha: 2}

	y, err := m.YieldE(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Pow(1.5, -2); math.Abs(y-want) > 1e-15 {
		t.Fatalf("YieldE(1) = %v, want %v", y, want)
	}

	for _, alpha := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := (NegBinomial{Alpha: alpha}).YieldE(1); err == nil {
			t.Errorf("YieldE accepted Alpha = %v", alpha)
		}
	}
	for _, lambda := range []float64{-1, math.NaN()} {
		if _, err := m.YieldE(lambda); err == nil {
			t.Errorf("YieldE accepted lambda = %v", lambda)
		}
	}
}

func TestNegBinomialYieldPanicsWhereYieldEErrors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Yield with Alpha = 0 did not panic")
		}
	}()
	_ = NegBinomial{}.Yield(1)
}
