package yield

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestYieldAtZeroIsOne(t *testing.T) {
	models := []Model{Poisson{}, Murphy{}, Seeds{}, NegBinomial{Alpha: 0.5}, NegBinomial{Alpha: 3}}
	for _, m := range models {
		if y := m.Yield(0); !almost(y, 1, 1e-12) {
			t.Errorf("%s.Yield(0) = %v, want 1", m.Name(), y)
		}
	}
}

func TestPoissonKnownValues(t *testing.T) {
	if y := (Poisson{}).Yield(1); !almost(y, 1/math.E, 1e-12) {
		t.Fatalf("Poisson(1) = %v, want 1/e", y)
	}
}

func TestMurphyClosedFormMatchesIntegral(t *testing.T) {
	for _, l := range []float64{0.1, 0.5, 1, 2, 5} {
		closed := (Murphy{}).Yield(l)
		integral, err := MurphyByIntegral(l)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(closed, integral, 1e-8) {
			t.Errorf("λ=%v: closed form %v vs integral %v", l, closed, integral)
		}
	}
}

func TestMurphyByIntegralEdgeCases(t *testing.T) {
	y, err := MurphyByIntegral(0)
	if err != nil || y != 1 {
		t.Fatalf("MurphyByIntegral(0) = %v, %v", y, err)
	}
	if _, err := MurphyByIntegral(-1); err == nil {
		t.Fatal("accepted negative lambda")
	}
}

func TestClassicalOrdering(t *testing.T) {
	// For all λ > 0: Poisson < Murphy < Seeds (Poisson is the most
	// pessimistic of the three because mixing always raises P(0)).
	for _, l := range []float64{0.1, 0.5, 1, 2, 4} {
		p := (Poisson{}).Yield(l)
		mu := (Murphy{}).Yield(l)
		s := (Seeds{}).Yield(l)
		if !(p < mu && mu < s) {
			t.Errorf("λ=%v: ordering violated: poisson %v murphy %v seeds %v", l, p, mu, s)
		}
	}
}

func TestNegBinomialLimits(t *testing.T) {
	// α → ∞ recovers Poisson; α = 1 is Seeds.
	for _, l := range []float64{0.3, 1, 3} {
		nb := NegBinomial{Alpha: 1e7}.Yield(l)
		if !almost(nb, (Poisson{}).Yield(l), 1e-6) {
			t.Errorf("λ=%v: NB(1e7) = %v, Poisson = %v", l, nb, (Poisson{}).Yield(l))
		}
		nb1 := NegBinomial{Alpha: 1}.Yield(l)
		if !almost(nb1, (Seeds{}).Yield(l), 1e-12) {
			t.Errorf("λ=%v: NB(1) = %v, Seeds = %v", l, nb1, (Seeds{}).Yield(l))
		}
	}
}

func TestNegBinomialClusteringHelps(t *testing.T) {
	// Stronger clustering (smaller α) concentrates defects on fewer die,
	// raising yield at fixed λ.
	for _, l := range []float64{0.5, 1, 2} {
		tight := NegBinomial{Alpha: 0.3}.Yield(l)
		loose := NegBinomial{Alpha: 5}.Yield(l)
		if tight <= loose {
			t.Errorf("λ=%v: clustered yield %v not above dispersed %v", l, tight, loose)
		}
	}
}

func TestNegBinomialPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NegBinomial with α=0 did not panic")
		}
	}()
	NegBinomial{}.Yield(1)
}

func TestMixedYieldUniform(t *testing.T) {
	// Uniform mixing density on [0, 2λ] gives Y = (1−e^{−2λ})/(2λ).
	l := 1.5
	got, err := MixedYield(func(x float64) float64 { return 1 }, 0, 2*l)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - math.Exp(-2*l)) / (2 * l)
	if !almost(got, want, 1e-9) {
		t.Fatalf("uniform mixed yield = %v, want %v", got, want)
	}
}

func TestMixedYieldValidation(t *testing.T) {
	if _, err := MixedYield(func(x float64) float64 { return 1 }, -1, 1); err == nil {
		t.Fatal("accepted negative support")
	}
	if _, err := MixedYield(func(x float64) float64 { return 0 }, 0, 1); err == nil {
		t.Fatal("accepted zero density")
	}
}

func TestLambda(t *testing.T) {
	l, err := Lambda(0.5, 2)
	if err != nil || l != 1 {
		t.Fatalf("Lambda(0.5, 2) = %v, %v", l, err)
	}
	if _, err := Lambda(-1, 2); err == nil {
		t.Fatal("accepted negative density")
	}
	if _, err := Lambda(1, -2); err == nil {
		t.Fatal("accepted negative area")
	}
}

func TestInvertLambda(t *testing.T) {
	for _, m := range []Model{Poisson{}, Murphy{}, Seeds{}, NegBinomial{Alpha: 2}} {
		target := 0.8
		l, err := InvertLambda(m, target, 100)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !almost(m.Yield(l), target, 1e-9) {
			t.Errorf("%s: Yield(%v) = %v, want %v", m.Name(), l, m.Yield(l), target)
		}
	}
	if l, err := InvertLambda(Poisson{}, 1, 100); err != nil || l != 0 {
		t.Fatalf("InvertLambda(target=1) = %v, %v", l, err)
	}
	if _, err := InvertLambda(Poisson{}, 0, 100); err == nil {
		t.Fatal("accepted target 0")
	}
	if _, err := InvertLambda(Poisson{}, 1e-30, 1); err == nil {
		t.Fatal("accepted unreachable target")
	}
}

// Property: every model is monotone decreasing in λ and bounded in (0, 1].
func TestModelMonotoneProperty(t *testing.T) {
	models := []Model{Poisson{}, Murphy{}, Seeds{}, NegBinomial{Alpha: 0.5}, NegBinomial{Alpha: 4}}
	f := func(a, b uint32) bool {
		l1 := float64(a%100000) / 1000 // [0, 100)
		dl := float64(b%10000)/1000 + 1e-6
		for _, m := range models {
			y1, y2 := m.Yield(l1), m.Yield(l1+dl)
			if !(y1 > 0 && y1 <= 1 && y2 > 0 && y2 <= 1) {
				return false
			}
			if y2 >= y1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
