package yield

import (
	"math"
	"testing"
)

func TestUniformStackLambda(t *testing.T) {
	s, err := UniformStack(4, 0.5, 0.6, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.TotalLambda(2)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * 0.5 * 0.6 * 2
	if !almost(l, want, 1e-12) {
		t.Fatalf("total lambda = %v, want %v", l, want)
	}
}

func TestStackPoissonProductEqualsSum(t *testing.T) {
	// With Poisson per layer, the product over layers equals the model of
	// the summed lambda.
	s, err := UniformStack(6, 0.3, 0.5, Poisson{})
	if err != nil {
		t.Fatal(err)
	}
	y, err := s.Yield(1.5)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := s.TotalLambda(1.5)
	if !almost(y, math.Exp(-l), 1e-12) {
		t.Fatalf("stack yield = %v, want %v", y, math.Exp(-l))
	}
}

func TestStackSystematicMultiplier(t *testing.T) {
	s, err := UniformStack(2, 0.3, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Yield(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Systematic = 0.9
	withSys, err := s.Yield(1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(withSys, 0.9*base, 1e-12) {
		t.Fatalf("systematic yield = %v, want %v", withSys, 0.9*base)
	}
}

func TestStackDefaultsAndValidation(t *testing.T) {
	s := Stack{Layers: []Layer{{Name: "m1", DefectDensity: 0.5, CriticalFraction: 0.4}}}
	if _, err := s.Yield(1); err != nil {
		t.Fatalf("zero-value defaults rejected: %v", err)
	}
	if err := (Stack{}).Validate(); err == nil {
		t.Fatal("accepted empty stack")
	}
	bad := Stack{Layers: []Layer{{DefectDensity: -1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative defect density")
	}
	bad = Stack{Layers: []Layer{{CriticalFraction: 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted critical fraction > 1")
	}
	bad = Stack{Layers: []Layer{{DefectDensity: 1, CriticalFraction: 0.5}}, Systematic: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted systematic yield > 1")
	}
	if _, err := s.Yield(-1); err == nil {
		t.Fatal("accepted negative area")
	}
	if _, err := UniformStack(0, 1, 1, nil); err == nil {
		t.Fatal("accepted zero layers")
	}
}

func TestBiggerDieYieldsWorse(t *testing.T) {
	s, err := UniformStack(5, 0.4, 0.5, NegBinomial{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Yield(0.5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Yield(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if big >= small {
		t.Fatalf("2 cm² yield %v not below 0.5 cm² yield %v", big, small)
	}
}

func TestDensityScaledStack(t *testing.T) {
	// Shrinking the node (λ: 0.25 → 0.13) raises defect density; making
	// the design denser (s_d: 300 → 150) raises the critical fraction.
	// Both must reduce yield vs the reference.
	ref, err := DensityScaledStack(5, 0.4, 0.5, 0.25, 0.25, 300, 300, 1.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := DensityScaledStack(5, 0.4, 0.5, 0.13, 0.25, 300, 300, 1.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	denser, err := DensityScaledStack(5, 0.4, 0.5, 0.25, 0.25, 150, 300, 1.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	yRef, _ := ref.Yield(1)
	yShrunk, _ := shrunk.Yield(1)
	yDenser, _ := denser.Yield(1)
	if yShrunk >= yRef {
		t.Fatalf("node shrink did not reduce yield: %v vs %v", yShrunk, yRef)
	}
	if yDenser >= yRef {
		t.Fatalf("denser design did not reduce yield: %v vs %v", yDenser, yRef)
	}
}

func TestDensityScaledStackClampsCF(t *testing.T) {
	// Extreme density must clamp the critical fraction at 1, not exceed it.
	s, err := DensityScaledStack(3, 0.4, 0.9, 0.25, 0.25, 3, 300, 1.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range s.Layers {
		if l.CriticalFraction > 1 {
			t.Fatalf("critical fraction %v exceeds 1", l.CriticalFraction)
		}
	}
}

func TestDensityScaledStackValidation(t *testing.T) {
	if _, err := DensityScaledStack(3, 0.4, 0.5, 0, 0.25, 300, 300, 1.5, nil); err == nil {
		t.Fatal("accepted zero feature size")
	}
	if _, err := DensityScaledStack(3, 0.4, 0.5, 0.25, 0.25, 0, 300, 1.5, nil); err == nil {
		t.Fatal("accepted zero s_d")
	}
}

func TestLearningCurveMonotone(t *testing.T) {
	c := DefaultLearningCurve()
	prev := math.Inf(1)
	for m := 0.0; m <= 48; m += 3 {
		d0, err := c.DefectDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		if d0 >= prev {
			t.Fatalf("D0 not strictly decreasing at %v months", m)
		}
		if d0 < c.Floor {
			t.Fatalf("D0 %v below floor %v", d0, c.Floor)
		}
		prev = d0
	}
	// Initial value at t = 0 and floor at t → ∞.
	d0, _ := c.DefectDensity(0)
	if !almost(d0, c.Initial, 1e-12) {
		t.Fatalf("D0(0) = %v, want %v", d0, c.Initial)
	}
	d0, _ = c.DefectDensity(1000)
	if !almost(d0, c.Floor, 1e-6) {
		t.Fatalf("D0(∞) = %v, want %v", d0, c.Floor)
	}
}

func TestLearningCurveNegativeTimeClamped(t *testing.T) {
	c := DefaultLearningCurve()
	a, _ := c.DefectDensity(-5)
	b, _ := c.DefectDensity(0)
	if a != b {
		t.Fatalf("negative time not clamped: %v vs %v", a, b)
	}
}

func TestLearningCurveValidation(t *testing.T) {
	bad := []LearningCurve{
		{Initial: -1, Floor: 0, Tau: 9},
		{Initial: 1, Floor: 2, Tau: 9},
		{Initial: 1, Floor: 0.1, Tau: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid curve %+v accepted", i, c)
		}
	}
}

func TestYieldAtImprovesWithAge(t *testing.T) {
	c := DefaultLearningCurve()
	early, err := c.YieldAt(1, 1.0, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	late, err := c.YieldAt(24, 1.0, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if late <= early {
		t.Fatalf("yield did not improve with process age: %v vs %v", late, early)
	}
}

func TestMonthsToYield(t *testing.T) {
	c := DefaultLearningCurve()
	months, err := c.MonthsToYield(0.7, 1.0, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.YieldAt(months, 1.0, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(y, 0.7, 1e-6) {
		t.Fatalf("yield at %v months = %v, want 0.7", months, y)
	}
	// Already above target at bring-up → 0 months.
	m0, err := c.MonthsToYield(0.01, 0.1, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m0 != 0 {
		t.Fatalf("trivial target took %v months, want 0", m0)
	}
	// Unreachable target.
	if _, err := c.MonthsToYield(0.999999, 10, 1, nil); err == nil {
		t.Fatal("accepted unreachable target")
	}
}
