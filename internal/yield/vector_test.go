package yield

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// The vectorized simulators' single contract: bit-identical to the
// scalar loops they replaced. Each reference below is a faithful port of
// the pre-vectorization implementation, and the tests demand exact
// equality — never statistical closeness.

// scalarWaferMap is the pre-vectorization SimulateWaferMap hot loop: no
// site-factor table, no hoisted per-wafer product, exp recomputed inside
// every Poisson draw.
func scalarWaferMap(c WaferMapConfig) *WaferMap {
	cols := int(2 * c.UsableRadiusMM / c.DieWMM)
	rows := int(2 * c.UsableRadiusMM / c.DieHMM)
	wm := &WaferMap{Cols: cols, Rows: rows, Wafers: c.Wafers}
	wm.Good = make([][]int, rows)
	inside := make([][]bool, rows)
	r2 := c.UsableRadiusMM * c.UsableRadiusMM
	originX := -float64(cols) / 2 * c.DieWMM
	originY := -float64(rows) / 2 * c.DieHMM
	for y := 0; y < rows; y++ {
		wm.Good[y] = make([]int, cols)
		inside[y] = make([]bool, cols)
		for x := 0; x < cols; x++ {
			x0 := originX + float64(x)*c.DieWMM
			y0 := originY + float64(y)*c.DieHMM
			x1, y1 := x0+c.DieWMM, y0+c.DieHMM
			ok := x0*x0+y0*y0 <= r2 && x1*x1+y0*y0 <= r2 &&
				x0*x0+y1*y1 <= r2 && x1*x1+y1*y1 <= r2
			inside[y][x] = ok
			if !ok {
				wm.Good[y][x] = -1
			}
		}
	}
	scales := make([]float64, c.Wafers)
	wr := stats.NewRNG(stats.StreamSeed(c.Seed))
	for w := range scales {
		scales[w] = 1.0
		if c.ClusterAlpha > 0 {
			scales[w] = wr.Gamma(c.ClusterAlpha, 1/c.ClusterAlpha)
		}
	}
	edge := c.EdgeFactor
	if edge == 0 {
		edge = 1
	}
	for y := 0; y < rows; y++ {
		for w := 0; w < c.Wafers; w++ {
			r := stats.Seeded(stats.StreamSeed(c.Seed, uint64(w), uint64(y)))
			for x := 0; x < cols; x++ {
				if !inside[y][x] {
					continue
				}
				cx := originX + (float64(x)+0.5)*c.DieWMM
				cy := originY + (float64(y)+0.5)*c.DieHMM
				rho := math.Sqrt(cx*cx+cy*cy) / c.UsableRadiusMM
				rate := c.Lambda * scales[w] * (1 + (edge-1)*rho)
				if rate < 0 {
					rate = 0
				}
				if r.Poisson(rate) == 0 {
					wm.Good[y][x]++
				}
			}
		}
	}
	return wm
}

func sameMaps(t *testing.T, tag string, got, want *WaferMap) {
	t.Helper()
	if got.Cols != want.Cols || got.Rows != want.Rows || got.Wafers != want.Wafers {
		t.Fatalf("%s: shape (%d,%d,%d) vs (%d,%d,%d)", tag,
			got.Cols, got.Rows, got.Wafers, want.Cols, want.Rows, want.Wafers)
	}
	for y := range want.Good {
		for x := range want.Good[y] {
			if got.Good[y][x] != want.Good[y][x] {
				t.Fatalf("%s: Good[%d][%d] = %d, want %d", tag, y, x, got.Good[y][x], want.Good[y][x])
			}
		}
	}
}

func TestSimulateWaferMapMatchesScalarReference(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*WaferMapConfig)
	}{
		{"flat-unclustered", func(c *WaferMapConfig) {}},
		{"edge-gradient", func(c *WaferMapConfig) { c.EdgeFactor = 3 }},
		{"clustered", func(c *WaferMapConfig) { c.ClusterAlpha = 0.7; c.EdgeFactor = 2.5 }},
		{"zero-lambda", func(c *WaferMapConfig) { c.Lambda = 0 }},
		{"hot-center", func(c *WaferMapConfig) { c.EdgeFactor = 0.2 }},
	}
	for _, tc := range cases {
		c := mapConfig()
		tc.mod(&c)
		want := scalarWaferMap(c)
		got, err := SimulateWaferMap(c)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sameMaps(t, tc.name, got, want)
	}
}

// scalarSimulate is the pre-vectorization Simulate hot loop: per-die
// branch re-tests, no hoisted rate, exp recomputed per Poisson draw.
func scalarSimulate(c SimConfig) (good, total int, lambdaSum float64) {
	for w := 0; w < c.Wafers; w++ {
		r := stats.NewRNG(stats.StreamSeed(c.Seed, uint64(w)))
		waferScale := 1.0
		if c.ClusterAlpha > 0 && c.WaferToWafer {
			waferScale = r.Gamma(c.ClusterAlpha, 1/c.ClusterAlpha)
		}
		// Per-wafer accumulator folded in wafer order, exactly like the
		// engine's tally fold — the summation order is part of the
		// bit-identity contract.
		var waferSum float64
		for d := 0; d < c.DiePerWafer; d++ {
			rate := c.Lambda * waferScale
			if c.ClusterAlpha > 0 && !c.WaferToWafer {
				rate = c.Lambda * r.Gamma(c.ClusterAlpha, 1/c.ClusterAlpha)
			}
			if c.SpatialRadius > 0 {
				rho2 := r.Float64()
				rate *= 1 + c.SpatialRadius*(2*rho2-1)
			}
			if rate < 0 {
				rate = 0
			}
			waferSum += rate
			if r.Poisson(rate) == 0 {
				good++
			}
		}
		lambdaSum += waferSum
		total += c.DiePerWafer
	}
	return good, total, lambdaSum
}

func TestSimulateMatchesScalarReference(t *testing.T) {
	base := SimConfig{DiePerWafer: 200, Wafers: 30, Lambda: 0.8, Seed: 23}
	cases := []struct {
		name string
		mod  func(*SimConfig)
	}{
		{"plain-poisson", func(c *SimConfig) {}},
		{"wafer-cluster", func(c *SimConfig) { c.ClusterAlpha = 0.6; c.WaferToWafer = true }},
		{"die-cluster", func(c *SimConfig) { c.ClusterAlpha = 0.6 }},
		{"spatial", func(c *SimConfig) { c.SpatialRadius = 0.4 }},
		{"everything", func(c *SimConfig) { c.ClusterAlpha = 1.1; c.WaferToWafer = true; c.SpatialRadius = 0.3 }},
	}
	for _, tc := range cases {
		c := base
		tc.mod(&c)
		good, total, lambdaSum := scalarSimulate(c)
		res, err := Simulate(c)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.GoodDie != good || res.TotalDie != total {
			t.Fatalf("%s: good/total = %d/%d, scalar %d/%d", tc.name, res.GoodDie, res.TotalDie, good, total)
		}
		wantMean := lambdaSum / float64(total)
		if math.Float64bits(res.MeanLambda) != math.Float64bits(wantMean) {
			t.Fatalf("%s: mean lambda %x, scalar %x", tc.name, res.MeanLambda, wantMean)
		}
	}
}

func TestSimulateWaferMapDeterministicAcrossWorkersAndTunerRegimes(t *testing.T) {
	c := mapConfig()
	c.ClusterAlpha = 0.7
	c.EdgeFactor = 3
	c.Workers = 1
	waferMapTuner.Reset()
	ref, err := SimulateWaferMap(c)
	if err != nil {
		t.Fatal(err)
	}
	defer waferMapTuner.Reset()
	regimes := []struct {
		name  string
		apply func()
	}{
		{"cold", func() { waferMapTuner.Reset() }},
		{"heavy", func() { waferMapTuner.Reset(); waferMapTuner.Observe(1, 10e-3) }},
		{"light", func() { waferMapTuner.Reset(); waferMapTuner.Observe(100000, 1e-3) }},
	}
	for _, rg := range regimes {
		for _, workers := range []int{1, 2, 4} {
			rg.apply()
			c.Workers = workers
			got, err := SimulateWaferMap(c)
			if err != nil {
				t.Fatal(err)
			}
			sameMaps(t, rg.name, got, ref)
		}
	}
}
