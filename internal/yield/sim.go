package yield

import (
	"context"
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// SimConfig parameterizes the Monte Carlo defect simulator. The simulator
// places fatal defects on virtual wafers and counts surviving die,
// providing a measured yield to validate the analytic models against —
// including clustered (negative binomial) regimes where intuition fails.
type SimConfig struct {
	DiePerWafer   int     // die sites per wafer
	Wafers        int     // wafers to simulate
	Lambda        float64 // mean fatal defects per die (D0 · A_crit)
	ClusterAlpha  float64 // 0 = unclustered (pure Poisson); else gamma-mix α
	WaferToWafer  bool    // cluster at wafer granularity (true) or die (false)
	Seed          uint64  // RNG seed; same seed → identical result
	SpatialRadius float64 // 0 = none; else radial D0 gradient strength in [0,1)
	Workers       int     // simulation goroutines; <= 0 uses parallel.DefaultWorkers
}

// Validate reports the first invalid field of c, or nil.
func (c SimConfig) Validate() error {
	if c.DiePerWafer <= 0 {
		return fmt.Errorf("yield: sim: die per wafer must be positive, got %d", c.DiePerWafer)
	}
	if c.Wafers <= 0 {
		return fmt.Errorf("yield: sim: wafer count must be positive, got %d", c.Wafers)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("yield: sim: lambda must be non-negative, got %v", c.Lambda)
	}
	if c.ClusterAlpha < 0 {
		return fmt.Errorf("yield: sim: cluster alpha must be non-negative, got %v", c.ClusterAlpha)
	}
	if c.SpatialRadius < 0 || c.SpatialRadius >= 1 {
		return fmt.Errorf("yield: sim: spatial gradient must be in [0,1), got %v", c.SpatialRadius)
	}
	return nil
}

// SimResult reports a Monte Carlo yield measurement.
type SimResult struct {
	Yield      float64 // fraction of functional die
	StdErr     float64 // binomial-ish standard error from wafer-level spread
	GoodDie    int
	TotalDie   int
	MeanLambda float64 // realized mean defect count per die
}

// Simulate runs the Monte Carlo experiment. Each die's fatal defect count
// is Poisson with a rate that may be modulated by gamma-distributed
// clustering (per wafer or per die) and a radial wafer-position gradient;
// a die with zero fatal defects is good. The wafer-level yields provide
// the standard error.
//
// Wafers are simulated in parallel, each from its own RNG sub-stream
// keyed by stats.StreamSeed, and the per-wafer tallies are folded in
// wafer order, so the result depends only on the config — never the
// worker count.
func Simulate(c SimConfig) (SimResult, error) {
	if err := c.Validate(); err != nil {
		return SimResult{}, err
	}
	type waferTally struct {
		good      int
		lambdaSum float64
	}
	// The per-die branch structure is invariant over the whole run: hoist
	// it once instead of re-testing three config fields per die.
	perDieCluster := c.ClusterAlpha > 0 && !c.WaferToWafer
	spatial := c.SpatialRadius > 0
	tallies, err := parallel.Map(context.Background(), c.Wafers, c.Workers, func(w int) (waferTally, error) {
		r := stats.NewRNG(stats.StreamSeed(c.Seed, uint64(w)))
		waferScale := 1.0
		if c.ClusterAlpha > 0 && c.WaferToWafer {
			waferScale = r.Gamma(c.ClusterAlpha, 1/c.ClusterAlpha)
		}
		var t waferTally
		if !perDieCluster && !spatial {
			// Constant rate across the wafer: the Poisson exp hoists out of
			// the die loop (PoissonL keeps the draw sequence bit-identical).
			// lambdaSum still accumulates additively so the realized mean is
			// byte-identical to the scalar fold.
			rate := c.Lambda * waferScale
			if rate < 0 {
				rate = 0
			}
			expRate := math.Exp(-rate)
			for d := 0; d < c.DiePerWafer; d++ {
				t.lambdaSum += rate
				if r.PoissonL(rate, expRate) == 0 {
					t.good++
				}
			}
			return t, nil
		}
		for d := 0; d < c.DiePerWafer; d++ {
			rate := c.Lambda * waferScale
			if perDieCluster {
				rate = c.Lambda * r.Gamma(c.ClusterAlpha, 1/c.ClusterAlpha)
			}
			if spatial {
				// Die position: for a uniform position on the disk the
				// squared radial fraction ρ² is uniform on [0,1], so a
				// factor linear in ρ² grows toward the edge while keeping
				// the mean rate exactly λ.
				rho2 := r.Float64()
				rate *= 1 + c.SpatialRadius*(2*rho2-1)
			}
			if rate < 0 {
				rate = 0
			}
			t.lambdaSum += rate
			if r.Poisson(rate) == 0 {
				t.good++
			}
		}
		return t, nil
	})
	if err != nil {
		return SimResult{}, err
	}
	waferYields := make([]float64, 0, c.Wafers)
	var good, total int
	var lambdaSum float64
	for _, t := range tallies {
		good += t.good
		total += c.DiePerWafer
		lambdaSum += t.lambdaSum
		waferYields = append(waferYields, float64(t.good)/float64(c.DiePerWafer))
	}
	res := SimResult{
		Yield:      float64(good) / float64(total),
		GoodDie:    good,
		TotalDie:   total,
		MeanLambda: lambdaSum / float64(total),
	}
	if len(waferYields) > 1 {
		_, se, err := stats.MeanStderr(waferYields)
		if err != nil {
			return SimResult{}, err
		}
		res.StdErr = se
	}
	return res, nil
}

// CompareModels runs the simulator at each lambda and returns, for each
// analytic model, the maximum absolute deviation between the model and the
// measurement. Experiment X-2 prints these rows; tests assert that the
// matching model (Poisson for unclustered, NegBinomial(α) for clustered)
// tracks the simulation within sampling error.
func CompareModels(lambdas []float64, models []Model, base SimConfig) (map[string][]float64, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("yield: CompareModels requires at least one lambda")
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("yield: CompareModels requires at least one model")
	}
	out := make(map[string][]float64, len(models)+1)
	measured := make([]float64, len(lambdas))
	for i, l := range lambdas {
		cfg := base
		cfg.Lambda = l
		cfg.Seed = base.Seed + uint64(i)*1000003
		res, err := Simulate(cfg)
		if err != nil {
			return nil, err
		}
		measured[i] = res.Yield
	}
	out["measured"] = measured
	for _, m := range models {
		ys := make([]float64, len(lambdas))
		for i, l := range lambdas {
			ys[i] = m.Yield(l)
		}
		out[m.Name()] = ys
	}
	return out, nil
}
