package yield

import (
	"math"
	"testing"
)

func TestRedundancyZeroSparesIsPoisson(t *testing.T) {
	for _, l := range []float64{0.1, 1, 3} {
		y, err := (Redundancy{}).Yield(l)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(y, (Poisson{}).Yield(l), 1e-12) {
			t.Fatalf("λ=%v: zero-spare yield %v != Poisson %v", l, y, (Poisson{}).Yield(l))
		}
	}
}

func TestRedundancyKnownValue(t *testing.T) {
	// λ=2, 2 spares: e^{-2}(1 + 2 + 2) = 5e^{-2}.
	y, err := (Redundancy{Spares: 2}).Yield(2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(y, 5*math.Exp(-2), 1e-12) {
		t.Fatalf("yield = %v, want %v", y, 5*math.Exp(-2))
	}
}

func TestRedundancyMonotoneInSpares(t *testing.T) {
	prev := 0.0
	for s := 0; s <= 10; s++ {
		y, err := (Redundancy{Spares: s}).Yield(3)
		if err != nil {
			t.Fatal(err)
		}
		if y <= prev {
			t.Fatalf("yield not increasing at %d spares", s)
		}
		if y > 1 {
			t.Fatalf("yield %v above 1", y)
		}
		prev = y
	}
	// Many spares → near certainty.
	y, _ := (Redundancy{Spares: 40}).Yield(3)
	if y < 0.999999 {
		t.Fatalf("40 spares at λ=3 yield %v, want ≈1", y)
	}
}

func TestRedundancyEdgeCases(t *testing.T) {
	y, err := (Redundancy{Spares: 5}).Yield(0)
	if err != nil || y != 1 {
		t.Fatalf("λ=0 yield = %v, %v", y, err)
	}
	if _, err := (Redundancy{Spares: -1}).Yield(1); err == nil {
		t.Fatal("accepted negative spares")
	}
	if _, err := (Redundancy{}).Yield(-1); err == nil {
		t.Fatal("accepted negative lambda")
	}
}

func TestRedundancyNB(t *testing.T) {
	// Zero spares recovers the NB model.
	for _, l := range []float64{0.5, 2} {
		y, err := (Redundancy{}).YieldNB(l, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(y, NegBinomial{Alpha: 1.5}.Yield(l), 1e-12) {
			t.Fatalf("λ=%v: NB zero-spare %v != model %v", l, y, NegBinomial{Alpha: 1.5}.Yield(l))
		}
	}
	// Monotone in spares and bounded.
	prev := 0.0
	for s := 0; s <= 8; s++ {
		y, err := (Redundancy{Spares: s}).YieldNB(2, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if y <= prev || y > 1 {
			t.Fatalf("NB repair yield out of order at %d spares: %v", s, y)
		}
		prev = y
	}
	if _, err := (Redundancy{}).YieldNB(1, 0); err == nil {
		t.Fatal("accepted zero alpha")
	}
	if _, err := (Redundancy{}).YieldNB(-1, 1); err == nil {
		t.Fatal("accepted negative lambda")
	}
	y, err := (Redundancy{Spares: 3}).YieldNB(0, 1)
	if err != nil || y != 1 {
		t.Fatalf("λ=0 NB yield = %v, %v", y, err)
	}
}

func TestSparesForYield(t *testing.T) {
	s, err := SparesForYield(3, 0.9, 100)
	if err != nil {
		t.Fatal(err)
	}
	yAt, _ := (Redundancy{Spares: s}).Yield(3)
	if yAt < 0.9 {
		t.Fatalf("%d spares reach only %v", s, yAt)
	}
	if s > 0 {
		yBelow, _ := (Redundancy{Spares: s - 1}).Yield(3)
		if yBelow >= 0.9 {
			t.Fatalf("%d spares not minimal", s)
		}
	}
	if _, err := SparesForYield(3, 1.5, 10); err == nil {
		t.Fatal("accepted target > 1")
	}
	if _, err := SparesForYield(50, 0.999, 3); err == nil {
		t.Fatal("accepted unreachable target")
	}
	if _, err := SparesForYield(-1, 0.9, 10); err == nil {
		t.Fatal("accepted negative lambda")
	}
}

func TestRepairEconomics(t *testing.T) {
	// Dense fabric at λ=3 (raw Poisson yield ≈ 5%): 6 spares at 5% area
	// overhead must pay decisively.
	mult, err := RepairEconomics(3, 6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if mult >= 1 {
		t.Fatalf("repair multiplier %v, want < 1 (repair pays)", mult)
	}
	// Nearly defect-free structure: carrying spare area is pure waste.
	mult, err = RepairEconomics(0.01, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if mult <= 1 {
		t.Fatalf("repair multiplier %v at λ=0.01, want > 1 (overhead wasted)", mult)
	}
	if _, err := RepairEconomics(1, 1, -0.1); err == nil {
		t.Fatal("accepted negative spare fraction")
	}
	if _, err := RepairEconomics(-1, 1, 0.1); err == nil {
		t.Fatal("accepted negative lambda")
	}
}
