package yield

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// DefectSizeDist is the standard spot-defect size distribution (Stapper
// form): density rising linearly up to the peak size X0, then falling as
// x^{−P} above it,
//
//	f(x) ∝ x        for 0 < x ≤ X0
//	f(x) ∝ X0^{P+1} / x^P   for x > X0
//
// with P > 1 (canonically P = 3). Sizes are in the same length unit the
// caller uses for critical-area curves (this repository uses µm).
type DefectSizeDist struct {
	X0 float64 // peak defect size
	P  float64 // power-law exponent above the peak, > 1
}

// DefaultDefectSizeDist returns the canonical 1/x³ distribution with its
// peak at half the feature size — defects near the resolution limit
// dominate.
func DefaultDefectSizeDist(lambdaUM float64) DefectSizeDist {
	return DefectSizeDist{X0: lambdaUM / 2, P: 3}
}

// Validate reports the first invalid field of d, or nil.
func (d DefectSizeDist) Validate() error {
	if d.X0 <= 0 {
		return fmt.Errorf("yield: defect size peak must be positive, got %v", d.X0)
	}
	if d.P <= 1 {
		return fmt.Errorf("yield: defect size exponent must exceed 1, got %v", d.P)
	}
	return nil
}

// norm returns the normalization constant k so that ∫₀^∞ f = 1 with
// f(x) = k·x on (0, X0] and f(x) = k·X0^{P+1}/x^P beyond.
func (d DefectSizeDist) norm() float64 {
	// ∫₀^{X0} x dx = X0²/2; ∫_{X0}^∞ X0^{P+1} x^{−P} dx = X0²/(P−1).
	return 1 / (d.X0*d.X0/2 + d.X0*d.X0/(d.P-1))
}

// Density evaluates the normalized size density at x (0 for x <= 0).
func (d DefectSizeDist) Density(x float64) float64 {
	if x <= 0 {
		return 0
	}
	k := d.norm()
	if x <= d.X0 {
		return k * x
	}
	return k * math.Pow(d.X0, d.P+1) / math.Pow(x, d.P)
}

// Mean returns the mean defect size, finite only for P > 2.
func (d DefectSizeDist) Mean() (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if d.P <= 2 {
		return 0, fmt.Errorf("yield: mean defect size diverges for P = %v ≤ 2", d.P)
	}
	k := d.norm()
	// ∫₀^{X0} k·x² dx + ∫_{X0}^∞ k·X0^{P+1}·x^{1−P} dx
	return k*d.X0*d.X0*d.X0/3 + k*math.Pow(d.X0, 3)/(d.P-2), nil
}

// Sample draws a defect size from the distribution by inverse-transform
// sampling.
func (d DefectSizeDist) Sample(r *stats.RNG) float64 {
	k := d.norm()
	// Mass below the peak.
	pBelow := k * d.X0 * d.X0 / 2
	u := r.Float64()
	if u < pBelow {
		// CDF below peak: k·x²/2 = u → x = sqrt(2u/k).
		return math.Sqrt(2 * u / k)
	}
	// Above peak: CDF = pBelow + k·X0^{P+1}/(P−1)·(X0^{1−P} − x^{1−P}).
	rest := u - pBelow
	c := k * math.Pow(d.X0, d.P+1) / (d.P - 1)
	inner := math.Pow(d.X0, 1-d.P) - rest/c
	return math.Pow(inner, 1/(1-d.P))
}

// AverageCriticalArea integrates a size-dependent critical-area curve
// A_c(x) against the size distribution: Ā = ∫ A_c(x)·f(x) dx over
// [0, xMax]. The layout package supplies A_c for generated layouts; tests
// supply closed-form curves. xMax bounds the integration (beyond a few
// hundred X0 the tail contributes nothing for P ≥ 2).
//
// Layout-derived curves are piecewise linear with kinks at every distinct
// spacing/width, so the quadrature tolerance is scaled to the integrand's
// magnitude rather than fixed absolutely.
func AverageCriticalArea(d DefectSizeDist, ac func(x float64) float64, xMax float64) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if xMax <= 0 {
		return 0, fmt.Errorf("yield: xMax must be positive, got %v", xMax)
	}
	f := func(x float64) float64 { return ac(x) * d.Density(x) }
	// The size density is sharply peaked at X0 with a 1/x^P tail: a single
	// adaptive pass over [0, xMax] can sample straight past the peak and
	// accept a near-zero estimate. Integrate piecewise on geometrically
	// growing panels anchored at the peak, each with a tolerance scaled to
	// the panel's own magnitude.
	var total float64
	edges := []float64{0, d.X0}
	for hi := 4 * d.X0; hi < xMax; hi *= 4 {
		edges = append(edges, hi)
	}
	edges = append(edges, xMax)
	for i := 0; i+1 < len(edges); i++ {
		lo, hi := edges[i], edges[i+1]
		if hi <= lo {
			continue
		}
		mid := 0.5 * (lo + hi)
		scale := math.Max(math.Abs(f(mid)), math.Max(math.Abs(f(lo+1e-9)), math.Abs(f(hi))))
		tol := 1e-9 * scale * (hi - lo)
		if tol < 1e-13 {
			tol = 1e-13
		}
		v, err := stats.Integrate(f, lo, hi, tol)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}
