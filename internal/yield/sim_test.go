package yield

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestDefectSizeDistNormalized(t *testing.T) {
	d := DefaultDefectSizeDist(0.25)
	integral, err := stats.Integrate(d.Density, 0, d.X0*2000, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Fatalf("size density integrates to %v, want 1", integral)
	}
}

func TestDefectSizeDistShape(t *testing.T) {
	d := DefectSizeDist{X0: 1, P: 3}
	// Rising below the peak, falling above.
	if !(d.Density(0.2) < d.Density(0.8)) {
		t.Fatal("density not rising below peak")
	}
	if !(d.Density(2) > d.Density(4)) {
		t.Fatal("density not falling above peak")
	}
	// 1/x³ decade decay above peak: f(10)/f(100) = 1000.
	ratio := d.Density(10) / d.Density(100)
	if math.Abs(ratio-1000) > 1 {
		t.Fatalf("power-law decade ratio = %v, want 1000", ratio)
	}
	if d.Density(0) != 0 || d.Density(-1) != 0 {
		t.Fatal("density not zero for non-positive sizes")
	}
}

func TestDefectSizeDistMean(t *testing.T) {
	d := DefectSizeDist{X0: 1, P: 3}
	mean, err := d.Mean()
	if err != nil {
		t.Fatal(err)
	}
	// k = 1/(1/2 + 1/2) = 1; mean = 1/3 + 1/1 = 4/3.
	if math.Abs(mean-4.0/3.0) > 1e-12 {
		t.Fatalf("mean = %v, want 4/3", mean)
	}
	// Diverging mean for P = 2.
	if _, err := (DefectSizeDist{X0: 1, P: 2}).Mean(); err == nil {
		t.Fatal("accepted diverging mean")
	}
}

func TestDefectSizeSampleMatchesMean(t *testing.T) {
	d := DefectSizeDist{X0: 1, P: 3.5}
	want, err := d.Mean()
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(777)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		if x <= 0 {
			t.Fatalf("sampled non-positive size %v", x)
		}
		sum += x
	}
	got := sum / n
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("sample mean = %v, analytic %v", got, want)
	}
}

func TestAverageCriticalArea(t *testing.T) {
	// With A_c(x) = 1 everywhere the average is 1 (density normalized).
	d := DefectSizeDist{X0: 1, P: 3}
	avg, err := AverageCriticalArea(d, func(x float64) float64 { return 1 }, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-1) > 1e-3 {
		t.Fatalf("constant critical area averaged to %v, want 1", avg)
	}
	if _, err := AverageCriticalArea(d, func(x float64) float64 { return 1 }, 0); err == nil {
		t.Fatal("accepted zero xMax")
	}
	bad := DefectSizeDist{X0: 0, P: 3}
	if _, err := AverageCriticalArea(bad, func(x float64) float64 { return 1 }, 10); err == nil {
		t.Fatal("accepted invalid distribution")
	}
}

func TestSimulateMatchesPoisson(t *testing.T) {
	for _, l := range []float64{0.2, 0.7, 1.5} {
		res, err := Simulate(SimConfig{DiePerWafer: 400, Wafers: 200, Lambda: l, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := (Poisson{}).Yield(l)
		tol := 4*res.StdErr + 0.005
		if math.Abs(res.Yield-want) > tol {
			t.Errorf("λ=%v: measured %v ± %v, Poisson %v", l, res.Yield, res.StdErr, want)
		}
		if math.Abs(res.MeanLambda-l) > 0.01*l {
			t.Errorf("λ=%v: realized mean %v", l, res.MeanLambda)
		}
	}
}

func TestSimulateMatchesNegBinomial(t *testing.T) {
	// Per-die gamma mixing reproduces the NB yield exactly in expectation.
	alpha := 0.8
	for _, l := range []float64{0.5, 1.5} {
		res, err := Simulate(SimConfig{
			DiePerWafer: 400, Wafers: 300, Lambda: l,
			ClusterAlpha: alpha, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := NegBinomial{Alpha: alpha}.Yield(l)
		if math.Abs(res.Yield-want) > 4*res.StdErr+0.01 {
			t.Errorf("λ=%v: measured %v ± %v, NB(%v) %v", l, res.Yield, res.StdErr, alpha, want)
		}
		// And clustering must beat the Poisson prediction.
		if res.Yield <= (Poisson{}).Yield(l) {
			t.Errorf("λ=%v: clustered yield %v not above Poisson %v", l, res.Yield, (Poisson{}).Yield(l))
		}
	}
}

func TestSimulateWaferClusteringSameMeanMoreSpread(t *testing.T) {
	l := 1.0
	perDie, err := Simulate(SimConfig{DiePerWafer: 300, Wafers: 300, Lambda: l, ClusterAlpha: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	perWafer, err := Simulate(SimConfig{DiePerWafer: 300, Wafers: 300, Lambda: l, ClusterAlpha: 1, WaferToWafer: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Same marginal yield...
	if math.Abs(perDie.Yield-perWafer.Yield) > 4*(perDie.StdErr+perWafer.StdErr)+0.01 {
		t.Fatalf("per-die %v vs per-wafer %v yields disagree beyond error", perDie.Yield, perWafer.Yield)
	}
	// ...but wafer-level clustering inflates wafer-to-wafer spread.
	if perWafer.StdErr <= perDie.StdErr {
		t.Fatalf("wafer clustering stderr %v not above per-die %v", perWafer.StdErr, perDie.StdErr)
	}
}

func TestSimulateSpatialGradientPreservesMean(t *testing.T) {
	l := 1.0
	res, err := Simulate(SimConfig{DiePerWafer: 400, Wafers: 200, Lambda: l, SpatialRadius: 0.8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Mean rate preserved within sampling error...
	if math.Abs(res.MeanLambda-l) > 0.02 {
		t.Fatalf("gradient shifted mean lambda to %v", res.MeanLambda)
	}
	// ...and mixing over positions raises yield above pure Poisson.
	if res.Yield <= (Poisson{}).Yield(l) {
		t.Fatalf("spatial mixing yield %v not above Poisson %v", res.Yield, (Poisson{}).Yield(l))
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := SimConfig{DiePerWafer: 100, Wafers: 50, Lambda: 0.8, ClusterAlpha: 1, Seed: 9}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := []SimConfig{
		{DiePerWafer: 0, Wafers: 1, Lambda: 1},
		{DiePerWafer: 1, Wafers: 0, Lambda: 1},
		{DiePerWafer: 1, Wafers: 1, Lambda: -1},
		{DiePerWafer: 1, Wafers: 1, Lambda: 1, ClusterAlpha: -1},
		{DiePerWafer: 1, Wafers: 1, Lambda: 1, SpatialRadius: 1},
	}
	for i, c := range bad {
		if _, err := Simulate(c); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
}

func TestCompareModels(t *testing.T) {
	lambdas := []float64{0.2, 0.6, 1.2}
	out, err := CompareModels(lambdas, []Model{Poisson{}, Seeds{}},
		SimConfig{DiePerWafer: 200, Wafers: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"measured", "poisson", "seeds"} {
		if len(out[key]) != len(lambdas) {
			t.Fatalf("series %q has %d points, want %d", key, len(out[key]), len(lambdas))
		}
	}
	// Unclustered measurement should track Poisson better than Seeds at
	// the largest lambda.
	i := len(lambdas) - 1
	dP := math.Abs(out["measured"][i] - out["poisson"][i])
	dS := math.Abs(out["measured"][i] - out["seeds"][i])
	if dP >= dS {
		t.Fatalf("measured tracks seeds (%v) better than poisson (%v) without clustering", dS, dP)
	}
	if _, err := CompareModels(nil, []Model{Poisson{}}, SimConfig{DiePerWafer: 1, Wafers: 1}); err == nil {
		t.Fatal("accepted empty lambda list")
	}
	if _, err := CompareModels(lambdas, nil, SimConfig{DiePerWafer: 1, Wafers: 1}); err == nil {
		t.Fatal("accepted empty model list")
	}
}

func TestSimulateDeterministicAcrossWorkers(t *testing.T) {
	c := SimConfig{
		DiePerWafer: 150, Wafers: 40, Lambda: 0.9,
		ClusterAlpha: 0.8, WaferToWafer: true, SpatialRadius: 0.3, Seed: 17,
	}
	c.Workers = 1
	ref, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		c.Workers = workers
		got, err := Simulate(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: %+v, serial %+v", workers, got, ref)
		}
	}
}
