package yield_test

import (
	"fmt"

	"repro/internal/yield"
)

// The classical analytic models at one defect budget.
func ExampleModel() {
	lambda := 1.0 // one mean fatal defect per die
	for _, m := range []yield.Model{
		yield.Poisson{}, yield.Murphy{}, yield.Seeds{}, yield.NegBinomial{Alpha: 2},
	} {
		fmt.Printf("%-17s %.4f\n", m.Name(), m.Yield(lambda))
	}
	// Output:
	// poisson           0.3679
	// murphy            0.3996
	// seeds             0.5000
	// negbinomial(α=2)  0.4444
}

// A multi-layer process stack with a systematic yield multiplier.
func ExampleStack_Yield() {
	stack, err := yield.UniformStack(4, 0.3, 0.5, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	stack.Systematic = 0.95
	y, err := stack.Yield(1.0) // 1 cm² die
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("composite yield = %.4f\n", y)
	// Output:
	// composite yield = 0.5214
}

// Monte Carlo measurement against the matching analytic model.
func ExampleSimulate() {
	res, err := yield.Simulate(yield.SimConfig{
		DiePerWafer: 400, Wafers: 200, Lambda: 0.8, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	analytic := (yield.Poisson{}).Yield(0.8)
	fmt.Printf("measured %.3f vs Poisson %.3f\n", res.Yield, analytic)
	// Output:
	// measured 0.450 vs Poisson 0.449
}

// Redundancy repair (ref [32]): spares rescue a dense fabric.
func ExampleRedundancy_Yield() {
	raw := (yield.Poisson{}).Yield(3)
	repaired, err := (yield.Redundancy{Spares: 5}).Yield(3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("raw %.3f, with 5 spares %.3f\n", raw, repaired)
	// Output:
	// raw 0.050, with 5 spares 0.916
}
