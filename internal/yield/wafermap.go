package yield

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// WaferMap is a simulated pass/fail map of one or more wafers: die are
// placed on a physical grid inside the usable radius, defect rates vary
// radially and by clustering, and every die site records its good count
// over the simulated lot. It connects the abstract yield models to the
// spatial structure fab engineers actually look at.
type WaferMap struct {
	Cols, Rows int
	// Good[r][c] counts passing die at the site over the lot; -1 marks
	// sites outside the usable wafer.
	Good   [][]int
	Wafers int
}

// WaferMapConfig parameterizes SimulateWaferMap.
type WaferMapConfig struct {
	UsableRadiusMM float64 // wafer usable radius
	DieWMM, DieHMM float64 // die dimensions
	Lambda         float64 // mean fatal defects per die at wafer center scale 1
	EdgeFactor     float64 // rate multiplier at the rim relative to center; 0 means 1 (flat)
	ClusterAlpha   float64 // per-wafer gamma clustering; 0 = none
	Wafers         int
	Seed           uint64
	Workers        int // simulation goroutines; <= 0 uses parallel.DefaultWorkers
}

// Validate reports the first invalid field of c, or nil.
func (c WaferMapConfig) Validate() error {
	switch {
	case c.UsableRadiusMM <= 0:
		return fmt.Errorf("yield: wafer map: usable radius must be positive, got %v", c.UsableRadiusMM)
	case c.DieWMM <= 0 || c.DieHMM <= 0:
		return fmt.Errorf("yield: wafer map: die dimensions must be positive, got %v×%v", c.DieWMM, c.DieHMM)
	case c.Lambda < 0:
		return fmt.Errorf("yield: wafer map: lambda must be non-negative, got %v", c.Lambda)
	case c.EdgeFactor < 0:
		return fmt.Errorf("yield: wafer map: edge factor must be non-negative, got %v", c.EdgeFactor)
	case c.EdgeFactor > 0 && c.EdgeFactor < 1e-9:
		return fmt.Errorf("yield: wafer map: edge factor %v too small; use 0 for flat", c.EdgeFactor)
	case c.ClusterAlpha < 0:
		return fmt.Errorf("yield: wafer map: cluster alpha must be non-negative, got %v", c.ClusterAlpha)
	case c.Wafers <= 0:
		return fmt.Errorf("yield: wafer map: wafer count must be positive, got %d", c.Wafers)
	case c.DieWMM > 2*c.UsableRadiusMM || c.DieHMM > 2*c.UsableRadiusMM:
		return fmt.Errorf("yield: wafer map: die larger than the wafer")
	}
	return nil
}

// waferMapTuner adapts how many wafer rows one scheduled task covers.
// Grouping rows never moves a (wafer, row) RNG stream, so the map cannot
// depend on it.
var waferMapTuner parallel.ChunkTuner

// waferGeometry is the wafer-independent precomputation shared by
// SimulateWaferMap and WaferSimulator: the die grid, the per-site
// radial rate factors (and hoisted exp(-rate) for unclustered lots),
// and the per-wafer cluster scales drawn from their dedicated stream.
// Building it consumes no per-site randomness, so two consumers with the
// same config see identical per-(wafer, row) draw sequences.
type waferGeometry struct {
	cols, rows int
	inside     []bool    // rows*cols, row-major
	factor     []float64 // radial rate multiplier per site
	expRate    []float64 // exp(-Lambda·factor) per site; nil when clustered
	scales     []float64 // per-wafer cluster scale (1.0 when unclustered)
	clustered  bool
	sites      int // inside-site count
}

// buildWaferGeometry validates c and performs the per-run precompute.
func buildWaferGeometry(c WaferMapConfig) (*waferGeometry, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cols := int(2 * c.UsableRadiusMM / c.DieWMM)
	rows := int(2 * c.UsableRadiusMM / c.DieHMM)
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("yield: wafer map: no die fits the usable area")
	}
	g := &waferGeometry{cols: cols, rows: rows, clustered: c.ClusterAlpha > 0}
	g.inside = make([]bool, rows*cols)
	r2 := c.UsableRadiusMM * c.UsableRadiusMM
	originX := -float64(cols) / 2 * c.DieWMM
	originY := -float64(rows) / 2 * c.DieHMM
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			x0 := originX + float64(x)*c.DieWMM
			y0 := originY + float64(y)*c.DieHMM
			x1, y1 := x0+c.DieWMM, y0+c.DieHMM
			// All four die corners must fall within the usable radius.
			ok := x0*x0+y0*y0 <= r2 && x1*x1+y0*y0 <= r2 &&
				x0*x0+y1*y1 <= r2 && x1*x1+y1*y1 <= r2
			g.inside[y*cols+x] = ok
			if ok {
				g.sites++
			}
		}
	}
	// Per-wafer cluster scales draw from a dedicated wafer-level stream so
	// they are independent of the per-row site streams.
	g.scales = make([]float64, c.Wafers)
	wr := stats.NewRNG(stats.StreamSeed(c.Seed))
	for w := range g.scales {
		g.scales[w] = 1.0
		if c.ClusterAlpha > 0 {
			g.scales[w] = wr.Gamma(c.ClusterAlpha, 1/c.ClusterAlpha)
		}
	}
	edge := c.EdgeFactor
	if edge == 0 {
		edge = 1
	}
	// The radial site factor is wafer-independent: precompute it once into
	// a flat buffer instead of paying a sqrt per (wafer, site). The scalar
	// path computed Lambda·scale·factor left-associated, so rate =
	// (Lambda·scale)·factor reproduces it bit for bit with the per-wafer
	// product hoisted out of the site loop.
	g.factor = make([]float64, rows*cols)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if !g.inside[y*cols+x] {
				continue
			}
			cx := originX + (float64(x)+0.5)*c.DieWMM
			cy := originY + (float64(y)+0.5)*c.DieHMM
			rho := math.Sqrt(cx*cx+cy*cy) / c.UsableRadiusMM
			g.factor[y*cols+x] = 1 + (edge-1)*rho
		}
	}
	// Unclustered lots reuse one rate — and one exp(-rate) — per site
	// across every wafer: the Poisson exp moves out of the wafer loop
	// entirely (stats.RNG.PoissonL keeps the draw sequence bit-identical).
	if !g.clustered {
		g.expRate = make([]float64, rows*cols)
		for i, f := range g.factor {
			rate := c.Lambda * f
			if rate < 0 {
				rate = 0
			}
			g.expRate[i] = math.Exp(-rate)
		}
	}
	return g, nil
}

// simulateWaferRow evaluates one (wafer, row) pair from its keyed stream
// and returns the row's good-die count; when goodRow is non-nil it also
// increments the per-site tallies. Both SimulateWaferMap and
// WaferSimulator.Wafer funnel through this loop, so they consume
// identical draws per (wafer, row) by construction.
func (g *waferGeometry) simulateWaferRow(c WaferMapConfig, w, y int, goodRow []int) int {
	good := 0
	insideRow := g.inside[y*g.cols : (y+1)*g.cols]
	factorRow := g.factor[y*g.cols : (y+1)*g.cols]
	// Value-typed stream: one per (wafer, row), stack-allocated.
	r := stats.Seeded(stats.StreamSeed(c.Seed, uint64(w), uint64(y)))
	if !g.clustered {
		expRow := g.expRate[y*g.cols : (y+1)*g.cols]
		for x := 0; x < g.cols; x++ {
			if !insideRow[x] {
				continue
			}
			rate := c.Lambda * factorRow[x]
			if rate < 0 {
				rate = 0
			}
			if r.PoissonL(rate, expRow[x]) == 0 {
				good++
				if goodRow != nil {
					goodRow[x]++
				}
			}
		}
		return good
	}
	ws := c.Lambda * g.scales[w]
	for x := 0; x < g.cols; x++ {
		if !insideRow[x] {
			continue
		}
		rate := ws * factorRow[x]
		if rate < 0 {
			rate = 0
		}
		if r.Poisson(rate) == 0 {
			good++
			if goodRow != nil {
				goodRow[x]++
			}
		}
	}
	return good
}

// WaferSimulator evaluates the spatial Monte Carlo one wafer at a time:
// the geometry precompute of SimulateWaferMap done once, then Wafer(w)
// replays exactly the per-(wafer, row) keyed streams the full map
// simulation uses for wafer w. The sharded job engine (internal/mcjob)
// uses it to spread a huge lot across shards — the total good count over
// all wafers is identical to SimulateWaferMap's, whatever the sharding.
type WaferSimulator struct {
	c WaferMapConfig
	g *waferGeometry
}

// NewWaferSimulator validates c and performs the per-run precompute.
func NewWaferSimulator(c WaferMapConfig) (*WaferSimulator, error) {
	g, err := buildWaferGeometry(c)
	if err != nil {
		return nil, err
	}
	return &WaferSimulator{c: c, g: g}, nil
}

// Sites returns the number of die sites inside the usable wafer.
func (s *WaferSimulator) Sites() int { return s.g.sites }

// Wafers returns the configured lot size; Wafer accepts 0 <= w < Wafers().
func (s *WaferSimulator) Wafers() int { return len(s.g.scales) }

// Wafer simulates wafer w (rows in ascending order) and returns its good
// die count. Safe for concurrent use: all shared state is read-only.
func (s *WaferSimulator) Wafer(w int) int {
	if w < 0 || w >= len(s.g.scales) {
		panic(fmt.Sprintf("yield: WaferSimulator.Wafer(%d) outside lot of %d", w, len(s.g.scales)))
	}
	good := 0
	for y := 0; y < s.g.rows; y++ {
		good += s.g.simulateWaferRow(s.c, w, y, nil)
	}
	return good
}

// SimulateWaferMap runs the spatial Monte Carlo. A die site is inside the
// wafer when all four corners fall within the usable radius; its defect
// rate is Lambda scaled linearly in its center's normalized radius toward
// EdgeFactor at the rim, and by the wafer's gamma cluster draw.
//
// The simulation is parallelized across wafer rows: each (wafer, row)
// pair draws from its own RNG sub-stream keyed by stats.StreamSeed, and
// per-wafer cluster scales come from a dedicated wafer-level stream, so
// the map depends only on the config — never the worker count or
// scheduling order — and every row is owned by exactly one goroutine.
func SimulateWaferMap(c WaferMapConfig) (*WaferMap, error) {
	g, err := buildWaferGeometry(c)
	if err != nil {
		return nil, err
	}
	cols, rows := g.cols, g.rows
	wm := &WaferMap{Cols: cols, Rows: rows, Wafers: c.Wafers}
	// Row buffers carve one flat backing array, instead of one allocation
	// per row: two allocations for the whole map.
	wm.Good = make([][]int, rows)
	goodFlat := make([]int, rows*cols)
	for y := 0; y < rows; y++ {
		wm.Good[y] = goodFlat[y*cols : (y+1)*cols : (y+1)*cols]
		for x := 0; x < cols; x++ {
			if !g.inside[y*cols+x] {
				wm.Good[y][x] = -1
			}
		}
	}
	err = parallel.ForEachChunkTuned(context.Background(), rows, 1, c.Workers, &waferMapTuner, func(_, yLo, yHi int) error {
		for y := yLo; y < yHi; y++ {
			for w := 0; w < c.Wafers; w++ {
				g.simulateWaferRow(c, w, y, wm.Good[y])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return wm, nil
}

// Sites returns the number of die sites inside the usable wafer.
func (m *WaferMap) Sites() int {
	n := 0
	for _, row := range m.Good {
		for _, g := range row {
			if g >= 0 {
				n++
			}
		}
	}
	return n
}

// Yield returns the lot-level yield across all sites.
func (m *WaferMap) Yield() float64 {
	var good, total int
	for _, row := range m.Good {
		for _, g := range row {
			if g >= 0 {
				good += g
				total += m.Wafers
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(good) / float64(total)
}

// ZonalYield splits the wafer into nZones equal-width radial annuli and
// returns the yield of each from center outward. Zones with no sites
// report NaN.
func (m *WaferMap) ZonalYield(nZones int) ([]float64, error) {
	if nZones <= 0 {
		return nil, fmt.Errorf("yield: wafer map: zone count must be positive, got %d", nZones)
	}
	good := make([]int, nZones)
	total := make([]int, nZones)
	cx := float64(m.Cols) / 2
	cy := float64(m.Rows) / 2
	// Normalize by the max center distance of an inside site.
	maxR := 0.0
	type site struct {
		zoneR float64
		g     int
	}
	var sites []site
	for y, row := range m.Good {
		for x, g := range row {
			if g < 0 {
				continue
			}
			dx := (float64(x) + 0.5 - cx) / cx
			dy := (float64(y) + 0.5 - cy) / cy
			rr := math.Sqrt(dx*dx + dy*dy)
			if rr > maxR {
				maxR = rr
			}
			sites = append(sites, site{zoneR: rr, g: g})
		}
	}
	if maxR == 0 {
		maxR = 1
	}
	for _, s := range sites {
		z := int(s.zoneR / maxR * float64(nZones))
		if z >= nZones {
			z = nZones - 1
		}
		good[z] += s.g
		total[z] += m.Wafers
	}
	out := make([]float64, nZones)
	for i := range out {
		if total[i] == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(good[i]) / float64(total[i])
	}
	return out, nil
}

// Render draws the map as ASCII shading: '.' outside the wafer, then
// '#', '+', '-', ' ' from best to worst site yield quartile.
func (m *WaferMap) Render() string {
	var b strings.Builder
	for _, row := range m.Good {
		for _, g := range row {
			switch {
			case g < 0:
				b.WriteByte('.')
			default:
				f := float64(g) / float64(m.Wafers)
				switch {
				case f >= 0.75:
					b.WriteByte('#')
				case f >= 0.5:
					b.WriteByte('+')
				case f >= 0.25:
					b.WriteByte('-')
				default:
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
