package yield

import (
	"math"
	"strings"
	"testing"
)

func mapConfig() WaferMapConfig {
	return WaferMapConfig{
		UsableRadiusMM: 97,
		DieWMM:         10, DieHMM: 10,
		Lambda: 0.5,
		Wafers: 50,
		Seed:   5,
	}
}

func TestSimulateWaferMapGeometry(t *testing.T) {
	wm, err := SimulateWaferMap(mapConfig())
	if err != nil {
		t.Fatal(err)
	}
	sites := wm.Sites()
	// 97 mm radius, 10 mm square die: between 200 and 290 whole die.
	if sites < 200 || sites > 290 {
		t.Fatalf("sites = %d, want 200–290", sites)
	}
	// Corners of the rectangular grid are outside the circle.
	if wm.Good[0][0] != -1 || wm.Good[wm.Rows-1][wm.Cols-1] != -1 {
		t.Fatal("corner sites not marked outside")
	}
	// Center is inside.
	if wm.Good[wm.Rows/2][wm.Cols/2] < 0 {
		t.Fatal("center site marked outside")
	}
}

func TestWaferMapYieldMatchesPoisson(t *testing.T) {
	c := mapConfig()
	c.EdgeFactor = 1 // flat profile
	c.Wafers = 200
	wm, err := SimulateWaferMap(c)
	if err != nil {
		t.Fatal(err)
	}
	want := (Poisson{}).Yield(c.Lambda)
	if math.Abs(wm.Yield()-want) > 0.01 {
		t.Fatalf("flat-profile yield %v, Poisson %v", wm.Yield(), want)
	}
}

func TestWaferMapEdgeGradient(t *testing.T) {
	c := mapConfig()
	c.EdgeFactor = 4 // rim four times dirtier
	c.Wafers = 300
	wm, err := SimulateWaferMap(c)
	if err != nil {
		t.Fatal(err)
	}
	zones, err := wm.ZonalYield(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 3 {
		t.Fatalf("zones = %d", len(zones))
	}
	if !(zones[0] > zones[1] && zones[1] > zones[2]) {
		t.Fatalf("zonal yields not declining outward: %v", zones)
	}
	// The innermost zone still spans a third of the radius, so it sits
	// between the clean-center ideal Y(λ) and the zone's worst case
	// Y(λ·(1+3·1/3)) = Y(2λ).
	if zones[0] > (Poisson{}).Yield(c.Lambda)+0.02 {
		t.Fatalf("center zone %v above the clean-center ideal %v", zones[0], (Poisson{}).Yield(c.Lambda))
	}
	if zones[0] < (Poisson{}).Yield(2*c.Lambda)-0.02 {
		t.Fatalf("center zone %v below its worst case %v", zones[0], (Poisson{}).Yield(2*c.Lambda))
	}
}

func TestWaferMapFlatProfileNoGradient(t *testing.T) {
	c := mapConfig()
	c.EdgeFactor = 1
	c.Wafers = 300
	wm, err := SimulateWaferMap(c)
	if err != nil {
		t.Fatal(err)
	}
	zones, err := wm.ZonalYield(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(zones); i++ {
		if math.Abs(zones[i]-zones[0]) > 0.03 {
			t.Fatalf("flat profile shows zonal structure: %v", zones)
		}
	}
}

func TestWaferMapClusteringRaisesYield(t *testing.T) {
	flat := mapConfig()
	flat.Wafers = 300
	base, err := SimulateWaferMap(flat)
	if err != nil {
		t.Fatal(err)
	}
	clustered := flat
	clustered.ClusterAlpha = 0.5
	cl, err := SimulateWaferMap(clustered)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Yield() <= base.Yield() {
		t.Fatalf("clustering did not raise yield: %v vs %v", cl.Yield(), base.Yield())
	}
	// And matches the NB prediction.
	want := NegBinomial{Alpha: 0.5}.Yield(flat.Lambda)
	if math.Abs(cl.Yield()-want) > 0.03 {
		t.Fatalf("clustered yield %v, NB %v", cl.Yield(), want)
	}
}

func TestWaferMapRender(t *testing.T) {
	wm, err := SimulateWaferMap(mapConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := wm.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != wm.Rows {
		t.Fatalf("rendered %d lines for %d rows", len(lines), wm.Rows)
	}
	if !strings.Contains(out, ".") {
		t.Fatal("no outside markers in render")
	}
	if !strings.ContainsAny(out, "#+- ") {
		t.Fatal("no yield shading in render")
	}
}

func TestWaferMapValidation(t *testing.T) {
	bad := []WaferMapConfig{
		{UsableRadiusMM: 0, DieWMM: 1, DieHMM: 1, Wafers: 1},
		{UsableRadiusMM: 10, DieWMM: 0, DieHMM: 1, Wafers: 1},
		{UsableRadiusMM: 10, DieWMM: 1, DieHMM: 1, Lambda: -1, Wafers: 1},
		{UsableRadiusMM: 10, DieWMM: 1, DieHMM: 1, EdgeFactor: -1, Wafers: 1},
		{UsableRadiusMM: 10, DieWMM: 1, DieHMM: 1, ClusterAlpha: -1, Wafers: 1},
		{UsableRadiusMM: 10, DieWMM: 1, DieHMM: 1, Wafers: 0},
		{UsableRadiusMM: 10, DieWMM: 50, DieHMM: 1, Wafers: 1},
	}
	for i, c := range bad {
		if _, err := SimulateWaferMap(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	wm, err := SimulateWaferMap(mapConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wm.ZonalYield(0); err == nil {
		t.Fatal("accepted zero zones")
	}
}

func TestSimulateWaferMapDeterministicAcrossWorkers(t *testing.T) {
	c := mapConfig()
	c.ClusterAlpha = 0.7
	c.EdgeFactor = 3
	c.Workers = 1
	ref, err := SimulateWaferMap(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		c.Workers = workers
		got, err := SimulateWaferMap(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows != ref.Rows || got.Cols != ref.Cols {
			t.Fatalf("workers=%d: geometry changed", workers)
		}
		for y := range ref.Good {
			for x := range ref.Good[y] {
				if got.Good[y][x] != ref.Good[y][x] {
					t.Fatalf("workers=%d: site (%d,%d) = %d, serial %d",
						workers, y, x, got.Good[y][x], ref.Good[y][x])
				}
			}
		}
	}
}

// The simulation's allocation contract after the flat row-buffer and
// value-RNG rework: the map costs a handful of allocations regardless of
// the (wafers × rows) stream count, where it used to pay one heap RNG per
// stream and one slice per row.
func TestSimulateWaferMapAllocBound(t *testing.T) {
	cfg := WaferMapConfig{
		UsableRadiusMM: 60,
		DieWMM:         5, DieHMM: 5,
		Lambda: 0.4, EdgeFactor: 2, ClusterAlpha: 1,
		Wafers: 20, Seed: 3, Workers: 1,
	}
	if _, err := SimulateWaferMap(cfg); err != nil { // warm any lazy init
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := SimulateWaferMap(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// 24 rows × 20 wafers = 480 per-site streams used to mean ≥480
	// allocations; the reworked path needs only the result struct, two
	// flat backings, row headers, scales, and the worker machinery.
	if allocs > 40 {
		t.Fatalf("SimulateWaferMap allocates %v per run, want ≤40", allocs)
	}
}

func TestWaferSimulatorMatchesMapTotals(t *testing.T) {
	// The per-wafer evaluator replays the map simulation's keyed streams
	// wafer by wafer, so the lot's total good count must match exactly —
	// clustered and not.
	for _, alpha := range []float64{0, 1.5} {
		c := WaferMapConfig{
			UsableRadiusMM: 30, DieWMM: 6, DieHMM: 5,
			Lambda: 0.8, EdgeFactor: 2.5, ClusterAlpha: alpha,
			Wafers: 7, Seed: 42,
		}
		wm, err := SimulateWaferMap(c)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewWaferSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		if sim.Sites() != wm.Sites() {
			t.Fatalf("alpha=%v: sites %d != map sites %d", alpha, sim.Sites(), wm.Sites())
		}
		if sim.Wafers() != c.Wafers {
			t.Fatalf("alpha=%v: wafers %d", alpha, sim.Wafers())
		}
		mapGood := 0
		for _, row := range wm.Good {
			for _, g := range row {
				if g > 0 {
					mapGood += g
				}
			}
		}
		simGood := 0
		for w := 0; w < c.Wafers; w++ {
			simGood += sim.Wafer(w)
		}
		if simGood != mapGood {
			t.Fatalf("alpha=%v: per-wafer total %d != map total %d", alpha, simGood, mapGood)
		}
	}
}

func TestWaferSimulatorValidates(t *testing.T) {
	if _, err := NewWaferSimulator(WaferMapConfig{}); err == nil {
		t.Fatal("accepted zero config")
	}
}
