package yield

import (
	"fmt"
	"math"
)

// LearningCurve models yield learning over a process's life (ref [34],
// "Advanced Yield Learning Through Predictive Micro-Yield Modeling"):
// defect density declines exponentially from an initial bring-up value
// toward a mature floor,
//
//	D0(t) = Floor + (Initial − Floor)·e^{−t/Tau}
//
// with t in months since process bring-up.
type LearningCurve struct {
	Initial float64 // D0 at t = 0, defects/cm²
	Floor   float64 // mature D0, defects/cm²
	Tau     float64 // learning time constant, months
}

// DefaultLearningCurve returns a curve typical of a logic process ramp:
// 2.0 → 0.2 defects/cm² with a 9-month time constant.
func DefaultLearningCurve() LearningCurve {
	return LearningCurve{Initial: 2.0, Floor: 0.2, Tau: 9}
}

// Validate reports the first invalid field of c, or nil.
func (c LearningCurve) Validate() error {
	if c.Initial < 0 || c.Floor < 0 {
		return fmt.Errorf("yield: learning curve densities must be non-negative, got initial %v floor %v", c.Initial, c.Floor)
	}
	if c.Floor > c.Initial {
		return fmt.Errorf("yield: learning curve floor %v exceeds initial %v", c.Floor, c.Initial)
	}
	if c.Tau <= 0 {
		return fmt.Errorf("yield: learning time constant must be positive, got %v", c.Tau)
	}
	return nil
}

// DefectDensity returns D0 at months since bring-up. Negative times are
// clamped to 0 (the bring-up value).
func (c LearningCurve) DefectDensity(months float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if months < 0 {
		months = 0
	}
	return c.Floor + (c.Initial-c.Floor)*math.Exp(-months/c.Tau), nil
}

// YieldAt returns the die yield at the given process age for a die of
// areaCM2 with the given critical fraction, under model m (nil = Poisson).
func (c LearningCurve) YieldAt(months, areaCM2, criticalFraction float64, m Model) (float64, error) {
	d0, err := c.DefectDensity(months)
	if err != nil {
		return 0, err
	}
	if areaCM2 < 0 {
		return 0, fmt.Errorf("yield: area must be non-negative, got %v", areaCM2)
	}
	if criticalFraction < 0 || criticalFraction > 1 {
		return 0, fmt.Errorf("yield: critical fraction must be in [0,1], got %v", criticalFraction)
	}
	if m == nil {
		m = Poisson{}
	}
	return m.Yield(d0 * criticalFraction * areaCM2), nil
}

// MonthsToYield returns the process age at which the yield for the given
// die first reaches target. It returns an error when the target is not
// reachable even at the mature floor.
func (c LearningCurve) MonthsToYield(target, areaCM2, criticalFraction float64, m Model) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if !(target > 0 && target < 1) {
		return 0, fmt.Errorf("yield: target must be in (0,1), got %v", target)
	}
	if m == nil {
		m = Poisson{}
	}
	atFloor := m.Yield(c.Floor * criticalFraction * areaCM2)
	if atFloor < target {
		return 0, fmt.Errorf("yield: target %v unreachable (mature yield %v)", target, atFloor)
	}
	at0 := m.Yield(c.Initial * criticalFraction * areaCM2)
	if at0 >= target {
		return 0, nil
	}
	// Y is monotone in t; binary search on months.
	lo, hi := 0.0, 20*c.Tau
	for i := 0; i < 200 && hi-lo > 1e-9; i++ {
		mid := 0.5 * (lo + hi)
		y, err := c.YieldAt(mid, areaCM2, criticalFraction, m)
		if err != nil {
			return 0, err
		}
		if y < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}
