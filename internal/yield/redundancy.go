package yield

import (
	"fmt"
	"math"
)

// Redundancy models repairable structures (ref [32], "Accurate Estimation
// of Defect-Related Yield Loss in Reconfigurable VLSI Circuits"): a
// regular fabric with spare units survives up to Spares fatal defects in
// its repairable region. This is the yield side of the §3.2 regularity
// argument — regular structures are not only predictable, they are
// repairable, so their effective yield far exceeds the raw Poisson value.
type Redundancy struct {
	Spares int // fatal defects the structure can absorb, >= 0
}

// Validate reports the first invalid field of r, or nil.
func (r Redundancy) Validate() error {
	if r.Spares < 0 {
		return fmt.Errorf("yield: redundancy: spares must be non-negative, got %d", r.Spares)
	}
	return nil
}

// Yield returns the probability that a structure with mean fatal-defect
// count lambda survives after repair: P(defects ≤ Spares) under Poisson
// statistics,
//
//	Y = e^{−λ} Σ_{k=0}^{S} λ^k / k!
func (r Redundancy) Yield(lambda float64) (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if lambda < 0 {
		return 0, fmt.Errorf("yield: redundancy: lambda must be non-negative, got %v", lambda)
	}
	if lambda == 0 {
		return 1, nil
	}
	term := math.Exp(-lambda) // k = 0 term
	sum := term
	for k := 1; k <= r.Spares; k++ {
		term *= lambda / float64(k)
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// YieldNB returns the repairable yield under negative-binomial
// (gamma-mixed) defect statistics with clustering alpha:
//
//	Y = Σ_{k=0}^{S} C(α+k−1, k) · (λ/(λ+α))^k · (α/(λ+α))^α
//
// evaluated by the stable multiplicative recurrence.
func (r Redundancy) YieldNB(lambda, alpha float64) (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if lambda < 0 {
		return 0, fmt.Errorf("yield: redundancy: lambda must be non-negative, got %v", lambda)
	}
	if alpha <= 0 {
		return 0, fmt.Errorf("yield: redundancy: alpha must be positive, got %v", alpha)
	}
	if lambda == 0 {
		return 1, nil
	}
	p := lambda / (lambda + alpha)
	term := math.Pow(alpha/(lambda+alpha), alpha) // k = 0
	sum := term
	for k := 1; k <= r.Spares; k++ {
		term *= (alpha + float64(k) - 1) / float64(k) * p
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// SparesForYield returns the smallest spare count that reaches the target
// yield at the given lambda under Poisson statistics. It returns an error
// for targets outside (0, 1) or when more than maxSpares would be needed.
func SparesForYield(lambda, target float64, maxSpares int) (int, error) {
	if !(target > 0 && target < 1) {
		return 0, fmt.Errorf("yield: redundancy: target must be in (0,1), got %v", target)
	}
	if lambda < 0 {
		return 0, fmt.Errorf("yield: redundancy: lambda must be non-negative, got %v", lambda)
	}
	if maxSpares < 0 {
		return 0, fmt.Errorf("yield: redundancy: maxSpares must be non-negative, got %d", maxSpares)
	}
	for s := 0; s <= maxSpares; s++ {
		y, err := Redundancy{Spares: s}.Yield(lambda)
		if err != nil {
			return 0, err
		}
		if y >= target {
			return s, nil
		}
	}
	return 0, fmt.Errorf("yield: redundancy: target %v unreachable within %d spares at λ=%v", target, maxSpares, lambda)
}

// RepairEconomics weighs the cost of carrying spare area against the
// yield it buys. Cost per good die scales as area/yield: without repair
// it is A/Y0 with Y0 = Poisson(λ); with repair the die grows to A·(1+f)
// (collecting proportionally more defects, λ·(1+f)) but survives up to
// the spare count. The returned multiplier is
//
//	[(1+f)/Yr] / [1/Y0] = (1+f)·Y0/Yr
//
// — below 1 exactly when repair pays.
func RepairEconomics(lambda float64, spares int, spareAreaFraction float64) (costMultiplier float64, err error) {
	if spareAreaFraction < 0 {
		return 0, fmt.Errorf("yield: redundancy: spare area fraction must be non-negative, got %v", spareAreaFraction)
	}
	if lambda < 0 {
		return 0, fmt.Errorf("yield: redundancy: lambda must be non-negative, got %v", lambda)
	}
	repaired, err := Redundancy{Spares: spares}.Yield(lambda * (1 + spareAreaFraction))
	if err != nil {
		return 0, err
	}
	if repaired <= 0 {
		return 0, fmt.Errorf("yield: redundancy: repaired yield underflow")
	}
	y0 := Poisson{}.Yield(lambda)
	return (1 + spareAreaFraction) * y0 / repaired, nil
}
