// Package yield implements the manufacturing-yield substrate the paper's
// cost models consume: the classical analytic yield models (Poisson,
// Murphy, Seeds, negative binomial), multi-layer composition, yield
// learning curves, defect size distributions with critical-area averaging,
// and a Monte Carlo defect simulator that measures yield directly so the
// analytic models can be validated against it (the DfM modeling capability
// §3.1 calls for).
package yield

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Model maps the mean number of fatal defects per die λ = D0·A_crit to a
// yield in (0, 1]. Implementations must be monotonically decreasing in
// lambda with Yield(0) = 1.
type Model interface {
	// Yield returns the probability that a die with mean fatal-defect
	// count lambda is functional. lambda must be non-negative.
	Yield(lambda float64) float64
	// Name identifies the model in reports.
	Name() string
}

// Poisson is the classical random-defect model Y = e^{−λ}, exact when
// defects land independently and uniformly.
type Poisson struct{}

// Yield implements Model.
func (Poisson) Yield(lambda float64) float64 { return math.Exp(-lambda) }

// Name implements Model.
func (Poisson) Name() string { return "poisson" }

// Murphy is Murphy's model Y = ((1−e^{−λ})/λ)², the integral of the
// Poisson yield over a triangular defect-density distribution. It sits
// between Poisson and Seeds for all λ.
type Murphy struct{}

// Yield implements Model.
func (Murphy) Yield(lambda float64) float64 {
	if lambda == 0 {
		return 1
	}
	v := (1 - math.Exp(-lambda)) / lambda
	return v * v
}

// Name implements Model.
func (Murphy) Name() string { return "murphy" }

// Seeds is the exponential-mixture model Y = 1/(1+λ), the most pessimistic
// classical form at low λ and most optimistic at high λ.
type Seeds struct{}

// Yield implements Model.
func (Seeds) Yield(lambda float64) float64 { return 1 / (1 + lambda) }

// Name implements Model.
func (Seeds) Name() string { return "seeds" }

// NegBinomial is the negative-binomial model
//
//	Y = (1 + λ/α)^{−α}
//
// where α is the defect clustering parameter: α→∞ recovers Poisson,
// α = 1 recovers Seeds. Industrial practice uses α ≈ 0.3–5. This is the
// model the paper's reference [31] ("New Yield Models for DSM
// Manufacturing") generalizes.
type NegBinomial struct {
	Alpha float64
}

// Yield implements Model. It panics on any error YieldE would report
// (Alpha ≤ 0, non-finite Alpha, negative lambda), which indicates
// construction-time programmer error on the internal hot paths;
// user-reachable paths should call YieldE and report the error.
func (m NegBinomial) Yield(lambda float64) float64 {
	y, err := m.YieldE(lambda)
	if err != nil {
		panic(err.Error())
	}
	return y
}

// YieldE is the error-returning form of Yield: it rejects a clustering
// parameter outside (0, ∞) and a negative or NaN lambda instead of
// panicking. (Alpha = +Inf is rejected too: the α→∞ Poisson limit is not
// reproduced by floating-point Pow, which would return 1 for every
// lambda.)
func (m NegBinomial) YieldE(lambda float64) (float64, error) {
	if !(m.Alpha > 0) || math.IsInf(m.Alpha, 1) {
		return 0, fmt.Errorf("yield: NegBinomial requires finite Alpha > 0, got %v", m.Alpha)
	}
	if !(lambda >= 0) {
		return 0, fmt.Errorf("yield: NegBinomial lambda must be non-negative, got %v", lambda)
	}
	return math.Pow(1+lambda/m.Alpha, -m.Alpha), nil
}

// Name implements Model.
func (m NegBinomial) Name() string { return fmt.Sprintf("negbinomial(α=%g)", m.Alpha) }

// MurphyByIntegral evaluates Murphy's model from first principles by
// integrating the Poisson yield over the triangular defect-density
// distribution on [0, 2λ]. It exists to validate the closed form and to
// support arbitrary mixing distributions via MixedYield.
func MurphyByIntegral(lambda float64) (float64, error) {
	if lambda < 0 {
		return 0, fmt.Errorf("yield: lambda must be non-negative, got %v", lambda)
	}
	if lambda == 0 {
		return 1, nil
	}
	// Triangular density on [0, 2λ] peaking at λ: f(x) = x/λ² on [0,λ],
	// (2λ−x)/λ² on [λ,2λ].
	up, err := stats.Integrate(func(x float64) float64 {
		return math.Exp(-x) * x / (lambda * lambda)
	}, 0, lambda, 1e-12)
	if err != nil {
		return 0, err
	}
	down, err := stats.Integrate(func(x float64) float64 {
		return math.Exp(-x) * (2*lambda - x) / (lambda * lambda)
	}, lambda, 2*lambda, 1e-12)
	if err != nil {
		return 0, err
	}
	return up + down, nil
}

// MixedYield integrates the Poisson yield over an arbitrary defect-rate
// density f supported on [lo, hi]: Y = ∫ e^{−x} f(x) dx. The density need
// not be normalized exactly; the result is divided by ∫ f to compensate
// for numeric truncation of the support.
func MixedYield(f func(float64) float64, lo, hi float64) (float64, error) {
	if !(lo >= 0 && lo < hi) {
		return 0, fmt.Errorf("yield: MixedYield requires 0 <= lo < hi, got [%v, %v]", lo, hi)
	}
	num, err := stats.Integrate(func(x float64) float64 { return math.Exp(-x) * f(x) }, lo, hi, 1e-11)
	if err != nil {
		return 0, err
	}
	den, err := stats.Integrate(f, lo, hi, 1e-11)
	if err != nil {
		return 0, err
	}
	if den <= 0 {
		return 0, fmt.Errorf("yield: MixedYield density integrates to %v", den)
	}
	return num / den, nil
}

// Lambda returns the mean fatal defect count for a die of areaCM2 under
// defect density d0 (defects per cm²). It returns an error for negative
// inputs.
func Lambda(d0, areaCM2 float64) (float64, error) {
	if d0 < 0 {
		return 0, fmt.Errorf("yield: defect density must be non-negative, got %v", d0)
	}
	if areaCM2 < 0 {
		return 0, fmt.Errorf("yield: area must be non-negative, got %v", areaCM2)
	}
	return d0 * areaCM2, nil
}

// InvertLambda finds the λ at which model m produces the target yield,
// searching [0, hi]. It returns an error when the target is outside (0, 1]
// or unreachable on the interval. Cost studies use it to ask "what defect
// budget keeps yield at Y?".
func InvertLambda(m Model, target, hi float64) (float64, error) {
	if !(target > 0 && target <= 1) {
		return 0, fmt.Errorf("yield: target yield must be in (0,1], got %v", target)
	}
	if target == 1 {
		return 0, nil
	}
	if hi <= 0 {
		return 0, fmt.Errorf("yield: search bound must be positive, got %v", hi)
	}
	if m.Yield(hi) > target {
		return 0, fmt.Errorf("yield: target %v unreachable below λ = %v for %s", target, hi, m.Name())
	}
	return stats.Bisect(func(l float64) float64 { return m.Yield(l) - target }, 0, hi, 1e-12)
}
