package core

import (
	"fmt"
	"math"
)

// TestCostModel prices production test, the cost contributor §2.5 notes
// "could be easily included within the proposed cost-modeling framework".
// Test cost per *good* die is the tester time the die occupies divided by
// yield (bad die consume tester time too), plus a per-die handling charge:
//
//	testTime = BaseSeconds · (N_tr/RefTransistors)^TimeExp
//	C_test/die = (testTime · TesterDollarsPerHour/3600 + Handling) / Y
//
// Vector count — and hence test time — grows sublinearly with transistor
// count under scan compression; TimeExp captures that.
type TestCostModel struct {
	BaseSeconds          float64 // tester seconds at the reference size
	RefTransistors       float64
	TimeExp              float64 // test-time growth exponent
	TesterDollarsPerHour float64
	Handling             float64 // per-die insertion/handling charge, $
}

// DefaultTestCostModel reflects paper-era big-iron ATE: $2000/hour, 4 s
// for a 10 M-transistor part, test time growing with the square root of
// design size, 2¢ handling.
func DefaultTestCostModel() TestCostModel {
	return TestCostModel{
		BaseSeconds:          4,
		RefTransistors:       10e6,
		TimeExp:              0.5,
		TesterDollarsPerHour: 2000,
		Handling:             0.02,
	}
}

// Validate reports the first invalid field of m, or nil.
func (m TestCostModel) Validate() error {
	switch {
	case m.BaseSeconds <= 0:
		return fmt.Errorf("core: test cost: base seconds must be positive, got %v", m.BaseSeconds)
	case m.RefTransistors <= 0:
		return fmt.Errorf("core: test cost: reference size must be positive, got %v", m.RefTransistors)
	case m.TimeExp < 0:
		return fmt.Errorf("core: test cost: time exponent must be non-negative, got %v", m.TimeExp)
	case m.TesterDollarsPerHour <= 0:
		return fmt.Errorf("core: test cost: tester rate must be positive, got %v", m.TesterDollarsPerHour)
	case m.Handling < 0:
		return fmt.Errorf("core: test cost: handling charge must be non-negative, got %v", m.Handling)
	}
	return nil
}

// Seconds returns the tester time for a design of the given size.
func (m TestCostModel) Seconds(transistors float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if transistors <= 0 {
		return 0, fmt.Errorf("core: test cost: transistor count must be positive, got %v", transistors)
	}
	return m.BaseSeconds * math.Pow(transistors/m.RefTransistors, m.TimeExp), nil
}

// PerGoodDie returns the test cost charged to each functioning die.
func (m TestCostModel) PerGoodDie(transistors, yield float64) (float64, error) {
	sec, err := m.Seconds(transistors)
	if err != nil {
		return 0, err
	}
	if !validYield(yield) {
		return 0, fmt.Errorf("core: test cost: yield must be in (0,1], got %v", yield)
	}
	return (sec*m.TesterDollarsPerHour/3600 + m.Handling) / yield, nil
}

// PerTransistor returns the test cost per functioning transistor, the
// term that adds to eq (4)'s C_tr.
func (m TestCostModel) PerTransistor(transistors, yield float64) (float64, error) {
	die, err := m.PerGoodDie(transistors, yield)
	if err != nil {
		return 0, err
	}
	return die / transistors, nil
}

// TransistorCostWithTest evaluates eq (4) extended with the test charge:
// the scenario's breakdown plus C_test per transistor folded into Total
// and DieCost. The pure eq (4) fields remain individually visible.
func TransistorCostWithTest(s Scenario, m TestCostModel) (Breakdown, float64, error) {
	b, err := s.TransistorCost()
	if err != nil {
		return Breakdown{}, 0, err
	}
	perTx, err := m.PerTransistor(s.Design.Transistors, s.Process.Yield)
	if err != nil {
		return Breakdown{}, 0, err
	}
	b.Total += perTx
	b.DieCost = b.Total * s.Design.Transistors
	return b, perTx, nil
}
