package core

import (
	"math"
	"testing"
)

func TestDefectLevelWilliamsBrown(t *testing.T) {
	// Full coverage ships nothing.
	dl, err := DefectLevel(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dl != 0 {
		t.Fatalf("full coverage DL = %v", dl)
	}
	// Zero coverage ships the whole defective population.
	dl, err = DefectLevel(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dl-0.5) > 1e-12 {
		t.Fatalf("zero coverage DL = %v, want 0.5", dl)
	}
	// Textbook point: Y = 0.5, T = 0.9 → DL = 1 − 0.5^0.1 ≈ 6.7%.
	dl, err = DefectLevel(0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dl-(1-math.Pow(0.5, 0.1))) > 1e-12 {
		t.Fatalf("DL = %v", dl)
	}
	if _, err := DefectLevel(0, 0.5); err == nil {
		t.Fatal("accepted zero yield")
	}
	if _, err := DefectLevel(0.5, 1.5); err == nil {
		t.Fatal("accepted coverage > 1")
	}
}

func TestDefectLevelMonotone(t *testing.T) {
	prev := 1.0
	for _, cov := range []float64{0, 0.5, 0.9, 0.99, 0.999} {
		dl, err := DefectLevel(0.6, cov)
		if err != nil {
			t.Fatal(err)
		}
		if dl >= prev {
			t.Fatalf("DL not falling with coverage at %v", cov)
		}
		prev = dl
	}
	// Better yield ships fewer escapes at fixed coverage.
	lo, _ := DefectLevel(0.4, 0.95)
	hi, _ := DefectLevel(0.9, 0.95)
	if hi >= lo {
		t.Fatalf("higher yield did not reduce DL: %v vs %v", hi, lo)
	}
}

func TestCoverageForDPM(t *testing.T) {
	cov, err := CoverageForDPM(0.6, 500) // 500 DPM
	if err != nil {
		t.Fatal(err)
	}
	dl, err := DefectLevel(0.6, cov)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dl*1e6-500) > 1e-6 {
		t.Fatalf("round trip DPM = %v, want 500", dl*1e6)
	}
	// A very lax target needs no test at all.
	cov, err = CoverageForDPM(0.999, 999000)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 0 {
		t.Fatalf("lax target coverage = %v, want 0", cov)
	}
	if _, err := CoverageForDPM(0.6, 0); err == nil {
		t.Fatal("accepted zero DPM")
	}
	if _, err := CoverageForDPM(0.6, 1e6); err == nil {
		t.Fatal("accepted 1e6 DPM")
	}
	if _, err := CoverageForDPM(1, 100); err == nil {
		t.Fatal("accepted yield of exactly 1")
	}
}

func TestTestEconomicsCostShape(t *testing.T) {
	e := DefaultTestEconomics()
	// U-shaped: low coverage pays escapes, high coverage pays tester time.
	low, err := e.CostAt(0.2, 10e6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := e.CostAt(0.95, 10e6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	high, err := e.CostAt(0.99995, 10e6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !(mid < low && mid < high) {
		t.Fatalf("cost not U-shaped: %v, %v, %v", low, mid, high)
	}
	if _, err := e.CostAt(1, 10e6, 0.6); err == nil {
		t.Fatal("accepted coverage of exactly 1")
	}
	if _, err := e.CostAt(-0.1, 10e6, 0.6); err == nil {
		t.Fatal("accepted negative coverage")
	}
}

func TestOptimalCoverage(t *testing.T) {
	e := DefaultTestEconomics()
	cov, cost, err := e.OptimalCoverage(10e6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if cov <= 0.5 || cov >= 1 {
		t.Fatalf("optimal coverage = %v, want high but below 1", cov)
	}
	// Neighbors are not cheaper.
	for _, dc := range []float64{-0.01, 0.01} {
		c, err := e.CostAt(cov+dc, 10e6, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if c < cost-1e-12 {
			t.Fatalf("neighbor %v beats optimum: %v vs %v", cov+dc, c, cost)
		}
	}
	// Pricier escapes push the optimum toward fuller coverage.
	exp := e
	exp.EscapeCost = 5000
	cov2, _, err := exp.OptimalCoverage(10e6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if cov2 <= cov {
		t.Fatalf("100x escape cost did not raise coverage: %v vs %v", cov2, cov)
	}
}

func TestTestEconomicsValidation(t *testing.T) {
	bad := DefaultTestEconomics()
	bad.RefCoverage = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted reference coverage of 1")
	}
	bad = DefaultTestEconomics()
	bad.CovExp = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero exponent")
	}
	bad = DefaultTestEconomics()
	bad.EscapeCost = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative escape cost")
	}
	bad = DefaultTestEconomics()
	bad.Test = TestCostModel{}
	if _, _, err := bad.OptimalCoverage(1e6, 0.5); err == nil {
		t.Fatal("accepted invalid test model")
	}
}
