package core

import (
	"math"
	"testing"
)

func TestTestCostSeconds(t *testing.T) {
	m := DefaultTestCostModel()
	s, err := m.Seconds(10e6)
	if err != nil {
		t.Fatal(err)
	}
	if s != 4 {
		t.Fatalf("reference test time = %v, want 4 s", s)
	}
	// Square-root growth: 4x transistors → 2x time.
	s4, err := m.Seconds(40e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s4-8) > 1e-9 {
		t.Fatalf("4x design test time = %v, want 8 s", s4)
	}
}

func TestTestCostPerGoodDie(t *testing.T) {
	m := DefaultTestCostModel()
	// At reference size, Y=0.8: (4·2000/3600 + 0.02)/0.8.
	want := (4*2000.0/3600 + 0.02) / 0.8
	got, err := m.PerGoodDie(10e6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("per-die test cost = %v, want %v", got, want)
	}
	// Worse yield → each good die carries more tester time.
	worse, err := m.PerGoodDie(10e6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worse-2*got) > 1e-12 {
		t.Fatalf("half yield should double the charge: %v vs %v", worse, got)
	}
}

func TestTestCostValidation(t *testing.T) {
	bad := []TestCostModel{
		{BaseSeconds: 0, RefTransistors: 1, TesterDollarsPerHour: 1},
		{BaseSeconds: 1, RefTransistors: 0, TesterDollarsPerHour: 1},
		{BaseSeconds: 1, RefTransistors: 1, TimeExp: -1, TesterDollarsPerHour: 1},
		{BaseSeconds: 1, RefTransistors: 1, TesterDollarsPerHour: 0},
		{BaseSeconds: 1, RefTransistors: 1, TesterDollarsPerHour: 1, Handling: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
	m := DefaultTestCostModel()
	if _, err := m.Seconds(0); err == nil {
		t.Fatal("accepted zero transistors")
	}
	if _, err := m.PerGoodDie(1e6, 0); err == nil {
		t.Fatal("accepted zero yield")
	}
	if _, err := m.PerGoodDie(1e6, 1.2); err == nil {
		t.Fatal("accepted yield > 1")
	}
}

func TestTransistorCostWithTest(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	plain, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	withTest, perTx, err := TransistorCostWithTest(s, DefaultTestCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if perTx <= 0 {
		t.Fatalf("test charge = %v", perTx)
	}
	if math.Abs(withTest.Total-(plain.Total+perTx)) > 1e-18 {
		t.Fatalf("total with test = %v, want %v", withTest.Total, plain.Total+perTx)
	}
	if math.Abs(withTest.DieCost-withTest.Total*10e6) > 1e-9 {
		t.Fatalf("die cost not recomputed: %v", withTest.DieCost)
	}
	// The eq (4) components are untouched.
	if withTest.Manufacturing != plain.Manufacturing || withTest.DesignAndMask != plain.DesignAndMask {
		t.Fatal("test extension mutated eq (4) components")
	}
	// Test is a minor but visible share at these parameters (paper-era
	// rule of thumb: a few percent of die cost).
	share := perTx * 10e6 / withTest.DieCost
	if share < 0.005 || share > 0.5 {
		t.Fatalf("test share of die cost = %v, want a few percent", share)
	}
}

func TestTransistorCostWithTestPropagatesErrors(t *testing.T) {
	s := figure4Scenario(0, 0.8) // invalid volume
	if _, _, err := TransistorCostWithTest(s, DefaultTestCostModel()); err == nil {
		t.Fatal("accepted invalid scenario")
	}
	s = figure4Scenario(5000, 0.8)
	if _, _, err := TransistorCostWithTest(s, TestCostModel{}); err == nil {
		t.Fatal("accepted invalid test model")
	}
}
