package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultDesignCostModelConstants(t *testing.T) {
	m := DefaultDesignCostModel()
	if m.A0 != 1000 || m.P1 != 1.0 || m.P2 != 1.2 || m.Sd0 != 100 {
		t.Fatalf("defaults = %+v, want the paper's A0=1000 p1=1 p2=1.2 s_d0=100", m)
	}
}

func TestDesignCostEq6(t *testing.T) {
	m := DefaultDesignCostModel()
	// C_DE = 1000 · (1e7)^1 / (300-100)^1.2
	want := 1000 * 1e7 / math.Pow(200, 1.2)
	got, err := m.Cost(1e7, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, want, 1e-12) {
		t.Fatalf("C_DE = %v, want %v", got, want)
	}
	// Order of magnitude: tens of millions of dollars for a 10M-transistor
	// design at s_d = 300 — the paper's implied scale.
	if got < 1e6 || got > 1e9 {
		t.Fatalf("C_DE = %v out of plausible dollar scale", got)
	}
}

func TestDesignCostDivergesNearSd0(t *testing.T) {
	m := DefaultDesignCostModel()
	far, err := m.Cost(1e7, 500)
	if err != nil {
		t.Fatal(err)
	}
	near, err := m.Cost(1e7, 101)
	if err != nil {
		t.Fatal(err)
	}
	if near <= far {
		t.Fatalf("cost near s_d0 (%v) not above cost far away (%v)", near, far)
	}
	if _, err := m.Cost(1e7, 100); err == nil {
		t.Fatal("accepted s_d = s_d0")
	}
	if _, err := m.Cost(1e7, 50); err == nil {
		t.Fatal("accepted s_d < s_d0")
	}
}

func TestDesignCostScalesWithTransistors(t *testing.T) {
	m := DefaultDesignCostModel()
	small, err := m.Cost(1e6, 300)
	if err != nil {
		t.Fatal(err)
	}
	big, err := m.Cost(1e7, 300)
	if err != nil {
		t.Fatal(err)
	}
	// p1 = 1: cost is linear in N_tr.
	if !almost(big, 10*small, 1e-9) {
		t.Fatalf("10x transistors scaled cost by %v, want 10 (p1=1)", big/small)
	}
}

func TestDesignCostModelValidate(t *testing.T) {
	cases := []DesignCostModel{
		{A0: 0, P1: 1, P2: 1, Sd0: 100},
		{A0: 1, P1: -1, P2: 1, Sd0: 100},
		{A0: 1, P1: 1, P2: -1, Sd0: 100},
		{A0: 1, P1: 1, P2: 1, Sd0: 0},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model %+v accepted", i, m)
		}
	}
	if err := DefaultDesignCostModel().Validate(); err != nil {
		t.Fatalf("default model rejected: %v", err)
	}
}

func TestMarginalCostNegativeAndConsistent(t *testing.T) {
	m := DefaultDesignCostModel()
	sd := 250.0
	grad, err := m.MarginalCost(1e7, sd)
	if err != nil {
		t.Fatal(err)
	}
	if grad >= 0 {
		t.Fatalf("marginal design cost = %v, want negative (sparser is cheaper)", grad)
	}
	// Compare with central difference.
	h := 1e-4
	up, _ := m.Cost(1e7, sd+h)
	dn, _ := m.Cost(1e7, sd-h)
	fd := (up - dn) / (2 * h)
	if !almost(grad, fd, 1e-5) {
		t.Fatalf("marginal = %v, finite difference = %v", grad, fd)
	}
}

func TestDesignCostPerCM2Eq5(t *testing.T) {
	// Cd_sq = (1e6 + 4e7)/(5000·300)
	got, err := DesignCostPerCM2(1e6, 4e7, 5000, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := (1e6 + 4e7) / (5000 * 300)
	if !almost(got, want, 1e-12) {
		t.Fatalf("Cd_sq = %v, want %v", got, want)
	}
}

func TestDesignCostPerCM2VanishesAtVolume(t *testing.T) {
	// The paper: for high-volume products eq (4) → eq (3).
	lo, err := DesignCostPerCM2(1e6, 4e7, 1e9, 300)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 1e-3 {
		t.Fatalf("Cd_sq at huge volume = %v, want ≈0", lo)
	}
}

func TestDesignCostPerCM2Validation(t *testing.T) {
	if _, err := DesignCostPerCM2(-1, 0, 100, 300); err == nil {
		t.Fatal("accepted negative mask cost")
	}
	if _, err := DesignCostPerCM2(0, -1, 100, 300); err == nil {
		t.Fatal("accepted negative design cost")
	}
	if _, err := DesignCostPerCM2(0, 0, 0, 300); err == nil {
		t.Fatal("accepted zero volume")
	}
	if _, err := DesignCostPerCM2(0, 0, 100, 0); err == nil {
		t.Fatal("accepted zero wafer area")
	}
}

// Property: eq (6) is strictly decreasing in s_d on (s_d0, ∞) — pushing a
// design denser always costs more.
func TestDesignCostMonotoneProperty(t *testing.T) {
	m := DefaultDesignCostModel()
	f := func(a uint32, b uint16) bool {
		sd := 101 + float64(a%100000)/100 // [101, 1101)
		step := 1 + float64(b%1000)/100   // [1, 11)
		c1, err1 := m.Cost(1e7, sd)
		c2, err2 := m.Cost(1e7, sd+step)
		return err1 == nil && err2 == nil && c2 < c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
