package core

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// This file is the context-aware batch/streaming evaluation surface of the
// cost model: the primitives a serving layer needs to answer many
// scenarios per request (deterministic ordering, per-item error isolation)
// and to stream long sweeps chunk by chunk without buffering the whole
// result, aborting promptly when the caller's context dies.

// TransistorCostCtx is TransistorCost gated on ctx: a dead context returns
// ctx.Err() before any evaluation. Batch and streaming drivers call it per
// item so a cancelled request stops burning workers between items. On a
// traced context each evaluation records a "core.eval" span; untraced the
// instrumentation is a nil no-op, preserving the zero-allocation contract
// of the evaluation hot path.
func (s Scenario) TransistorCostCtx(ctx context.Context) (Breakdown, error) {
	if err := ctx.Err(); err != nil {
		return Breakdown{}, err
	}
	_, span := obs.StartSpan(ctx, "core.eval")
	b, err := s.TransistorCost()
	span.End()
	return b, err
}

// EvalBatchCtx evaluates every scenario on the parallel engine with
// deterministic result ordering and per-item error isolation: breakdowns[i]
// and errs[i] describe scenario i, and one out-of-domain scenario does not
// abort its neighbours. Only a context cancellation stops the batch early,
// returned as the single stop error (with both slices nil).
func EvalBatchCtx(ctx context.Context, scs []Scenario) (breakdowns []Breakdown, errs []error, stop error) {
	ctx, span := obs.StartSpan(ctx, "core.batch")
	if span != nil {
		span.SetAttr("items", strconv.Itoa(len(scs)))
		defer span.End()
	}
	return parallel.MapAll(ctx, len(scs), 0, func(i int) (Breakdown, error) {
		return scs[i].TransistorCostCtx(ctx)
	})
}

// SweepStreamChunk is the default chunk size of the streaming sweep
// helpers: large enough to keep the worker pool busy per chunk, small
// enough that a streaming consumer sees the first bytes promptly.
const SweepStreamChunk = 64

// SweepSdStream evaluates exactly the grid of SweepSdCtx but in chunks,
// invoking emit with each completed chunk in grid order. The abscissas and
// per-point breakdowns are bit-identical to the buffered sweep; only the
// delivery differs. A non-positive chunkSize uses SweepStreamChunk. An
// emit error or a context cancellation aborts the remaining chunks.
func SweepSdStream(ctx context.Context, s Scenario, lo, hi float64, n, chunkSize int, emit func([]SweepPoint) error) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !finite(lo) || lo <= s.DesignCost.Sd0 {
		return fmt.Errorf("core: SweepSd: lo = %v must exceed s_d0 = %v: %w", lo, s.DesignCost.Sd0, ErrOutOfDomain)
	}
	xs, err := gridLog(lo, hi, n)
	if err != nil {
		return err
	}
	return sweepStream(ctx, xs, chunkSize, func(sd float64) (Breakdown, error) {
		return s.WithSd(sd).TransistorCost()
	}, emit)
}

// SweepVolumeStream is the chunked, streaming form of SweepVolumeCtx.
func SweepVolumeStream(ctx context.Context, s Scenario, lo, hi float64, n, chunkSize int, emit func([]SweepPoint) error) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !finitePos(lo) {
		return fmt.Errorf("core: SweepVolume: lo must be positive and finite, got %v", lo)
	}
	xs, err := gridLog(lo, hi, n)
	if err != nil {
		return err
	}
	return sweepStream(ctx, xs, chunkSize, func(w float64) (Breakdown, error) {
		return s.WithWafers(w).TransistorCost()
	}, emit)
}

// SweepYieldStream is the chunked, streaming form of SweepYieldCtx.
func SweepYieldStream(ctx context.Context, s Scenario, lo, hi float64, n, chunkSize int, emit func([]SweepPoint) error) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !(finitePos(lo) && lo <= 1) || !(finitePos(hi) && hi <= 1) {
		return fmt.Errorf("core: SweepYield: bounds must lie in (0,1], got [%v, %v]", lo, hi)
	}
	xs, err := gridLin(lo, hi, n)
	if err != nil {
		return err
	}
	return sweepStream(ctx, xs, chunkSize, func(y float64) (Breakdown, error) {
		return s.WithYield(y).TransistorCost()
	}, emit)
}

// sweepStream drives a chunked sweep: each chunk fans out over the worker
// pool exactly like the buffered sweep (index-addressed slots, so the
// numbers cannot depend on scheduling), then emit delivers it before the
// next chunk starts. The context is honored both inside a chunk (via
// sweepEval) and between chunks.
func sweepStream(ctx context.Context, xs []float64, chunkSize int, eval func(float64) (Breakdown, error), emit func([]SweepPoint) error) error {
	if chunkSize <= 0 {
		chunkSize = SweepStreamChunk
	}
	for lo := 0; lo < len(xs); lo += chunkSize {
		hi := min(lo+chunkSize, len(xs))
		pts, err := sweepEval(ctx, xs[lo:hi], eval)
		if err != nil {
			return err
		}
		if err := emit(pts); err != nil {
			return err
		}
	}
	return nil
}
