package core

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// This file is the context-aware batch/streaming evaluation surface of the
// cost model: the primitives a serving layer needs to answer many
// scenarios per request (deterministic ordering, per-item error isolation)
// and to stream long sweeps chunk by chunk without buffering the whole
// result, aborting promptly when the caller's context dies.

// TransistorCostCtx is TransistorCost gated on ctx: a dead context returns
// ctx.Err() before any evaluation. Batch and streaming drivers call it per
// item so a cancelled request stops burning workers between items. On a
// traced context each evaluation records a "core.eval" span; untraced the
// instrumentation is a nil no-op, preserving the zero-allocation contract
// of the evaluation hot path.
func (s Scenario) TransistorCostCtx(ctx context.Context) (Breakdown, error) {
	if err := ctx.Err(); err != nil {
		return Breakdown{}, err
	}
	_, span := obs.StartSpan(ctx, "core.eval")
	b, err := s.TransistorCost()
	span.End()
	return b, err
}

// batchTuner adapts how many batch items one scheduled task covers, so a
// large batch of microsecond evaluations stops paying per-item pickup
// overhead. Grouping cannot affect results: every item writes only its
// own slot.
var batchTuner parallel.ChunkTuner

// EvalBatchCtx evaluates every scenario on the parallel engine with
// deterministic result ordering and per-item error isolation: breakdowns[i]
// and errs[i] describe scenario i, and one out-of-domain scenario does not
// abort its neighbours. Only a context cancellation stops the batch early,
// returned as the single stop error (with both slices nil).
func EvalBatchCtx(ctx context.Context, scs []Scenario) (breakdowns []Breakdown, errs []error, stop error) {
	var a BatchArena
	return a.EvalBatchInto(ctx, scs)
}

// BatchArena owns reusable result buffers for repeated batch
// evaluations. A serving loop keeps one arena per in-flight request
// (typically via sync.Pool) and calls EvalBatchInto instead of
// EvalBatchCtx, so the steady state allocates nothing per item. An arena
// must not be used from two goroutines at once; its buffers grow to the
// largest batch it has served and are reused thereafter.
type BatchArena struct {
	breakdowns []Breakdown
	errs       []error
}

// EvalBatchInto is EvalBatchCtx evaluating into the arena's buffers. The
// returned slices alias the arena and are valid until the next call on
// the same arena; callers that need the results past that must copy.
// Semantics are otherwise identical: index-addressed results, per-item
// error isolation, and a dead context returning only stop.
func (a *BatchArena) EvalBatchInto(ctx context.Context, scs []Scenario) (breakdowns []Breakdown, errs []error, stop error) {
	n := len(scs)
	if cap(a.breakdowns) < n {
		a.breakdowns = make([]Breakdown, n)
		a.errs = make([]error, n)
	}
	bs := a.breakdowns[:n]
	es := a.errs[:n]
	ctx, span := obs.StartSpan(ctx, "core.batch")
	if span != nil {
		span.SetAttr("items", strconv.Itoa(n))
		defer span.End()
	}
	if stop = parallel.MapAllInto(ctx, bs, es, 0, &batchTuner, func(i int) (Breakdown, error) {
		return scs[i].TransistorCostCtx(ctx)
	}); stop != nil {
		return nil, nil, stop
	}
	return bs, es, nil
}

// SweepStreamChunk is the default chunk size of the streaming sweep
// helpers: large enough to keep the worker pool busy per chunk, small
// enough that a streaming consumer sees the first bytes promptly.
const SweepStreamChunk = 64

// SweepSdStream evaluates exactly the grid of SweepSdCtx but in chunks,
// invoking emit with each completed chunk in grid order. The abscissas and
// per-point breakdowns are bit-identical to the buffered sweep; only the
// delivery differs. A non-positive chunkSize uses SweepStreamChunk. An
// emit error or a context cancellation aborts the remaining chunks.
func SweepSdStream(ctx context.Context, s Scenario, lo, hi float64, n, chunkSize int, emit func([]SweepPoint) error) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !finite(lo) || lo <= s.DesignCost.Sd0 {
		return fmt.Errorf("core: SweepSd: lo = %v must exceed s_d0 = %v: %w", lo, s.DesignCost.Sd0, ErrOutOfDomain)
	}
	xs, err := gridLog(lo, hi, n)
	if err != nil {
		return err
	}
	k := newSdKernel(s)
	return sweepStream(ctx, xs, chunkSize, k.eval, emit)
}

// SweepVolumeStream is the chunked, streaming form of SweepVolumeCtx.
func SweepVolumeStream(ctx context.Context, s Scenario, lo, hi float64, n, chunkSize int, emit func([]SweepPoint) error) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !finitePos(lo) {
		return fmt.Errorf("core: SweepVolume: lo must be positive and finite, got %v", lo)
	}
	xs, err := gridLog(lo, hi, n)
	if err != nil {
		return err
	}
	eval, err := sweepKernelFor(s, axisVolume)
	if err != nil {
		return err
	}
	return sweepStream(ctx, xs, chunkSize, eval, emit)
}

// SweepYieldStream is the chunked, streaming form of SweepYieldCtx.
func SweepYieldStream(ctx context.Context, s Scenario, lo, hi float64, n, chunkSize int, emit func([]SweepPoint) error) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !(finitePos(lo) && lo <= 1) || !(finitePos(hi) && hi <= 1) {
		return fmt.Errorf("core: SweepYield: bounds must lie in (0,1], got [%v, %v]", lo, hi)
	}
	xs, err := gridLin(lo, hi, n)
	if err != nil {
		return err
	}
	eval, err := sweepKernelFor(s, axisYield)
	if err != nil {
		return err
	}
	return sweepStream(ctx, xs, chunkSize, eval, emit)
}

// sweepStream drives a chunked sweep: each chunk fans out over the worker
// pool exactly like the buffered sweep (index-addressed slots evaluated by
// the same hoisted-invariant kernel, so the numbers cannot depend on
// scheduling or delivery), then emit delivers it before the next chunk
// starts. The context is honored both inside a chunk (via the kernel
// dispatch) and between chunks.
func sweepStream(ctx context.Context, xs []float64, chunkSize int, eval func(float64) (Breakdown, error), emit func([]SweepPoint) error) error {
	if chunkSize <= 0 {
		chunkSize = SweepStreamChunk
	}
	for lo := 0; lo < len(xs); lo += chunkSize {
		hi := min(lo+chunkSize, len(xs))
		pts, err := sweepEvalKernel(ctx, xs[lo:hi], eval)
		if err != nil {
			return err
		}
		if err := emit(pts); err != nil {
			return err
		}
	}
	return nil
}
