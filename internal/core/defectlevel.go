package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// DefectLevel returns the Williams–Brown shipped-defect level: the
// fraction of parts that pass a test with fault coverage T but are in
// fact defective,
//
//	DL = 1 − Y^{(1−T)}
//
// with Y the true yield and T ∈ [0, 1]. Full coverage ships zero escapes;
// zero coverage ships the entire defective population. The value times
// 1e6 is the familiar DPM figure.
func DefectLevel(yield, coverage float64) (float64, error) {
	if !(yield > 0 && yield <= 1) {
		return 0, fmt.Errorf("core: defect level: yield must be in (0,1], got %v", yield)
	}
	if coverage < 0 || coverage > 1 {
		return 0, fmt.Errorf("core: defect level: coverage must be in [0,1], got %v", coverage)
	}
	return 1 - math.Pow(yield, 1-coverage), nil
}

// CoverageForDPM inverts Williams–Brown: the fault coverage needed to
// ship at most the target defects-per-million at the given yield.
func CoverageForDPM(yield, targetDPM float64) (float64, error) {
	if !(yield > 0 && yield < 1) {
		return 0, fmt.Errorf("core: coverage: yield must be in (0,1), got %v", yield)
	}
	if targetDPM <= 0 || targetDPM >= 1e6 {
		return 0, fmt.Errorf("core: coverage: target DPM must be in (0, 1e6), got %v", targetDPM)
	}
	dl := targetDPM / 1e6
	// 1 − Y^{1−T} = dl ⇒ (1−T)·ln Y = ln(1−dl) ⇒ T = 1 − ln(1−dl)/ln Y.
	t := 1 - math.Log(1-dl)/math.Log(yield)
	if t < 0 {
		t = 0 // even zero coverage already ships below the target
	}
	if t > 1 {
		return 0, fmt.Errorf("core: coverage: target %v DPM unreachable at yield %v", targetDPM, yield)
	}
	return t, nil
}

// TestEconomics balances test cost against escape cost: raising fault
// coverage costs tester time (test seconds grow superlinearly as coverage
// approaches 1: seconds ∝ 1/(1−T)^CovExp − 1 scaled to BaseSeconds at
// RefCoverage) while every shipped escape costs EscapeCost (replacement,
// RMA, reputation). OptimalCoverage minimizes the sum per shipped part.
type TestEconomics struct {
	Test        TestCostModel
	RefCoverage float64 // coverage the Test model's BaseSeconds buys
	CovExp      float64 // test-time growth exponent toward full coverage
	EscapeCost  float64 // $ per shipped defective part
}

// DefaultTestEconomics pairs the default test model (4 s at 95% coverage)
// with a $50 escape cost.
func DefaultTestEconomics() TestEconomics {
	return TestEconomics{
		Test:        DefaultTestCostModel(),
		RefCoverage: 0.95,
		CovExp:      1,
		EscapeCost:  50,
	}
}

// Validate reports the first invalid field of e, or nil.
func (e TestEconomics) Validate() error {
	if err := e.Test.Validate(); err != nil {
		return err
	}
	if !(e.RefCoverage > 0 && e.RefCoverage < 1) {
		return fmt.Errorf("core: test economics: reference coverage must be in (0,1), got %v", e.RefCoverage)
	}
	if e.CovExp <= 0 {
		return fmt.Errorf("core: test economics: coverage exponent must be positive, got %v", e.CovExp)
	}
	if e.EscapeCost < 0 {
		return fmt.Errorf("core: test economics: escape cost must be non-negative, got %v", e.EscapeCost)
	}
	return nil
}

// CostAt returns the per-shipped-part cost of testing at the given
// coverage: tester time (scaled by the coverage curve, charged to good
// die through yield) plus the expected escape charge.
func (e TestEconomics) CostAt(coverage, transistors, yield float64) (float64, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	if coverage < 0 || coverage >= 1 {
		return 0, fmt.Errorf("core: test economics: coverage must be in [0,1), got %v", coverage)
	}
	base, err := e.Test.PerGoodDie(transistors, yield)
	if err != nil {
		return 0, err
	}
	refScale := math.Pow(1/(1-e.RefCoverage), e.CovExp) - 1
	scale := (math.Pow(1/(1-coverage), e.CovExp) - 1) / refScale
	dl, err := DefectLevel(yield, coverage)
	if err != nil {
		return 0, err
	}
	return base*scale + dl*e.EscapeCost, nil
}

// OptimalCoverage minimizes CostAt over coverage in [0, 0.99999].
func (e TestEconomics) OptimalCoverage(transistors, yield float64) (coverage, cost float64, err error) {
	if err := e.Validate(); err != nil {
		return 0, 0, err
	}
	obj := func(t float64) float64 {
		c, err := e.CostAt(t, transistors, yield)
		if err != nil {
			return math.Inf(1)
		}
		return c
	}
	gx, _ := stats.ArgminGrid(obj, 0, 0.99999, 1024)
	lo := math.Max(0, gx-0.002)
	hi := math.Min(0.99999, gx+0.002)
	res, err := stats.Minimize(obj, lo, hi, 1e-9)
	if err != nil {
		return 0, 0, err
	}
	return res.X, res.F, nil
}
