package core

import (
	"math"
	"testing"
)

// figure4Scenario reproduces the Figure 4 parameterization: N_tr = 10 M,
// default eq (6) constants, and the stated volume/yield pairs.
func figure4Scenario(wafers, yield float64) Scenario {
	return Scenario{
		Process: Process{
			Name:         "nm-node",
			LambdaUM:     0.18,
			CostPerCM2:   8.0,
			Yield:        yield,
			WaferAreaCM2: 300,
		},
		Design:     Design{Name: "mpu10M", Transistors: 10e6, Sd: 300},
		DesignCost: DefaultDesignCostModel(),
		MaskCost:   1e6,
		Wafers:     wafers,
	}
}

func TestScenarioTransistorCostComposition(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	b, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b.Total, b.Manufacturing+b.DesignAndMask, 1e-12) {
		t.Fatalf("total %v != manufacturing %v + design %v", b.Total, b.Manufacturing, b.DesignAndMask)
	}
	if b.Manufacturing <= 0 || b.DesignAndMask <= 0 {
		t.Fatalf("non-positive components: %+v", b)
	}
	// Cross-check against the closed form of eq (4).
	cde, _ := s.DesignCost.Cost(10e6, 300)
	cdsq := (1e6 + cde) / (5000 * 300)
	want := math.Pow(0.18e-4, 2) * 300 / 0.4 * (8.0 + cdsq)
	if !almost(b.Total, want, 1e-12) {
		t.Fatalf("eq(4) total = %v, want %v", b.Total, want)
	}
	if !almost(b.DieCost, b.Total*10e6, 1e-12) {
		t.Fatalf("die cost = %v, want %v", b.DieCost, b.Total*10e6)
	}
}

func TestLowVolumeDesignDominates(t *testing.T) {
	// The Figure 4 contrast: at N_w = 5000 the design share is large; at
	// N_w = 50000 manufacturing dominates.
	low, err := figure4Scenario(5000, 0.4).TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	high, err := figure4Scenario(50000, 0.9).TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	if low.DesignAndMask < low.Manufacturing {
		t.Fatalf("at 5000 wafers design share %v should exceed manufacturing %v", low.DesignAndMask, low.Manufacturing)
	}
	if high.DesignAndMask > high.Manufacturing {
		t.Fatalf("at 50000 wafers manufacturing %v should exceed design share %v", high.Manufacturing, high.DesignAndMask)
	}
	if high.Total >= low.Total {
		t.Fatalf("high-volume cost %v not below low-volume cost %v", high.Total, low.Total)
	}
}

func TestUtilizationScalesCost(t *testing.T) {
	// §2.5: substituting Y with u·Y models FPGA-style partial utilization.
	s := figure4Scenario(5000, 0.8)
	full, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	s.Utilization = 0.5
	half, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(half.Total, 2*full.Total, 1e-12) {
		t.Fatalf("u=0.5 cost %v, want double %v", half.Total, full.Total)
	}
}

func TestUtilizationZeroMeansOne(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	s.Utilization = 0
	a, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	s.Utilization = 1
	b, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Fatalf("zero-value utilization %v != explicit 1 %v", a.Total, b.Total)
	}
}

func TestScenarioValidation(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	s.MaskCost = -1
	if err := s.Validate(); err == nil {
		t.Fatal("accepted negative mask cost")
	}
	s = figure4Scenario(0, 0.8)
	if err := s.Validate(); err == nil {
		t.Fatal("accepted zero volume")
	}
	s = figure4Scenario(5000, 0.8)
	s.Utilization = 1.5
	if err := s.Validate(); err == nil {
		t.Fatal("accepted utilization > 1")
	}
	s = figure4Scenario(5000, 0.8)
	s.Design.Sd = 50 // below Sd0: Validate passes, TransistorCost must fail
	if _, err := s.TransistorCost(); err == nil {
		t.Fatal("accepted s_d below s_d0")
	}
}

func TestWithSdAndWithWafersAreCopies(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	s2 := s.WithSd(400)
	s3 := s.WithWafers(9999)
	if s.Design.Sd != 300 || s.Wafers != 5000 {
		t.Fatal("With* mutated the receiver")
	}
	if s2.Design.Sd != 400 || s3.Wafers != 9999 {
		t.Fatal("With* did not apply the change")
	}
}

func TestGeneralizedDefaultsMatchEq4(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	plain, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generalized{Scenario: s}.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(plain.Total, gen.Total, 1e-12) {
		t.Fatalf("generalized with nil fns = %v, eq(4) = %v", gen.Total, plain.Total)
	}
}

func TestGeneralizedOverrides(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	g := Generalized{
		Scenario: s,
		CmSqFn: func(aw, lam, nw float64) float64 {
			return 16.0 // doubled manufacturing cost
		},
		YieldFn: func(aw, lam, nw, sd, ntr float64) float64 {
			return 0.8 // doubled yield
		},
	}
	b, err := g.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b.CmSq, 16, 1e-12) {
		t.Fatalf("CmSq override not applied: %v", b.CmSq)
	}
	plain, _ := s.TransistorCost()
	// Manufacturing share: ×2 from cost, ÷2 from yield → unchanged.
	if !almost(b.Manufacturing, plain.Manufacturing, 1e-12) {
		t.Fatalf("manufacturing = %v, want %v", b.Manufacturing, plain.Manufacturing)
	}
	// Design share: only ÷2 from yield.
	if !almost(b.DesignAndMask, plain.DesignAndMask/2, 1e-12) {
		t.Fatalf("design share = %v, want %v", b.DesignAndMask, plain.DesignAndMask/2)
	}
}

func TestGeneralizedRejectsBadFnOutputs(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	g := Generalized{Scenario: s, YieldFn: func(_, _, _, _, _ float64) float64 { return 0 }}
	if _, err := g.TransistorCost(); err == nil {
		t.Fatal("accepted zero yield from YieldFn")
	}
	g = Generalized{Scenario: s, CmSqFn: func(_, _, _ float64) float64 { return -1 }}
	if _, err := g.TransistorCost(); err == nil {
		t.Fatal("accepted negative CmSq from CmSqFn")
	}
	g = Generalized{Scenario: s, CdSqFn: func(_, _, _, _, _ float64) float64 { return -1 }}
	if _, err := g.TransistorCost(); err == nil {
		t.Fatal("accepted negative CdSq from CdSqFn")
	}
}
