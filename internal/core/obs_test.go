package core

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestTransistorCostCtxUntracedZeroAlloc is the acceptance contract of the
// tracing layer: on an untraced context the instrumentation must add zero
// allocations to the evaluation hot path — StartSpan returns a nil span
// without touching the heap and every nil-span method is a no-op.
func TestTransistorCostCtxUntracedZeroAlloc(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	ctx := context.Background()
	if _, err := s.TransistorCostCtx(ctx); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.TransistorCostCtx(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("TransistorCostCtx on an untraced context allocates %.1f times per call, want 0", allocs)
	}
}

// TestTransistorCostCtxTracedSpan: on a traced context each evaluation
// records one core.eval span under the root.
func TestTransistorCostCtxTracedSpan(t *testing.T) {
	tracer := obs.NewTracer(4, nil)
	ctx, root := tracer.StartRoot(context.Background(), "", "test.root")
	s := figure4Scenario(5000, 0.4)
	if _, err := s.TransistorCostCtx(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TransistorCostCtx(ctx); err != nil {
		t.Fatal(err)
	}
	root.End()
	trace, ok := tracer.Lookup(root.TraceID())
	if !ok {
		t.Fatal("trace not committed")
	}
	evals := 0
	for _, sp := range trace.Spans {
		if sp.Name == "core.eval" {
			evals++
		}
	}
	if evals != 2 {
		t.Fatalf("core.eval spans = %d, want 2", evals)
	}
}

// TestSweepSdCtxTracedSpan: the sweep entry points stamp their stage and
// point count on the trace.
func TestSweepSdCtxTracedSpan(t *testing.T) {
	tracer := obs.NewTracer(4, nil)
	ctx, root := tracer.StartRoot(context.Background(), "", "test.root")
	s := figure4Scenario(5000, 0.4)
	if _, err := SweepSdCtx(ctx, s, 105, 2000, 16); err != nil {
		t.Fatal(err)
	}
	root.End()
	trace, ok := tracer.Lookup(root.TraceID())
	if !ok {
		t.Fatal("trace not committed")
	}
	var sweep *obs.SpanRecord
	for i := range trace.Spans {
		if trace.Spans[i].Name == "core.sweep_sd" {
			sweep = &trace.Spans[i]
		}
	}
	if sweep == nil {
		t.Fatalf("no core.sweep_sd span in %v", trace.Spans)
	}
	if got := sweep.Attrs["points"]; got != "16" {
		t.Fatalf("sweep points attr = %q, want \"16\"", got)
	}
}
