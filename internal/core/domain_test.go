package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestDesignCostPole pins the eq (6) behavior around the full-custom limit
// s_d0: the model must refuse s_d ≤ s_d0 (where the denominator hits its
// pole or turns negative) with ErrOutOfDomain, and answer a large finite
// cost just above it.
func TestDesignCostPole(t *testing.T) {
	m := DefaultDesignCostModel()
	const ntr = 10e6
	eps := m.Sd0 * 1e-9

	for _, sd := range []float64{m.Sd0 - eps, m.Sd0, m.Sd0 - 50, 0, -10} {
		c, err := m.Cost(ntr, sd)
		if err == nil {
			t.Fatalf("Cost(ntr, %v) = %v, want error at or below the pole", sd, c)
		}
		if !errors.Is(err, ErrOutOfDomain) {
			t.Fatalf("Cost(ntr, %v) error %v does not wrap ErrOutOfDomain", sd, err)
		}
	}

	just := m.Sd0 * (1 + 1e-9)
	c, err := m.Cost(ntr, just)
	if err != nil {
		t.Fatalf("Cost just above the pole: %v", err)
	}
	if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
		t.Fatalf("Cost just above the pole = %v, want large finite positive", c)
	}
	far, err := m.Cost(ntr, 10*m.Sd0)
	if err != nil {
		t.Fatal(err)
	}
	if !(c > far) {
		t.Fatalf("cost near the pole (%v) should dwarf the relaxed-density cost (%v)", c, far)
	}
}

// TestDesignCostRejectsNonFinite closes the NaN slip: NaN compares false
// with everything, so a plain sd <= Sd0 check would wave NaN through and
// eq (6) would return NaN as a dollar figure.
func TestDesignCostRejectsNonFinite(t *testing.T) {
	m := DefaultDesignCostModel()
	nan, inf := math.NaN(), math.Inf(1)

	for _, sd := range []float64{nan, inf, -inf} {
		if _, err := m.Cost(10e6, sd); !errors.Is(err, ErrOutOfDomain) {
			t.Errorf("Cost(ntr, %v): err = %v, want ErrOutOfDomain", sd, err)
		}
	}
	for _, ntr := range []float64{nan, inf, -inf, 0, -1} {
		if _, err := m.Cost(ntr, 300); err == nil {
			t.Errorf("Cost(%v, 300) accepted a non-finite or non-positive transistor count", ntr)
		}
	}
	for _, bad := range []DesignCostModel{
		{A0: nan, P1: 1, P2: 1.2, Sd0: 100},
		{A0: 1000, P1: nan, P2: 1.2, Sd0: 100},
		{A0: 1000, P1: 1, P2: inf, Sd0: 100},
		{A0: 1000, P1: 1, P2: 1.2, Sd0: nan},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

// TestMarginalCostSharesDomain checks that the derivative refuses exactly
// where the cost does.
func TestMarginalCostSharesDomain(t *testing.T) {
	m := DefaultDesignCostModel()
	if _, err := m.MarginalCost(10e6, m.Sd0); !errors.Is(err, ErrOutOfDomain) {
		t.Fatalf("MarginalCost at the pole: err = %v, want ErrOutOfDomain", err)
	}
	g, err := m.MarginalCost(10e6, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !(g < 0) || math.IsInf(g, 0) {
		t.Fatalf("MarginalCost = %v, want finite negative (cost falls as s_d relaxes)", g)
	}
}

// TestScenarioValidateRejectsNonFinite runs the NaN/Inf table through every
// scenario field: each poisoned value must fail validation up front, never
// reach the arithmetic.
func TestScenarioValidateRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"lambda NaN", func(s *Scenario) { s.Process.LambdaUM = nan }},
		{"lambda Inf", func(s *Scenario) { s.Process.LambdaUM = inf }},
		{"cm_sq NaN", func(s *Scenario) { s.Process.CostPerCM2 = nan }},
		{"yield NaN", func(s *Scenario) { s.Process.Yield = nan }},
		{"yield Inf", func(s *Scenario) { s.Process.Yield = inf }},
		{"wafer area NaN", func(s *Scenario) { s.Process.WaferAreaCM2 = nan }},
		{"transistors NaN", func(s *Scenario) { s.Design.Transistors = nan }},
		{"transistors Inf", func(s *Scenario) { s.Design.Transistors = inf }},
		{"sd NaN", func(s *Scenario) { s.Design.Sd = nan }},
		{"mask NaN", func(s *Scenario) { s.MaskCost = nan }},
		{"mask Inf", func(s *Scenario) { s.MaskCost = inf }},
		{"wafers NaN", func(s *Scenario) { s.Wafers = nan }},
		{"wafers Inf", func(s *Scenario) { s.Wafers = inf }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := figure4Scenario(5000, 0.4)
			c.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("Validate accepted a scenario with %s", c.name)
			}
			if _, err := s.TransistorCost(); err == nil {
				t.Fatalf("TransistorCost evaluated a scenario with %s", c.name)
			}
		})
	}
}

// TestSweepRejectsNonFiniteBounds: a sweep with poisoned bounds must fail
// loudly instead of producing a grid of NaN abscissas.
func TestSweepRejectsNonFiniteBounds(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	nan, inf := math.NaN(), math.Inf(1)

	for _, b := range [][2]float64{{nan, 2000}, {200, nan}, {200, inf}, {inf, 2000}, {2000, 200}} {
		if _, err := SweepSd(s, b[0], b[1], 8); err == nil {
			t.Errorf("SweepSd accepted bounds [%v, %v]", b[0], b[1])
		}
		if _, err := SweepVolume(s, b[0], b[1], 8); err == nil {
			t.Errorf("SweepVolume accepted bounds [%v, %v]", b[0], b[1])
		}
	}
	for _, b := range [][2]float64{{nan, 0.9}, {0.1, nan}, {0, 0.9}, {0.1, 1.5}} {
		if _, err := SweepYield(s, b[0], b[1], 8); err == nil {
			t.Errorf("SweepYield accepted bounds [%v, %v]", b[0], b[1])
		}
	}
}

// TestSweepSdBelowPole: starting the grid at or below s_d0 is an
// out-of-domain request, not a 500-style internal failure.
func TestSweepSdBelowPole(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	lo := s.DesignCost.Sd0 - 10
	if _, err := SweepSd(s, lo, 2000, 8); !errors.Is(err, ErrOutOfDomain) {
		t.Fatalf("SweepSd(lo below s_d0): err = %v, want ErrOutOfDomain", err)
	}
}

// TestSweepYieldCurve: the 1/Y blow-up must be monotone decreasing in Y
// and every point finite.
func TestSweepYieldCurve(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	pts, err := SweepYield(s, 0.1, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 || pts[0].X != 0.1 || pts[9].X != 1.0 {
		t.Fatalf("grid endpoints wrong: %v .. %v (%d points)", pts[0].X, pts[len(pts)-1].X, len(pts))
	}
	for i, p := range pts {
		if math.IsNaN(p.Breakdown.Total) || math.IsInf(p.Breakdown.Total, 0) {
			t.Fatalf("point %d: non-finite total %v", i, p.Breakdown.Total)
		}
		if i > 0 && !(p.Breakdown.Total < pts[i-1].Breakdown.Total) {
			t.Fatalf("cost did not fall as yield rose: %v -> %v", pts[i-1].Breakdown.Total, p.Breakdown.Total)
		}
	}
}

// TestSweepCtxCancellation: an expired context aborts the sweep with the
// context's error rather than a partial result.
func TestSweepCtxCancellation(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepSdCtx(ctx, s, 200, 2000, 64); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep: err = %v, want context.Canceled", err)
	}
}

// TestMonteCarloRejectsPoisonedDists runs the NaN/Inf table through the
// distribution constructors: validation must catch them before a single
// sample is drawn.
func TestMonteCarloRejectsPoisonedDists(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	base := figure4Scenario(5000, 0.4)
	cases := []struct {
		name string
		u    UncertainScenario
	}{
		{"fixed NaN", UncertainScenario{Base: base, Yield: Fixed(nan)}},
		{"uniform NaN lo", UncertainScenario{Base: base, CmSq: Uniform(nan, 10)}},
		{"uniform NaN hi", UncertainScenario{Base: base, CmSq: Uniform(1, nan)}},
		{"uniform Inf hi", UncertainScenario{Base: base, Sd: Uniform(200, inf)}},
		{"uniform inverted", UncertainScenario{Base: base, Sd: Uniform(400, 200)}},
		{"lognormal NaN median", UncertainScenario{Base: base, CmSq: LogNormal(nan, 1.3)}},
		{"lognormal Inf median", UncertainScenario{Base: base, CmSq: LogNormal(inf, 1.3)}},
		{"lognormal NaN sigma", UncertainScenario{Base: base, CmSq: LogNormal(8, nan)}},
		{"lognormal sigma < 1", UncertainScenario{Base: base, CmSq: LogNormal(8, 0.5)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.u.MonteCarloRun(128, 1, 0); err == nil {
				t.Fatalf("MonteCarloRun accepted %s", c.name)
			}
		})
	}
}

// TestMonteCarloSamplesAllFinite: every accepted sample of a healthy run
// is finite — the engine's promise to the quantile stage.
func TestMonteCarloSamplesAllFinite(t *testing.T) {
	base := figure4Scenario(5000, 0.4)
	u := UncertainScenario{
		Base:  base,
		Yield: Uniform(0.2, 0.9),
		CmSq:  LogNormal(8, 1.3),
		Sd:    Uniform(150, 500),
	}
	run, err := u.MonteCarloRun(2048, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Samples) != 2048 {
		t.Fatalf("got %d samples, want 2048", len(run.Samples))
	}
	for i, v := range run.Samples {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Fatalf("sample %d = %v, want finite positive", i, v)
		}
	}
}

// TestMonteCarloPoleStraddlingDist: an s_d distribution straddling the
// eq (6) pole must report its rejections via Redraws rather than emit
// non-finite costs.
func TestMonteCarloPoleStraddlingDist(t *testing.T) {
	base := figure4Scenario(5000, 0.4)
	u := UncertainScenario{
		Base: base,
		// Half the mass below s_d0 = 100: roughly every second draw is
		// rejected and redrawn.
		Sd: Uniform(0, 200),
	}
	run, err := u.MonteCarloRun(512, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Redraws == 0 {
		t.Fatal("straddling distribution reported zero redraws")
	}
	for i, v := range run.Samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("sample %d = %v leaked past the domain rejection", i, v)
		}
	}
}

// TestOptimalSdErrorMentionsDomain: the optimizer's failure mode on an
// empty domain is a descriptive error, not a panic from the grid search.
func TestOptimalSdDomainError(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	if _, err := OptimalSd(s, s.DesignCost.Sd0/2); err == nil ||
		!strings.Contains(err.Error(), "sdMax") {
		t.Fatalf("OptimalSd with sdMax below s_d0: err = %v, want sdMax domain error", err)
	}
	opt, err := OptimalSd(s, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !(opt.Sd > s.DesignCost.Sd0) || math.IsNaN(opt.Breakdown.Total) {
		t.Fatalf("optimum %+v outside the valid domain", opt)
	}
}
