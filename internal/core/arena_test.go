package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/parallel"
)

func arenaScenarios(n int) []Scenario {
	base := figure4Scenario(5000, 0.4)
	scs := make([]Scenario, n)
	for i := range scs {
		s := base
		s.Design.Sd = 150 + float64(i%100)
		scs[i] = s
	}
	return scs
}

func TestEvalBatchIntoMatchesEvalBatchCtx(t *testing.T) {
	scs := arenaScenarios(257)
	// Sprinkle in failures: error isolation must survive buffer reuse.
	scs[3].Design.Sd = scs[3].DesignCost.Sd0 - 1
	scs[100].Process.Yield = 0
	ctx := context.Background()
	wantB, wantE, stop := EvalBatchCtx(ctx, scs)
	if stop != nil {
		t.Fatal(stop)
	}
	var a BatchArena
	// Two rounds on the same arena: the second must not see the first's
	// residue (stale errors or breakdowns from recycled buffers).
	for round := 0; round < 2; round++ {
		gotB, gotE, stop := a.EvalBatchInto(ctx, scs)
		if stop != nil {
			t.Fatal(stop)
		}
		for i := range scs {
			if (gotE[i] == nil) != (wantE[i] == nil) {
				t.Fatalf("round %d item %d: err %v, want %v", round, i, gotE[i], wantE[i])
			}
			if wantE[i] != nil {
				if gotE[i].Error() != wantE[i].Error() {
					t.Fatalf("round %d item %d: err %q, want %q", round, i, gotE[i], wantE[i])
				}
				continue
			}
			if math.Float64bits(gotB[i].Total) != math.Float64bits(wantB[i].Total) {
				t.Fatalf("round %d item %d: total %x, want %x", round, i, gotB[i].Total, wantB[i].Total)
			}
		}
	}
}

// A shrinking batch on a warm arena must not leak the longer batch's
// tail through the returned slices.
func TestEvalBatchIntoShrinkingBatch(t *testing.T) {
	ctx := context.Background()
	var a BatchArena
	if _, _, err := a.EvalBatchInto(ctx, arenaScenarios(64)); err != nil {
		t.Fatal(err)
	}
	bs, es, err := a.EvalBatchInto(ctx, arenaScenarios(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 5 || len(es) != 5 {
		t.Fatalf("got %d/%d results, want 5/5", len(bs), len(es))
	}
}

// The arena's reason to exist: a warm arena evaluating a full batch must
// allocate nothing per item. With one worker the whole steady-state run
// is a handful of closure allocations; with the default worker count the
// only additional cost is goroutine spawn, still independent of the item
// count.
func TestEvalBatchIntoSteadyStateAllocs(t *testing.T) {
	const n = 1024
	scs := arenaScenarios(n)
	ctx := context.Background()
	var a BatchArena
	check := func(tag string, budgetPerItem float64) {
		t.Helper()
		if _, _, err := a.EvalBatchInto(ctx, scs); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			bs, _, stop := a.EvalBatchInto(ctx, scs)
			if stop != nil || len(bs) != n {
				t.Fatalf("batch failed: %v", stop)
			}
		})
		if perItem := allocs / n; perItem > budgetPerItem {
			t.Fatalf("%s: %.1f allocs per run = %.4f per item, budget %.4f", tag, allocs, perItem, budgetPerItem)
		}
	}
	prev := parallel.DefaultWorkers()
	parallel.SetDefaultWorkers(1)
	check("serial", 0.01) // ~10 allocs per 1024-item run: 0 per item
	parallel.SetDefaultWorkers(prev)
	defer parallel.SetDefaultWorkers(prev)
	check("default-workers", 0.25) // goroutine spawn only, not per-item
}
