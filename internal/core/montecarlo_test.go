package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestDistValidate(t *testing.T) {
	if err := Fixed(3).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Uniform(1, 2).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Uniform(2, 1).Validate(); err == nil {
		t.Fatal("accepted inverted uniform")
	}
	if err := LogNormal(1, 1.3).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := LogNormal(0, 1.3).Validate(); err == nil {
		t.Fatal("accepted zero median")
	}
	if err := LogNormal(1, 0.9).Validate(); err == nil {
		t.Fatal("accepted sigma < 1")
	}
	if err := (Dist{}).Validate(); err == nil {
		t.Fatal("accepted zero-value Dist")
	}
}

func TestDistSampling(t *testing.T) {
	r := stats.NewRNG(3)
	if v := Fixed(7).Sample(r); v != 7 {
		t.Fatalf("Fixed sample = %v", v)
	}
	for i := 0; i < 1000; i++ {
		v := Uniform(2, 5).Sample(r)
		if v < 2 || v >= 5 {
			t.Fatalf("uniform sample %v outside [2,5)", v)
		}
	}
	// Log-normal median ≈ the declared median.
	var vals []float64
	ln := LogNormal(10, 1.5)
	for i := 0; i < 20000; i++ {
		v := ln.Sample(r)
		if v <= 0 {
			t.Fatalf("log-normal sample %v", v)
		}
		vals = append(vals, v)
	}
	s, err := stats.Summarize(vals)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Median-10) > 0.3 {
		t.Fatalf("log-normal median = %v, want ≈10", s.Median)
	}
}

func TestDistSamplePanicsUninitialized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample on zero Dist did not panic")
		}
	}()
	(Dist{}).Sample(stats.NewRNG(1))
}

func TestMonteCarloDegenerateMatchesPoint(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	point, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UncertainScenario{Base: s}.MonteCarlo(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{q.Mean, q.P5, q.P50, q.P95} {
		if math.Abs(v-point.Total) > 1e-15 {
			t.Fatalf("degenerate Monte Carlo %v != point %v", v, point.Total)
		}
	}
	if q.N != 200 {
		t.Fatalf("N = %d", q.N)
	}
}

func TestMonteCarloQuantileOrderingAndSpread(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	u := UncertainScenario{
		Base:  s,
		Yield: Uniform(0.3, 0.9),
		CmSq:  LogNormal(8, 1.4),
		Sd:    Uniform(150, 600),
	}
	q, err := u.MonteCarlo(5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(q.P5 < q.P50 && q.P50 < q.P95) {
		t.Fatalf("quantiles not ordered: %+v", q)
	}
	if q.P95/q.P5 < 1.5 {
		t.Fatalf("spread too tight for these inputs: %+v", q)
	}
	if q.Mean < q.P5 || q.Mean > q.P95 {
		t.Fatalf("mean %v outside central 90%%", q.Mean)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	u := UncertainScenario{Base: s, Yield: Uniform(0.3, 0.9)}
	a, err := u.MonteCarlo(500, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.MonteCarlo(500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed, different quantiles")
	}
}

func TestMonteCarloRedrawsInvalidSamples(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	// Half the s_d mass is below s_d0: those draws must be redrawn, not
	// crash or bias toward failure.
	u := UncertainScenario{Base: s, Sd: Uniform(50, 400)}
	q, err := u.MonteCarlo(500, 13)
	if err != nil {
		t.Fatal(err)
	}
	if q.P5 <= 0 {
		t.Fatalf("quantiles corrupted: %+v", q)
	}
}

func TestMonteCarloHopelessDomainErrors(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	u := UncertainScenario{Base: s, Sd: Uniform(10, 50)} // entirely below s_d0
	if _, err := u.MonteCarlo(10, 1); err == nil {
		t.Fatal("accepted distributions entirely outside the domain")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	if _, err := (UncertainScenario{Base: s}).MonteCarlo(0, 1); err == nil {
		t.Fatal("accepted zero samples")
	}
	bad := UncertainScenario{Base: s, Yield: Uniform(2, 1)}
	if _, err := bad.MonteCarlo(10, 1); err == nil {
		t.Fatal("accepted invalid distribution")
	}
	badBase := figure4Scenario(0, 0.8)
	if _, err := (UncertainScenario{Base: badBase}).MonteCarlo(10, 1); err == nil {
		t.Fatal("accepted invalid base scenario")
	}
}

func TestTornadoOrderingAndDirections(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	bars, err := Tornado(s, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 6 {
		t.Fatalf("bars = %d, want 6", len(bars))
	}
	for i := 1; i < len(bars); i++ {
		if bars[i].Swing() > bars[i-1].Swing() {
			t.Fatal("bars not sorted by swing")
		}
	}
	byName := map[string]TornadoBar{}
	for _, b := range bars {
		byName[b.Name] = b
	}
	// Directions: more yield → cheaper; more λ → dearer; more wafers →
	// cheaper (design amortization); more cm_sq → dearer.
	if byName["yield"].HighCost >= byName["yield"].LowCost {
		t.Fatal("yield direction wrong")
	}
	if byName["lambda"].HighCost <= byName["lambda"].LowCost {
		t.Fatal("lambda direction wrong")
	}
	if byName["wafers"].HighCost >= byName["wafers"].LowCost {
		t.Fatal("wafers direction wrong")
	}
	if byName["cm_sq"].HighCost <= byName["cm_sq"].LowCost {
		t.Fatal("cm_sq direction wrong")
	}
	// λ commands the largest swing: cost is quadratic in it while every
	// other bar moves the cost at most linearly at 20% excursions.
	if bars[0].Name != "lambda" {
		t.Fatalf("largest swing = %q, want lambda", bars[0].Name)
	}
}

func TestTornadoValidation(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	if _, err := Tornado(s, 0); err == nil {
		t.Fatal("accepted zero excursion")
	}
	if _, err := Tornado(s, 1); err == nil {
		t.Fatal("accepted unit excursion")
	}
	bad := figure4Scenario(0, 0.4)
	if _, err := Tornado(bad, 0.2); err == nil {
		t.Fatal("accepted invalid scenario")
	}
}

func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	u := UncertainScenario{
		Base:  s,
		Yield: Uniform(0.3, 0.9),
		CmSq:  LogNormal(8, 1.4),
		Sd:    Uniform(150, 600),
	}
	const n, seed = 10000, 42
	ref, err := u.MonteCarloRun(n, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := u.MonteCarloRun(n, seed, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Redraws != ref.Redraws {
			t.Fatalf("workers=%d: redraws = %d, serial = %d", workers, got.Redraws, ref.Redraws)
		}
		if len(got.Samples) != len(ref.Samples) {
			t.Fatalf("workers=%d: %d samples, serial %d", workers, len(got.Samples), len(ref.Samples))
		}
		for i := range ref.Samples {
			// Bit-identical, not approximately equal.
			if got.Samples[i] != ref.Samples[i] {
				t.Fatalf("workers=%d: sample %d = %x, serial %x", workers, i, got.Samples[i], ref.Samples[i])
			}
		}
	}
}

func TestMonteCarloReportsRedraws(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	// Half the s_d mass sits below s_d0, so a large share of joint draws
	// must be rejected — and that truncation must be visible to callers.
	u := UncertainScenario{Base: s, Sd: Uniform(50, 400)}
	q, err := u.MonteCarlo(2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if q.Redraws == 0 {
		t.Fatal("rejections occurred but Redraws = 0")
	}
	// Acceptance ≈ the fraction of [50,400] above s_d0 (~105): ~84%. The
	// reported redraw share must land in a loose band around 1−p.
	share := float64(q.Redraws) / float64(q.N+q.Redraws)
	if share < 0.05 || share > 0.40 {
		t.Fatalf("redraw share = %v, want ≈0.16", share)
	}
	// A fully in-domain study reports zero redraws.
	clean := UncertainScenario{Base: s, Yield: Uniform(0.5, 0.9)}
	q2, err := clean.MonteCarlo(500, 13)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Redraws != 0 {
		t.Fatalf("in-domain study reports %d redraws", q2.Redraws)
	}
}

func TestMonteCarloSamplesSpanChunkBoundary(t *testing.T) {
	// n above mcChunkSize exercises the multi-chunk path even serially;
	// the sample count must still be exact.
	s := figure4Scenario(5000, 0.8)
	u := UncertainScenario{Base: s, Yield: Uniform(0.3, 0.9)}
	n := mcChunkSize + 17
	samples, err := u.MonteCarloSamples(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != n {
		t.Fatalf("samples = %d, want %d", len(samples), n)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatal("samples not sorted")
		}
	}
}

func TestMCEvaluatorChunkMatchesDrawOnce(t *testing.T) {
	// The chunk evaluator must consume the stream and fold its tally in
	// exactly the scalar reference's order: same accept/reject decisions,
	// same accepted totals, same final stream state. The s_d range
	// straddles s_d0 so the redraw path is exercised too.
	s := figure4Scenario(5000, 0.8)
	u := UncertainScenario{
		Base:  s,
		Yield: Uniform(0.3, 0.9),
		CmSq:  LogNormal(8, 1.4),
		Sd:    Uniform(50, 400),
	}
	e, err := u.Evaluator()
	if err != nil {
		t.Fatal(err)
	}
	const n = 700
	a, b := stats.NewRNG(99), stats.NewRNG(99)
	got, err := e.Chunk(a, n)
	if err != nil {
		t.Fatal(err)
	}
	want := MCChunkTally{Min: math.Inf(1), Max: math.Inf(-1)}
	for i := 0; i < n; i++ {
		for {
			total, accepted := u.drawOnce(b, &e.dists)
			if accepted {
				want.Accepted++
				want.Sum += total
				want.Sum2 += total * total
				want.Min = math.Min(want.Min, total)
				want.Max = math.Max(want.Max, total)
				break
			}
			want.Redraws++
		}
	}
	if got.Accepted != n || got.Accepted != want.Accepted || got.Redraws != want.Redraws {
		t.Fatalf("counts: got %+v, want %+v", got, want)
	}
	for _, pair := range [][2]float64{
		{got.Sum, want.Sum}, {got.Sum2, want.Sum2}, {got.Min, want.Min}, {got.Max, want.Max},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("tally diverged: got %+v, want %+v", got, want)
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("chunk evaluator left the stream in a different state than the scalar path")
	}
}

func TestMCEvaluatorHopelessDomainErrors(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	u := UncertainScenario{Base: s, Sd: Uniform(10, 50)} // entirely below s_d0
	e, err := u.Evaluator()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Chunk(stats.NewRNG(1), 10); err == nil {
		t.Fatal("chunk accepted distributions entirely outside the domain")
	}
}
