package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: over random valid operating points, the eq (4) breakdown is
// internally consistent — components positive, total equal to their sum,
// die cost equal to total × N_tr — and the generalized eq (7) with nil
// functions agrees exactly.
func TestBreakdownConsistencyProperty(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		s := Scenario{
			Process: Process{
				Name:         "p",
				LambdaUM:     0.05 + float64(a%500)/1000, // [0.05, 0.55)
				CostPerCM2:   1 + float64(b%200)/10,      // [1, 21)
				Yield:        0.1 + 0.89*float64(c%1000)/1000,
				WaferAreaCM2: 300,
			},
			Design:     Design{Name: "d", Transistors: 1e6 + float64(d)*1e4, Sd: 150 + float64(a%800)},
			DesignCost: DefaultDesignCostModel(),
			MaskCost:   5e5,
			Wafers:     1000 + float64(b),
		}
		plain, err := s.TransistorCost()
		if err != nil {
			return false
		}
		if plain.Manufacturing <= 0 || plain.DesignAndMask <= 0 {
			return false
		}
		if math.Abs(plain.Total-(plain.Manufacturing+plain.DesignAndMask)) > 1e-15*plain.Total {
			return false
		}
		if math.Abs(plain.DieCost-plain.Total*s.Design.Transistors) > 1e-9*plain.DieCost {
			return false
		}
		gen, err := Generalized{Scenario: s}.TransistorCost()
		if err != nil {
			return false
		}
		return gen.Total == plain.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the located optimum is never beaten by any of 64 probes
// across its search interval.
func TestOptimalSdGlobalProperty(t *testing.T) {
	f := func(c, d uint16) bool {
		s := figure4Scenario(1000+float64(c%50000), 0.2+0.7*float64(d%1000)/1000)
		opt, err := OptimalSd(s, 3000)
		if err != nil {
			return false
		}
		for i := 0; i < 64; i++ {
			sd := 101 + float64(i)/63*(3000-101)
			b, err := s.WithSd(sd).TransistorCost()
			if err != nil {
				return false
			}
			if b.Total < opt.Breakdown.Total*(1-1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Monte Carlo quantiles are ordered and bracket the mean for
// any valid uncertainty setup.
func TestMonteCarloQuantileProperty(t *testing.T) {
	f := func(seed uint64, a uint8) bool {
		s := figure4Scenario(5000, 0.8)
		u := UncertainScenario{
			Base:  s,
			Yield: Uniform(0.3, 0.9),
			Sd:    Uniform(150, 300+float64(a)*2),
		}
		q, err := u.MonteCarlo(300, seed)
		if err != nil {
			return false
		}
		return q.P5 <= q.P50 && q.P50 <= q.P95 &&
			q.Mean >= q.P5*0.9 && q.Mean <= q.P95*1.1 && q.N == 300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Williams–Brown defect level is a probability, falling in
// coverage and rising as yield falls.
func TestDefectLevelProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		y := 0.05 + 0.9*float64(a%1000)/1000
		cov := float64(b%1000) / 1000
		dl, err := DefectLevel(y, cov)
		if err != nil {
			return false
		}
		if dl < 0 || dl > 1 {
			return false
		}
		dl2, err := DefectLevel(y, math.Min(1, cov+0.1))
		if err != nil {
			return false
		}
		return dl2 <= dl+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
