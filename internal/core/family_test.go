package core

import (
	"math"
	"testing"
)

func testFamily() Family {
	return Family{Products: 4, SharedFraction: 0.7, ReuseEfficiency: 0.9}
}

func TestFamilyValidate(t *testing.T) {
	if err := testFamily().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Family{
		{Products: 0, SharedFraction: 0.5, ReuseEfficiency: 0.5},
		{Products: 1, SharedFraction: -0.1, ReuseEfficiency: 0.5},
		{Products: 1, SharedFraction: 1.5, ReuseEfficiency: 0.5},
		{Products: 1, SharedFraction: 0.5, ReuseEfficiency: -0.1},
		{Products: 1, SharedFraction: 0.5, ReuseEfficiency: 1.5},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: invalid family accepted", i)
		}
	}
}

func TestFamilySingleProductIsStandalone(t *testing.T) {
	f := Family{Products: 1, SharedFraction: 0.9, ReuseEfficiency: 0.9}
	got, err := f.DesignCostPerProduct(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("single-product cost = %v, want 100", got)
	}
	m, err := f.EffectiveVolumeMultiplier()
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Fatalf("single-product multiplier = %v, want 1", m)
	}
}

func TestFamilyAmortization(t *testing.T) {
	f := testFamily() // s·e = 0.63
	per, err := f.DesignCostPerProduct(100)
	if err != nil {
		t.Fatal(err)
	}
	// (1 + 3·0.37)/4 = 0.5275 of standalone.
	if math.Abs(per-52.75) > 1e-9 {
		t.Fatalf("per-product = %v, want 52.75", per)
	}
	mult, err := f.EffectiveVolumeMultiplier()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mult-100/52.75) > 1e-9 {
		t.Fatalf("multiplier = %v, want %v (inverse of the cost ratio)", mult, 100/52.75)
	}
	// Saturation: the per-product cost approaches standalone·(1−s·e).
	huge := Family{Products: 10000, SharedFraction: 0.7, ReuseEfficiency: 0.9}
	per, err = huge.DesignCostPerProduct(100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(per-37) > 0.1 {
		t.Fatalf("asymptotic per-product = %v, want ≈37", per)
	}
}

func TestFamilyMonotoneInSize(t *testing.T) {
	prev := math.Inf(1)
	for k := 1; k <= 10; k++ {
		f := Family{Products: k, SharedFraction: 0.7, ReuseEfficiency: 0.9}
		per, err := f.DesignCostPerProduct(100)
		if err != nil {
			t.Fatal(err)
		}
		if per >= prev {
			t.Fatalf("per-product cost not falling at K=%d", k)
		}
		prev = per
	}
}

func TestFamilyNoReuseNoBenefit(t *testing.T) {
	f := Family{Products: 8, SharedFraction: 0.7, ReuseEfficiency: 0}
	per, err := f.DesignCostPerProduct(100)
	if err != nil {
		t.Fatal(err)
	}
	if per != 100 {
		t.Fatalf("zero-efficiency family cost = %v, want 100", per)
	}
}

func TestFamilyTransistorCost(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	solo, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	fam, err := FamilyTransistorCost(s, testFamily())
	if err != nil {
		t.Fatal(err)
	}
	if fam.Total >= solo.Total {
		t.Fatalf("family member cost %v not below standalone %v", fam.Total, solo.Total)
	}
	// Manufacturing share untouched; only the design share shrinks.
	if math.Abs(fam.Manufacturing-solo.Manufacturing) > 1e-18 {
		t.Fatal("family changed the manufacturing share")
	}
	if fam.DesignDE >= solo.DesignDE {
		t.Fatalf("family design cost %v not below standalone %v", fam.DesignDE, solo.DesignDE)
	}
	// Consistency with the amortization formula.
	per, _ := testFamily().DesignCostPerProduct(solo.DesignDE)
	if math.Abs(fam.DesignDE-per) > 1e-6 {
		t.Fatalf("family C_DE = %v, formula %v", fam.DesignDE, per)
	}
}

func TestFamilyTransistorCostValidation(t *testing.T) {
	bad := figure4Scenario(0, 0.8)
	if _, err := FamilyTransistorCost(bad, testFamily()); err == nil {
		t.Fatal("accepted invalid scenario")
	}
	s := figure4Scenario(5000, 0.8)
	if _, err := FamilyTransistorCost(s, Family{}); err == nil {
		t.Fatal("accepted invalid family")
	}
}

func TestFamilyBreakEvenSize(t *testing.T) {
	f := testFamily() // asymptote 0.63
	k, err := f.FamilyBreakEvenSize(0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Verify minimality.
	at := Family{Products: k, SharedFraction: 0.7, ReuseEfficiency: 0.9}
	per, _ := at.DesignCostPerProduct(1)
	if per > 0.6+1e-12 {
		t.Fatalf("K=%d saves only %v", k, 1-per)
	}
	if k > 1 {
		below := Family{Products: k - 1, SharedFraction: 0.7, ReuseEfficiency: 0.9}
		per, _ = below.DesignCostPerProduct(1)
		if per <= 0.6 {
			t.Fatalf("K=%d not minimal", k)
		}
	}
	if _, err := f.FamilyBreakEvenSize(0.63); err == nil {
		t.Fatal("accepted saving at the asymptote")
	}
	if _, err := f.FamilyBreakEvenSize(0); err == nil {
		t.Fatal("accepted zero saving")
	}
}

func TestDesignCostPerProductRejectsNegative(t *testing.T) {
	if _, err := testFamily().DesignCostPerProduct(-1); err == nil {
		t.Fatal("accepted negative standalone cost")
	}
}
