package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The paper's eq (3): manufacturing cost of one functioning transistor.
func ExampleManufacturingCostPerTransistor() {
	process := core.Process{
		Name:         "cmos-180nm",
		LambdaUM:     0.18,
		CostPerCM2:   8.0,
		Yield:        0.8,
		WaferAreaCM2: 300,
	}
	design := core.Design{Name: "mpu", Transistors: 10e6, Sd: 300}
	ctr, err := core.ManufacturingCostPerTransistor(process, design)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("C_tr = $%.3g, die = $%.2f\n", ctr, ctr*design.Transistors)
	// Output:
	// C_tr = $9.72e-07, die = $9.72
}

// Eq (2) inverted: extract s_d from a published die, exactly as Table A1
// was built (row 4, the Pentium P54C).
func ExampleSdFromLayout() {
	sd, err := core.SdFromLayout(1.48, 3.1e6, 0.6)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("s_d = %.1f squares/transistor\n", sd)
	// Output:
	// s_d = 132.6 squares/transistor
}

// Eq (6) with the paper's published constants.
func ExampleDesignCostModel_Cost() {
	m := core.DefaultDesignCostModel()
	cde, err := m.Cost(10e6, 300)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("C_DE = $%.1fM at s_d = 300\n", cde/1e6)
	// Output:
	// C_DE = $17.3M at s_d = 300
}

// §3.1: the cost-optimal density moves with volume.
func ExampleOptimalSd() {
	s := core.Scenario{
		Process: core.Process{
			Name: "node", LambdaUM: 0.18, CostPerCM2: 8, Yield: 0.8, WaferAreaCM2: 300,
		},
		Design:     core.Design{Name: "d", Transistors: 10e6, Sd: 300},
		DesignCost: core.DefaultDesignCostModel(),
		MaskCost:   1e6,
		Wafers:     5000,
	}
	low, err := core.OptimalSd(s, 2000)
	if err != nil {
		fmt.Println(err)
		return
	}
	high, err := core.OptimalSd(s.WithWafers(100000), 2000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("optimal s_d: %.0f at 5k wafers, %.0f at 100k wafers\n", low.Sd, high.Sd)
	// Output:
	// optimal s_d: 307 at 5k wafers, 150 at 100k wafers
}

// The Williams–Brown shipped-defect level behind X-22.
func ExampleDefectLevel() {
	dl, err := core.DefectLevel(0.5, 0.99)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.0f DPM at 99%% coverage, 50%% yield\n", dl*1e6)
	// Output:
	// 6908 DPM at 99% coverage, 50% yield
}
