package core

import (
	"context"
	"math"

	"repro/internal/parallel"
)

// This file holds the vectorized flat-buffer evaluation kernels behind the
// sweep and optimization hot paths. The per-point path (Scenario.
// TransistorCost) re-validates the whole scenario and re-derives every
// invariant on each call; a sweep varies exactly one axis, so everything
// else can be hoisted out of the loop once. The kernels do that hoisting
// with one hard rule: every floating-point operation that still runs per
// point keeps the exact shape and association order of the scalar path,
// so kernel outputs are bit-identical to TransistorCost — the golden
// tests, the streamed/buffered equivalence and the batch byte-identity
// contracts all lean on that.
//
// Rare per-point failures (an eq (6) overflow past float range) fall back
// to the scalar path for that point, so error text stays byte-identical
// too.

// sweepUnitChunk is the unit chunk of the sweep kernels' parallel
// dispatch: the determinism granularity. Task sizes are tuned adaptively
// in multiples of it (parallel.ChunkTuner); the numbers cannot depend on
// either value because every point only reads its own abscissa.
const sweepUnitChunk = 16

// sweepTuner adapts sweep task granularity from measured point cost.
var sweepTuner parallel.ChunkTuner

// sdKernel evaluates the s_d axis: everything but the decompression index
// is hoisted.
type sdKernel struct {
	s    Scenario // for the scalar fallback only
	pn   float64  // A0 · N_tr^p1, the eq (6) numerator
	sd0  float64
	p2   float64
	mask float64 // C_MA
	wa   float64 // N_w · A_w, the eq (5) denominator
	l2   float64 // λ² in cm²
	uy   float64 // u · Y
	cmsq float64
	ntr  float64
	nl2  float64 // N_tr · λ², the die-area factor
}

func newSdKernel(s Scenario) sdKernel {
	return sdKernel{
		s:    s,
		pn:   s.DesignCost.A0 * math.Pow(s.Design.Transistors, s.DesignCost.P1),
		sd0:  s.DesignCost.Sd0,
		p2:   s.DesignCost.P2,
		mask: s.MaskCost,
		wa:   s.Wafers * s.Process.WaferAreaCM2,
		l2:   LambdaSquaredCM2(s.Process.LambdaUM),
		uy:   s.utilization() * s.Process.Yield,
		cmsq: s.Process.CostPerCM2,
		ntr:  s.Design.Transistors,
		nl2:  s.Design.Transistors * LambdaSquaredCM2(s.Process.LambdaUM),
	}
}

// eval computes the full breakdown at one s_d > sd0. The association
// order of every expression mirrors the scalar path exactly.
func (k *sdKernel) eval(sd float64) (Breakdown, error) {
	cde := k.pn / math.Pow(sd-k.sd0, k.p2)
	if !finiteNonNeg(cde) {
		// Overflow past float range: take the scalar path so the caller
		// sees the identical error.
		return k.s.WithSd(sd).TransistorCost()
	}
	cdsq := (k.mask + cde) / k.wa
	geom := k.l2 * sd / k.uy
	b := Breakdown{
		Manufacturing: geom * k.cmsq,
		DesignAndMask: geom * cdsq,
		CmSq:          k.cmsq,
		CdSq:          cdsq,
		DesignDE:      cde,
		DieArea:       k.nl2 * sd,
	}
	b.Total = b.Manufacturing + b.DesignAndMask
	b.DieCost = b.Total * k.ntr
	return b, nil
}

// total is the fused yield→cost pass of the argmin grid: only the eq (4)
// total, +Inf where the scalar objective would have errored — exactly the
// value OptimalSd's scalar objective returns there.
func (k *sdKernel) total(sd float64) float64 {
	cde := k.pn / math.Pow(sd-k.sd0, k.p2)
	if !finiteNonNeg(cde) {
		return math.Inf(1)
	}
	cdsq := (k.mask + cde) / k.wa
	geom := k.l2 * sd / k.uy
	return geom*k.cmsq + geom*cdsq
}

// volumeKernel evaluates the N_w axis: the eq (6) design cost and the
// geometric factor are both volume-independent, so only eq (5) and the
// design-and-mask share run per point.
type volumeKernel struct {
	mc   float64 // C_MA + C_DE
	aw   float64 // A_w
	geom float64 // λ²·s_d/(u·Y)
	man  float64 // geom · Cm_sq
	cmsq float64
	cde  float64
	area float64 // die area, volume-independent
	ntr  float64
}

func newVolumeKernel(s Scenario) (volumeKernel, error) {
	cde, err := s.DesignCost.Cost(s.Design.Transistors, s.Design.Sd)
	if err != nil {
		return volumeKernel{}, err
	}
	l2 := LambdaSquaredCM2(s.Process.LambdaUM)
	geom := l2 * s.Design.Sd / (s.utilization() * s.Process.Yield)
	area, err := s.Design.AreaCM2(s.Process.LambdaUM)
	if err != nil {
		return volumeKernel{}, err
	}
	return volumeKernel{
		mc:   s.MaskCost + cde,
		aw:   s.Process.WaferAreaCM2,
		geom: geom,
		man:  geom * s.Process.CostPerCM2,
		cmsq: s.Process.CostPerCM2,
		cde:  cde,
		area: area,
		ntr:  s.Design.Transistors,
	}, nil
}

func (k *volumeKernel) eval(w float64) Breakdown {
	cdsq := k.mc / (w * k.aw)
	b := Breakdown{
		Manufacturing: k.man,
		DesignAndMask: k.geom * cdsq,
		CmSq:          k.cmsq,
		CdSq:          cdsq,
		DesignDE:      k.cde,
		DieArea:       k.area,
	}
	b.Total = b.Manufacturing + b.DesignAndMask
	b.DieCost = b.Total * k.ntr
	return b
}

// yieldKernel evaluates the Y axis: eq (5)–(6) are yield-independent, so
// only the geometric factor runs per point.
type yieldKernel struct {
	l2sd float64 // λ²·s_d
	u    float64
	cmsq float64
	cdsq float64
	cde  float64
	area float64
	ntr  float64
}

func newYieldKernel(s Scenario) (yieldKernel, error) {
	cde, err := s.DesignCost.Cost(s.Design.Transistors, s.Design.Sd)
	if err != nil {
		return yieldKernel{}, err
	}
	cdsq, err := DesignCostPerCM2(s.MaskCost, cde, s.Wafers, s.Process.WaferAreaCM2)
	if err != nil {
		return yieldKernel{}, err
	}
	area, err := s.Design.AreaCM2(s.Process.LambdaUM)
	if err != nil {
		return yieldKernel{}, err
	}
	return yieldKernel{
		l2sd: LambdaSquaredCM2(s.Process.LambdaUM) * s.Design.Sd,
		u:    s.utilization(),
		cmsq: s.Process.CostPerCM2,
		cdsq: cdsq,
		cde:  cde,
		area: area,
		ntr:  s.Design.Transistors,
	}, nil
}

func (k *yieldKernel) eval(y float64) Breakdown {
	geom := k.l2sd / (k.u * y)
	b := Breakdown{
		Manufacturing: geom * k.cmsq,
		DesignAndMask: geom * k.cdsq,
		CmSq:          k.cmsq,
		CdSq:          k.cdsq,
		DesignDE:      k.cde,
		DieArea:       k.area,
	}
	b.Total = b.Manufacturing + b.DesignAndMask
	b.DieCost = b.Total * k.ntr
	return b
}

// sweepKernelFor builds the per-point evaluator of a sweep axis with its
// invariants hoisted. The returned function must be pure: the parallel
// dispatch calls it concurrently.
func sweepKernelFor(s Scenario, axis sweepAxis) (func(float64) (Breakdown, error), error) {
	switch axis {
	case axisSd:
		k := newSdKernel(s)
		return k.eval, nil
	case axisVolume:
		k, err := newVolumeKernel(s)
		if err != nil {
			return nil, err
		}
		return func(w float64) (Breakdown, error) { return k.eval(w), nil }, nil
	default:
		k, err := newYieldKernel(s)
		if err != nil {
			return nil, err
		}
		return func(y float64) (Breakdown, error) { return k.eval(y), nil }, nil
	}
}

type sweepAxis int

const (
	axisSd sweepAxis = iota
	axisVolume
	axisYield
)

// sweepEvalKernel fans a flat abscissa buffer out over the worker pool in
// tuner-sized chunk groups and writes breakdowns into index-addressed
// slots of a flat result buffer. Output is byte-identical for every
// worker count and every task grouping because point i reads only xs[i].
func sweepEvalKernel(ctx context.Context, xs []float64, eval func(float64) (Breakdown, error)) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(xs))
	err := parallel.ForEachChunkTuned(ctx, len(xs), sweepUnitChunk, 0, &sweepTuner, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			b, err := eval(xs[i])
			if err != nil {
				return err
			}
			out[i] = SweepPoint{X: xs[i], Breakdown: b}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
