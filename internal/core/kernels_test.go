package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/stats"
)

// The kernels' single contract: bit-identical to the scalar path. Every
// test here compares raw float bits, never approximate equality.

func kernelScenarios() []Scenario {
	plain := figure4Scenario(5000, 0.4)
	util := plain
	util.Utilization = 0.31
	steep := plain
	steep.DesignCost = DesignCostModel{A0: 2.5e6, P1: 0.7, P2: 2.3, Sd0: 140}
	steep.Design.Sd = 220
	return []Scenario{plain, util, steep}
}

func breakdownsIdentical(a, b Breakdown) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return eq(a.Manufacturing, b.Manufacturing) && eq(a.DesignAndMask, b.DesignAndMask) &&
		eq(a.Total, b.Total) && eq(a.CmSq, b.CmSq) && eq(a.CdSq, b.CdSq) &&
		eq(a.DieArea, b.DieArea) && eq(a.DieCost, b.DieCost) && eq(a.DesignDE, b.DesignDE)
}

func TestSdKernelMatchesScalar(t *testing.T) {
	for si, s := range kernelScenarios() {
		k := newSdKernel(s)
		sd0 := s.DesignCost.Sd0
		xs := []float64{sd0 * (1 + 1e-9), sd0 + 0.5, sd0 + 7, 300, 1234.5678, 1e6, 1e150}
		for _, sd := range xs {
			want, werr := s.WithSd(sd).TransistorCost()
			got, gerr := k.eval(sd)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("scenario %d sd=%v: kernel err %v, scalar err %v", si, sd, gerr, werr)
			}
			if werr != nil {
				if gerr.Error() != werr.Error() {
					t.Fatalf("scenario %d sd=%v: kernel err %q, scalar err %q", si, sd, gerr, werr)
				}
				continue
			}
			if !breakdownsIdentical(got, want) {
				t.Fatalf("scenario %d sd=%v: kernel %+v, scalar %+v", si, sd, got, want)
			}
		}
	}
}

// An eq (6) overflow (s_d a hair above the pole) must surface the exact
// scalar error through the kernel's fallback path.
func TestSdKernelOverflowFallsBackToScalarError(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	k := newSdKernel(s)
	sd := s.DesignCost.Sd0 + 1e-260
	_, werr := s.WithSd(sd).TransistorCost()
	_, gerr := k.eval(sd)
	if werr == nil || gerr == nil {
		t.Fatalf("expected overflow errors, got kernel %v scalar %v", gerr, werr)
	}
	if gerr.Error() != werr.Error() {
		t.Fatalf("kernel err %q, scalar err %q", gerr, werr)
	}
}

func TestSdKernelTotalMatchesScalarObjective(t *testing.T) {
	for si, s := range kernelScenarios() {
		k := newSdKernel(s)
		sd0 := s.DesignCost.Sd0
		xs := []float64{sd0 - 1, sd0, sd0 + 1e-260, sd0 * (1 + 1e-9), sd0 + 3, 450, 9e5}
		for _, sd := range xs {
			want := math.Inf(1)
			if b, err := s.WithSd(sd).TransistorCost(); err == nil {
				want = b.Total
			}
			got := k.total(sd)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("scenario %d sd=%v: fused total %x, scalar objective %x", si, sd, got, want)
			}
		}
	}
}

func TestVolumeKernelMatchesScalar(t *testing.T) {
	for si, s := range kernelScenarios() {
		k, err := newVolumeKernel(s)
		if err != nil {
			t.Fatalf("scenario %d: %v", si, err)
		}
		for _, w := range []float64{1, 17.5, 5000, 1e9} {
			want, werr := s.WithWafers(w).TransistorCost()
			if werr != nil {
				t.Fatalf("scenario %d w=%v: %v", si, w, werr)
			}
			if got := k.eval(w); !breakdownsIdentical(got, want) {
				t.Fatalf("scenario %d w=%v: kernel %+v, scalar %+v", si, w, got, want)
			}
		}
	}
}

func TestYieldKernelMatchesScalar(t *testing.T) {
	for si, s := range kernelScenarios() {
		k, err := newYieldKernel(s)
		if err != nil {
			t.Fatalf("scenario %d: %v", si, err)
		}
		for _, y := range []float64{1e-6, 0.123456, 0.5, 0.999, 1} {
			want, werr := s.WithYield(y).TransistorCost()
			if werr != nil {
				t.Fatalf("scenario %d y=%v: %v", si, y, werr)
			}
			if got := k.eval(y); !breakdownsIdentical(got, want) {
				t.Fatalf("scenario %d y=%v: kernel %+v, scalar %+v", si, y, got, want)
			}
		}
	}
}

// mcKernel.draw must agree with drawOnce on every draw: same RNG
// consumption, same accept/reject decision, bit-identical accepted total.
func TestMCKernelMatchesDrawOnce(t *testing.T) {
	base := figure4Scenario(5000, 0.8)
	cases := []UncertainScenario{
		// Well-behaved distributions: near-universal acceptance.
		{Base: base, Yield: Uniform(0.3, 0.9), CmSq: LogNormal(8, 1.4), Sd: Uniform(150, 600)},
		// Rejection-heavy: every sampled axis strays outside the domain.
		{
			Base:     base,
			Yield:    Uniform(-0.5, 1.5),
			CmSq:     Uniform(-2, 10),
			Sd:       Uniform(50, 400),
			Wafers:   Uniform(-100, 8000),
			MaskCost: Uniform(-1e5, 2e6),
		},
		// All-fixed: no RNG consumption at all.
		{Base: base},
	}
	for ci, u := range cases {
		dists := [5]Dist{
			orFixed(u.Yield, u.Base.Process.Yield),
			orFixed(u.CmSq, u.Base.Process.CostPerCM2),
			orFixed(u.Sd, u.Base.Design.Sd),
			orFixed(u.Wafers, u.Base.Wafers),
			orFixed(u.MaskCost, u.Base.MaskCost),
		}
		k := newMCKernel(u.Base)
		rRef := stats.NewRNG(97)
		rFast := stats.NewRNG(97)
		accepted, rejected := 0, 0
		for i := 0; i < 20000; i++ {
			wantTotal, wantOK := u.drawOnce(rRef, &dists)
			gotTotal, gotOK := k.draw(rFast, &dists)
			if wantOK != gotOK {
				t.Fatalf("case %d draw %d: kernel ok=%v, scalar ok=%v", ci, i, gotOK, wantOK)
			}
			if wantOK {
				accepted++
				if math.Float64bits(gotTotal) != math.Float64bits(wantTotal) {
					t.Fatalf("case %d draw %d: kernel total %x, scalar %x", ci, i, gotTotal, wantTotal)
				}
			} else {
				rejected++
			}
		}
		if accepted == 0 {
			t.Fatalf("case %d: no draw accepted — equivalence untested on the accept path", ci)
		}
		if ci == 1 && rejected == 0 {
			t.Fatal("rejection-heavy case rejected nothing — equivalence untested on the reject path")
		}
	}
}

// The tuner regimes below force the three groupings a tuner can land in:
// cold (seeded from the histogram), heavy chunks (group 1), light chunks
// (maximal grouping). Output must be byte-identical in all of them.
func TestSweepsDeterministicAcrossTunerRegimes(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	regimes := []struct {
		name  string
		apply func()
	}{
		{"cold", func() { sweepTuner.Reset() }},
		{"heavy", func() { sweepTuner.Reset(); sweepTuner.Observe(1, 10e-3) }},
		{"light", func() { sweepTuner.Reset(); sweepTuner.Observe(100000, 1e-3) }},
	}
	type run struct{ sd, vol, yld []SweepPoint }
	eval := func() run {
		ctx := context.Background()
		sd, err := SweepSdCtx(ctx, s, 150, 2000, 801)
		if err != nil {
			t.Fatal(err)
		}
		vol, err := SweepVolumeCtx(ctx, s, 100, 1e6, 801)
		if err != nil {
			t.Fatal(err)
		}
		yld, err := SweepYieldCtx(ctx, s, 0.05, 1, 801)
		if err != nil {
			t.Fatal(err)
		}
		return run{sd, vol, yld}
	}
	regimes[0].apply()
	ref := eval()
	defer sweepTuner.Reset()
	for _, rg := range regimes {
		rg.apply()
		got := eval()
		check := func(axis string, got, want []SweepPoint) {
			if len(got) != len(want) {
				t.Fatalf("%s regime %s: %d points, want %d", axis, rg.name, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i].X) != math.Float64bits(want[i].X) ||
					!breakdownsIdentical(got[i].Breakdown, want[i].Breakdown) {
					t.Fatalf("%s regime %s: point %d differs: %+v vs %+v", axis, rg.name, i, got[i], want[i])
				}
			}
		}
		check("sd", got.sd, ref.sd)
		check("volume", got.vol, ref.vol)
		check("yield", got.yld, ref.yld)
	}
}

func TestMonteCarloDeterministicAcrossWorkersAndTunerRegimes(t *testing.T) {
	s := figure4Scenario(5000, 0.8)
	u := UncertainScenario{
		Base:  s,
		Yield: Uniform(0.3, 0.9),
		CmSq:  LogNormal(8, 1.4),
		Sd:    Uniform(150, 600),
	}
	const n, seed = 20000, 42
	mcTuner.Reset()
	ref, err := u.MonteCarloRun(n, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer mcTuner.Reset()
	regimes := []struct {
		name  string
		apply func()
	}{
		{"cold", func() { mcTuner.Reset() }},
		{"heavy", func() { mcTuner.Reset(); mcTuner.Observe(1, 10e-3) }},
		{"light", func() { mcTuner.Reset(); mcTuner.Observe(100000, 1e-3) }},
	}
	for _, rg := range regimes {
		for _, workers := range []int{1, 2, 4} {
			rg.apply()
			got, err := u.MonteCarloRun(n, seed, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Redraws != ref.Redraws {
				t.Fatalf("regime %s workers %d: redraws %d, want %d", rg.name, workers, got.Redraws, ref.Redraws)
			}
			for i := range ref.Samples {
				if math.Float64bits(got.Samples[i]) != math.Float64bits(ref.Samples[i]) {
					t.Fatalf("regime %s workers %d: sample %d = %x, want %x",
						rg.name, workers, i, got.Samples[i], ref.Samples[i])
				}
			}
		}
	}
}
