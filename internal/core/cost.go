package core

import (
	"errors"
	"fmt"
)

// Process bundles the process-dependent characteristics of eq (3): minimum
// feature size λ, the manufacturing cost per cm² of fabricated wafer
// Cm_sq, and a default line yield Y. WaferAreaCM2 is the usable wafer area
// A_w that amortizes mask and design cost in eq (5).
type Process struct {
	Name         string
	LambdaUM     float64 // minimum feature size λ, µm
	CostPerCM2   float64 // Cm_sq, $/cm² of fabricated wafer
	Yield        float64 // default manufacturing yield Y in (0, 1]
	WaferAreaCM2 float64 // usable wafer area A_w, cm²
	MetalLayers  int     // informational; drives mask-count defaults elsewhere
}

// Validate reports the first invalid field of p, or nil.
func (p Process) Validate() error {
	switch {
	case !finitePos(p.LambdaUM):
		return fmt.Errorf("core: process %q: feature size must be positive and finite, got %v µm", p.Name, p.LambdaUM)
	case !finitePos(p.CostPerCM2):
		return fmt.Errorf("core: process %q: cost per cm² must be positive and finite, got %v", p.Name, p.CostPerCM2)
	case !validYield(p.Yield):
		return fmt.Errorf("core: process %q: yield must be in (0,1], got %v", p.Name, p.Yield)
	case !finitePos(p.WaferAreaCM2):
		return fmt.Errorf("core: process %q: wafer area must be positive and finite, got %v cm²", p.Name, p.WaferAreaCM2)
	}
	return nil
}

// Design bundles the process-independent design attributes of eq (2)–(3):
// transistor count and design decompression index.
type Design struct {
	Name        string
	Transistors float64 // N_tr
	Sd          float64 // s_d, λ² squares per transistor
}

// Validate reports the first invalid field of d, or nil.
func (d Design) Validate() error {
	switch {
	case !finitePos(d.Transistors):
		return fmt.Errorf("core: design %q: transistor count must be positive and finite, got %v", d.Name, d.Transistors)
	case !finitePos(d.Sd):
		return fmt.Errorf("core: design %q: s_d must be positive and finite, got %v", d.Name, d.Sd)
	}
	return nil
}

// AreaCM2 returns the die area A_ch implied by the design on process
// feature size lambdaUM, per eq (2).
func (d Design) AreaCM2(lambdaUM float64) (float64, error) {
	return DieArea(d.Transistors, lambdaUM, d.Sd)
}

// ManufacturingCostPerTransistor evaluates eq (3):
//
//	C_tr = Cm_sq · λ² · s_d / Y
//
// with λ taken from the process and s_d from the design. The result is
// dollars per functioning transistor, counting manufacturing only.
func ManufacturingCostPerTransistor(p Process, d Design) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	return p.CostPerCM2 * LambdaSquaredCM2(p.LambdaUM) * d.Sd / p.Yield, nil
}

// CostPerTransistorFromWafer evaluates eq (1) directly:
//
//	C_tr = C_w / (N_tr · N_ch · Y)
//
// where waferCost is the fabrication cost of a wafer C_w, transistors is
// N_tr per chip, chipsPerWafer is N_ch, and yield is Y. It exists so that
// the wafer-geometry substrate (internal/wafer) and the fab-cost substrate
// (internal/fab) can feed the cost model without going through the per-cm²
// abstraction.
func CostPerTransistorFromWafer(waferCost, transistors float64, chipsPerWafer int, yield float64) (float64, error) {
	if !finitePos(waferCost) {
		return 0, fmt.Errorf("core: wafer cost must be positive and finite, got %v", waferCost)
	}
	if !finitePos(transistors) {
		return 0, fmt.Errorf("core: transistor count must be positive and finite, got %v", transistors)
	}
	if chipsPerWafer <= 0 {
		return 0, fmt.Errorf("core: chips per wafer must be positive, got %d", chipsPerWafer)
	}
	if !validYield(yield) {
		return 0, fmt.Errorf("core: yield must be in (0,1], got %v", yield)
	}
	return waferCost / (transistors * float64(chipsPerWafer) * yield), nil
}

// DieManufacturingCost returns the manufacturing cost of one functioning
// die: C_ch = C_tr · N_tr with C_tr from eq (3).
func DieManufacturingCost(p Process, d Design) (float64, error) {
	ctr, err := ManufacturingCostPerTransistor(p, d)
	if err != nil {
		return 0, err
	}
	return ctr * d.Transistors, nil
}

// RequiredSdForDieCost inverts eq (3) at the die level: it returns the
// s_d needed so that the manufacturing cost of a die with the given
// transistor count equals targetDieCost on the given process. This is the
// Figure 3 computation (constant $34 MPU die).
//
//	s_d = targetDieCost · Y / (Cm_sq · λ² · N_tr)
func RequiredSdForDieCost(targetDieCost float64, p Process, transistors float64) (float64, error) {
	if targetDieCost <= 0 {
		return 0, fmt.Errorf("core: target die cost must be positive, got %v", targetDieCost)
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if transistors <= 0 {
		return 0, errors.New("core: transistor count must be positive")
	}
	return targetDieCost * p.Yield / (p.CostPerCM2 * LambdaSquaredCM2(p.LambdaUM) * transistors), nil
}
