package core

import (
	"math"
	"testing"
	"testing/quick"
)

func testProcess() Process {
	return Process{
		Name:         "cmos180",
		LambdaUM:     0.18,
		CostPerCM2:   8.0,
		Yield:        0.8,
		WaferAreaCM2: 300,
		MetalLayers:  6,
	}
}

func testDesign() Design {
	return Design{Name: "mpu", Transistors: 10e6, Sd: 300}
}

func TestTransistorDensity(t *testing.T) {
	// λ = 1 µm = 1e-4 cm, s_d = 100 → T_d = 1/(1e-8 · 100) = 1e6 per cm².
	d, err := TransistorDensity(1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 1e6, 1e-6) {
		t.Fatalf("density = %v, want 1e6", d)
	}
}

func TestTransistorDensityErrors(t *testing.T) {
	if _, err := TransistorDensity(0, 100); err == nil {
		t.Fatal("accepted zero feature size")
	}
	if _, err := TransistorDensity(1, 0); err == nil {
		t.Fatal("accepted zero s_d")
	}
}

func TestSdFromDensityRoundTrip(t *testing.T) {
	for _, sd := range []float64{30, 100, 300, 765} {
		for _, lam := range []float64{0.1, 0.18, 0.35, 1.5} {
			d, err := TransistorDensity(lam, sd)
			if err != nil {
				t.Fatal(err)
			}
			back, err := SdFromDensity(d, lam)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(back, sd, 1e-9) {
				t.Fatalf("round trip s_d %v → %v (λ=%v)", sd, back, lam)
			}
		}
	}
}

func TestSdFromLayoutMatchesTableA1Row(t *testing.T) {
	// Table A1 row 4: Pentium P54C, 1.48 cm², 0.6 µm, 3.1 M transistors,
	// s_d = 132.6.
	sd, err := SdFromLayout(1.48, 3.1e6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-132.6) > 0.5 {
		t.Fatalf("s_d = %v, want ≈132.6 (Table A1 row 4)", sd)
	}
}

func TestDieAreaInvertsLayout(t *testing.T) {
	area, err := DieArea(3.1e6, 0.6, 132.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(area-1.48) > 0.01 {
		t.Fatalf("area = %v, want ≈1.48 cm²", area)
	}
}

func TestDesignDensityInverse(t *testing.T) {
	dd, err := DesignDensity(200)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(dd, 0.005, 1e-12) {
		t.Fatalf("d_d = %v, want 0.005", dd)
	}
	if _, err := DesignDensity(0); err == nil {
		t.Fatal("accepted zero s_d")
	}
}

func TestManufacturingCostEq3(t *testing.T) {
	p := testProcess()
	d := testDesign()
	// C_tr = 8 · (0.18e-4)² · 300 / 0.8
	want := 8.0 * math.Pow(0.18e-4, 2) * 300 / 0.8
	got, err := ManufacturingCostPerTransistor(p, d)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, want, 1e-15) {
		t.Fatalf("C_tr = %v, want %v", got, want)
	}
}

func TestManufacturingCostValidation(t *testing.T) {
	p := testProcess()
	d := testDesign()
	bad := p
	bad.Yield = 0
	if _, err := ManufacturingCostPerTransistor(bad, d); err == nil {
		t.Fatal("accepted zero yield")
	}
	bad = p
	bad.Yield = 1.5
	if _, err := ManufacturingCostPerTransistor(bad, d); err == nil {
		t.Fatal("accepted yield > 1")
	}
	badD := d
	badD.Transistors = -1
	if _, err := ManufacturingCostPerTransistor(p, badD); err == nil {
		t.Fatal("accepted negative transistor count")
	}
}

func TestEq1MatchesEq3(t *testing.T) {
	// Pricing via wafers (eq 1) must agree with pricing via cm² (eq 3)
	// when the wafer cost is CostPerCM2 · waferArea and the wafer holds
	// exactly waferArea/dieArea chips.
	p := testProcess()
	d := testDesign()
	area, err := d.AreaCM2(p.LambdaUM)
	if err != nil {
		t.Fatal(err)
	}
	chips := int(p.WaferAreaCM2 / area)
	waferCost := p.CostPerCM2 * float64(chips) * area // charge only the used area
	eq1, err := CostPerTransistorFromWafer(waferCost, d.Transistors, chips, p.Yield)
	if err != nil {
		t.Fatal(err)
	}
	eq3, err := ManufacturingCostPerTransistor(p, d)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(eq1, eq3, 1e-9) {
		t.Fatalf("eq (1) = %v, eq (3) = %v", eq1, eq3)
	}
}

func TestCostPerTransistorFromWaferValidation(t *testing.T) {
	if _, err := CostPerTransistorFromWafer(0, 1e6, 100, 0.8); err == nil {
		t.Fatal("accepted zero wafer cost")
	}
	if _, err := CostPerTransistorFromWafer(1000, 0, 100, 0.8); err == nil {
		t.Fatal("accepted zero transistors")
	}
	if _, err := CostPerTransistorFromWafer(1000, 1e6, 0, 0.8); err == nil {
		t.Fatal("accepted zero chips")
	}
	if _, err := CostPerTransistorFromWafer(1000, 1e6, 100, 0); err == nil {
		t.Fatal("accepted zero yield")
	}
}

func TestDieManufacturingCost(t *testing.T) {
	p := testProcess()
	d := testDesign()
	ctr, err := ManufacturingCostPerTransistor(p, d)
	if err != nil {
		t.Fatal(err)
	}
	die, err := DieManufacturingCost(p, d)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(die, ctr*d.Transistors, 1e-12) {
		t.Fatalf("die cost = %v, want %v", die, ctr*d.Transistors)
	}
}

func TestRequiredSdForDieCostPaperConstants(t *testing.T) {
	// Figure 3 setup: C_ch = $34, C_sq = 8 $/cm², Y = 0.8. For a 1999-ish
	// node, λ = 0.18 µm with 24 M transistors:
	// s_d = 34·0.8/(8·(0.18e-4)²·24e6).
	p := Process{Name: "itrs99", LambdaUM: 0.18, CostPerCM2: 8, Yield: 0.8, WaferAreaCM2: 300}
	sd, err := RequiredSdForDieCost(34, p, 24e6)
	if err != nil {
		t.Fatal(err)
	}
	want := 34.0 * 0.8 / (8 * math.Pow(0.18e-4, 2) * 24e6)
	if !almost(sd, want, 1e-9) {
		t.Fatalf("required s_d = %v, want %v", sd, want)
	}
	// Sanity: the required density is a few hundred squares/transistor.
	if sd < 100 || sd > 1000 {
		t.Fatalf("required s_d = %v out of plausible range", sd)
	}
}

func TestRequiredSdConsistentWithDieCost(t *testing.T) {
	// Building a design with the required s_d must hit the target cost.
	p := testProcess()
	sd, err := RequiredSdForDieCost(34, p, 24e6)
	if err != nil {
		t.Fatal(err)
	}
	die, err := DieManufacturingCost(p, Design{Name: "x", Transistors: 24e6, Sd: sd})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(die, 34, 1e-9) {
		t.Fatalf("die cost at required s_d = %v, want 34", die)
	}
}

// Property: eq (3) cost is strictly increasing in s_d and λ and strictly
// decreasing in Y over valid ranges.
func TestManufacturingCostMonotonicityProperty(t *testing.T) {
	f := func(a, b, c uint32) bool {
		sd := 30 + float64(a%100000)/100   // [30, 1030)
		lam := 0.05 + float64(b%1000)/1000 // [0.05, 1.05)
		y := 0.1 + 0.8*float64(c%1000)/1000
		p := Process{Name: "p", LambdaUM: lam, CostPerCM2: 8, Yield: y, WaferAreaCM2: 300}
		d := Design{Name: "d", Transistors: 1e7, Sd: sd}
		base, err := ManufacturingCostPerTransistor(p, d)
		if err != nil {
			return false
		}
		d2 := d
		d2.Sd = sd * 1.1
		up, err := ManufacturingCostPerTransistor(p, d2)
		if err != nil || up <= base {
			return false
		}
		p2 := p
		p2.LambdaUM = lam * 1.1
		up, err = ManufacturingCostPerTransistor(p2, d)
		if err != nil || up <= base {
			return false
		}
		p3 := p
		p3.Yield = math.Min(1, y*1.1)
		dn, err := ManufacturingCostPerTransistor(p3, d)
		if err != nil || dn >= base {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
