package core

import (
	"errors"
	"math"
)

// ErrOutOfDomain tags errors raised when a parameter lies outside the
// mathematical domain of one of the paper's models — most prominently the
// eq (6) pole at s_d ≤ s_d0, where the design cost diverges and any
// numeric answer would be Inf, NaN or negative. Callers that probe the
// model (optimizers, sweeps, HTTP handlers) test for it with errors.Is and
// map it to "bad input" handling (skip the point, return 400) instead of
// treating it as an internal failure.
var ErrOutOfDomain = errors.New("parameter outside model domain")

// finite reports whether x is a usable finite number: not NaN and not ±Inf.
// Every validator in the package rejects non-finite inputs through it, so
// poisoned values surface as errors at the model boundary instead of
// propagating through arithmetic as silent NaN/Inf results.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// finitePos reports whether x is finite and strictly positive. Note the
// deliberate form: `x > 0` alone would accept +Inf and `x <= 0` checks
// alone would accept NaN (every comparison with NaN is false).
func finitePos(x float64) bool { return finite(x) && x > 0 }

// finiteNonNeg reports whether x is finite and non-negative.
func finiteNonNeg(x float64) bool { return finite(x) && x >= 0 }
