package core

import (
	"fmt"
	"math"
)

// DesignCostModel is the "first approximation design cost model" of eq (6):
//
//	C_DE = A0 · N_tr^p1 / (s_d − s_d0)^p2
//
// The paper writes the denominator as (s_d0 − s_d)^p2 while defining it as
// the distance between the achieved s_d and the best possible s_d0 ≈ 100;
// since achievable designs satisfy s_d > s_d0, this implementation uses the
// distance s_d − s_d0 and requires s_d > s_d0. The closer a design pushes
// toward full-custom density, the more unsuccessful iterations it suffers
// and the faster C_DE diverges.
//
// The default parameters are the paper's published calibration
// (A0 = 1000, p1 = 1.0, p2 = 1.2, s_d0 = 100); the paper stresses they are
// illustrative, which is why they are plain exported fields.
type DesignCostModel struct {
	A0  float64 // scale, dollars
	P1  float64 // transistor-count exponent
	P2  float64 // density-distance exponent
	Sd0 float64 // best achievable s_d (full-custom limit)
}

// DefaultDesignCostModel returns eq (6) with the paper's constants.
func DefaultDesignCostModel() DesignCostModel {
	return DesignCostModel{A0: 1000, P1: 1.0, P2: 1.2, Sd0: 100}
}

// Validate reports the first invalid parameter of m, or nil.
func (m DesignCostModel) Validate() error {
	switch {
	case !finitePos(m.A0):
		return fmt.Errorf("core: design cost model: A0 must be positive and finite, got %v", m.A0)
	case !finiteNonNeg(m.P1):
		return fmt.Errorf("core: design cost model: p1 must be non-negative and finite, got %v", m.P1)
	case !finiteNonNeg(m.P2):
		return fmt.Errorf("core: design cost model: p2 must be non-negative and finite, got %v", m.P2)
	case !finitePos(m.Sd0):
		return fmt.Errorf("core: design cost model: s_d0 must be positive and finite, got %v", m.Sd0)
	}
	return nil
}

// Cost evaluates eq (6) for a design with the given transistor count and
// decompression index. When sd does not exceed the full-custom limit Sd0
// the model has no answer — the denominator hits its pole at s_d = s_d0
// and turns negative (NaN under a fractional p2) below it — so the error
// wraps ErrOutOfDomain rather than letting Inf or NaN escape as a value.
func (m DesignCostModel) Cost(transistors, sd float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if !finitePos(transistors) {
		return 0, fmt.Errorf("core: design cost: transistor count must be positive and finite, got %v", transistors)
	}
	if !finite(sd) || sd <= m.Sd0 {
		return 0, fmt.Errorf("core: design cost: s_d = %v must exceed the full-custom limit s_d0 = %v and be finite: %w",
			sd, m.Sd0, ErrOutOfDomain)
	}
	return m.A0 * math.Pow(transistors, m.P1) / math.Pow(sd-m.Sd0, m.P2), nil
}

// MarginalCost returns ∂C_DE/∂s_d, the (negative) rate at which design
// cost falls as the design is allowed to be sparser. Optimizers use it to
// reason about the eq (4) trade-off analytically in tests.
func (m DesignCostModel) MarginalCost(transistors, sd float64) (float64, error) {
	c, err := m.Cost(transistors, sd)
	if err != nil {
		return 0, err
	}
	return -m.P2 * c / (sd - m.Sd0), nil
}

// DesignCostPerCM2 evaluates eq (5):
//
//	Cd_sq = (C_MA + C_DE) / (N_w · A_w)
//
// maskCost is the lithography mask-set cost C_MA, designCost the total
// design activity cost C_DE, wafers the production volume N_w, and
// waferAreaCM2 the usable wafer area A_w. For high-volume products the
// result vanishes and eq (4) degenerates to eq (3), exactly as the paper
// notes.
func DesignCostPerCM2(maskCost, designCost, wafers, waferAreaCM2 float64) (float64, error) {
	if !finiteNonNeg(maskCost) {
		return 0, fmt.Errorf("core: mask cost must be non-negative and finite, got %v", maskCost)
	}
	if !finiteNonNeg(designCost) {
		return 0, fmt.Errorf("core: design cost must be non-negative and finite, got %v", designCost)
	}
	if !finitePos(wafers) {
		return 0, fmt.Errorf("core: wafer volume must be positive and finite, got %v", wafers)
	}
	if !finitePos(waferAreaCM2) {
		return 0, fmt.Errorf("core: wafer area must be positive and finite, got %v", waferAreaCM2)
	}
	return (maskCost + designCost) / (wafers * waferAreaCM2), nil
}
