package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/parallel"
)

func TestTransistorCostCtx(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	want, err := s.TransistorCost()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TransistorCostCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ctx-aware breakdown %+v != plain %+v", got, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.TransistorCostCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEvalBatchCtxIsolatesAndOrders: out-of-domain scenarios land in their
// own error slot without poisoning neighbours, results are in input order,
// and the whole batch is deterministic across worker counts.
func TestEvalBatchCtxIsolatesAndOrders(t *testing.T) {
	scs := make([]Scenario, 40)
	for i := range scs {
		scs[i] = figure4Scenario(1000+float64(i)*100, 0.4)
		if i%7 == 3 {
			scs[i].Design.Sd = scs[i].DesignCost.Sd0 // the eq (6) pole
		}
	}
	eval := func(workers int) ([]Breakdown, []error) {
		old := parallel.DefaultWorkers()
		parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(old)
		bs, errs, stop := EvalBatchCtx(context.Background(), scs)
		if stop != nil {
			t.Fatalf("stop = %v", stop)
		}
		return bs, errs
	}
	base, baseErrs := eval(1)
	for i := range scs {
		if i%7 == 3 {
			if !errors.Is(baseErrs[i], ErrOutOfDomain) {
				t.Fatalf("errs[%d] = %v, want ErrOutOfDomain", i, baseErrs[i])
			}
			continue
		}
		if baseErrs[i] != nil {
			t.Fatalf("errs[%d] = %v", i, baseErrs[i])
		}
		want, err := scs[i].TransistorCost()
		if err != nil || base[i] != want {
			t.Fatalf("batch breakdown %d differs from individual evaluation", i)
		}
	}
	for _, workers := range []int{2, 4} {
		bs, errs := eval(workers)
		for i := range scs {
			if bs[i] != base[i] || (errs[i] == nil) != (baseErrs[i] == nil) {
				t.Fatalf("workers=%d diverges at scenario %d", workers, i)
			}
		}
	}
}

func TestEvalBatchCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scs := []Scenario{figure4Scenario(5000, 0.4)}
	if _, _, stop := EvalBatchCtx(ctx, scs); !errors.Is(stop, context.Canceled) {
		t.Fatalf("stop = %v, want context.Canceled", stop)
	}
}

// TestSweepStreamsMatchBufferedSweeps: the streamed chunks, concatenated,
// must be bit-identical to the buffered sweep for every axis and for
// chunk sizes that do and do not divide the grid.
func TestSweepStreamsMatchBufferedSweeps(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	const n = 100
	type sweepFns struct {
		buffered func() ([]SweepPoint, error)
		streamed func(chunk int, emit func([]SweepPoint) error) error
	}
	axes := map[string]sweepFns{
		"sd": {
			buffered: func() ([]SweepPoint, error) { return SweepSd(s, 200, 2000, n) },
			streamed: func(chunk int, emit func([]SweepPoint) error) error {
				return SweepSdStream(context.Background(), s, 200, 2000, n, chunk, emit)
			},
		},
		"wafers": {
			buffered: func() ([]SweepPoint, error) { return SweepVolume(s, 100, 1e5, n) },
			streamed: func(chunk int, emit func([]SweepPoint) error) error {
				return SweepVolumeStream(context.Background(), s, 100, 1e5, n, chunk, emit)
			},
		},
		"yield": {
			buffered: func() ([]SweepPoint, error) { return SweepYield(s, 0.1, 0.9, n) },
			streamed: func(chunk int, emit func([]SweepPoint) error) error {
				return SweepYieldStream(context.Background(), s, 0.1, 0.9, n, chunk, emit)
			},
		},
	}
	for name, fns := range axes {
		t.Run(name, func(t *testing.T) {
			want, err := fns.buffered()
			if err != nil {
				t.Fatal(err)
			}
			for _, chunk := range []int{0, 1, 7, 64, 1000} {
				var got []SweepPoint
				calls := 0
				if err := fns.streamed(chunk, func(pts []SweepPoint) error {
					calls++
					got = append(got, pts...)
					return nil
				}); err != nil {
					t.Fatalf("chunk=%d: %v", chunk, err)
				}
				if len(got) != len(want) {
					t.Fatalf("chunk=%d: %d points, want %d", chunk, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("chunk=%d: point %d differs: %+v != %+v", chunk, i, got[i], want[i])
					}
				}
				if chunk == 1 && calls != n {
					t.Fatalf("chunk=1 emitted %d chunks, want %d", calls, n)
				}
			}
		})
	}
}

// TestSweepStreamValidation: domain errors surface before the first emit.
func TestSweepStreamValidation(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	emitted := false
	noEmit := func([]SweepPoint) error { emitted = true; return nil }
	if err := SweepSdStream(context.Background(), s, 50, 2000, 10, 0, noEmit); !errors.Is(err, ErrOutOfDomain) {
		t.Fatalf("lo below pole: err = %v, want ErrOutOfDomain", err)
	}
	if err := SweepYieldStream(context.Background(), s, 0.1, 1.5, 10, 0, noEmit); err == nil {
		t.Fatal("yield above 1 accepted")
	}
	if err := SweepVolumeStream(context.Background(), s, 100, 1e5, 1, 0, noEmit); err == nil {
		t.Fatal("single-point sweep accepted")
	}
	if emitted {
		t.Fatal("emit ran despite validation error")
	}
}

// TestSweepStreamStopsOnEmitErrorAndCancel: an emit error or a context
// cancellation aborts the remaining chunks.
func TestSweepStreamStopsOnEmitError(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	boom := errors.New("consumer gone")
	calls := 0
	err := SweepSdStream(context.Background(), s, 200, 2000, 100, 10, func([]SweepPoint) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want consumer error", err)
	}
	if calls != 1 {
		t.Fatalf("emit ran %d times after failing, want 1", calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	calls = 0
	err = SweepSdStream(ctx, s, 200, 2000, 100, 10, func([]SweepPoint) error {
		calls++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("emit ran %d times after cancellation, want 1", calls)
	}
}
