package core

import (
	"errors"
	"math"
	"testing"
)

func TestOptimalSdIsInteriorMinimum(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	opt, err := OptimalSd(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Sd <= s.DesignCost.Sd0 || opt.Sd >= 2000 {
		t.Fatalf("optimum s_d = %v not interior", opt.Sd)
	}
	// Neighbors must not be cheaper.
	for _, dx := range []float64{-5, -1, 1, 5} {
		b, err := s.WithSd(opt.Sd + dx).TransistorCost()
		if err != nil {
			t.Fatal(err)
		}
		if b.Total < opt.Breakdown.Total-1e-15 {
			t.Fatalf("neighbor s_d=%v cost %v beats optimum %v", opt.Sd+dx, b.Total, opt.Breakdown.Total)
		}
	}
}

func TestOptimalSdMovesWithVolume(t *testing.T) {
	// §3.1: the location of the optimum s_d changes substantially with
	// volume and yield — low volume pushes the optimum to sparser designs
	// (design cost dominates), high volume to denser designs.
	low, err := OptimalSd(figure4Scenario(5000, 0.4), 5000)
	if err != nil {
		t.Fatal(err)
	}
	high, err := OptimalSd(figure4Scenario(50000, 0.9), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !(high.Sd < low.Sd) {
		t.Fatalf("optimal s_d: high volume %v not below low volume %v", high.Sd, low.Sd)
	}
	if !(high.Breakdown.Total < low.Breakdown.Total) {
		t.Fatalf("high-volume optimal cost %v not below low-volume %v", high.Breakdown.Total, low.Breakdown.Total)
	}
}

func TestOptimalSdValidation(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	if _, err := OptimalSd(s, 50); err == nil {
		t.Fatal("accepted sdMax below s_d0")
	}
	bad := s
	bad.Wafers = 0
	if _, err := OptimalSd(bad, 2000); err == nil {
		t.Fatal("accepted invalid scenario")
	}
}

func TestSweepSdShapeIsUCurve(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	pts, err := SweepSd(s, 105, 3000, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 200 {
		t.Fatalf("got %d points, want 200", len(pts))
	}
	if pts[0].X != 105 || !almost(pts[len(pts)-1].X, 3000, 1e-12) {
		t.Fatalf("endpoints = %v, %v", pts[0].X, pts[len(pts)-1].X)
	}
	// U-shape: strictly decreasing then strictly increasing around a single
	// interior minimum.
	minIdx := 0
	for i, p := range pts {
		if p.Breakdown.Total < pts[minIdx].Breakdown.Total {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(pts)-1 {
		t.Fatalf("minimum at boundary index %d — not a U curve", minIdx)
	}
	for i := 1; i <= minIdx; i++ {
		if pts[i].Breakdown.Total > pts[i-1].Breakdown.Total {
			t.Fatalf("not descending before minimum at i=%d", i)
		}
	}
	for i := minIdx + 1; i < len(pts); i++ {
		if pts[i].Breakdown.Total < pts[i-1].Breakdown.Total {
			t.Fatalf("not ascending after minimum at i=%d", i)
		}
	}
}

func TestSweepSdValidation(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	if _, err := SweepSd(s, 50, 3000, 10); err == nil {
		t.Fatal("accepted lo below s_d0")
	}
	if _, err := SweepSd(s, 300, 200, 10); err == nil {
		t.Fatal("accepted inverted range")
	}
	if _, err := SweepSd(s, 105, 3000, 1); err == nil {
		t.Fatal("accepted single-point sweep")
	}
}

func TestSweepVolumeMonotone(t *testing.T) {
	s := figure4Scenario(5000, 0.4)
	pts, err := SweepVolume(s, 100, 1e6, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Breakdown.Total >= pts[i-1].Breakdown.Total {
			t.Fatalf("cost not strictly decreasing in volume at i=%d", i)
		}
	}
	// Asymptote: the eq (3) manufacturing-only cost.
	floor, err := ManufacturingCostPerTransistor(s.Process, s.Design)
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1].Breakdown.Total
	if last < floor || last > floor*1.05 {
		t.Fatalf("high-volume cost %v does not approach eq(3) floor %v", last, floor)
	}
}

func TestCrossoverVolumeFPGAvsASIC(t *testing.T) {
	// ASIC: full utilization, full design cost at s_d=300.
	asic := figure4Scenario(1000, 0.8)
	// FPGA: u = 0.4 (most fabric idle), but the design cost of the fabric
	// is amortized across many customers — model as tiny per-product design
	// cost by using a sparse s_d (cheap design) and zero mask cost.
	fpga := figure4Scenario(1000, 0.8)
	fpga.Utilization = 0.4
	fpga.Design.Sd = 2000 // prefabricated fabric: no dense custom layout
	fpga.MaskCost = 0
	fpga.DesignCost = DesignCostModel{A0: 1, P1: 1, P2: 1.2, Sd0: 100} // 1000x cheaper design

	cross, err := CrossoverVolume(asic, fpga, 10, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// Below crossover the FPGA must win, above the ASIC.
	lowA, _ := asic.WithWafers(cross / 4).TransistorCost()
	lowF, _ := fpga.WithWafers(cross / 4).TransistorCost()
	if lowF.Total >= lowA.Total {
		t.Fatalf("below crossover (%v wafers): FPGA %v not cheaper than ASIC %v", cross/4, lowF.Total, lowA.Total)
	}
	highA, _ := asic.WithWafers(cross * 4).TransistorCost()
	highF, _ := fpga.WithWafers(cross * 4).TransistorCost()
	if highA.Total >= highF.Total {
		t.Fatalf("above crossover (%v wafers): ASIC %v not cheaper than FPGA %v", cross*4, highA.Total, highF.Total)
	}
}

func TestCrossoverVolumeNoCross(t *testing.T) {
	a := figure4Scenario(1000, 0.8)
	b := a
	b.Process.CostPerCM2 = a.Process.CostPerCM2 * 2 // strictly worse everywhere
	_, err := CrossoverVolume(a, b, 10, 1e6)
	if !errors.Is(err, ErrNoCrossover) {
		t.Fatalf("err = %v, want ErrNoCrossover", err)
	}
}

func TestSensitivitiesMatchAnalyticExponents(t *testing.T) {
	// With design cost ≈ 0 (huge volume), eq (4) ≈ eq (3) = C·λ²·s_d/Y:
	// elasticities must be λ:+2, s_d:+1, Y:-1, CmSq:+1, N_w:≈0, N_tr:≈0.
	s := figure4Scenario(1e8, 0.8)
	sens, err := Sensitivities(s, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"lambda", sens.Lambda, 2, 1e-3},
		{"sd", sens.Sd, 1, 2e-2}, // slight deviation from the eq(6) term
		{"yield", sens.Yield, -1, 1e-3},
		{"cmsq", sens.CmSq, 1, 1e-2},
		{"wafers", sens.Wafers, 0, 1e-2},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s elasticity = %v, want %v ± %v", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestSensitivitiesLowVolumeVolumeMatters(t *testing.T) {
	s := figure4Scenario(2000, 0.4)
	sens, err := Sensitivities(s, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if sens.Wafers >= 0 {
		t.Fatalf("volume elasticity = %v, want negative at low volume", sens.Wafers)
	}
	if sens.Transistors <= 0 {
		t.Fatalf("transistor elasticity = %v, want positive at low volume (design cost grows)", sens.Transistors)
	}
}
