package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// MarketModel captures the §2.2.2 mechanism the paper names but does not
// model: "the time to market pressure must be a factor deciding about
// compactness of modern custom-designed ICs". Denser design (smaller s_d)
// takes more engineering effort and therefore more calendar time; in a
// market whose unit price erodes exponentially, arriving later forfeits
// revenue. The profit-optimal s_d under such erosion sits above the
// cost-optimal s_d — which is exactly the industrial drift Figure 1
// documents.
//
// Design time is proportional to the eq (6) design effort through the
// team's spend rate; revenue is integrated over a product window with
// price erosion:
//
//	t_design = C_DE / TeamRatePerMonth                       [months]
//	price(t) = LaunchPrice · e^{−t/ErosionTauMonths}
//	revenue  = ∫_{t_design}^{t_design+WindowMonths} price(t)·unitsPerMonth dt
//	profit   = revenue − (manufacturing + mask + design cost)
type MarketModel struct {
	LaunchPrice      float64 // unit price at t = 0, $
	ErosionTauMonths float64 // price e-folding time
	WindowMonths     float64 // sales window length after launch
	UnitsPerMonth    float64 // sustained sales volume, die/month
	TeamRatePerMonth float64 // design spend rate, $/month
}

// DefaultMarketModel is a paper-era MPU program: $300 launch price
// eroding with a 12-month tau, a 24-month window, 100k units/month, and a
// $4M/month design organization.
func DefaultMarketModel() MarketModel {
	return MarketModel{
		LaunchPrice:      300,
		ErosionTauMonths: 12,
		WindowMonths:     24,
		UnitsPerMonth:    100e3,
		TeamRatePerMonth: 4e6,
	}
}

// Validate reports the first invalid field of m, or nil.
func (m MarketModel) Validate() error {
	switch {
	case m.LaunchPrice <= 0:
		return fmt.Errorf("core: market: launch price must be positive, got %v", m.LaunchPrice)
	case m.ErosionTauMonths <= 0:
		return fmt.Errorf("core: market: erosion tau must be positive, got %v", m.ErosionTauMonths)
	case m.WindowMonths <= 0:
		return fmt.Errorf("core: market: window must be positive, got %v", m.WindowMonths)
	case m.UnitsPerMonth <= 0:
		return fmt.Errorf("core: market: unit volume must be positive, got %v", m.UnitsPerMonth)
	case m.TeamRatePerMonth <= 0:
		return fmt.Errorf("core: market: team rate must be positive, got %v", m.TeamRatePerMonth)
	}
	return nil
}

// ProgramOutcome itemizes the economics of one (scenario, market) choice
// of s_d.
type ProgramOutcome struct {
	Sd           float64
	DesignMonths float64
	Revenue      float64
	TotalCost    float64 // manufacturing for all units + mask + design
	Profit       float64
}

// Profit evaluates the program at the scenario's s_d. Units sold follow
// demand (UnitsPerMonth over the window); wafer supply is assumed
// provisioned to match, consistent with the scenario's N_w being a
// planning input rather than a cap.
func (m MarketModel) Profit(s Scenario) (ProgramOutcome, error) {
	if err := m.Validate(); err != nil {
		return ProgramOutcome{}, err
	}
	b, err := s.TransistorCost()
	if err != nil {
		return ProgramOutcome{}, err
	}
	tDesign := b.DesignDE / m.TeamRatePerMonth
	// Revenue integral: LaunchPrice·units·τ·(e^{−t0/τ} − e^{−(t0+W)/τ}).
	tau := m.ErosionTauMonths
	units := m.UnitsPerMonth * m.WindowMonths
	revenue := m.LaunchPrice * m.UnitsPerMonth * tau *
		(math.Exp(-tDesign/tau) - math.Exp(-(tDesign+m.WindowMonths)/tau))
	mfgPerDie := b.Manufacturing * s.Design.Transistors
	cost := mfgPerDie*units + s.MaskCost + b.DesignDE
	return ProgramOutcome{
		Sd:           s.Design.Sd,
		DesignMonths: tDesign,
		Revenue:      revenue,
		TotalCost:    cost,
		Profit:       revenue - cost,
	}, nil
}

// ProfitOptimalSd locates the s_d maximizing program profit on
// (s_d0, sdMax]. Compare with OptimalSd (cost minimization): under price
// erosion the profit optimum sits at sparser design — time-to-market
// buys more than dense silicon saves.
func (m MarketModel) ProfitOptimalSd(s Scenario, sdMax float64) (ProgramOutcome, error) {
	if err := m.Validate(); err != nil {
		return ProgramOutcome{}, err
	}
	if err := s.Validate(); err != nil {
		return ProgramOutcome{}, err
	}
	lo := s.DesignCost.Sd0 * (1 + 1e-6)
	if sdMax <= lo {
		return ProgramOutcome{}, fmt.Errorf("core: ProfitOptimalSd: sdMax = %v must exceed s_d0 = %v", sdMax, s.DesignCost.Sd0)
	}
	obj := func(sd float64) float64 {
		out, err := m.Profit(s.WithSd(sd))
		if err != nil {
			return math.Inf(1)
		}
		return -out.Profit
	}
	gx, _ := stats.ArgminGrid(obj, lo, sdMax, 512)
	span := (sdMax - lo) / 511
	blo := math.Max(lo, gx-2*span)
	bhi := math.Min(sdMax, gx+2*span)
	res, err := stats.Minimize(obj, blo, bhi, 1e-6*(sdMax-lo))
	if err != nil {
		return ProgramOutcome{}, err
	}
	return m.Profit(s.WithSd(res.X))
}
