// Package core implements the transistor cost models of Maly, "IC Design in
// High-Cost Nanometer-Technologies Era" (DAC 2001): the manufacturing cost
// model of eq (1)–(3), the total-cost model with design and mask cost of
// eq (4)–(5), the design-effort model of eq (6), and the generalized
// parameterized model of eq (7). It also provides the optimization routines
// of §3.1 (cost-optimal design density, required density for a die-cost
// target, volume crossovers).
//
// Unit conventions, used consistently across the repository:
//
//   - minimum feature size λ is carried in micrometers (µm);
//   - areas are carried in cm²;
//   - money is carried in dollars;
//   - s_d (the design decompression index) is dimensionless: the number of
//     λ×λ squares needed to draw an average transistor;
//   - d_d (design density) is its inverse.
package core

import (
	"errors"
	"fmt"
	"math"
)

// UMPerCM is the number of micrometers in a centimeter.
const UMPerCM = 1e4

// MicronsToCM converts a length in µm to cm.
func MicronsToCM(um float64) float64 { return um / UMPerCM }

// CMToMicrons converts a length in cm to µm.
func CMToMicrons(cm float64) float64 { return cm * UMPerCM }

// LambdaSquaredCM2 returns λ² in cm² for a feature size given in µm. This
// is the geometric factor of eq (2)–(4).
func LambdaSquaredCM2(lambdaUM float64) float64 {
	l := MicronsToCM(lambdaUM)
	return l * l
}

// TransistorDensity returns the transistor density T_d of eq (2) in
// transistors per cm², given feature size λ in µm and design decompression
// index s_d (λ² squares per transistor). It returns an error for
// non-positive inputs.
func TransistorDensity(lambdaUM, sd float64) (float64, error) {
	if lambdaUM <= 0 {
		return 0, fmt.Errorf("core: feature size must be positive, got %v µm", lambdaUM)
	}
	if sd <= 0 {
		return 0, fmt.Errorf("core: s_d must be positive, got %v", sd)
	}
	return 1 / (LambdaSquaredCM2(lambdaUM) * sd), nil
}

// SdFromDensity inverts eq (2): given transistor density T_d (per cm²) and
// feature size λ (µm), it returns the implied design decompression index
// s_d. This is the computation behind Figure 2 (ITRS-implied s_d).
func SdFromDensity(densityPerCM2, lambdaUM float64) (float64, error) {
	if densityPerCM2 <= 0 {
		return 0, fmt.Errorf("core: transistor density must be positive, got %v", densityPerCM2)
	}
	if lambdaUM <= 0 {
		return 0, fmt.Errorf("core: feature size must be positive, got %v µm", lambdaUM)
	}
	return 1 / (densityPerCM2 * LambdaSquaredCM2(lambdaUM)), nil
}

// SdFromLayout computes s_d directly from a measured die: area in cm²,
// transistor count, and feature size in µm. This is how the Table A1
// columns were extracted: s_d = A_ch / (N_tr · λ²).
func SdFromLayout(areaCM2, transistors, lambdaUM float64) (float64, error) {
	if areaCM2 <= 0 || transistors <= 0 || lambdaUM <= 0 {
		return 0, errors.New("core: SdFromLayout requires positive area, transistor count, and feature size")
	}
	return areaCM2 / (transistors * LambdaSquaredCM2(lambdaUM)), nil
}

// DieArea returns the die area A_ch in cm² implied by eq (2):
// A_ch = N_tr · λ² · s_d.
func DieArea(transistors, lambdaUM, sd float64) (float64, error) {
	if transistors <= 0 || lambdaUM <= 0 || sd <= 0 {
		return 0, errors.New("core: DieArea requires positive transistor count, feature size, and s_d")
	}
	return transistors * LambdaSquaredCM2(lambdaUM) * sd, nil
}

// DesignDensity returns d_d, the inverse of the decompression index.
func DesignDensity(sd float64) (float64, error) {
	if sd <= 0 {
		return 0, fmt.Errorf("core: s_d must be positive, got %v", sd)
	}
	return 1 / sd, nil
}

// validYield reports whether y is a usable yield value.
func validYield(y float64) bool { return y > 0 && y <= 1 && !math.IsNaN(y) }
