package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Dist is a one-dimensional input distribution for uncertainty analysis.
// The zero value is invalid; construct with Fixed, Uniform or LogNormal.
type Dist struct {
	kind distKind
	a, b float64
}

type distKind int

const (
	distInvalid distKind = iota
	distFixed
	distUniform
	distLogNormal
)

// Fixed returns a degenerate distribution pinned at v.
func Fixed(v float64) Dist { return Dist{kind: distFixed, a: v} }

// Uniform returns a uniform distribution on [lo, hi].
func Uniform(lo, hi float64) Dist { return Dist{kind: distUniform, a: lo, b: hi} }

// LogNormal returns a log-normal distribution with the given median and
// multiplicative sigma (e.g. sigma = 1.3 means one standard deviation
// spans ×1.3 / ÷1.3) — the natural shape for costs and yields' odds.
func LogNormal(median, sigma float64) Dist { return Dist{kind: distLogNormal, a: median, b: sigma} }

// Validate reports whether the distribution is well-formed.
func (d Dist) Validate() error {
	switch d.kind {
	case distFixed:
		if !finite(d.a) {
			return fmt.Errorf("core: fixed distribution value must be finite, got %v", d.a)
		}
		return nil
	case distUniform:
		if !finite(d.a) || !finite(d.b) || !(d.a <= d.b) {
			return fmt.Errorf("core: uniform distribution requires finite lo <= hi, got [%v, %v]", d.a, d.b)
		}
		return nil
	case distLogNormal:
		if !finitePos(d.a) {
			return fmt.Errorf("core: log-normal median must be positive and finite, got %v", d.a)
		}
		if !finite(d.b) || d.b < 1 {
			return fmt.Errorf("core: log-normal sigma must be finite and >= 1, got %v", d.b)
		}
		return nil
	default:
		return fmt.Errorf("core: uninitialized distribution")
	}
}

// Sample draws one value.
func (d Dist) Sample(r *stats.RNG) float64 {
	switch d.kind {
	case distFixed:
		return d.a
	case distUniform:
		return r.Range(d.a, d.b)
	case distLogNormal:
		return d.a * math.Exp(r.Norm(0, math.Log(d.b)))
	default:
		panic("core: Sample on uninitialized Dist")
	}
}

// UncertainScenario wraps a base scenario with input distributions; any
// nil-kind (unset) field falls back to the base scenario's point value.
// Yield samples are clamped into (0, 1]; s_d samples below the design
// cost model's domain are rejected and redrawn.
type UncertainScenario struct {
	Base     Scenario
	Yield    Dist
	CmSq     Dist
	Sd       Dist
	Wafers   Dist
	MaskCost Dist
}

// dist returns d when set, else a Fixed at fallback.
func orFixed(d Dist, fallback float64) Dist {
	if d.kind == distInvalid {
		return Fixed(fallback)
	}
	return d
}

// CostQuantiles summarizes a Monte Carlo cost study. Redraws reports how
// many joint draws were rejected for landing outside the model domain —
// the study's truncation diagnostic (see MonteCarloRun).
type CostQuantiles struct {
	Mean    float64
	P5      float64
	P50     float64
	P95     float64
	N       int
	Redraws int
}

// MCRun is the raw outcome of a Monte Carlo propagation: the accepted
// cost samples in ascending order plus the rejection statistics needed to
// judge how hard the domain truncation bit.
type MCRun struct {
	// Samples holds the n accepted cost draws, sorted ascending. For a
	// given (n, seed) the contents are bit-identical for every worker
	// count, including 1.
	Samples []float64
	// Redraws counts rejected joint draws across the whole run. The
	// acceptance probability is estimated by n/(n+Redraws); the sampled
	// law is the input joint conditioned on the model domain, and the
	// total-variation distance between that truncated joint and the
	// unconditioned one is exactly the per-draw rejection probability,
	// estimated by Redraws/(n+Redraws). A large value means the quantiles
	// describe a materially truncated distribution — inspect it before
	// trusting the tails.
	Redraws int
}

// mcChunkSize fixes the Monte Carlo sharding granularity. Chunk
// boundaries and their RNG streams depend only on (n, seed) — never on
// the worker count — which is what makes parallel results bit-identical
// to serial ones.
const mcChunkSize = 4096

// mcMaxAttempts bounds the per-sample redraw loop. With per-draw
// acceptance probability p, a sample exhausts the loop with probability
// (1−p)^64 — below 1e-6 for any p ≥ 0.2 — at which point the run errors
// out rather than silently biasing the output.
const mcMaxAttempts = 64

// MonteCarlo propagates the input distributions through eq (4) and
// returns quantiles of the transistor cost, using the default worker
// count. Samples that land outside the model's domain (yield ≤ 0,
// s_d ≤ s_d0, …) are redrawn up to a bounded number of attempts per
// sample, and the total redraw count is reported.
func (u UncertainScenario) MonteCarlo(n int, seed uint64) (CostQuantiles, error) {
	return u.MonteCarloCtx(context.Background(), n, seed)
}

// MonteCarloCtx is MonteCarlo honoring a caller context for cancellation
// and tracing: the run appears as a "core.montecarlo" span on a traced
// context (the CLIs' -trace flag and the serving layer use this form).
func (u UncertainScenario) MonteCarloCtx(ctx context.Context, n int, seed uint64) (CostQuantiles, error) {
	run, err := u.MonteCarloRunCtx(ctx, n, seed, 0)
	if err != nil {
		return CostQuantiles{}, err
	}
	var sum float64
	for _, c := range run.Samples {
		sum += c
	}
	return CostQuantiles{
		Mean:    sum / float64(n),
		P5:      stats.Quantile(run.Samples, 0.05),
		P50:     stats.Quantile(run.Samples, 0.50),
		P95:     stats.Quantile(run.Samples, 0.95),
		N:       n,
		Redraws: run.Redraws,
	}, nil
}

// MonteCarloSamples runs the same propagation and returns the raw cost
// samples in ascending order, for histogramming and custom risk metrics.
func (u UncertainScenario) MonteCarloSamples(n int, seed uint64) ([]float64, error) {
	run, err := u.MonteCarloRun(n, seed, 0)
	if err != nil {
		return nil, err
	}
	return run.Samples, nil
}

// drawOnce samples one full joint input vector and evaluates eq (4).
// A draw is rejected as a unit: on failure the entire vector is redrawn,
// which is the unbiased truncation of the joint distribution to the model
// domain (redrawing only the offending coordinate would condition each
// input on the others' rejected values and skew the joint). The
// consequence — every accepted marginal is conditioned on joint validity
// — is quantified by the caller via the redraw count rather than hidden.
//
// This is the scalar reference path: the run itself uses mcKernel.draw,
// and the equivalence tests hold the two to bit-identical accept/reject
// decisions and totals on every draw.
func (u UncertainScenario) drawOnce(r *stats.RNG, dists *[5]Dist) (float64, bool) {
	s := u.Base
	y := dists[0].Sample(r)
	if y > 1 {
		y = 1
	}
	s.Process.Yield = y
	s.Process.CostPerCM2 = dists[1].Sample(r)
	s.Design.Sd = dists[2].Sample(r)
	s.Wafers = dists[3].Sample(r)
	s.MaskCost = dists[4].Sample(r)
	b, err := s.TransistorCost()
	if err != nil {
		return 0, false
	}
	return b.Total, true
}

// mcKernel is the vectorized per-draw evaluator of the Monte Carlo
// engine: every scenario invariant (λ², u, A_w, the eq (6) numerator) is
// hoisted once per run, so each draw pays only for the arithmetic that
// depends on the five sampled inputs — no Scenario copy, no
// re-validation of fixed fields, no error allocation on rejection. The
// retained operations keep the scalar path's association order exactly,
// so accept/reject decisions and accepted totals are bit-identical to
// drawOnce.
type mcKernel struct {
	pn  float64 // A0 · N_tr^p1, the eq (6) numerator
	sd0 float64
	p2  float64
	l2  float64 // λ² in cm²
	u   float64
	aw  float64 // A_w
}

func newMCKernel(s Scenario) mcKernel {
	return mcKernel{
		pn:  s.DesignCost.A0 * math.Pow(s.Design.Transistors, s.DesignCost.P1),
		sd0: s.DesignCost.Sd0,
		p2:  s.DesignCost.P2,
		l2:  LambdaSquaredCM2(s.Process.LambdaUM),
		u:   s.utilization(),
		aw:  s.Process.WaferAreaCM2,
	}
}

// draw samples one joint input vector — consuming the RNG in exactly
// drawOnce's order — and evaluates the eq (4) total. It rejects precisely
// the draws the scalar path rejects: a sampled field failing its
// Validate check, s_d at or below the eq (6) pole, or an eq (6) overflow
// past float range (which the scalar path catches as DesignCostPerCM2's
// finiteNonNeg guard). Everything else about the base scenario was
// validated once by the caller and cannot be invalidated by a draw.
func (k *mcKernel) draw(r *stats.RNG, dists *[5]Dist) (float64, bool) {
	y := dists[0].Sample(r)
	if y > 1 {
		y = 1
	}
	cm2 := dists[1].Sample(r)
	sd := dists[2].Sample(r)
	wafers := dists[3].Sample(r)
	mask := dists[4].Sample(r)
	if !finitePos(cm2) || !validYield(y) || !finitePos(sd) ||
		!finiteNonNeg(mask) || !finitePos(wafers) || sd <= k.sd0 {
		return 0, false
	}
	cde := k.pn / math.Pow(sd-k.sd0, k.p2)
	if !finiteNonNeg(cde) {
		return 0, false
	}
	cdsq := (mask + cde) / (wafers * k.aw)
	geom := k.l2 * sd / (k.u * y)
	return geom*cm2 + geom*cdsq, true
}

// mcTuner adapts the Monte Carlo task granularity from measured chunk
// cost. Grouping never moves a chunk's RNG stream or bounds, so it cannot
// affect the sampled values.
var mcTuner parallel.ChunkTuner

// MCChunkTally is the outcome of one Monte Carlo chunk evaluated by
// MCEvaluator.Chunk. Every float accumulator is folded left-to-right in
// draw order, so two evaluations of the same chunk from the same stream
// are bit-identical, and a merger that folds chunk tallies in canonical
// chunk order reproduces a serial run's totals exactly.
type MCChunkTally struct {
	Accepted int
	Redraws  int
	Sum      float64
	Sum2     float64
	Min      float64
	Max      float64
}

// MCEvaluator is the prepared chunk-at-a-time form of the Monte Carlo
// engine: the base scenario validated and hoisted into an mcKernel once,
// ready to evaluate any number of independent chunks. The sharded job
// engine (internal/mcjob) uses it to spread one giga-trial cost study
// over shards without materializing per-sample slices.
type MCEvaluator struct {
	k     mcKernel
	dists [5]Dist
}

// Evaluator validates u and returns the prepared per-chunk evaluator.
// The validation is exactly MonteCarloRunCtx's: base scenario first, then
// each effective input distribution.
func (u UncertainScenario) Evaluator() (*MCEvaluator, error) {
	if err := u.Base.Validate(); err != nil {
		return nil, err
	}
	dists := [5]Dist{
		orFixed(u.Yield, u.Base.Process.Yield),
		orFixed(u.CmSq, u.Base.Process.CostPerCM2),
		orFixed(u.Sd, u.Base.Design.Sd),
		orFixed(u.Wafers, u.Base.Wafers),
		orFixed(u.MaskCost, u.Base.MaskCost),
	}
	for _, d := range dists {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	return &MCEvaluator{k: newMCKernel(u.Base), dists: dists}, nil
}

// Chunk draws n accepted cost samples from r — the identical accept/
// reject loop MonteCarloRunCtx runs per chunk, consuming the stream in
// the same order — and returns their running tally. It fails like the
// run does: a non-finite accepted total or a sample exhausting
// mcMaxAttempts aborts the chunk.
func (e *MCEvaluator) Chunk(r *stats.RNG, n int) (MCChunkTally, error) {
	t := MCChunkTally{Min: math.Inf(1), Max: math.Inf(-1)}
	for i := 0; i < n; i++ {
		ok := false
		for attempt := 0; attempt < mcMaxAttempts; attempt++ {
			total, accepted := e.k.draw(r, &e.dists)
			if accepted {
				if !finite(total) {
					return MCChunkTally{}, fmt.Errorf("core: MonteCarlo produced non-finite cost %v from an accepted draw", total)
				}
				t.Accepted++
				t.Sum += total
				t.Sum2 += total * total
				if total < t.Min {
					t.Min = total
				}
				if total > t.Max {
					t.Max = total
				}
				ok = true
				break
			}
			t.Redraws++
		}
		if !ok {
			return MCChunkTally{}, fmt.Errorf("core: MonteCarlo could not draw a valid sample in %d attempts (distributions mostly outside the model domain; %d rejected draws in this chunk alone)",
				mcMaxAttempts, t.Redraws)
		}
	}
	return t, nil
}

// MonteCarloRun is the engine underneath MonteCarlo and
// MonteCarloSamples: it shards the n samples into fixed chunks of
// mcChunkSize, drives each chunk from its own guaranteed-disjoint RNG
// sub-stream (stats.RNG.SplitN), and evaluates chunks on up to `workers`
// goroutines (workers <= 0 uses parallel.DefaultWorkers). Because the
// sharding and the streams depend only on (n, seed), the sorted output is
// bit-identical for every worker count.
func (u UncertainScenario) MonteCarloRun(n int, seed uint64, workers int) (MCRun, error) {
	return u.MonteCarloRunCtx(context.Background(), n, seed, workers)
}

// MonteCarloRunCtx is MonteCarloRun honoring a caller context: a
// cancellation aborts the remaining chunks, and on a traced context the
// whole run records a "core.montecarlo" span (with the pool's
// "parallel.run" nested under it). The sharding and RNG streams still
// depend only on (n, seed), so results remain bit-identical for every
// worker count — tracing observes the run, it never reschedules it.
func (u UncertainScenario) MonteCarloRunCtx(ctx context.Context, n int, seed uint64, workers int) (MCRun, error) {
	if n <= 0 {
		return MCRun{}, fmt.Errorf("core: MonteCarlo requires positive sample count, got %d", n)
	}
	if err := u.Base.Validate(); err != nil {
		return MCRun{}, err
	}
	dists := [5]Dist{
		orFixed(u.Yield, u.Base.Process.Yield),
		orFixed(u.CmSq, u.Base.Process.CostPerCM2),
		orFixed(u.Sd, u.Base.Design.Sd),
		orFixed(u.Wafers, u.Base.Wafers),
		orFixed(u.MaskCost, u.Base.MaskCost),
	}
	for _, d := range dists {
		if err := d.Validate(); err != nil {
			return MCRun{}, err
		}
	}
	ctx, span := obs.StartSpan(ctx, "core.montecarlo")
	if span != nil {
		span.SetAttr("samples", strconv.Itoa(n))
		defer span.End()
	}
	chunks := parallel.Chunks(n, mcChunkSize)
	streams := stats.NewRNG(seed).SplitN(chunks)
	costs := make([]float64, n)
	redraws := make([]int, chunks)
	k := newMCKernel(u.Base)
	err := parallel.ForEachChunkTuned(ctx, n, mcChunkSize, workers, &mcTuner, func(chunk, lo, hi int) error {
		r := streams[chunk]
		for i := lo; i < hi; i++ {
			ok := false
			for attempt := 0; attempt < mcMaxAttempts; attempt++ {
				total, accepted := k.draw(r, &dists)
				if accepted {
					if !finite(total) {
						// With finite-validated inputs this is unreachable, but a
						// NaN that slipped through must fail the run rather than
						// be averaged into the quantiles.
						return fmt.Errorf("core: MonteCarlo produced non-finite cost %v from an accepted draw", total)
					}
					costs[i] = total
					ok = true
					break
				}
				redraws[chunk]++
			}
			if !ok {
				return fmt.Errorf("core: MonteCarlo could not draw a valid sample in %d attempts (distributions mostly outside the model domain; %d rejected draws in this chunk alone)",
					mcMaxAttempts, redraws[chunk])
			}
		}
		return nil
	})
	if err != nil {
		return MCRun{}, err
	}
	total := 0
	for _, c := range redraws {
		total += c
	}
	sort.Float64s(costs)
	return MCRun{Samples: costs, Redraws: total}, nil
}

// TornadoBar is one input's leverage on the transistor cost: the cost at
// the input's low and high excursion with every other input at its base
// value.
type TornadoBar struct {
	Name     string
	LowCost  float64
	HighCost float64
}

// Swing returns the absolute cost range the input commands.
func (b TornadoBar) Swing() float64 { return math.Abs(b.HighCost - b.LowCost) }

// Tornado performs one-at-a-time sensitivity: each parameter is moved to
// (1−rel) and (1+rel) of its base value (yield clamped to 1) and the cost
// re-evaluated. Bars are returned sorted by descending swing — the
// tornado chart that tells a cost engineer which input to nail down
// first.
func Tornado(s Scenario, rel float64) ([]TornadoBar, error) {
	if !(rel > 0 && rel < 1) {
		return nil, fmt.Errorf("core: Tornado excursion must be in (0,1), got %v", rel)
	}
	if _, err := s.TransistorCost(); err != nil {
		return nil, err
	}
	evalWith := func(apply func(*Scenario, float64), v float64) (float64, error) {
		sc := s
		apply(&sc, v)
		b, err := sc.TransistorCost()
		if err != nil {
			return 0, err
		}
		return b.Total, nil
	}
	params := []struct {
		name  string
		base  float64
		apply func(*Scenario, float64)
		clamp func(float64) float64
	}{
		{"yield", s.Process.Yield, func(sc *Scenario, v float64) { sc.Process.Yield = v },
			func(v float64) float64 { return math.Min(v, 1) }},
		{"cm_sq", s.Process.CostPerCM2, func(sc *Scenario, v float64) { sc.Process.CostPerCM2 = v }, nil},
		{"s_d", s.Design.Sd, func(sc *Scenario, v float64) { sc.Design.Sd = v }, nil},
		{"wafers", s.Wafers, func(sc *Scenario, v float64) { sc.Wafers = v }, nil},
		{"mask", s.MaskCost, func(sc *Scenario, v float64) { sc.MaskCost = v }, nil},
		{"lambda", s.Process.LambdaUM, func(sc *Scenario, v float64) { sc.Process.LambdaUM = v }, nil},
	}
	bars := make([]TornadoBar, 0, len(params))
	for _, p := range params {
		lo, hi := p.base*(1-rel), p.base*(1+rel)
		if p.clamp != nil {
			lo, hi = p.clamp(lo), p.clamp(hi)
		}
		lc, err := evalWith(p.apply, lo)
		if err != nil {
			return nil, fmt.Errorf("core: tornado %s low: %w", p.name, err)
		}
		hc, err := evalWith(p.apply, hi)
		if err != nil {
			return nil, fmt.Errorf("core: tornado %s high: %w", p.name, err)
		}
		bars = append(bars, TornadoBar{Name: p.name, LowCost: lc, HighCost: hc})
	}
	sort.Slice(bars, func(i, j int) bool { return bars[i].Swing() > bars[j].Swing() })
	return bars, nil
}
