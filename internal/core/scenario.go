package core

import (
	"errors"
	"fmt"
)

// Scenario assembles everything eq (4) needs to price a transistor in a
// fully functional IC:
//
//	C_tr = λ²·s_d/(u·Y) · (Cm_sq + Cd_sq)
//	Cd_sq = (C_MA + C_DE)/(N_w·A_w)
//
// Process carries λ, Cm_sq, Y and A_w; Design carries N_tr and s_d;
// DesignCost is the eq (6) model; MaskCost is the mask-set price C_MA;
// Wafers is the production volume N_w. Utilization is the eq (7)/§2.5
// hardware-utilization factor u (1 for a fully used ASIC, < 1 when only a
// subset of fabricated transistors delivers function, e.g. an FPGA); a zero
// value is treated as 1 so that the zero Scenario extended field set stays
// backward compatible with the plain eq (4) reading.
type Scenario struct {
	Process     Process
	Design      Design
	DesignCost  DesignCostModel
	MaskCost    float64 // C_MA, dollars per mask set
	Wafers      float64 // N_w, production volume in wafers
	Utilization float64 // u in (0, 1]; 0 means 1
}

// utilization returns the effective u with the zero-value default applied.
func (s Scenario) utilization() float64 {
	if s.Utilization == 0 {
		return 1
	}
	return s.Utilization
}

// Validate reports the first invalid field of the scenario, or nil.
func (s Scenario) Validate() error {
	if err := s.Process.Validate(); err != nil {
		return err
	}
	if err := s.Design.Validate(); err != nil {
		return err
	}
	if err := s.DesignCost.Validate(); err != nil {
		return err
	}
	if !finiteNonNeg(s.MaskCost) {
		return fmt.Errorf("core: scenario: mask cost must be non-negative and finite, got %v", s.MaskCost)
	}
	if !finitePos(s.Wafers) {
		return fmt.Errorf("core: scenario: wafer volume must be positive and finite, got %v", s.Wafers)
	}
	if u := s.utilization(); !(u > 0 && u <= 1) {
		return fmt.Errorf("core: scenario: utilization must be in (0,1], got %v", u)
	}
	return nil
}

// Breakdown itemizes the cost of one transistor under a scenario. All
// fields are dollars per functioning (and, when u < 1, utilized)
// transistor except the per-cm² rates.
type Breakdown struct {
	Manufacturing float64 // Cm_sq share of eq (4)
	DesignAndMask float64 // Cd_sq share of eq (4)
	Total         float64 // Manufacturing + DesignAndMask

	CmSq     float64 // manufacturing $/cm²
	CdSq     float64 // design+mask $/cm², eq (5)
	DieArea  float64 // A_ch, cm²
	DieCost  float64 // Total · N_tr
	DesignDE float64 // C_DE, the eq (6) total design cost in dollars
}

// TransistorCost evaluates eq (4) (with the §2.5 utilization extension) and
// returns the full cost breakdown. The design must satisfy
// s_d > DesignCost.Sd0; everything else is validated by Validate.
func (s Scenario) TransistorCost() (Breakdown, error) {
	if err := s.Validate(); err != nil {
		return Breakdown{}, err
	}
	cde, err := s.DesignCost.Cost(s.Design.Transistors, s.Design.Sd)
	if err != nil {
		return Breakdown{}, err
	}
	cdsq, err := DesignCostPerCM2(s.MaskCost, cde, s.Wafers, s.Process.WaferAreaCM2)
	if err != nil {
		return Breakdown{}, err
	}
	geom := LambdaSquaredCM2(s.Process.LambdaUM) * s.Design.Sd / (s.utilization() * s.Process.Yield)
	b := Breakdown{
		Manufacturing: geom * s.Process.CostPerCM2,
		DesignAndMask: geom * cdsq,
		CmSq:          s.Process.CostPerCM2,
		CdSq:          cdsq,
		DesignDE:      cde,
	}
	b.Total = b.Manufacturing + b.DesignAndMask
	b.DieArea, err = s.Design.AreaCM2(s.Process.LambdaUM)
	if err != nil {
		return Breakdown{}, err
	}
	b.DieCost = b.Total * s.Design.Transistors
	return b, nil
}

// WithSd returns a copy of the scenario with the design decompression
// index replaced, for sweeps over s_d.
func (s Scenario) WithSd(sd float64) Scenario {
	s.Design.Sd = sd
	return s
}

// WithWafers returns a copy of the scenario with the production volume
// replaced, for sweeps over N_w.
func (s Scenario) WithWafers(wafers float64) Scenario {
	s.Wafers = wafers
	return s
}

// WithYield returns a copy of the scenario with the manufacturing yield
// replaced, for sweeps over Y.
func (s Scenario) WithYield(yield float64) Scenario {
	s.Process.Yield = yield
	return s
}

// Generalized is eq (7): the same cost skeleton with every parameter
// promoted to a function of the operating point, acknowledging that wafer
// cost, design cost and yield are each complex functions of wafer area,
// feature size, volume, design size and density:
//
//	C_tr = s_d·λ²·[Cm_sq(A_w,λ,N_w) + Cd_sq(A_w,λ,N_w,N_tr,s_d0)] / (u·Y(A_w,λ,N_w,s_d,N_tr))
//
// Nil function fields fall back to the scalar defaults so that a
// Generalized wrapping a plain Scenario reproduces eq (4) exactly.
type Generalized struct {
	Scenario

	// CmSqFn returns the manufacturing cost per cm² at an operating point.
	CmSqFn func(waferAreaCM2, lambdaUM, wafers float64) float64
	// CdSqFn returns the design+mask cost per cm² at an operating point.
	CdSqFn func(waferAreaCM2, lambdaUM, wafers, transistors, sd0 float64) float64
	// YieldFn returns the manufacturing yield at an operating point.
	YieldFn func(waferAreaCM2, lambdaUM, wafers, sd, transistors float64) float64
}

// TransistorCost evaluates eq (7). Function fields override the scalar
// scenario parameters; the yield returned by YieldFn must lie in (0, 1].
func (g Generalized) TransistorCost() (Breakdown, error) {
	s := g.Scenario
	if err := s.Validate(); err != nil {
		return Breakdown{}, err
	}
	p := s.Process

	cmsq := p.CostPerCM2
	if g.CmSqFn != nil {
		cmsq = g.CmSqFn(p.WaferAreaCM2, p.LambdaUM, s.Wafers)
		if cmsq <= 0 {
			return Breakdown{}, fmt.Errorf("core: generalized: CmSqFn returned non-positive cost %v", cmsq)
		}
	}
	var cdsq float64
	var cde float64
	if g.CdSqFn != nil {
		cdsq = g.CdSqFn(p.WaferAreaCM2, p.LambdaUM, s.Wafers, s.Design.Transistors, s.DesignCost.Sd0)
		if cdsq < 0 {
			return Breakdown{}, fmt.Errorf("core: generalized: CdSqFn returned negative cost %v", cdsq)
		}
	} else {
		var err error
		cde, err = s.DesignCost.Cost(s.Design.Transistors, s.Design.Sd)
		if err != nil {
			return Breakdown{}, err
		}
		cdsq, err = DesignCostPerCM2(s.MaskCost, cde, s.Wafers, p.WaferAreaCM2)
		if err != nil {
			return Breakdown{}, err
		}
	}
	yield := p.Yield
	if g.YieldFn != nil {
		yield = g.YieldFn(p.WaferAreaCM2, p.LambdaUM, s.Wafers, s.Design.Sd, s.Design.Transistors)
		if !validYield(yield) {
			return Breakdown{}, fmt.Errorf("core: generalized: YieldFn returned invalid yield %v", yield)
		}
	}

	geom := LambdaSquaredCM2(p.LambdaUM) * s.Design.Sd / (s.utilization() * yield)
	b := Breakdown{
		Manufacturing: geom * cmsq,
		DesignAndMask: geom * cdsq,
		CmSq:          cmsq,
		CdSq:          cdsq,
		DesignDE:      cde,
	}
	b.Total = b.Manufacturing + b.DesignAndMask
	var err error
	b.DieArea, err = s.Design.AreaCM2(p.LambdaUM)
	if err != nil {
		return Breakdown{}, err
	}
	b.DieCost = b.Total * s.Design.Transistors
	return b, nil
}

// ErrNoCrossover is returned by crossover searches when the two cost
// curves do not intersect on the searched interval.
var ErrNoCrossover = errors.New("core: cost curves do not cross on the searched interval")
