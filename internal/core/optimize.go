package core

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Optimum describes a cost-optimal operating point located by OptimalSd.
type Optimum struct {
	Sd        float64   // argmin s_d
	Breakdown Breakdown // full cost itemization at the optimum
}

// OptimalSd finds the design decompression index minimizing the eq (4)
// transistor cost for the scenario, searching s_d in (Sd0, sdMax]. This is
// the §3.1 design objective: neither the smallest die (small s_d) nor the
// cheapest design effort (large s_d), but the argmin of C_tr.
//
// The objective is smooth and unimodal on the domain (a positive power of
// 1/(s_d−s_d0) plus a linear term), so a coarse grid pre-pass followed by
// Brent refinement is exact to the tolerance.
func OptimalSd(s Scenario, sdMax float64) (Optimum, error) {
	if err := s.Validate(); err != nil {
		return Optimum{}, err
	}
	lo := s.DesignCost.Sd0 * (1 + 1e-6)
	if sdMax <= lo {
		return Optimum{}, fmt.Errorf("core: OptimalSd: sdMax = %v must exceed s_d0 = %v", sdMax, s.DesignCost.Sd0)
	}
	// The objective is the fused yield→cost kernel: the scenario's
	// invariants are hoisted once and each probe costs one math.Pow plus a
	// handful of multiplies, with out-of-domain probes (s_d ≤ s_d0, eq (6)
	// overflow) mapping to +Inf exactly where the full evaluation would
	// have errored — bit-identical totals, so the located optimum cannot
	// move.
	k := newSdKernel(s)
	obj := k.total
	// Grid pre-pass guards against the steep wall at s_d0 confusing the
	// bracketing, then Brent refines. The error-returning grid search skips
	// NaN objective values (none are expected — out-of-domain points map to
	// +Inf above — but a NaN must never become the bracket center).
	gx, _, err := stats.ArgminGridE(obj, lo, sdMax, 512)
	if err != nil {
		return Optimum{}, fmt.Errorf("core: OptimalSd: %w", err)
	}
	span := (sdMax - lo) / 511
	blo, bhi := math.Max(lo, gx-2*span), math.Min(sdMax, gx+2*span)
	res, err := stats.Minimize(obj, blo, bhi, 1e-6*(sdMax-lo))
	if err != nil {
		return Optimum{}, err
	}
	b, err := s.WithSd(res.X).TransistorCost()
	if err != nil {
		return Optimum{}, err
	}
	return Optimum{Sd: res.X, Breakdown: b}, nil
}

// SweepPoint is one sample of a cost sweep.
type SweepPoint struct {
	X         float64 // swept variable (s_d, N_w, u, ...)
	Breakdown Breakdown
}

// SweepSd evaluates the scenario cost on n logarithmically spaced s_d
// values in [lo, hi]. It is the Figure 4 workload. lo must exceed the
// model's Sd0.
func SweepSd(s Scenario, lo, hi float64, n int) ([]SweepPoint, error) {
	return SweepSdCtx(context.Background(), s, lo, hi, n)
}

// SweepSdCtx is SweepSd honoring a caller context: a cancellation or
// deadline aborts the remaining evaluations and returns ctx.Err(). Long
// sweeps driven by servers use it to stop wasting workers on abandoned
// requests.
func SweepSdCtx(ctx context.Context, s Scenario, lo, hi float64, n int) ([]SweepPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !finite(lo) || lo <= s.DesignCost.Sd0 {
		return nil, fmt.Errorf("core: SweepSd: lo = %v must exceed s_d0 = %v: %w", lo, s.DesignCost.Sd0, ErrOutOfDomain)
	}
	ctx, span := startSweepSpan(ctx, "core.sweep_sd", n)
	defer span.End()
	xs, err := gridLog(lo, hi, n)
	if err != nil {
		return nil, err
	}
	k := newSdKernel(s)
	return sweepEvalKernel(ctx, xs, k.eval)
}

// SweepVolume evaluates the scenario cost on n logarithmically spaced
// wafer volumes in [lo, hi].
func SweepVolume(s Scenario, lo, hi float64, n int) ([]SweepPoint, error) {
	return SweepVolumeCtx(context.Background(), s, lo, hi, n)
}

// SweepVolumeCtx is SweepVolume honoring a caller context.
func SweepVolumeCtx(ctx context.Context, s Scenario, lo, hi float64, n int) ([]SweepPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !finitePos(lo) {
		return nil, fmt.Errorf("core: SweepVolume: lo must be positive and finite, got %v", lo)
	}
	ctx, span := startSweepSpan(ctx, "core.sweep_volume", n)
	defer span.End()
	xs, err := gridLog(lo, hi, n)
	if err != nil {
		return nil, err
	}
	eval, err := sweepKernelFor(s, axisVolume)
	if err != nil {
		return nil, err
	}
	return sweepEvalKernel(ctx, xs, eval)
}

// SweepYield evaluates the scenario cost on n linearly spaced
// manufacturing yields in [lo, hi] ⊂ (0, 1]. Yield is the one swept axis
// where a log grid would waste points: the interesting structure (the 1/Y
// blow-up) lives at the low end of a bounded interval, so the spacing is
// linear.
func SweepYield(s Scenario, lo, hi float64, n int) ([]SweepPoint, error) {
	return SweepYieldCtx(context.Background(), s, lo, hi, n)
}

// SweepYieldCtx is SweepYield honoring a caller context.
func SweepYieldCtx(ctx context.Context, s Scenario, lo, hi float64, n int) ([]SweepPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !(finitePos(lo) && lo <= 1) || !(finitePos(hi) && hi <= 1) {
		return nil, fmt.Errorf("core: SweepYield: bounds must lie in (0,1], got [%v, %v]", lo, hi)
	}
	ctx, span := startSweepSpan(ctx, "core.sweep_yield", n)
	defer span.End()
	xs, err := gridLin(lo, hi, n)
	if err != nil {
		return nil, err
	}
	eval, err := sweepKernelFor(s, axisYield)
	if err != nil {
		return nil, err
	}
	return sweepEvalKernel(ctx, xs, eval)
}

// startSweepSpan opens a sweep stage's trace span (nil and free on an
// untraced context) after the sweep's domain validation has passed, so
// rejected requests never show up as stages.
func startSweepSpan(ctx context.Context, stage string, n int) (context.Context, *obs.Span) {
	ctx, span := obs.StartSpan(ctx, stage)
	if span != nil {
		span.SetAttr("points", strconv.Itoa(n))
	}
	return ctx, span
}

// gridLog materializes the n logarithmically spaced abscissas of a sweep.
// The sequential-multiplication construction is kept bit-identical to the
// historical serial sweep, so chunked/streamed evaluations of the same
// grid reproduce the buffered sweep exactly.
func gridLog(lo, hi float64, n int) ([]float64, error) {
	if !finite(lo) || !finite(hi) || !(lo < hi) {
		return nil, fmt.Errorf("core: sweep requires finite lo < hi, got [%v, %v]", lo, hi)
	}
	if n < 2 {
		return nil, fmt.Errorf("core: sweep requires at least 2 points, got %d", n)
	}
	xs := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := 0; i < n; i++ {
		if i == n-1 {
			x = hi // avoid drift on the terminal point
		}
		xs[i] = x
		x *= ratio
	}
	return xs, nil
}

// gridLin materializes the n uniformly spaced abscissas of a sweep.
func gridLin(lo, hi float64, n int) ([]float64, error) {
	if !finite(lo) || !finite(hi) || !(lo < hi) {
		return nil, fmt.Errorf("core: sweep requires finite lo < hi, got [%v, %v]", lo, hi)
	}
	if n < 2 {
		return nil, fmt.Errorf("core: sweep requires at least 2 points, got %d", n)
	}
	xs := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		xs[i] = lo + float64(i)*step
	}
	xs[n-1] = hi // avoid drift on the terminal point
	return xs, nil
}

// CrossoverVolume finds the production volume N_w (wafers) at which two
// scenarios cost the same per transistor, searching volumes in
// [loWafers, hiWafers]. The canonical use is the §2.5 FPGA-vs-ASIC
// question: scenario a is the ASIC (u = 1, heavy design cost), scenario b
// the FPGA (u < 1, amortized design). It returns ErrNoCrossover when the
// difference does not change sign on the interval.
func CrossoverVolume(a, b Scenario, loWafers, hiWafers float64) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if !(loWafers > 0 && loWafers < hiWafers) {
		return 0, fmt.Errorf("core: CrossoverVolume requires 0 < lo < hi, got [%v, %v]", loWafers, hiWafers)
	}
	diff := func(logW float64) float64 {
		w := math.Exp(logW)
		ba, errA := a.WithWafers(w).TransistorCost()
		bb, errB := b.WithWafers(w).TransistorCost()
		if errA != nil || errB != nil {
			return math.NaN()
		}
		return ba.Total - bb.Total
	}
	lo, hi := math.Log(loWafers), math.Log(hiWafers)
	var dlo, dhi float64
	_ = parallel.Do(context.Background(),
		func() error { dlo = diff(lo); return nil },
		func() error { dhi = diff(hi); return nil },
	)
	if math.IsNaN(dlo) || math.IsNaN(dhi) {
		return 0, fmt.Errorf("core: CrossoverVolume: cost undefined at interval endpoint")
	}
	if dlo == 0 {
		return loWafers, nil
	}
	if dhi == 0 {
		return hiWafers, nil
	}
	if (dlo > 0) == (dhi > 0) {
		return 0, ErrNoCrossover
	}
	logW, err := stats.Bisect(diff, lo, hi, 1e-10)
	if err != nil {
		return 0, err
	}
	return math.Exp(logW), nil
}

// Sensitivity reports the local elasticity of the eq (4) transistor cost
// with respect to each scenario parameter: the percentage change in C_tr
// per percent change in the parameter, estimated by central differences
// with relative step h (default 1e-4 when non-positive).
type Sensitivity struct {
	Lambda      float64 // w.r.t. feature size λ
	Sd          float64 // w.r.t. design decompression index
	Yield       float64 // w.r.t. manufacturing yield
	CmSq        float64 // w.r.t. manufacturing $/cm²
	Wafers      float64 // w.r.t. production volume
	Transistors float64 // w.r.t. design size
}

// Sensitivities computes cost elasticities around the scenario's operating
// point. A value of +2 for Lambda means cost grows ~quadratically in λ
// locally, matching the λ² factor of eq (3)–(4).
func Sensitivities(s Scenario, h float64) (Sensitivity, error) {
	if err := s.Validate(); err != nil {
		return Sensitivity{}, err
	}
	if h <= 0 {
		h = 1e-4
	}
	base, err := s.TransistorCost()
	if err != nil {
		return Sensitivity{}, err
	}
	elasticity := func(apply func(Scenario, float64) Scenario, x float64) (float64, error) {
		up, err := apply(s, x*(1+h)).TransistorCost()
		if err != nil {
			return 0, err
		}
		dn, err := apply(s, x*(1-h)).TransistorCost()
		if err != nil {
			return 0, err
		}
		return (up.Total - dn.Total) / (2 * h * base.Total), nil
	}
	var out Sensitivity
	if out.Lambda, err = elasticity(func(sc Scenario, v float64) Scenario { sc.Process.LambdaUM = v; return sc }, s.Process.LambdaUM); err != nil {
		return Sensitivity{}, err
	}
	if out.Sd, err = elasticity(func(sc Scenario, v float64) Scenario { sc.Design.Sd = v; return sc }, s.Design.Sd); err != nil {
		return Sensitivity{}, err
	}
	if out.Yield, err = elasticity(func(sc Scenario, v float64) Scenario { sc.Process.Yield = v; return sc }, s.Process.Yield); err != nil {
		return Sensitivity{}, err
	}
	if out.CmSq, err = elasticity(func(sc Scenario, v float64) Scenario { sc.Process.CostPerCM2 = v; return sc }, s.Process.CostPerCM2); err != nil {
		return Sensitivity{}, err
	}
	if out.Wafers, err = elasticity(func(sc Scenario, v float64) Scenario { sc.Wafers = v; return sc }, s.Wafers); err != nil {
		return Sensitivity{}, err
	}
	if out.Transistors, err = elasticity(func(sc Scenario, v float64) Scenario { sc.Design.Transistors = v; return sc }, s.Design.Transistors); err != nil {
		return Sensitivity{}, err
	}
	return out, nil
}
