package core

import (
	"math"
	"testing"
)

func TestMarketModelValidate(t *testing.T) {
	if err := DefaultMarketModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MarketModel{
		{LaunchPrice: 0, ErosionTauMonths: 1, WindowMonths: 1, UnitsPerMonth: 1, TeamRatePerMonth: 1},
		{LaunchPrice: 1, ErosionTauMonths: 0, WindowMonths: 1, UnitsPerMonth: 1, TeamRatePerMonth: 1},
		{LaunchPrice: 1, ErosionTauMonths: 1, WindowMonths: 0, UnitsPerMonth: 1, TeamRatePerMonth: 1},
		{LaunchPrice: 1, ErosionTauMonths: 1, WindowMonths: 1, UnitsPerMonth: 0, TeamRatePerMonth: 1},
		{LaunchPrice: 1, ErosionTauMonths: 1, WindowMonths: 1, UnitsPerMonth: 1, TeamRatePerMonth: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestProfitRevenueClosedForm(t *testing.T) {
	m := DefaultMarketModel()
	s := figure4Scenario(20000, 0.8)
	out, err := m.Profit(s)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the revenue integral directly.
	b, _ := s.TransistorCost()
	t0 := b.DesignDE / m.TeamRatePerMonth
	want := 0.0
	const steps = 200000
	dt := m.WindowMonths / steps
	for i := 0; i < steps; i++ {
		tt := t0 + (float64(i)+0.5)*dt
		want += m.LaunchPrice * math.Exp(-tt/m.ErosionTauMonths) * m.UnitsPerMonth * dt
	}
	if math.Abs(out.Revenue-want)/want > 1e-6 {
		t.Fatalf("revenue = %v, numeric integral %v", out.Revenue, want)
	}
	if out.DesignMonths != t0 {
		t.Fatalf("design months = %v, want %v", out.DesignMonths, t0)
	}
}

func TestLatenessErodesRevenue(t *testing.T) {
	m := DefaultMarketModel()
	s := figure4Scenario(20000, 0.8)
	// A denser design (smaller s_d) takes longer and earns less revenue.
	fast, err := m.Profit(s.WithSd(500))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := m.Profit(s.WithSd(120))
	if err != nil {
		t.Fatal(err)
	}
	if slow.DesignMonths <= fast.DesignMonths {
		t.Fatalf("denser design not slower: %v vs %v months", slow.DesignMonths, fast.DesignMonths)
	}
	if slow.Revenue >= fast.Revenue {
		t.Fatalf("late product not poorer: %v vs %v", slow.Revenue, fast.Revenue)
	}
}

func TestProfitOptimalAboveCostOptimal(t *testing.T) {
	// The headline: time-to-market pressure pushes the optimal s_d above
	// the pure cost optimum — the paper's explanation for Figure 1's
	// industrial drift, made quantitative.
	s := figure4Scenario(20000, 0.8)
	m := DefaultMarketModel()
	costOpt, err := OptimalSd(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	profOpt, err := m.ProfitOptimalSd(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if profOpt.Sd <= costOpt.Sd {
		t.Fatalf("profit-optimal s_d %v not above cost-optimal %v", profOpt.Sd, costOpt.Sd)
	}
	if profOpt.Profit <= 0 {
		t.Fatalf("optimal program unprofitable: %+v", profOpt)
	}
	// Neighbors are not more profitable.
	for _, dx := range []float64{-10, 10} {
		n, err := m.Profit(s.WithSd(profOpt.Sd + dx))
		if err != nil {
			t.Fatal(err)
		}
		if n.Profit > profOpt.Profit+1e-6*math.Abs(profOpt.Profit) {
			t.Fatalf("neighbor s_d %v beats optimum: %v vs %v", profOpt.Sd+dx, n.Profit, profOpt.Profit)
		}
	}
}

func TestErosionStrengthMovesOptimum(t *testing.T) {
	// Faster price erosion (smaller tau) pushes the optimum to sparser,
	// faster-to-design points.
	s := figure4Scenario(20000, 0.8)
	slow := DefaultMarketModel()
	slow.ErosionTauMonths = 36
	fast := DefaultMarketModel()
	fast.ErosionTauMonths = 6
	so, err := slow.ProfitOptimalSd(s, 3000)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := fast.ProfitOptimalSd(s, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if fo.Sd <= so.Sd {
		t.Fatalf("fast erosion optimum %v not above slow erosion %v", fo.Sd, so.Sd)
	}
}

func TestProfitValidation(t *testing.T) {
	s := figure4Scenario(20000, 0.8)
	if _, err := (MarketModel{}).Profit(s); err == nil {
		t.Fatal("accepted invalid market model")
	}
	bad := figure4Scenario(0, 0.8)
	if _, err := DefaultMarketModel().Profit(bad); err == nil {
		t.Fatal("accepted invalid scenario")
	}
	if _, err := DefaultMarketModel().ProfitOptimalSd(s, 50); err == nil {
		t.Fatal("accepted sdMax below s_d0")
	}
}
