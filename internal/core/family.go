package core

import (
	"fmt"
	"math"
)

// Family models §3.2's product-family amortization: "highly regular,
// repetitive (across many products) and experimentally precharacterized
// design building blocks … this way one will be able to increase an
// effective volume used in the computation of C_DE". A family of Products
// chips shares a precharacterized block library; the SharedFraction of
// each design's effort is the block library itself, paid once and reused
// with ReuseEfficiency; the remainder is product-unique and paid every
// time.
type Family struct {
	Products        int     // family size K, >= 1
	SharedFraction  float64 // fraction of design effort in reusable blocks, [0, 1]
	ReuseEfficiency float64 // fraction of shared effort actually saved on reuse, [0, 1]
}

// Validate reports the first invalid field of f, or nil.
func (f Family) Validate() error {
	switch {
	case f.Products < 1:
		return fmt.Errorf("core: family must have at least one product, got %d", f.Products)
	case f.SharedFraction < 0 || f.SharedFraction > 1:
		return fmt.Errorf("core: shared fraction must be in [0,1], got %v", f.SharedFraction)
	case f.ReuseEfficiency < 0 || f.ReuseEfficiency > 1:
		return fmt.Errorf("core: reuse efficiency must be in [0,1], got %v", f.ReuseEfficiency)
	}
	return nil
}

// DesignCostPerProduct returns the average design cost each family member
// carries when the standalone (eq 6) cost would be standalone dollars:
// the first product pays in full; each subsequent product pays the unique
// part plus the unreused residue of the shared part,
//
//	perProduct = standalone · [1 + (K−1)·(1 − s·e)] / K
//
// with s = SharedFraction and e = ReuseEfficiency. K = 1 or s·e = 0
// recovers the standalone cost exactly.
func (f Family) DesignCostPerProduct(standalone float64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if standalone < 0 {
		return 0, fmt.Errorf("core: standalone design cost must be non-negative, got %v", standalone)
	}
	k := float64(f.Products)
	saved := f.SharedFraction * f.ReuseEfficiency
	return standalone * (1 + (k-1)*(1-saved)) / k, nil
}

// EffectiveVolumeMultiplier expresses the same amortization in the
// paper's own terms — the factor by which the family inflates the
// effective N_w dividing the design cost in eq (5):
//
//	multiplier = K / [1 + (K−1)·(1 − s·e)]
//
// It ranges from 1 (no reuse) to K (perfect sharing of everything).
func (f Family) EffectiveVolumeMultiplier() (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	k := float64(f.Products)
	saved := f.SharedFraction * f.ReuseEfficiency
	return k / (1 + (k-1)*(1-saved)), nil
}

// FamilyTransistorCost evaluates eq (4) for one member of a family: the
// scenario's eq (6) design cost is replaced by the family-amortized
// per-product figure. Mask sets are per-product and not shared.
func FamilyTransistorCost(s Scenario, f Family) (Breakdown, error) {
	if err := s.Validate(); err != nil {
		return Breakdown{}, err
	}
	standalone, err := s.DesignCost.Cost(s.Design.Transistors, s.Design.Sd)
	if err != nil {
		return Breakdown{}, err
	}
	perProduct, err := f.DesignCostPerProduct(standalone)
	if err != nil {
		return Breakdown{}, err
	}
	gen := Generalized{
		Scenario: s,
		CdSqFn: func(aw, lam, nw, ntr, sd0 float64) float64 {
			return (s.MaskCost + perProduct) / (nw * aw)
		},
	}
	b, err := gen.TransistorCost()
	if err != nil {
		return Breakdown{}, err
	}
	b.DesignDE = perProduct
	return b, nil
}

// FamilyBreakEvenSize returns the smallest family size whose amortized
// per-product cost undercuts the standalone cost by at least the target
// saving fraction (e.g. 0.25 = 25% cheaper). It returns an error when the
// saving is unreachable at any size: the asymptotic saving is s·e.
func (f Family) FamilyBreakEvenSize(targetSaving float64) (int, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if !(targetSaving > 0 && targetSaving < 1) {
		return 0, fmt.Errorf("core: target saving must be in (0,1), got %v", targetSaving)
	}
	saved := f.SharedFraction * f.ReuseEfficiency
	if targetSaving >= saved {
		return 0, fmt.Errorf("core: saving %v unreachable; asymptote is %v", targetSaving, saved)
	}
	// perProduct/standalone = (1 + (K−1)(1−saved))/K ≤ 1 − target
	// ⇔ K ≥ saved/(saved − target).
	k := saved / (saved - targetSaving)
	return int(math.Ceil(k - 1e-12)), nil
}
