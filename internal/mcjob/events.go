package mcjob

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Event is one structured entry in a job's lifecycle timeline: what
// happened, to which shard (-1 when the event is not shard-scoped), on
// whose behalf. The timeline is what makes a kill -9/resume run
// explainable event by event — which worker held which lease, when it
// expired, who re-ran the shard.
type Event struct {
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"time"`
	Type   string    `json:"type"`
	Shard  int       `json:"shard"`
	Owner  string    `json:"owner,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Event types appended by the coordinator and the serving layer.
const (
	EventSubmitted        = "submitted"
	EventLeaseAcquired    = "lease_acquired"
	EventLeaseRenewed     = "lease_renewed"
	EventLeaseExpired     = "lease_expired"
	EventLeaseReclaimed   = "lease_reclaimed"
	EventPartialAccepted  = "partial_accepted"
	EventPartialDuplicate = "partial_duplicate"
	EventPartialRejected  = "partial_rejected"
	EventShardMerged      = "shard_merged"
	EventCheckpointFlush  = "checkpoint_flushed"
	EventCheckpointResume = "checkpoint_resumed"
	EventCompleted        = "completed"
	EventCancelled        = "cancelled"
	EventFailed           = "failed"
)

// defaultEventCapacity bounds a job's in-memory timeline. Old events
// beyond the cap are dropped oldest-first and counted, never silently.
const defaultEventCapacity = 1024

// eventJournalName is the NDJSON journal written beside the shard log
// when the job checkpoints. It is an operator aid, not a durability
// primitive: writes are append-only but unfsynced, nothing replays it,
// and losing it loses nothing but explanation — the shard log remains
// the sole source of resumable truth.
const eventJournalName = "events.ndjson"

// EventLog is a bounded, concurrency-safe ring of lifecycle events with
// an optional NDJSON journal. The nil *EventLog is valid and inert, so
// instrumented code (the Coordinator in library use) never branches on
// whether a timeline was attached.
type EventLog struct {
	mu      sync.Mutex
	cap     int
	seq     int64
	events  []Event
	dropped int64
	changed chan struct{}
	journal *os.File
	now     func() time.Time // test seam
}

// NewEventLog returns an event ring retaining up to capacity events
// (capacity < 1 uses the default).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = defaultEventCapacity
	}
	return &EventLog{cap: capacity, changed: make(chan struct{}), now: time.Now}
}

// Journal mirrors every subsequent append to an NDJSON file at path,
// creating parent directories as needed. Best-effort by design: write
// errors are ignored (the in-memory ring stays authoritative for the
// events endpoint).
func (e *EventLog) Journal(path string) error {
	if e == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	e.mu.Lock()
	old := e.journal
	e.journal = f
	e.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// Append records one event. Shard is -1 for events that are not about a
// specific shard. Safe on nil.
func (e *EventLog) Append(typ string, shard int, owner, detail string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.seq++
	ev := Event{Seq: e.seq, Time: e.now().UTC(), Type: typ, Shard: shard, Owner: owner, Detail: detail}
	if len(e.events) >= e.cap {
		n := copy(e.events, e.events[1:])
		e.events = e.events[:n]
		e.dropped++
	}
	e.events = append(e.events, ev)
	if e.journal != nil {
		if line, err := json.Marshal(ev); err == nil {
			e.journal.Write(append(line, '\n'))
		}
	}
	close(e.changed)
	e.changed = make(chan struct{})
	e.mu.Unlock()
}

// Snapshot returns the retained events with Seq > after (0 returns
// everything retained) plus how many older events the ring has dropped.
func (e *EventLog) Snapshot(after int64) ([]Event, int64) {
	if e == nil {
		return nil, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	i := 0
	for i < len(e.events) && e.events[i].Seq <= after {
		i++
	}
	out := make([]Event, len(e.events)-i)
	copy(out, e.events[i:])
	return out, e.dropped
}

// Changed returns a channel closed on the next append, for live
// streamers. On a nil log it returns nil, which blocks forever in a
// select.
func (e *EventLog) Changed() <-chan struct{} {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.changed
}

// Close releases the journal file, if any. The ring stays readable.
func (e *EventLog) Close() {
	if e == nil {
		return
	}
	e.mu.Lock()
	j := e.journal
	e.journal = nil
	e.mu.Unlock()
	if j != nil {
		j.Close()
	}
}
