package mcjob

import (
	"context"
	"fmt"

	"repro/internal/stats"
)

// ShardEvaluator evaluates individual shards of one run plan. It is the
// unit of work the distributed tier ships between replicas: every
// replica that builds an evaluator from the same (kernel spec, trials,
// shards, seed) computes the same geometry and the same per-chunk
// streams, so a shard's partials are identical no matter which host
// produced them. Run and Coordinator both execute through it.
//
// EvalShard is safe for concurrent use: the evaluator's state (plan and
// per-shard start streams) is immutable after construction.
type ShardEvaluator struct {
	k      Kernel
	p      plan
	starts []stats.RNG
}

// NewShardEvaluator validates (k, cfg) and fixes the run geometry: the
// plan plus, for stream kernels, each shard's RNG start state, obtained
// by one incremental jump walk over the chunk sequence (chunk c's
// stream is the seed state after c jumps — SplitN's exact layout
// without materializing every chunk generator). Only Trials, Shards and
// Seed of cfg matter here.
func NewShardEvaluator(k Kernel, cfg RunConfig) (*ShardEvaluator, error) {
	if k == nil {
		return nil, fmt.Errorf("mcjob: nil kernel")
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("mcjob: trials must be positive, got %d", cfg.Trials)
	}
	if tb, ok := k.(trialBounded); ok && cfg.Trials > tb.MaxTrials() {
		return nil, fmt.Errorf("mcjob: %s kernel covers %d trials, config asks for %d", k.Kind(), tb.MaxTrials(), cfg.Trials)
	}
	if k.ChunkTrials() <= 0 {
		return nil, fmt.Errorf("mcjob: kernel %s reports non-positive chunk size", k.Kind())
	}
	e := &ShardEvaluator{k: k, p: newPlan(cfg.Trials, k.ChunkTrials(), cfg.Shards)}
	if !k.Keyed() {
		e.starts = make([]stats.RNG, e.p.shards)
		walker := stats.Seeded(cfg.Seed)
		chunk := 0
		for s := 0; s < e.p.shards; s++ {
			lo, _ := e.p.shardChunks(s)
			for chunk < lo {
				walker.Jump()
				chunk++
			}
			e.starts[s] = walker
		}
	}
	return e, nil
}

// Shards returns the resolved shard count (defaults applied, clamped to
// the chunk count).
func (e *ShardEvaluator) Shards() int { return e.p.shards }

// Chunks returns the total unit-chunk count of the plan.
func (e *ShardEvaluator) Chunks() int { return e.p.chunks }

// ShardTrials returns the trial count shard s covers.
func (e *ShardEvaluator) ShardTrials(s int) int64 { return e.p.shardTrials(s) }

// EvalShard computes shard s's per-chunk partials in chunk order. The
// returned slice depends only on (kernel spec, trials, seed, s) — never
// on the host, the shard count of other shards, or prior calls.
func (e *ShardEvaluator) EvalShard(ctx context.Context, s int) ([]Partial, error) {
	if s < 0 || s >= e.p.shards {
		return nil, fmt.Errorf("mcjob: shard %d out of range [0,%d)", s, e.p.shards)
	}
	cLo, cHi := e.p.shardChunks(s)
	parts := make([]Partial, 0, cHi-cLo)
	var walker stats.RNG
	if !e.k.Keyed() {
		walker = e.starts[s]
	}
	for c := cLo; c < cHi; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tLo, tHi := e.p.chunkTrialRange(c)
		var pt Partial
		var err error
		if e.k.Keyed() {
			pt, err = e.k.Chunk(tLo, tHi, nil)
		} else {
			rc := walker // pristine per-chunk copy; kernel consumption never shifts the walk
			pt, err = e.k.Chunk(tLo, tHi, &rc)
			walker.Jump()
		}
		if err != nil {
			return nil, fmt.Errorf("mcjob: shard %d chunk %d: %w", s, c, err)
		}
		parts = append(parts, pt)
	}
	return parts, nil
}
