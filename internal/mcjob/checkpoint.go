package mcjob

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// checkpointVersion gates the on-disk layout; a bump invalidates old
// directories instead of misreading them.
const checkpointVersion = 1

// ErrCheckpointMismatch reports a checkpoint directory written by a
// different job spec: resuming it would merge tallies drawn from other
// streams, so the run refuses instead.
var ErrCheckpointMismatch = errors.New("mcjob: checkpoint belongs to a different job spec")

// manifest pins everything that determines the draw streams and chunk
// geometry. Two runs may share a checkpoint directory only if all of it
// matches.
type manifest struct {
	Version     int    `json:"version"`
	Kind        string `json:"kind"`
	Trials      int64  `json:"trials"`
	ChunkTrials int64  `json:"chunk_trials"`
	Shards      int    `json:"shards"`
	Seed        uint64 `json:"seed"`
	SpecHash    string `json:"spec_hash,omitempty"`
}

// shardRecord is one line of the append-only shard log: a completed
// shard's index and its per-chunk partials in chunk order.
type shardRecord struct {
	Shard  int       `json:"shard"`
	Chunks []Partial `json:"chunks"`
}

// checkpoint is the on-disk state of a run: MANIFEST.json (written once,
// atomically via tmp+rename, with the directory fsynced after the rename
// so the manifest's directory entry survives a crash) plus shards.ndjson,
// an append-only log with one shardRecord per completed shard, fsynced
// per append so a crash loses at most the shard being written — and a
// torn final line is skipped on load, never trusted.
type checkpoint struct {
	mu  sync.Mutex
	f   *os.File
	buf []byte
	// skippedRecords counts shard-log lines dropped during replay
	// (torn, malformed, oversized, or inconsistent with the plan); the
	// run reports it so silently rerun shards leave a signal.
	skippedRecords int
}

// maxShardRecordBytes bounds one replayed shard-log line. A line past the
// cap is skipped and counted — the following lines still replay, unlike
// the bufio.Scanner ErrTooLong behavior this replaced, which silently
// stopped the scan and dropped every later shard. A var so the oversize
// path is testable without writing a quarter-gigabyte fixture.
var maxShardRecordBytes = 256 << 20

const (
	manifestName = "MANIFEST.json"
	shardLogName = "shards.ndjson"
)

// openCheckpoint creates or resumes the checkpoint directory: the
// manifest is verified (or written on first open), the shard log is
// replayed into a shard→partials map, and the log is reopened for
// appending. Records that are torn, malformed, out of range or
// inconsistent with the plan are dropped — those shards simply rerun.
func openCheckpoint(dir string, m manifest, p plan) (*checkpoint, map[int][]Partial, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("mcjob: checkpoint dir: %w", err)
	}
	mPath := filepath.Join(dir, manifestName)
	existing, err := os.ReadFile(mPath)
	switch {
	case err == nil:
		var got manifest
		if jsonErr := json.Unmarshal(existing, &got); jsonErr != nil || got != m {
			return nil, nil, fmt.Errorf("%w: %s holds %s, this run needs %s",
				ErrCheckpointMismatch, mPath, describeManifest(existing, got), describeManifest(nil, m))
		}
	case os.IsNotExist(err):
		if err := writeFileAtomic(mPath, mustJSON(m)); err != nil {
			return nil, nil, fmt.Errorf("mcjob: write manifest: %w", err)
		}
	default:
		return nil, nil, fmt.Errorf("mcjob: read manifest: %w", err)
	}

	restored := map[int][]Partial{}
	skipped := 0
	logPath := filepath.Join(dir, shardLogName)
	if rf, err := os.Open(logPath); err == nil {
		var replayErr error
		restored, skipped, replayErr = replayShardLog(rf, p)
		rf.Close()
		if replayErr != nil {
			return nil, nil, fmt.Errorf("mcjob: read shard log: %w", replayErr)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("mcjob: open shard log: %w", err)
	}

	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("mcjob: append shard log: %w", err)
	}
	// The log file may have just been created: without a directory sync
	// its entry is not durable, and a crash after acknowledged shard
	// appends could lose the whole file (the appends were fsynced into a
	// file no directory references). One sync on open covers every later
	// append.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("mcjob: sync checkpoint dir: %w", err)
	}
	return &checkpoint{f: f, skippedRecords: skipped}, restored, nil
}

// replayShardLog restores completed shards from the append-only log. It
// reads with a bufio.Reader line loop rather than a bufio.Scanner: a
// scanner hitting its buffer cap stops with ErrTooLong, and swallowing
// that dropped every record after the first oversized one with no
// signal. Here an oversized line is skipped and counted like any other
// bad record, and the records behind it still replay. Lines that are
// torn (no trailing newline at EOF), malformed, out of range or
// inconsistent with the plan are likewise counted and skipped — those
// shards simply rerun.
func replayShardLog(rf io.Reader, p plan) (map[int][]Partial, int, error) {
	restored := map[int][]Partial{}
	skipped := 0
	r := bufio.NewReaderSize(rf, 1<<20)
	var line []byte
	for {
		line = line[:0]
		tooLong := false
		var readErr error
		for {
			frag, err := r.ReadSlice('\n')
			if len(line)+len(frag) > maxShardRecordBytes {
				tooLong = true
				line = line[:0] // discard; keep consuming to the newline
			} else {
				line = append(line, frag...)
			}
			if err == nil || !errors.Is(err, bufio.ErrBufferFull) {
				readErr = err
				break
			}
		}
		if readErr != nil && !errors.Is(readErr, io.EOF) {
			return nil, 0, readErr
		}
		switch {
		case tooLong:
			skipped++
		case len(line) > 0:
			if rec, ok := parseShardRecord(line, p); ok {
				restored[rec.Shard] = rec.Chunks
			} else {
				skipped++ // torn, corrupt or inconsistent line: rerun that shard
			}
		}
		if errors.Is(readErr, io.EOF) {
			return restored, skipped, nil
		}
	}
}

// parseShardRecord decodes and validates one shard-log line against the
// plan's geometry.
func parseShardRecord(line []byte, p plan) (shardRecord, bool) {
	var rec shardRecord
	if json.Unmarshal(line, &rec) != nil {
		return rec, false
	}
	if rec.Shard < 0 || rec.Shard >= p.shards {
		return rec, false
	}
	lo, hi := p.shardChunks(rec.Shard)
	if len(rec.Chunks) != hi-lo {
		return rec, false
	}
	return rec, true
}

// writeShard appends one completed shard and fsyncs, so an acknowledged
// shard survives a kill -9.
func (c *checkpoint) writeShard(s int, parts []Partial) error {
	line, err := json.Marshal(shardRecord{Shard: s, Chunks: parts})
	if err != nil {
		return fmt.Errorf("mcjob: encode shard %d: %w", s, err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("mcjob: append shard %d: %w", s, err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("mcjob: sync shard log: %w", err)
	}
	return nil
}

func (c *checkpoint) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.f.Close()
}

// writeFileAtomic writes via a temp file, fsync, rename and a sync of
// the parent directory, so a crashed writer never leaves a half-written
// manifest for the next run to misparse — and a crash right after the
// rename cannot lose the renamed entry either (the rename itself lives
// in the directory, which is only durable once the directory is synced).
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-manifest-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory, making its entries (files created or
// renamed into it) durable. File-content fsyncs alone do not cover the
// directory entry that names the file.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// describeManifest renders a manifest for the mismatch error: the raw
// bytes if they did not even parse, else the structured summary.
func describeManifest(raw []byte, m manifest) string {
	if m == (manifest{}) && len(raw) > 0 {
		if len(raw) > 120 {
			raw = raw[:120]
		}
		return fmt.Sprintf("unparseable %q", raw)
	}
	return fmt.Sprintf("{kind=%s trials=%d chunk=%d shards=%d seed=%d spec=%s}",
		m.Kind, m.Trials, m.ChunkTrials, m.Shards, m.Seed, m.SpecHash)
}
