package mcjob

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// checkpointVersion gates the on-disk layout; a bump invalidates old
// directories instead of misreading them.
const checkpointVersion = 1

// ErrCheckpointMismatch reports a checkpoint directory written by a
// different job spec: resuming it would merge tallies drawn from other
// streams, so the run refuses instead.
var ErrCheckpointMismatch = errors.New("mcjob: checkpoint belongs to a different job spec")

// manifest pins everything that determines the draw streams and chunk
// geometry. Two runs may share a checkpoint directory only if all of it
// matches.
type manifest struct {
	Version     int    `json:"version"`
	Kind        string `json:"kind"`
	Trials      int64  `json:"trials"`
	ChunkTrials int64  `json:"chunk_trials"`
	Shards      int    `json:"shards"`
	Seed        uint64 `json:"seed"`
	SpecHash    string `json:"spec_hash,omitempty"`
}

// shardRecord is one line of the append-only shard log: a completed
// shard's index and its per-chunk partials in chunk order.
type shardRecord struct {
	Shard  int       `json:"shard"`
	Chunks []Partial `json:"chunks"`
}

// checkpoint is the on-disk state of a run: MANIFEST.json (written once,
// atomically via tmp+rename) plus shards.ndjson, an append-only log with
// one shardRecord per completed shard, fsynced per append so a crash
// loses at most the shard being written — and a torn final line is
// skipped on load, never trusted.
type checkpoint struct {
	mu  sync.Mutex
	f   *os.File
	buf []byte
}

const (
	manifestName = "MANIFEST.json"
	shardLogName = "shards.ndjson"
)

// openCheckpoint creates or resumes the checkpoint directory: the
// manifest is verified (or written on first open), the shard log is
// replayed into a shard→partials map, and the log is reopened for
// appending. Records that are torn, malformed, out of range or
// inconsistent with the plan are dropped — those shards simply rerun.
func openCheckpoint(dir string, m manifest, p plan) (*checkpoint, map[int][]Partial, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("mcjob: checkpoint dir: %w", err)
	}
	mPath := filepath.Join(dir, manifestName)
	existing, err := os.ReadFile(mPath)
	switch {
	case err == nil:
		var got manifest
		if jsonErr := json.Unmarshal(existing, &got); jsonErr != nil || got != m {
			return nil, nil, fmt.Errorf("%w: %s holds %s, this run needs %s",
				ErrCheckpointMismatch, mPath, describeManifest(existing, got), describeManifest(nil, m))
		}
	case os.IsNotExist(err):
		if err := writeFileAtomic(mPath, mustJSON(m)); err != nil {
			return nil, nil, fmt.Errorf("mcjob: write manifest: %w", err)
		}
	default:
		return nil, nil, fmt.Errorf("mcjob: read manifest: %w", err)
	}

	restored := map[int][]Partial{}
	logPath := filepath.Join(dir, shardLogName)
	if rf, err := os.Open(logPath); err == nil {
		sc := bufio.NewScanner(rf)
		sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
		for sc.Scan() {
			var rec shardRecord
			if json.Unmarshal(sc.Bytes(), &rec) != nil {
				continue // torn or corrupt line: rerun that shard
			}
			if rec.Shard < 0 || rec.Shard >= p.shards {
				continue
			}
			lo, hi := p.shardChunks(rec.Shard)
			if len(rec.Chunks) != hi-lo {
				continue
			}
			restored[rec.Shard] = rec.Chunks
		}
		rf.Close()
		if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
			return nil, nil, fmt.Errorf("mcjob: read shard log: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("mcjob: open shard log: %w", err)
	}

	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("mcjob: append shard log: %w", err)
	}
	return &checkpoint{f: f}, restored, nil
}

// writeShard appends one completed shard and fsyncs, so an acknowledged
// shard survives a kill -9.
func (c *checkpoint) writeShard(s int, parts []Partial) error {
	line, err := json.Marshal(shardRecord{Shard: s, Chunks: parts})
	if err != nil {
		return fmt.Errorf("mcjob: encode shard %d: %w", s, err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("mcjob: append shard %d: %w", s, err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("mcjob: sync shard log: %w", err)
	}
	return nil
}

func (c *checkpoint) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.f.Close()
}

// writeFileAtomic writes via a temp file and rename, so a crashed writer
// never leaves a half-written manifest for the next run to misparse.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-manifest-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// describeManifest renders a manifest for the mismatch error: the raw
// bytes if they did not even parse, else the structured summary.
func describeManifest(raw []byte, m manifest) string {
	if m == (manifest{}) && len(raw) > 0 {
		if len(raw) > 120 {
			raw = raw[:120]
		}
		return fmt.Sprintf("unparseable %q", raw)
	}
	return fmt.Sprintf("{kind=%s trials=%d chunk=%d shards=%d seed=%d spec=%s}",
		m.Kind, m.Trials, m.ChunkTrials, m.Shards, m.Seed, m.SpecHash)
}
