package mcjob

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/stats"
	"repro/internal/yield"
)

// Unit-chunk sizes per kernel kind. These are part of each kind's
// deterministic contract (they key the stream walk), so they are fixed
// here rather than configurable: cheap abstract trials get big chunks,
// geometry-heavy trials small ones, and the wafer-map kind uses one
// wafer per chunk since its randomness is keyed per (wafer, row).
const (
	defectChunkTrials       = 8192
	layoutDefectChunkTrials = 1024
	costChunkTrials         = 4096
	waferMapChunkTrials     = 1
)

// div returns a/b as float64, 0 when b is 0 — tallies of an empty run
// should report zeros, not NaNs.
func div(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// binomialStdErr is the standard error of a proportion estimate.
func binomialStdErr(p float64, n int64) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(p * (1 - p) / float64(n))
}

// ---------------------------------------------------------------------------
// defect: abstract die-level defect yield (paper eq (5) physics)

// DefectSpec parameterizes the abstract defect kind: each trial is one
// die receiving a Poisson number of fatal defects at rate Lambda,
// optionally gamma-mixed per die with clustering parameter Alpha (the
// negative binomial model of eq (5)). This is the cheapest kind — the
// one to use for 10⁸⁻⁹-trial confidence intervals on yield.
type DefectSpec struct {
	Lambda float64 `json:"lambda"`
	Alpha  float64 `json:"alpha,omitempty"`
}

// Validate reports the first invalid field of s, or nil.
func (s DefectSpec) Validate() error {
	if math.IsNaN(s.Lambda) || math.IsInf(s.Lambda, 0) || s.Lambda < 0 {
		return fmt.Errorf("mcjob: defect lambda must be finite and non-negative, got %v", s.Lambda)
	}
	if math.IsNaN(s.Alpha) || math.IsInf(s.Alpha, 0) || s.Alpha < 0 {
		return fmt.Errorf("mcjob: defect alpha must be finite and non-negative, got %v", s.Alpha)
	}
	return nil
}

type defectKernel struct {
	spec      DefectSpec
	expLambda float64 // exp(-Lambda), hoisted for the unclustered fast path
}

// NewDefectKernel validates the spec and prepares the kernel.
func NewDefectKernel(s DefectSpec) (Kernel, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &defectKernel{spec: s, expLambda: math.Exp(-s.Lambda)}, nil
}

func (k *defectKernel) Kind() string       { return "defect" }
func (k *defectKernel) ChunkTrials() int64 { return defectChunkTrials }
func (k *defectKernel) Keyed() bool        { return false }

func (k *defectKernel) Chunk(lo, hi int64, r *stats.RNG) (Partial, error) {
	var p Partial
	clustered := k.spec.Alpha > 0
	for t := lo; t < hi; t++ {
		rate := k.spec.Lambda
		var n int
		if clustered {
			rate = k.spec.Lambda * r.Gamma(k.spec.Alpha, 1/k.spec.Alpha)
			n = r.Poisson(rate)
		} else {
			n = r.PoissonL(rate, k.expLambda)
		}
		p.Trials++
		p.Events += int64(n)
		p.Sum += rate
		if n == 0 {
			p.Good++
		}
	}
	return p, nil
}

func (k *defectKernel) Finalize(t Tally, cfg RunConfig) Result {
	y := div(t.Good, t.Trials)
	return Result{
		Kind: k.Kind(), Trials: t.Trials, Shards: cfg.Shards, Seed: cfg.Seed,
		Counts: map[string]int64{"good": t.Good, "defects": t.Events},
		Values: map[string]float64{
			"yield":       y,
			"stderr":      binomialStdErr(y, t.Trials),
			"mean_lambda": t.Sum / float64(t.Trials),
		},
	}
}

// ---------------------------------------------------------------------------
// layoutdefect: geometric defect simulation on generated layouts

// LayoutDefectSpec parameterizes the geometric kind: spot defects thrown
// at a generated layout (layout.DefectThrower), with the Stapper 1/x^P
// size distribution. Styles map to the §2.2 layout generators.
type LayoutDefectSpec struct {
	// Style picks the generated layout: "sram", "datapath", "asic-tight"
	// or "asic-sparse".
	Style string `json:"style"`
	// LayoutSeed seeds the random-logic generator (asic styles only).
	LayoutSeed uint64 `json:"layout_seed,omitempty"`
	// MeanDefects is the Poisson rate of defects per die per trial.
	MeanDefects float64 `json:"mean_defects"`
	// SizeX0 and SizeP parameterize the defect size distribution
	// (yield.DefectSizeDist) in λ; zero values take the canonical
	// DefaultDefectSizeDist(1) = {0.5, 3}.
	SizeX0 float64 `json:"size_x0,omitempty"`
	SizeP  float64 `json:"size_p,omitempty"`
}

// buildStyleLayout constructs the layout a style names. The fixed
// parameters mirror the layout package's StyleSd reference styles.
func buildStyleLayout(s LayoutDefectSpec) (*layout.Layout, error) {
	switch s.Style {
	case "sram":
		return layout.GenerateSRAMArray(32, 32)
	case "datapath":
		return layout.GenerateDatapath(32, 8, 12)
	case "asic-tight":
		return layout.GenerateRandomLogic(layout.RandomLogicConfig{Cells: 600, RowUtil: 0.9, RouteTracks: 2, Seed: s.LayoutSeed})
	case "asic-sparse":
		return layout.GenerateRandomLogic(layout.RandomLogicConfig{Cells: 600, RowUtil: 0.35, RouteTracks: 10, Seed: s.LayoutSeed})
	default:
		return nil, fmt.Errorf("mcjob: unknown layout style %q (want sram, datapath, asic-tight or asic-sparse)", s.Style)
	}
}

type layoutDefectKernel struct {
	spec    LayoutDefectSpec
	thrower *layout.DefectThrower
}

// NewLayoutDefectKernel validates the spec, generates the layout and
// prepares the thrower.
func NewLayoutDefectKernel(s LayoutDefectSpec) (Kernel, error) {
	if s.SizeX0 == 0 && s.SizeP == 0 {
		d := yield.DefaultDefectSizeDist(1)
		s.SizeX0, s.SizeP = d.X0, d.P
	}
	dist := yield.DefectSizeDist{X0: s.SizeX0, P: s.SizeP}
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	l, err := buildStyleLayout(s)
	if err != nil {
		return nil, err
	}
	thrower, err := layout.NewDefectThrower(l, layout.Metal1, s.MeanDefects,
		func(r *stats.RNG) float64 { return dist.Sample(r) })
	if err != nil {
		return nil, err
	}
	return &layoutDefectKernel{spec: s, thrower: thrower}, nil
}

func (k *layoutDefectKernel) Kind() string       { return "layoutdefect" }
func (k *layoutDefectKernel) ChunkTrials() int64 { return layoutDefectChunkTrials }
func (k *layoutDefectKernel) Keyed() bool        { return false }

func (k *layoutDefectKernel) Chunk(lo, hi int64, r *stats.RNG) (Partial, error) {
	killed, defects := k.thrower.Throw(r, int(hi-lo))
	return Partial{
		Trials: hi - lo,
		Good:   (hi - lo) - int64(killed),
		Events: int64(defects),
	}, nil
}

func (k *layoutDefectKernel) Finalize(t Tally, cfg RunConfig) Result {
	y := div(t.Good, t.Trials)
	return Result{
		Kind: k.Kind(), Trials: t.Trials, Shards: cfg.Shards, Seed: cfg.Seed,
		Counts: map[string]int64{"good": t.Good, "killed": t.Trials - t.Good, "defects": t.Events},
		Values: map[string]float64{
			"yield":        y,
			"stderr":       binomialStdErr(y, t.Trials),
			"mean_defects": div(t.Events, t.Trials),
		},
	}
}

// ---------------------------------------------------------------------------
// montecarlo: eq (4) cost propagation at giga scale

type costKernel struct {
	eval *core.MCEvaluator
}

// NewCostKernel validates the uncertain scenario and prepares the
// chunk evaluator. Unlike core.MonteCarloRun this kind keeps running
// moments instead of all samples, so it scales to trial counts no
// per-sample slice could hold — mean, stderr, min and max, no quantiles.
func NewCostKernel(u core.UncertainScenario) (Kernel, error) {
	eval, err := u.Evaluator()
	if err != nil {
		return nil, err
	}
	return &costKernel{eval: eval}, nil
}

func (k *costKernel) Kind() string       { return "montecarlo" }
func (k *costKernel) ChunkTrials() int64 { return costChunkTrials }
func (k *costKernel) Keyed() bool        { return false }

func (k *costKernel) Chunk(lo, hi int64, r *stats.RNG) (Partial, error) {
	t, err := k.eval.Chunk(r, int(hi-lo))
	if err != nil {
		return Partial{}, err
	}
	return Partial{
		Trials: hi - lo,
		Good:   int64(t.Accepted),
		Events: int64(t.Redraws),
		Sum:    t.Sum, Sum2: t.Sum2, Min: t.Min, Max: t.Max,
	}, nil
}

func (k *costKernel) Finalize(t Tally, cfg RunConfig) Result {
	n := float64(t.Trials)
	mean := t.Sum / n
	variance := 0.0
	if t.Trials > 1 {
		variance = (t.Sum2 - t.Sum*t.Sum/n) / (n - 1)
		if variance < 0 {
			variance = 0 // cancellation guard on near-degenerate inputs
		}
	}
	return Result{
		Kind: k.Kind(), Trials: t.Trials, Shards: cfg.Shards, Seed: cfg.Seed,
		Counts: map[string]int64{"accepted": t.Good, "redraws": t.Events},
		Values: map[string]float64{
			"mean":   mean,
			"stderr": math.Sqrt(variance / n),
			"min":    t.Min,
			"max":    t.Max,
		},
	}
}

// ---------------------------------------------------------------------------
// wafermap: spatial lot simulation, one wafer per trial

type waferMapKernel struct {
	sim *yield.WaferSimulator
}

// NewWaferMapKernel validates the wafer-map config and precomputes the
// geometry. One trial is one wafer, so RunConfig.Trials must equal
// c.Wafers — Run enforces this via the kernel's MaxTrials.
func NewWaferMapKernel(c yield.WaferMapConfig) (Kernel, error) {
	sim, err := yield.NewWaferSimulator(c)
	if err != nil {
		return nil, err
	}
	return &waferMapKernel{sim: sim}, nil
}

func (k *waferMapKernel) Kind() string       { return "wafermap" }
func (k *waferMapKernel) ChunkTrials() int64 { return waferMapChunkTrials }
func (k *waferMapKernel) MaxTrials() int64   { return int64(k.sim.Wafers()) }

// Keyed: the wafer simulator derives per-(wafer, row) streams from
// stats.StreamSeed, so the engine's jump walk is skipped entirely.
func (k *waferMapKernel) Keyed() bool { return true }

func (k *waferMapKernel) Chunk(lo, hi int64, _ *stats.RNG) (Partial, error) {
	var p Partial
	sites := int64(k.sim.Sites())
	for w := lo; w < hi; w++ {
		good := int64(k.sim.Wafer(int(w)))
		y := div(good, sites)
		p.Trials++
		p.Good += good
		p.Events += sites
		p.Sum += y
		p.Sum2 += y * y
	}
	return p, nil
}

func (k *waferMapKernel) Finalize(t Tally, cfg RunConfig) Result {
	y := div(t.Good, t.Events)
	// Wafer-to-wafer spread: the per-wafer yields are i.i.d., so the
	// stderr of the lot mean comes from their sample variance.
	n := float64(t.Trials)
	stderr := 0.0
	if t.Trials > 1 {
		variance := (t.Sum2 - t.Sum*t.Sum/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		stderr = math.Sqrt(variance / n)
	}
	return Result{
		Kind: k.Kind(), Trials: t.Trials, Shards: cfg.Shards, Seed: cfg.Seed,
		Counts: map[string]int64{"good": t.Good, "sites": t.Events},
		Values: map[string]float64{
			"yield":           y,
			"stderr":          stderr,
			"sites_per_wafer": float64(k.sim.Sites()),
		},
	}
}
