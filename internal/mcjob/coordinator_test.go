package mcjob

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// testClock is a manual lease clock: tests advance it to expire leases
// without sleeping.
type testClock struct {
	base   time.Time
	offset atomic.Int64
}

func newTestClock() *testClock {
	return &testClock{base: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) now() time.Time {
	return c.base.Add(time.Duration(c.offset.Load()))
}

func (c *testClock) advance(d time.Duration) { c.offset.Add(int64(d)) }

func defectCoordinator(t *testing.T, cfg RunConfig, opt CoordinatorConfig) (*Coordinator, Kernel) {
	t.Helper()
	k, err := NewDefectKernel(DefectSpec{Lambda: 0.7})
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	c, err := NewCoordinator(k, cfg, opt)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(c.Close)
	return c, k
}

// TestCoordinatorMatchesRunBitIdentical distributes the shards across
// two "workers" that each rebuild the evaluator from the spec (exactly
// what a remote replica does) and interleave their submissions; the
// merged result must be byte-identical to a plain single-host Run.
func TestCoordinatorMatchesRunBitIdentical(t *testing.T) {
	cfg := RunConfig{Trials: 5*defectChunkTrials + 257, Shards: 4, Seed: 99}
	kRef, err := NewDefectKernel(DefectSpec{Lambda: 0.7})
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	want, err := Run(context.Background(), kRef, cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	c, _ := defectCoordinator(t, cfg, CoordinatorConfig{LeaseTTL: time.Minute})
	// The "remote" worker builds its own kernel and evaluator from the
	// same spec, as a peer replica would.
	kRemote, err := NewDefectKernel(DefectSpec{Lambda: 0.7})
	if err != nil {
		t.Fatalf("remote kernel: %v", err)
	}
	remote, err := NewShardEvaluator(kRemote, cfg)
	if err != nil {
		t.Fatalf("remote evaluator: %v", err)
	}
	owners := []string{"worker-a", "worker-b"}
	for i := 0; ; i++ {
		ls := c.Acquire(owners[i%2], 1)
		if len(ls) == 0 {
			break
		}
		s := ls[0].Shard
		// Worker B's shards round-trip through JSON like an HTTP upload.
		parts, err := remote.EvalShard(context.Background(), s)
		if err != nil {
			t.Fatalf("eval shard %d: %v", s, err)
		}
		if i%2 == 1 {
			wire, err := json.Marshal(parts)
			if err != nil {
				t.Fatalf("encode shard %d: %v", s, err)
			}
			parts = nil
			if err := json.Unmarshal(wire, &parts); err != nil {
				t.Fatalf("decode shard %d: %v", s, err)
			}
		}
		accepted, err := c.Submit("tester", s, parts, 0.1)
		if err != nil || !accepted {
			t.Fatalf("submit shard %d: accepted=%v err=%v", s, accepted, err)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatalf("coordinator not done after all shards submitted")
	}
	got, ok := c.Result()
	if !ok {
		t.Fatalf("no result")
	}
	if resultJSON(t, got) != resultJSON(t, want) {
		t.Fatalf("distributed result differs from Run:\n got %s\nwant %s", resultJSON(t, got), resultJSON(t, want))
	}
}

// TestLeaseExpiryReclaimExactlyOnce is the kill -9 story in miniature:
// worker A leases a shard and dies; after the TTL the shard is
// re-granted to worker B, whose submission is accepted; A's zombie
// duplicate is refused without disturbing the fold. The shard's
// partials enter the tally exactly once and the result still matches a
// single-host Run.
func TestLeaseExpiryReclaimExactlyOnce(t *testing.T) {
	clk := newTestClock()
	cfg := RunConfig{Trials: 3*defectChunkTrials + 11, Shards: 3, Seed: 7}
	c, k := defectCoordinator(t, cfg, CoordinatorConfig{LeaseTTL: time.Second, now: clk.now})

	la := c.Acquire("worker-a", 1)
	if len(la) != 1 || la[0].Owner != "worker-a" {
		t.Fatalf("acquire for a: %+v", la)
	}
	s := la[0].Shard

	// Still leased: nobody else can take it, and renewal extends it.
	if lb := c.Acquire("worker-b", c.Shards()); len(lb) != c.Shards()-1 {
		t.Fatalf("live lease not excluded: b got %d shards, want %d", len(lb), c.Shards()-1)
	}
	clk.advance(900 * time.Millisecond)
	if n := c.Renew("worker-a"); n != 1 {
		t.Fatalf("renew extended %d leases, want 1", n)
	}
	c.Renew("worker-b")
	clk.advance(900 * time.Millisecond)
	if got := c.Acquire("worker-c", 1); len(got) != 0 {
		t.Fatalf("renewed lease was reclaimed early: %+v", got)
	}

	// Worker A dies (never renews again); every lease expires and the
	// shard is re-granted — once.
	clk.advance(2 * time.Second)
	lb := c.Acquire("worker-b", 1)
	if len(lb) != 1 || lb[0].Shard != s {
		t.Fatalf("expired shard %d not re-granted: %+v", s, lb)
	}
	for _, l := range c.Acquire("worker-c", c.Shards()) {
		if l.Shard == s {
			t.Fatalf("shard %d granted twice concurrently", s)
		}
	}
	// Let worker-c's claims lapse too (it never computes anything), so
	// the RunLocal pass below can reclaim every remaining shard.
	clk.advance(2 * time.Second)

	parts, err := c.Evaluator().EvalShard(context.Background(), s)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if accepted, err := c.Submit("tester", s, parts, 0.1); err != nil || !accepted {
		t.Fatalf("b's submit: accepted=%v err=%v", accepted, err)
	}
	// Worker A's zombie upload of the same shard: idempotent no-op.
	if accepted, err := c.Submit("tester", s, parts, 0.1); err != nil || accepted {
		t.Fatalf("duplicate submit: accepted=%v err=%v (want false, nil)", accepted, err)
	}

	// Finish the rest and check the fold saw the shard exactly once.
	if err := c.RunLocal(context.Background(), "worker-b", 2); err != nil {
		t.Fatalf("run local: %v", err)
	}
	got, ok := c.Result()
	if !ok {
		t.Fatalf("no result")
	}
	want, err := Run(context.Background(), k, cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if resultJSON(t, got) != resultJSON(t, want) {
		t.Fatalf("result after reclaim differs from Run:\n got %s\nwant %s", resultJSON(t, got), resultJSON(t, want))
	}
}

// TestSubmitRejectsWrongGeometry: a submission whose chunk count or
// per-chunk trial tallies disagree with the plan is an error, not a
// silent fold.
func TestSubmitRejectsWrongGeometry(t *testing.T) {
	cfg := RunConfig{Trials: 3 * defectChunkTrials, Shards: 3, Seed: 1}
	c, _ := defectCoordinator(t, cfg, CoordinatorConfig{})
	parts, err := c.Evaluator().EvalShard(context.Background(), 0)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if _, err := c.Submit("tester", -1, parts, 0); err == nil {
		t.Fatalf("negative shard accepted")
	}
	if _, err := c.Submit("tester", c.Shards(), parts, 0); err == nil {
		t.Fatalf("out-of-range shard accepted")
	}
	if _, err := c.Submit("tester", 0, parts[:0], 0); err == nil {
		t.Fatalf("empty chunk list accepted")
	}
	bad := append([]Partial(nil), parts...)
	bad[0].Trials++
	if _, err := c.Submit("tester", 0, bad, 0); err == nil {
		t.Fatalf("wrong per-chunk trial count accepted")
	}
	if accepted, err := c.Submit("tester", 0, parts, 0); err != nil || !accepted {
		t.Fatalf("valid submit after rejections: accepted=%v err=%v", accepted, err)
	}
}

// TestCoordinatorCheckpointResume: a coordinator killed mid-run resumes
// from its shard log, re-grants only unmerged shards, restores live
// leases from the sidecar, and the final result is byte-identical.
func TestCoordinatorCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	cfg := RunConfig{Trials: 5*defectChunkTrials + 3, Shards: 5, Seed: 21, CheckpointDir: dir}
	c1, k := defectCoordinator(t, cfg, CoordinatorConfig{LeaseTTL: time.Minute, now: clk.now})

	// Merge two shards, lease a third, then "crash".
	for _, s := range []int{0, 1} {
		parts, err := c1.Evaluator().EvalShard(context.Background(), s)
		if err != nil {
			t.Fatalf("eval %d: %v", s, err)
		}
		if accepted, err := c1.Submit("tester", s, parts, 0); err != nil || !accepted {
			t.Fatalf("submit %d: accepted=%v err=%v", s, accepted, err)
		}
	}
	if ls := c1.Acquire("remote-worker", 1); len(ls) != 1 || ls[0].Shard != 2 {
		t.Fatalf("lease before crash: %+v", ls)
	}
	c1.Close()
	if _, err := os.Stat(filepath.Join(dir, leaseFileName)); err != nil {
		t.Fatalf("lease sidecar not persisted: %v", err)
	}

	c2, err := NewCoordinator(k, cfg, CoordinatorConfig{LeaseTTL: time.Minute, now: clk.now})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer c2.Close()
	if p := c2.Progress(); p.ShardsResumed != 2 || p.ShardsDone != 2 {
		t.Fatalf("resumed progress: %+v", p)
	}
	// The restored lease on shard 2 is still live, so only shards 3 and 4
	// are grantable.
	if got := c2.Leasable(); got != 2 {
		t.Fatalf("leasable after resume = %d, want 2 (shard 2 still leased)", got)
	}
	// Expire the restored lease; RunLocal's workers reclaim shard 2 along
	// with the never-leased shards.
	clk.advance(2 * time.Minute)
	if err := c2.RunLocal(context.Background(), "local", 2); err != nil {
		t.Fatalf("run local after expiry: %v", err)
	}
	got, ok := c2.Result()
	if !ok {
		t.Fatalf("no result after resume")
	}
	want, err := Run(context.Background(), k, RunConfig{Trials: cfg.Trials, Shards: cfg.Shards, Seed: cfg.Seed})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if resultJSON(t, got) != resultJSON(t, want) {
		t.Fatalf("resumed distributed result differs from Run:\n got %s\nwant %s", resultJSON(t, got), resultJSON(t, want))
	}
}

// TestRunLocalMatchesRun: the coordinator's in-process worker loop is
// just another execution schedule, so its result is byte-identical to
// Run's.
func TestRunLocalMatchesRun(t *testing.T) {
	cfg := RunConfig{Trials: 7*defectChunkTrials + 123, Shards: 6, Seed: 5}
	c, k := defectCoordinator(t, cfg, CoordinatorConfig{LeaseTTL: time.Minute})
	if err := c.RunLocal(context.Background(), "local", 3); err != nil {
		t.Fatalf("run local: %v", err)
	}
	got, ok := c.Result()
	if !ok {
		t.Fatalf("no result")
	}
	want, err := Run(context.Background(), k, cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if resultJSON(t, got) != resultJSON(t, want) {
		t.Fatalf("RunLocal result differs from Run:\n got %s\nwant %s", resultJSON(t, got), resultJSON(t, want))
	}
}

// TestRunLocalCancel: cancelling the context stops the loop with
// context.Canceled and leaves the run unfinished.
func TestRunLocalCancel(t *testing.T) {
	cfg := RunConfig{Trials: 64 * defectChunkTrials, Shards: 64, Seed: 3}
	c, _ := defectCoordinator(t, cfg, CoordinatorConfig{LeaseTTL: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunLocal(ctx, "local", 2); err != context.Canceled {
		t.Fatalf("cancelled RunLocal returned %v, want context.Canceled", err)
	}
	if _, ok := c.Result(); ok {
		t.Fatalf("cancelled run reported a result")
	}
}
