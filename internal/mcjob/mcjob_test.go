package mcjob

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/yield"
)

// testScenario is a valid eq (4) scenario for the montecarlo kind.
func testScenario() core.UncertainScenario {
	return core.UncertainScenario{
		Base: core.Scenario{
			Process: core.Process{LambdaUM: 0.18, CostPerCM2: 8, Yield: 0.6, WaferAreaCM2: 300},
			Design:  core.Design{Transistors: 10e6, Sd: 300},
			// The default model has Sd0 = 100, so Sd draws straddling it
			// exercise the redraw path.
			DesignCost: core.DefaultDesignCostModel(),
			Wafers:     5000,
		},
		Yield: core.Uniform(0.3, 0.9),
		CmSq:  core.LogNormal(8, 1.4),
		Sd:    core.Uniform(50, 400),
	}
}

// testKernels returns every kernel kind over a small but multi-chunk
// trial count.
func testKernels(t *testing.T) []struct {
	name   string
	kernel Kernel
	trials int64
} {
	t.Helper()
	mk := func(k Kernel, err error) Kernel {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	return []struct {
		name   string
		kernel Kernel
		trials int64
	}{
		{"defect", mk(NewDefectKernel(DefectSpec{Lambda: 0.7})), 3*defectChunkTrials + 257},
		{"defect-clustered", mk(NewDefectKernel(DefectSpec{Lambda: 0.7, Alpha: 2})), 2*defectChunkTrials + 11},
		{"layoutdefect", mk(NewLayoutDefectKernel(LayoutDefectSpec{Style: "sram", MeanDefects: 1.2})), 3*layoutDefectChunkTrials + 100},
		{"montecarlo", mk(NewCostKernel(testScenario())), 3*costChunkTrials + 41},
		{"wafermap", mk(NewWaferMapKernel(yield.WaferMapConfig{
			UsableRadiusMM: 30, DieWMM: 6, DieHMM: 5, Lambda: 0.8,
			EdgeFactor: 2, ClusterAlpha: 1.5, Wafers: 24, Seed: 5,
		})), 24},
	}
}

// mustEqualResults fails unless a and b are identical to the bit,
// including the float values' exact representations and the JSON
// encodings the job API would serve.
func mustEqualResults(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Kind != b.Kind || a.Trials != b.Trials || a.Seed != b.Seed {
		t.Fatalf("%s: envelopes differ: %+v vs %+v", label, a, b)
	}
	if !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Fatalf("%s: counts differ: %v vs %v", label, a.Counts, b.Counts)
	}
	if len(a.Values) != len(b.Values) {
		t.Fatalf("%s: value keys differ: %v vs %v", label, a.Values, b.Values)
	}
	for key, av := range a.Values {
		bv, ok := b.Values[key]
		if !ok || math.Float64bits(av) != math.Float64bits(bv) {
			t.Fatalf("%s: value %q: %v (%x) vs %v (%x)", label, key, av, math.Float64bits(av), bv, math.Float64bits(bv))
		}
	}
}

// resultJSON marshals r with the Shards field zeroed: the shard count is
// reporting metadata, everything else must be byte-stable.
func resultJSON(t *testing.T, r Result) string {
	t.Helper()
	r.Shards = 0
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestShardedDeterminismMatrix(t *testing.T) {
	// The acceptance matrix: every kind, shard counts {1, 2, 8} × worker
	// counts {1, 4}, all bit-identical to the single-shard single-worker
	// serial reference.
	for _, tc := range testKernels(t) {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Run(context.Background(), tc.kernel, RunConfig{Trials: tc.trials, Shards: 1, Workers: 1, Seed: 17})
			if err != nil {
				t.Fatal(err)
			}
			refJSON := resultJSON(t, ref)
			for _, shards := range []int{1, 2, 8} {
				for _, workers := range []int{1, 4} {
					got, err := Run(context.Background(), tc.kernel, RunConfig{Trials: tc.trials, Shards: shards, Workers: workers, Seed: 17})
					if err != nil {
						t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
					}
					label := fmt.Sprintf("shards=%d workers=%d", shards, workers)
					mustEqualResults(t, label, ref, got)
					if gotJSON := resultJSON(t, got); gotJSON != refJSON {
						t.Fatalf("%s: JSON differs:\n%s\n%s", label, gotJSON, refJSON)
					}
				}
			}
		})
	}
}

func TestResumeAfterMidRunKillIsBitIdentical(t *testing.T) {
	// Kill the run after two shards complete, resume from the
	// checkpoint, and require the merged result — and its JSON — to be
	// byte-identical to an uninterrupted run with the same spec. The
	// resumed run must also actually resume, not redraw.
	for _, tc := range testKernels(t) {
		t.Run(tc.name, func(t *testing.T) {
			cfg := RunConfig{Trials: tc.trials, Shards: 8, Workers: 1, Seed: 23}
			uninterrupted, err := Run(context.Background(), tc.kernel, cfg)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			killed := cfg
			killed.CheckpointDir = dir
			ctx, cancel := context.WithCancel(context.Background())
			done := 0
			killed.OnProgress = func(p Progress) {
				done++
				if done == 2 {
					cancel()
				}
			}
			if _, err := Run(ctx, tc.kernel, killed); !errors.Is(err, context.Canceled) {
				t.Fatalf("killed run returned %v, want context.Canceled", err)
			}

			resumed := cfg
			resumed.CheckpointDir = dir
			resumed.Workers = 4
			var first Progress
			resumed.OnProgress = func(p Progress) {
				if first.Shards == 0 {
					first = p
				}
			}
			got, err := Run(context.Background(), tc.kernel, resumed)
			if err != nil {
				t.Fatal(err)
			}
			if first.ShardsResumed < 2 {
				t.Fatalf("resume restored %d shards, want >= 2", first.ShardsResumed)
			}
			mustEqualResults(t, "resumed", uninterrupted, got)
			if resultJSON(t, got) != resultJSON(t, uninterrupted) {
				t.Fatal("resumed JSON differs from uninterrupted run")
			}
		})
	}
}

func TestResumeCompletedRunRedrawsNothing(t *testing.T) {
	k, err := NewDefectKernel(DefectSpec{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := RunConfig{Trials: 3 * defectChunkTrials, Shards: 3, Workers: 1, Seed: 9, CheckpointDir: dir}
	first, err := Run(context.Background(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last Progress
	cfg.OnProgress = func(p Progress) { last = p }
	second, err := Run(context.Background(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if last.ShardsResumed != 3 || last.ShardsDone != 3 {
		t.Fatalf("second run progress %+v, want everything resumed", last)
	}
	mustEqualResults(t, "fully-resumed", first, second)
}

func TestCheckpointSpecMismatchRefuses(t *testing.T) {
	k, err := NewDefectKernel(DefectSpec{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Run(context.Background(), k, RunConfig{Trials: defectChunkTrials, Seed: 1, CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]RunConfig{
		"seed":   {Trials: defectChunkTrials, Seed: 2, CheckpointDir: dir},
		"trials": {Trials: 2 * defectChunkTrials, Seed: 1, CheckpointDir: dir},
		"spec":   {Trials: defectChunkTrials, Seed: 1, CheckpointDir: dir, SpecHash: "deadbeef"},
	} {
		if _, err := Run(context.Background(), k, cfg); !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("%s change: got %v, want ErrCheckpointMismatch", name, err)
		}
	}
}

func TestCheckpointToleratesTornAndGarbageLines(t *testing.T) {
	// A kill -9 can tear the final shard line; stray garbage must not
	// poison the resume — damaged shards just rerun.
	k, err := NewDefectKernel(DefectSpec{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Trials: 4 * defectChunkTrials, Shards: 4, Workers: 1, Seed: 31}
	ref, err := Run(context.Background(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg.CheckpointDir = dir
	if _, err := Run(context.Background(), k, cfg); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, shardLogName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-way through the last record and append junk.
	damaged := append(data[:len(data)-20:len(data)-20], []byte("\nnot json at all\n{\"shard\":99,\"chunks\":[]}\n")...)
	if err := os.WriteFile(logPath, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	var last Progress
	cfg.OnProgress = func(p Progress) { last = p }
	got, err := Run(context.Background(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if last.ShardsResumed == 0 || last.ShardsResumed >= 4 {
		t.Fatalf("resumed %d shards, want partial restore", last.ShardsResumed)
	}
	mustEqualResults(t, "damaged-log", ref, got)
}

func TestRunValidation(t *testing.T) {
	k, err := NewDefectKernel(DefectSpec{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), nil, RunConfig{Trials: 1}); err == nil {
		t.Fatal("accepted nil kernel")
	}
	if _, err := Run(context.Background(), k, RunConfig{Trials: 0}); err == nil {
		t.Fatal("accepted zero trials")
	}
	wm, err := NewWaferMapKernel(yield.WaferMapConfig{
		UsableRadiusMM: 30, DieWMM: 6, DieHMM: 5, Lambda: 0.5, Wafers: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), wm, RunConfig{Trials: 5}); err == nil {
		t.Fatal("wafermap accepted trials beyond the configured lot")
	}
	if _, err := Run(context.Background(), wm, RunConfig{Trials: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestShardCountNormalization(t *testing.T) {
	k, err := NewDefectKernel(DefectSpec{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Two chunks cannot carry eight shards: the count clamps, and the
	// normalized value is what the result reports.
	res, err := Run(context.Background(), k, RunConfig{Trials: 2 * defectChunkTrials, Shards: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 2 {
		t.Fatalf("shards = %d, want clamp to 2 chunks", res.Shards)
	}
	// Default shard count caps at defaultShards.
	res, err = Run(context.Background(), k, RunConfig{Trials: defectChunkTrials, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1 {
		t.Fatalf("shards = %d, want 1", res.Shards)
	}
}

func TestDefectKernelStatisticalSanity(t *testing.T) {
	// Unclustered Poisson yield is exp(-λ); 10⁶ trials pin it to ~4σ.
	k, err := NewDefectKernel(DefectSpec{Lambda: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), k, RunConfig{Trials: 1 << 20, Shards: 16, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-0.7)
	if got := res.Values["yield"]; math.Abs(got-want) > 4*res.Values["stderr"] {
		t.Fatalf("yield %v too far from exp(-λ) = %v (stderr %v)", got, want, res.Values["stderr"])
	}
	if res.Counts["good"] <= 0 || res.Counts["defects"] <= 0 {
		t.Fatalf("counts not populated: %v", res.Counts)
	}
}

func TestProgressAccounting(t *testing.T) {
	k, err := NewDefectKernel(DefectSpec{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	cfg := RunConfig{Trials: 5*defectChunkTrials + 3, Shards: 5, Workers: 1, Seed: 1,
		OnProgress: func(p Progress) { snaps = append(snaps, p) }}
	if _, err := Run(context.Background(), k, cfg); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 5 {
		t.Fatalf("got %d progress snapshots, want 5", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.ShardsDone != 5 || last.TrialsDone != cfg.Trials || last.Trials != cfg.Trials {
		t.Fatalf("final snapshot %+v", last)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].TrialsDone <= snaps[i-1].TrialsDone {
			t.Fatal("trials done not monotonic")
		}
	}
}

func TestKernelSpecValidation(t *testing.T) {
	if _, err := NewDefectKernel(DefectSpec{Lambda: -1}); err == nil {
		t.Fatal("accepted negative lambda")
	}
	if _, err := NewDefectKernel(DefectSpec{Lambda: math.NaN()}); err == nil {
		t.Fatal("accepted NaN lambda")
	}
	if _, err := NewLayoutDefectKernel(LayoutDefectSpec{Style: "nope", MeanDefects: 1}); err == nil {
		t.Fatal("accepted unknown style")
	}
	if _, err := NewLayoutDefectKernel(LayoutDefectSpec{Style: "sram", MeanDefects: -1}); err == nil {
		t.Fatal("accepted negative rate")
	}
	if _, err := NewLayoutDefectKernel(LayoutDefectSpec{Style: "sram", MeanDefects: 1, SizeX0: -2, SizeP: 3}); err == nil {
		t.Fatal("accepted negative size peak")
	}
	if _, err := NewCostKernel(core.UncertainScenario{}); err == nil {
		t.Fatal("accepted zero scenario")
	}
	if _, err := NewWaferMapKernel(yield.WaferMapConfig{}); err == nil {
		t.Fatal("accepted zero wafer config")
	}
}
