package mcjob

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/parallel"
)

// ErrBadSubmission tags Submit errors caused by the submission itself
// (out-of-range shard, wrong chunk geometry) as opposed to coordinator
// failures like a checkpoint write error; the serving layer maps the
// former to 400 and the latter to 500.
var ErrBadSubmission = errors.New("mcjob: bad shard submission")

// Lease is one shard's execution claim in a distributed run: the shard
// id, the worker that holds it, and the wall-clock expiry. A worker
// renews its leases while computing; a lease left to expire (the worker
// was kill -9'd, partitioned, or just slow) is reclaimed and the shard
// granted to the next asker. Duplicate execution is harmless — shard
// partials are deterministic and Submit is idempotent — so leases only
// need to be advisory, never exact.
type Lease struct {
	Shard   int    `json:"shard"`
	Owner   string `json:"owner"`
	Expires int64  `json:"expires_unix_ms"`
}

// leaseFileName is the advisory lease table persisted next to the
// checkpoint manifest. It rides in the checkpoint directory rather than
// inside MANIFEST.json because the manifest is the immutable spec pin
// (compared wholesale on resume) while leases are mutable scheduling
// state; losing the file costs at most one TTL of duplicate compute.
const leaseFileName = "leases.json"

// defaultLeaseTTL is the lease lifetime when CoordinatorConfig does not
// choose: long enough that a renewing worker (renew period TTL/3) never
// loses a healthy lease, short enough that a dead worker's shards
// requeue promptly.
const defaultLeaseTTL = 10 * time.Second

// CoordinatorConfig parameterizes lease handling.
type CoordinatorConfig struct {
	// LeaseTTL is how long a granted or renewed lease lives (<= 0 uses
	// 10s).
	LeaseTTL time.Duration

	// Events, when non-nil, receives the run's lifecycle timeline: lease
	// churn, partial uploads, shard merges, checkpoint flushes. A nil log
	// is inert.
	Events *EventLog

	// now is the test seam for lease-expiry clocks; nil uses time.Now.
	now func() time.Time
}

// Coordinator owns one distributed sharded run: it grants shard leases
// to workers (local or remote), folds submitted shard partials in
// canonical chunk order through the same online merger Run uses, and
// checkpoints accepted shards. Because every chunk's draws and the fold
// order are functions of (kernel spec, trials, seed) alone, the merged
// result is bit-identical (Float64bits) to a single-host Run no matter
// how shards were spread across replicas, how often leases expired, or
// how many duplicate submissions raced.
type Coordinator struct {
	eval      *ShardEvaluator
	k         Kernel
	cfg       RunConfig
	ttl       time.Duration
	now       func() time.Time
	events    *EventLog // nil-safe lifecycle timeline
	cp        *checkpoint
	leasePath string

	mu       sync.Mutex
	tally    Tally
	byShard  [][]Partial
	present  []bool
	cursor   int
	leases   map[int]Lease
	prog     Progress
	finished bool
	result   Result
	done     chan struct{}
}

// NewCoordinator validates the spec, opens (and replays) the checkpoint
// when cfg.CheckpointDir is set, restores any persisted leases that are
// still live, and — if the checkpoint already covers every shard —
// finishes immediately.
func NewCoordinator(k Kernel, cfg RunConfig, opt CoordinatorConfig) (*Coordinator, error) {
	eval, err := NewShardEvaluator(k, cfg)
	if err != nil {
		return nil, err
	}
	p := eval.p
	cfg.Shards = p.shards
	c := &Coordinator{
		eval: eval, k: k, cfg: cfg,
		ttl:     opt.LeaseTTL,
		now:     opt.now,
		events:  opt.Events,
		byShard: make([][]Partial, p.shards),
		present: make([]bool, p.shards),
		leases:  map[int]Lease{},
		done:    make(chan struct{}),
	}
	if c.ttl <= 0 {
		c.ttl = defaultLeaseTTL
	}
	if c.now == nil {
		c.now = time.Now
	}
	c.prog = Progress{Shards: p.shards, Trials: cfg.Trials, LastShard: -1}

	if cfg.CheckpointDir != "" {
		cp, restored, err := openCheckpoint(cfg.CheckpointDir, manifest{
			Version: checkpointVersion, Kind: k.Kind(),
			Trials: cfg.Trials, ChunkTrials: p.chunkTrials,
			Shards: p.shards, Seed: cfg.Seed, SpecHash: cfg.SpecHash,
		}, p)
		if err != nil {
			return nil, err
		}
		c.cp = cp
		c.leasePath = filepath.Join(cfg.CheckpointDir, leaseFileName)
		c.prog.CheckpointSkipped = cp.skippedRecords
		for s, parts := range restored {
			c.byShard[s] = parts
			c.present[s] = true
			c.prog.ShardsDone++
			c.prog.ShardsResumed++
			c.prog.TrialsDone += p.shardTrials(s)
		}
		c.prog.TrialsResumed = c.prog.TrialsDone
		if c.prog.ShardsResumed > 0 {
			c.events.Append(EventCheckpointResume, -1, "",
				fmt.Sprintf("%d shards restored from checkpoint", c.prog.ShardsResumed))
		}
		c.advanceLocked()
		c.loadLeases()
	}

	if cfg.OnProgress != nil && (c.prog.ShardsResumed > 0 || c.prog.CheckpointSkipped > 0) {
		cfg.OnProgress(c.prog)
	}
	if c.cursor == p.shards {
		c.finishLocked()
	}
	return c, nil
}

// Shards returns the resolved shard count of the plan.
func (c *Coordinator) Shards() int { return c.eval.p.shards }

// TTL returns the lease lifetime.
func (c *Coordinator) TTL() time.Duration { return c.ttl }

// Evaluator returns the run's shard evaluator, for workers that compute
// leased shards in-process.
func (c *Coordinator) Evaluator() *ShardEvaluator { return c.eval }

// advanceLocked folds newly contiguous shard partials in ascending
// chunk order. Callers hold c.mu (or, in NewCoordinator, exclusive
// access).
func (c *Coordinator) advanceLocked() {
	for c.cursor < c.eval.p.shards && c.present[c.cursor] {
		for _, pt := range c.byShard[c.cursor] {
			c.tally.fold(pt)
		}
		c.byShard[c.cursor] = nil
		c.events.Append(EventShardMerged, c.cursor, "", "")
		c.cursor++
	}
}

// finishLocked seals the run: the canonical fold has covered every
// chunk, so Finalize's output is the run's one true result.
func (c *Coordinator) finishLocked() {
	if c.finished {
		return
	}
	c.finished = true
	c.result = c.k.Finalize(c.tally, c.cfg)
	c.leases = map[int]Lease{}
	c.persistLeasesLocked()
	close(c.done)
}

// reclaimLocked drops expired leases; their shards become grantable
// again. Lazy: called on every Acquire/Leasable, never on a timer.
func (c *Coordinator) reclaimLocked() {
	nowMS := c.now().UnixMilli()
	for s, l := range c.leases {
		switch {
		case c.present[s]:
			// The shard arrived anyway (a duplicate beat the lease holder);
			// the lease is merely obsolete.
			delete(c.leases, s)
			c.events.Append(EventLeaseReclaimed, s, l.Owner, "shard already merged")
		case l.Expires <= nowMS:
			// The holder went silent past the TTL — kill -9, partition, or
			// stall. The shard becomes grantable again.
			delete(c.leases, s)
			c.events.Append(EventLeaseExpired, s, l.Owner, "")
			c.events.Append(EventLeaseReclaimed, s, l.Owner, "lease expired")
		}
	}
}

// Acquire grants up to max pending, unleased shards to owner (lowest
// shard id first) and returns the granted leases. Expired leases are
// reclaimed first, so a dead worker's shards are re-granted here. An
// empty return means everything is finished, merged, or leased to live
// owners — callers should poll again after a fraction of the TTL.
func (c *Coordinator) Acquire(owner string, max int) []Lease {
	if max <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return nil
	}
	c.reclaimLocked()
	exp := c.now().Add(c.ttl).UnixMilli()
	var granted []Lease
	for s := 0; s < c.eval.p.shards && len(granted) < max; s++ {
		if c.present[s] {
			continue
		}
		if _, held := c.leases[s]; held {
			continue
		}
		l := Lease{Shard: s, Owner: owner, Expires: exp}
		c.leases[s] = l
		c.events.Append(EventLeaseAcquired, s, owner, "")
		granted = append(granted, l)
	}
	if len(granted) > 0 {
		c.persistLeasesLocked()
	}
	return granted
}

// Renew extends every live lease owner holds to a full TTL from now and
// returns how many it extended. A worker renews at TTL/3 so a healthy
// lease never lapses.
func (c *Coordinator) Renew(owner string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return 0
	}
	exp := c.now().Add(c.ttl).UnixMilli()
	n := 0
	for s, l := range c.leases {
		if l.Owner == owner {
			l.Expires = exp
			c.leases[s] = l
			n++
		}
	}
	if n > 0 {
		c.persistLeasesLocked()
		c.events.Append(EventLeaseRenewed, -1, owner, fmt.Sprintf("%d leases", n))
	}
	return n
}

// Submit folds one completed shard's per-chunk partials into the run on
// behalf of owner (the submitting worker's id, recorded in the event
// timeline). It is idempotent: a duplicate of an already-merged shard (a
// zombie whose lease expired, a retried upload) returns (false, nil) and
// changes nothing. The partials are validated against the plan's
// geometry first — a submission from a mis-built evaluator is an error,
// never silently folded. seconds is the reported wall-clock evaluation
// time, forwarded to OnProgress.
func (c *Coordinator) Submit(owner string, shard int, parts []Partial, seconds float64) (accepted bool, err error) {
	p := c.eval.p
	if shard < 0 || shard >= p.shards {
		c.events.Append(EventPartialRejected, shard, owner, "shard out of range")
		return false, fmt.Errorf("%w: shard %d out of range [0,%d)", ErrBadSubmission, shard, p.shards)
	}
	cLo, cHi := p.shardChunks(shard)
	if len(parts) != cHi-cLo {
		c.events.Append(EventPartialRejected, shard, owner, "wrong chunk count")
		return false, fmt.Errorf("%w: shard %d carries %d chunk partials, plan needs %d", ErrBadSubmission, shard, len(parts), cHi-cLo)
	}
	for i, pt := range parts {
		tLo, tHi := p.chunkTrialRange(cLo + i)
		if pt.Trials != tHi-tLo {
			c.events.Append(EventPartialRejected, shard, owner, "wrong trial geometry")
			return false, fmt.Errorf("%w: shard %d chunk %d tallies %d trials, plan needs %d", ErrBadSubmission, shard, cLo+i, pt.Trials, tHi-tLo)
		}
	}

	c.mu.Lock()
	if c.finished || c.present[shard] {
		c.mu.Unlock()
		c.events.Append(EventPartialDuplicate, shard, owner, "")
		return false, nil
	}
	c.mu.Unlock()

	// Checkpoint outside the merge lock: writeShard fsyncs, and has its
	// own mutex. Two racing duplicates may both append — identical bytes,
	// and replay keeps the last record, so the log stays consistent.
	if c.cp != nil {
		if err := c.cp.writeShard(shard, parts); err != nil {
			return false, err
		}
		c.events.Append(EventCheckpointFlush, shard, owner, "")
	}

	c.mu.Lock()
	if c.finished || c.present[shard] {
		c.mu.Unlock()
		c.events.Append(EventPartialDuplicate, shard, owner, "")
		return false, nil
	}
	c.events.Append(EventPartialAccepted, shard, owner, fmt.Sprintf("%.3fs", seconds))
	c.byShard[shard] = parts
	c.present[shard] = true
	delete(c.leases, shard)
	c.advanceLocked()
	c.prog.ShardsDone++
	c.prog.TrialsDone += p.shardTrials(shard)
	c.prog.LastShard = shard
	c.prog.LastShardSeconds = seconds
	snapshot := c.prog
	c.persistLeasesLocked()
	if c.cursor == p.shards {
		c.finishLocked()
	}
	c.mu.Unlock()

	if c.cfg.OnProgress != nil {
		c.cfg.OnProgress(snapshot)
	}
	return true, nil
}

// Pending returns how many shards have not been merged yet.
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ok := range c.present {
		if !ok {
			n++
		}
	}
	return n
}

// Leasable returns how many shards a new Acquire could be granted right
// now: pending shards minus live leases, after reclaiming expired ones.
func (c *Coordinator) Leasable() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return 0
	}
	c.reclaimLocked()
	n := 0
	for s, ok := range c.present {
		if ok {
			continue
		}
		if _, held := c.leases[s]; !held {
			n++
		}
	}
	return n
}

// Done is closed once every shard has been merged and the result is
// available.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Result returns the merged result and whether the run has finished.
func (c *Coordinator) Result() (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result, c.finished
}

// Progress returns the current progress snapshot.
func (c *Coordinator) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prog
}

// Close releases the checkpoint file handle. Safe on a nil-checkpoint
// coordinator; call once the run is finished or abandoned.
func (c *Coordinator) Close() {
	if c.cp != nil {
		c.cp.close()
	}
}

// RunLocal drives the coordinator with in-process workers until the run
// finishes (returns nil), ctx is cancelled (returns ctx.Err()), or a
// shard evaluation fails (returns the first error). It participates in
// the same lease protocol as remote workers — acquire one shard at a
// time, renew at TTL/3 while computing, submit — so local and remote
// compute interleave freely, and a remote worker's expired leases are
// picked up here.
func (c *Coordinator) RunLocal(ctx context.Context, owner string, workers int) error {
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers > c.eval.p.shards {
		workers = c.eval.p.shards
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	poll := c.ttl / 8
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-c.done:
					return
				case <-ctx.Done():
					return
				default:
				}
				ls := c.Acquire(owner, 1)
				if len(ls) == 0 {
					// Everything is merged or leased elsewhere; wait for the
					// run to finish or a lease to expire.
					select {
					case <-c.done:
						return
					case <-ctx.Done():
						return
					case <-time.After(poll):
					}
					continue
				}
				s := ls[0].Shard
				stopRenew := make(chan struct{})
				var renewWG sync.WaitGroup
				renewWG.Add(1)
				go func() {
					defer renewWG.Done()
					t := time.NewTicker(c.ttl / 3)
					defer t.Stop()
					for {
						select {
						case <-stopRenew:
							return
						case <-t.C:
							c.Renew(owner)
						}
					}
				}()
				start := time.Now()
				parts, err := c.eval.EvalShard(ctx, s)
				close(stopRenew)
				renewWG.Wait()
				if err != nil {
					if ctx.Err() == nil {
						fail(err)
					}
					return
				}
				if _, err := c.Submit(owner, s, parts, time.Since(start).Seconds()); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	select {
	case <-c.done:
		return nil
	default:
		return ctx.Err()
	}
}

// persistLeasesLocked writes the lease table (sorted by shard, one
// atomic-ish tmp+rename, no fsync) next to the checkpoint. Best-effort
// by design: the table is advisory — after a coordinator crash an
// out-of-date or missing file costs at most one TTL of duplicate
// compute, which idempotent Submit absorbs. Callers hold c.mu.
func (c *Coordinator) persistLeasesLocked() {
	if c.leasePath == "" {
		return
	}
	ls := make([]Lease, 0, len(c.leases))
	for _, l := range c.leases {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Shard < ls[j].Shard })
	data, err := json.Marshal(ls)
	if err != nil {
		return
	}
	tmp := c.leasePath + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, c.leasePath)
}

// loadLeases restores persisted leases that are still live and cover
// shards not already merged. Unreadable or stale entries are dropped —
// the affected shards simply become grantable sooner.
func (c *Coordinator) loadLeases() {
	if c.leasePath == "" {
		return
	}
	data, err := os.ReadFile(c.leasePath)
	if err != nil {
		return
	}
	var ls []Lease
	if json.Unmarshal(data, &ls) != nil {
		return
	}
	nowMS := c.now().UnixMilli()
	for _, l := range ls {
		if l.Shard < 0 || l.Shard >= c.eval.p.shards || c.present[l.Shard] || l.Expires <= nowMS {
			continue
		}
		c.leases[l.Shard] = l
	}
}
