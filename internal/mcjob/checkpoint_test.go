package mcjob

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckpointFirstOpenReopen exercises the durability path end to
// end: a first open creates the directory, the manifest (atomic write +
// directory sync) and the shard log (O_CREATE + directory sync); a
// reopen verifies the manifest and replays the appended shard with
// nothing skipped.
func TestCheckpointFirstOpenReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	m := manifest{Version: checkpointVersion, Kind: "defect", Trials: 2 * defectChunkTrials,
		ChunkTrials: defectChunkTrials, Shards: 2, Seed: 9}
	p := newPlan(m.Trials, m.ChunkTrials, m.Shards)

	cp, restored, err := openCheckpoint(dir, m, p)
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	if len(restored) != 0 || cp.skippedRecords != 0 {
		t.Fatalf("fresh checkpoint restored %d shards, skipped %d", len(restored), cp.skippedRecords)
	}
	want := []Partial{{Trials: defectChunkTrials, Good: 41, Sum: 1.5}}
	if err := cp.writeShard(1, want); err != nil {
		t.Fatalf("writeShard: %v", err)
	}
	cp.close()

	cp2, restored2, err := openCheckpoint(dir, m, p)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer cp2.close()
	if cp2.skippedRecords != 0 {
		t.Fatalf("reopen skipped %d records, want 0", cp2.skippedRecords)
	}
	got, ok := restored2[1]
	if !ok || len(got) != 1 || got[0] != want[0] {
		t.Fatalf("reopen restored %v, want shard 1 = %v", restored2, want)
	}
}

// TestCheckpointOversizedRecordSkippedNotFatal is the regression test
// for the bufio.Scanner ErrTooLong swallow: an oversized line must be
// skipped and counted, and — critically — every record after it must
// still replay. The old scanner stopped dead at the oversized line, so
// all later shards silently reran.
func TestCheckpointOversizedRecordSkippedNotFatal(t *testing.T) {
	saved := maxShardRecordBytes
	maxShardRecordBytes = 4096
	defer func() { maxShardRecordBytes = saved }()

	k, err := NewDefectKernel(DefectSpec{Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Trials: 4 * defectChunkTrials, Shards: 4, Workers: 1, Seed: 17}
	ref, err := Run(context.Background(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg.CheckpointDir = dir
	if _, err := Run(context.Background(), k, cfg); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, shardLogName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Prepend a line well past the record cap (and larger than the
	// reader's internal buffer would hand back in one fragment): with
	// the scanner-based replay this one line dropped all four real
	// records behind it.
	oversized := strings.Repeat("x", maxShardRecordBytes+100) + "\n"
	if err := os.WriteFile(logPath, append([]byte(oversized), data...), 0o644); err != nil {
		t.Fatal(err)
	}

	var first Progress
	cfg.OnProgress = func(p Progress) {
		if first.Shards == 0 {
			first = p
		}
	}
	got, err := Run(context.Background(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.ShardsResumed != 4 {
		t.Fatalf("resumed %d shards behind the oversized line, want all 4", first.ShardsResumed)
	}
	if first.CheckpointSkipped != 1 {
		t.Fatalf("CheckpointSkipped = %d, want 1 counted oversized record", first.CheckpointSkipped)
	}
	mustEqualResults(t, "oversized-record", ref, got)
}

// TestReplayShardLogCountsEveryDamageKind pins the skip accounting:
// oversized, malformed, out-of-range and wrong-chunk-count lines each
// count once, and a valid record surrounded by them still restores.
func TestReplayShardLogCountsEveryDamageKind(t *testing.T) {
	saved := maxShardRecordBytes
	maxShardRecordBytes = 256
	defer func() { maxShardRecordBytes = saved }()

	p := newPlan(4*defectChunkTrials, defectChunkTrials, 4)
	log := strings.Join([]string{
		strings.Repeat("y", 300),                  // oversized
		"not json",                                // malformed
		`{"shard":99,"chunks":[]}`,                // out of range
		`{"shard":1,"chunks":[]}`,                 // wrong chunk count (want 1)
		`{"shard":2,"chunks":[{"t":8192,"g":5}]}`, // valid
	}, "\n") + "\n"
	restored, skipped, err := replayShardLog(strings.NewReader(log), p)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 4 {
		t.Fatalf("skipped = %d, want 4", skipped)
	}
	if len(restored) != 1 || restored[2][0].Good != 5 {
		t.Fatalf("restored = %v, want only shard 2", restored)
	}
}
