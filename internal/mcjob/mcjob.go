// Package mcjob is the sharded Monte Carlo execution engine: it splits
// one huge simulation — abstract defect yield, geometric layout defects,
// cost Monte Carlo, wafer maps — into fixed-size shards of trial chunks,
// evaluates shards concurrently on the worker pool, and merges partial
// tallies online in canonical chunk order.
//
// Determinism is the package's contract. Trials are divided into fixed
// unit chunks whose size depends only on the kernel kind; each chunk
// draws from its own guaranteed-disjoint RNG sub-stream (chunk c's
// stream is the seed state advanced c stats.RNG.Jump steps — exactly
// SplitN's layout, walked incrementally so a 10⁹-trial run never
// materializes millions of streams). A shard is a contiguous chunk
// range, and the merger folds per-chunk partials in ascending global
// chunk order regardless of shard completion order. Both the draws and
// the float fold order are therefore functions of (kernel, trials, seed)
// alone, so the merged result is bit-identical (Float64bits) to a
// single-worker single-shard run for every shard count, worker count and
// interleaving.
//
// Completed shards checkpoint to disk (see checkpoint.go): a killed run
// restarted with the same spec replays nothing but the pending shards.
package mcjob

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Partial is one chunk's tally. Float accumulators are folded in draw
// order inside the chunk; integer fields are exact under any grouping.
// The short JSON keys keep checkpoint shard lines compact — a 10⁹-trial
// run writes one Partial per chunk. encoding/json renders float64 in
// shortest round-trip form, so a Partial survives a checkpoint cycle
// bit-identically.
type Partial struct {
	Trials int64   `json:"t"`
	Good   int64   `json:"g,omitempty"`
	Events int64   `json:"e,omitempty"`
	Sum    float64 `json:"s,omitempty"`
	Sum2   float64 `json:"s2,omitempty"`
	Min    float64 `json:"mn,omitempty"`
	Max    float64 `json:"mx,omitempty"`
}

// Tally is the canonical-order fold of chunk partials. Sum and friends
// are only meaningful once every chunk has been folded.
type Tally struct {
	Chunks int
	Trials int64
	Good   int64
	Events int64
	Sum    float64
	Sum2   float64
	Min    float64
	Max    float64
}

// fold absorbs the next chunk partial in canonical order.
func (t *Tally) fold(p Partial) {
	if t.Chunks == 0 {
		t.Min, t.Max = p.Min, p.Max
	} else {
		if p.Min < t.Min {
			t.Min = p.Min
		}
		if p.Max > t.Max {
			t.Max = p.Max
		}
	}
	t.Chunks++
	t.Trials += p.Trials
	t.Good += p.Good
	t.Events += p.Events
	t.Sum += p.Sum
	t.Sum2 += p.Sum2
}

// Result is the deterministic outcome envelope of a sharded run. Counts
// and Values marshal with sorted keys (encoding/json sorts map keys), so
// for a fixed spec the JSON encoding is byte-identical across runs,
// shard counts and checkpoint resumes — which is what lets the smoke
// test compare a resumed run to an uninterrupted one bytewise.
type Result struct {
	Kind   string             `json:"kind"`
	Trials int64              `json:"trials"`
	Shards int                `json:"shards"`
	Seed   uint64             `json:"seed"`
	Counts map[string]int64   `json:"counts"`
	Values map[string]float64 `json:"values"`
}

// Progress is a point-in-time snapshot delivered to RunConfig.OnProgress
// after every completed shard (and once up front on resume).
type Progress struct {
	Shards        int
	ShardsDone    int
	ShardsResumed int
	// CheckpointSkipped counts shard-log records dropped during replay
	// (torn, malformed, oversized or inconsistent): those shards rerun,
	// and the count is the signal that they did.
	CheckpointSkipped int
	Trials            int64
	TrialsDone        int64
	TrialsResumed     int64
	// LastShard identifies the shard whose completion triggered this
	// snapshot (-1 for the initial resume snapshot), and
	// LastShardSeconds its wall-clock evaluation time.
	LastShard        int
	LastShardSeconds float64
}

// RunConfig parameterizes one sharded run.
type RunConfig struct {
	Trials int64
	// Shards is the shard count; <= 0 picks min(chunks, 64). More shards
	// than chunks is clamped to chunks — a shard always covers at least
	// one chunk. The shard count never affects the merged result, only
	// checkpoint granularity and scheduling.
	Shards int
	Seed   uint64
	// Workers bounds evaluation goroutines; <= 0 uses
	// parallel.DefaultWorkers. Never affects the result.
	Workers int
	// CheckpointDir, when non-empty, persists completed shards under this
	// directory and resumes from it on restart. The directory is created
	// if missing; a manifest mismatch (different spec) fails the run.
	CheckpointDir string
	// SpecHash optionally pins the full job spec in the checkpoint
	// manifest, guarding against two different jobs sharing a directory.
	SpecHash string
	// OnProgress, when set, receives a snapshot after each completed
	// shard. Called outside the engine's lock, possibly concurrently.
	OnProgress func(Progress)
}

// defaultShards bounds the shard count when the caller does not choose:
// enough for checkpoint granularity and scheduling freedom, few enough
// that manifest and progress stay small.
const defaultShards = 64

// plan fixes the geometry of a run: unit chunks of kernel-kind-specific
// size, shards as contiguous chunk ranges split as evenly as possible.
// Everything depends only on (trials, chunkTrials, shards).
type plan struct {
	trials      int64
	chunkTrials int64
	chunks      int
	shards      int
}

func newPlan(trials, chunkTrials int64, shards int) plan {
	p := plan{trials: trials, chunkTrials: chunkTrials}
	p.chunks = int((trials + chunkTrials - 1) / chunkTrials)
	p.shards = shards
	if p.shards <= 0 {
		p.shards = defaultShards
	}
	if p.shards > p.chunks {
		p.shards = p.chunks
	}
	return p
}

// NormalizedShards reports the shard count Run actually uses for a
// kernel with unit chunks of chunkTrials: the caller's choice with the
// default applied and the chunk-count clamp, exactly as the execution
// plan resolves it. The serve layer canonicalizes job specs through this
// before hashing them into job IDs, so an omitted shard count and an
// explicit one that resolves identically name the same job.
func NormalizedShards(chunkTrials, trials int64, shards int) int {
	if chunkTrials <= 0 || trials <= 0 {
		return 0
	}
	return newPlan(trials, chunkTrials, shards).shards
}

// shardChunks returns shard s's half-open global chunk range.
func (p plan) shardChunks(s int) (lo, hi int) {
	lo = int(int64(s) * int64(p.chunks) / int64(p.shards))
	hi = int(int64(s+1) * int64(p.chunks) / int64(p.shards))
	return lo, hi
}

// chunkTrialRange returns chunk c's half-open global trial range; the
// final chunk absorbs the remainder.
func (p plan) chunkTrialRange(c int) (lo, hi int64) {
	lo = int64(c) * p.chunkTrials
	hi = lo + p.chunkTrials
	if hi > p.trials {
		hi = p.trials
	}
	return lo, hi
}

// shardTrials returns the trial count shard s covers.
func (p plan) shardTrials(s int) int64 {
	cLo, cHi := p.shardChunks(s)
	if cLo >= cHi {
		return 0
	}
	lo, _ := p.chunkTrialRange(cLo)
	_, hi := p.chunkTrialRange(cHi - 1)
	return hi - lo
}

// Kernel is one simulation kind, prepared once and evaluated chunk by
// chunk. Chunk must be pure over (lo, hi, r): it is called concurrently
// and must consume only the stream it is handed.
type Kernel interface {
	// Kind names the kernel in results and checkpoint manifests.
	Kind() string
	// ChunkTrials is the fixed unit-chunk size. It is part of the
	// deterministic contract: changing it re-keys every stream.
	ChunkTrials() int64
	// Keyed reports whether the kernel derives its own randomness from
	// the trial index (stats.StreamSeed) instead of the jump-walked
	// stream; for keyed kernels Chunk receives a nil RNG.
	Keyed() bool
	// Chunk evaluates trials [lo, hi) from r and returns their tally.
	Chunk(lo, hi int64, r *stats.RNG) (Partial, error)
	// Finalize maps the full-run tally to the result envelope.
	Finalize(t Tally, cfg RunConfig) Result
}

// trialBounded is implemented by kernels whose spec fixes the trial
// count (the wafer-map kernel simulates exactly its configured lot);
// Run rejects a mismatched RunConfig.Trials instead of indexing past
// the precomputed per-wafer state.
type trialBounded interface {
	MaxTrials() int64
}

// Run executes the sharded simulation and returns the merged result.
// The result depends only on (kernel spec, Trials, Seed): Shards,
// Workers, scheduling, and any checkpoint/resume history are all
// invisible in the output, bit for bit.
func Run(ctx context.Context, k Kernel, cfg RunConfig) (Result, error) {
	eval, err := NewShardEvaluator(k, cfg)
	if err != nil {
		return Result{}, err
	}
	p := eval.p
	cfg.Shards = p.shards // normalized count is what Finalize reports

	ctx, span := obs.StartSpan(ctx, "mcjob.run")
	if span != nil {
		span.SetAttr("kind", k.Kind())
		span.SetAttr("trials", strconv.FormatInt(cfg.Trials, 10))
		span.SetAttr("shards", strconv.Itoa(p.shards))
		defer span.End()
	}

	// Restore completed shards from the checkpoint, if any.
	var cp *checkpoint
	restored := map[int][]Partial{}
	if cfg.CheckpointDir != "" {
		var err error
		cp, restored, err = openCheckpoint(cfg.CheckpointDir, manifest{
			Version: checkpointVersion, Kind: k.Kind(),
			Trials: cfg.Trials, ChunkTrials: p.chunkTrials,
			Shards: p.shards, Seed: cfg.Seed, SpecHash: cfg.SpecHash,
		}, p)
		if err != nil {
			return Result{}, err
		}
		defer cp.close()
	}

	// Online merger: completed shard partials park in byShard until the
	// cursor reaches them, then fold in ascending chunk order. Shards
	// restored from the checkpoint enter the same machinery.
	var (
		mu      sync.Mutex
		tally   Tally
		byShard = make([][]Partial, p.shards)
		present = make([]bool, p.shards)
		cursor  int
	)
	advance := func() {
		for cursor < p.shards && present[cursor] {
			for _, pt := range byShard[cursor] {
				tally.fold(pt)
			}
			byShard[cursor] = nil
			cursor++
		}
	}
	prog := Progress{Shards: p.shards, Trials: cfg.Trials, LastShard: -1}
	if cp != nil {
		prog.CheckpointSkipped = cp.skippedRecords
	}
	pending := make([]int, 0, p.shards)
	for s := 0; s < p.shards; s++ {
		if parts, ok := restored[s]; ok {
			byShard[s] = parts
			present[s] = true
			prog.ShardsDone++
			prog.ShardsResumed++
			prog.TrialsDone += p.shardTrials(s)
		} else {
			pending = append(pending, s)
		}
	}
	prog.TrialsResumed = prog.TrialsDone
	advance()
	if span != nil {
		span.SetAttr("resumed", strconv.Itoa(prog.ShardsResumed))
		if prog.CheckpointSkipped > 0 {
			span.SetAttr("checkpoint_skipped", strconv.Itoa(prog.CheckpointSkipped))
		}
	}
	if cfg.OnProgress != nil && (prog.ShardsResumed > 0 || prog.CheckpointSkipped > 0) {
		cfg.OnProgress(prog)
	}

	err = parallel.ForEach(ctx, len(pending), cfg.Workers, func(i int) error {
		s := pending[i]
		start := time.Now()
		parts, err := eval.EvalShard(ctx, s)
		if err != nil {
			return err
		}
		if cp != nil {
			if err := cp.writeShard(s, parts); err != nil {
				return err
			}
		}
		mu.Lock()
		byShard[s] = parts
		present[s] = true
		advance()
		prog.ShardsDone++
		prog.TrialsDone += p.shardTrials(s)
		prog.LastShard = s
		prog.LastShardSeconds = time.Since(start).Seconds()
		snapshot := prog
		mu.Unlock()
		if cfg.OnProgress != nil {
			cfg.OnProgress(snapshot)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return k.Finalize(tally, cfg), nil
}
