package itrs

import (
	"math"
	"testing"
)

func TestNodesChronologicalAndValid(t *testing.T) {
	nodes := Nodes()
	if len(nodes) < 5 {
		t.Fatalf("roadmap has %d nodes, want at least 5", len(nodes))
	}
	for i, n := range nodes {
		if err := n.Validate(); err != nil {
			t.Fatalf("node %d invalid: %v", i, err)
		}
		if i > 0 {
			prev := nodes[i-1]
			if n.Year <= prev.Year {
				t.Fatalf("years not increasing at index %d", i)
			}
			if n.LambdaUM >= prev.LambdaUM {
				t.Fatalf("feature size not shrinking at index %d", i)
			}
			if n.Transistors <= prev.Transistors {
				t.Fatalf("transistor count not growing at index %d", i)
			}
		}
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	a := Nodes()
	a[0].Transistors = -1
	b := Nodes()
	if b[0].Transistors == -1 {
		t.Fatal("Nodes exposes internal state")
	}
}

func TestMooreDoubling(t *testing.T) {
	// Reconstruction law: ×2 functions every 2 years → ×2.83 per 3-year
	// node, within rounding.
	nodes := Nodes()
	for i := 1; i < len(nodes); i++ {
		years := float64(nodes[i].Year - nodes[i-1].Year)
		growth := nodes[i].Transistors / nodes[i-1].Transistors
		want := math.Pow(2, years/2)
		if math.Abs(growth/want-1) > 0.05 {
			t.Errorf("%d→%d: growth %v, Moore says %v", nodes[i-1].Year, nodes[i].Year, growth, want)
		}
	}
}

func TestNodeByYear(t *testing.T) {
	n, err := NodeByYear(1999)
	if err != nil {
		t.Fatal(err)
	}
	if n.LambdaUM != 0.180 || n.Transistors != 21e6 {
		t.Fatalf("1999 node = %+v", n)
	}
	if _, err := NodeByYear(2000); err == nil {
		t.Fatal("accepted missing year")
	}
}

func TestNodeByLambda(t *testing.T) {
	n, err := NodeByLambda(0.13)
	if err != nil {
		t.Fatal(err)
	}
	if n.Year != 2002 {
		t.Fatalf("0.13 µm node year = %d, want 2002", n.Year)
	}
	if _, err := NodeByLambda(0.2); err == nil {
		t.Fatal("accepted missing node")
	}
}

func TestDensityGrows(t *testing.T) {
	nodes := Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Density() <= nodes[i-1].Density() {
			t.Fatalf("density not growing at %d", nodes[i].Year)
		}
	}
}

func TestDeriveFirstNode(t *testing.T) {
	n, _ := NodeByYear(1999)
	d, err := Derive(n)
	if err != nil {
		t.Fatal(err)
	}
	// Implied s_d = 1.70/(21e6·(0.18e-4 cm)²) ≈ 250.
	if math.Abs(d.ImpliedSd-250) > 2 {
		t.Fatalf("implied s_d = %v, want ≈250", d.ImpliedSd)
	}
	// Required s_d = 34·0.8/(8·λ²·21e6) ≈ 500.
	if math.Abs(d.RequiredSd-500) > 3 {
		t.Fatalf("required s_d = %v, want ≈500", d.RequiredSd)
	}
	// Ratio = dieArea·Csq/(target·Y) = 1.7·8/27.2 = 0.5.
	if math.Abs(d.Ratio-0.5) > 0.01 {
		t.Fatalf("ratio = %v, want 0.5", d.Ratio)
	}
	// Roadmap die manufacturing cost = 8·1.7/0.8 = $17.
	if math.Abs(d.DieCost-17) > 0.01 {
		t.Fatalf("die cost = %v, want 17", d.DieCost)
	}
}

func TestDeriveAllPaperShapes(t *testing.T) {
	rows, err := DeriveAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		// Figure 2 shape: the ITRS-implied s_d falls monotonically — the
		// roadmap assumes ever-denser design.
		if rows[i].ImpliedSd >= rows[i-1].ImpliedSd {
			t.Errorf("implied s_d not falling at %d: %v after %v", rows[i].Year, rows[i].ImpliedSd, rows[i-1].ImpliedSd)
		}
		// Figure 3 shape: the required s_d falls even faster...
		if rows[i].RequiredSd >= rows[i-1].RequiredSd {
			t.Errorf("required s_d not falling at %d", rows[i].Year)
		}
		// ...so the implied/required ratio rises toward 1.
		if rows[i].Ratio <= rows[i-1].Ratio {
			t.Errorf("ratio not rising at %d", rows[i].Year)
		}
	}
	last := rows[len(rows)-1]
	if last.Ratio <= 0.85 || last.Ratio > 1.05 {
		t.Fatalf("terminal ratio = %v, want approaching 1", last.Ratio)
	}
	// The cost contradiction: by the end of the roadmap the required s_d
	// drops to the full-custom limit (≈100) that industrial designs
	// (s_d ≈ 300+, Table A1) cannot approach.
	if last.RequiredSd > 110 {
		t.Fatalf("terminal required s_d = %v, want ≤ ~100 (infeasible territory)", last.RequiredSd)
	}
}

func TestInterpolators(t *testing.T) {
	ti, err := TransistorInterp()
	if err != nil {
		t.Fatal(err)
	}
	li, err := LambdaInterp()
	if err != nil {
		t.Fatal(err)
	}
	di, err := DieAreaInterp()
	if err != nil {
		t.Fatal(err)
	}
	// Exact at knots.
	n, _ := NodeByYear(2005)
	if got := ti.At(2005); math.Abs(got-n.Transistors) > 1 {
		t.Fatalf("transistor interp at 2005 = %v, want %v", got, n.Transistors)
	}
	if got := li.At(2005); math.Abs(got-n.LambdaUM) > 1e-9 {
		t.Fatalf("lambda interp at 2005 = %v, want %v", got, n.LambdaUM)
	}
	if got := di.At(2005); math.Abs(got-n.DieAreaCM2) > 1e-9 {
		t.Fatalf("die interp at 2005 = %v, want %v", got, n.DieAreaCM2)
	}
	// Between knots: lambda strictly between neighbors.
	mid := li.At(2003.5)
	n02, _ := NodeByYear(2002)
	n05, _ := NodeByYear(2005)
	if !(mid < n02.LambdaUM && mid > n05.LambdaUM) {
		t.Fatalf("interpolated λ(2003.5) = %v outside (%v, %v)", mid, n05.LambdaUM, n02.LambdaUM)
	}
}

func TestDeriveValidation(t *testing.T) {
	if _, err := Derive(Node{Year: 1999}); err == nil {
		t.Fatal("accepted invalid node")
	}
}
