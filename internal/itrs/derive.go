package itrs

import (
	"fmt"

	"repro/internal/core"
)

// Derived is one row of the Figure 2 / Figure 3 computation for a roadmap
// node.
type Derived struct {
	Node
	ImpliedSd  float64 // Figure 2: s_d implied by the roadmap's own density
	RequiredSd float64 // Figure 3: s_d needed to keep the die at TargetDieCost
	Ratio      float64 // ImpliedSd / RequiredSd — rises toward 1 as slack vanishes
	DieCost    float64 // manufacturing cost of the roadmap die at CostPerCM2/Yield
}

// Derive computes the paper's Figure 2 and Figure 3 quantities for one
// node:
//
//   - implied s_d = A_die/(N_tr·λ²), i.e. eq (2) inverted on the roadmap's
//     own transistor-density projection;
//   - required s_d = TargetDieCost·Y/(C_sq·λ²·N_tr), i.e. eq (3) inverted
//     at the constant die-cost target;
//   - their ratio, which equals dieArea·C_sq/(TargetDieCost·Y) and rises
//     as the roadmap's die growth consumes the cost budget.
func Derive(n Node) (Derived, error) {
	if err := n.Validate(); err != nil {
		return Derived{}, err
	}
	implied, err := core.SdFromLayout(n.DieAreaCM2, n.Transistors, n.LambdaUM)
	if err != nil {
		return Derived{}, err
	}
	p := core.Process{
		Name:         fmt.Sprintf("itrs-%d", n.Year),
		LambdaUM:     n.LambdaUM,
		CostPerCM2:   CostPerCM2,
		Yield:        Yield,
		WaferAreaCM2: 300, // not used by the required-s_d computation
	}
	required, err := core.RequiredSdForDieCost(TargetDieCost, p, n.Transistors)
	if err != nil {
		return Derived{}, err
	}
	return Derived{
		Node:       n,
		ImpliedSd:  implied,
		RequiredSd: required,
		Ratio:      implied / required,
		DieCost:    CostPerCM2 * n.DieAreaCM2 / Yield,
	}, nil
}

// DeriveAll runs Derive over the full roadmap in chronological order.
func DeriveAll() ([]Derived, error) {
	nodes := Nodes()
	out := make([]Derived, 0, len(nodes))
	for _, n := range nodes {
		d, err := Derive(n)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
