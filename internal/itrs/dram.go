package itrs

import "fmt"

// DRAMNode is one generation of the roadmap's DRAM line. DRAM is the
// counterpoint to the MPU series: its 1T1C cell tiles at ≈8F², so its
// implied s_d stays pinned near 8–10 λ² per transistor across every
// generation — the perfectly regular, precharacterized design style §3.2
// holds up as the model. Memory tracks the roadmap *because* it is
// regular; custom logic cannot.
type DRAMNode struct {
	Year       int
	LambdaUM   float64 // half-pitch/feature size, µm
	Bits       float64 // bits per chip at production
	CellFactor float64 // cell area in F² (≈8 for the era's 1T1C)
	ArrayShare float64 // fraction of die area that is cell array
}

// dram1999 reconstructs the DRAM line with the same growth laws as the
// MPU series: 4× bits per ~3-year generation, ×0.7 feature shrink, 8F²
// cell, ~60% array efficiency.
var dram1999 = []DRAMNode{
	{Year: 1999, LambdaUM: 0.180, Bits: 256e6, CellFactor: 8, ArrayShare: 0.60},
	{Year: 2002, LambdaUM: 0.130, Bits: 1024e6, CellFactor: 8, ArrayShare: 0.60},
	{Year: 2005, LambdaUM: 0.100, Bits: 4096e6, CellFactor: 8, ArrayShare: 0.60},
	{Year: 2008, LambdaUM: 0.070, Bits: 16384e6, CellFactor: 8, ArrayShare: 0.60},
	{Year: 2011, LambdaUM: 0.050, Bits: 65536e6, CellFactor: 8, ArrayShare: 0.60},
	{Year: 2014, LambdaUM: 0.035, Bits: 262144e6, CellFactor: 8, ArrayShare: 0.60},
}

// DRAMNodes returns the DRAM roadmap in chronological order (a copy).
func DRAMNodes() []DRAMNode {
	return append([]DRAMNode(nil), dram1999...)
}

// Validate reports the first invalid field of n, or nil.
func (n DRAMNode) Validate() error {
	switch {
	case n.LambdaUM <= 0:
		return fmt.Errorf("itrs: dram %d: feature size must be positive", n.Year)
	case n.Bits <= 0:
		return fmt.Errorf("itrs: dram %d: bit count must be positive", n.Year)
	case n.CellFactor <= 0:
		return fmt.Errorf("itrs: dram %d: cell factor must be positive", n.Year)
	case !(n.ArrayShare > 0 && n.ArrayShare <= 1):
		return fmt.Errorf("itrs: dram %d: array share must be in (0,1]", n.Year)
	}
	return nil
}

// Transistors returns the chip's transistor count: one per bit in the
// array plus periphery estimated from the non-array area at logic
// density.
func (n DRAMNode) Transistors() float64 {
	// Periphery transistors: non-array area at ~4x the array's area per
	// transistor (sense amps, decoders are denser than random logic).
	periphery := n.Bits * (1 - n.ArrayShare) / n.ArrayShare / 4
	return n.Bits + periphery
}

// DieAreaCM2 returns the die area: array cells at CellFactor·F² plus the
// periphery share.
func (n DRAMNode) DieAreaCM2() float64 {
	f := n.LambdaUM / 1e4 // cm
	arrayArea := n.Bits * n.CellFactor * f * f
	return arrayArea / n.ArrayShare
}

// ImpliedSd returns the whole-die decompression index A/(N·λ²) — pinned
// near CellFactor/ArrayShare·(array fraction of transistors) across all
// generations.
func (n DRAMNode) ImpliedSd() (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	f := n.LambdaUM / 1e4
	return n.DieAreaCM2() / (n.Transistors() * f * f), nil
}
