package itrs

import (
	"math"
	"testing"
)

func TestDRAMNodesValid(t *testing.T) {
	nodes := DRAMNodes()
	if len(nodes) != 6 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for i, n := range nodes {
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if n.Year <= nodes[i-1].Year || n.LambdaUM >= nodes[i-1].LambdaUM || n.Bits <= nodes[i-1].Bits {
				t.Fatalf("ordering violated at %d", n.Year)
			}
		}
	}
}

func TestDRAMNodesReturnsCopy(t *testing.T) {
	a := DRAMNodes()
	a[0].Bits = -1
	if DRAMNodes()[0].Bits == -1 {
		t.Fatal("DRAMNodes exposes internal state")
	}
}

func TestDRAMQuadruplesPerGeneration(t *testing.T) {
	nodes := DRAMNodes()
	for i := 1; i < len(nodes); i++ {
		if got := nodes[i].Bits / nodes[i-1].Bits; math.Abs(got-4) > 1e-9 {
			t.Fatalf("generation %d: bit growth %v, want 4", nodes[i].Year, got)
		}
	}
}

func TestDRAMImpliedSdFlatAndSmall(t *testing.T) {
	// The §3.2 counterpoint: DRAM's regular 8F² cell pins the implied
	// s_d near 10 across every generation, while the MPU series falls
	// from 250 to 71.
	nodes := DRAMNodes()
	first, err := nodes[0].ImpliedSd()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		sd, err := n.ImpliedSd()
		if err != nil {
			t.Fatal(err)
		}
		if sd < 5 || sd > 15 {
			t.Fatalf("%d: DRAM implied s_d = %v, want ≈8–12", n.Year, sd)
		}
		if math.Abs(sd-first)/first > 1e-9 {
			t.Fatalf("%d: DRAM s_d drifted: %v vs %v (must be scale-invariant)", n.Year, sd, first)
		}
	}
	// And far below every MPU node.
	mpu, err := DeriveAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mpu {
		if first >= m.ImpliedSd {
			t.Fatalf("DRAM s_d %v not below MPU %v at %d", first, m.ImpliedSd, m.Year)
		}
	}
}

func TestDRAMDieAreaPlausible(t *testing.T) {
	// 256 Mb at 0.18 µm, 8F², 60% array: ≈1.1 cm² — the era's actual
	// DRAM die scale.
	n := DRAMNodes()[0]
	a := n.DieAreaCM2()
	if a < 0.5 || a > 2.5 {
		t.Fatalf("1999 DRAM die = %v cm², want ~1", a)
	}
}

func TestDRAMValidate(t *testing.T) {
	bad := []DRAMNode{
		{Year: 1, LambdaUM: 0, Bits: 1, CellFactor: 8, ArrayShare: 0.5},
		{Year: 1, LambdaUM: 1, Bits: 0, CellFactor: 8, ArrayShare: 0.5},
		{Year: 1, LambdaUM: 1, Bits: 1, CellFactor: 0, ArrayShare: 0.5},
		{Year: 1, LambdaUM: 1, Bits: 1, CellFactor: 8, ArrayShare: 0},
		{Year: 1, LambdaUM: 1, Bits: 1, CellFactor: 8, ArrayShare: 1.5},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: invalid node accepted", i)
		}
		if _, err := n.ImpliedSd(); err == nil {
			t.Errorf("case %d: ImpliedSd accepted invalid node", i)
		}
	}
}
