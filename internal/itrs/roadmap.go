// Package itrs embeds a reconstruction of the ITRS 1999 roadmap series the
// paper's Figures 2 and 3 are computed from: the cost-performance MPU line
// (technology node, transistors per chip, die area at production) together
// with the paper's stated economic constants (a $34 die budget, 8 $/cm²
// manufacturing cost, 80% yield).
//
// The 1999 roadmap document itself is not redistributable, so the numbers
// here are reconstructed from its public parameters: ×2 functions per chip
// every two years, ×0.7 feature-size shrink every three years starting at
// 180 nm/21 M transistors in 1999, and ≈13% die-size growth per node. The
// derived quantities the paper plots (the implied and required s_d and
// their ratio) depend only on these growth laws, not on transcription
// detail; see DESIGN.md §3.
package itrs

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// Node is one technology generation of the roadmap's cost-performance MPU
// line.
type Node struct {
	Year        int
	LambdaUM    float64 // minimum feature size, µm
	Transistors float64 // per chip at production
	DieAreaCM2  float64 // at production
}

// Paper-stated constants for the Figure 3 computation (§2.2.3).
const (
	// TargetDieCost is the maximum acceptable cost of the MPU die, $.
	TargetDieCost = 34.0
	// CostPerCM2 is the assumed manufacturing cost per cm², $/cm².
	CostPerCM2 = 8.0
	// Yield is the assumed manufacturing yield.
	Yield = 0.8
)

// mpu1999 is the reconstructed cost-performance MPU roadmap.
var mpu1999 = []Node{
	{Year: 1999, LambdaUM: 0.180, Transistors: 21e6, DieAreaCM2: 1.70},
	{Year: 2002, LambdaUM: 0.130, Transistors: 59e6, DieAreaCM2: 1.93},
	{Year: 2005, LambdaUM: 0.100, Transistors: 166e6, DieAreaCM2: 2.19},
	{Year: 2008, LambdaUM: 0.070, Transistors: 467e6, DieAreaCM2: 2.48},
	{Year: 2011, LambdaUM: 0.050, Transistors: 1310e6, DieAreaCM2: 2.82},
	{Year: 2014, LambdaUM: 0.035, Transistors: 3680e6, DieAreaCM2: 3.20},
}

// Nodes returns the roadmap nodes in chronological order. The returned
// slice is a copy; callers may modify it freely.
func Nodes() []Node {
	return append([]Node(nil), mpu1999...)
}

// NodeByYear returns the roadmap node for the given year.
func NodeByYear(year int) (Node, error) {
	for _, n := range mpu1999 {
		if n.Year == year {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("itrs: no roadmap node for year %d", year)
}

// NodeByLambda returns the roadmap node with the given feature size in µm
// (matched to within 0.5 nm).
func NodeByLambda(lambdaUM float64) (Node, error) {
	for _, n := range mpu1999 {
		if diff := n.LambdaUM - lambdaUM; diff < 5e-4 && diff > -5e-4 {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("itrs: no roadmap node at λ = %v µm", lambdaUM)
}

// Density returns the node's transistor density in transistors per cm².
func (n Node) Density() float64 { return n.Transistors / n.DieAreaCM2 }

// Validate reports the first invalid field of n, or nil.
func (n Node) Validate() error {
	switch {
	case n.LambdaUM <= 0:
		return fmt.Errorf("itrs: node %d: feature size must be positive", n.Year)
	case n.Transistors <= 0:
		return fmt.Errorf("itrs: node %d: transistor count must be positive", n.Year)
	case n.DieAreaCM2 <= 0:
		return fmt.Errorf("itrs: node %d: die area must be positive", n.Year)
	}
	return nil
}

// Interpolators over the roadmap, keyed on year, for studies that need
// intermediate years. Built lazily from the node table.

// TransistorInterp returns an interpolator of transistors-per-chip vs
// year.
func TransistorInterp() (*stats.Interpolator, error) {
	return interpOn(func(n Node) float64 { return n.Transistors })
}

// LambdaInterp returns an interpolator of feature size (µm) vs year.
func LambdaInterp() (*stats.Interpolator, error) {
	return interpOn(func(n Node) float64 { return n.LambdaUM })
}

// DieAreaInterp returns an interpolator of die area (cm²) vs year.
func DieAreaInterp() (*stats.Interpolator, error) {
	return interpOn(func(n Node) float64 { return n.DieAreaCM2 })
}

func interpOn(f func(Node) float64) (*stats.Interpolator, error) {
	if len(mpu1999) < 2 {
		return nil, errors.New("itrs: roadmap table too small")
	}
	xs := make([]float64, len(mpu1999))
	ys := make([]float64, len(mpu1999))
	for i, n := range mpu1999 {
		xs[i] = float64(n.Year)
		ys[i] = f(n)
	}
	return stats.NewInterpolator(xs, ys)
}
