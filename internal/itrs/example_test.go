package itrs_test

import (
	"fmt"

	"repro/internal/itrs"
)

// The Figure 2/3 derivation for the roadmap's first node.
func ExampleDerive() {
	node, err := itrs.NodeByYear(1999)
	if err != nil {
		fmt.Println(err)
		return
	}
	d, err := itrs.Derive(node)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("1999: implied s_d %.0f, required s_d %.0f, ratio %.2f\n",
		d.ImpliedSd, d.RequiredSd, d.Ratio)
	// Output:
	// 1999: implied s_d 250, required s_d 500, ratio 0.50
}

// The DRAM counterpoint: a regular 8F² fabric holds its density across
// every generation.
func ExampleDRAMNode_ImpliedSd() {
	for _, n := range itrs.DRAMNodes()[:2] {
		sd, err := n.ImpliedSd()
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%d: DRAM implied s_d = %.1f\n", n.Year, sd)
	}
	// Output:
	// 1999: DRAM implied s_d = 11.4
	// 2002: DRAM implied s_d = 11.4
}
