package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/report"
)

// OptSdPoint is one row of the X-1 study.
type OptSdPoint struct {
	Wafers    float64
	OptimalSd float64
	Cost      float64 // $/transistor at the optimum
}

// OptimalSdVsVolume sweeps production volume and tracks where the
// cost-optimal s_d sits — the quantitative form of §3.1's conclusion that
// neither minimum die size nor maximum yield is the objective; the optimum
// moves with volume.
func OptimalSdVsVolume(loWafers, hiWafers float64, points int) ([]OptSdPoint, *report.Figure, error) {
	if !(loWafers > 0 && loWafers < hiWafers) {
		return nil, nil, fmt.Errorf("experiments: X-1 needs 0 < lo < hi, got [%v, %v]", loWafers, hiWafers)
	}
	if points < 2 {
		return nil, nil, fmt.Errorf("experiments: X-1 needs at least 2 points")
	}
	base, err := Figure4Scenario(Figure4Case{Wafers: loWafers, Yield: 0.8}, 0.18)
	if err != nil {
		return nil, nil, err
	}
	ratio := hiWafers / loWafers
	var rows []OptSdPoint
	fig := &report.Figure{
		Title:  "X-1 — cost-optimal s_d vs production volume",
		XLabel: "wafers (log-spaced)",
		YLabel: "optimal s_d",
	}
	s := report.Series{Name: "optimal s_d"}
	for i := 0; i < points; i++ {
		w := loWafers * math.Pow(ratio, float64(i)/float64(points-1))
		opt, err := core.OptimalSd(base.WithWafers(w), 5000)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, OptSdPoint{Wafers: w, OptimalSd: opt.Sd, Cost: opt.Breakdown.Total})
		s.X = append(s.X, w)
		s.Y = append(s.Y, opt.Sd)
	}
	fig.Add(s)
	return rows, fig, nil
}
