package experiments

import (
	"repro/internal/itrs"
	"repro/internal/report"
)

// Figure3 regenerates the paper's Figure 3: the s_d required to keep the
// cost/performance MPU die at its 1999 cost level (C_ch = $34, C_sq =
// 8 $/cm², Y = 0.8), and the ratio of the ITRS-implied s_d to that
// requirement. The ratio climbs monotonically toward 1: the roadmap
// consumes its entire cost budget, while the required s_d falls to the
// full-custom limit no real design flow approaches — the paper's "cost
// contradiction".
func Figure3() ([]itrs.Derived, *report.Figure, error) {
	rows, err := itrs.DeriveAll()
	if err != nil {
		return nil, nil, err
	}
	fig := &report.Figure{
		Title:  "Figure 3 — s_d required for a constant $34 MPU die",
		XLabel: "λ (µm)",
		YLabel: "s_d / ratio",
	}
	req := report.Series{Name: "required s_d ($34 die)"}
	implied := report.Series{Name: "itrs-implied s_d"}
	ratio := report.Series{Name: "implied/required ×100"}
	for _, r := range rows {
		req.X = append(req.X, r.LambdaUM)
		req.Y = append(req.Y, r.RequiredSd)
		implied.X = append(implied.X, r.LambdaUM)
		implied.Y = append(implied.Y, r.ImpliedSd)
		ratio.X = append(ratio.X, r.LambdaUM)
		ratio.Y = append(ratio.Y, r.Ratio*100)
	}
	fig.Add(req)
	fig.Add(implied)
	fig.Add(ratio)
	return rows, fig, nil
}
