package experiments

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/report"
)

// SoCResult carries the X-19 synthetic-SoC decomposition.
type SoCResult struct {
	layout.Decomposition
	MemShare float64 // memory transistors / total
}

// SoCStudy runs X-19: build a synthetic system-on-chip from generated
// blocks — an SRAM array and synthesized logic with a routing gutter —
// and extract the Table A1 columns (s_d memory, s_d logic, blended chip
// s_d) from the composed geometry. The measured split reproduces the
// table's universal pattern: memory s_d ≈ 30, logic s_d several times
// larger, and the whole-chip blend pulled up further by the floorplan
// overhead the table's die-level numbers silently include.
func SoCStudy(logicCells int, seed uint64) (SoCResult, *report.Table, error) {
	if logicCells <= 0 {
		return SoCResult{}, nil, fmt.Errorf("experiments: X-19 needs positive logic cells, got %d", logicCells)
	}
	mem, err := layout.GenerateSRAMArray(24, 24)
	if err != nil {
		return SoCResult{}, nil, err
	}
	logic, err := layout.GenerateRandomLogic(layout.RandomLogicConfig{
		Cells: logicCells, RowUtil: 0.6, RouteTracks: 6, Seed: seed,
	})
	if err != nil {
		return SoCResult{}, nil, err
	}
	const gutter = 40
	w := mem.Width + gutter + logic.Width
	h := mem.Height
	if logic.Height > h {
		h = logic.Height
	}
	h += gutter
	blocks := []layout.Block{
		{Layout: mem, X: 0, Y: 0, IsMemory: true},
		{Layout: logic, X: mem.Width + gutter, Y: 0},
	}
	chip, err := layout.Compose("soc", w, h, blocks)
	if err != nil {
		return SoCResult{}, nil, err
	}
	d, err := layout.Decompose(chip, blocks)
	if err != nil {
		return SoCResult{}, nil, err
	}
	res := SoCResult{
		Decomposition: d,
		MemShare:      d.MemTransistors / (d.MemTransistors + d.LogicTransistors),
	}
	tbl := report.NewTable("X-19 — synthetic SoC measured like a Table A1 row",
		"quantity", "value")
	tbl.AddRow("memory transistors", d.MemTransistors)
	tbl.AddRow("logic transistors", d.LogicTransistors)
	tbl.AddRow("s_d memory", d.SdMem)
	tbl.AddRow("s_d logic", d.SdLogic)
	tbl.AddRow("s_d chip (blended)", d.SdChip)
	tbl.AddRow("floorplan overhead", d.OverheadFraction)
	return res, tbl, nil
}
