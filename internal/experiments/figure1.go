package experiments

import (
	"fmt"

	"repro/internal/devices"
	"repro/internal/report"
	"repro/internal/stats"
)

// Figure1Result carries the Figure 1 reproduction: the industrial s_d
// scatter and the trend statistics the paper reads off it.
type Figure1Result struct {
	Points        []devices.Figure1Point
	IndustryTrend stats.LinearFit // logic s_d vs year, all CPUs
	IntelTrend    stats.LinearFit
	AMDTrend      stats.LinearFit
	AMDMeanPreK7  float64 // mean AMD logic s_d before 1999
	IntelMeanPre  float64 // mean Intel logic s_d before 1999
	K7Sd          float64
}

// Figure1 regenerates the paper's Figure 1: the design decompression
// index of the Table A1 designs, with the vendor trends §2.2.2 discusses
// (worsening density at the majors; AMD denser than Intel until the K7).
func Figure1() (Figure1Result, *report.Figure, error) {
	var res Figure1Result
	res.Points = devices.Figure1Series()
	var err error
	if res.IndustryTrend, err = devices.IndustryTrend(); err != nil {
		return res, nil, err
	}
	if res.IntelTrend, err = devices.VendorTrend("Intel"); err != nil {
		return res, nil, err
	}
	if res.AMDTrend, err = devices.VendorTrend("AMD"); err != nil {
		return res, nil, err
	}
	if res.AMDMeanPreK7, err = devices.MeanLogicSd("AMD", 1999); err != nil {
		return res, nil, err
	}
	if res.IntelMeanPre, err = devices.MeanLogicSd("Intel", 1999); err != nil {
		return res, nil, err
	}
	k7, err := devices.ByID(17)
	if err != nil {
		return res, nil, err
	}
	res.K7Sd = k7.SdLogic

	fig := &report.Figure{
		Title:  "Figure 1 — logic s_d of industrial designs vs year",
		XLabel: "year",
		YLabel: "s_d (λ² squares / transistor)",
	}
	byGroup := map[string]*report.Series{}
	order := []string{}
	for _, p := range res.Points {
		group := string(p.Kind)
		if p.Vendor == "Intel" || p.Vendor == "AMD" {
			group = p.Vendor
		}
		s, ok := byGroup[group]
		if !ok {
			s = &report.Series{Name: group}
			byGroup[group] = s
			order = append(order, group)
		}
		s.X = append(s.X, float64(p.Year))
		s.Y = append(s.Y, p.SdLogic)
	}
	for _, g := range order {
		fig.Add(*byGroup[g])
	}
	if err := fig.Validate(); err != nil {
		return res, nil, fmt.Errorf("experiments: figure 1: %w", err)
	}
	return res, fig, nil
}
