// Package experiments binds the substrates to the paper: each exported
// function regenerates one table or figure (T-A1, F-1…F-4) or one
// ablation/extension study (X-1…X-8) from DESIGN.md's per-experiment
// index, returning both structured rows for tests and a report.Table or
// report.Figure for the cmd/figures binary and the benchmarks.
package experiments

import (
	"repro/internal/devices"
	"repro/internal/report"
)

// TableA1Row is one device of the regenerated Table A1.
type TableA1Row struct {
	ID         int
	Name       string
	Kind       devices.Kind
	DieCM2     float64
	LambdaUM   float64
	TotalTx    float64
	MemTx      float64
	LogicTx    float64
	MemAreaCM2 float64
	LogicArea  float64
	SdMem      float64
	SdLogic    float64
}

// TableA1 regenerates the paper's Table A1 from the embedded device
// records: the die/area/s_d columns are recomputed through eq (2) rather
// than echoed.
func TableA1() ([]TableA1Row, *report.Table, error) {
	tbl := report.NewTable("Table A1 — design characteristics of 49 published designs",
		"#", "die cm²", "λ µm", "total Mtx", "mem Mtx", "logic Mtx",
		"mem cm²", "logic cm²", "s_d mem", "s_d logic", "device")
	var rows []TableA1Row
	for _, d := range devices.All() {
		if err := d.Validate(); err != nil {
			return nil, nil, err
		}
		r := TableA1Row{
			ID: d.ID, Name: d.Name, Kind: d.Kind,
			DieCM2:   d.DieAreaCM2(),
			LambdaUM: d.LambdaUM,
			TotalTx:  d.TotalTransistors(),
			MemTx:    d.MemTransistors, LogicTx: d.LogicTransistors,
			MemAreaCM2: d.MemAreaCM2(), LogicArea: d.LogicAreaCM2(),
			SdMem: d.SdMem, SdLogic: d.SdLogic,
		}
		rows = append(rows, r)
		tbl.AddRow(r.ID, r.DieCM2, r.LambdaUM, r.TotalTx/1e6, r.MemTx/1e6,
			r.LogicTx/1e6, r.MemAreaCM2, r.LogicArea, r.SdMem, r.SdLogic, r.Name)
	}
	return rows, tbl, nil
}
