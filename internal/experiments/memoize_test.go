package experiments

import (
	"testing"

	"repro/internal/layout"
	"repro/internal/memo"
	"repro/internal/parallel"
	"repro/internal/yield"
)

// The acceptance contract of the memo layer: study outputs are
// byte-identical whether the caches are cold or warm and for any worker
// count — memoization and scratch reuse are pure plumbing, never visible
// in results.

func TestLayoutYieldStudyGoldenAcrossCacheAndWorkers(t *testing.T) {
	memo.PurgeAll()
	goldRows, goldTbl, err := LayoutYieldStudy(3.0, 600, 7)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		rows, tbl, err := LayoutYieldStudy(3.0, 600, 7)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(rows) != len(goldRows) {
			t.Fatalf("%s: %d rows != %d", label, len(rows), len(goldRows))
		}
		for i := range rows {
			if rows[i] != goldRows[i] {
				t.Fatalf("%s: row %d diverged:\n got %+v\nwant %+v", label, i, rows[i], goldRows[i])
			}
		}
		if tbl.String() != goldTbl.String() {
			t.Fatalf("%s: rendered table diverged", label)
		}
	}
	check("warm cache")
	memo.PurgeAll()
	check("cold cache")
	for _, w := range []int{1, 2, 4} {
		parallel.SetDefaultWorkers(w)
		check("workers=1/2/4")
	}
	parallel.SetDefaultWorkers(0)
}

func TestLayoutDensityStudyGoldenAcrossCache(t *testing.T) {
	memo.PurgeAll()
	cold, coldTbl, err := LayoutDensityStudy(11)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmTbl, err := LayoutDensityStudy(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != len(warm) {
		t.Fatalf("row count diverged: %d != %d", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("row %d diverged: %+v != %+v", i, cold[i], warm[i])
		}
	}
	if coldTbl.String() != warmTbl.String() {
		t.Fatal("rendered table diverged between cold and warm cache")
	}
	// Cached rows are copied out: mutating a result must not poison the
	// cache.
	warm[0].Sd = -1
	again, _, err := LayoutDensityStudy(11)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != cold[0] {
		t.Fatal("caller mutation leaked into the cache")
	}
}

func TestAvgCriticalFractionMemoized(t *testing.T) {
	memo.PurgeAll()
	l, err := layout.GenerateSRAMArray(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	dist := yield.DefectSizeDist{X0: 2, P: 3}
	before := avgCritFracCache.Stats()
	first, err := avgCriticalFraction(l, layout.Metal1, dist, 200)
	if err != nil {
		t.Fatal(err)
	}
	second, err := avgCriticalFraction(l, layout.Metal1, dist, 200)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("memoized value diverged: %v != %v", first, second)
	}
	after := avgCritFracCache.Stats()
	if after.Misses != before.Misses+1 {
		t.Fatalf("expected exactly one fill, got %d new misses", after.Misses-before.Misses)
	}
	if after.Hits != before.Hits+1 {
		t.Fatalf("expected one hit, got %d new hits", after.Hits-before.Hits)
	}
	// A different distribution must not collide with the cached key.
	other, err := avgCriticalFraction(l, layout.Metal1, yield.DefectSizeDist{X0: 4, P: 3}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if other == first {
		t.Fatal("distinct distributions returned the identical cached value")
	}
}
