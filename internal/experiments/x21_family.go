package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// FamilyRow is one family size of the X-21 study, for regular and
// irregular block libraries.
type FamilyRow struct {
	Products       int
	RegularPerTx   float64 // $/transistor, shared precharacterized blocks
	IrregularPerTx float64 // $/transistor, little reusable content
	RegularMult    float64 // effective-volume multiplier, regular library
}

// FamilyStudy runs X-21, the paper's closing recommendation priced:
// "repetitive (across many products) and experimentally precharacterized
// design building blocks … increase an effective volume used in the
// computation of C_DE". A regular library (70% of the design effort in
// shared blocks, 90% reusable) amortizes across the family; an irregular
// design (20% shared) barely does. The gap is the §3.2 dividend.
func FamilyStudy(maxProducts int) ([]FamilyRow, *report.Figure, error) {
	if maxProducts < 1 {
		return nil, nil, fmt.Errorf("experiments: X-21 needs at least one product, got %d", maxProducts)
	}
	base, err := Figure4Scenario(Figure4Case{Wafers: 5000, Yield: 0.8}, 0.18)
	if err != nil {
		return nil, nil, err
	}
	regular := core.Family{SharedFraction: 0.7, ReuseEfficiency: 0.9}
	irregular := core.Family{SharedFraction: 0.2, ReuseEfficiency: 0.5}
	var rows []FamilyRow
	fig := &report.Figure{
		Title:  "X-21 — family amortization: regular vs irregular block libraries",
		XLabel: "family size K",
		YLabel: "C_tr ($/transistor)",
	}
	sr := report.Series{Name: "regular (s=0.7, e=0.9)"}
	si := report.Series{Name: "irregular (s=0.2, e=0.5)"}
	for k := 1; k <= maxProducts; k++ {
		regular.Products = k
		irregular.Products = k
		br, err := core.FamilyTransistorCost(base, regular)
		if err != nil {
			return nil, nil, err
		}
		bi, err := core.FamilyTransistorCost(base, irregular)
		if err != nil {
			return nil, nil, err
		}
		mult, err := regular.EffectiveVolumeMultiplier()
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, FamilyRow{
			Products:       k,
			RegularPerTx:   br.Total,
			IrregularPerTx: bi.Total,
			RegularMult:    mult,
		})
		sr.X = append(sr.X, float64(k))
		sr.Y = append(sr.Y, br.Total)
		si.X = append(si.X, float64(k))
		si.Y = append(si.Y, bi.Total)
	}
	fig.Add(sr)
	fig.Add(si)
	return rows, fig, nil
}
