package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/wafer"
)

// GrossDieRow compares the exact gross-die count with the analytic
// approximations for one die size on one wafer.
type GrossDieRow struct {
	WaferMM       float64
	DieAreaCM2    float64
	Exact         int
	AreaRatio     int
	EdgeCorrected int
	DeHoff        int
}

// GrossDieStudy runs X-5: exact placement versus the approximations the
// cost literature plugs into eq (1), across die sizes and wafer
// generations. The area-ratio formula always overestimates; the corrected
// forms track the exact count within a few percent until the die gets
// large relative to the wafer.
func GrossDieStudy(dieAreas []float64) ([]GrossDieRow, *report.Table, error) {
	if len(dieAreas) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-5 needs at least one die size")
	}
	tbl := report.NewTable("X-5 — gross die per wafer: exact vs approximations",
		"wafer mm", "die cm²", "exact", "area-ratio", "edge-corrected", "dehoff")
	var rows []GrossDieRow
	for _, w := range []wafer.Wafer{wafer.Wafer200, wafer.Wafer300} {
		for _, a := range dieAreas {
			d := wafer.SquareDie(a)
			exact, err := wafer.GrossDie(w, d)
			if err != nil {
				return nil, nil, err
			}
			naive, err := wafer.GrossDieApprox(w, d, wafer.AreaRatio)
			if err != nil {
				return nil, nil, err
			}
			corr, err := wafer.GrossDieApprox(w, d, wafer.EdgeCorrected)
			if err != nil {
				return nil, nil, err
			}
			dh, err := wafer.GrossDieApprox(w, d, wafer.DeHoff)
			if err != nil {
				return nil, nil, err
			}
			row := GrossDieRow{
				WaferMM: w.DiameterMM, DieAreaCM2: a,
				Exact: exact, AreaRatio: naive, EdgeCorrected: corr, DeHoff: dh,
			}
			rows = append(rows, row)
			tbl.AddRow(row.WaferMM, row.DieAreaCM2, row.Exact, row.AreaRatio, row.EdgeCorrected, row.DeHoff)
		}
	}
	return rows, tbl, nil
}
