package experiments

import (
	"repro/internal/itrs"
	"repro/internal/report"
)

// Figure2 regenerates the paper's Figure 2: the design decompression
// index implied by the ITRS-1999 MPU transistor-density roadmap, plotted
// against minimum feature size. The series falls as λ shrinks — the
// roadmap silently assumes ever-denser design while industry (Figure 1)
// moves the other way.
func Figure2() ([]itrs.Derived, *report.Figure, error) {
	rows, err := itrs.DeriveAll()
	if err != nil {
		return nil, nil, err
	}
	fig := &report.Figure{
		Title:  "Figure 2 — ITRS-implied s_d for MPUs vs feature size",
		XLabel: "λ (µm)",
		YLabel: "implied s_d",
	}
	s := report.Series{Name: "itrs-implied"}
	for _, r := range rows {
		s.X = append(s.X, r.LambdaUM)
		s.Y = append(s.Y, r.ImpliedSd)
	}
	fig.Add(s)
	return rows, fig, nil
}
