package experiments

import "testing"

func TestManifestComplete(t *testing.T) {
	m := Manifest()
	// The paper's 5 artifacts plus 22 extension studies.
	if len(m) != 27 {
		t.Fatalf("manifest lists %d artifacts, want 27", len(m))
	}
	seen := map[string]bool{}
	for _, a := range m {
		if a.ID == "" || a.Title == "" || a.Run == nil {
			t.Fatalf("incomplete artifact %+v", a)
		}
		if seen[a.ID] {
			t.Fatalf("duplicate artifact id %q", a.ID)
		}
		seen[a.ID] = true
	}
	for _, id := range []string{"tablea1", "fig1", "fig2", "fig3", "fig4", "x1", "x22"} {
		if !seen[id] {
			t.Fatalf("manifest missing %q", id)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness smoke test")
	}
	if err := RunAll(); err != nil {
		t.Fatal(err)
	}
}
