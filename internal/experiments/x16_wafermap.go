package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/yield"
)

// WaferMapResult carries the X-16 spatial yield study.
type WaferMapResult struct {
	Sites      int
	LotYield   float64
	Zones      []float64 // center → edge
	PoissonRef float64   // flat-profile analytic reference
	Rendered   string
}

// WaferMapStudy runs X-16: a spatial wafer-map simulation with a radial
// defectivity gradient — the view a yield engineer actually debugs from.
// The lot yield sits below the flat Poisson reference (edge die drag it
// down) and the zonal profile declines monotonically outward, the
// signature that distinguishes process-edge problems from random defects.
func WaferMapStudy(edgeFactor float64, wafers int, seed uint64) (WaferMapResult, *report.Table, error) {
	if edgeFactor < 1 {
		return WaferMapResult{}, nil, fmt.Errorf("experiments: X-16 edge factor must be >= 1, got %v", edgeFactor)
	}
	if wafers <= 0 {
		return WaferMapResult{}, nil, fmt.Errorf("experiments: X-16 needs positive wafer count, got %d", wafers)
	}
	cfg := yield.WaferMapConfig{
		UsableRadiusMM: 97,
		DieWMM:         12, DieHMM: 12,
		Lambda:     0.4,
		EdgeFactor: edgeFactor,
		Wafers:     wafers,
		Seed:       seed,
	}
	wm, err := yield.SimulateWaferMap(cfg)
	if err != nil {
		return WaferMapResult{}, nil, err
	}
	zones, err := wm.ZonalYield(4)
	if err != nil {
		return WaferMapResult{}, nil, err
	}
	res := WaferMapResult{
		Sites:      wm.Sites(),
		LotYield:   wm.Yield(),
		Zones:      zones,
		PoissonRef: (yield.Poisson{}).Yield(cfg.Lambda),
		Rendered:   wm.Render(),
	}
	tbl := report.NewTable("X-16 — spatial wafer map with radial defect gradient",
		"zone (center→edge)", "yield")
	for i, z := range zones {
		tbl.AddRow(i+1, z)
	}
	tbl.AddRow("lot", res.LotYield)
	tbl.AddRow("flat Poisson ref", res.PoissonRef)
	return res, tbl, nil
}
