package experiments

import (
	"repro/internal/layout"
	"repro/internal/memo"
	"repro/internal/yield"
)

// critFracKey identifies one size-averaged critical fraction: the layout
// geometry (content hash), the monitored layer, the defect-size
// distribution, and the integration bound.
type critFracKey struct {
	layoutHash uint64
	layer      layout.Layer
	x0, p      float64 // DefectSizeDist parameters
	xMax       float64
}

// avgCritFracCache memoizes the §3.1 critical-area extraction — the
// adaptive quadrature over the size distribution calls the geometry
// kernel hundreds of times per layout, and the layout-vs-yield studies
// revisit the same generated geometries on every row and every repeat
// run.
var avgCritFracCache = memo.New[critFracKey, float64]("experiments.avg-critfrac", 256)

// avgCriticalFraction returns the size-averaged combined (shorts + opens)
// critical area of one layer as a fraction of the die, clamped to [0, 1],
// memoized on the layout content hash. The fill path builds one
// CritEvaluator and drives the quadrature through its allocation-free
// Area kernel.
func avgCriticalFraction(l *layout.Layout, layer layout.Layer, dist yield.DefectSizeDist, xMax float64) (float64, error) {
	key := critFracKey{
		layoutHash: l.ContentHash(),
		layer:      layer,
		x0:         dist.X0,
		p:          dist.P,
		xMax:       xMax,
	}
	return avgCritFracCache.Get(key, func() (float64, error) {
		ev, err := layout.NewCritEvaluator(l, layer)
		if err != nil {
			return 0, err
		}
		avg, err := yield.AverageCriticalArea(dist, ev.Area, xMax)
		if err != nil {
			return 0, err
		}
		f := avg / float64(l.AreaLambda2())
		if f > 1 {
			f = 1
		}
		return f, nil
	})
}
