package experiments

import (
	"testing"

	"repro/internal/devices"
)

func TestDeviceCostStudy(t *testing.T) {
	res, tbl, err := DeviceCostStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 49 || len(tbl.Rows) != 49 {
		t.Fatalf("rows = %d/%d", len(res.Ranked), len(tbl.Rows))
	}
	// The §2.2.2 claim: AMD's K6 sold cheaper transistors than Intel's
	// Pentium II on the same 0.25 µm node.
	if res.K6OverPentium <= 1 {
		t.Fatalf("Pentium II / K6 cost ratio = %v, want > 1", res.K6OverPentium)
	}
	// Sanity on the extremes: SRAM cheapest, an ASIC-class part among the
	// most expensive five.
	if res.Ranked[0].Kind != devices.KindSRAM {
		t.Fatalf("cheapest = %s", res.Ranked[0].Name)
	}
	foundSparse := false
	for _, r := range res.Ranked[len(res.Ranked)-5:] {
		if r.Kind == devices.KindASIC || r.Kind == devices.KindMPEG {
			foundSparse = true
		}
	}
	if !foundSparse {
		t.Fatal("no ASIC/MPEG part among the five most expensive transistors")
	}
}

func TestUncertaintyStudy(t *testing.T) {
	res, tbl, err := UncertaintyStudy(4000, 17)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Quantiles
	if !(q.P5 < q.P50 && q.P50 < q.P95) {
		t.Fatalf("quantiles not ordered: %+v", q)
	}
	// Real spread from these inputs.
	if q.P95/q.P5 < 1.3 {
		t.Fatalf("spread implausibly tight: %+v", q)
	}
	if len(res.Tornado) != 6 {
		t.Fatalf("tornado bars = %d", len(res.Tornado))
	}
	// λ leads the tornado (quadratic exponent).
	if res.Tornado[0].Name != "lambda" {
		t.Fatalf("top tornado bar = %q, want lambda", res.Tornado[0].Name)
	}
	if len(tbl.Rows) != 4+6 {
		t.Fatalf("table rows = %d, want 10", len(tbl.Rows))
	}
	if _, _, err := UncertaintyStudy(0, 1); err == nil {
		t.Fatal("accepted zero samples")
	}
}
