package experiments

import (
	"repro/internal/itrs"
	"repro/internal/report"
)

// DRAMRow pairs the MPU and DRAM implied s_d at one roadmap generation.
type DRAMRow struct {
	Year        int
	LambdaUM    float64
	MPUSd       float64
	DRAMSd      float64
	MPUOverDRAM float64
}

// MPUvsDRAM runs X-18, the roadmap-side confirmation of §3.2: the DRAM
// line — a perfectly regular design built from one precharacterized 8F²
// pattern — holds its implied s_d constant near 10 across every
// generation and therefore tracks the roadmap effortlessly, while the MPU
// line's implied s_d must fall 250 → 71 to keep up, a density discipline
// irregular custom logic has never demonstrated. Regularity is what makes
// the roadmap feasible.
func MPUvsDRAM() ([]DRAMRow, *report.Figure, error) {
	mpu, err := itrs.DeriveAll()
	if err != nil {
		return nil, nil, err
	}
	dram := itrs.DRAMNodes()
	byYear := map[int]itrs.DRAMNode{}
	for _, d := range dram {
		byYear[d.Year] = d
	}
	var rows []DRAMRow
	fig := &report.Figure{
		Title:  "X-18 — implied s_d: custom MPU vs regular DRAM",
		XLabel: "λ (µm)",
		YLabel: "implied s_d",
		LogY:   true,
	}
	sm := report.Series{Name: "mpu (custom logic)"}
	sd := report.Series{Name: "dram (8F² regular)"}
	for _, m := range mpu {
		d, ok := byYear[m.Year]
		if !ok {
			continue
		}
		dsd, err := d.ImpliedSd()
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, DRAMRow{
			Year: m.Year, LambdaUM: m.LambdaUM,
			MPUSd: m.ImpliedSd, DRAMSd: dsd,
			MPUOverDRAM: m.ImpliedSd / dsd,
		})
		sm.X = append(sm.X, m.LambdaUM)
		sm.Y = append(sm.Y, m.ImpliedSd)
		sd.X = append(sd.X, m.LambdaUM)
		sd.Y = append(sd.Y, dsd)
	}
	fig.Add(sm)
	fig.Add(sd)
	return rows, fig, nil
}
