package experiments

import (
	"fmt"

	"repro/internal/maskcost"
	"repro/internal/report"
	"repro/internal/wafer"
)

// MPWRow is one technology node of the X-12 study.
type MPWRow struct {
	LambdaUM     float64
	MaskSet      float64
	MPWPerDie    float64 // shared-mask cost per good die
	DedPerDie    float64 // dedicated-mask cost per good die, same die count
	Advantage    float64 // DedPerDie / MPWPerDie — approaches Projects as masks dominate
	BreakEvenWaf float64 // dedicated break-even lot size
}

// MPWStudy runs X-12: multi-project-wafer mask sharing across nodes. As
// the mask set inflates with each shrink, the prototype-volume advantage
// of sharing (dedicated/MPW cost per die) grows toward the project count
// — the escape hatch for the eq (5) NRE squeeze gets more valuable
// exactly as the paper predicts NRE grows. The dedicated break-even lot
// size, by contrast, is algebraically invariant at the MPW lot size
// (both prices amortize the same mask set), a non-obvious identity the
// table makes visible.
func MPWStudy(nodes []float64, projects int) ([]MPWRow, *report.Table, error) {
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-12 needs at least one node")
	}
	if projects <= 1 {
		return nil, nil, fmt.Errorf("experiments: X-12 needs at least two sharing projects, got %d", projects)
	}
	mm := maskcost.DefaultModel()
	tbl := report.NewTable("X-12 — multi-project wafer sharing across nodes",
		"λ µm", "mask set $", "MPW $/die", "dedicated $/die", "advantage ×", "break-even wafers")
	var rows []MPWRow
	for _, lam := range nodes {
		set, err := mm.SetCost(lam)
		if err != nil {
			return nil, nil, err
		}
		cfg := wafer.MPWConfig{
			Projects:    projects,
			MaskSetCost: set,
			WaferCost:   2000,
			Wafers:      20,
			DiePerWafer: 25,
			Yield:       0.8,
		}
		mpw, err := cfg.CostPerProjectDie()
		if err != nil {
			return nil, nil, err
		}
		ded, err := cfg.DedicatedCostPerDie(25 * projects)
		if err != nil {
			return nil, nil, err
		}
		be, err := cfg.MPWBreakEvenWafers(25 * projects)
		if err != nil {
			return nil, nil, err
		}
		row := MPWRow{
			LambdaUM: lam, MaskSet: set,
			MPWPerDie: mpw, DedPerDie: ded,
			Advantage: ded / mpw, BreakEvenWaf: be,
		}
		rows = append(rows, row)
		tbl.AddRow(row.LambdaUM, row.MaskSet, row.MPWPerDie, row.DedPerDie, row.Advantage, row.BreakEvenWaf)
	}
	return rows, tbl, nil
}
