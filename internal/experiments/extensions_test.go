package experiments

import (
	"math"
	"testing"
)

func TestFigure3StressWorsens(t *testing.T) {
	rows, fig, err := Figure3Stress(0.15, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	byScenario := map[string][]Fig3StressRow{}
	for _, r := range rows {
		byScenario[r.Scenario] = append(byScenario[r.Scenario], r)
	}
	opt := byScenario["paper (optimistic)"]
	pes := byScenario["pessimistic"]
	if len(opt) == 0 || len(pes) == 0 || len(opt) != len(pes) {
		t.Fatalf("scenario rows: %d vs %d", len(opt), len(pes))
	}
	// Same starting point, strictly worse thereafter.
	if math.Abs(opt[0].RequiredSd-pes[0].RequiredSd) > 1e-9 {
		t.Fatalf("first node differs: %v vs %v", opt[0].RequiredSd, pes[0].RequiredSd)
	}
	for i := 1; i < len(opt); i++ {
		if pes[i].RequiredSd >= opt[i].RequiredSd {
			t.Fatalf("year %d: pessimistic required s_d %v not below optimistic %v",
				pes[i].Year, pes[i].RequiredSd, opt[i].RequiredSd)
		}
	}
	// Terminal pessimistic requirement is deep in infeasible territory.
	if pes[len(pes)-1].RequiredSd > 50 {
		t.Fatalf("terminal pessimistic required s_d = %v, want well below the s_d0=100 limit", pes[len(pes)-1].RequiredSd)
	}
	if _, _, err := Figure3Stress(-1, 0.1); err == nil {
		t.Fatal("accepted negative growth")
	}
	if _, _, err := Figure3Stress(0.1, 1); err == nil {
		t.Fatal("accepted yield decay of 1")
	}
}

func TestLayoutYieldStudyAnalyticTracksMC(t *testing.T) {
	rows, tbl, err := LayoutYieldStudy(3.0, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The pairwise critical-area sum is an upper bound on the fatal
		// area, so the analytic yield is a conservative lower bound...
		if r.AnalyticYield > r.MeasuredYield+4*r.MeasuredStderr+0.01 {
			t.Errorf("%s: analytic %v above measured %v ± %v — bound violated",
				r.Style, r.AnalyticYield, r.MeasuredYield, r.MeasuredStderr)
		}
		// ...and bounded pessimism: it should not be wildly loose.
		if r.MeasuredYield-r.AnalyticYield > 0.25 {
			t.Errorf("%s: analytic %v too far below measured %v", r.Style, r.AnalyticYield, r.MeasuredYield)
		}
		if r.CriticalFrac <= 0 || r.CriticalFrac > 1 {
			t.Errorf("%s: critical fraction %v", r.Style, r.CriticalFrac)
		}
	}
	// For the sparse style, where strip overlaps are rare, the bound is
	// tight.
	for _, r := range rows {
		if r.Style == "asic-sparse" && math.Abs(r.AnalyticYield-r.MeasuredYield) > 4*r.MeasuredStderr+0.05 {
			t.Errorf("sparse style should agree tightly: analytic %v vs measured %v", r.AnalyticYield, r.MeasuredYield)
		}
	}
	// Denser geometry (SRAM) must expose a larger critical fraction than
	// the sparse ASIC and yield worse at equal defect counts.
	byStyle := map[string]LayoutYieldRow{}
	for _, r := range rows {
		byStyle[r.Style] = r
	}
	if byStyle["sram-array"].CriticalFrac <= byStyle["asic-sparse"].CriticalFrac {
		t.Fatalf("SRAM critical fraction %v not above sparse ASIC %v",
			byStyle["sram-array"].CriticalFrac, byStyle["asic-sparse"].CriticalFrac)
	}
	if byStyle["sram-array"].MeasuredYield >= byStyle["asic-sparse"].MeasuredYield {
		t.Fatalf("SRAM yield %v not below sparse ASIC %v",
			byStyle["sram-array"].MeasuredYield, byStyle["asic-sparse"].MeasuredYield)
	}
	if _, _, err := LayoutYieldStudy(-1, 100, 1); err == nil {
		t.Fatal("accepted negative rate")
	}
	if _, _, err := LayoutYieldStudy(1, 0, 1); err == nil {
		t.Fatal("accepted zero trials")
	}
}

func TestTestCostStudyShape(t *testing.T) {
	sizes := []float64{1e6, 10e6, 100e6}
	yields := []float64{0.4, 0.8}
	rows, tbl, err := TestCostStudy(sizes, yields)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At fixed yield, per-die test cost grows with size but sublinearly.
	find := func(ntr, y float64) TestCostRow {
		for _, r := range rows {
			if r.Transistors == ntr && r.Yield == y {
				return r
			}
		}
		t.Fatalf("missing row %v/%v", ntr, y)
		return TestCostRow{}
	}
	small, big := find(1e6, 0.8), find(100e6, 0.8)
	if big.TestPerDie <= small.TestPerDie {
		t.Fatal("test cost did not grow with size")
	}
	if big.TestPerDie >= 100*small.TestPerDie {
		t.Fatal("test cost grew superlinearly despite compression exponent")
	}
	// At fixed size, lower yield raises the per-die charge.
	lo, hi := find(10e6, 0.4), find(10e6, 0.8)
	if lo.TestPerDie <= hi.TestPerDie {
		t.Fatal("lower yield did not raise test cost")
	}
	// Test is a minor share for big die, visible for small ones.
	if small.TestShare <= big.TestShare {
		t.Fatalf("test share should shrink with die size: %v vs %v", small.TestShare, big.TestShare)
	}
	if _, _, err := TestCostStudy(nil, yields); err == nil {
		t.Fatal("accepted empty sizes")
	}
}

func TestMPWStudyShape(t *testing.T) {
	nodes := []float64{0.25, 0.18, 0.13}
	rows, tbl, err := MPWStudy(nodes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.MPWPerDie >= r.DedPerDie {
			t.Errorf("λ=%v: MPW %v not below dedicated %v at prototype volume", r.LambdaUM, r.MPWPerDie, r.DedPerDie)
		}
		// The sharing advantage is bounded by the project count.
		if r.Advantage <= 1 || r.Advantage > 10 {
			t.Errorf("λ=%v: advantage %v outside (1, projects]", r.LambdaUM, r.Advantage)
		}
		// Identity: the dedicated break-even lot equals the MPW lot size
		// (both prices amortize the same mask set over the same wafers).
		if math.Abs(r.BreakEvenWaf-20) > 1e-6 {
			t.Errorf("λ=%v: break-even %v, want the 20-wafer lot (invariance)", r.LambdaUM, r.BreakEvenWaf)
		}
		if i > 0 {
			if r.MaskSet <= rows[i-1].MaskSet {
				t.Error("mask set not growing with shrink")
			}
			if r.Advantage <= rows[i-1].Advantage {
				t.Errorf("sharing advantage not growing with shrink: %v after %v", r.Advantage, rows[i-1].Advantage)
			}
		}
	}
	if _, _, err := MPWStudy(nil, 10); err == nil {
		t.Fatal("accepted empty nodes")
	}
	if _, _, err := MPWStudy(nodes, 1); err == nil {
		t.Fatal("accepted single project")
	}
}

func TestRoutabilityStudyShape(t *testing.T) {
	rows, tbl, err := RoutabilityStudy([]float64{1.5, 2.5, 4}, 144, 4, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Connectivity growth raises demand.
	if rows[len(rows)-1].PeakDemand <= rows[0].PeakDemand {
		t.Fatalf("fanout growth did not raise peak demand: %v vs %v",
			rows[len(rows)-1].PeakDemand, rows[0].PeakDemand)
	}
	// The §2.2.2 check: even at 4x-ish connectivity the routing inflation
	// stays well under the 2x+ s_d growth Table A1 shows.
	for _, r := range rows {
		if r.AreaInflation < 1 {
			t.Fatalf("inflation below 1: %+v", r)
		}
		if r.SdWithRouting < 60 {
			t.Fatalf("routed s_d below intrinsic: %+v", r)
		}
	}
	if _, _, err := RoutabilityStudy(nil, 100, 4, 60, 1); err == nil {
		t.Fatal("accepted empty fanouts")
	}
	if _, _, err := RoutabilityStudy([]float64{2}, 4, 4, 60, 1); err == nil {
		t.Fatal("accepted tiny gate count")
	}
}
