package experiments

import (
	"sort"

	"repro/internal/layout"
	"repro/internal/report"
)

// LayoutSdRow is one generated design style with its measured density.
type LayoutSdRow struct {
	Style string
	Sd    float64
}

// LayoutDensityStudy runs X-8: generate one layout per design style and
// measure s_d from the geometry, reproducing the paper's customization
// spectrum (SRAM ≈ 30, datapath ≈ 50, synthesized logic 150–1000+) from
// first principles instead of die photographs.
func LayoutDensityStudy(seed uint64) ([]LayoutSdRow, *report.Table, error) {
	sds, err := layout.StyleSd(seed)
	if err != nil {
		return nil, nil, err
	}
	styles := make([]string, 0, len(sds))
	for s := range sds {
		styles = append(styles, s)
	}
	sort.Slice(styles, func(a, b int) bool { return sds[styles[a]] < sds[styles[b]] })
	tbl := report.NewTable("X-8 — measured s_d of generated layout styles", "style", "s_d")
	var rows []LayoutSdRow
	for _, s := range styles {
		rows = append(rows, LayoutSdRow{Style: s, Sd: sds[s]})
		tbl.AddRow(s, sds[s])
	}
	return rows, tbl, nil
}
