package experiments

import (
	"sort"

	"repro/internal/layout"
	"repro/internal/memo"
	"repro/internal/report"
)

// LayoutSdRow is one generated design style with its measured density.
type LayoutSdRow struct {
	Style string
	Sd    float64
}

// styleSdCache memoizes the measured densities per seed: the rows are the
// same every time a seed is revisited, so repeat studies (manifest
// smokes, figure regeneration, sweeps over other axes) skip the layout
// generation entirely. Values are shared; the study copies them into
// fresh rows.
var styleSdCache = memo.New[uint64, []LayoutSdRow]("experiments.style-sd", 32)

// LayoutDensityStudy runs X-8: generate one layout per design style and
// measure s_d from the geometry, reproducing the paper's customization
// spectrum (SRAM ≈ 30, datapath ≈ 50, synthesized logic 150–1000+) from
// first principles instead of die photographs.
func LayoutDensityStudy(seed uint64) ([]LayoutSdRow, *report.Table, error) {
	cached, err := styleSdCache.Get(seed, func() ([]LayoutSdRow, error) {
		sds, err := layout.StyleSd(seed)
		if err != nil {
			return nil, err
		}
		styles := make([]string, 0, len(sds))
		for s := range sds {
			styles = append(styles, s)
		}
		sort.Slice(styles, func(a, b int) bool { return sds[styles[a]] < sds[styles[b]] })
		rows := make([]LayoutSdRow, 0, len(styles))
		for _, s := range styles {
			rows = append(rows, LayoutSdRow{Style: s, Sd: sds[s]})
		}
		return rows, nil
	})
	if err != nil {
		return nil, nil, err
	}
	tbl := report.NewTable("X-8 — measured s_d of generated layout styles", "style", "s_d")
	rows := make([]LayoutSdRow, len(cached))
	copy(rows, cached)
	for _, r := range rows {
		tbl.AddRow(r.Style, r.Sd)
	}
	return rows, tbl, nil
}
