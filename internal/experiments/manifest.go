package experiments

import (
	"fmt"

	"repro/internal/yield"
)

// Artifact identifies one regenerable table/figure/study and how to run
// it with its canonical parameters.
type Artifact struct {
	ID    string
	Title string
	Run   func() error
}

// Manifest returns every artifact of the reproduction — the paper's table
// and figures followed by the extension studies — each bound to its
// canonical parameters. Callers (cmd/figures, CI smoke tests) iterate it
// to prove the whole harness still runs end to end.
func Manifest() []Artifact {
	discard := func(err error) error { return err }
	return []Artifact{
		{"tablea1", "Table A1 — 49 industrial designs", func() error {
			_, _, err := TableA1()
			return discard(err)
		}},
		{"fig1", "Figure 1 — industrial s_d trend", func() error {
			_, _, err := Figure1()
			return discard(err)
		}},
		{"fig2", "Figure 2 — ITRS-implied s_d", func() error {
			_, _, err := Figure2()
			return discard(err)
		}},
		{"fig3", "Figure 3 — required s_d for a $34 die", func() error {
			_, _, err := Figure3()
			return discard(err)
		}},
		{"fig4", "Figure 4 — C_tr(s_d), both panels", func() error {
			for _, c := range Figure4Cases() {
				if _, _, err := Figure4(c, 24); err != nil {
					return err
				}
			}
			return nil
		}},
		{"x1", "optimal s_d vs volume", func() error {
			_, _, err := OptimalSdVsVolume(500, 1e6, 8)
			return discard(err)
		}},
		{"x2", "yield models vs Monte Carlo", func() error {
			_, _, err := YieldModelComparison([]float64{0.3, 1}, 1,
				yield.SimConfig{DiePerWafer: 100, Wafers: 40, Seed: 1})
			return discard(err)
		}},
		{"x3", "FPGA utilization crossover", func() error {
			_, _, err := UtilizationCrossover(0.4, 10, 1e6, 8)
			return discard(err)
		}},
		{"x4", "regularity → design cost", func() error {
			_, _, err := RegularityStudy(1)
			return discard(err)
		}},
		{"x5", "gross die: exact vs approximations", func() error {
			_, _, err := GrossDieStudy([]float64{0.5, 1})
			return discard(err)
		}},
		{"x6", "wafer cost learning", func() error {
			_, _, err := WaferCostStudy(0.18, []float64{0, 12}, []float64{1000, 100000})
			return discard(err)
		}},
		{"x7", "mask amortization", func() error {
			_, _, err := MaskAmortization([]float64{0.25, 0.13}, 100, 1e5, 6)
			return discard(err)
		}},
		{"x8", "layout style densities", func() error {
			_, _, err := LayoutDensityStudy(1)
			return discard(err)
		}},
		{"x9", "Figure 3 stress", func() error {
			_, _, err := Figure3Stress(0.15, 0.05)
			return discard(err)
		}},
		{"x10", "layout critical-area yield", func() error {
			_, _, err := LayoutYieldStudy(2, 300, 1)
			return discard(err)
		}},
		{"x11", "cost of test", func() error {
			_, _, err := TestCostStudy([]float64{1e6, 10e6}, []float64{0.8})
			return discard(err)
		}},
		{"x12", "multi-project wafers", func() error {
			_, _, err := MPWStudy([]float64{0.25, 0.13}, 10)
			return discard(err)
		}},
		{"x13", "routability decompression", func() error {
			_, _, err := RoutabilityStudy([]float64{2}, 64, 4, 60, 1)
			return discard(err)
		}},
		{"x14", "Table A1 priced", func() error {
			_, _, err := DeviceCostStudy()
			return discard(err)
		}},
		{"x15", "cost uncertainty", func() error {
			_, _, err := UncertaintyStudy(500, 1)
			return discard(err)
		}},
		{"x16", "spatial wafer map", func() error {
			_, _, err := WaferMapStudy(3, 40, 1)
			return discard(err)
		}},
		{"x17", "time-to-market vs density", func() error {
			_, _, err := TTMStudy([]float64{12})
			return discard(err)
		}},
		{"x18", "MPU vs DRAM implied s_d", func() error {
			_, _, err := MPUvsDRAM()
			return discard(err)
		}},
		{"x19", "synthetic SoC decomposition", func() error {
			_, _, err := SoCStudy(120, 1)
			return discard(err)
		}},
		{"x20", "redundancy repair economics", func() error {
			_, _, err := RepairStudy([]float64{1, 3}, 0.01)
			return discard(err)
		}},
		{"x21", "family amortization", func() error {
			_, _, err := FamilyStudy(4)
			return discard(err)
		}},
		{"x22", "optimal fault coverage", func() error {
			_, _, err := TestEconomicsStudy([]float64{0.7}, 50)
			return discard(err)
		}},
	}
}

// RunAll executes every manifest artifact and returns the first failure
// annotated with its ID, or nil when the full harness regenerates.
func RunAll() error {
	for _, a := range Manifest() {
		if err := a.Run(); err != nil {
			return fmt.Errorf("experiments: %s (%s): %w", a.ID, a.Title, err)
		}
	}
	return nil
}
