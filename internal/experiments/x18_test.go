package experiments

import (
	"math"
	"testing"
)

func TestMPUvsDRAM(t *testing.T) {
	rows, fig, err := MPUvsDRAM()
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 shared generations", len(rows))
	}
	for i, r := range rows {
		// DRAM stays pinned near 10 while the MPU sits far above it.
		if r.DRAMSd < 5 || r.DRAMSd > 15 {
			t.Errorf("%d: DRAM s_d = %v, want ≈10", r.Year, r.DRAMSd)
		}
		if r.MPUOverDRAM < 5 {
			t.Errorf("%d: MPU/DRAM ratio = %v, want ≥ 5", r.Year, r.MPUOverDRAM)
		}
		// The gap narrows over the roadmap only because the MPU line is
		// forced downward; DRAM itself never moves (scale invariance, up
		// to float rounding).
		if i > 0 && math.Abs(r.DRAMSd-rows[i-1].DRAMSd) > 1e-9*r.DRAMSd {
			t.Errorf("%d: DRAM s_d moved: %v vs %v", r.Year, r.DRAMSd, rows[i-1].DRAMSd)
		}
		if i > 0 && r.MPUOverDRAM >= rows[i-1].MPUOverDRAM {
			t.Errorf("%d: MPU/DRAM ratio not shrinking", r.Year)
		}
	}
}
