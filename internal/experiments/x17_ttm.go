package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// TTMRow is one price-erosion regime of the X-17 study.
type TTMRow struct {
	ErosionTau    float64 // months
	CostOptSd     float64
	ProfitOptSd   float64
	Shift         float64 // ProfitOptSd − CostOptSd
	DesignMonths  float64 // at the profit optimum
	ProfitAtOpt   float64
	ProfitAtCost  float64 // profit if the team chased the cost optimum instead
	ProfitForfeit float64 // ProfitAtOpt − ProfitAtCost
}

// TTMStudy runs X-17: §2.2.2 asserts "the time to market pressure must be
// a factor deciding about compactness of modern custom-designed ICs" —
// this study derives it. Under exponential price erosion the
// profit-optimal s_d sits above the cost-optimal s_d, and the gap widens
// as erosion accelerates: exactly the industrial decompression Figure 1
// documents, emerging from the model rather than asserted.
func TTMStudy(erosionTaus []float64) ([]TTMRow, *report.Table, error) {
	if len(erosionTaus) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-17 needs at least one erosion tau")
	}
	base, err := Figure4Scenario(Figure4Case{Wafers: 20000, Yield: 0.8}, 0.18)
	if err != nil {
		return nil, nil, err
	}
	costOpt, err := core.OptimalSd(base, 2000)
	if err != nil {
		return nil, nil, err
	}
	tbl := report.NewTable("X-17 — time-to-market pressure vs design density",
		"erosion τ (mo)", "cost-opt s_d", "profit-opt s_d", "shift", "design months", "profit $M", "forfeit if cost-chasing $M")
	var rows []TTMRow
	for _, tau := range erosionTaus {
		m := core.DefaultMarketModel()
		m.ErosionTauMonths = tau
		profOpt, err := m.ProfitOptimalSd(base, 3000)
		if err != nil {
			return nil, nil, err
		}
		atCost, err := m.Profit(base.WithSd(costOpt.Sd))
		if err != nil {
			return nil, nil, err
		}
		row := TTMRow{
			ErosionTau:    tau,
			CostOptSd:     costOpt.Sd,
			ProfitOptSd:   profOpt.Sd,
			Shift:         profOpt.Sd - costOpt.Sd,
			DesignMonths:  profOpt.DesignMonths,
			ProfitAtOpt:   profOpt.Profit,
			ProfitAtCost:  atCost.Profit,
			ProfitForfeit: profOpt.Profit - atCost.Profit,
		}
		rows = append(rows, row)
		tbl.AddRow(row.ErosionTau, row.CostOptSd, row.ProfitOptSd, row.Shift,
			row.DesignMonths, row.ProfitAtOpt/1e6, row.ProfitForfeit/1e6)
	}
	return rows, tbl, nil
}
