package experiments

import (
	"repro/internal/devices"
	"repro/internal/report"
)

// DeviceCostResult carries the X-14 ranking plus the paper's flagship
// same-node comparison.
type DeviceCostResult struct {
	Ranked        []devices.DeviceCost
	K6OverPentium float64 // Pentium II / K6 transistor-cost ratio on 0.25 µm
}

// DeviceCostStudy runs X-14: every Table A1 device priced through eq (3)
// at its era's cost per cm², ranked by dollars per transistor — the
// paper's §2.2.2 market argument made quantitative: on the same node, the
// denser design (AMD's K6 vs Intel's Pentium II) sells measurably cheaper
// transistors.
func DeviceCostStudy() (DeviceCostResult, *report.Table, error) {
	ranked, err := devices.CostAnalysis()
	if err != nil {
		return DeviceCostResult{}, nil, err
	}
	ratio, err := devices.SameNodeComparison(14, 9) // K6 Model 7 vs Pentium II, both 0.25 µm
	if err != nil {
		return DeviceCostResult{}, nil, err
	}
	tbl := report.NewTable("X-14 — Table A1 devices priced through eq (3), cheapest transistors first",
		"rank", "device", "kind", "λ µm", "C_sq $/cm²", "s_d (blended)", "$/transistor", "die $")
	for i, r := range ranked {
		sd, err := r.SdTotal()
		if err != nil {
			return DeviceCostResult{}, nil, err
		}
		tbl.AddRow(i+1, r.Name, string(r.Kind), r.LambdaUM, r.CostPerCM2, sd, r.TransistorUSD, r.DieUSD)
	}
	return DeviceCostResult{Ranked: ranked, K6OverPentium: ratio}, tbl, nil
}
