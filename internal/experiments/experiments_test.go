package experiments

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/devices"
	"repro/internal/yield"
)

func TestTableA1Regeneration(t *testing.T) {
	rows, tbl, err := TableA1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 49 {
		t.Fatalf("rows = %d, want 49", len(rows))
	}
	if len(tbl.Rows) != 49 {
		t.Fatalf("table rows = %d, want 49", len(tbl.Rows))
	}
	out := tbl.String()
	for _, want := range []string{"K7", "Pentium", "ATM", "SRAM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q", want)
		}
	}
	// Area columns are consistent: mem + logic = die for split rows.
	for _, r := range rows {
		if got := r.MemAreaCM2 + r.LogicArea; got < r.DieCM2-1e-9 || got > r.DieCM2+1e-9 {
			t.Fatalf("row %d: areas do not add up", r.ID)
		}
	}
}

func TestFigure1Shapes(t *testing.T) {
	res, fig, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.IndustryTrend.Slope <= 0 {
		t.Fatalf("industry trend slope = %v, want positive", res.IndustryTrend.Slope)
	}
	if res.IntelTrend.Slope <= 0 {
		t.Fatalf("Intel trend slope = %v, want positive", res.IntelTrend.Slope)
	}
	if res.AMDMeanPreK7 >= res.IntelMeanPre {
		t.Fatalf("pre-K7 AMD mean %v not below Intel %v", res.AMDMeanPreK7, res.IntelMeanPre)
	}
	if res.K7Sd <= 300 {
		t.Fatalf("K7 s_d = %v, want above 300", res.K7Sd)
	}
	if len(res.Points) != 48 {
		t.Fatalf("points = %d, want 48", len(res.Points))
	}
}

func TestFigure2Shape(t *testing.T) {
	rows, fig, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	// Implied s_d falls monotonically in time (rows are chronological,
	// λ shrinking).
	for i := 1; i < len(rows); i++ {
		if rows[i].ImpliedSd >= rows[i-1].ImpliedSd {
			t.Fatalf("implied s_d not falling at %d", rows[i].Year)
		}
	}
	// First node ≈ 250 squares per transistor.
	if rows[0].ImpliedSd < 230 || rows[0].ImpliedSd > 270 {
		t.Fatalf("1999 implied s_d = %v, want ≈250", rows[0].ImpliedSd)
	}
}

func TestFigure3Shape(t *testing.T) {
	rows, fig, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("figure 3 series = %d, want 3", len(fig.Series))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].RequiredSd >= rows[i-1].RequiredSd {
			t.Fatalf("required s_d not falling at %d", rows[i].Year)
		}
		if rows[i].Ratio <= rows[i-1].Ratio {
			t.Fatalf("ratio not rising at %d", rows[i].Year)
		}
	}
	last := rows[len(rows)-1]
	// The contradiction: required s_d ends at/below the full-custom limit
	// while industry runs 300+.
	if last.RequiredSd > 110 {
		t.Fatalf("terminal required s_d = %v, want ≤ ~100", last.RequiredSd)
	}
	logic, err := devices.LogicSdRange()
	if err != nil {
		t.Fatal(err)
	}
	if last.RequiredSd >= logic.Median {
		t.Fatalf("required s_d %v should sit far below the industrial median %v", last.RequiredSd, logic.Median)
	}
}

func TestFigure4Shapes(t *testing.T) {
	cases := Figure4Cases()
	if len(cases) != 2 {
		t.Fatalf("cases = %d, want the paper's two panels", len(cases))
	}
	low, _, err := Figure4(cases[0], 120)
	if err != nil {
		t.Fatal(err)
	}
	high, _, err := Figure4(cases[1], 120)
	if err != nil {
		t.Fatal(err)
	}
	for i := range figure4Nodes {
		// U-shape: optimum interior.
		lo, hi := low[i].Points[0], low[i].Points[len(low[i].Points)-1]
		if !(low[i].Optimum.Breakdown.Total < lo.Breakdown.Total && low[i].Optimum.Breakdown.Total < hi.Breakdown.Total) {
			t.Fatalf("node %v: low-volume optimum not interior", figure4Nodes[i])
		}
		// The optimum moves to denser design at high volume...
		if !(high[i].Optimum.Sd < low[i].Optimum.Sd) {
			t.Fatalf("node %v: high-volume optimal s_d %v not below low-volume %v",
				figure4Nodes[i], high[i].Optimum.Sd, low[i].Optimum.Sd)
		}
		// ...and the whole curve is cheaper.
		if !(high[i].Optimum.Breakdown.Total < low[i].Optimum.Breakdown.Total) {
			t.Fatalf("node %v: high-volume optimum not cheaper", figure4Nodes[i])
		}
	}
	// Smaller λ at fixed s_d and volume → cheaper transistor (λ² wins over
	// the mask growth at these volumes).
	if !(low[len(low)-1].Optimum.Breakdown.Total < low[0].Optimum.Breakdown.Total) {
		t.Fatalf("shrink did not cheapen the optimal transistor")
	}
	if _, _, err := Figure4(cases[0], 1); err == nil {
		t.Fatal("accepted 1-point sweep")
	}
}

func TestOptimalSdVsVolumeMonotone(t *testing.T) {
	rows, fig, err := OptimalSdVsVolume(500, 1e6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].OptimalSd > rows[i-1].OptimalSd+1e-6 {
			t.Fatalf("optimal s_d not (weakly) falling with volume at %v wafers", rows[i].Wafers)
		}
		if rows[i].Cost >= rows[i-1].Cost {
			t.Fatalf("optimal cost not falling with volume at %v wafers", rows[i].Wafers)
		}
	}
	span := rows[0].OptimalSd - rows[len(rows)-1].OptimalSd
	if span < 50 {
		t.Fatalf("optimal s_d moved only %v squares across 3 decades of volume — §3.1 says 'substantially'", span)
	}
	if _, _, err := OptimalSdVsVolume(10, 5, 4); err == nil {
		t.Fatal("accepted inverted range")
	}
}

func TestYieldModelComparisonTracks(t *testing.T) {
	lambdas := []float64{0.2, 0.6, 1.0, 1.6}
	rows, fig, err := YieldModelComparison(lambdas, 1.0,
		yield.SimConfig{DiePerWafer: 400, Wafers: 150, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		dP := abs(r.Measured - r.Poisson)
		dNB := abs(r.MeasuredC - r.NegBin)
		if dP > 0.02 {
			t.Errorf("λ=%v: uniform measurement off Poisson by %v", r.Lambda, dP)
		}
		if dNB > 0.03 {
			t.Errorf("λ=%v: clustered measurement off NB by %v", r.Lambda, dNB)
		}
		// Clustering raises yield at fixed λ.
		if r.Lambda >= 0.6 && r.MeasuredC <= r.Measured {
			t.Errorf("λ=%v: clustered yield %v not above uniform %v", r.Lambda, r.MeasuredC, r.Measured)
		}
	}
	if _, _, err := YieldModelComparison(nil, 1, yield.SimConfig{}); err == nil {
		t.Fatal("accepted empty lambdas")
	}
	if _, _, err := YieldModelComparison(lambdas, 0, yield.SimConfig{}); err == nil {
		t.Fatal("accepted zero alpha")
	}
}

func TestUtilizationCrossoverShape(t *testing.T) {
	res, fig, err := UtilizationCrossover(0.4, 10, 1e6, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Crossover <= 10 || res.Crossover >= 1e6 {
		t.Fatalf("crossover = %v, want interior", res.Crossover)
	}
	// FPGA wins below, ASIC above.
	for _, r := range res.Rows {
		if r.Wafers < res.Crossover/2 && r.FPGACost >= r.ASICCost {
			t.Fatalf("at %v wafers FPGA %v not below ASIC %v", r.Wafers, r.FPGACost, r.ASICCost)
		}
		if r.Wafers > res.Crossover*2 && r.ASICCost >= r.FPGACost {
			t.Fatalf("at %v wafers ASIC %v not below FPGA %v", r.Wafers, r.ASICCost, r.FPGACost)
		}
	}
	// Better utilization moves the crossover down (FPGA stays attractive
	// longer when it wastes less).
	res2, _, err := UtilizationCrossover(0.8, 10, 1e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Crossover <= res.Crossover {
		t.Fatalf("u=0.8 crossover %v not above u=0.4 %v", res2.Crossover, res.Crossover)
	}
	if _, _, err := UtilizationCrossover(1.5, 10, 100, 4); err == nil {
		t.Fatal("accepted u > 1")
	}
}

func TestRegularityStudyMonotone(t *testing.T) {
	rows, tbl, err := RegularityStudy(33)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("styles = %d, want 4", len(rows))
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
	byStyle := map[string]RegularityRow{}
	for _, r := range rows {
		byStyle[r.Style] = r
	}
	sram, sparse := byStyle["sram-array"], byStyle["asic-sparse"]
	if !(sram.Regularity > sparse.Regularity) {
		t.Fatalf("SRAM regularity %v not above sparse ASIC %v", sram.Regularity, sparse.Regularity)
	}
	if !(sram.Sigma < sparse.Sigma) {
		t.Fatalf("SRAM σ %v not below sparse ASIC %v", sram.Sigma, sparse.Sigma)
	}
	if !(sram.Iterations < sparse.Iterations) {
		t.Fatalf("SRAM iterations %v not below sparse ASIC %v", sram.Iterations, sparse.Iterations)
	}
	if !(sram.DesignCost < sparse.DesignCost) {
		t.Fatalf("SRAM design cost %v not below sparse ASIC %v", sram.DesignCost, sparse.DesignCost)
	}
	if !(sram.MeasuredSd < sparse.MeasuredSd) {
		t.Fatalf("SRAM s_d %v not below sparse ASIC %v", sram.MeasuredSd, sparse.MeasuredSd)
	}
}

func TestGrossDieStudyShape(t *testing.T) {
	rows, tbl, err := GrossDieStudy([]float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 wafers × 3 die sizes
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
	for _, r := range rows {
		if r.AreaRatio < r.Exact {
			t.Fatalf("area-ratio %d below exact %d — must overestimate", r.AreaRatio, r.Exact)
		}
		if r.Exact <= 0 {
			t.Fatalf("exact count %d", r.Exact)
		}
	}
	if _, _, err := GrossDieStudy(nil); err == nil {
		t.Fatal("accepted empty die list")
	}
}

func TestWaferCostStudyShape(t *testing.T) {
	rows, fig, err := WaferCostStudy(0.18, []float64{0, 6, 12, 24, 48}, []float64{1000, 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	// Within a volume, cost falls with age; across volumes, bigger is
	// cheaper at fixed age.
	byVol := map[float64][]WaferCostRow{}
	for _, r := range rows {
		byVol[r.Wafers] = append(byVol[r.Wafers], r)
	}
	for v, rs := range byVol {
		for i := 1; i < len(rs); i++ {
			if rs[i].CostCM2 >= rs[i-1].CostCM2 {
				t.Fatalf("volume %v: cost not falling with age", v)
			}
		}
	}
	small, big := byVol[1000], byVol[100000]
	for i := range small {
		if big[i].CostCM2 >= small[i].CostCM2 {
			t.Fatalf("high volume not cheaper at month %v", small[i].Months)
		}
	}
	if _, _, err := WaferCostStudy(0.18, nil, []float64{1}); err == nil {
		t.Fatal("accepted empty months")
	}
}

func TestMaskAmortizationShape(t *testing.T) {
	rows, fig, err := MaskAmortization([]float64{0.25, 0.13}, 100, 1e5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	// Advanced node costs more per cm² at every volume.
	var at025, at013 []MaskRow
	for _, r := range rows {
		if r.LambdaUM == 0.25 {
			at025 = append(at025, r)
		} else {
			at013 = append(at013, r)
		}
	}
	for i := range at025 {
		if at013[i].PerCM2At300 <= at025[i].PerCM2At300 {
			t.Fatalf("0.13 µm mask charge not above 0.25 µm at %v wafers", at025[i].Wafers)
		}
		if i > 0 && at025[i].PerCM2At300 >= at025[i-1].PerCM2At300 {
			t.Fatal("amortized charge not falling with volume")
		}
	}
	// At 100 wafers on 0.13 µm the mask charge alone should rival the
	// paper's 8 $/cm² manufacturing cost.
	if at013[0].PerCM2At300 < 8 {
		t.Fatalf("low-volume 0.13 µm mask charge = %v $/cm², want ≥ 8", at013[0].PerCM2At300)
	}
	if _, _, err := MaskAmortization(nil, 1, 10, 4); err == nil {
		t.Fatal("accepted empty nodes")
	}
}

func TestLayoutDensityStudyShape(t *testing.T) {
	rows, tbl, err := LayoutDensityStudy(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d/%d, want 4", len(rows), len(tbl.Rows))
	}
	// Sorted ascending by construction; first is SRAM near 30, last is
	// the sparse ASIC above 100.
	if rows[0].Style != "sram" || rows[0].Sd < 25 || rows[0].Sd > 40 {
		t.Fatalf("densest style = %+v, want sram ≈30", rows[0])
	}
	if rows[len(rows)-1].Style != "asic-sparse" || rows[len(rows)-1].Sd < 100 {
		t.Fatalf("sparsest style = %+v, want asic-sparse > 100", rows[len(rows)-1])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Sd < rows[i-1].Sd {
			t.Fatal("rows not sorted by density")
		}
	}
}

func TestErrorsPropagate(t *testing.T) {
	_, _, err := Figure4(Figure4Case{Wafers: 0, Yield: 0.5}, 10)
	if err == nil {
		t.Fatal("accepted zero-wafer case")
	}
	var zero error
	if errors.Is(err, zero) {
		// Nothing specific required; the call must simply fail loudly.
		_ = zero
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
