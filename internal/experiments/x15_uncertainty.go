package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// UncertaintyResult carries the X-15 study: Monte Carlo cost quantiles
// under realistic input uncertainty plus the one-at-a-time tornado.
type UncertaintyResult struct {
	Quantiles core.CostQuantiles
	Tornado   []core.TornadoBar
}

// UncertaintyStudy runs X-15: the paper presents eq (4) as a "compass"
// for maneuvering among cost stumbling blocks; a compass needs error
// bars. Realistic input uncertainty (yield ±, cost/cm² log-normal, s_d
// spread from the design-style choice, volume uncertainty from demand) is
// propagated through eq (4), and a tornado ranks which input to nail down
// first — λ and yield dominate, matching the eq (3) exponents.
func UncertaintyStudy(samples int, seed uint64) (UncertaintyResult, *report.Table, error) {
	if samples <= 0 {
		return UncertaintyResult{}, nil, fmt.Errorf("experiments: X-15 needs positive samples, got %d", samples)
	}
	base, err := Figure4Scenario(Figure4Case{Wafers: 10000, Yield: 0.7}, 0.18)
	if err != nil {
		return UncertaintyResult{}, nil, err
	}
	u := core.UncertainScenario{
		Base:   base,
		Yield:  core.Uniform(0.5, 0.9),
		CmSq:   core.LogNormal(8, 1.3),
		Sd:     core.Uniform(200, 450),
		Wafers: core.LogNormal(10000, 1.5),
	}
	q, err := u.MonteCarlo(samples, seed)
	if err != nil {
		return UncertaintyResult{}, nil, err
	}
	bars, err := core.Tornado(base, 0.2)
	if err != nil {
		return UncertaintyResult{}, nil, err
	}
	tbl := report.NewTable("X-15 — eq (4) cost under input uncertainty",
		"metric", "value ($/transistor)")
	tbl.AddRow("mean", q.Mean)
	tbl.AddRow("p5", q.P5)
	tbl.AddRow("p50", q.P50)
	tbl.AddRow("p95", q.P95)
	for _, b := range bars {
		tbl.AddRow("tornado "+b.Name+" (±20%)", b.Swing())
	}
	return UncertaintyResult{Quantiles: q, Tornado: bars}, tbl, nil
}
