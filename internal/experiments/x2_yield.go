package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/yield"
)

// YieldComparisonRow holds the measured and modeled yields at one λ.
type YieldComparisonRow struct {
	Lambda    float64 // mean fatal defects per die
	Measured  float64
	Poisson   float64
	Murphy    float64
	Seeds     float64
	NegBin    float64 // at the simulation's clustering α
	MeasuredC float64 // measured with clustering enabled
}

// YieldModelComparison runs the X-2 study: Monte Carlo yield (unclustered
// and clustered at α) against the four analytic models over a sweep of
// defects-per-die. Unclustered measurements track Poisson; clustered ones
// track the negative binomial at the same α — the validation loop §3.1
// says nanometer DfM needs.
func YieldModelComparison(lambdas []float64, alpha float64, cfg yield.SimConfig) ([]YieldComparisonRow, *report.Figure, error) {
	if len(lambdas) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-2 needs at least one lambda")
	}
	if alpha <= 0 {
		return nil, nil, fmt.Errorf("experiments: X-2 clustering alpha must be positive, got %v", alpha)
	}
	nb := yield.NegBinomial{Alpha: alpha}
	var rows []YieldComparisonRow
	for i, l := range lambdas {
		plain := cfg
		plain.Lambda = l
		plain.ClusterAlpha = 0
		plain.Seed = cfg.Seed + uint64(i)*7919
		mp, err := yield.Simulate(plain)
		if err != nil {
			return nil, nil, err
		}
		clustered := plain
		clustered.ClusterAlpha = alpha
		mc, err := yield.Simulate(clustered)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, YieldComparisonRow{
			Lambda:    l,
			Measured:  mp.Yield,
			MeasuredC: mc.Yield,
			Poisson:   (yield.Poisson{}).Yield(l),
			Murphy:    (yield.Murphy{}).Yield(l),
			Seeds:     (yield.Seeds{}).Yield(l),
			NegBin:    nb.Yield(l),
		})
	}
	fig := &report.Figure{
		Title:  "X-2 — analytic yield models vs Monte Carlo",
		XLabel: "mean fatal defects per die",
		YLabel: "yield",
	}
	mk := func(name string, pick func(YieldComparisonRow) float64) report.Series {
		s := report.Series{Name: name}
		for _, r := range rows {
			s.X = append(s.X, r.Lambda)
			s.Y = append(s.Y, pick(r))
		}
		return s
	}
	fig.Add(mk("measured (uniform)", func(r YieldComparisonRow) float64 { return r.Measured }))
	fig.Add(mk(fmt.Sprintf("measured (clustered α=%g)", alpha), func(r YieldComparisonRow) float64 { return r.MeasuredC }))
	fig.Add(mk("poisson", func(r YieldComparisonRow) float64 { return r.Poisson }))
	fig.Add(mk("murphy", func(r YieldComparisonRow) float64 { return r.Murphy }))
	fig.Add(mk("seeds", func(r YieldComparisonRow) float64 { return r.Seeds }))
	fig.Add(mk("negbinomial", func(r YieldComparisonRow) float64 { return r.NegBin }))
	return rows, fig, nil
}
