package experiments

import (
	"fmt"

	"repro/internal/fab"
	"repro/internal/report"
)

// WaferCostRow is one (age, volume) sample of the X-6 study.
type WaferCostRow struct {
	Months  float64
	Wafers  float64
	CostCM2 float64 // Cm_sq under maturity + volume effects
}

// WaferCostStudy runs X-6: the ref [30] wafer-cost dependence on process
// maturity and cumulative volume, evaluated through the fab substrate.
// Cost per cm² falls with both age (bring-up premium decays) and volume
// (experience curve) and approaches the amortization floor.
func WaferCostStudy(lambdaUM float64, months []float64, volumes []float64) ([]WaferCostRow, *report.Figure, error) {
	if len(months) == 0 || len(volumes) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-6 needs months and volumes")
	}
	line, err := fab.ReferenceFabline(lambdaUM, 200)
	if err != nil {
		return nil, nil, err
	}
	curve := fab.ExperienceCurve{FirstUnitCost: 1, LearningRate: 0.92}
	var rows []WaferCostRow
	fig := &report.Figure{
		Title:  fmt.Sprintf("X-6 — wafer cost per cm² at %.2f µm vs maturity and volume", lambdaUM),
		XLabel: "process age (months)",
		YLabel: "Cm_sq ($/cm²)",
	}
	for _, v := range volumes {
		s := report.Series{Name: fmt.Sprintf("%.0f wafers", v)}
		for _, m := range months {
			fn, err := fab.MatureWaferCost(line, 9, m, curve, 10000)
			if err != nil {
				return nil, nil, err
			}
			c := fn(line.WaferAreaCM2(), lambdaUM, v)
			rows = append(rows, WaferCostRow{Months: m, Wafers: v, CostCM2: c})
			s.X = append(s.X, m)
			s.Y = append(s.Y, c)
		}
		fig.Add(s)
	}
	return rows, fig, nil
}
