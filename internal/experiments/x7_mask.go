package experiments

import (
	"fmt"
	"math"

	"repro/internal/maskcost"
	"repro/internal/report"
)

// MaskRow is one (node, volume) sample of the X-7 study.
type MaskRow struct {
	LambdaUM    float64
	SetCost     float64
	Wafers      float64
	PerWafer    float64 // amortized mask cost per wafer
	PerCM2At300 float64 // amortized per cm² on a 300 cm² usable wafer
}

// MaskAmortization runs X-7: the mask-set price across nodes and its
// amortization over production volume — the C_MA term of eq (5) made
// concrete. At small volumes on advanced nodes the mask charge alone
// rivals the paper's 8 $/cm² manufacturing cost.
func MaskAmortization(nodes []float64, loWafers, hiWafers float64, points int) ([]MaskRow, *report.Figure, error) {
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-7 needs at least one node")
	}
	if points < 2 || !(loWafers > 0 && loWafers < hiWafers) {
		return nil, nil, fmt.Errorf("experiments: X-7 needs 0 < lo < hi and ≥2 points")
	}
	m := maskcost.DefaultModel()
	var rows []MaskRow
	fig := &report.Figure{
		Title:  "X-7 — amortized mask cost per cm² vs volume",
		XLabel: "wafers",
		YLabel: "$/cm²",
		LogY:   true,
	}
	ratio := hiWafers / loWafers
	for _, lam := range nodes {
		set, err := m.SetCost(lam)
		if err != nil {
			return nil, nil, err
		}
		s := report.Series{Name: fmt.Sprintf("λ=%.2fµm", lam)}
		for i := 0; i < points; i++ {
			w := loWafers * math.Pow(ratio, float64(i)/float64(points-1))
			per, err := m.AmortizedPerWafer(lam, w)
			if err != nil {
				return nil, nil, err
			}
			row := MaskRow{
				LambdaUM: lam, SetCost: set, Wafers: w,
				PerWafer: per, PerCM2At300: per / 300,
			}
			rows = append(rows, row)
			s.X = append(s.X, w)
			s.Y = append(s.Y, row.PerCM2At300)
		}
		fig.Add(s)
	}
	return rows, fig, nil
}
