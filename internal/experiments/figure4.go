package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/maskcost"
	"repro/internal/parallel"
	"repro/internal/report"
)

// Figure4Case identifies one panel of the paper's Figure 4.
type Figure4Case struct {
	Label  string
	Wafers float64
	Yield  float64
}

// Figure4Cases returns the paper's two panels: (a) N_w = 5000, Y = 0.4
// and (b) N_w = 50000, Y = 0.9 — both at N_tr = 10 M.
func Figure4Cases() []Figure4Case {
	return []Figure4Case{
		{Label: "a (Nw=5000, Y=0.4)", Wafers: 5000, Yield: 0.4},
		{Label: "b (Nw=50000, Y=0.9)", Wafers: 50000, Yield: 0.9},
	}
}

// Figure4Curve is one λ series of a Figure 4 panel plus its located
// optimum.
type Figure4Curve struct {
	LambdaUM float64
	Points   []core.SweepPoint
	Optimum  core.Optimum
}

// figure4Nodes are the feature sizes swept in each panel.
var figure4Nodes = []float64{0.25, 0.18, 0.13, 0.10}

// Figure4Scenario builds the eq (4) scenario for one panel at one node,
// with the mask-set price taken from the node-dependent mask model.
func Figure4Scenario(c Figure4Case, lambdaUM float64) (core.Scenario, error) {
	mask, err := maskcost.DefaultModel().SetCost(lambdaUM)
	if err != nil {
		return core.Scenario{}, err
	}
	return core.Scenario{
		Process: core.Process{
			Name:         fmt.Sprintf("node-%.0fnm", lambdaUM*1000),
			LambdaUM:     lambdaUM,
			CostPerCM2:   8.0,
			Yield:        c.Yield,
			WaferAreaCM2: 300,
		},
		Design:     core.Design{Name: "mpu10M", Transistors: 10e6, Sd: 300},
		DesignCost: core.DefaultDesignCostModel(),
		MaskCost:   mask,
		Wafers:     c.Wafers,
	}, nil
}

// Figure4 regenerates one panel of the paper's Figure 4: the eq (4)
// transistor cost versus s_d at N_tr = 10 M for several feature sizes,
// with the cost-optimal s_d marked. The curves are U-shaped; the optimum
// sits at sparser design (larger s_d) in the low-volume/low-yield panel
// and at denser design in the high-volume/high-yield panel.
func Figure4(c Figure4Case, points int) ([]Figure4Curve, *report.Figure, error) {
	return Figure4Ctx(context.Background(), c, points)
}

// Figure4Ctx is Figure4 honoring a caller context: a cancellation aborts
// the remaining node sweeps, and on a traced context the per-node sweeps
// and the pool fan-out appear as child spans (the serving layer and the
// figures CLI's -trace flag use this form).
func Figure4Ctx(ctx context.Context, c Figure4Case, points int) ([]Figure4Curve, *report.Figure, error) {
	if points < 2 {
		return nil, nil, fmt.Errorf("experiments: figure 4 needs at least 2 points, got %d", points)
	}
	fig := &report.Figure{
		Title:  "Figure 4" + c.Label + " — transistor cost vs s_d (Ntr=10M)",
		XLabel: "s_d",
		YLabel: "C_tr ($/transistor)",
		LogY:   true,
	}
	// The λ nodes are independent panels of work (each a sweep plus an
	// optimization), so they fan out over the worker pool; results land
	// in node order, keeping the figure's series order stable.
	curves, err := parallel.Map(ctx, len(figure4Nodes), 0, func(i int) (Figure4Curve, error) {
		lam := figure4Nodes[i]
		s, err := Figure4Scenario(c, lam)
		if err != nil {
			return Figure4Curve{}, err
		}
		pts, err := core.SweepSdCtx(ctx, s, 105, 2000, points)
		if err != nil {
			return Figure4Curve{}, err
		}
		opt, err := core.OptimalSd(s, 2000)
		if err != nil {
			return Figure4Curve{}, err
		}
		return Figure4Curve{LambdaUM: lam, Points: pts, Optimum: opt}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, cv := range curves {
		series := report.Series{Name: fmt.Sprintf("λ=%.2fµm (opt s_d=%.0f)", cv.LambdaUM, cv.Optimum.Sd)}
		for _, p := range cv.Points {
			series.X = append(series.X, p.X)
			series.Y = append(series.Y, p.Breakdown.Total)
		}
		fig.Add(series)
	}
	return curves, fig, nil
}
