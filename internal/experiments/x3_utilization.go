package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// UtilizationRow is one volume sample of the X-3 study.
type UtilizationRow struct {
	Wafers   float64
	ASICCost float64 // $/useful transistor, full-custom flow
	FPGACost float64 // $/useful transistor at utilization u
}

// UtilizationResult carries the full X-3 study.
type UtilizationResult struct {
	Rows      []UtilizationRow
	Crossover float64 // wafers at which the ASIC overtakes the FPGA
	U         float64
}

// asicFPGAPair builds the §2.5 comparison: an ASIC scenario with the full
// eq (6) design cost, and an FPGA scenario with utilization u, a
// prefabricated (sparse, cheap-design) fabric and no product mask set.
func asicFPGAPair(u float64) (asic, fpga core.Scenario, err error) {
	asic, err = Figure4Scenario(Figure4Case{Wafers: 1000, Yield: 0.8}, 0.18)
	if err != nil {
		return core.Scenario{}, core.Scenario{}, err
	}
	fpga = asic
	fpga.Utilization = u
	fpga.Design.Sd = 2000
	fpga.MaskCost = 0
	fpga.DesignCost = core.DesignCostModel{A0: 1, P1: 1, P2: 1.2, Sd0: 100}
	return asic, fpga, nil
}

// UtilizationCrossover runs X-3: the eq (7)/§2.5 u·Y substitution makes
// every FPGA transistor cost 1/u more, but the FPGA carries almost no
// per-product design or mask cost; below the crossover volume it wins,
// above it the ASIC does.
func UtilizationCrossover(u float64, loWafers, hiWafers float64, points int) (UtilizationResult, *report.Figure, error) {
	if !(u > 0 && u < 1) {
		return UtilizationResult{}, nil, fmt.Errorf("experiments: X-3 utilization must be in (0,1), got %v", u)
	}
	if points < 2 || !(loWafers > 0 && loWafers < hiWafers) {
		return UtilizationResult{}, nil, errors.New("experiments: X-3 needs 0 < lo < hi and ≥2 points")
	}
	asic, fpga, err := asicFPGAPair(u)
	if err != nil {
		return UtilizationResult{}, nil, err
	}
	res := UtilizationResult{U: u}
	res.Crossover, err = core.CrossoverVolume(asic, fpga, loWafers, hiWafers)
	if err != nil {
		return UtilizationResult{}, nil, err
	}
	aPts, err := core.SweepVolume(asic, loWafers, hiWafers, points)
	if err != nil {
		return UtilizationResult{}, nil, err
	}
	fPts, err := core.SweepVolume(fpga, loWafers, hiWafers, points)
	if err != nil {
		return UtilizationResult{}, nil, err
	}
	fig := &report.Figure{
		Title:  fmt.Sprintf("X-3 — ASIC vs FPGA (u=%.2f) transistor cost vs volume", u),
		XLabel: "wafers",
		YLabel: "C_tr ($/useful transistor)",
		LogY:   true,
	}
	sa := report.Series{Name: "asic"}
	sf := report.Series{Name: "fpga"}
	for i := range aPts {
		res.Rows = append(res.Rows, UtilizationRow{
			Wafers:   aPts[i].X,
			ASICCost: aPts[i].Breakdown.Total,
			FPGACost: fPts[i].Breakdown.Total,
		})
		sa.X = append(sa.X, aPts[i].X)
		sa.Y = append(sa.Y, aPts[i].Breakdown.Total)
		sf.X = append(sf.X, fPts[i].X)
		sf.Y = append(sf.Y, fPts[i].Breakdown.Total)
	}
	fig.Add(sa)
	fig.Add(sf)
	return res, fig, nil
}
