package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/yield"
)

// RepairRow is one (λ, spares) point of the X-20 study.
type RepairRow struct {
	Lambda         float64
	RawYield       float64 // Poisson, no repair
	Spares         int
	RepairedYield  float64
	CostMultiplier float64 // (1+f)·Y0/Yr; < 1 when repair pays
}

// RepairStudy runs X-20, the ref [32] mechanism joined to §3.2: regular
// fabrics are not just predictable, they are *repairable*. For each
// defect regime the study sizes the spare count that restores 90% yield,
// prices the spare area, and reports the cost multiplier — repair turns
// otherwise-hopeless dense structures (raw yield under 10%) into
// shippable ones at a few percent area overhead, which is exactly why
// memory keeps tracking the roadmap (X-18) while random logic cannot.
func RepairStudy(lambdas []float64, spareAreaPerUnit float64) ([]RepairRow, *report.Table, error) {
	if len(lambdas) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-20 needs at least one lambda")
	}
	if spareAreaPerUnit < 0 {
		return nil, nil, fmt.Errorf("experiments: X-20 spare area must be non-negative, got %v", spareAreaPerUnit)
	}
	tbl := report.NewTable("X-20 — redundancy repair economics (regular fabrics)",
		"λ (defects/die)", "raw yield", "spares for 90%", "repaired yield", "cost multiplier")
	var rows []RepairRow
	for _, l := range lambdas {
		spares, err := yield.SparesForYield(l, 0.9, 1000)
		if err != nil {
			return nil, nil, err
		}
		f := spareAreaPerUnit * float64(spares)
		repaired, err := (yield.Redundancy{Spares: spares}).Yield(l * (1 + f))
		if err != nil {
			return nil, nil, err
		}
		mult, err := yield.RepairEconomics(l, spares, f)
		if err != nil {
			return nil, nil, err
		}
		row := RepairRow{
			Lambda:         l,
			RawYield:       (yield.Poisson{}).Yield(l),
			Spares:         spares,
			RepairedYield:  repaired,
			CostMultiplier: mult,
		}
		rows = append(rows, row)
		tbl.AddRow(row.Lambda, row.RawYield, row.Spares, row.RepairedYield, row.CostMultiplier)
	}
	return rows, tbl, nil
}
