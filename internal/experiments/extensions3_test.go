package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestWaferMapStudy(t *testing.T) {
	res, tbl, err := WaferMapStudy(4, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites < 150 {
		t.Fatalf("sites = %d", res.Sites)
	}
	// Lot yield below the flat reference (edge drag).
	if res.LotYield >= res.PoissonRef {
		t.Fatalf("lot yield %v not below flat Poisson %v", res.LotYield, res.PoissonRef)
	}
	// Monotone outward decline.
	for i := 1; i < len(res.Zones); i++ {
		if res.Zones[i] >= res.Zones[i-1] {
			t.Fatalf("zones not declining: %v", res.Zones)
		}
	}
	if !strings.Contains(res.Rendered, ".") {
		t.Fatal("render missing wafer boundary")
	}
	if len(tbl.Rows) != len(res.Zones)+2 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
	if _, _, err := WaferMapStudy(0.5, 10, 1); err == nil {
		t.Fatal("accepted edge factor < 1")
	}
	if _, _, err := WaferMapStudy(2, 0, 1); err == nil {
		t.Fatal("accepted zero wafers")
	}
}

func TestTTMStudyExplainsDecompression(t *testing.T) {
	taus := []float64{36, 12, 6}
	rows, tbl, err := TTMStudy(taus)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Profit optimum above the cost optimum in every regime: the TTM
		// decompression exists whenever prices erode at all.
		if r.Shift <= 0 {
			t.Fatalf("τ=%v: profit optimum %v not above cost optimum %v", r.ErosionTau, r.ProfitOptSd, r.CostOptSd)
		}
		// Chasing the cost optimum forfeits profit.
		if r.ProfitForfeit <= 0 {
			t.Fatalf("τ=%v: no forfeit from cost-chasing", r.ErosionTau)
		}
		// Faster erosion destroys program value (rows ordered by
		// decreasing tau). The *shift* is deliberately not asserted
		// monotone: faster erosion raises the relative value of shipping
		// early but shrinks the absolute revenue pool, and the two
		// effects trade off.
		if i > 0 && r.ProfitAtOpt >= rows[i-1].ProfitAtOpt {
			t.Fatalf("profit not declining with erosion: %v after %v", r.ProfitAtOpt, rows[i-1].ProfitAtOpt)
		}
	}
	// The quantitative punchline: at paper-era erosion (τ = 12 mo) the
	// profit-optimal s_d lands in the upper half of Table A1's observed
	// industrial band (≈300–770), far above the ≈169 cost optimum.
	mid := rows[1]
	if math.IsNaN(mid.ProfitOptSd) || mid.ProfitOptSd < 300 || mid.ProfitOptSd > 800 {
		t.Fatalf("τ=12: profit-optimal s_d = %v, want in the industrial 300–800 band", mid.ProfitOptSd)
	}
	if _, _, err := TTMStudy(nil); err == nil {
		t.Fatal("accepted empty tau list")
	}
}
