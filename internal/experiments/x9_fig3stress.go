package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/itrs"
	"repro/internal/report"
)

// Fig3StressRow is one roadmap node under one economic scenario.
type Fig3StressRow struct {
	Scenario   string
	Year       int
	LambdaUM   float64
	RequiredSd float64
}

// Figure3Stress runs X-9: the paper stresses that Figure 3 already uses a
// "very optimistic scenario i.e. assuming no increase in C_sq and no
// decrease in yield". This study drops that optimism: C_sq grows by
// csqGrowth per 3-year node and yield declines by yieldDecay per node, and
// the required s_d for the constant $34 die collapses even faster — the
// cost contradiction is a lower bound.
func Figure3Stress(csqGrowth, yieldDecay float64) ([]Fig3StressRow, *report.Figure, error) {
	if csqGrowth < 0 {
		return nil, nil, fmt.Errorf("experiments: X-9 C_sq growth must be non-negative, got %v", csqGrowth)
	}
	if yieldDecay < 0 || yieldDecay >= 1 {
		return nil, nil, fmt.Errorf("experiments: X-9 yield decay must be in [0,1), got %v", yieldDecay)
	}
	nodes := itrs.Nodes()
	scenarios := []struct {
		name    string
		csqAt   func(i int) float64
		yieldAt func(i int) float64
	}{
		{
			name:    "paper (optimistic)",
			csqAt:   func(int) float64 { return itrs.CostPerCM2 },
			yieldAt: func(int) float64 { return itrs.Yield },
		},
		{
			name:    "pessimistic",
			csqAt:   func(i int) float64 { return itrs.CostPerCM2 * math.Pow(1+csqGrowth, float64(i)) },
			yieldAt: func(i int) float64 { return itrs.Yield * math.Pow(1-yieldDecay, float64(i)) },
		},
	}
	var rows []Fig3StressRow
	fig := &report.Figure{
		Title:  "X-9 — required s_d for a $34 die: optimistic vs pessimistic economics",
		XLabel: "λ (µm)",
		YLabel: "required s_d",
		LogY:   true,
	}
	for _, sc := range scenarios {
		series := report.Series{Name: sc.name}
		for i, n := range nodes {
			p := core.Process{
				Name:         fmt.Sprintf("%s-%d", sc.name, n.Year),
				LambdaUM:     n.LambdaUM,
				CostPerCM2:   sc.csqAt(i),
				Yield:        sc.yieldAt(i),
				WaferAreaCM2: 300,
			}
			req, err := core.RequiredSdForDieCost(itrs.TargetDieCost, p, n.Transistors)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, Fig3StressRow{
				Scenario: sc.name, Year: n.Year, LambdaUM: n.LambdaUM, RequiredSd: req,
			})
			series.X = append(series.X, n.LambdaUM)
			series.Y = append(series.Y, req)
		}
		fig.Add(series)
	}
	return rows, fig, nil
}
