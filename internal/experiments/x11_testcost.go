package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// TestCostRow is one (size, yield) operating point of the X-11 study.
type TestCostRow struct {
	Transistors float64
	Yield       float64
	TestPerDie  float64
	TestShare   float64 // test / total die cost
	TotalPerTx  float64
}

// TestCostStudy runs X-11: the cost-of-test extension §2.5 says "could be
// easily included" — included. Test cost per good die grows with design
// size (sublinearly, via scan compression) and inversely with yield (bad
// die burn tester time too); its share of the die cost is largest exactly
// where the paper's cost squeeze already bites: big die on low-yield
// processes.
func TestCostStudy(sizes []float64, yields []float64) ([]TestCostRow, *report.Table, error) {
	if len(sizes) == 0 || len(yields) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-11 needs sizes and yields")
	}
	model := core.DefaultTestCostModel()
	tbl := report.NewTable("X-11 — cost of test in the eq (4) framework",
		"N_tr", "yield", "test $/die", "test share", "C_tr with test $")
	var rows []TestCostRow
	for _, y := range yields {
		for _, ntr := range sizes {
			s, err := Figure4Scenario(Figure4Case{Wafers: 20000, Yield: y}, 0.18)
			if err != nil {
				return nil, nil, err
			}
			s.Design.Transistors = ntr
			b, perTx, err := core.TransistorCostWithTest(s, model)
			if err != nil {
				return nil, nil, err
			}
			row := TestCostRow{
				Transistors: ntr,
				Yield:       y,
				TestPerDie:  perTx * ntr,
				TestShare:   perTx * ntr / b.DieCost,
				TotalPerTx:  b.Total,
			}
			rows = append(rows, row)
			tbl.AddRow(row.Transistors, row.Yield, row.TestPerDie, row.TestShare, row.TotalPerTx)
		}
	}
	return rows, tbl, nil
}
