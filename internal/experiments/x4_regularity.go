package experiments

import (
	"fmt"

	"repro/internal/designflow"
	"repro/internal/layout"
	"repro/internal/regularity"
	"repro/internal/report"
)

// RegularityRow is one design style of the X-4 study: from generated
// layout through measured regularity and prediction error to iteration
// count and design cost.
type RegularityRow struct {
	Style      string
	MeasuredSd float64
	Regularity float64
	Sigma      float64 // prediction error from the regularity model
	Iterations float64
	DesignCost float64
}

// RegularityStudy runs the §3.2 pipeline end to end on generated layouts:
// regular structures (SRAM, datapath) → high pattern reuse → accurate
// prediction → few closure iterations → low C_DE; sparse random logic →
// the opposite. This is the constructive version of the paper's closing
// recommendation.
func RegularityStudy(seed uint64) ([]RegularityRow, *report.Table, error) {
	type style struct {
		name string
		gen  func() (*layout.Layout, error)
	}
	styles := []style{
		{"sram-array", func() (*layout.Layout, error) { return layout.GenerateSRAMArray(20, 16) }},
		{"datapath", func() (*layout.Layout, error) { return layout.GenerateDatapath(20, 6, 12) }},
		{"asic-tight", func() (*layout.Layout, error) {
			return layout.GenerateRandomLogic(layout.RandomLogicConfig{Cells: 400, RowUtil: 0.9, RouteTracks: 2, Seed: seed})
		}},
		{"asic-sparse", func() (*layout.Layout, error) {
			return layout.GenerateRandomLogic(layout.RandomLogicConfig{Cells: 400, RowUtil: 0.4, RouteTracks: 8, Seed: seed})
		}},
	}
	errModel := regularity.DefaultPredictionErrorModel()
	closure := designflow.ClosureConfig{
		InitialOvershoot: 0.5,
		Tolerance:        0.02,
		ResidualFloor:    0.08,
		Seed:             seed + 1,
	}
	costModel := designflow.DefaultIterationCostModel()

	tbl := report.NewTable("X-4 — regularity → prediction → iterations → design cost",
		"style", "s_d", "regularity", "σ_pred", "iterations", "C_DE ($)")
	var rows []RegularityRow
	for _, st := range styles {
		l, err := st.gen()
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: X-4 %s: %w", st.name, err)
		}
		sd, err := l.Sd()
		if err != nil {
			return nil, nil, err
		}
		rep, err := regularity.BestPitch(l, []int{30, 60, 120})
		if err != nil {
			return nil, nil, err
		}
		sigma, err := errModel.Error(rep.Regularity)
		if err != nil {
			return nil, nil, err
		}
		iters, cost, err := designflow.RegularityDesignCost(10e6, sigma, closure, costModel, 300)
		if err != nil {
			return nil, nil, err
		}
		row := RegularityRow{
			Style: st.name, MeasuredSd: sd,
			Regularity: rep.Regularity, Sigma: sigma,
			Iterations: iters, DesignCost: cost,
		}
		rows = append(rows, row)
		tbl.AddRow(row.Style, row.MeasuredSd, row.Regularity, row.Sigma, row.Iterations, row.DesignCost)
	}
	return rows, tbl, nil
}
