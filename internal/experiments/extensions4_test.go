package experiments

import "testing"

func TestSoCStudyTableA1Pattern(t *testing.T) {
	res, tbl, err := SoCStudy(300, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
	// Memory at the SRAM bound.
	if res.SdMem < 28 || res.SdMem > 35 {
		t.Fatalf("memory s_d = %v, want ≈30", res.SdMem)
	}
	// Logic several times sparser.
	if res.SdLogic < 2*res.SdMem {
		t.Fatalf("logic s_d %v not well above memory %v", res.SdLogic, res.SdMem)
	}
	// Blended chip density above the memory's but inflated past a pure
	// area-weighted blend by the floorplan overhead.
	if res.SdChip <= res.SdMem {
		t.Fatalf("chip s_d %v not above memory %v", res.SdChip, res.SdMem)
	}
	if res.OverheadFraction <= 0 || res.OverheadFraction > 0.5 {
		t.Fatalf("overhead = %v", res.OverheadFraction)
	}
	if res.MemShare <= 0 || res.MemShare >= 1 {
		t.Fatalf("memory share = %v", res.MemShare)
	}
	if _, _, err := SoCStudy(0, 1); err == nil {
		t.Fatal("accepted zero cells")
	}
}

func TestRepairStudyEconomics(t *testing.T) {
	lambdas := []float64{0.5, 1.5, 3}
	rows, tbl, err := RepairStudy(lambdas, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.RepairedYield < 0.85 {
			t.Errorf("λ=%v: repaired yield %v below target region", r.Lambda, r.RepairedYield)
		}
		if r.RawYield >= r.RepairedYield {
			t.Errorf("λ=%v: repair did not help", r.Lambda)
		}
		// Dirtier regimes need more spares.
		if i > 0 && r.Spares <= rows[i-1].Spares {
			t.Errorf("spares not growing with λ: %d after %d", r.Spares, rows[i-1].Spares)
		}
		// At percent-level spare overhead, repair always pays for λ ≥ 0.5.
		if r.CostMultiplier >= 1 {
			t.Errorf("λ=%v: cost multiplier %v, repair should pay", r.Lambda, r.CostMultiplier)
		}
	}
	// The headline: at λ=3 the raw structure is hopeless (<10%) and the
	// repaired one ships.
	last := rows[len(rows)-1]
	if last.RawYield > 0.1 {
		t.Fatalf("λ=3 raw yield %v, want < 0.1", last.RawYield)
	}
	if last.RepairedYield < 0.88 {
		t.Fatalf("λ=3 repaired yield %v, want ≈0.9", last.RepairedYield)
	}
	if _, _, err := RepairStudy(nil, 0.01); err == nil {
		t.Fatal("accepted empty lambdas")
	}
	if _, _, err := RepairStudy(lambdas, -1); err == nil {
		t.Fatal("accepted negative spare area")
	}
}
