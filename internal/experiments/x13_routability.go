package experiments

import (
	"fmt"

	"repro/internal/designflow"
	"repro/internal/report"
)

// RoutabilityRow is one fanout point of the X-13 study.
type RoutabilityRow struct {
	AvgFanout     float64
	PeakDemand    float64
	AreaInflation float64
	SdWithRouting float64
}

// RoutabilityStudy runs X-13, the quantitative check of §2.2.2's claim
// that the observed two-fold-plus s_d increases cannot be explained by
// interconnect alone: netlists of growing connectivity are placed for
// real, their peak routing demand measured, and the resulting area
// inflation applied to an intrinsic cell s_d. Even aggressive fanout
// growth inflates s_d far less than the Table A1 trend.
func RoutabilityStudy(fanouts []float64, gates int, tracksPerCell, intrinsicSd float64, seed uint64) ([]RoutabilityRow, *report.Table, error) {
	if len(fanouts) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-13 needs at least one fanout")
	}
	if gates < 16 {
		return nil, nil, fmt.Errorf("experiments: X-13 needs at least 16 gates, got %d", gates)
	}
	tbl := report.NewTable("X-13 — routing-driven decompression vs connectivity",
		"avg fanout", "peak demand", "area inflation", "s_d with routing")
	var rows []RoutabilityRow
	for i, f := range fanouts {
		n, err := designflow.GenerateNetlist(designflow.NetlistConfig{
			Gates: gates, AvgFanout: f, Locality: 0.6, Seed: seed + uint64(i),
		})
		if err != nil {
			return nil, nil, err
		}
		p, err := designflow.InitialPlacement(n, seed+100+uint64(i))
		if err != nil {
			return nil, nil, err
		}
		if _, err := designflow.Anneal(n, p, designflow.AnnealConfig{Moves: 120 * gates, Seed: seed + 200 + uint64(i)}); err != nil {
			return nil, nil, err
		}
		rep, err := designflow.Routability(n, p, tracksPerCell, intrinsicSd)
		if err != nil {
			return nil, nil, err
		}
		row := RoutabilityRow{
			AvgFanout:     f,
			PeakDemand:    rep.PeakDemand,
			AreaInflation: rep.AreaInflation,
			SdWithRouting: rep.SdWithRouting,
		}
		rows = append(rows, row)
		tbl.AddRow(row.AvgFanout, row.PeakDemand, row.AreaInflation, row.SdWithRouting)
	}
	return rows, tbl, nil
}
