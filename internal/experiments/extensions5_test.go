package experiments

import "testing"

func TestFamilyStudyAmortization(t *testing.T) {
	rows, fig, err := FamilyStudy(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// K=1: identical costs (no sharing yet).
	if rows[0].RegularPerTx != rows[0].IrregularPerTx {
		t.Fatalf("K=1 costs differ: %v vs %v", rows[0].RegularPerTx, rows[0].IrregularPerTx)
	}
	for i, r := range rows {
		if i == 0 {
			continue
		}
		// Regular library amortizes faster at every size...
		if r.RegularPerTx >= r.IrregularPerTx {
			t.Fatalf("K=%d: regular %v not below irregular %v", r.Products, r.RegularPerTx, r.IrregularPerTx)
		}
		// ...and both fall monotonically with family size.
		if r.RegularPerTx >= rows[i-1].RegularPerTx || r.IrregularPerTx >= rows[i-1].IrregularPerTx {
			t.Fatalf("K=%d: cost not falling", r.Products)
		}
		if r.RegularMult <= rows[i-1].RegularMult {
			t.Fatalf("K=%d: effective volume multiplier not growing", r.Products)
		}
	}
	// The paper's "effective volume" grows severalfold for the regular
	// family by K=8.
	if last := rows[len(rows)-1]; last.RegularMult < 2 {
		t.Fatalf("K=8 effective-volume multiplier = %v, want ≥ 2", last.RegularMult)
	}
	if _, _, err := FamilyStudy(0); err == nil {
		t.Fatal("accepted zero products")
	}
}

func TestTestEconomicsStudy(t *testing.T) {
	yields := []float64{0.9, 0.7, 0.5, 0.3}
	rows, tbl, err := TestEconomicsStudy(yields, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.OptimalCoverage <= 0 || r.OptimalCoverage >= 1 {
			t.Fatalf("Y=%v: coverage %v", r.Yield, r.OptimalCoverage)
		}
		// The optimum never loses to the fixed policy.
		if r.CostAtOptimum > r.NaiveCost+1e-9 {
			t.Fatalf("Y=%v: optimum %v above fixed-95%% %v", r.Yield, r.CostAtOptimum, r.NaiveCost)
		}
		// Lower yield makes every shipped part dearer: both the tester
		// time charged to good die and the escape exposure rise. (The
		// optimal *coverage* itself is nearly flat — the two effects pull
		// it in opposite directions — so it is deliberately not asserted
		// monotone.)
		if i > 0 && r.CostAtOptimum <= rows[i-1].CostAtOptimum {
			t.Fatalf("per-part cost not rising as yield falls: %v after %v", r.CostAtOptimum, rows[i-1].CostAtOptimum)
		}
	}
	if _, _, err := TestEconomicsStudy(nil, 50); err == nil {
		t.Fatal("accepted empty yields")
	}
	if _, _, err := TestEconomicsStudy(yields, 0); err == nil {
		t.Fatal("accepted zero escape cost")
	}
}
