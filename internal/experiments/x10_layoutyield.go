package experiments

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/yield"
)

// LayoutYieldRow is one design style of the X-10 study: the analytic
// critical-area yield prediction against the geometric Monte Carlo.
type LayoutYieldRow struct {
	Style          string
	Sd             float64
	CriticalFrac   float64 // fatal area / die area at the mean defect rate
	AnalyticYield  float64 // Poisson over size-averaged critical area
	MeasuredYield  float64 // geometric Monte Carlo
	MeasuredStderr float64
}

// LayoutYieldStudy runs X-10, the full DfM chain §3.1 calls for:
// generated layouts → size-resolved critical area → averaged over the
// 1/x³ defect size distribution → analytic Poisson yield — validated by a
// geometric Monte Carlo that throws sized defects at the same geometry.
// Denser styles expose more critical area per cm² and yield worse at
// equal defect counts. The pairwise critical-area sum double-counts
// overlapping critical strips in dense geometry, so the analytic yield is
// a conservative (lower) bound on the measurement — tight for sparse
// layouts, pessimistic for packed arrays — the standard property of the
// parallel-edge approximation.
func LayoutYieldStudy(meanDefects float64, trials int, seed uint64) ([]LayoutYieldRow, *report.Table, error) {
	if meanDefects < 0 {
		return nil, nil, fmt.Errorf("experiments: X-10 defect rate must be non-negative, got %v", meanDefects)
	}
	if trials <= 0 {
		return nil, nil, fmt.Errorf("experiments: X-10 trials must be positive, got %d", trials)
	}
	type style struct {
		name string
		gen  func() (*layout.Layout, error)
	}
	styles := []style{
		{"sram-array", func() (*layout.Layout, error) { return layout.GenerateSRAMArray(16, 16) }},
		{"datapath", func() (*layout.Layout, error) { return layout.GenerateDatapath(16, 5, 12) }},
		{"asic-sparse", func() (*layout.Layout, error) {
			return layout.GenerateRandomLogic(layout.RandomLogicConfig{Cells: 250, RowUtil: 0.45, RouteTracks: 8, Seed: seed})
		}},
	}
	// Defect sizes follow the canonical distribution peaked at 2λ (in
	// layout units λ = 1, so X0 = 2 keeps most defects near-minimum size
	// while the 1/x³ tail reaches multi-track spans).
	dist := yield.DefectSizeDist{X0: 2, P: 3}
	tbl := report.NewTable("X-10 — layout critical-area yield: analytic vs geometric Monte Carlo",
		"style", "s_d", "critical fraction", "analytic Y", "measured Y", "stderr")
	var rows []LayoutYieldRow
	for _, st := range styles {
		l, err := st.gen()
		if err != nil {
			return nil, nil, err
		}
		sd, err := l.Sd()
		if err != nil {
			return nil, nil, err
		}
		// Size-averaged critical fraction on metal1 (shorts + opens),
		// memoized on the layout content hash: the seed-independent styles
		// hit the cache on every row after the first study in a process,
		// and the quadrature inside the fill path samples a single
		// zero-allocation CritEvaluator instead of re-extracting the
		// geometry at every defect size.
		critFrac, err := avgCriticalFraction(l, layout.Metal1, dist, 200)
		if err != nil {
			return nil, nil, err
		}
		analytic := (yield.Poisson{}).Yield(meanDefects * critFrac)
		res, err := layout.SimulateDefects(l, layout.DefectSimConfig{
			Layer:       layout.Metal1,
			MeanDefects: meanDefects,
			SizeSampler: func(r *stats.RNG) float64 { return dist.Sample(r) },
			Trials:      trials,
			Seed:        seed + 13,
		})
		if err != nil {
			return nil, nil, err
		}
		row := LayoutYieldRow{
			Style: st.name, Sd: sd,
			CriticalFrac:  critFrac,
			AnalyticYield: analytic,
			MeasuredYield: res.Yield, MeasuredStderr: res.StdErr,
		}
		rows = append(rows, row)
		tbl.AddRow(row.Style, row.Sd, row.CriticalFrac, row.AnalyticYield, row.MeasuredYield, row.MeasuredStderr)
	}
	return rows, tbl, nil
}
