package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// TestEconRow is one yield regime of the X-22 study.
type TestEconRow struct {
	Yield           float64
	OptimalCoverage float64
	CostAtOptimum   float64 // test + escape $ per shipped part
	DPMAtOptimum    float64
	NaiveCoverage   float64 // the fixed 95% policy
	NaiveCost       float64
}

// TestEconomicsStudy runs X-22, completing the §2.5 cost-of-test thread:
// the Williams–Brown escape model joins the tester-time model, and the
// economically optimal fault coverage emerges from the trade — rising as
// yield falls (more defective parts to catch) and as escapes get pricier.
// A fixed "95% coverage" policy leaves money on the table at both ends.
func TestEconomicsStudy(yields []float64, escapeCost float64) ([]TestEconRow, *report.Table, error) {
	if len(yields) == 0 {
		return nil, nil, fmt.Errorf("experiments: X-22 needs at least one yield")
	}
	if escapeCost <= 0 {
		return nil, nil, fmt.Errorf("experiments: X-22 escape cost must be positive, got %v", escapeCost)
	}
	econ := core.DefaultTestEconomics()
	econ.EscapeCost = escapeCost
	const ntr = 10e6
	tbl := report.NewTable("X-22 — economically optimal fault coverage",
		"yield", "optimal coverage", "$/part at optimum", "DPM at optimum", "$/part at fixed 95%")
	var rows []TestEconRow
	for _, y := range yields {
		cov, cost, err := econ.OptimalCoverage(ntr, y)
		if err != nil {
			return nil, nil, err
		}
		dl, err := core.DefectLevel(y, cov)
		if err != nil {
			return nil, nil, err
		}
		naive, err := econ.CostAt(0.95, ntr, y)
		if err != nil {
			return nil, nil, err
		}
		row := TestEconRow{
			Yield:           y,
			OptimalCoverage: cov,
			CostAtOptimum:   cost,
			DPMAtOptimum:    dl * 1e6,
			NaiveCoverage:   0.95,
			NaiveCost:       naive,
		}
		rows = append(rows, row)
		tbl.AddRow(row.Yield, row.OptimalCoverage, row.CostAtOptimum, row.DPMAtOptimum, row.NaiveCost)
	}
	return rows, tbl, nil
}
