// Package front is nanocostfront: a content-hash-sharding reverse proxy
// over a fixed set of nanocostd replicas. Every request is keyed by a
// hash of its content (method, path, query, body) and routed to the
// replica that owns the key on a consistent-hash ring, so per-replica
// memo caches and job checkpoints shard by content: the same figure
// fetch or job spec always lands on the same warm replica instead of
// warming every cache everywhere.
//
// Health is passive: a replica whose connection fails is benched for a
// cooldown and requests flow to the next ring member; the first
// successful proxy un-benches it. There is no active prober — the
// traffic itself is the health check. Idempotent requests (GET, HEAD,
// DELETE, and the POST model routes, which are pure functions of their
// body — jobs included, being content-addressed) retry on the next ring
// member after a transport failure; a request that has begun streaming
// a response is never retried, so a client sees either one replica's
// bytes or a clean 502, never a splice.
//
// The router's own endpoints: /healthz (router liveness), /readyz
// (ready while at least one replica is unbenched), /frontz (topology:
// replicas and bench state), /metrics (scrape, including the
// front_replica_up per-replica gauge).
package front

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config collects the router's knobs. Replicas is required; everything
// else has a documented default.
type Config struct {
	// Replicas are the backend addresses (host:port). At least one.
	Replicas []string
	// BenchFor is how long a replica stays benched after a transport
	// failure (default 1s). Passive: the next attempt after the cooldown
	// un-benches it on success.
	BenchFor time.Duration
	// ProxyTimeout bounds one backend attempt (default 30s); retries get
	// a fresh budget.
	ProxyTimeout time.Duration
	// MaxBodyBytes caps request body size (default 1 MiB); larger bodies
	// receive 413 without touching a backend.
	MaxBodyBytes int64
	// Logger receives structured proxy and lifecycle logs (default
	// slog.Default()).
	Logger *slog.Logger
	// Transport overrides the backend RoundTripper (tests inject
	// failures); nil uses a dedicated http.Transport.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.BenchFor <= 0 {
		c.BenchFor = time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return c
}

// replicaState is the passive health record of one backend.
type replicaState struct {
	addr         string
	benchedUntil atomic.Int64 // unix nanos; 0 = healthy
}

// Router is the nanocostfront proxy. Construct with New; drive with
// ListenAndServe/Serve or mount Handler on a test server.
type Router struct {
	cfg      Config
	log      *slog.Logger
	ring     *ring
	replicas map[string]*replicaState
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the observe middleware
	tracer   *obs.Tracer
	addr     atomic.Value // string: bound listen address

	reg            *obs.Registry
	requestsTotal  *obs.CounterVec // by replica and status code (or "transport_error")
	retriesTotal   *obs.Counter
	jobChasesTotal *obs.Counter
	benchedTotal   *obs.CounterVec // by replica
	replicaUp      *obs.GaugeVec   // 1 = unbenched, sampled on change
	proxySeconds   *obs.Histogram
	spanSeconds    *obs.HistogramVec

	// fleet is the /fleetz scrape state: previous totals so successive
	// pulls can report a fleet-wide request rate.
	fleet fleetState
}

// New builds a Router over cfg.Replicas.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("front: at least one replica is required")
	}
	rt := &Router{
		cfg:      cfg,
		log:      cfg.Logger,
		ring:     newRing(cfg.Replicas),
		replicas: map[string]*replicaState{},
		mux:      http.NewServeMux(),
		reg:      obs.NewRegistry(),
	}
	for _, addr := range rt.ring.replicas {
		if _, dup := rt.replicas[addr]; dup {
			return nil, fmt.Errorf("front: duplicate replica %s", addr)
		}
		rt.replicas[addr] = &replicaState{addr: addr}
	}
	rt.requestsTotal = rt.reg.NewCounterVec("front_requests_total",
		"Requests proxied, by replica and status code; transport failures count under code=\"transport_error\".", "replica", "code")
	rt.retriesTotal = rt.reg.NewCounter("front_retries_total",
		"Idempotent requests retried on the next ring member after a transport failure.")
	rt.jobChasesTotal = rt.reg.NewCounter("front_job_chases_total",
		"Job sub-resource requests chased to the next ring member after a 404 (submits shard by body, sub-resources by job id).")
	rt.benchedTotal = rt.reg.NewCounterVec("front_benched_total",
		"Times each replica was benched by a transport failure.", "replica")
	rt.replicaUp = rt.reg.NewGaugeVec("front_replica_up",
		"Per-replica passive health: 1 unbenched, 0 benched.", "replica")
	rt.proxySeconds = rt.reg.NewHistogramOn("front_proxy_seconds",
		"End-to-end proxy latency, successful attempt only.", obs.DurationBuckets)
	rt.spanSeconds = rt.reg.NewHistogramVec("front_span_seconds",
		"Trace span durations by stage.", obs.DurationBuckets, "stage")
	rt.tracer = obs.NewTracer(traceRingCapacity, rt.spanSeconds)
	rt.tracer.RegisterMetrics(rt.reg)
	rt.reg.RegisterGoRuntime()
	for _, addr := range rt.ring.replicas {
		rt.replicaUp.With(addr).Set(1)
	}

	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /frontz", rt.handleFrontz)
	rt.mux.HandleFunc("GET /fleetz", rt.handleFleetz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /debug/trace/{id}", rt.handleTraceFederated)
	rt.mux.HandleFunc("/", rt.proxy)
	rt.handler = rt.observe(rt.mux)
	return rt, nil
}

// Handler returns the router's root handler (the mux wrapped in the
// observe middleware), for httptest mounting.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Addr returns the bound listen address once Serve has started, or "".
func (rt *Router) Addr() string {
	if v := rt.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ListenAndServe listens on addr and serves until ctx is cancelled.
func (rt *Router) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("front: listen %s: %w", addr, err)
	}
	return rt.Serve(ctx, ln)
}

// Serve serves on ln until ctx is cancelled, then drains briefly. The
// log line carries the bound address the way nanocostd's does, so
// scripts discover ephemeral ports by parsing it.
func (rt *Router) Serve(ctx context.Context, ln net.Listener) error {
	rt.addr.Store(ln.Addr().String())
	rt.log.Info("nanocostfront listening",
		"addr", ln.Addr().String(),
		"replicas", strings.Join(rt.ring.replicas, ","))
	srv := &http.Server{Handler: rt.handler, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return fmt.Errorf("front: %w", err)
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	<-done
	if err != nil {
		return fmt.Errorf("front: shutdown: %w", err)
	}
	rt.log.Info("nanocostfront stopped")
	return nil
}

// benched reports whether addr is inside its cooldown window.
func (rt *Router) benched(addr string) bool {
	until := rt.replicas[addr].benchedUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// bench starts addr's cooldown after a transport failure.
func (rt *Router) bench(addr string) {
	rt.replicas[addr].benchedUntil.Store(time.Now().Add(rt.cfg.BenchFor).UnixNano())
	rt.benchedTotal.With(addr).Inc()
	rt.replicaUp.With(addr).Set(0)
	rt.log.Warn("replica benched", "replica", addr, "for", rt.cfg.BenchFor.String())
}

// unbench clears addr's cooldown after a successful proxy.
func (rt *Router) unbench(addr string) {
	if rt.replicas[addr].benchedUntil.Swap(0) != 0 {
		rt.replicaUp.With(addr).Set(1)
		rt.log.Info("replica recovered", "replica", addr)
	}
}

// idempotentPOSTRoutes are the POST routes safe to retry on another
// replica: each is a pure function of its body. /v1/jobs qualifies
// because job identity is the canonical content hash of the spec — a
// duplicate submit attaches to the existing job, it does not fork one.
var idempotentPOSTRoutes = map[string]bool{
	"/v1/cost":        true,
	"/v1/designcost":  true,
	"/v1/generalized": true,
	"/v1/sweep":       true,
	"/v1/batch":       true,
	"/v1/jobs":        true,
}

// jobSubResourceID extracts the id segment from /v1/jobs/{id}[/...]
// paths, in escaped form so an encoded slash in the path can never
// smuggle extra segments into the id. Returns "" for everything else,
// including the collection itself and the /v1/jobs/open listing (which
// is a daemon-local view, not a job).
func jobSubResourceID(escapedPath string) string {
	rest, ok := strings.CutPrefix(escapedPath, "/v1/jobs/")
	if !ok {
		return ""
	}
	id, _, _ := strings.Cut(rest, "/")
	if id == "open" {
		return ""
	}
	return id
}

// idempotent reports whether a request may be retried on the next ring
// member after a transport failure. Takes the escaped path, matching
// what requestKey hashes and attempt forwards.
func idempotent(method, escapedPath string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodDelete:
		return true
	case http.MethodPost:
		if idempotentPOSTRoutes[escapedPath] {
			return true
		}
		// The distributed-job control routes are retry-safe by protocol
		// design: leases expire on their own and duplicate partial
		// uploads are refused idempotently, so a lost response costs at
		// most one lease TTL.
		if jobSubResourceID(escapedPath) != "" {
			return strings.HasSuffix(escapedPath, "/lease") || strings.HasSuffix(escapedPath, "/partials")
		}
	}
	return false
}

// requestKey is the content hash that shards requests across replicas:
// same method+path+query+body, same replica (and so the same warm memo
// cache and the same job checkpoint directory). The path is hashed in
// escaped form — decoding would collapse /v1/figures/1%2F2 and
// /v1/figures/1/2 onto one key even though backends distinguish them.
// Job sub-resources key by the job id alone, so every status poll,
// result fetch, lease, and partial upload for one job prefers the same
// replica: the one coordinating it.
func requestKey(r *http.Request, body []byte) uint64 {
	path := r.URL.EscapedPath()
	if id := jobSubResourceID(path); id != "" {
		return hash64(append([]byte("job\n"), id...))
	}
	var b []byte
	b = append(b, r.Method...)
	b = append(b, '\n')
	b = append(b, path...)
	b = append(b, '\n')
	b = append(b, r.URL.RawQuery...)
	b = append(b, '\n')
	b = append(b, body...)
	return hash64(b)
}

// attemptOrder is the ring's preference order for key with benched
// replicas moved to the back — never dropped: if everything is benched,
// trying is still better than refusing. The ring's own order is a pure
// function of the key, so benching never reshuffles the healthy
// replicas' relative preference.
func (rt *Router) attemptOrder(key uint64) []string {
	pref := rt.ring.order(key)
	order := make([]string, 0, len(pref))
	var cold []string
	for _, addr := range pref {
		if rt.benched(addr) {
			cold = append(cold, addr)
		} else {
			order = append(order, addr)
		}
	}
	return append(order, cold...)
}

// hopHeaders are the hop-by-hop headers stripped in both directions.
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// proxy is the catch-all: pick the preference order for the request's
// content key, move benched replicas to the back (never drop them — if
// everything is benched, trying is still better than failing), and
// attempt in order until a replica answers.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", rt.cfg.MaxBodyBytes))
			return
		}
		writeJSONError(w, http.StatusBadRequest, "body_read_failed", err.Error())
		return
	}

	order := rt.attemptOrder(requestKey(r, body))
	escPath := r.URL.EscapedPath()
	canRetry := idempotent(r.Method, escPath)
	// Job submits shard by body but sub-resources shard by job id, so
	// the first ring member may not be the replica tracking the job: a
	// 404 there is a routing miss, not an answer, and idempotent job
	// requests chase it along the ring until a replica knows the id.
	chaseJob := canRetry && jobSubResourceID(escPath) != ""
	start := time.Now()
	var lastErr error
	for i, addr := range order {
		// Each attempt gets its own child span under the request's root,
		// so retries and 404-chases appear as sibling hops. The attempt
		// span's ID travels in X-Parent-Span-Id, parenting the replica's
		// serve.request root under this exact hop in the federated tree.
		actx, aspan := obs.StartSpan(r.Context(), "front.attempt")
		aspan.SetAttr("replica", addr)
		aspan.SetAttr("attempt", strconv.Itoa(i+1))
		resp, err := rt.attempt(actx, r, addr, body)
		if err != nil {
			// Transport failure: no response existed, so nothing was
			// written to the client and retrying cannot splice payloads.
			aspan.SetAttr("error", err.Error())
			aspan.End()
			rt.requestsTotal.With(addr, "transport_error").Inc()
			rt.bench(addr)
			lastErr = err
			rt.log.Warn("proxy attempt failed", "replica", addr,
				"method", r.Method, "path", escPath, "error", err.Error())
			if canRetry {
				rt.retriesTotal.Inc()
				continue
			}
			break
		}
		rt.unbench(addr)
		aspan.SetAttr("status", strconv.Itoa(resp.StatusCode))
		if chaseJob && resp.StatusCode == http.StatusNotFound && i < len(order)-1 {
			aspan.SetAttr("chase", "routing_miss")
			aspan.End()
			rt.requestsTotal.With(addr, strconv.Itoa(resp.StatusCode)).Inc()
			resp.Body.Close()
			rt.jobChasesTotal.Inc()
			continue
		}
		aspan.End()
		rt.relay(w, resp, addr)
		rt.proxySeconds.Observe(time.Since(start).Seconds())
		return
	}
	if lastErr == nil {
		lastErr = errors.New("no replicas configured")
	}
	writeJSONError(w, http.StatusBadGateway, "no_replica_available", lastErr.Error())
}

// attempt proxies the request to one replica and returns its response,
// or the transport error if no response exists. ctx carries the attempt
// span (when the request is traced), whose IDs are forwarded so the
// replica records its spans under the same trace.
func (rt *Router) attempt(ctx context.Context, r *http.Request, addr string, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProxyTimeout)
	// Forward the escaped path verbatim: rebuilding the URL from the
	// decoded Path would turn /v1/figures/1%2F2 into /v1/figures/1/2 and
	// route the backend to a different resource than the client named.
	url := "http://" + addr + r.URL.EscapedPath()
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header = r.Header.Clone()
	for _, h := range hopHeaders {
		req.Header.Del(h)
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		req.Header.Set("X-Trace-Id", sp.TraceID())
		req.Header.Set("X-Parent-Span-Id", sp.SpanID())
	}
	resp, err := rt.cfg.Transport.RoundTrip(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The cancel travels with the body: relay closes it when done.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelOnClose releases the attempt's context when the response body
// is closed, so the timeout does not fire mid-relay nor leak.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// relay copies one backend response to the client verbatim, adding
// X-Backend so tests and operators can see the routing decision.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, addr string) {
	defer resp.Body.Close()
	hdr := w.Header()
	for k, vs := range resp.Header {
		// The identity headers were already set by the observe middleware;
		// the replica echoes the forwarded values back, so replace rather
		// than append — a doubled X-Request-Id would un-join the two
		// processes' log lines.
		if k == "X-Request-Id" || k == "X-Trace-Id" {
			hdr.Set(k, vs[len(vs)-1])
			continue
		}
		for _, v := range vs {
			hdr.Add(k, v)
		}
	}
	for _, h := range hopHeaders {
		hdr.Del(h)
	}
	hdr.Set("X-Backend", addr)
	w.WriteHeader(resp.StatusCode)
	n, err := io.Copy(w, resp.Body)
	rt.requestsTotal.With(addr, strconv.Itoa(resp.StatusCode)).Inc()
	if err != nil {
		// Mid-stream backend failure after bytes flowed: truncation is
		// the honest outcome; never splice another replica's bytes in.
		rt.log.Warn("relay truncated", "replica", addr, "bytes", n, "error", err.Error())
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSONBody(w, http.StatusOK, `{"status":"ok"}`)
}

// handleReadyz: the router is ready while at least one replica is
// unbenched. With every replica benched it answers 503 — new traffic
// would only queue behind a dead backend set.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, addr := range rt.ring.replicas {
		if !rt.benched(addr) {
			writeJSONBody(w, http.StatusOK, `{"status":"ready"}`)
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	writeJSONBody(w, http.StatusServiceUnavailable, `{"status":"all replicas benched"}`)
}

// handleFrontz reports the routing topology: every replica with its
// bench state, plus the ring's vnode count, as one JSON object.
func (rt *Router) handleFrontz(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString(`{"vnodes_per_replica":`)
	b.WriteString(strconv.Itoa(vnodesPerReplica))
	b.WriteString(`,"replicas":[`)
	for i, addr := range rt.ring.replicas {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"addr":%q,"benched":%v}`, addr, rt.benched(addr))
	}
	b.WriteString("]}")
	writeJSONBody(w, http.StatusOK, b.String())
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.Render(w)
}

func writeJSONBody(w http.ResponseWriter, status int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	io.WriteString(w, body+"\n")
}

func writeJSONError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":{"code":%q,"message":%q}}`+"\n", code, msg)
}
