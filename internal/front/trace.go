package front

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/obs"
)

// This file is trace federation: GET /debug/trace/{id} on the router
// merges the router's own span set for a trace with every replica's,
// rebuilding one cross-process tree. The router's per-attempt spans
// carry their IDs to the replicas in X-Parent-Span-Id, so a replica's
// serve.request root names a front.attempt span as its parent and the
// merged BuildTree attaches the replica subtree under the exact hop
// that produced it. A replica that cannot be reached degrades the
// answer to a partial tree with its failure annotated — never an error:
// a half tree during an incident is exactly when tracing matters most.

// replicaTraceInfo summarizes one replica's contribution to a federated
// trace: how many spans it supplied, or why it supplied none.
type replicaTraceInfo struct {
	Spans int    `json:"spans"`
	Error string `json:"error,omitempty"`
}

// federatedTraceResponse is the GET /debug/trace/{id} payload: the
// merged cross-process span tree plus the per-replica fetch accounting.
// Partial is set when at least one replica could not be scraped.
type federatedTraceResponse struct {
	TraceID      string                      `json:"trace_id"`
	DroppedSpans int                         `json:"dropped_spans,omitempty"`
	Partial      bool                        `json:"partial,omitempty"`
	FrontSpans   int                         `json:"front_spans"`
	Replicas     map[string]replicaTraceInfo `json:"replicas"`
	Spans        []*obs.SpanTree             `json:"spans"`
}

// remoteTrace mirrors nanocostd's /debug/trace/{id} response shape.
type remoteTrace struct {
	TraceID      string          `json:"trace_id"`
	DroppedSpans int             `json:"dropped_spans"`
	Spans        []*obs.SpanTree `json:"spans"`
}

// fetchReplicaTrace pulls one replica's span set for id. A 404 means
// the replica simply has no record of the trace — zero spans, no error.
func (rt *Router) fetchReplicaTrace(ctx context.Context, addr, id string) ([]obs.SpanRecord, int, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/debug/trace/"+id, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := rt.cfg.Transport.RoundTrip(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var remote remoteTrace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&remote); err != nil {
		return nil, 0, fmt.Errorf("decode: %v", err)
	}
	return obs.FlattenTrees(remote.Spans), remote.DroppedSpans, nil
}

// handleTraceFederated merges the router's local record of a trace with
// every replica's and answers with one cross-process span tree. Remote
// failures never fail the request: the affected replica is annotated
// and the tree is served partial.
func (rt *Router) handleTraceFederated(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id := obs.SanitizeID(raw)
	if id == "" {
		writeJSONError(w, http.StatusNotFound, "trace_not_found",
			fmt.Sprintf("invalid trace id %q", raw))
		return
	}

	resp := federatedTraceResponse{
		TraceID:  id,
		Replicas: make(map[string]replicaTraceInfo, len(rt.ring.replicas)),
	}
	var spans []obs.SpanRecord
	if local, ok := rt.tracer.Lookup(id); ok {
		spans = append(spans, local.Spans...)
		resp.DroppedSpans += local.DroppedSpans
		resp.FrontSpans = len(local.Spans)
	}

	type fetched struct {
		addr    string
		spans   []obs.SpanRecord
		dropped int
		err     error
	}
	results := make([]fetched, len(rt.ring.replicas))
	var wg sync.WaitGroup
	for i, addr := range rt.ring.replicas {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			rs, dropped, err := rt.fetchReplicaTrace(r.Context(), addr, id)
			results[i] = fetched{addr: addr, spans: rs, dropped: dropped, err: err}
		}(i, addr)
	}
	wg.Wait()

	for _, res := range results {
		info := replicaTraceInfo{Spans: len(res.spans)}
		if res.err != nil {
			info.Error = res.err.Error()
			resp.Partial = true
		}
		resp.Replicas[res.addr] = info
		spans = append(spans, res.spans...)
		resp.DroppedSpans += res.dropped
	}

	if len(spans) == 0 && !resp.Partial {
		writeJSONError(w, http.StatusNotFound, "trace_not_found",
			fmt.Sprintf("no process in the fleet has a record of trace %q", id))
		return
	}
	resp.Spans = obs.BuildTree(spans)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.Encode(resp)
}
