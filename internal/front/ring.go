// Consistent-hash ring. The router keys every request by a content hash
// (the same content-addressing idea the memo and job layers use) and
// walks the ring to pick a replica, so each replica's memo caches and
// job checkpoints shard by content instead of smearing every key across
// every replica. Virtual nodes smooth the split; the preference walk
// yields every replica exactly once, giving retry a deterministic
// second choice when the first is down.

package front

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// vnodesPerReplica is how many points each replica contributes to the
// ring. 64 keeps the worst-case load split within a few percent of even
// for small replica sets while the ring stays tiny (a two-replica ring
// is 128 points).
const vnodesPerReplica = 64

// ringPoint is one virtual node: a hash position owned by a replica.
type ringPoint struct {
	hash    uint64
	replica int // index into ring.replicas
}

// ring is an immutable consistent-hash ring over a fixed replica set.
// Build once with newRing; reads need no locking.
type ring struct {
	replicas []string
	points   []ringPoint
}

// hash64 collapses a byte string to a ring position through sha256 —
// overkill for speed, exactly right for even spread and zero tuning.
func hash64(b []byte) uint64 {
	sum := sha256.Sum256(b)
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring for the given replica addresses. Order of the
// input does not matter: points depend only on the address strings, so
// every router over the same replica set routes identically.
func newRing(replicas []string) *ring {
	r := &ring{
		replicas: append([]string(nil), replicas...),
		points:   make([]ringPoint, 0, len(replicas)*vnodesPerReplica),
	}
	sort.Strings(r.replicas)
	for i, addr := range r.replicas {
		for v := 0; v < vnodesPerReplica; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Appendf(nil, "%s#%d", addr, v)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// order returns every replica exactly once, in preference order for
// key: the owner of key's successor point first, then each further
// replica in the order the walk first meets it. The result is a fresh
// slice the caller may reorder (the router moves benched replicas to
// the back).
func (r *ring) order(key uint64) []string {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, len(r.replicas))
	seen := make([]bool, len(r.replicas))
	for i := 0; len(out) < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}
