package front

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// viaHeaders sends one request through the router's handler with extra
// request headers.
func viaHeaders(t *testing.T, rt *Router, method, target, body string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Result().Header, rec.Body.Bytes()
}

// findSpans walks a span forest collecting every node with the name.
func findSpans(trees []*obs.SpanTree, name string) []*obs.SpanTree {
	var out []*obs.SpanTree
	var walk func(n *obs.SpanTree)
	walk = func(n *obs.SpanTree) {
		if n.Name == name {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range trees {
		walk(n)
	}
	return out
}

// TestFederatedTraceEndToEnd is the acceptance round: one request traced
// through the front to a replica yields, at the front's
// /debug/trace/{id}, a single tree containing both processes' spans with
// the replica's serve.request parented under the front's attempt span.
func TestFederatedTraceEndToEnd(t *testing.T) {
	s := serve.NewServer(serve.Config{Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	rt := newTestRouter(t, Config{Replicas: []string{hostPort(ts)}})
	const tid = "e2e-front-trace-1"
	code, hdr, _ := viaHeaders(t, rt, "POST", "/v1/cost", `{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":1500}`,
		map[string]string{"X-Trace-Id": tid})
	if code != http.StatusOK {
		t.Fatalf("proxied request = %d", code)
	}
	if got := hdr.Get("X-Trace-Id"); got != tid {
		t.Fatalf("response X-Trace-Id = %q, want %q", got, tid)
	}

	fcode, _, raw := via(t, rt, "GET", "/debug/trace/"+tid, "")
	if fcode != http.StatusOK {
		t.Fatalf("federated trace = %d: %s", fcode, raw)
	}
	var fed federatedTraceResponse
	if err := json.Unmarshal(raw, &fed); err != nil {
		t.Fatalf("decode federated trace: %v\n%s", err, raw)
	}
	if len(fed.Spans) != 1 || fed.Spans[0].Name != "front.request" {
		t.Fatalf("federated forest roots = %+v, want exactly one front.request", fed.Spans)
	}
	if fed.Partial {
		t.Fatalf("trace reported partial with all replicas up: %+v", fed.Replicas)
	}
	attempts := findSpans(fed.Spans, "front.attempt")
	if len(attempts) != 1 {
		t.Fatalf("front.attempt spans = %d, want 1", len(attempts))
	}
	serveReqs := findSpans(attempts[0].Children, "serve.request")
	if len(serveReqs) != 1 {
		t.Fatalf("serve.request under front.attempt = %d, want 1 (children: %+v)",
			len(serveReqs), attempts[0].Children)
	}
	if serveReqs[0].ParentID != attempts[0].SpanID {
		t.Fatalf("serve.request parent = %q, want attempt span %q",
			serveReqs[0].ParentID, attempts[0].SpanID)
	}
	// The replica's own child stages rode along in the merge.
	if len(serveReqs[0].Children) == 0 {
		t.Fatal("replica's serve.request has no child spans in the federated tree")
	}
	info := fed.Replicas[hostPort(ts)]
	if info.Spans == 0 || info.Error != "" {
		t.Fatalf("replica accounting = %+v", info)
	}
	if fed.FrontSpans == 0 {
		t.Fatal("front contributed no spans")
	}
}

// TestRetryKeepsTraceAcrossAttempts: a transport failure on the first
// replica retries under the SAME trace id, recording each hop as its own
// front.attempt span — one failed, one succeeded, both siblings under
// the single front.request root.
func TestRetryKeepsTraceAcrossAttempts(t *testing.T) {
	dead := echoBackend("dead")
	deadAddr := hostPort(dead)
	dead.Close() // keep the address, kill the listener
	live := echoBackend("live")
	defer live.Close()

	rt := newTestRouter(t, Config{Replicas: []string{deadAddr, hostPort(live)}})
	body := bodyKeyedTo(t, rt, "POST", "/v1/cost", deadAddr)
	const tid = "retry-trace-1"
	code, hdr, _ := viaHeaders(t, rt, "POST", "/v1/cost", body, map[string]string{"X-Trace-Id": tid})
	if code != http.StatusOK {
		t.Fatalf("retried request = %d", code)
	}
	if hdr.Get("X-Backend") != hostPort(live) {
		t.Fatalf("served by %q, want the live replica", hdr.Get("X-Backend"))
	}

	tr, ok := rt.tracer.Lookup(tid)
	if !ok {
		t.Fatalf("no front trace %q recorded", tid)
	}
	tree := tr.Tree()
	if len(tree) != 1 || tree[0].Name != "front.request" {
		t.Fatalf("trace roots = %+v, want one front.request", tree)
	}
	attempts := findSpans(tree, "front.attempt")
	if len(attempts) != 2 {
		t.Fatalf("front.attempt spans = %d, want 2 (one per hop)", len(attempts))
	}
	for _, a := range attempts {
		if a.ParentID != tree[0].SpanID {
			t.Fatalf("attempt %s parents to %q, not the root: hops must be siblings", a.SpanID, a.ParentID)
		}
	}
	var failed, served bool
	for _, a := range attempts {
		switch a.Attrs["replica"] {
		case deadAddr:
			if a.Attrs["error"] == "" {
				t.Fatalf("dead-replica attempt has no error attr: %+v", a.Attrs)
			}
			failed = true
		case hostPort(live):
			if a.Attrs["status"] != "200" {
				t.Fatalf("live-replica attempt status attr = %q", a.Attrs["status"])
			}
			served = true
		}
	}
	if !failed || !served {
		t.Fatalf("attempts did not cover both replicas: %+v", attempts)
	}
}

// TestChaseHopsAreSiblingSpans: a 404-chased job request records every
// hop as a sibling front.attempt span, the miss annotated as a chase.
func TestChaseHopsAreSiblingSpans(t *testing.T) {
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"job_not_found"}}`, http.StatusNotFound)
	}))
	defer notFound.Close()
	owner := echoBackend("owner")
	defer owner.Close()

	rt := newTestRouter(t, Config{Replicas: []string{hostPort(notFound), hostPort(owner)}})
	id := jobIDKeyedTo(t, rt, hostPort(notFound))
	const tid = "chase-trace-1"
	code, hdr, _ := viaHeaders(t, rt, "GET", "/v1/jobs/"+id, "", map[string]string{"X-Trace-Id": tid})
	if code != http.StatusOK {
		t.Fatalf("chased request = %d", code)
	}
	if hdr.Get("X-Backend") != hostPort(owner) {
		t.Fatalf("served by %q, want the owning replica", hdr.Get("X-Backend"))
	}

	tr, ok := rt.tracer.Lookup(tid)
	if !ok {
		t.Fatalf("no front trace %q recorded", tid)
	}
	tree := tr.Tree()
	attempts := findSpans(tree, "front.attempt")
	if len(attempts) != 2 {
		t.Fatalf("front.attempt spans = %d, want 2", len(attempts))
	}
	root := tree[0]
	var sawChase bool
	for _, a := range attempts {
		if a.ParentID != root.SpanID {
			t.Fatalf("attempt %s is not a sibling hop under the root", a.SpanID)
		}
		if a.Attrs["chase"] != "" {
			sawChase = true
			if a.Attrs["replica"] != hostPort(notFound) {
				t.Fatalf("chase attr on %q, want the 404 replica", a.Attrs["replica"])
			}
		}
	}
	if !sawChase {
		t.Fatalf("no attempt marked as a chase: %+v", attempts)
	}
}

// TestFederatedTracePartialOnReplicaDown: federation with an unreachable
// replica answers 200 with the reachable spans and the failure annotated
// — a partial tree, never an error.
func TestFederatedTracePartialOnReplicaDown(t *testing.T) {
	s := serve.NewServer(serve.Config{Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	dead := echoBackend("dead")
	deadAddr := hostPort(dead)
	dead.Close()

	rt := newTestRouter(t, Config{Replicas: []string{hostPort(ts), deadAddr}})
	const tid = "partial-trace-1"
	body := bodyKeyedToScenario(t, rt, hostPort(ts))
	if code, _, _ := viaHeaders(t, rt, "POST", "/v1/cost", body, map[string]string{"X-Trace-Id": tid}); code != http.StatusOK {
		t.Fatalf("traced request failed")
	}

	fcode, _, raw := via(t, rt, "GET", "/debug/trace/"+tid, "")
	if fcode != http.StatusOK {
		t.Fatalf("federated trace with a replica down = %d, want 200: %s", fcode, raw)
	}
	var fed federatedTraceResponse
	if err := json.Unmarshal(raw, &fed); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !fed.Partial {
		t.Fatal("response not marked partial with a replica unreachable")
	}
	if fed.Replicas[deadAddr].Error == "" {
		t.Fatalf("dead replica not annotated: %+v", fed.Replicas)
	}
	if len(findSpans(fed.Spans, "front.request")) != 1 {
		t.Fatalf("partial tree lost the front spans: %+v", fed.Spans)
	}
	if fed.Replicas[hostPort(ts)].Error != "" {
		t.Fatalf("live replica wrongly annotated: %+v", fed.Replicas)
	}
}

// lockedBuffer is a concurrency-safe log sink for asserting on both
// processes' access logs.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestRequestIDJoinsFrontAndReplicaLogs is the request-id regression:
// the id minted (or echoed) at the front is forwarded to the replica and
// echoed back on the proxied response, and the SAME id appears in both
// processes' access-log lines — the join key for cross-process debugging.
func TestRequestIDJoinsFrontAndReplicaLogs(t *testing.T) {
	var replicaLog, frontLog lockedBuffer
	s := serve.NewServer(serve.Config{Logger: slog.New(slog.NewTextHandler(&replicaLog, nil))})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	rt := newTestRouter(t, Config{
		Replicas: []string{hostPort(ts)},
		Logger:   slog.New(slog.NewTextHandler(&frontLog, nil)),
	})
	const reqID = "join-req-id-1"
	code, hdr, _ := viaHeaders(t, rt, "POST", "/v1/cost", `{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":1500}`,
		map[string]string{"X-Request-Id": reqID})
	if code != http.StatusOK {
		t.Fatalf("proxied request = %d", code)
	}
	if got := hdr.Values("X-Request-Id"); len(got) != 1 || got[0] != reqID {
		t.Fatalf("response X-Request-Id = %v, want exactly [%q]", got, reqID)
	}

	needle := "request_id=" + reqID
	deadline := time.Now().Add(5 * time.Second)
	for {
		if strings.Contains(frontLog.String(), needle) && strings.Contains(replicaLog.String(), needle) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request id %q not in both logs\nfront:\n%s\nreplica:\n%s",
				reqID, frontLog.String(), replicaLog.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetzRollupMatchesReplicaSum: the /fleetz rollup request count
// equals the sum of the per-replica counters re-exposed on the same
// pull, every re-exposed sample carries a replica label, and a replica
// going down degrades to front_fleet_scrape_ok 0 — not a failed pull.
func TestFleetzRollupMatchesReplicaSum(t *testing.T) {
	newReplica := func() (*httptest.Server, *serve.Server) {
		s := serve.NewServer(serve.Config{Logger: discardLogger()})
		return httptest.NewServer(s.Handler()), s
	}
	tsA, sA := newReplica()
	tsB, sB := newReplica()
	defer tsA.Close()
	defer tsB.Close()
	defer sA.Close()
	defer sB.Close()

	rt := newTestRouter(t, Config{Replicas: []string{hostPort(tsA), hostPort(tsB)}})
	for i := 0; i < 16; i++ {
		if code, _, _ := via(t, rt, "POST", "/v1/cost", fmt.Sprintf(`{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":%d}`, 1000+i)); code != http.StatusOK {
			t.Fatalf("warmup request %d failed", i)
		}
	}

	code, _, raw := via(t, rt, "GET", "/fleetz", "")
	if code != http.StatusOK {
		t.Fatalf("/fleetz = %d", code)
	}
	fams := parseExposition(string(raw))
	byName := map[string]scrapedFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}

	rollup, ok := byName["front_fleet_requests_total"]
	if !ok || len(rollup.samples) != 1 {
		t.Fatalf("front_fleet_requests_total missing or malformed: %+v", rollup)
	}
	perReplica, ok := byName["nanocostd_requests_total"]
	if !ok || len(perReplica.samples) == 0 {
		t.Fatal("per-replica nanocostd_requests_total not re-exposed")
	}
	var sum float64
	replicas := map[string]bool{}
	for _, smp := range perReplica.samples {
		rep, has := labelValue(smp.labels, "replica")
		if !has {
			t.Fatalf("re-exposed sample without replica label: %+v", smp)
		}
		replicas[rep] = true
		sum += smp.value
	}
	if len(replicas) != 2 {
		t.Fatalf("re-exposed counters cover replicas %v, want both", replicas)
	}
	if rollup.samples[0].value != sum {
		t.Fatalf("fleet rollup = %v, sum of per-replica counters = %v", rollup.samples[0].value, sum)
	}
	for _, fam := range []string{"front_fleet_rps", "front_fleet_request_seconds_p99",
		"front_fleet_jobs_in_flight", "front_fleet_replicas_benched", "front_fleet_scrape_ok"} {
		if _, ok := byName[fam]; !ok {
			t.Fatalf("/fleetz missing rollup family %s", fam)
		}
	}
	// The merged latency histogram has data, so p99 is a positive bound.
	if p99 := byName["front_fleet_request_seconds_p99"].samples[0].value; p99 <= 0 {
		t.Fatalf("fleet p99 = %v, want > 0 after traffic", p99)
	}

	// Kill one replica: the pull still answers 200 with the loss visible.
	tsB.Close()
	code, _, raw = via(t, rt, "GET", "/fleetz", "")
	if code != http.StatusOK {
		t.Fatalf("/fleetz with a replica down = %d, want 200", code)
	}
	want := fmt.Sprintf("front_fleet_scrape_ok{%s} 0", obs.Label("replica", hostPort(tsB)))
	if !strings.Contains(string(raw), want) {
		t.Fatalf("scrape failure not reported; missing %q", want)
	}
}

// TestObservabilityRoutesNotTracedOnFront: the router's own endpoints
// never open root spans — only proxied traffic does.
func TestObservabilityRoutesNotTracedOnFront(t *testing.T) {
	a := echoBackend("a")
	defer a.Close()
	rt := newTestRouter(t, Config{Replicas: []string{hostPort(a)}})
	for _, target := range []string{"/healthz", "/readyz", "/frontz", "/metrics", "/debug/trace/none"} {
		via(t, rt, "GET", target, "")
	}
	if got := rt.tracer.Len(); got != 0 {
		t.Fatalf("observability traffic recorded %d traces, want 0", got)
	}
	if code, _, _ := viaHeaders(t, rt, "GET", "/v1/figures/1", "", map[string]string{"X-Trace-Id": "traced-1"}); code != http.StatusOK {
		t.Fatal("proxied request failed")
	}
	if _, ok := rt.tracer.Lookup("traced-1"); !ok {
		t.Fatal("proxied request did not record a trace")
	}
	// A hostile client trace id is replaced, never recorded verbatim.
	viaHeaders(t, rt, "GET", "/v1/figures/2", "", map[string]string{"X-Trace-Id": "bad id\n{}"})
	if _, ok := rt.tracer.Lookup("bad id\n{}"); ok {
		t.Fatal("hostile trace id stored verbatim")
	}
	if got := obs.SanitizeID("bad id\n{}"); got != "" {
		t.Fatalf("SanitizeID accepted a hostile id as %q", got)
	}
}
