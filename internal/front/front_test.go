package front

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestRingOrderIsCompleteAndDeterministic: the preference walk yields
// every replica exactly once, independent of input order, and spreads
// first choices across the set.
func TestRingOrderIsCompleteAndDeterministic(t *testing.T) {
	replicas := []string{"10.0.0.3:1", "10.0.0.1:1", "10.0.0.2:1"}
	a := newRing(replicas)
	b := newRing([]string{"10.0.0.2:1", "10.0.0.3:1", "10.0.0.1:1"})

	first := map[string]int{}
	for key := uint64(0); key < 1000; key++ {
		oa, ob := a.order(key*0x9e3779b97f4a7c15), b.order(key*0x9e3779b97f4a7c15)
		if len(oa) != 3 {
			t.Fatalf("order returned %d replicas, want 3", len(oa))
		}
		seen := map[string]bool{}
		for _, addr := range oa {
			if seen[addr] {
				t.Fatalf("replica %s repeated in %v", addr, oa)
			}
			seen[addr] = true
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("rings over the same set disagree: %v vs %v", oa, ob)
			}
		}
		first[oa[0]]++
	}
	for _, addr := range a.replicas {
		// With 64 vnodes each of 3 replicas should own a healthy share of
		// 1000 keys; 100 is a loose floor that only breaks on real skew.
		if first[addr] < 100 {
			t.Fatalf("replica %s owns only %d/1000 first choices: %v", addr, first[addr], first)
		}
	}
}

// echoBackend answers every request with its own name plus the request
// content, so tests can see both the routing decision and the payload.
func echoBackend(name string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "%s:%s %s %s", name, r.Method, r.URL.RequestURI(), body)
	}))
}

func hostPort(ts *httptest.Server) string {
	u, _ := url.Parse(ts.URL)
	return u.Host
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// via sends one request through the router's handler.
func via(t *testing.T, rt *Router, method, target, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Result().Header, rec.Body.Bytes()
}

// bodyKeyedTo brute-forces a request body whose content key makes addr
// the first choice on rt's ring, so tests can aim traffic.
func bodyKeyedTo(t *testing.T, rt *Router, method, path, addr string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		body := fmt.Sprintf(`{"n":%d}`, i)
		req := httptest.NewRequest(method, path, nil)
		if rt.ring.order(requestKey(req, []byte(body)))[0] == addr {
			return body
		}
	}
	t.Fatalf("no body found keying to %s", addr)
	return ""
}

// TestRouterShardsByContent: the same content always lands on the same
// replica, and distinct contents use more than one.
func TestRouterShardsByContent(t *testing.T) {
	a, b := echoBackend("a"), echoBackend("b")
	defer a.Close()
	defer b.Close()
	rt := newTestRouter(t, Config{Replicas: []string{hostPort(a), hostPort(b)}})

	backends := map[string]bool{}
	for i := 0; i < 32; i++ {
		body := fmt.Sprintf(`{"n":%d}`, i)
		var firstSeen string
		for rep := 0; rep < 3; rep++ {
			_, hdr, _ := via(t, rt, "POST", "/v1/cost", body)
			be := hdr.Get("X-Backend")
			if firstSeen == "" {
				firstSeen = be
			} else if be != firstSeen {
				t.Fatalf("content %q moved from %s to %s between requests", body, firstSeen, be)
			}
		}
		backends[firstSeen] = true
	}
	if len(backends) != 2 {
		t.Fatalf("32 distinct contents all routed to one replica: %v", backends)
	}
}

// TestRouterFailoverByteIdentical is the satellite-4 regression test:
// kill the replica that owns a request, and the retry on the next ring
// member must return a byte-identical response.
func TestRouterFailoverByteIdentical(t *testing.T) {
	newReplica := func() (*httptest.Server, *serve.Server) {
		s := serve.NewServer(serve.Config{Logger: discardLogger()})
		return httptest.NewServer(s.Handler()), s
	}
	tsA, sA := newReplica()
	tsB, sB := newReplica()
	defer tsB.Close()
	defer sA.Close()
	defer sB.Close()

	rt := newTestRouter(t, Config{Replicas: []string{hostPort(tsA), hostPort(tsB)}})
	// /v1/cost is a pure function of its body, so replicas agree byte for
	// byte; aim the content at replica A.
	probe := bodyKeyedToScenario(t, rt, hostPort(tsA))

	code, hdr, want := via(t, rt, "POST", "/v1/cost", probe)
	if code != http.StatusOK {
		t.Fatalf("pre-kill request = %d %s", code, want)
	}
	if hdr.Get("X-Backend") != hostPort(tsA) {
		t.Fatalf("probe routed to %s, want %s", hdr.Get("X-Backend"), hostPort(tsA))
	}

	tsA.Close() // kill the owning replica mid-flight

	code2, hdr2, got := via(t, rt, "POST", "/v1/cost", probe)
	if code2 != http.StatusOK {
		t.Fatalf("post-kill request = %d %s", code2, got)
	}
	if be := hdr2.Get("X-Backend"); be != hostPort(tsB) {
		t.Fatalf("post-kill request served by %s, want failover to %s", be, hostPort(tsB))
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("failover response differs:\n%s\n%s", want, got)
	}
	if rt.retriesTotal.Value() == 0 {
		t.Fatal("failover did not count a retry")
	}
}

// bodyKeyedToScenario finds a valid /v1/cost scenario (wafer count
// varies) whose content key makes addr the first choice.
func bodyKeyedToScenario(t *testing.T, rt *Router, addr string) string {
	t.Helper()
	for w := 1000; w < 20000; w++ {
		body := fmt.Sprintf(`{"process":{"lambda_um":0.18,"yield":0.4},"design":{"transistors":10e6,"sd":300},"wafers":%d}`, w)
		req := httptest.NewRequest("POST", "/v1/cost", nil)
		if rt.ring.order(requestKey(req, []byte(body)))[0] == addr {
			return body
		}
	}
	t.Fatalf("no scenario found keying to %s", addr)
	return ""
}

// TestRouterDoesNotRetryNonIdempotentPOST: a POST outside the
// idempotent route set must fail with 502 rather than replay on the
// next member when its owner is down.
func TestRouterDoesNotRetryNonIdempotentPOST(t *testing.T) {
	a, b := echoBackend("a"), echoBackend("b")
	defer b.Close()
	rt := newTestRouter(t, Config{Replicas: []string{hostPort(a), hostPort(b)}})
	body := bodyKeyedTo(t, rt, "POST", "/v1/mutate", hostPort(a))
	a.Close()

	code, _, resp := via(t, rt, "POST", "/v1/mutate", body)
	if code != http.StatusBadGateway {
		t.Fatalf("non-idempotent POST to dead owner = %d %s, want 502", code, resp)
	}
	if rt.retriesTotal.Value() != 0 {
		t.Fatalf("non-idempotent POST was retried %d times", rt.retriesTotal.Value())
	}
}

// TestRouterBenchAndRecover: a transport failure benches the replica
// (visible on /frontz and /readyz semantics); after the cooldown a
// successful request un-benches it.
func TestRouterBenchAndRecover(t *testing.T) {
	a := echoBackend("a")
	defer a.Close()
	rt := newTestRouter(t, Config{Replicas: []string{hostPort(a)}, BenchFor: 30 * time.Millisecond})

	// Stop listening to force a transport failure, keeping the address.
	addr := hostPort(a)
	a.Close()
	if code, _, _ := via(t, rt, "GET", "/v1/figures/1", ""); code != http.StatusBadGateway {
		t.Fatalf("dead single replica gave %d, want 502", code)
	}
	if !rt.benched(addr) {
		t.Fatal("failed replica was not benched")
	}
	if code, _, body := via(t, rt, "GET", "/readyz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with all replicas benched = %d %s, want 503", code, body)
	}
	var frontz struct {
		Replicas []struct {
			Addr    string `json:"addr"`
			Benched bool   `json:"benched"`
		} `json:"replicas"`
	}
	_, _, raw := via(t, rt, "GET", "/frontz", "")
	if err := json.Unmarshal(raw, &frontz); err != nil {
		t.Fatalf("frontz %s: %v", raw, err)
	}
	if len(frontz.Replicas) != 1 || !frontz.Replicas[0].Benched {
		t.Fatalf("frontz = %s, want the one replica benched", raw)
	}

	// Bring a listener back on the same address and wait out the bench.
	a2 := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "back")
	}))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	a2.Listener.Close()
	a2.Listener = ln
	a2.Start()
	defer a2.Close()
	time.Sleep(50 * time.Millisecond)

	code, _, body := via(t, rt, "GET", "/v1/figures/1", "")
	if code != http.StatusOK || string(body) != "back" {
		t.Fatalf("recovered replica gave %d %q", code, body)
	}
	if rt.benched(addr) {
		t.Fatal("successful request did not un-bench the replica")
	}
	if code, _, _ := via(t, rt, "GET", "/readyz", ""); code != http.StatusOK {
		t.Fatal("readyz not ready after recovery")
	}
}

// TestRouterBodyTooLarge: an oversized body is rejected at the router,
// 413, without touching any backend.
func TestRouterBodyTooLarge(t *testing.T) {
	a := echoBackend("a")
	defer a.Close()
	rt := newTestRouter(t, Config{Replicas: []string{hostPort(a)}, MaxBodyBytes: 16})
	code, _, body := via(t, rt, "POST", "/v1/cost", strings.Repeat("x", 64))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d %s, want 413", code, body)
	}
}

// TestProxyPreservesEscapedPath is the escaped-path regression test: a
// path segment carrying an encoded slash must reach the backend in its
// escaped form, not decoded into extra path segments.
func TestProxyPreservesEscapedPath(t *testing.T) {
	a := echoBackend("a")
	defer a.Close()
	rt := newTestRouter(t, Config{Replicas: []string{hostPort(a)}})

	code, _, body := via(t, rt, "GET", "/v1/figures/1%2F2", "")
	if code != http.StatusOK {
		t.Fatalf("escaped-path request = %d %s", code, body)
	}
	if !strings.Contains(string(body), "/v1/figures/1%2F2") {
		t.Fatalf("backend saw %q, want the escaped path /v1/figures/1%%2F2 intact", body)
	}

	// The content key must distinguish the escaped from the decoded
	// path too, or both spellings would share a replica's caches under
	// one identity while backends treat them as different resources.
	esc := httptest.NewRequest("GET", "/v1/figures/1%2F2", nil)
	dec := httptest.NewRequest("GET", "/v1/figures/1/2", nil)
	if requestKey(esc, nil) == requestKey(dec, nil) {
		t.Fatal("requestKey collapses the escaped and decoded figure paths")
	}
}

// TestTransportErrorCounted: a failed proxy attempt must show up in
// front_requests_total under code="transport_error" — before this fix
// such attempts were invisible in the per-replica request counts.
func TestTransportErrorCounted(t *testing.T) {
	a := echoBackend("a")
	addr := hostPort(a)
	a.Close() // keep the address, kill the listener
	rt := newTestRouter(t, Config{Replicas: []string{addr}})

	if code, _, _ := via(t, rt, "GET", "/v1/figures/1", ""); code != http.StatusBadGateway {
		t.Fatalf("dead replica gave %d, want 502", code)
	}
	if got := rt.requestsTotal.With(addr, "transport_error").Value(); got != 1 {
		t.Fatalf("transport_error count = %d, want 1", got)
	}
}

// jobIDKeyedTo brute-forces a job id whose ring key makes addr the
// first choice, so tests can aim job traffic.
func jobIDKeyedTo(t *testing.T, rt *Router, addr string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("%016x", i)
		req := httptest.NewRequest("GET", "/v1/jobs/"+id, nil)
		if rt.ring.order(requestKey(req, nil))[0] == addr {
			return id
		}
	}
	t.Fatalf("no job id found keying to %s", addr)
	return ""
}

// TestJobRoutesKeyByID: every sub-resource of one job — status, result,
// lease, partials — computes the same ring key regardless of method,
// query, and body, so they all prefer the job's coordinator replica.
func TestJobRoutesKeyByID(t *testing.T) {
	id := "00112233aabbccdd"
	base := httptest.NewRequest("GET", "/v1/jobs/"+id, nil)
	want := requestKey(base, nil)
	for _, tc := range []struct{ method, target string }{
		{"GET", "/v1/jobs/" + id + "/result"},
		{"GET", "/v1/jobs/" + id + "?verbose=1"},
		{"POST", "/v1/jobs/" + id + "/lease"},
		{"POST", "/v1/jobs/" + id + "/partials"},
	} {
		req := httptest.NewRequest(tc.method, tc.target, nil)
		if got := requestKey(req, []byte(`{"owner":"w"}`)); got != want {
			t.Fatalf("%s %s keys to %d, want the job's key %d", tc.method, tc.target, got, want)
		}
	}
	// The open listing is not a job and must not share the keyspace.
	open := httptest.NewRequest("GET", "/v1/jobs/open", nil)
	if requestKey(open, nil) == want {
		t.Fatal("/v1/jobs/open collides with a job id key")
	}
}

// TestJobRouteChasesNotFound: when the id-keyed first choice does not
// track the job (submits shard by body, so the coordinator can be any
// replica), a 404 is chased to the next ring member instead of being
// relayed to the client.
func TestJobRouteChasesNotFound(t *testing.T) {
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":{"code":"job_not_found","message":"no tracked job"}}`)
	}))
	defer notFound.Close()
	owner := echoBackend("owner")
	defer owner.Close()

	rt := newTestRouter(t, Config{Replicas: []string{hostPort(notFound), hostPort(owner)}})
	id := jobIDKeyedTo(t, rt, hostPort(notFound))

	code, hdr, body := via(t, rt, "GET", "/v1/jobs/"+id+"/result", "")
	if code != http.StatusOK || hdr.Get("X-Backend") != hostPort(owner) {
		t.Fatalf("chased request = %d via %s (%s), want 200 from %s",
			code, hdr.Get("X-Backend"), body, hostPort(owner))
	}
	if got := rt.jobChasesTotal.Value(); got != 1 {
		t.Fatalf("job chases = %d, want 1", got)
	}
	// The 404 the chase skipped still counts against the replica that
	// answered it.
	if got := rt.requestsTotal.With(hostPort(notFound), "404").Value(); got != 1 {
		t.Fatalf("chased 404 not counted: %d", got)
	}

	// The distributed-job control POSTs ride the same chase.
	code, hdr, _ = via(t, rt, "POST", "/v1/jobs/"+id+"/partials", `{"owner":"w","shard":0,"chunks":[]}`)
	if code != http.StatusOK || hdr.Get("X-Backend") != hostPort(owner) {
		t.Fatalf("partials chase = %d via %s, want 200 from %s", code, hdr.Get("X-Backend"), hostPort(owner))
	}
}

// TestJobRouteChaseExhausted: when no replica knows the job the last
// 404 is relayed — the chase changes who answers, never what a missing
// job looks like.
func TestJobRouteChaseExhausted(t *testing.T) {
	mk404 := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNotFound)
			io.WriteString(w, `{"error":{"code":"job_not_found","message":"no tracked job"}}`)
		}))
	}
	a, b := mk404(), mk404()
	defer a.Close()
	defer b.Close()
	rt := newTestRouter(t, Config{Replicas: []string{hostPort(a), hostPort(b)}})

	code, _, body := via(t, rt, "GET", "/v1/jobs/feedfacefeedface", "")
	if code != http.StatusNotFound || !strings.Contains(string(body), "job_not_found") {
		t.Fatalf("exhausted chase = %d %s, want the backend 404 relayed", code, body)
	}
}

// TestAttemptOrderStableUnderBench: benching a replica moves it to the
// back of the attempt order without reshuffling the others, and the
// ring's own preference order never changes — so a bench during one
// request cannot re-aim unrelated keys.
func TestAttemptOrderStableUnderBench(t *testing.T) {
	rt := newTestRouter(t, Config{
		Replicas: []string{"10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1"},
		BenchFor: time.Minute,
	})
	for key := uint64(1); key <= 64; key++ {
		ringBefore := rt.ring.order(key)
		rt.bench(ringBefore[0])
		if got := rt.ring.order(key); !slicesEqual(got, ringBefore) {
			t.Fatalf("ring.order changed under bench: %v vs %v", got, ringBefore)
		}
		want := append(append([]string{}, ringBefore[1:]...), ringBefore[0])
		if got := rt.attemptOrder(key); !slicesEqual(got, want) {
			t.Fatalf("attemptOrder with %s benched = %v, want %v", ringBefore[0], got, want)
		}
		rt.unbench(ringBefore[0])
		if got := rt.attemptOrder(key); !slicesEqual(got, ringBefore) {
			t.Fatalf("attemptOrder after unbench = %v, want %v", got, ringBefore)
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
