package front

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is fleet aggregation: GET /fleetz scrapes every replica's
// /metrics, re-exposes every sample with a replica label injected, and
// prepends computed fleet rollups — total requests and request rate,
// p99 latency from the merged per-replica histograms, jobs in flight,
// benched replicas — so operators and scripts/slo_check.sh get one pane
// for the whole fleet instead of N scrapes to join by hand. A replica
// that cannot be scraped is reported via front_fleet_scrape_ok rather
// than failing the pull.

// fleetState remembers the previous /fleetz pull so successive pulls
// can report a fleet-wide request rate from the counter delta.
type fleetState struct {
	mu        sync.Mutex
	lastTime  time.Time
	lastTotal float64
	valid     bool
}

// scrapedSample is one sample line of a replica's exposition: the full
// sample name (histogram suffixes included), the raw label text between
// the braces, and the value both parsed and as written.
type scrapedSample struct {
	name   string
	labels string
	value  float64
	raw    string
}

// scrapedFamily is one contiguous family block of a replica's scrape.
type scrapedFamily struct {
	name    string
	typ     string
	help    string
	samples []scrapedSample
}

// parseExposition parses one replica's text exposition into its family
// blocks. It relies on the format's contiguity guarantee (which the
// replica's own conformance test enforces): HELP/TYPE lines open a
// family and the samples that follow belong to it, with histogram
// _bucket/_sum/_count suffixes folded into their base family.
func parseExposition(text string) []scrapedFamily {
	var fams []scrapedFamily
	cur := -1
	startFam := func(name string) int {
		if cur >= 0 && fams[cur].name == name {
			return cur
		}
		fams = append(fams, scrapedFamily{name: name, typ: "untyped"})
		return len(fams) - 1
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			cur = startFam(name)
			fams[cur].help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			cur = startFam(name)
			fams[cur].typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s, ok := parseSample(line)
		if !ok {
			continue
		}
		base := s.name
		if cur >= 0 && fams[cur].typ == "histogram" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if t, found := strings.CutSuffix(s.name, suf); found && t == fams[cur].name {
					base = t
					break
				}
			}
		}
		if cur < 0 || fams[cur].name != base {
			cur = startFam(base)
		}
		fams[cur].samples = append(fams[cur].samples, s)
	}
	return fams
}

// parseSample splits one sample line into name, raw label text and
// value. The label scanner is quote-aware: a '}' inside a quoted label
// value (route="/v1/jobs/{id}") does not end the label set.
func parseSample(line string) (scrapedSample, bool) {
	var s scrapedSample
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		s.name = line[:brace]
		rest := line[brace+1:]
		end := labelsEnd(rest)
		if end < 0 {
			return s, false
		}
		s.labels = rest[:end]
		fields := strings.Fields(rest[end+1:])
		if len(fields) == 0 {
			return s, false
		}
		s.raw = fields[0]
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return s, false
		}
		s.name = fields[0]
		s.raw = fields[1]
	}
	v, err := strconv.ParseFloat(s.raw, 64)
	if err != nil {
		return s, false
	}
	s.value = v
	return s, true
}

// labelsEnd returns the index of the first unquoted '}' in s, or -1.
func labelsEnd(s string) int {
	inq, esc := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case esc:
			esc = false
		case c == '\\':
			esc = inq
		case c == '"':
			inq = !inq
		case c == '}' && !inq:
			return i
		}
	}
	return -1
}

// labelValue extracts the unescaped value of one label from raw label
// text, reporting whether the label is present.
func labelValue(labels, key string) (string, bool) {
	rest := labels
	for rest != "" {
		rest = strings.TrimLeft(rest, ", ")
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", false
		}
		name := rest[:eq]
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", false
		}
		rest = rest[1:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				if rest[i] == 'n' {
					b.WriteByte('\n')
				} else {
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(rest) {
			return "", false
		}
		if name == key {
			return b.String(), true
		}
		rest = rest[i+1:]
	}
	return "", false
}

// scrapeReplica pulls one replica's /metrics text.
func (rt *Router) scrapeReplica(ctx context.Context, addr string) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := rt.cfg.Transport.RoundTrip(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// handleFleetz serves the fleet-wide scrape: rollup families first,
// then every replica's families merged by name with a replica label
// injected into each sample.
func (rt *Router) handleFleetz(w http.ResponseWriter, r *http.Request) {
	type scrape struct {
		addr string
		fams []scrapedFamily
		err  error
	}
	scrapes := make([]scrape, len(rt.ring.replicas))
	var wg sync.WaitGroup
	for i, addr := range rt.ring.replicas {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			text, err := rt.scrapeReplica(r.Context(), addr)
			sc := scrape{addr: addr, err: err}
			if err == nil {
				sc.fams = parseExposition(text)
			} else {
				rt.log.Warn("fleet scrape failed", "replica", addr, "error", err.Error())
			}
			scrapes[i] = sc
		}(i, addr)
	}
	wg.Wait()

	// Merge family blocks across replicas in ring order (first-seen
	// family order), computing the rollups in the same pass.
	type mergedSample struct {
		replica string
		s       scrapedSample
	}
	type mergedFamily struct {
		name, typ, help string
		samples         []mergedSample
	}
	var order []string
	merged := map[string]*mergedFamily{}
	var totalRequests, jobsSubmitted, jobsDone float64
	buckets := map[float64]float64{}
	for _, sc := range scrapes {
		for _, fam := range sc.fams {
			mf := merged[fam.name]
			if mf == nil {
				mf = &mergedFamily{name: fam.name, typ: fam.typ, help: fam.help}
				merged[fam.name] = mf
				order = append(order, fam.name)
			}
			for _, s := range fam.samples {
				mf.samples = append(mf.samples, mergedSample{sc.addr, s})
				switch {
				case fam.name == "nanocostd_requests_total":
					totalRequests += s.value
				case fam.name == "nanocostd_jobs_total":
					if state, ok := labelValue(s.labels, "state"); ok {
						if state == "submitted" {
							jobsSubmitted += s.value
						} else {
							jobsDone += s.value
						}
					}
				case s.name == "nanocostd_request_seconds_bucket":
					if le, ok := labelValue(s.labels, "le"); ok {
						if bound, err := strconv.ParseFloat(le, 64); err == nil {
							buckets[bound] += s.value
						}
					}
				}
			}
		}
	}

	// Fleet p99: merge the per-replica cumulative buckets and take the
	// upper bound of the first bucket covering the 99th percentile.
	var p99 float64
	bounds := make([]float64, 0, len(buckets))
	for b := range buckets {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	if n := len(bounds); n > 0 {
		if total := buckets[bounds[n-1]]; total > 0 {
			target := 0.99 * total
			for _, b := range bounds {
				if buckets[b] >= target {
					p99 = b
					break
				}
			}
		}
	}

	now := time.Now()
	rt.fleet.mu.Lock()
	var rps float64
	if rt.fleet.valid && totalRequests >= rt.fleet.lastTotal {
		if dt := now.Sub(rt.fleet.lastTime).Seconds(); dt > 0 {
			rps = (totalRequests - rt.fleet.lastTotal) / dt
		}
	}
	rt.fleet.lastTime, rt.fleet.lastTotal, rt.fleet.valid = now, totalRequests, true
	rt.fleet.mu.Unlock()

	benched := 0
	for _, addr := range rt.ring.replicas {
		if rt.benched(addr) {
			benched++
		}
	}
	jobsInFlight := jobsSubmitted - jobsDone
	if jobsInFlight < 0 {
		jobsInFlight = 0
	}

	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var b strings.Builder
	b.WriteString("# HELP front_fleet_scrape_ok Whether the replica's /metrics scrape succeeded on this pull.\n# TYPE front_fleet_scrape_ok gauge\n")
	for _, sc := range scrapes {
		up := 1
		if sc.err != nil {
			up = 0
		}
		fmt.Fprintf(&b, "front_fleet_scrape_ok{%s} %d\n", obs.Label("replica", sc.addr), up)
	}
	b.WriteString("# HELP front_fleet_requests_total Requests served fleet-wide: sum of nanocostd_requests_total over every scraped replica.\n# TYPE front_fleet_requests_total counter\n")
	fmt.Fprintf(&b, "front_fleet_requests_total %s\n", num(totalRequests))
	b.WriteString("# HELP front_fleet_rps Fleet-wide request rate, from the requests-total delta since the previous /fleetz pull (0 on the first).\n# TYPE front_fleet_rps gauge\n")
	fmt.Fprintf(&b, "front_fleet_rps %s\n", num(rps))
	b.WriteString("# HELP front_fleet_request_seconds_p99 Fleet-wide 99th-percentile request latency: upper bound of the first merged histogram bucket covering p99.\n# TYPE front_fleet_request_seconds_p99 gauge\n")
	fmt.Fprintf(&b, "front_fleet_request_seconds_p99 %s\n", num(p99))
	b.WriteString("# HELP front_fleet_jobs_in_flight Jobs submitted but not yet terminal, fleet-wide.\n# TYPE front_fleet_jobs_in_flight gauge\n")
	fmt.Fprintf(&b, "front_fleet_jobs_in_flight %s\n", num(jobsInFlight))
	b.WriteString("# HELP front_fleet_replicas_benched Replicas currently benched by passive health.\n# TYPE front_fleet_replicas_benched gauge\n")
	fmt.Fprintf(&b, "front_fleet_replicas_benched %d\n", benched)

	for _, name := range order {
		mf := merged[name]
		if mf.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, mf.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, mf.typ)
		for _, ms := range mf.samples {
			if ms.s.labels != "" {
				fmt.Fprintf(&b, "%s{%s,%s} %s\n", ms.s.name, obs.Label("replica", ms.replica), ms.s.labels, ms.s.raw)
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", ms.s.name, obs.Label("replica", ms.replica), ms.s.raw)
			}
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}
