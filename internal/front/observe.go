package front

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// traceRingCapacity is how many completed traces the router retains for
// GET /debug/trace/{id}. Matches nanocostd's ring so a federated lookup
// does not outlive one side's record much sooner than the other's.
const traceRingCapacity = 128

// statusRecorder captures the status and byte count of one response for
// the access log.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
	bytes       int64
}

func (r *statusRecorder) WriteHeader(status int) {
	if !r.wroteHeader {
		r.status = status
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wroteHeader {
		r.status = http.StatusOK
		r.wroteHeader = true
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush passes through so proxied NDJSON streams keep flowing chunk by
// chunk instead of buffering behind the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// observe is the router's outermost middleware: it assigns or echoes
// X-Request-Id (and writes it back onto the inbound header set, so the
// proxy's header clone forwards the same ID to the replica — the join
// key between the two processes' access logs), opens a front.request
// root span honoring a sanitized incoming X-Trace-Id/X-Parent-Span-Id,
// and emits exactly one structured access-log line per request.
func (rt *Router) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}

		reqID := obs.SanitizeID(r.Header.Get("X-Request-Id"))
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		r.Header.Set("X-Request-Id", reqID)
		rec.Header().Set("X-Request-Id", reqID)

		var span *obs.Span
		if shouldTrace(r.URL.Path) {
			var ctx context.Context
			ctx, span = rt.tracer.StartRootWithParent(r.Context(),
				obs.SanitizeID(r.Header.Get("X-Trace-Id")),
				obs.SanitizeID(r.Header.Get("X-Parent-Span-Id")), "front.request")
			span.SetAttr("method", r.Method)
			span.SetAttr("path", r.URL.Path)
			rec.Header().Set("X-Trace-Id", span.TraceID())
			r = r.WithContext(ctx)
		}

		next.ServeHTTP(rec, r)

		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		if span != nil {
			span.SetAttr("status", strconv.Itoa(status))
			span.End()
		}

		level := slog.LevelInfo
		switch {
		case status >= 500:
			level = slog.LevelError
		case status >= 400:
			level = slog.LevelWarn
		}
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
			slog.String("request_id", reqID),
		}
		if span != nil {
			attrs = append(attrs, slog.String("trace_id", span.TraceID()))
		}
		rt.log.LogAttrs(r.Context(), level, "request", attrs...)
	})
}

// shouldTrace reports whether a path gets a front.request root span. The
// router's own observability endpoints are exempt — scrapes, topology
// polls and trace lookups must not fill the trace ring with themselves.
func shouldTrace(path string) bool {
	return path != "/healthz" && path != "/readyz" && path != "/metrics" &&
		path != "/frontz" && path != "/fleetz" && !strings.HasPrefix(path, "/debug/")
}
