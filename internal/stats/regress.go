package stats

import (
	"errors"
	"math"
)

// LinearFit is the result of an ordinary-least-squares fit y = a + b·x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	N         int
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// LinearRegression fits y = a + b·x by ordinary least squares. It returns
// an error when fewer than two points are supplied, the lengths differ, or
// all x values coincide.
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: regression sample length mismatch")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: regression requires at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: regression undefined for constant x")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		var sse float64
		for i := range xs {
			r := ys[i] - (a + b*xs[i])
			sse += r * r
		}
		r2 = 1 - sse/syy
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2, N: len(xs)}, nil
}

// PowerFit is the result of a power-law fit y = c·x^p, obtained by linear
// regression in log–log space. Both samples must be strictly positive.
type PowerFit struct {
	Coeff    float64 // c
	Exponent float64 // p
	R2       float64 // in log–log space
	N        int
}

// Predict evaluates the fitted power law at x.
func (f PowerFit) Predict(x float64) float64 { return f.Coeff * math.Pow(x, f.Exponent) }

// PowerRegression fits y = c·x^p. It returns an error for mismatched
// lengths, fewer than two points, or non-positive values.
func PowerRegression(xs, ys []float64) (PowerFit, error) {
	if len(xs) != len(ys) {
		return PowerFit{}, errors.New("stats: regression sample length mismatch")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerFit{}, errors.New("stats: power regression requires positive values")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	lin, err := LinearRegression(lx, ly)
	if err != nil {
		return PowerFit{}, err
	}
	return PowerFit{
		Coeff:    math.Exp(lin.Intercept),
		Exponent: lin.Slope,
		R2:       lin.R2,
		N:        lin.N,
	}, nil
}

// ExpFit is the result of an exponential fit y = c·e^(k·x), obtained by
// linear regression of log y on x. The y sample must be strictly positive.
type ExpFit struct {
	Coeff float64 // c
	Rate  float64 // k
	R2    float64 // in semi-log space
	N     int
}

// Predict evaluates the fitted exponential at x.
func (f ExpFit) Predict(x float64) float64 { return f.Coeff * math.Exp(f.Rate*x) }

// ExpRegression fits y = c·e^(k·x). It returns an error for mismatched
// lengths, fewer than two points, or non-positive y values.
func ExpRegression(xs, ys []float64) (ExpFit, error) {
	if len(xs) != len(ys) {
		return ExpFit{}, errors.New("stats: regression sample length mismatch")
	}
	ly := make([]float64, len(ys))
	for i := range ys {
		if ys[i] <= 0 {
			return ExpFit{}, errors.New("stats: exponential regression requires positive y")
		}
		ly[i] = math.Log(ys[i])
	}
	lin, err := LinearRegression(xs, ly)
	if err != nil {
		return ExpFit{}, err
	}
	return ExpFit{Coeff: math.Exp(lin.Intercept), Rate: lin.Slope, R2: lin.R2, N: lin.N}, nil
}

// Interpolator performs piecewise-linear interpolation over a table of
// (x, y) knots sorted by ascending x. Outside the knot range it
// extrapolates linearly from the terminal segment, which suits roadmap
// tables where mild extrapolation beyond the published nodes is expected.
type Interpolator struct {
	xs, ys []float64
}

// NewInterpolator builds an interpolator from knots. It returns an error
// when fewer than two knots are supplied or the x values are not strictly
// increasing.
func NewInterpolator(xs, ys []float64) (*Interpolator, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("stats: interpolator knot length mismatch")
	}
	if len(xs) < 2 {
		return nil, errors.New("stats: interpolator requires at least two knots")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, errors.New("stats: interpolator knots must be strictly increasing in x")
		}
	}
	return &Interpolator{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	}, nil
}

// At evaluates the interpolant at x.
func (ip *Interpolator) At(x float64) float64 {
	xs, ys := ip.xs, ip.ys
	// Locate the segment by binary search; clamp to terminal segments for
	// extrapolation.
	lo, hi := 0, len(xs)-1
	if x <= xs[0] {
		lo, hi = 0, 1
	} else if x >= xs[len(xs)-1] {
		lo, hi = len(xs)-2, len(xs)-1
	} else {
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if xs[mid] <= x {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo] + t*(ys[hi]-ys[lo])
}

// Domain returns the x range covered by the knots.
func (ip *Interpolator) Domain() (lo, hi float64) { return ip.xs[0], ip.xs[len(ip.xs)-1] }
