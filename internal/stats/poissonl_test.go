package stats

import (
	"math"
	"testing"
)

// PoissonL's contract: given expNegMean == exp(-mean), its draws AND its
// RNG stream consumption are bit-identical to Poisson. Both are checked —
// a count that matched while consuming a different number of variates
// would silently desynchronize every downstream draw.
func TestPoissonLMatchesPoisson(t *testing.T) {
	for _, mean := range []float64{0, -1, 1e-9, 0.25, 1, 3.5, 29.999, 30, 64, 1000} {
		a := NewRNG(1234)
		b := NewRNG(1234)
		expNeg := math.Exp(-mean)
		for i := 0; i < 5000; i++ {
			ka := a.Poisson(mean)
			kb := b.PoissonL(mean, expNeg)
			if ka != kb {
				t.Fatalf("mean %v draw %d: Poisson %d, PoissonL %d", mean, i, ka, kb)
			}
		}
		// Stream states must still agree after all draws.
		for i := 0; i < 8; i++ {
			if ua, ub := a.Uint64(), b.Uint64(); ua != ub {
				t.Fatalf("mean %v: streams desynchronized after draws (%x vs %x)", mean, ua, ub)
			}
		}
	}
}
