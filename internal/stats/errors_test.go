package stats

import (
	"errors"
	"math"
	"testing"
)

func TestQuantileE(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}

	v, err := QuantileE(sorted, 0.5)
	if err != nil || v != 3 {
		t.Fatalf("QuantileE(0.5) = %v, %v; want 3, nil", v, err)
	}
	if _, err := QuantileE(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty sample: err = %v, want ErrEmpty", err)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := QuantileE(sorted, q); err == nil {
			t.Errorf("QuantileE accepted fraction %v", q)
		}
	}
}

func TestQuantilePanicsWhereQuantileEErrors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty sample did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestArgminGridE(t *testing.T) {
	parabola := func(x float64) float64 { return (x - 3) * (x - 3) }

	x, fx, err := ArgminGridE(parabola, 0, 6, 601)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3) > 0.02 || fx > 1e-3 {
		t.Fatalf("argmin = (%v, %v), want near (3, 0)", x, fx)
	}

	if _, _, err := ArgminGridE(parabola, 0, 6, 1); err == nil {
		t.Error("accepted n = 1")
	}
	for _, b := range [][2]float64{{math.NaN(), 6}, {0, math.NaN()}, {0, math.Inf(1)}, {6, 0}, {3, 3}} {
		if _, _, err := ArgminGridE(parabola, b[0], b[1], 16); err == nil {
			t.Errorf("accepted bounds [%v, %v]", b[0], b[1])
		}
	}
}

// TestArgminGridESkipsNaN pins the fix for the NaN-poisoned comparison
// chain: fi < fx is false whenever fi is NaN, so the old code could crown
// a NaN point evaluated first as the "minimum". Undefined points must be
// skipped, and an everywhere-NaN objective must be an error.
func TestArgminGridESkipsNaN(t *testing.T) {
	// NaN on the left half — including the very first grid point.
	f := func(x float64) float64 {
		if x < 3 {
			return math.NaN()
		}
		return x // minimized at the NaN/defined boundary
	}
	x, fx, err := ArgminGridE(f, 0, 6, 601)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(fx) || x < 3 {
		t.Fatalf("argmin = (%v, %v) landed in the NaN region", x, fx)
	}

	allNaN := func(float64) float64 { return math.NaN() }
	if _, _, err := ArgminGridE(allNaN, 0, 6, 16); err == nil {
		t.Fatal("accepted an objective that is NaN over the entire grid")
	}
}
