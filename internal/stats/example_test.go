package stats_test

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// One-dimensional minimization of the kind the cost optimizers use.
func ExampleMinimize() {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	res, err := stats.Minimize(f, -10, 10, 1e-9)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("argmin ≈ %.4f\n", res.X)
	// Output:
	// argmin ≈ 3.0000
}

// Power-law regression in log–log space.
func ExamplePowerRegression() {
	xs := []float64{1, 2, 4, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 1.5)
	}
	fit, err := stats.PowerRegression(xs, ys)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("y = %.1f·x^%.1f\n", fit.Coeff, fit.Exponent)
	// Output:
	// y = 5.0·x^1.5
}

// The deterministic RNG behind every Monte Carlo in the repository.
func ExampleRNG() {
	a := stats.NewRNG(42)
	b := stats.NewRNG(42)
	fmt.Println(a.Intn(1000) == b.Intn(1000))
	// Output:
	// true
}
