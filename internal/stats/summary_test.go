package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Fatalf("N = %d, want 8", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	if !almostEqual(s.Variance, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", s.Variance, 32.0/7.0)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Fatalf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 3 || s.Median != 3 || s.Variance != 0 || s.StdDev != 0 {
		t.Fatalf("single-element summary wrong: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMeanStderr(t *testing.T) {
	mean, se, err := MeanStderr([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mean, 2.5, 1e-12) {
		t.Fatalf("mean = %v", mean)
	}
	wantSE := math.Sqrt(5.0/3.0) / 2
	if !almostEqual(se, wantSE, 1e-12) {
		t.Fatalf("stderr = %v, want %v", se, wantSE)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, 10, 1e-9) {
		t.Fatalf("GeoMean = %v, want 10", g)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Fatal("GeoMean accepted zero value")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v, want -1", r)
	}
	if _, err := Pearson(xs, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Fatal("Pearson accepted zero-variance sample")
	}
	if _, err := Pearson(xs, xs[:3]); err == nil {
		t.Fatal("Pearson accepted mismatched lengths")
	}
}

// Property: min <= median <= max and min <= mean <= max for any non-empty
// sample of finite values.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9*math.Abs(s.Mean) && s.Mean <= s.Max+1e-9*math.Abs(s.Max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
