package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by summary routines that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds moment and order statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator); 0 when N < 2
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
}

// Summarize computes summary statistics of xs. It returns ErrEmpty when xs
// is empty. The input is not modified.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	return s, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation between closest ranks. It panics when
// sorted is empty or q is outside [0, 1]; callers own validation because the
// routine sits in inner loops. User-reachable paths (CLIs, HTTP handlers)
// should use QuantileE and report the error instead.
func Quantile(sorted []float64, q float64) float64 {
	v, err := QuantileE(sorted, q)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// QuantileE is the error-returning form of Quantile: it rejects an empty
// sample with ErrEmpty and a fraction outside [0, 1] (including NaN) with a
// descriptive error, instead of panicking.
func QuantileE(sorted []float64, q float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, fmt.Errorf("stats: Quantile of empty sample: %w", ErrEmpty)
	}
	if !(q >= 0 && q <= 1) {
		return 0, fmt.Errorf("stats: Quantile fraction must be in [0,1], got %v", q)
	}
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MeanStderr returns the sample mean and its standard error. It returns
// ErrEmpty for an empty sample; the standard error is zero when N < 2.
func MeanStderr(xs []float64) (mean, stderr float64, err error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, 0, err
	}
	if s.N > 1 {
		stderr = s.StdDev / math.Sqrt(float64(s.N))
	}
	return s.Mean, stderr, nil
}

// GeoMean returns the geometric mean of a sample of positive values. It
// returns ErrEmpty for an empty sample and an error when any value is not
// strictly positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: GeoMean requires positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It returns an error when the lengths differ, when fewer than two
// points are supplied, or when either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson sample length mismatch")
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: Pearson requires at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: Pearson undefined for zero-variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
