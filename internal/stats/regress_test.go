package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Intercept, 3, 1e-10) || !almostEqual(fit.Slope, 2, 1e-10) {
		t.Fatalf("fit = %+v, want intercept 3 slope 2", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-10) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); !almostEqual(got, 23, 1e-10) {
		t.Fatalf("Predict(10) = %v, want 23", got)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	r := NewRNG(99)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 1.5-0.7*x+r.Norm(0, 0.1))
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-1.5) > 0.05 || math.Abs(fit.Slope+0.7) > 0.01 {
		t.Fatalf("noisy fit = %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Fatal("accepted single point")
	}
	if _, err := LinearRegression([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("accepted constant x")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}

func TestPowerRegressionExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 1.3)
	}
	fit, err := PowerRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Coeff, 5, 1e-8) || !almostEqual(fit.Exponent, 1.3, 1e-10) {
		t.Fatalf("fit = %+v, want coeff 5 exponent 1.3", fit)
	}
	if got := fit.Predict(32); !almostEqual(got, 5*math.Pow(32, 1.3), 1e-6) {
		t.Fatalf("Predict(32) = %v", got)
	}
}

func TestPowerRegressionRejectsNonPositive(t *testing.T) {
	if _, err := PowerRegression([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("accepted negative x")
	}
	if _, err := PowerRegression([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Fatal("accepted zero y")
	}
}

func TestExpRegressionExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * math.Exp(-0.5*x)
	}
	fit, err := ExpRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Coeff, 2, 1e-9) || !almostEqual(fit.Rate, -0.5, 1e-10) {
		t.Fatalf("fit = %+v, want coeff 2 rate -0.5", fit)
	}
}

func TestInterpolatorExactAtKnots(t *testing.T) {
	ip, err := NewInterpolator([]float64{0, 1, 3}, []float64{10, 20, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range []float64{0, 1, 3} {
		want := []float64{10, 20, 0}[i]
		if got := ip.At(x); !almostEqual(got, want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestInterpolatorBetweenAndBeyond(t *testing.T) {
	ip, err := NewInterpolator([]float64{0, 2}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := ip.At(1); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("At(1) = %v, want 2", got)
	}
	// Linear extrapolation beyond both ends.
	if got := ip.At(3); !almostEqual(got, 6, 1e-12) {
		t.Fatalf("At(3) = %v, want 6", got)
	}
	if got := ip.At(-1); !almostEqual(got, -2, 1e-12) {
		t.Fatalf("At(-1) = %v, want -2", got)
	}
	lo, hi := ip.Domain()
	if lo != 0 || hi != 2 {
		t.Fatalf("Domain = (%v,%v), want (0,2)", lo, hi)
	}
}

func TestInterpolatorValidation(t *testing.T) {
	if _, err := NewInterpolator([]float64{0}, []float64{1}); err == nil {
		t.Fatal("accepted single knot")
	}
	if _, err := NewInterpolator([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("accepted duplicate x knots")
	}
	if _, err := NewInterpolator([]float64{0, 1}, []float64{1}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}

// Property: a line through any two distinct generated points is recovered
// exactly (up to floating error) by LinearRegression.
func TestLinearRegressionTwoPointProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		xs := []float64{0, 1}
		ys := []float64{a, a + b}
		fit, err := LinearRegression(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Intercept, a, 1e-6*(1+math.Abs(a))) &&
			almostEqual(fit.Slope, b, 1e-6*(1+math.Abs(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
