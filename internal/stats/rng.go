// Package stats provides the small numeric substrate shared by the rest of
// the repository: a deterministic random number generator, summary
// statistics, linear regression, one-dimensional minimization, and numeric
// quadrature.
//
// Everything here is intentionally self-contained (stdlib only) and
// deterministic: all stochastic components of the repository draw from RNG
// seeded explicitly, so experiments and tests are reproducible bit-for-bit.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on the
// SplitMix64 / xoshiro256** construction. It is not cryptographically
// secure; it exists so that Monte Carlo experiments are reproducible and
// cheap. The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed internal state even for small or structured seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A state of all zeros would be absorbing; SplitMix64 cannot produce
	// four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, matching the contract of math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Range returns a uniformly distributed value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp called with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a Poisson-distributed count with the given mean. For
// small means it uses Knuth's product method; for large means a normal
// approximation with continuity correction, which is ample for the defect
// counts this repository simulates.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := r.Norm(mean, math.Sqrt(mean))
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Gamma returns a Gamma(shape, scale) variate using the Marsaglia–Tsang
// method (with Ahrens-style boosting for shape < 1). It panics if shape or
// scale is non-positive. Gamma mixing of a Poisson rate yields the negative
// binomial defect model used by internal/yield.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from r's stream, for experiments
// that need multiple decorrelated streams from a single seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
