// Package stats provides the small numeric substrate shared by the rest of
// the repository: a deterministic random number generator, summary
// statistics, linear regression, one-dimensional minimization, and numeric
// quadrature.
//
// Everything here is intentionally self-contained (stdlib only) and
// deterministic: all stochastic components of the repository draw from RNG
// seeded explicitly, so experiments and tests are reproducible bit-for-bit.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on the
// SplitMix64 / xoshiro256** construction. It is not cryptographically
// secure; it exists so that Monte Carlo experiments are reproducible and
// cheap. The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed internal state even for small or structured seeds.
func NewRNG(seed uint64) *RNG {
	r := Seeded(seed)
	return &r
}

// Seeded returns the same generator as NewRNG by value. Hot loops that
// create one short-lived stream per (wafer, row, chunk) — thousands per
// simulation — use it to keep the generator on the stack instead of
// paying one heap allocation per stream.
func Seeded(seed uint64) RNG {
	var r RNG
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A state of all zeros would be absorbing; SplitMix64 cannot produce
	// four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, matching the contract of math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Range returns a uniformly distributed value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp called with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a Poisson-distributed count with the given mean. For
// small means it uses Knuth's product method; for large means a normal
// approximation with continuity correction, which is ample for the defect
// counts this repository simulates.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		return r.poissonKnuth(math.Exp(-mean))
	}
	return r.poissonNormal(mean)
}

// PoissonL is Poisson with the caller supplying expNegMean = exp(-mean).
// Simulation kernels whose rate is constant across many draws (every
// trial of a defect simulation, every die of an unclustered wafer) hoist
// the exp out of the loop and pay only the product loop per draw. The
// draw sequence — and therefore the stream state — is bit-identical to
// Poisson(mean) provided expNegMean == math.Exp(-mean).
func (r *RNG) PoissonL(mean, expNegMean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		return r.poissonKnuth(expNegMean)
	}
	return r.poissonNormal(mean)
}

// poissonKnuth is Knuth's product method, parameterized by l = exp(-mean).
func (r *RNG) poissonKnuth(l float64) int {
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonNormal is the large-mean normal approximation with continuity
// correction.
func (r *RNG) poissonNormal(mean float64) int {
	n := r.Norm(mean, math.Sqrt(mean))
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Gamma returns a Gamma(shape, scale) variate using the Marsaglia–Tsang
// method (with Ahrens-style boosting for shape < 1). It panics if shape or
// scale is non-positive. Gamma mixing of a Poisson rate yields the negative
// binomial defect model used by internal/yield.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives a decorrelated generator from r's stream by reseeding a
// fresh generator (via SplitMix64) from r's next output.
//
// Guarantees: the child is fully determined by r's state, so Split is
// reproducible; the SplitMix64 expansion makes the child's state
// well-mixed even though it derives from a single 64-bit draw. What Split
// does NOT guarantee is stream disjointness — two children could in
// principle land on overlapping segments of the xoshiro256** cycle,
// with probability ~k²·L/2²⁵⁶ for k children each consuming L values
// (astronomically small, but not structural). Callers that need a hard
// non-overlap guarantee — per-chunk streams in the parallel Monte Carlo
// engine — should use SplitN, which walks the cycle with Jump instead.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// jumpPoly is the xoshiro256** jump polynomial: applying it advances the
// generator by exactly 2^128 steps of the underlying cycle.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances r by 2^128 steps in O(256) time. Successive Jump calls
// partition the generator's 2^256−1 cycle into non-overlapping blocks of
// 2^128 values each: a stream captured before a Jump and the stream after
// it can never collide as long as each draws fewer than 2^128 values —
// a structural guarantee, not a probabilistic one.
func (r *RNG) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// SplitN returns k generators occupying consecutive 2^128-length blocks
// of r's cycle, and advances r past all of them. Stream i is the state of
// r after i jumps, so the layout depends only on r's state and k — the
// deterministic sub-stream construction the parallel engine and the
// sharded Monte Carlo job engine use to make results bit-identical across
// worker and shard counts. Unlike Split, the returned streams are
// guaranteed non-overlapping provided each draws fewer than 2^128 values.
//
// Boundary behavior is explicit for the sharding path: k == 0 returns nil
// and leaves r untouched (a resumed run with no pending shards needs no
// streams), k == 1 returns a single stream holding r's pre-call state and
// advances r one jump past it (so a later SplitN continues on disjoint
// blocks). It panics if k < 0.
func (r *RNG) SplitN(k int) []*RNG {
	if k < 0 {
		panic("stats: SplitN requires non-negative k")
	}
	if k == 0 {
		return nil
	}
	out := make([]*RNG, k)
	for i := 0; i < k; i++ {
		c := *r
		out[i] = &c
		r.Jump()
	}
	return out
}

// StreamSeed mixes a base seed with a path of identifiers (wafer index,
// row index, chunk number, …) into a new seed via SplitMix64 steps, for
// keyed sub-streams where the stream count is not known up front. The
// mixing is deterministic and avalanching, so adjacent ids give unrelated
// seeds; disjointness of the resulting generators is probabilistic (as
// with Split), which is ample for the statistical workloads here.
func StreamSeed(seed uint64, ids ...uint64) uint64 {
	z := seed
	mix := func(v uint64) {
		z += v + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	mix(0) // decorrelate from the raw seed even with no ids
	for _, id := range ids {
		mix(id)
	}
	return z
}
