package stats

import (
	"errors"
	"math"
)

// Integrate approximates the definite integral of f over [a, b] using
// adaptive Simpson quadrature with absolute tolerance tol (default 1e-10
// when non-positive). It is used by internal/yield to evaluate the Murphy
// yield integral for arbitrary defect-density distributions.
func Integrate(f func(float64) float64, a, b, tol float64) (float64, error) {
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m, fm, whole := simpsonStep(f, a, b, fa, fb)
	v, err := adaptiveSimpson(f, a, b, fa, fb, m, fm, whole, tol, 50)
	if err != nil {
		return 0, err
	}
	return sign * v, nil
}

// simpsonStep returns the midpoint, f(midpoint) and the Simpson estimate
// over [a, b].
func simpsonStep(f func(float64) float64, a, b, fa, fb float64) (m, fm, s float64) {
	m = 0.5 * (a + b)
	fm = f(m)
	s = (b - a) / 6 * (fa + 4*fm + fb)
	return m, fm, s
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fb, m, fm, whole, tol float64, depth int) (float64, error) {
	lm, flm, left := simpsonStep(f, a, m, fa, fm)
	rm, frm, right := simpsonStep(f, m, b, fm, fb)
	delta := left + right - whole
	if math.Abs(delta) <= 15*tol {
		return left + right + delta/15, nil
	}
	if depth <= 0 {
		return 0, errors.New("stats: Integrate failed to converge (recursion limit)")
	}
	lv, err := adaptiveSimpson(f, a, m, fa, fm, lm, flm, left, tol/2, depth-1)
	if err != nil {
		return 0, err
	}
	rv, err := adaptiveSimpson(f, m, b, fm, fb, rm, frm, right, tol/2, depth-1)
	if err != nil {
		return 0, err
	}
	return lv + rv, nil
}

// Trapezoid integrates tabulated samples (xs ascending, same length as ys)
// with the composite trapezoid rule. It returns an error for mismatched or
// too-short inputs or non-increasing x.
func Trapezoid(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Trapezoid sample length mismatch")
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: Trapezoid requires at least two points")
	}
	var sum float64
	for i := 1; i < len(xs); i++ {
		dx := xs[i] - xs[i-1]
		if dx <= 0 {
			return 0, errors.New("stats: Trapezoid requires strictly increasing x")
		}
		sum += dx * 0.5 * (ys[i] + ys[i-1])
	}
	return sum, nil
}
