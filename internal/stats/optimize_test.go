package stats

import (
	"math"
	"testing"
)

func TestMinimizeQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	res, err := Minimize(f, -10, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-3) > 1e-6 {
		t.Fatalf("argmin = %v, want 3", res.X)
	}
	if res.F > 1e-10 {
		t.Fatalf("minimum value = %v, want ~0", res.F)
	}
	if res.Evals <= 0 || res.Evals > 200 {
		t.Fatalf("evals = %d", res.Evals)
	}
}

func TestMinimizeAsymmetric(t *testing.T) {
	// The transistor cost curve shape: 1/(s-100)^1.2 + s ... minimum away
	// from interval center, steep on one side.
	f := func(s float64) float64 { return 1e4/math.Pow(s-100, 1.2) + 0.5*s }
	res, err := Minimize(f, 101, 2000, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against dense grid scan.
	gx, gf := ArgminGrid(f, 101, 2000, 200001)
	if math.Abs(res.X-gx) > 0.05 {
		t.Fatalf("argmin = %v, grid says %v", res.X, gx)
	}
	if res.F > gf+1e-9 {
		t.Fatalf("minimum %v worse than grid minimum %v", res.F, gf)
	}
}

func TestMinimizeAtBoundary(t *testing.T) {
	// Monotone increasing: minimum at left boundary.
	res, err := Minimize(func(x float64) float64 { return x }, 2, 5, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-2) > 1e-3 {
		t.Fatalf("boundary argmin = %v, want ~2", res.X)
	}
}

func TestMinimizeInvalidInterval(t *testing.T) {
	if _, err := Minimize(func(x float64) float64 { return x }, 5, 5, 0); err == nil {
		t.Fatal("accepted empty interval")
	}
	if _, err := Minimize(func(x float64) float64 { return x }, 6, 5, 0); err == nil {
		t.Fatal("accepted inverted interval")
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Fatalf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if root != 0 {
		t.Fatalf("root = %v, want 0", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 0); err == nil {
		t.Fatal("accepted non-bracketing interval")
	}
}

func TestArgminGrid(t *testing.T) {
	x, fx := ArgminGrid(func(x float64) float64 { return math.Abs(x - 0.7) }, 0, 1, 101)
	if math.Abs(x-0.7) > 1e-9 {
		t.Fatalf("grid argmin = %v, want 0.7", x)
	}
	if fx > 1e-9 {
		t.Fatalf("grid min value = %v", fx)
	}
}

func TestArgminGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArgminGrid accepted n < 2")
		}
	}()
	ArgminGrid(func(x float64) float64 { return x }, 0, 1, 1)
}

func TestIntegratePolynomial(t *testing.T) {
	// ∫₀¹ 3x² dx = 1
	v, err := Integrate(func(x float64) float64 { return 3 * x * x }, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-10 {
		t.Fatalf("integral = %v, want 1", v)
	}
}

func TestIntegrateExp(t *testing.T) {
	// ∫₀^∞-ish e^-x dx over [0,50] ≈ 1.
	v, err := Integrate(math.Exp, -1, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-(1-1/math.E)) > 1e-10 {
		t.Fatalf("integral = %v, want %v", v, 1-1/math.E)
	}
}

func TestIntegrateReversedLimits(t *testing.T) {
	fwd, err := Integrate(func(x float64) float64 { return x }, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Integrate(func(x float64) float64 { return x }, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fwd+rev) > 1e-12 {
		t.Fatalf("reversed limits not antisymmetric: %v vs %v", fwd, rev)
	}
}

func TestIntegrateZeroWidth(t *testing.T) {
	v, err := Integrate(math.Exp, 1, 1, 0)
	if err != nil || v != 0 {
		t.Fatalf("zero-width integral = %v, %v", v, err)
	}
}

func TestTrapezoid(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	v, err := Trapezoid(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-4.5) > 1e-12 {
		t.Fatalf("trapezoid = %v, want 4.5", v)
	}
	if _, err := Trapezoid([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("accepted non-increasing x")
	}
	if _, err := Trapezoid([]float64{0}, []float64{1}); err == nil {
		t.Fatal("accepted single point")
	}
}
