package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) out of range: %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 6; k++ {
		if seen[k] < 9000 || seen[k] > 11000 {
			t.Fatalf("Intn(6) bucket %d count %d, want ~10000", k, seen[k])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.Norm(3, 2)
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance = %v, want ~4", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 25, 100} {
		r := NewRNG(13)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.03*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := NewRNG(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 2}, {2, 1}, {5, 0.5}} {
		r := NewRNG(17)
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			v := r.Gamma(tc.shape, tc.scale)
			if v < 0 {
				t.Fatalf("Gamma produced negative value %v", v)
			}
			sum += v
		}
		want := tc.shape * tc.scale
		if got := sum / n; math.Abs(got-want) > 0.05*want+0.01 {
			t.Fatalf("Gamma(%v,%v) sample mean = %v, want ~%v", tc.shape, tc.scale, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := NewRNG(31)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream correlated: %d/100 identical draws", same)
	}
}

// Property: Range always lands inside [lo, hi) for lo < hi.
func TestRangeProperty(t *testing.T) {
	r := NewRNG(37)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi-lo <= 0 || hi-lo > 1e100 {
			return true
		}
		v := r.Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestJumpDeterministicAndDisjoint(t *testing.T) {
	a := NewRNG(101)
	b := NewRNG(101)
	a.Jump()
	b.Jump()
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Jump is not deterministic")
		}
	}
	// The jumped stream must differ from the un-jumped one.
	pre := NewRNG(101)
	post := NewRNG(101)
	post.Jump()
	same := 0
	for i := 0; i < 100; i++ {
		if pre.Uint64() == post.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream tracks the original: %d/100 identical", same)
	}
}

func TestJumpSkipsAheadOfSequentialDraws(t *testing.T) {
	// A jump advances 2^128 steps; drawing a few thousand values from a
	// sibling must not reach the jumped stream's block.
	r := NewRNG(7)
	jumped := NewRNG(7)
	jumped.Jump()
	first := jumped.Uint64()
	for i := 0; i < 10000; i++ {
		if r.Uint64() == first {
			t.Fatal("sequential stream reached the jumped block suspiciously fast")
		}
	}
}

func TestSplitNLayout(t *testing.T) {
	r := NewRNG(55)
	streams := r.SplitN(4)
	if len(streams) != 4 {
		t.Fatalf("streams = %d", len(streams))
	}
	// Stream 0 is the pre-split state; stream i+1 is stream i jumped once.
	ref := NewRNG(55)
	for i, s := range streams {
		c := *ref // compare against an independent copy's draws
		if c.Uint64() != s.Uint64() {
			t.Fatalf("stream %d does not match %d jumps from the seed state", i, i)
		}
		ref.Jump()
	}
	// SplitN is reproducible and depends only on (seed, k).
	again := NewRNG(55).SplitN(4)
	for i := range streams {
		// streams[i] was advanced one draw above; re-derive fresh pairs.
		a, b := again[i], NewRNG(55).SplitN(4)[i]
		for j := 0; j < 20; j++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("SplitN stream %d not reproducible", i)
			}
		}
	}
}

func TestSplitNPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SplitN(-1) did not panic")
		}
	}()
	NewRNG(1).SplitN(-1)
}

func TestSplitNZeroIsNoop(t *testing.T) {
	// k == 0 returns nil and must not advance the parent: a resumed
	// sharded run with no pending shards derives no streams and leaves
	// the walk exactly where it was.
	r := NewRNG(1)
	before := *r
	if got := r.SplitN(0); got != nil {
		t.Fatalf("SplitN(0) = %v, want nil", got)
	}
	if r.s != before.s {
		t.Fatal("SplitN(0) advanced the parent state")
	}
}

func TestSplitNShardCountEdges(t *testing.T) {
	// The sharding path leans on two structural properties at every shard
	// count, including the edges (1, 2, and a large prime that cannot
	// align with any chunk-size power of two): adjacent streams occupy
	// consecutive jump blocks, and the parent ends exactly k jumps past
	// its pre-call state so a later SplitN continues on disjoint blocks.
	for _, k := range []int{1, 2, 1009} {
		r := NewRNG(909)
		streams := r.SplitN(k)
		if len(streams) != k {
			t.Fatalf("k=%d: got %d streams", k, len(streams))
		}
		// Adjacency: stream i+1's state is stream i's state jumped once,
		// so the 2^128 blocks tile the cycle with no gap and no overlap.
		for i := 0; i+1 < k; i++ {
			c := *streams[i]
			c.Jump()
			if c.s != streams[i+1].s {
				t.Fatalf("k=%d: stream %d+1 is not stream %d jumped once", k, i, i)
			}
		}
		// Parent lands one jump past the last stream.
		c := *streams[k-1]
		c.Jump()
		if c.s != r.s {
			t.Fatalf("k=%d: parent is not %d jumps past the seed state", k, k)
		}
		// All k stream states are pairwise distinct (non-overlap at the
		// block level implies distinct block-start states).
		seen := make(map[[4]uint64]int, k)
		for i, s := range streams {
			if j, dup := seen[s.s]; dup {
				t.Fatalf("k=%d: streams %d and %d share a state", k, j, i)
			}
			seen[s.s] = i
		}
	}
}

// corr computes the Pearson correlation of two equal-length sequences.
func corr(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	return cov / math.Sqrt(va*vb)
}

func TestSplitStreamsStatisticallyIndependent(t *testing.T) {
	// The satellite guarantee behind the parallel Monte Carlo engine:
	// sub-streams derived from one seed are mutually uncorrelated. For
	// n = 20000 i.i.d. uniform pairs the sampling distribution of the
	// Pearson r has σ ≈ 1/√n ≈ 0.007, so |r| < 0.035 is a 5σ bound.
	const n = 20000
	const tol = 0.035
	derive := map[string]func() []*RNG{
		"SplitN": func() []*RNG { return NewRNG(2024).SplitN(4) },
		"Split": func() []*RNG {
			r := NewRNG(2024)
			return []*RNG{r.Split(), r.Split(), r.Split(), r.Split()}
		},
		"StreamSeed": func() []*RNG {
			out := make([]*RNG, 4)
			for i := range out {
				out[i] = NewRNG(StreamSeed(2024, uint64(i)))
			}
			return out
		},
	}
	for name, mk := range derive {
		streams := mk()
		seqs := make([][]float64, len(streams))
		for i, s := range streams {
			seqs[i] = make([]float64, n)
			for j := range seqs[i] {
				seqs[i][j] = s.Float64()
			}
		}
		for i := 0; i < len(seqs); i++ {
			for j := i + 1; j < len(seqs); j++ {
				if r := corr(seqs[i], seqs[j]); math.Abs(r) > tol {
					t.Errorf("%s: streams %d,%d correlated: r = %v", name, i, j, r)
				}
			}
		}
	}
}

func TestStreamSeedKeying(t *testing.T) {
	// Distinct id paths give distinct seeds; same path reproduces.
	seen := map[uint64][2]uint64{}
	for w := uint64(0); w < 20; w++ {
		for y := uint64(0); y < 20; y++ {
			s := StreamSeed(9, w, y)
			if prev, dup := seen[s]; dup {
				t.Fatalf("StreamSeed collision: (%d,%d) and (%d,%d)", w, y, prev[0], prev[1])
			}
			seen[s] = [2]uint64{w, y}
			if StreamSeed(9, w, y) != s {
				t.Fatal("StreamSeed not reproducible")
			}
		}
	}
	// The empty path must still decorrelate from the raw seed.
	if StreamSeed(9) == 9 {
		t.Fatal("StreamSeed(seed) returned the seed unmixed")
	}
	// Path structure matters: (1,2) != (2,1).
	if StreamSeed(9, 1, 2) == StreamSeed(9, 2, 1) {
		t.Fatal("StreamSeed ignores id order")
	}
}

func TestSeededMatchesNewRNG(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		v := Seeded(seed)
		p := NewRNG(seed)
		for i := 0; i < 64; i++ {
			if a, b := v.Uint64(), p.Uint64(); a != b {
				t.Fatalf("seed %d draw %d: Seeded %d != NewRNG %d", seed, i, a, b)
			}
		}
	}
}

var seededSink int

func TestSeededZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		r := Seeded(7)
		seededSink += r.Poisson(3)
	})
	if allocs != 0 {
		t.Fatalf("value-typed Seeded stream allocates %v per run, want 0", allocs)
	}
}
