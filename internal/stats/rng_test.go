package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) out of range: %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 6; k++ {
		if seen[k] < 9000 || seen[k] > 11000 {
			t.Fatalf("Intn(6) bucket %d count %d, want ~10000", k, seen[k])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.Norm(3, 2)
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance = %v, want ~4", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 25, 100} {
		r := NewRNG(13)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.03*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := NewRNG(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
}

func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 2}, {2, 1}, {5, 0.5}} {
		r := NewRNG(17)
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			v := r.Gamma(tc.shape, tc.scale)
			if v < 0 {
				t.Fatalf("Gamma produced negative value %v", v)
			}
			sum += v
		}
		want := tc.shape * tc.scale
		if got := sum / n; math.Abs(got-want) > 0.05*want+0.01 {
			t.Fatalf("Gamma(%v,%v) sample mean = %v, want ~%v", tc.shape, tc.scale, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := NewRNG(31)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream correlated: %d/100 identical draws", same)
	}
}

// Property: Range always lands inside [lo, hi) for lo < hi.
func TestRangeProperty(t *testing.T) {
	r := NewRNG(37)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi-lo <= 0 || hi-lo > 1e100 {
			return true
		}
		v := r.Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
