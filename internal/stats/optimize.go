package stats

import (
	"errors"
	"fmt"
	"math"
)

// golden is the inverse golden ratio used by golden-section search.
const golden = 0.6180339887498949

// MinimizeResult reports the location and value of a one-dimensional
// minimum together with the number of objective evaluations spent.
type MinimizeResult struct {
	X     float64
	F     float64
	Evals int
}

// Minimize locates a local minimum of f on [lo, hi] using golden-section
// search refined by parabolic interpolation steps (a simplified Brent
// scheme). tol is the absolute x tolerance; a non-positive tol defaults to
// 1e-9 times the interval width plus machine epsilon guard.
//
// f must be defined over the whole interval. For the unimodal cost curves
// in this repository the result is the global minimum on the interval.
func Minimize(f func(float64) float64, lo, hi, tol float64) (MinimizeResult, error) {
	if !(lo < hi) {
		return MinimizeResult{}, errors.New("stats: Minimize requires lo < hi")
	}
	if tol <= 0 {
		tol = 1e-9 * (hi - lo)
	}
	if tol < 1e-12 {
		tol = 1e-12
	}
	evals := 0
	eval := func(x float64) float64 {
		evals++
		return f(x)
	}

	a, b := lo, hi
	x := a + (1-golden)*(b-a) // current best
	w, v := x, x              // second and third best
	fx := eval(x)
	fw, fv := fx, fx
	d, e := 0.0, 0.0 // step and previous step

	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		tol1 := tol + 1e-12*math.Abs(x)
		if math.Abs(x-m) <= 2*tol1-0.5*(b-a) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Attempt a parabolic fit through x, w, v.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < 2*tol1 || b-u < 2*tol1 {
					d = math.Copysign(tol1, m-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x < m {
				e = b - x
			} else {
				e = a - x
			}
			d = (1 - golden) * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := eval(u)
		if fu <= fx {
			if u < x {
				b = x
			} else {
				a = x
			}
			v, fv = w, fw
			w, fw = x, fx
			x, fx = u, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return MinimizeResult{X: x, F: fx, Evals: evals}, nil
}

// Bisect finds a root of f on [lo, hi] by bisection. f(lo) and f(hi) must
// bracket the root (opposite signs); otherwise an error is returned. tol is
// the absolute x tolerance (default 1e-12 of the interval when
// non-positive).
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if !(lo < hi) {
		return 0, errors.New("stats: Bisect requires lo < hi")
	}
	if tol <= 0 {
		tol = 1e-12 * (hi - lo)
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, errors.New("stats: Bisect interval does not bracket a root")
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (fhi > 0) {
			hi, fhi = mid, fm
		} else {
			lo, flo = mid, fm
		}
	}
	return 0.5 * (lo + hi), nil
}

// ArgminGrid evaluates f on a uniform grid of n points over [lo, hi] and
// returns the grid point with the smallest value. It is the robust
// pre-pass used before Minimize when unimodality is not guaranteed. It
// panics on any error ArgminGridE would report (bad bounds, n < 2, an
// everywhere-NaN objective), which indicate programmer error on the
// internal hot paths that keep using it; user-reachable paths should call
// ArgminGridE instead.
func ArgminGrid(f func(float64) float64, lo, hi float64, n int) (x, fx float64) {
	x, fx, err := ArgminGridE(f, lo, hi, n)
	if err != nil {
		panic(err.Error())
	}
	return x, fx
}

// ArgminGridE is the error-returning form of ArgminGrid. It rejects
// n < 2 and non-finite or inverted bounds instead of panicking, and it
// skips grid points where the objective is NaN (an undefined point must
// never win — or poison — the comparison chain); if the objective is NaN
// on the whole grid an error is returned.
func ArgminGridE(f func(float64) float64, lo, hi float64, n int) (x, fx float64, err error) {
	if n < 2 {
		return 0, 0, fmt.Errorf("stats: ArgminGrid requires n >= 2, got %d", n)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || lo >= hi {
		return 0, 0, fmt.Errorf("stats: ArgminGrid requires finite lo < hi, got [%v, %v]", lo, hi)
	}
	step := (hi - lo) / float64(n-1)
	found := false
	for i := 0; i < n; i++ {
		xi := lo + float64(i)*step
		fi := f(xi)
		if math.IsNaN(fi) {
			continue
		}
		if !found || fi < fx {
			x, fx, found = xi, fi, true
		}
	}
	if !found {
		return 0, 0, errors.New("stats: ArgminGrid objective is NaN over the entire grid")
	}
	return x, fx, nil
}
