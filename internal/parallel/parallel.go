// Package parallel is the repository's deterministic parallel execution
// engine: a bounded worker pool with ForEach/Map/MapReduce primitives,
// context cancellation and first-error propagation.
//
// The package exists to make the Monte Carlo, wafer-map, sweep and layout
// hot paths scale with cores without giving up reproducibility. The
// contract every caller relies on is:
//
//   - Work is partitioned by index (or by fixed-size chunk), never by
//     worker, so the partitioning depends only on the problem size.
//   - Results are written into index-addressed slots and reductions run
//     in index order after the pool drains, so the output is byte-identical
//     for any worker count, including 1.
//   - Randomized work derives one RNG stream per index/chunk from the
//     caller's seed (see stats.RNG.SplitN and stats.StreamSeed), never a
//     shared stream, so scheduling order cannot leak into the numbers.
//
// Worker counts resolve as: explicit positive value → itself; 0 or
// negative → the package default, which starts at runtime.NumCPU() and can
// be overridden globally (e.g. by a CLI -workers flag) via SetDefaultWorkers.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// defaultWorkers holds the global default worker count; 0 means
// runtime.NumCPU() resolved at call time.
var defaultWorkers atomic.Int64

// DefaultWorkers returns the current default worker count: the value set
// by SetDefaultWorkers, or runtime.NumCPU() when unset.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// SetDefaultWorkers overrides the process-wide default worker count used
// when a caller passes workers <= 0. Passing n <= 0 resets to
// runtime.NumCPU(). CLI entry points call this from their -workers flag.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve maps a caller-provided worker count to the effective one:
// positive values pass through, everything else resolves to the default.
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return DefaultWorkers()
}

// panicError carries a recovered worker panic back to the caller's
// goroutine, where it is re-raised so parallel code panics exactly like
// its serial equivalent would.
type panicError struct{ value any }

func (p panicError) Error() string { return fmt.Sprintf("parallel: worker panic: %v", p.value) }

// run executes fn(i) for i in [0, n) on up to `workers` goroutines using an
// atomic work counter, honoring ctx and stopping early on the first error.
// It returns the first error observed (by stop order, not index order).
func run(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	// One span per pooled job (not per item): on an untraced context this
	// is a nil no-op; on a traced one the span's n/workers attributes tell
	// the -trace tree and /debug/trace how the job was partitioned.
	if ctx2, span := obs.StartSpan(ctx, "parallel.run"); span != nil {
		ctx = ctx2
		span.SetAttr("n", strconv.Itoa(n))
		span.SetAttr("workers", strconv.Itoa(workers))
		defer span.End()
	}
	if workers == 1 {
		// Serial fast path: no goroutines, no atomics, same semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		errOnce sync.Once
		first   error
		wg      sync.WaitGroup
	)
	record := func(err error) {
		errOnce.Do(func() { first = err })
		stopped.Store(true)
	}
	worker := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				record(panicError{value: r})
			}
		}()
		for {
			if stopped.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				record(err)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				record(err)
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if pe, ok := first.(panicError); ok {
		panic(pe.value)
	}
	return first
}

// ForEach executes fn(i) for every i in [0, n) on up to `workers`
// goroutines (workers <= 0 uses the package default). The first error
// cancels remaining work and is returned; a worker panic is re-raised on
// the calling goroutine. fn must be safe to call concurrently and should
// write only to index-owned state if determinism matters.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	return run(ctx, n, workers, fn)
}

// Chunks returns the number of fixed-size chunks covering n items, which
// depends only on (n, chunkSize) — never on the worker count. Callers use
// it to pre-derive one RNG stream per chunk.
func Chunks(n, chunkSize int) int {
	if n <= 0 || chunkSize <= 0 {
		return 0
	}
	return (n + chunkSize - 1) / chunkSize
}

// ForEachChunk partitions [0, n) into fixed chunks of chunkSize items and
// executes fn(chunk, lo, hi) for each half-open range [lo, hi). Chunk
// boundaries depend only on (n, chunkSize), so per-chunk RNG streams give
// results independent of the worker count. Each chunk's queue-wait
// (submission to pickup) and execution time feed the package's telemetry
// histograms.
func ForEachChunk(ctx context.Context, n, chunkSize, workers int, fn func(chunk, lo, hi int) error) error {
	return forEachChunkGrouped(ctx, n, chunkSize, workers, 1, nil, fn)
}

// ForEachChunkGrouped is ForEachChunk with explicit task granularity: one
// scheduled task covers `group` consecutive unit chunks (group <= 0 means
// 1). fn still receives every unit chunk (c, lo, hi) exactly once, in
// ascending order within a task, so unit-chunk-keyed RNG streams and
// index-addressed writes are byte-identical for EVERY group value — the
// group only decides which goroutine runs a chunk, never what the chunk
// computes. Determinism regression tests sweep group over {1, default,
// huge} on exactly this guarantee.
func ForEachChunkGrouped(ctx context.Context, n, chunkSize, workers, group int, fn func(chunk, lo, hi int) error) error {
	return forEachChunkGrouped(ctx, n, chunkSize, workers, group, nil, fn)
}

// ForEachChunkTuned is ForEachChunk with adaptive task granularity: the
// tuner picks how many unit chunks one scheduled task covers (from its
// measured per-chunk execution history) and is fed this job's timings in
// return. A nil tuner degrades to ForEachChunk. The chosen group size is
// recorded on the job's span ("parallel.chunks", attributes chunk_size /
// group / chunks), so tuning decisions are observable per trace.
func ForEachChunkTuned(ctx context.Context, n, chunkSize, workers int, t *ChunkTuner, fn func(chunk, lo, hi int) error) error {
	group := 1
	if t != nil {
		group = t.Group(Chunks(n, chunkSize), workers)
	}
	return forEachChunkGrouped(ctx, n, chunkSize, workers, group, t, fn)
}

// forEachChunkGrouped is the shared chunked executor: it schedules
// Chunks(n, chunkSize) unit chunks in tasks of `group`, observes one
// queue-wait/exec histogram sample per task (amortized over the group, so
// telemetry cost cannot grow with item count), and feeds the tuner when
// present.
func forEachChunkGrouped(ctx context.Context, n, chunkSize, workers, group int, t *ChunkTuner, fn func(chunk, lo, hi int) error) error {
	if chunkSize <= 0 {
		return fmt.Errorf("parallel: chunk size must be positive, got %d", chunkSize)
	}
	chunks := Chunks(n, chunkSize)
	if group < 1 {
		group = 1
	}
	tasks := Chunks(chunks, group)
	if ctx2, span := obs.StartSpan(ctx, "parallel.chunks"); span != nil {
		ctx = ctx2
		span.SetAttr("chunk_size", strconv.Itoa(chunkSize))
		span.SetAttr("group", strconv.Itoa(group))
		span.SetAttr("chunks", strconv.Itoa(chunks))
		defer span.End()
	}
	submitted := time.Now()
	return run(ctx, tasks, workers, func(task int) error {
		picked := time.Now()
		chunkWaitSeconds.Observe(picked.Sub(submitted).Seconds())
		cLo := task * group
		cHi := cLo + group
		if cHi > chunks {
			cHi = chunks
		}
		for c := cLo; c < cHi; c++ {
			lo := c * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			if err := fn(c, lo, hi); err != nil {
				chunkExecSeconds.Observe(time.Since(picked).Seconds())
				return err
			}
		}
		exec := time.Since(picked).Seconds()
		chunkExecSeconds.Observe(exec)
		if t != nil {
			t.note(cHi-cLo, exec)
		}
		return nil
	})
}

// Map evaluates fn(i) for i in [0, n) in parallel and returns the results
// in index order, so the output slice is identical for any worker count.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := run(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapAll evaluates fn(i) for every i in [0, n) in parallel with per-item
// error isolation: unlike Map, one item's failure does not cancel the
// remaining items — it lands in errs[i] and the rest of the batch keeps
// going. Only a dead context stops the batch early (returned as stop, with
// out and errs nil); a worker panic is re-raised. Results and errors are
// written into index-addressed slots, so both slices are identical for any
// worker count. It is the engine behind batch serving, where scenario i
// being out of domain must not poison scenarios j != i.
func MapAll[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) (out []T, errs []error, stop error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out = make([]T, n)
	errs = make([]error, n)
	stop = run(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if cerr := ctx.Err(); cerr != nil {
			// The context died mid-item: abort the batch rather than
			// recording a cancellation as an item-level verdict.
			return cerr
		}
		if err != nil {
			errs[i] = err
			return nil
		}
		out[i] = v
		return nil
	})
	if stop != nil {
		return nil, nil, stop
	}
	return out, errs, nil
}

// MapAllTuned is MapAll with adaptive scheduling granularity: items are
// executed in tuner-sized groups of consecutive indices instead of one
// scheduled task per item, which is what lets a 1024-item batch of
// microsecond evaluations stop paying per-item pickup overhead. Error
// isolation, index-addressed results and worker-count independence are
// exactly MapAll's; a nil tuner schedules item by item.
func MapAllTuned[T any](ctx context.Context, n, workers int, t *ChunkTuner, fn func(i int) (T, error)) (out []T, errs []error, stop error) {
	out = make([]T, n)
	errs = make([]error, n)
	if stop = MapAllInto(ctx, out, errs, workers, t, fn); stop != nil {
		return nil, nil, stop
	}
	return out, errs, nil
}

// MapAllInto is MapAllTuned writing into caller-owned buffers: out and
// errs must have equal length, and every slot is overwritten (stale
// contents from a previous use cannot leak through). It exists for
// arena-style batch serving, where the result buffers are pooled across
// requests instead of allocated per call — steady state it performs no
// per-item allocation of its own. On a dead context it returns stop with
// the buffers' contents unspecified.
func MapAllInto[T any](ctx context.Context, out []T, errs []error, workers int, t *ChunkTuner, fn func(i int) (T, error)) (stop error) {
	if len(out) != len(errs) {
		return fmt.Errorf("parallel: MapAllInto buffers disagree: %d results vs %d errors", len(out), len(errs))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(out)
	return forEachChunkGrouped(ctx, n, 1, workers, groupFor(t, n, workers), t, func(_, lo, _ int) error {
		i := lo
		v, err := fn(i)
		if cerr := ctx.Err(); cerr != nil {
			// The context died mid-item: abort the batch rather than
			// recording a cancellation as an item-level verdict.
			return cerr
		}
		if err != nil {
			var zero T
			out[i] = zero
			errs[i] = err
			return nil
		}
		out[i] = v
		errs[i] = nil
		return nil
	})
}

// groupFor resolves a tuner's group choice, treating nil as group 1.
func groupFor(t *ChunkTuner, chunks, workers int) int {
	if t == nil {
		return 1
	}
	return t.Group(chunks, workers)
}

// MapReduce evaluates fn(i) in parallel and folds the results with reduce
// strictly in index order: acc = reduce(acc, fn(0)), then fn(1), … — so
// non-associative or floating-point reductions are still deterministic.
func MapReduce[T, R any](ctx context.Context, n, workers int, zero R, fn func(i int) (T, error), reduce func(acc R, v T) R) (R, error) {
	vals, err := Map(ctx, n, workers, fn)
	if err != nil {
		var r R
		return r, err
	}
	acc := zero
	for _, v := range vals {
		acc = reduce(acc, v)
	}
	return acc, nil
}

// Do runs the given functions concurrently (bounded by the default worker
// count) and returns the first error. It is the two-or-three-task
// convenience used by e.g. CrossoverVolume's endpoint evaluations.
func Do(ctx context.Context, fns ...func() error) error {
	return run(ctx, len(fns), 0, func(i int) error { return fns[i]() })
}
