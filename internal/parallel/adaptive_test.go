package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestForEachChunkGroupedVisitsEveryChunkOnce(t *testing.T) {
	for _, tc := range []struct{ n, chunkSize, workers, group int }{
		{100, 7, 1, 1},
		{100, 7, 4, 3},
		{100, 7, 4, 1 << 20}, // group far beyond the chunk count
		{100, 7, 2, 0},       // non-positive group means 1
		{1, 7, 4, 5},
		{4096, 1, 8, 64},
	} {
		chunks := Chunks(tc.n, tc.chunkSize)
		visits := make([]atomic.Int64, chunks)
		covered := make([]atomic.Int64, tc.n)
		err := ForEachChunkGrouped(context.Background(), tc.n, tc.chunkSize, tc.workers, tc.group, func(c, lo, hi int) error {
			visits[c].Add(1)
			if lo != c*tc.chunkSize || hi <= lo || hi > tc.n {
				return fmt.Errorf("chunk %d got bounds [%d, %d)", c, lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for c := range visits {
			if v := visits[c].Load(); v != 1 {
				t.Fatalf("%+v: chunk %d visited %d times", tc, c, v)
			}
		}
		for i := range covered {
			if v := covered[i].Load(); v != 1 {
				t.Fatalf("%+v: index %d covered %d times", tc, i, v)
			}
		}
	}
}

// The grouped scheduler's core guarantee: group size changes which
// goroutine runs a chunk, never what the chunk computes. Index-addressed
// output must be byte-identical across workers × group sizes.
func TestForEachChunkGroupedDeterministicAcrossGroups(t *testing.T) {
	const n, chunkSize = 1000, 16
	eval := func(workers, group int) []float64 {
		out := make([]float64, n)
		err := ForEachChunkGrouped(context.Background(), n, chunkSize, workers, group, func(c, lo, hi int) error {
			acc := float64(c)
			for i := lo; i < hi; i++ {
				acc = acc*1.0000001 + float64(i)
				out[i] = acc
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := eval(1, 1)
	for _, workers := range []int{1, 2, 4} {
		for _, group := range []int{1, 4, 1 << 20} {
			got := eval(workers, group)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d group=%d: out[%d] = %v, want %v", workers, group, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestForEachChunkGroupedStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEachChunkGrouped(context.Background(), 100, 5, 2, 4, func(c, lo, hi int) error {
		if c == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestChunkTunerGrouping(t *testing.T) {
	var tn ChunkTuner
	// Cold tuner with a cold histogram may seed from process-wide data;
	// whatever it returns must be a sane group for the job shape.
	if g := tn.Group(100, 4); g < 1 || g > 100/(4*tunerBalance) && g != 1 {
		t.Fatalf("cold group = %d", g)
	}
	// Heavy chunks (10ms each): no grouping beyond 1.
	tn.note(1, 10e-3)
	if g := tn.Group(1000, 1); g != 1 {
		t.Fatalf("heavy chunks grouped to %d, want 1", g)
	}
	// Light chunks (1µs each): target/per = 500, capped by load balance.
	var light ChunkTuner
	light.note(1000, 1e-3)
	if per := light.PerUnitSeconds(); per <= 0 {
		t.Fatalf("per-unit estimate = %v", per)
	}
	g := light.Group(100000, 2)
	want := 500 // tunerTargetSeconds / 1µs
	if g != want {
		t.Fatalf("light group = %d, want %d", g, want)
	}
	// Small jobs stay balanced: never fewer than tunerBalance tasks/worker.
	if g := light.Group(64, 2); g != 64/(2*tunerBalance) {
		t.Fatalf("balanced group = %d, want %d", g, 64/(2*tunerBalance))
	}
	// Single chunk: nothing to group.
	if g := light.Group(1, 8); g != 1 {
		t.Fatalf("single-chunk group = %d", g)
	}
}

func TestChunkTunerEWMAConverges(t *testing.T) {
	var tn ChunkTuner
	tn.note(1, 1e-6)
	for i := 0; i < 200; i++ {
		tn.note(1, 1e-3)
	}
	per := tn.PerUnitSeconds()
	if per < 0.9e-3 || per > 1.1e-3 {
		t.Fatalf("EWMA did not converge to the new regime: %v", per)
	}
}

func TestForEachChunkTunedRecordsSpanAttributes(t *testing.T) {
	tracer := obs.NewTracer(4, nil)
	ctx, root := tracer.StartRoot(context.Background(), "", "test.root")
	var tn ChunkTuner
	tn.note(1, 10e-3) // heavy chunks: expect group 1
	err := ForEachChunkTuned(ctx, 64, 8, 2, &tn, func(c, lo, hi int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	rec, ok := tracer.Lookup(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	found := false
	for _, sp := range rec.Spans {
		if sp.Name != "parallel.chunks" {
			continue
		}
		found = true
		want := map[string]string{"chunk_size": "8", "group": "1", "chunks": "8"}
		for k, v := range want {
			if sp.Attrs[k] != v {
				t.Fatalf("span attr %s = %q, want %q (attrs: %v)", k, sp.Attrs[k], v, sp.Attrs)
			}
		}
	}
	if !found {
		t.Fatal("no parallel.chunks span recorded")
	}
}

func TestMapAllTunedMatchesMapAll(t *testing.T) {
	const n = 500
	boom := errors.New("bad item")
	fn := func(i int) (int, error) {
		if i%17 == 0 {
			return 0, boom
		}
		return i * i, nil
	}
	refOut, refErrs, stop := MapAll(context.Background(), n, 2, fn)
	if stop != nil {
		t.Fatal(stop)
	}
	var tn ChunkTuner
	tn.note(100, 1e-4) // light items: force real grouping
	for _, workers := range []int{1, 2, 4} {
		out, errs, stop := MapAllTuned(context.Background(), n, workers, &tn, fn)
		if stop != nil {
			t.Fatal(stop)
		}
		for i := range refOut {
			if out[i] != refOut[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], refOut[i])
			}
			if (errs[i] == nil) != (refErrs[i] == nil) {
				t.Fatalf("workers=%d: errs[%d] = %v, want %v", workers, i, errs[i], refErrs[i])
			}
		}
	}
}

func TestMapAllTunedContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, errs, stop := MapAllTuned(ctx, 100, 2, nil, func(i int) (int, error) { return i, nil })
	if stop == nil || out != nil || errs != nil {
		t.Fatalf("dead context: out=%v errs=%v stop=%v", out, errs, stop)
	}
}
