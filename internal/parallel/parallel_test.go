package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestDefaultWorkersResolution(t *testing.T) {
	defer SetDefaultWorkers(0)
	if DefaultWorkers() != runtime.NumCPU() {
		t.Fatalf("default workers = %d, want NumCPU = %d", DefaultWorkers(), runtime.NumCPU())
	}
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Fatalf("after SetDefaultWorkers(3): %d", DefaultWorkers())
	}
	if Resolve(7) != 7 {
		t.Fatalf("Resolve(7) = %d", Resolve(7))
	}
	if Resolve(0) != 3 {
		t.Fatalf("Resolve(0) = %d, want 3", Resolve(0))
	}
	if Resolve(-1) != 3 {
		t.Fatalf("Resolve(-1) = %d, want 3", Resolve(-1))
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() != runtime.NumCPU() {
		t.Fatalf("reset failed: %d", DefaultWorkers())
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		const n = 1000
		counts := make([]atomic.Int64, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndNilContext(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatalf("n=0 returned %v", err)
	}
	if err := ForEach(nil, 10, 2, func(int) error { return nil }); err != nil {
		t.Fatalf("nil context returned %v", err)
	}
}

func TestForEachFirstErrorPropagates(t *testing.T) {
	want := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		err := ForEach(context.Background(), 100000, workers, func(i int) error {
			calls.Add(1)
			if i == 17 {
				return want
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, want)
		}
		// Early stop: nowhere near all 100k indices should have run.
		if c := calls.Load(); c > 50000 {
			t.Fatalf("workers=%d: %d calls after early error", workers, c)
		}
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- ForEach(ctx, 1<<30, 2, func(i int) error {
			if calls.Add(1) == 100 {
				cancel()
			}
			time.Sleep(10 * time.Microsecond)
			return nil
		})
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the pool")
	}
}

func TestForEachPanicRepropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "kaboom" {
					t.Fatalf("workers=%d: recovered %v, want kaboom", workers, r)
				}
			}()
			_ = ForEach(context.Background(), 64, workers, func(i int) error {
				if i == 13 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatalf("workers=%d: no panic surfaced", workers)
		}()
	}
}

func TestChunksArithmetic(t *testing.T) {
	cases := []struct{ n, size, want int }{
		{0, 10, 0}, {1, 10, 1}, {10, 10, 1}, {11, 10, 2}, {100, 7, 15}, {-5, 10, 0}, {10, 0, 0},
	}
	for _, c := range cases {
		if got := Chunks(c.n, c.size); got != c.want {
			t.Fatalf("Chunks(%d, %d) = %d, want %d", c.n, c.size, got, c.want)
		}
	}
}

func TestForEachChunkCoversRangeExactly(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n, size = 1003, 64
		seen := make([]atomic.Int64, n)
		err := ForEachChunk(context.Background(), n, size, workers, func(chunk, lo, hi int) error {
			if lo != chunk*size {
				return fmt.Errorf("chunk %d: lo = %d", chunk, lo)
			}
			if hi-lo > size || hi > n {
				return fmt.Errorf("chunk %d: bad range [%d, %d)", chunk, lo, hi)
			}
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestForEachChunkRejectsBadChunkSize(t *testing.T) {
	if err := ForEachChunk(context.Background(), 10, 0, 1, func(int, int, int) error { return nil }); err == nil {
		t.Fatal("accepted chunk size 0")
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	const n = 500
	var want []int
	for i := 0; i < n; i++ {
		want = append(want, i*i)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := Map(context.Background(), n, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrorDropsResults(t *testing.T) {
	want := errors.New("nope")
	got, err := Map(context.Background(), 100, 4, func(i int) (int, error) {
		if i == 50 {
			return 0, want
		}
		return i, nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	if got != nil {
		t.Fatal("results returned alongside error")
	}
}

func TestMapReduceDeterministicOrder(t *testing.T) {
	// Floating-point summation is order-sensitive; MapReduce guarantees
	// index-order folding, so every worker count produces the same bits.
	const n = 2000
	ref := 0.0
	for i := 0; i < n; i++ {
		ref += 1.0 / float64(i+1)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := MapReduce(context.Background(), n, workers, 0.0,
			func(i int) (float64, error) { return 1.0 / float64(i+1), nil },
			func(acc, v float64) float64 { return acc + v },
		)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: sum = %x, want %x", workers, got, ref)
		}
	}
}

func TestDoRunsAllAndPropagatesError(t *testing.T) {
	var a, b atomic.Bool
	if err := Do(context.Background(),
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	); err != nil {
		t.Fatal(err)
	}
	if !a.Load() || !b.Load() {
		t.Fatal("not all funcs ran")
	}
	want := errors.New("second failed")
	if err := Do(context.Background(),
		func() error { return nil },
		func() error { return want },
	); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

// TestMapAllIsolatesItemErrors: a failing item must not cancel its
// neighbours; results and errors stay index-addressed for any worker count.
func TestMapAllIsolatesItemErrors(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 64
			out, errs, stop := MapAll(context.Background(), n, workers, func(i int) (int, error) {
				if i%5 == 0 {
					return 0, fmt.Errorf("item %d: %w", i, boom)
				}
				return i * i, nil
			})
			if stop != nil {
				t.Fatalf("stop = %v, want nil", stop)
			}
			for i := 0; i < n; i++ {
				if i%5 == 0 {
					if !errors.Is(errs[i], boom) {
						t.Fatalf("errs[%d] = %v, want boom", i, errs[i])
					}
					continue
				}
				if errs[i] != nil {
					t.Fatalf("errs[%d] = %v, want nil", i, errs[i])
				}
				if out[i] != i*i {
					t.Fatalf("out[%d] = %d, want %d", i, out[i], i*i)
				}
			}
		})
	}
}

// TestMapAllDeterministicAcrossWorkers: identical slices for 1, 2 and 4
// workers — the batch-serving ordering contract.
func TestMapAllDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]float64, []error) {
		out, errs, stop := MapAll(context.Background(), 100, workers, func(i int) (float64, error) {
			if i == 17 || i == 63 {
				return 0, errors.New("bad point")
			}
			return float64(i) * 1.5, nil
		})
		if stop != nil {
			t.Fatalf("stop = %v", stop)
		}
		return out, errs
	}
	base, baseErrs := run(1)
	for _, workers := range []int{2, 4} {
		out, errs := run(workers)
		for i := range base {
			if out[i] != base[i] || (errs[i] == nil) != (baseErrs[i] == nil) {
				t.Fatalf("workers=%d diverges at index %d", workers, i)
			}
		}
	}
}

// TestMapAllContextCancellationAborts: a dead context stops the batch and
// is returned as stop, with nil slices.
func TestMapAllContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, errs, stop := MapAll(ctx, 32, 4, func(i int) (int, error) { return i, nil })
	if !errors.Is(stop, context.Canceled) {
		t.Fatalf("stop = %v, want context.Canceled", stop)
	}
	if out != nil || errs != nil {
		t.Fatalf("out/errs = %v/%v, want nil on abort", out, errs)
	}
}

// TestMapAllMidItemCancellation: a context that dies while items are being
// evaluated aborts instead of recording the cancellation per item.
func TestMapAllMidItemCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var evaluated atomic.Int64
	_, _, stop := MapAll(ctx, 1000, 4, func(i int) (int, error) {
		if evaluated.Add(1) == 10 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(stop, context.Canceled) {
		t.Fatalf("stop = %v, want context.Canceled", stop)
	}
	if n := evaluated.Load(); n >= 1000 {
		t.Fatalf("all %d items evaluated despite cancellation", n)
	}
}
