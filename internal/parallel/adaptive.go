package parallel

import (
	"math"
	"sync/atomic"
)

// Adaptive chunk-group sizing.
//
// The engine's determinism contract pins the *unit* chunk size: RNG
// sub-streams are derived per unit chunk, so unit boundaries can never
// move without changing the numbers. What CAN move freely is how many
// unit chunks one scheduled task covers — grouping only changes which
// goroutine executes a chunk, never which stream it draws from or which
// index-addressed slot it writes. The ChunkTuner exploits that freedom:
// it watches the measured per-chunk execution times (the same
// measurements that feed the package's chunk exec histogram) and sizes
// task groups so each scheduled task runs for roughly tunerTargetSeconds
// — long enough to amortize pickup and telemetry overhead on µs-scale
// chunks, short enough to keep the pool load-balanced and cancellation
// prompt.

const (
	// tunerTargetSeconds is the execution time one scheduled task aims
	// for. 500µs amortizes the ~100ns pickup cost 5000× while keeping
	// worst-case cancellation latency well under a millisecond of work.
	tunerTargetSeconds = 500e-6
	// tunerAlpha is the EWMA weight of the newest per-unit measurement.
	tunerAlpha = 0.2
	// tunerBalance is the minimum number of tasks per worker the tuner
	// preserves, so one straggler chunk cannot serialize the tail of a
	// job that was grouped too coarsely.
	tunerBalance = 4
)

// ChunkTuner adapts the number of unit chunks per scheduled task from
// measured execution times. The zero value is ready to use and starts
// conservative (group 1, seeded from the package-wide chunk exec
// histogram when it has data); it converges over repeated jobs, which is
// the serving pattern — the same sweep or batch shape arriving over and
// over. One tuner should serve one workload family (sweep points, Monte
// Carlo chunks, batch items), because the estimate is per unit chunk and
// unit weights differ wildly across families. All methods are safe for
// concurrent use.
type ChunkTuner struct {
	perUnit atomic.Uint64 // float64 bits: EWMA of seconds per unit chunk; 0 = no data
}

// Observe folds one task's measured execution time over `units` unit
// chunks into the estimate. The scheduler calls it automatically; callers
// may also use it to pre-seed a tuner from prior measurements (tests use
// it to force a known grouping regime).
func (t *ChunkTuner) Observe(units int, seconds float64) { t.note(units, seconds) }

// note folds one task's measured execution time over `units` unit chunks
// into the estimate.
func (t *ChunkTuner) note(units int, seconds float64) {
	if units <= 0 || seconds <= 0 {
		return
	}
	per := seconds / float64(units)
	for {
		old := t.perUnit.Load()
		next := per
		if old != 0 {
			prev := math.Float64frombits(old)
			next = prev + tunerAlpha*(per-prev)
		}
		if t.perUnit.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Reset discards the estimate, returning the tuner to its cold state.
func (t *ChunkTuner) Reset() { t.perUnit.Store(0) }

// PerUnitSeconds returns the current per-unit-chunk execution estimate in
// seconds, or 0 when the tuner has no data yet.
func (t *ChunkTuner) PerUnitSeconds() float64 {
	if bits := t.perUnit.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return 0
}

// Group returns the number of unit chunks one scheduled task should
// cover for a job of `chunks` unit chunks on `workers` workers
// (workers <= 0 resolves to the package default). With no data — neither
// tuner history nor histogram observations — it returns 1, the exact
// historical scheduling.
func (t *ChunkTuner) Group(chunks, workers int) int {
	if chunks <= 1 {
		return 1
	}
	workers = Resolve(workers)
	per := t.PerUnitSeconds()
	if per == 0 {
		// Cold tuner: seed from the package-wide exec histogram. It mixes
		// unit weights across workload families, so it is only a starting
		// point; the EWMA takes over after the first task completes.
		per = chunkExecSeconds.Mean()
	}
	g := 1
	if per > 0 {
		if est := tunerTargetSeconds / per; est > 1 {
			if est > float64(chunks) {
				g = chunks
			} else {
				g = int(est)
			}
		}
	}
	// Preserve enough tasks for the pool to balance stragglers.
	if cap := chunks / (workers * tunerBalance); g > cap {
		g = cap
	}
	if g < 1 {
		g = 1
	}
	return g
}
