package parallel

import (
	"repro/internal/obs"
)

// The pool's telemetry instruments are package-level: every pool user in
// the process (sweeps, Monte Carlo, batch fan-out, wafer maps) feeds the
// same two histograms, and scrapers attach them to their registry via
// the accessors below (obs.Histogram is registry-independent by design).
//
//   - chunk queue-wait: submission of the chunked job to the moment a
//     worker picks the chunk up. Rising wait with flat exec means the
//     pool is starved for workers, not that chunks got heavier.
//   - chunk execution: the fn(chunk) call itself.
//
// Observation happens once per chunk, not per item, so the cost is
// amortized over chunkSize items and cannot perturb the engine's
// determinism contract (timing is recorded, never used for scheduling).
var (
	chunkWaitSeconds = obs.NewHistogram(obs.DurationBuckets)
	chunkExecSeconds = obs.NewHistogram(obs.DurationBuckets)
)

// ChunkWaitSeconds returns the process-wide chunk queue-wait histogram.
func ChunkWaitSeconds() *obs.Histogram { return chunkWaitSeconds }

// ChunkExecSeconds returns the process-wide chunk execution-time
// histogram.
func ChunkExecSeconds() *obs.Histogram { return chunkExecSeconds }
