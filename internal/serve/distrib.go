package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/mcjob"
)

// This file is the coordinator side of the distributed-job wire
// protocol. A peer replica's worker loop drives three endpoints:
//
//	GET  /v1/jobs/open           — running distributed jobs with grantable shards
//	POST /v1/jobs/{id}/lease     — renew the owner's leases, acquire up to max more
//	POST /v1/jobs/{id}/partials  — upload one computed shard's chunk Partials
//
// Every shard's partials are deterministic functions of the job spec,
// so the protocol needs no exactly-once delivery: expired leases are
// re-granted, duplicate uploads are refused idempotently, and the
// coordinator's canonical-order fold makes the merged result
// bit-identical to a single-host run regardless of who computed what.

// maxPartialsBodyBytes caps a shard-partial upload. One chunk Partial
// is ~100 bytes of JSON; 64 MiB covers ~650k chunks per shard, far past
// any plan the job layer admits at default shard counts.
const maxPartialsBodyBytes int64 = 64 << 20

// openJobJSON is one entry of the GET /v1/jobs/open listing: enough for
// a worker to rebuild the kernel (Spec is the original jobRequest) and
// decide whether leasing is worthwhile.
type openJobJSON struct {
	ID             string          `json:"id"`
	Kind           string          `json:"kind"`
	LeaseTTLMS     int64           `json:"lease_ttl_ms"`
	PendingShards  int             `json:"pending_shards"`
	LeasableShards int             `json:"leasable_shards"`
	Spec           json.RawMessage `json:"spec"`
}

type openJobsResponse struct {
	Jobs []openJobJSON `json:"jobs"`
}

// leaseRequest is the POST /v1/jobs/{id}/lease body. Max 0 is a pure
// renewal heartbeat.
type leaseRequest struct {
	Owner string `json:"owner"`
	Max   int    `json:"max,omitempty"`
}

type leaseResponse struct {
	Job     string        `json:"job"`
	State   string        `json:"state"`
	TTLMS   int64         `json:"ttl_ms"`
	Renewed int           `json:"renewed"`
	Leases  []mcjob.Lease `json:"leases,omitempty"`
}

// partialsRequest is the POST /v1/jobs/{id}/partials body: one computed
// shard's per-chunk tallies in chunk order, using the checkpoint log's
// compact Partial wire type.
type partialsRequest struct {
	Owner   string          `json:"owner"`
	Shard   int             `json:"shard"`
	Seconds float64         `json:"seconds,omitempty"`
	Chunks  []mcjob.Partial `json:"chunks"`
}

type partialsResponse struct {
	Job       string `json:"job"`
	Shard     int    `json:"shard"`
	Accepted  bool   `json:"accepted"`
	Duplicate bool   `json:"duplicate"`
	State     string `json:"state"`
}

// handleJobsOpen lists running distributed jobs that currently have
// grantable shards, in submission order.
func (s *Server) handleJobsOpen(w http.ResponseWriter, r *http.Request) (any, error) {
	resp := openJobsResponse{Jobs: []openJobJSON{}}
	s.jobs.mu.Lock()
	ids := append([]string(nil), s.jobs.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.jobs.mu.Unlock()
	for _, j := range jobs {
		if j.coord == nil || j.terminal() {
			continue
		}
		leasable := j.coord.Leasable()
		if leasable == 0 {
			continue
		}
		resp.Jobs = append(resp.Jobs, openJobJSON{
			ID: j.id, Kind: j.kind,
			LeaseTTLMS:     j.coord.TTL().Milliseconds(),
			PendingShards:  j.coord.Pending(),
			LeasableShards: leasable,
			Spec:           j.specJSON,
		})
	}
	return resp, nil
}

// distributedJob resolves {id} to a running distributed job, mapping
// the failure modes to the API's error codes.
func (s *Server) distributedJob(r *http.Request) (*job, error) {
	j := s.jobs.get(trimmedPathValue(r, "id"))
	if j == nil {
		return nil, jobNotFound(r)
	}
	if j.coord == nil {
		return nil, &apiError{status: http.StatusConflict, code: "job_not_distributed",
			err: fmt.Errorf("job %s runs without a shard-lease coordinator", j.id)}
	}
	return j, nil
}

// handleJobLease renews every lease the owner already holds, then
// grants up to Max additional shards. A terminal job answers with zero
// leases and its state, which tells the worker to move on.
func (s *Server) handleJobLease(w http.ResponseWriter, r *http.Request) (any, error) {
	req, err := decodeJSON[leaseRequest](r)
	if err != nil {
		return nil, err
	}
	if req.Owner == "" {
		return nil, badRequest(fmt.Errorf("lease request must name its owner"))
	}
	if req.Max < 0 || req.Max > 1<<20 {
		return nil, badRequest(fmt.Errorf("lease max must be in [0, %d], got %d", 1<<20, req.Max))
	}
	j, err := s.distributedJob(r)
	if err != nil {
		return nil, err
	}
	renewed := j.coord.Renew(req.Owner)
	if renewed > 0 {
		s.metrics.jobLeasesTotal.With("renewed").Inc()
	}
	leases := j.coord.Acquire(req.Owner, req.Max)
	for range leases {
		s.metrics.jobLeasesTotal.With("granted").Inc()
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	return leaseResponse{
		Job: j.id, State: state,
		TTLMS:   j.coord.TTL().Milliseconds(),
		Renewed: renewed,
		Leases:  leases,
	}, nil
}

// handleJobPartials folds one uploaded shard into the job's canonical
// merge. Idempotent: re-uploading a merged shard answers
// duplicate=true with a 200, so worker retries and zombie workers whose
// leases were reclaimed are harmless. Geometry mismatches (wrong chunk
// count or per-chunk trial tallies) are 400s — they mean the worker
// built a different plan than the coordinator.
func (s *Server) handleJobPartials(w http.ResponseWriter, r *http.Request) (any, error) {
	req, err := decodeJSON[partialsRequest](r)
	if err != nil {
		return nil, err
	}
	j, err := s.distributedJob(r)
	if err != nil {
		return nil, err
	}
	accepted, err := j.coord.Submit(req.Owner, req.Shard, req.Chunks, req.Seconds)
	if err != nil {
		s.metrics.jobPartialsTotal.With("rejected").Inc()
		if errors.Is(err, mcjob.ErrBadSubmission) {
			return nil, badRequest(err)
		}
		return nil, err
	}
	if accepted {
		s.metrics.jobPartialsTotal.With("accepted").Inc()
	} else {
		s.metrics.jobPartialsTotal.With("duplicate").Inc()
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	return partialsResponse{
		Job: j.id, Shard: req.Shard,
		Accepted:  accepted,
		Duplicate: !accepted,
		State:     state,
	}, nil
}
