package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitForJob polls the status endpoint until the job leaves "running" or
// the deadline passes, and returns the final status body.
func waitForJob(t *testing.T, s *Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, _, body := do(t, s, "GET", "/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("status poll = %d, body %v", code, body)
		}
		if st, _ := body["state"].(string); st != "running" {
			return body
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 30s", id)
	return nil
}

func TestJobLifecycleDefect(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := `{"kind":"defect","trials":200000,"shards":4,"seed":7,"defect":{"lambda":1.3}}`

	code, _, body := do(t, s, "POST", "/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202 (body %v)", code, body)
	}
	id, _ := body["id"].(string)
	if len(id) != 16 {
		t.Fatalf("job id = %q, want 16 hex chars", id)
	}
	if body["kind"] != "defect" || body["trials"] != float64(200000) {
		t.Fatalf("submit echo = %v", body)
	}

	final := waitForJob(t, s, id)
	if final["state"] != "done" {
		t.Fatalf("final state = %v (%v)", final["state"], final["error"])
	}
	if final["shards_done"] != float64(4) || final["trials_done"] != float64(200000) {
		t.Fatalf("progress in final status = %v", final)
	}
	if final["result_url"] != "/v1/jobs/"+id+"/result" {
		t.Fatalf("result_url = %v", final["result_url"])
	}

	rcode, _, raw := rawDo(t, s, "GET", "/v1/jobs/"+id+"/result", "")
	if rcode != http.StatusOK {
		t.Fatalf("result = %d: %s", rcode, raw)
	}
	var env struct {
		ID     string `json:"id"`
		Kind   string `json:"kind"`
		Result struct {
			Trials int64              `json:"trials"`
			Counts map[string]int64   `json:"counts"`
			Values map[string]float64 `json:"values"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("result body: %v", err)
	}
	if env.ID != id || env.Kind != "defect" || env.Result.Trials != 200000 {
		t.Fatalf("result envelope = %+v", env)
	}
	if g := env.Result.Counts["good"]; g <= 0 || g >= 200000 {
		t.Fatalf("good = %d, want interior", g)
	}
	y := env.Result.Values["yield"]
	if !(y > 0.2 && y < 0.35) { // exp(-1.3) ≈ 0.273
		t.Fatalf("yield = %v, want ≈ exp(-1.3)", y)
	}

	// Re-submitting the identical spec attaches to the tracked job: 200,
	// same id, and the result bytes are served verbatim.
	code2, _, body2 := do(t, s, "POST", "/v1/jobs", spec)
	if code2 != http.StatusOK || body2["id"] != id {
		t.Fatalf("resubmit = %d %v, want 200 with id %s", code2, body2, id)
	}
	_, _, raw2 := rawDo(t, s, "GET", "/v1/jobs/"+id+"/result", "")
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("result bytes changed across reads")
	}
}

func TestJobSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{}) // no JobDir: checkpoint requests must fail
	cases := []struct {
		name string
		body string
	}{
		{"unknown kind", `{"kind":"quantum","trials":10,"defect":{"lambda":1}}`},
		{"no spec", `{"kind":"defect","trials":10}`},
		{"two specs", `{"kind":"defect","trials":10,"defect":{"lambda":1},"wafermap":{"usable_radius_mm":30,"die_w_mm":5,"die_h_mm":5,"lambda":0.5}}`},
		{"kind spec mismatch", `{"kind":"wafermap","trials":10,"defect":{"lambda":1}}`},
		{"zero trials", `{"kind":"defect","trials":0,"defect":{"lambda":1}}`},
		{"oversized trials", `{"kind":"defect","trials":1e15,"defect":{"lambda":1}}`},
		{"negative shards", `{"kind":"defect","trials":10,"shards":-1,"defect":{"lambda":1}}`},
		{"bad lambda", `{"kind":"defect","trials":10,"defect":{"lambda":-2}}`},
		{"checkpoint without job dir", `{"kind":"defect","trials":10,"checkpoint":true,"defect":{"lambda":1}}`},
		{"bad dist kind", `{"kind":"montecarlo","trials":10,"montecarlo":{"scenario":` + validScenario + `,"yield":{"kind":"beta","lo":0,"hi":1}}}`},
		{"bad dist bounds", `{"kind":"montecarlo","trials":10,"montecarlo":{"scenario":` + validScenario + `,"sd":{"kind":"uniform","lo":400,"hi":300}}}`},
		{"unknown field", `{"kind":"defect","trials":10,"defect":{"lambda":1},"bogus":true}`},
		{"oversized wafermap lot", `{"kind":"wafermap","trials":100000000,"wafermap":{"usable_radius_mm":30,"die_w_mm":5,"die_h_mm":5,"lambda":0.5}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := do(t, s, "POST", "/v1/jobs", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %v)", code, body)
			}
			if got := errCode(t, body); got != "invalid_request" && got != "out_of_domain" {
				t.Fatalf("error code = %q", got)
			}
		})
	}
}

func TestJobUnknownID(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, req := range [][2]string{
		{"GET", "/v1/jobs/deadbeefdeadbeef"},
		{"GET", "/v1/jobs/deadbeefdeadbeef/result"},
		{"DELETE", "/v1/jobs/deadbeefdeadbeef"},
	} {
		code, _, body := do(t, s, req[0], req[1], "")
		if code != http.StatusNotFound || errCode(t, body) != "job_not_found" {
			t.Fatalf("%s %s = %d %v, want 404 job_not_found", req[0], req[1], code, body)
		}
	}
}

// TestJobCancelAndResultNotReady submits a job big enough to still be
// running at first poll, checks the 409 result race answer, cancels it,
// and verifies the terminal state.
func TestJobCancelAndResultNotReady(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := `{"kind":"defect","trials":4000000000,"seed":3,"defect":{"lambda":0.9}}`
	code, _, body := do(t, s, "POST", "/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %v", code, body)
	}
	id := body["id"].(string)

	rcode, _, rbody := do(t, s, "GET", "/v1/jobs/"+id+"/result", "")
	if rcode != http.StatusConflict || errCode(t, rbody) != "result_not_ready" {
		t.Fatalf("early result = %d %v, want 409 result_not_ready", rcode, rbody)
	}

	dcode, _, dbody := do(t, s, "DELETE", "/v1/jobs/"+id, "")
	if dcode != http.StatusOK {
		t.Fatalf("cancel = %d %v", dcode, dbody)
	}
	final := waitForJob(t, s, id)
	if final["state"] != "cancelled" {
		t.Fatalf("state after cancel = %v", final["state"])
	}
	rcode, _, rbody = do(t, s, "GET", "/v1/jobs/"+id+"/result", "")
	if rcode != http.StatusConflict || errCode(t, rbody) != "job_cancelled" {
		t.Fatalf("result after cancel = %d %v, want 409 job_cancelled", rcode, rbody)
	}
}

func TestJobSaturation(t *testing.T) {
	s := newTestServer(t, Config{MaxJobs: 1})
	big := `{"kind":"defect","trials":4000000000,"seed":11,"defect":{"lambda":0.7}}`
	code, _, body := do(t, s, "POST", "/v1/jobs", big)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d %v", code, body)
	}
	id := body["id"].(string)

	code2, hdr, body2 := do(t, s, "POST", "/v1/jobs", `{"kind":"defect","trials":1000,"seed":12,"defect":{"lambda":0.7}}`)
	if code2 != http.StatusTooManyRequests || errCode(t, body2) != "jobs_saturated" {
		t.Fatalf("saturated submit = %d %v, want 429 jobs_saturated", code2, body2)
	}
	_ = hdr

	// Re-submitting the running spec is not a new job and must still work.
	code3, _, body3 := do(t, s, "POST", "/v1/jobs", big)
	if code3 != http.StatusOK || body3["id"] != id {
		t.Fatalf("attach while saturated = %d %v", code3, body3)
	}
	if _, _, b := do(t, s, "DELETE", "/v1/jobs/"+id, ""); b["state"] == "running" {
		waitForJob(t, s, id)
	}
}

// TestJobCheckpointResumeByteIdentical is the serve-level half of the
// resume guarantee: a second server pointed at the same job dir resumes
// every shard from the checkpoint (drawing nothing) and serves a result
// byte-identical to the first run's.
func TestJobCheckpointResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := `{"kind":"defect","trials":300000,"shards":8,"seed":21,"checkpoint":true,"defect":{"lambda":1.1,"alpha":2}}`

	s1 := newTestServer(t, Config{JobDir: dir})
	_, _, body := do(t, s1, "POST", "/v1/jobs", spec)
	id := body["id"].(string)
	if st := waitForJob(t, s1, id)["state"]; st != "done" {
		t.Fatalf("first run state = %v", st)
	}
	_, _, raw1 := rawDo(t, s1, "GET", "/v1/jobs/"+id+"/result", "")
	s1.Close()

	s2 := newTestServer(t, Config{JobDir: dir})
	code, _, body2 := do(t, s2, "POST", "/v1/jobs", spec)
	if code != http.StatusAccepted || body2["id"] != id {
		t.Fatalf("resubmit on fresh server = %d %v", code, body2)
	}
	final := waitForJob(t, s2, id)
	if final["state"] != "done" {
		t.Fatalf("resumed state = %v (%v)", final["state"], final["error"])
	}
	if final["shards_resumed"] != float64(8) {
		t.Fatalf("shards_resumed = %v, want 8 (nothing redrawn)", final["shards_resumed"])
	}
	_, _, raw2 := rawDo(t, s2, "GET", "/v1/jobs/"+id+"/result", "")
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("resumed result differs:\n%s\n%s", raw1, raw2)
	}
}

// TestJobNDJSONProgressStream drives the streaming status variant: at
// least one progress line, terminating with the job's terminal state.
func TestJobNDJSONProgressStream(t *testing.T) {
	s := newTestServer(t, Config{})
	_, _, body := do(t, s, "POST", "/v1/jobs", `{"kind":"defect","trials":100000,"shards":2,"seed":5,"defect":{"lambda":1}}`)
	id := body["id"].(string)

	req := httptest.NewRequest("GET", "/v1/jobs/"+id, nil)
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 1 {
		t.Fatalf("no progress lines")
	}
	var last jobStatusJSON
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("last line %q: %v", lines[len(lines)-1], err)
	}
	if last.State != "done" || last.ID != id || last.ShardsDone != 2 {
		t.Fatalf("terminal stream line = %+v", last)
	}
	for _, l := range lines {
		var st jobStatusJSON
		if err := json.Unmarshal([]byte(l), &st); err != nil {
			t.Fatalf("stream line %q: %v", l, err)
		}
	}
}

// TestJobMontecarloAndWaferMapKinds smoke-runs the remaining job kinds
// through the HTTP surface.
func TestJobMontecarloAndWaferMapKinds(t *testing.T) {
	s := newTestServer(t, Config{})

	mc := `{"kind":"montecarlo","trials":20000,"seed":9,"montecarlo":{"scenario":` + validScenario +
		`,"yield":{"kind":"uniform","lo":0.3,"hi":0.6},"sd":{"kind":"uniform","lo":250,"hi":400}}}`
	_, _, body := do(t, s, "POST", "/v1/jobs", mc)
	final := waitForJob(t, s, body["id"].(string))
	if final["state"] != "done" {
		t.Fatalf("montecarlo job = %v (%v)", final["state"], final["error"])
	}
	_, _, raw := rawDo(t, s, "GET", "/v1/jobs/"+body["id"].(string)+"/result", "")
	var env struct {
		Result struct {
			Values map[string]float64 `json:"values"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Result.Values["mean"] <= 0 {
		t.Fatalf("montecarlo mean = %v", env.Result.Values["mean"])
	}

	wm := `{"kind":"wafermap","trials":25,"seed":4,"wafermap":{"usable_radius_mm":40,"die_w_mm":8,"die_h_mm":6,"lambda":0.6,"edge_factor":2}}`
	_, _, body = do(t, s, "POST", "/v1/jobs", wm)
	final = waitForJob(t, s, body["id"].(string))
	if final["state"] != "done" {
		t.Fatalf("wafermap job = %v (%v)", final["state"], final["error"])
	}
	if final["trials_done"] != float64(25) {
		t.Fatalf("wafermap trials_done = %v", final["trials_done"])
	}
}
