package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// doWithHeaders is do() plus request headers, for the tracing and
// request-id tests.
func doWithHeaders(t *testing.T, s *Server, method, target, body string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, target, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Result().Header, rec.Body.Bytes()
}

// TestTraceEndToEnd is the acceptance path of the tracing tentpole: a
// request carrying X-Trace-Id yields a span tree retrievable at
// /debug/trace/{id} containing the serve root, the core evaluation and
// the pool fan-out as descendants.
func TestTraceEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{})
	traceID := "e2e0123456789abcdef0123456789abc"
	batch := fmt.Sprintf(`{"items":[{"kind":"cost","body":%s},{"kind":"cost","body":%s}]}`,
		validScenario, validScenario)

	code, hdr, _ := doWithHeaders(t, s, "POST", "/v1/batch", batch,
		map[string]string{"X-Trace-Id": traceID})
	if code != http.StatusOK {
		t.Fatalf("batch status = %d", code)
	}
	if got := hdr.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("X-Trace-Id echoed as %q, want %q", got, traceID)
	}

	code, _, body := doWithHeaders(t, s, "GET", "/debug/trace/"+traceID, "", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d: %s", code, body)
	}
	var resp struct {
		TraceID string          `json:"trace_id"`
		Spans   []*obs.SpanTree `json:"spans"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("trace body: %v", err)
	}
	if resp.TraceID != traceID {
		t.Fatalf("trace_id = %q, want %q", resp.TraceID, traceID)
	}
	if len(resp.Spans) != 1 || resp.Spans[0].Name != "serve.request" {
		t.Fatalf("root spans = %+v, want one serve.request root", resp.Spans)
	}

	names := map[string]int{}
	var walk func(n *obs.SpanTree)
	walk = func(n *obs.SpanTree) {
		names[n.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(resp.Spans[0])
	for _, want := range []string{"serve.batch", "parallel.run", "core.eval"} {
		if names[want] == 0 {
			t.Errorf("trace tree missing %q span; got %v", want, names)
		}
	}
	if names["core.eval"] < 2 {
		t.Errorf("core.eval spans = %d, want one per batch item (2)", names["core.eval"])
	}
}

// TestTraceGeneratedWhenAbsent: without an incoming X-Trace-Id the server
// mints one, returns it, and the tree is still retrievable under it.
func TestTraceGeneratedWhenAbsent(t *testing.T) {
	s := newTestServer(t, Config{})
	code, hdr, _ := doWithHeaders(t, s, "POST", "/v1/cost", validScenario, nil)
	if code != http.StatusOK {
		t.Fatalf("cost status = %d", code)
	}
	traceID := hdr.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no X-Trace-Id on response to an untagged request")
	}
	code, _, body := doWithHeaders(t, s, "GET", "/debug/trace/"+traceID, "", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/trace/%s status = %d: %s", traceID, code, body)
	}
}

// TestTraceLookupUnknown404: unknown and garbage trace IDs answer 404 with
// the trace_not_found code, not a panic or a 500.
func TestTraceLookupUnknown404(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, id := range []string{"deadbeef", "no*such*id", "%22quoted%22"} {
		code, _, body := doWithHeaders(t, s, "GET", "/debug/trace/"+id, "", nil)
		if code != http.StatusNotFound {
			t.Fatalf("lookup %q status = %d, want 404", id, code)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("non-JSON 404 body: %s", body)
		}
		if got := errCode(t, out); got != "trace_not_found" {
			t.Fatalf("error code = %q, want trace_not_found", got)
		}
	}
}

// TestObservabilityRoutesNotTraced: scrapes and trace lookups must not
// fill the trace ring with records of themselves.
func TestObservabilityRoutesNotTraced(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/metrics", "/debug/trace/deadbeef"} {
		_, hdr, _ := doWithHeaders(t, s, "GET", path, "", nil)
		if got := hdr.Get("X-Trace-Id"); got != "" {
			t.Errorf("%s returned X-Trace-Id %q; observability routes must not be traced", path, got)
		}
	}
	if n := s.tracer.Len(); n != 0 {
		t.Errorf("trace ring holds %d traces after observability-only traffic, want 0", n)
	}
}

// TestRequestIDGeneratedAndInErrorBody is the satellite regression test:
// a request without X-Request-Id gets one generated, and a 4xx error
// envelope repeats exactly the header's value in error.request_id.
func TestRequestIDGeneratedAndInErrorBody(t *testing.T) {
	s := newTestServer(t, Config{})
	code, hdr, body := doWithHeaders(t, s, "POST", "/v1/cost", `{"bogus":`, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	reqID := hdr.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Request-Id generated for an untagged request")
	}
	var out struct {
		Error struct {
			Code      string `json:"code"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("error body: %v", err)
	}
	if out.Error.RequestID != reqID {
		t.Fatalf("body request_id = %q, header X-Request-Id = %q: must match", out.Error.RequestID, reqID)
	}
}

// TestRequestIDEchoed: a sane client-supplied X-Request-Id survives the
// round trip; a hostile one (header-injection characters) is replaced.
func TestRequestIDEchoed(t *testing.T) {
	s := newTestServer(t, Config{})
	_, hdr, _ := doWithHeaders(t, s, "GET", "/healthz", "",
		map[string]string{"X-Request-Id": "client-id_42"})
	if got := hdr.Get("X-Request-Id"); got != "client-id_42" {
		t.Fatalf("X-Request-Id = %q, want the echoed client id", got)
	}
	_, hdr, _ = doWithHeaders(t, s, "GET", "/healthz", "",
		map[string]string{"X-Request-Id": `evil"id with spaces`})
	got := hdr.Get("X-Request-Id")
	if got == "" || strings.ContainsAny(got, `" `) {
		t.Fatalf("hostile X-Request-Id not replaced: %q", got)
	}
}

// syncBuffer is a bytes.Buffer safe for the concurrent writes slog can
// issue.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSuffix(b.buf.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// accessLogLines filters a JSON log capture down to msg="request" records.
func accessLogLines(t *testing.T, buf *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range buf.Lines() {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == "request" {
			out = append(out, rec)
		}
	}
	return out
}

// TestAccessLogOneLinePerRequest: every request — buffered, erroring and
// NDJSON-streamed alike — emits exactly one structured access-log line,
// and the streamed response reports status 200, not the recorder's zero
// value (the statusRecorder satellite fix).
func TestAccessLogOneLinePerRequest(t *testing.T) {
	buf := &syncBuffer{}
	s := newTestServer(t, Config{Logger: slog.New(slog.NewJSONHandler(buf, nil))})

	// Buffered success.
	if code, _, _ := doWithHeaders(t, s, "POST", "/v1/cost", validScenario, nil); code != http.StatusOK {
		t.Fatalf("cost status = %d", code)
	}
	// Validation error.
	if code, _, _ := doWithHeaders(t, s, "POST", "/v1/cost", `{"bogus":true}`, nil); code != http.StatusBadRequest {
		t.Fatal("expected 400")
	}
	// NDJSON stream: the handler writes the body without ever calling
	// WriteHeader.
	sweep := fmt.Sprintf(`{"scenario":%s,"variable":"sd","lo":200,"hi":2000,"points":8}`, validScenario)
	code, _, _ := doWithHeaders(t, s, "POST", "/v1/sweep", sweep,
		map[string]string{"Accept": "application/x-ndjson"})
	if code != http.StatusOK {
		t.Fatalf("stream status = %d", code)
	}

	lines := accessLogLines(t, buf)
	if len(lines) != 3 {
		t.Fatalf("%d access-log lines for 3 requests, want exactly 3:\n%s",
			len(lines), strings.Join(buf.Lines(), "\n"))
	}
	for i, rec := range lines {
		for _, key := range []string{"method", "path", "route", "status", "bytes", "elapsed", "request_id"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("line %d missing %q: %v", i, key, rec)
			}
		}
	}
	if st, _ := lines[2]["status"].(float64); int(st) != http.StatusOK {
		t.Errorf("streamed request logged status %v, want 200 (statusRecorder normalization)", lines[2]["status"])
	}
	if route, _ := lines[2]["route"].(string); route != "/v1/sweep" {
		t.Errorf("streamed request logged route %q, want /v1/sweep", route)
	}
	if st, _ := lines[1]["status"].(float64); int(st) != http.StatusBadRequest {
		t.Errorf("error request logged status %v, want 400", lines[1]["status"])
	}
	if _, ok := lines[1]["error"]; !ok {
		t.Errorf("error request's log line carries no error attribute: %v", lines[1])
	}
}

// TestStreamedStatusMetricIs200: the per-route counter sees the
// normalized 200 for streamed responses, not code 0.
func TestStreamedStatusMetricIs200(t *testing.T) {
	s := newTestServer(t, Config{})
	sweep := fmt.Sprintf(`{"scenario":%s,"variable":"sd","lo":200,"hi":2000,"points":8}`, validScenario)
	code, _, _ := doWithHeaders(t, s, "POST", "/v1/sweep", sweep,
		map[string]string{"Accept": "application/x-ndjson"})
	if code != http.StatusOK {
		t.Fatalf("stream status = %d", code)
	}
	if n := s.metrics.requests.Value("/v1/sweep", "200"); n != 1 {
		t.Fatalf("requests{route=/v1/sweep,code=200} = %d, want 1", n)
	}
	if n := s.metrics.requests.Value("/v1/sweep", "0"); n != 0 {
		t.Fatalf("requests{route=/v1/sweep,code=0} = %d, want 0", n)
	}
}

// TestTraceConcurrentRequests exercises the trace ring and span recording
// under parallel traffic; run with -race this is the telemetry
// concurrency satellite.
func TestTraceConcurrentRequests(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 64})
	const n = 24
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("%032x", i+1)
			code, hdr, _ := doWithHeaders(t, s, "POST", "/v1/cost", validScenario,
				map[string]string{"X-Trace-Id": id})
			if code == http.StatusOK && hdr.Get("X-Trace-Id") == id {
				ids[i] = id
			}
		}(i)
	}
	wg.Wait()
	found := 0
	for _, id := range ids {
		if id == "" {
			continue
		}
		if code, _, _ := doWithHeaders(t, s, "GET", "/debug/trace/"+id, "", nil); code == http.StatusOK {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no concurrent trace retrievable from the ring")
	}
}
