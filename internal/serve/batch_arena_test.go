package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fullBatchPayload builds a /v1/batch request at the maxBatchItems cap,
// mixing all three item kinds plus a sprinkling of failing items so the
// scratch's error slots get exercised too.
func fullBatchPayload() string {
	kinds := make([]string, maxBatchItems)
	bodies := make([]string, maxBatchItems)
	for i := range kinds {
		switch i % 4 {
		case 0:
			kinds[i] = "cost"
			bodies[i] = scenarioWithSd(150 + float64(i%600))
		case 1:
			kinds[i] = "designcost"
			bodies[i] = fmt.Sprintf(`{"transistors":10e6,"sd":%d}`, 120+i%500)
		case 2:
			kinds[i] = "generalized"
			bodies[i] = `{"scenario":` + scenarioWithSd(250+float64(i%300)) + `,"yield_model":{"model":"murphy","d0":0.5}}`
		default:
			kinds[i] = "cost"
			bodies[i] = scenarioWithSd(90) // eq (6) pole -> per-item error
		}
	}
	return batchOf(kinds, bodies)
}

// TestBatchFullCapacityReusesScratch drives /v1/batch at the 1024-item
// cap several times through one server, so later rounds run on recycled
// scratch buffers. Every round must produce byte-identical output — any
// stale body, error or result leaking through the pool would show up
// here. scripts/check.sh also runs this test under -race, which is what
// makes the pool's concurrent Get/Put and the per-item writes into
// shared slices a checked contract rather than a hope.
func TestBatchFullCapacityReusesScratch(t *testing.T) {
	s := newTestServer(t, Config{})
	payload := fullBatchPayload()
	var first []byte
	for round := 0; round < 3; round++ {
		code, _, raw := rawDo(t, s, "POST", "/v1/batch", payload)
		if code != http.StatusOK {
			t.Fatalf("round %d: status %d\n%.400s", round, code, raw)
		}
		var resp struct {
			Count   int               `json:"count"`
			Results []batchItemResult `json:"results"`
		}
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if resp.Count != maxBatchItems || len(resp.Results) != maxBatchItems {
			t.Fatalf("round %d: count %d, %d results, want %d", round, resp.Count, len(resp.Results), maxBatchItems)
		}
		if round == 0 {
			first = raw
			continue
		}
		if !bytes.Equal(raw, first) {
			t.Fatalf("round %d response differs from round 0: scratch reuse leaked state", round)
		}
	}
}

// TestBatchConcurrentFullCapacity hammers the pooled path from several
// goroutines at once — the shape the sync.Pool exists for, and the test
// the -race gate leans on hardest.
func TestBatchConcurrentFullCapacity(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 8})
	payload := fullBatchPayload()
	_, _, want := rawDo(t, s, "POST", "/v1/batch", payload)
	const clients = 4
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func() {
			for i := 0; i < 3; i++ {
				req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(payload))
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("status %d", rec.Code)
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), want) {
					errc <- fmt.Errorf("iteration %d: response differs under concurrency", i)
					return
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < clients; g++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("concurrent batch clients did not finish")
		}
	}
}

// TestBatchScratchReleaseClearsReferences pins the memory contract of
// the pool: a parked scratch must not keep request payloads alive
// through its body, error or result slots.
func TestBatchScratchReleaseClearsReferences(t *testing.T) {
	b := new(batchScratch)
	b.grab(4)
	bodies := b.bodies[:4]
	for i := range bodies {
		bodies[i] = json.RawMessage(`{"x":1}`)
		b.errs[i] = fmt.Errorf("item %d", i)
	}
	b.results = append(b.results[:0],
		batchItemResult{Index: 0, Status: 200, Body: json.RawMessage(`{}`)},
		batchItemResult{Index: 1, Status: 400, Body: json.RawMessage(`{}`)},
	)
	b.buf.WriteString("stale response bytes")
	results := b.results[:cap(b.results)]
	b.release(4)
	for i := 0; i < 4; i++ {
		if bodies[i] != nil || b.errs[i] != nil {
			t.Fatalf("slot %d not cleared after release: body=%v err=%v", i, bodies[i], b.errs[i])
		}
	}
	for i := range results {
		if results[i].Body != nil {
			t.Fatalf("result %d body not cleared after release", i)
		}
	}
	if len(b.results) != 0 {
		t.Fatalf("results length %d after release, want 0", len(b.results))
	}
	if b.buf.Len() != 0 {
		t.Fatalf("encode buffer holds %d bytes after release, want 0", b.buf.Len())
	}
}

// BenchmarkBatch1024 measures /v1/batch at its item cap and reports
// evals/sec — the throughput number the benchmark gate tracks.
func BenchmarkBatch1024(b *testing.B) {
	s := NewServer(Config{Logger: discardLogger()})
	payload := fullBatchPayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(payload))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*maxBatchItems/secs, "evals/sec")
	}
}
