package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/mcjob"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// worker is the pull side of the distributed-job tier: one background
// loop per configured peer polls GET /v1/jobs/open, rebuilds each open
// job's kernel and shard evaluator from the advertised spec, leases
// shards, evaluates them locally, and uploads the chunk partials. The
// determinism contract does the heavy lifting — a rebuilt evaluator
// produces byte-identical partials, so the coordinator can fold uploads
// from any mix of replicas (or duplicates from reclaimed leases)
// without coordination beyond the lease table.
type worker struct {
	log     *slog.Logger
	metrics *metrics
	tracer  *obs.Tracer // optional; set by the server after construction
	owner   string
	peers   []string
	client  *http.Client
	poll    time.Duration  // base (minimum) per-peer poll sleep
	maxPoll time.Duration  // backoff cap: half the lease TTL
	jitter  func() float64 // uniform [0,1); a seam for deterministic tests
	slots   int

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	stopOnce sync.Once

	mu    sync.Mutex
	evals map[string]*mcjob.ShardEvaluator // by job id
}

// workerPollInterval is the base interval at which a worker re-polls
// each peer for open jobs; idle polls back off exponentially from here
// up to half the lease TTL. A var so tests can tighten the loop.
var workerPollInterval = 500 * time.Millisecond

// maxWorkerEvaluators bounds the per-job evaluator cache (wafer-map
// evaluators hold precomputed per-wafer state worth caching, but not
// without bound).
const maxWorkerEvaluators = 8

func newWorker(cfg Config, m *metrics, log *slog.Logger) *worker {
	ctx, cancel := context.WithCancel(context.Background())
	// The cap is TTL/2 so even a fully backed-off worker polls at least
	// twice per lease lifetime — an expired shard is re-leased before it
	// can expire a second time.
	maxPoll := cfg.LeaseTTL / 2
	if maxPoll <= 0 {
		maxPoll = workerPollInterval
	}
	return &worker{
		log:     log.With("worker", cfg.WorkerID),
		metrics: m,
		owner:   cfg.WorkerID,
		peers:   cfg.Peers,
		client:  &http.Client{Timeout: 30 * time.Second},
		poll:    min(workerPollInterval, maxPoll),
		maxPoll: maxPoll,
		jitter:  rand.Float64,
		slots:   max(1, parallel.DefaultWorkers()),
		ctx:     ctx, cancel: cancel,
		evals: map[string]*mcjob.ShardEvaluator{},
	}
}

// start launches one poll loop per peer.
func (w *worker) start() {
	for _, peer := range w.peers {
		w.wg.Add(1)
		go w.pollPeer(peer)
	}
}

// stop cancels the loops and waits for in-flight shard work to unwind.
func (w *worker) stop() {
	w.stopOnce.Do(func() {
		w.cancel()
		w.wg.Wait()
	})
}

func (w *worker) pollPeer(peer string) {
	defer w.wg.Done()
	sleep := w.poll
	for {
		d := w.jittered(sleep)
		w.metrics.workerPollSeconds.Observe(d.Seconds())
		select {
		case <-w.ctx.Done():
			return
		case <-time.After(d):
		}
		jobs, err := w.fetchOpen(peer)
		if err != nil {
			// The peer may be restarting or simply have no jobs; keep
			// polling quietly, but back off.
			w.log.Debug("peer poll failed", "peer", peer, "error", err)
			sleep = w.backoff(sleep)
			continue
		}
		acquired := false
		for _, oj := range jobs {
			if w.workJob(peer, oj) {
				acquired = true
			}
			if w.ctx.Err() != nil {
				return
			}
		}
		if acquired {
			// The peer had real work: reset to the base rate so follow-on
			// shards (and reclaimed leases) are picked up promptly.
			sleep = w.poll
		} else {
			sleep = w.backoff(sleep)
		}
	}
}

// backoff doubles an idle poll sleep up to half the lease TTL: a large
// idle fleet must not hammer its coordinators at the base rate, but
// every worker still polls at least twice per lease lifetime.
func (w *worker) backoff(cur time.Duration) time.Duration {
	next := cur * 2
	if next > w.maxPoll {
		next = w.maxPoll
	}
	if next < w.poll {
		next = w.poll
	}
	return next
}

// jittered spreads a sleep uniformly over [d/2, d) so fleet peers
// started together do not poll their coordinators in lockstep.
func (w *worker) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(w.jitter()*float64(d/2))
}

// jobTraceID is the deterministic trace id shared by every process that
// touches a job: the worker records its spans under it locally, and
// forwards it on lease/renew/partial calls so the coordinator's request
// spans land in the same trace. Returns "" when the job id cannot form a
// valid trace id.
func jobTraceID(jobID string) string {
	return obs.SanitizeID("job-" + jobID)
}

// workJob drains one open job: lease up to a slot's worth of shards,
// evaluate them concurrently while a heartbeat renews the leases, and
// upload each shard's partials as it completes. Returns when the
// coordinator stops granting leases (job finished, everything leased
// elsewhere, or the job vanished); the return value reports whether any
// lease was granted, which resets the peer's poll backoff.
func (w *worker) workJob(peer string, oj openJobJSON) (acquired bool) {
	eval, err := w.evaluator(oj)
	if err != nil {
		w.log.Warn("open job spec rejected", "peer", peer, "job", oj.ID, "error", err)
		return false
	}
	// All spans for this cycle live under one root in the job's
	// deterministic trace; outbound calls carry the trace id plus the
	// calling span's id, so the coordinator's serve.request spans parent
	// under the exact worker call that caused them.
	ctx := w.ctx
	var root *obs.Span
	if tid := jobTraceID(oj.ID); w.tracer != nil && tid != "" {
		ctx, root = w.tracer.StartRoot(w.ctx, tid, "worker.job")
		root.SetAttr("peer", peer)
		root.SetAttr("owner", w.owner)
		root.SetAttr("job", oj.ID)
		defer root.End()
	}
	for {
		if w.ctx.Err() != nil {
			return acquired
		}
		lctx, lspan := obs.StartSpan(ctx, "worker.lease")
		lr, err := w.lease(lctx, peer, oj.ID, w.slots)
		lspan.End()
		if err != nil {
			w.dropEvaluator(oj.ID)
			w.log.Debug("lease request failed", "peer", peer, "job", oj.ID, "error", err)
			return acquired
		}
		if len(lr.Leases) == 0 {
			if lr.State != "running" {
				w.dropEvaluator(oj.ID)
			}
			return acquired
		}
		acquired = true
		ttl := time.Duration(lr.TTLMS) * time.Millisecond
		if ttl <= 0 {
			ttl = 10 * time.Second
		}
		stopRenew := make(chan struct{})
		var renewWG sync.WaitGroup
		renewWG.Add(1)
		go func() {
			defer renewWG.Done()
			t := time.NewTicker(ttl / 3)
			defer t.Stop()
			for {
				select {
				case <-stopRenew:
					return
				case <-w.ctx.Done():
					return
				case <-t.C:
					rctx, rspan := obs.StartSpan(ctx, "worker.renew")
					if _, err := w.lease(rctx, peer, oj.ID, 0); err != nil {
						w.log.Debug("lease renewal failed", "peer", peer, "job", oj.ID, "error", err)
					}
					rspan.End()
				}
			}
		}()
		_ = parallel.ForEach(w.ctx, len(lr.Leases), w.slots, func(i int) error {
			s := lr.Leases[i].Shard
			sctx, sspan := obs.StartSpan(ctx, "worker.shard")
			sspan.SetAttr("shard", fmt.Sprintf("%d", s))
			defer sspan.End()
			start := time.Now()
			parts, err := eval.EvalShard(sctx, s)
			if err != nil {
				if w.ctx.Err() == nil {
					w.metrics.workerShards.With("failed").Inc()
					w.log.Warn("shard evaluation failed", "peer", peer, "job", oj.ID, "shard", s, "error", err)
				}
				return nil // keep the rest of the batch going
			}
			w.upload(sctx, peer, oj.ID, s, parts, time.Since(start).Seconds())
			return nil
		})
		close(stopRenew)
		renewWG.Wait()
	}
}

// evaluator returns the cached shard evaluator for an open job,
// rebuilding kernel and plan from the advertised spec on first sight.
func (w *worker) evaluator(oj openJobJSON) (*mcjob.ShardEvaluator, error) {
	w.mu.Lock()
	if e, ok := w.evals[oj.ID]; ok {
		w.mu.Unlock()
		return e, nil
	}
	w.mu.Unlock()

	var req jobRequest
	dec := json.NewDecoder(bytes.NewReader(oj.Spec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode spec: %w", err)
	}
	k, err := buildKernel(req)
	if err != nil {
		return nil, err
	}
	e, err := mcjob.NewShardEvaluator(k, mcjob.RunConfig{
		Trials: req.Trials, Shards: req.Shards, Seed: req.Seed,
	})
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	if len(w.evals) >= maxWorkerEvaluators {
		for id := range w.evals {
			delete(w.evals, id)
			break
		}
	}
	w.evals[oj.ID] = e
	w.mu.Unlock()
	return e, nil
}

func (w *worker) dropEvaluator(id string) {
	w.mu.Lock()
	delete(w.evals, id)
	w.mu.Unlock()
}

func (w *worker) fetchOpen(peer string) ([]openJobJSON, error) {
	var resp openJobsResponse
	if err := w.doJSON(w.ctx, http.MethodGet, "http://"+peer+"/v1/jobs/open", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// lease renews this worker's leases on the job and asks for up to max
// more shards (max 0 = heartbeat only).
func (w *worker) lease(ctx context.Context, peer, id string, max int) (leaseResponse, error) {
	var resp leaseResponse
	err := w.doJSON(ctx, http.MethodPost, "http://"+peer+"/v1/jobs/"+id+"/lease",
		leaseRequest{Owner: w.owner, Max: max}, &resp)
	return resp, err
}

// upload posts one computed shard. Both accepted and duplicate answers
// are success — a duplicate just means a reclaimed lease beat us to it.
func (w *worker) upload(ctx context.Context, peer, id string, shard int, parts []mcjob.Partial, seconds float64) {
	var resp partialsResponse
	err := w.doJSON(ctx, http.MethodPost, "http://"+peer+"/v1/jobs/"+id+"/partials",
		partialsRequest{Owner: w.owner, Shard: shard, Seconds: seconds, Chunks: parts}, &resp)
	switch {
	case err != nil:
		w.metrics.workerShards.With("failed").Inc()
		w.log.Warn("shard upload failed", "peer", peer, "job", id, "shard", shard, "error", err)
	case resp.Accepted:
		w.metrics.workerShards.With("uploaded").Inc()
	default:
		w.metrics.workerShards.With("duplicate").Inc()
	}
}

// doJSON is the worker's one HTTP shape: optional JSON body out, JSON
// body back, any non-2xx status an error carrying a body snippet. When
// ctx carries an active span, the trace id and the span's id are
// forwarded as X-Trace-Id / X-Parent-Span-Id so the peer's spans join
// this trace.
func (w *worker) doJSON(ctx context.Context, method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		req.Header.Set("X-Trace-Id", sp.TraceID())
		req.Header.Set("X-Parent-Span-Id", sp.SpanID())
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		snippet := data
		if len(snippet) > 200 {
			snippet = snippet[:200]
		}
		return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(snippet))
	}
	return json.Unmarshal(data, out)
}
