package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mcjob"
	"repro/internal/obs"
	"repro/internal/yield"
)

// maxTrackedJobs bounds the in-memory job table. Terminal jobs beyond
// the cap are evicted oldest-first; running jobs are never evicted.
const maxTrackedJobs = 64

// maxJobTrials bounds one job's trial count (10¹¹ ≈ a day of sharded
// compute); anything larger is a typo, not a plan.
const maxJobTrials int64 = 100_000_000_000

// maxWaferMapTrials bounds wafer-map lots: each trial simulates a whole
// wafer, and the per-wafer cluster scales are precomputed per lot.
const maxWaferMapTrials int64 = 10_000_000

// distJSON is the wire form of a core.Dist for job specs: exactly one
// of the three shapes, selected by kind.
type distJSON struct {
	Kind   string  `json:"kind"` // "fixed" | "uniform" | "lognormal"
	Value  float64 `json:"value,omitempty"`
	Lo     float64 `json:"lo,omitempty"`
	Hi     float64 `json:"hi,omitempty"`
	Median float64 `json:"median,omitempty"`
	Sigma  float64 `json:"sigma,omitempty"`
}

func (d *distJSON) toDist() (core.Dist, error) {
	if d == nil {
		return core.Dist{}, nil // unset: the scenario's point value
	}
	var dist core.Dist
	switch d.Kind {
	case "fixed":
		dist = core.Fixed(d.Value)
	case "uniform":
		dist = core.Uniform(d.Lo, d.Hi)
	case "lognormal":
		dist = core.LogNormal(d.Median, d.Sigma)
	default:
		return core.Dist{}, fmt.Errorf("unknown distribution kind %q (want fixed, uniform or lognormal)", d.Kind)
	}
	if err := dist.Validate(); err != nil {
		return core.Dist{}, err
	}
	return dist, nil
}

// mcJobSpecJSON is the montecarlo job kind's spec: the shared scenario
// shape plus optional input distributions.
type mcJobSpecJSON struct {
	Scenario scenarioJSON `json:"scenario"`
	Yield    *distJSON    `json:"yield,omitempty"`
	CmSq     *distJSON    `json:"cm_sq,omitempty"`
	Sd       *distJSON    `json:"sd,omitempty"`
	Wafers   *distJSON    `json:"wafers,omitempty"`
	MaskCost *distJSON    `json:"mask_cost,omitempty"`
}

// waferMapJobJSON is the wafermap job kind's spec; the lot size is the
// job's trial count.
type waferMapJobJSON struct {
	UsableRadiusMM float64 `json:"usable_radius_mm"`
	DieWMM         float64 `json:"die_w_mm"`
	DieHMM         float64 `json:"die_h_mm"`
	Lambda         float64 `json:"lambda"`
	EdgeFactor     float64 `json:"edge_factor,omitempty"`
	ClusterAlpha   float64 `json:"cluster_alpha,omitempty"`
}

// jobRequest is the POST /v1/jobs body: common run parameters plus
// exactly one kind-specific spec matching Kind.
type jobRequest struct {
	Kind         string                  `json:"kind"`
	Trials       int64                   `json:"trials"`
	Shards       int                     `json:"shards,omitempty"`
	Seed         uint64                  `json:"seed,omitempty"`
	Checkpoint   bool                    `json:"checkpoint,omitempty"`
	Defect       *mcjob.DefectSpec       `json:"defect,omitempty"`
	LayoutDefect *mcjob.LayoutDefectSpec `json:"layout_defect,omitempty"`
	MonteCarlo   *mcJobSpecJSON          `json:"montecarlo,omitempty"`
	WaferMap     *waferMapJobJSON        `json:"wafermap,omitempty"`
}

// buildKernel validates req and constructs its kernel. Every failure is
// a 400.
func buildKernel(req jobRequest) (mcjob.Kernel, error) {
	specs := 0
	for _, set := range []bool{req.Defect != nil, req.LayoutDefect != nil, req.MonteCarlo != nil, req.WaferMap != nil} {
		if set {
			specs++
		}
	}
	if specs != 1 {
		return nil, badRequest(fmt.Errorf("job must carry exactly one kind spec, got %d", specs))
	}
	if req.Trials <= 0 || req.Trials > maxJobTrials {
		return nil, badRequest(fmt.Errorf("trials must be in [1, %d], got %d", maxJobTrials, req.Trials))
	}
	if req.Shards < 0 || req.Shards > 1<<20 {
		return nil, badRequest(fmt.Errorf("shards must be in [0, %d], got %d", 1<<20, req.Shards))
	}
	var (
		k   mcjob.Kernel
		err error
	)
	switch {
	case req.Kind == "defect" && req.Defect != nil:
		k, err = mcjob.NewDefectKernel(*req.Defect)
	case req.Kind == "layoutdefect" && req.LayoutDefect != nil:
		k, err = mcjob.NewLayoutDefectKernel(*req.LayoutDefect)
	case req.Kind == "montecarlo" && req.MonteCarlo != nil:
		k, err = buildCostKernel(*req.MonteCarlo)
	case req.Kind == "wafermap" && req.WaferMap != nil:
		if req.Trials > maxWaferMapTrials {
			return nil, badRequest(fmt.Errorf("wafermap trials (wafers) must be at most %d, got %d", maxWaferMapTrials, req.Trials))
		}
		w := *req.WaferMap
		k, err = mcjob.NewWaferMapKernel(yield.WaferMapConfig{
			UsableRadiusMM: w.UsableRadiusMM, DieWMM: w.DieWMM, DieHMM: w.DieHMM,
			Lambda: w.Lambda, EdgeFactor: w.EdgeFactor, ClusterAlpha: w.ClusterAlpha,
			Wafers: int(req.Trials), Seed: req.Seed,
		})
	default:
		return nil, badRequest(fmt.Errorf("kind %q does not match the supplied spec (want defect, layoutdefect, montecarlo or wafermap)", req.Kind))
	}
	if err != nil {
		return nil, badRequest(err)
	}
	return k, nil
}

func buildCostKernel(spec mcJobSpecJSON) (mcjob.Kernel, error) {
	base, err := spec.Scenario.toScenario()
	if err != nil {
		return nil, err
	}
	u := core.UncertainScenario{Base: base}
	for _, bind := range []struct {
		src *distJSON
		dst *core.Dist
	}{
		{spec.Yield, &u.Yield}, {spec.CmSq, &u.CmSq}, {spec.Sd, &u.Sd},
		{spec.Wafers, &u.Wafers}, {spec.MaskCost, &u.MaskCost},
	} {
		d, err := bind.src.toDist()
		if err != nil {
			return nil, badRequest(err)
		}
		*bind.dst = d
	}
	return mcjob.NewCostKernel(u)
}

// canonicalJobSpec is the identity-bearing form of a job request:
// every field that determines the run, with defaults resolved and no
// omitempty on the run parameters, marshaled in fixed struct-field
// order. Hashing the raw jobRequest instead used to give semantically
// identical submits different IDs — `"shards":64` versus an omitted
// shard count that resolves to 64, or an explicit `"seed":0` versus no
// seed — so equivalent resubmits missed the dedupe table and, worse, a
// restarted daemon failed to find the checkpoint directory the
// equivalent first submit had been writing.
type canonicalJobSpec struct {
	Kind       string `json:"kind"`
	Trials     int64  `json:"trials"`
	Shards     int    `json:"shards"` // resolved: default applied, clamped to the chunk count
	Seed       uint64 `json:"seed"`
	Checkpoint bool   `json:"checkpoint"`

	Defect       *mcjob.DefectSpec       `json:"defect,omitempty"`
	LayoutDefect *mcjob.LayoutDefectSpec `json:"layout_defect,omitempty"`
	MonteCarlo   *mcJobSpecJSON          `json:"montecarlo,omitempty"`
	WaferMap     *waferMapJobJSON        `json:"wafermap,omitempty"`
}

// jobID derives the job's identity from the canonical spec — defaults
// applied (the shard count is normalized through the same plan logic
// Run uses, which needs the kernel's unit-chunk size), stable field
// order — so the same effective job always maps to the same ID. That is
// what makes submits idempotent and lets a restarted daemon resume a
// checkpointed job when the client re-submits any equivalent spelling
// of the spec. Returns (short id, full spec hash).
func jobID(req jobRequest, k mcjob.Kernel) (string, string) {
	spec := canonicalJobSpec{
		Kind:       req.Kind,
		Trials:     req.Trials,
		Shards:     mcjob.NormalizedShards(k.ChunkTrials(), req.Trials, req.Shards),
		Seed:       req.Seed,
		Checkpoint: req.Checkpoint,

		Defect:       req.Defect,
		LayoutDefect: req.LayoutDefect,
		MonteCarlo:   req.MonteCarlo,
		WaferMap:     req.WaferMap,
	}
	canonical, err := json.Marshal(spec)
	if err != nil {
		// Unreachable: the spec is plain data. Fall back to an empty
		// hash rather than panicking in a handler.
		canonical = nil
	}
	sum := sha256.Sum256(canonical)
	full := hex.EncodeToString(sum[:])
	return full[:16], full
}

// job is one tracked simulation job.
type job struct {
	id         string
	kind       string
	trials     int64
	checkpoint bool
	done       chan struct{}
	cancel     context.CancelFunc
	// coord is non-nil for distributed jobs: the lease/partials handlers
	// feed remote shard uploads into it. specJSON is the submitted
	// jobRequest, re-served at /v1/jobs/open so workers can rebuild the
	// kernel and evaluator from the spec alone.
	coord    *mcjob.Coordinator
	specJSON json.RawMessage
	// events is the job's lifecycle timeline, served at
	// /v1/jobs/{id}/events and journaled beside the shard log when the
	// job checkpoints.
	events *mcjob.EventLog

	mu          sync.Mutex
	state       string // "running" | "done" | "failed" | "cancelled"
	prog        mcjob.Progress
	started     time.Time
	finished    time.Time
	resultBytes []byte
	errMsg      string
}

// resultEnvelope is the GET /v1/jobs/{id}/result body. It contains no
// timing, so for a fixed spec the bytes are identical across runs,
// restarts and resumes.
type resultEnvelope struct {
	ID     string       `json:"id"`
	Kind   string       `json:"kind"`
	Result mcjob.Result `json:"result"`
}

// jobStatusJSON is the GET /v1/jobs/{id} body and the NDJSON progress
// stream's line shape.
type jobStatusJSON struct {
	ID            string  `json:"id"`
	Kind          string  `json:"kind"`
	State         string  `json:"state"`
	Trials        int64   `json:"trials"`
	TrialsDone    int64   `json:"trials_done"`
	Shards        int     `json:"shards"`
	ShardsDone    int     `json:"shards_done"`
	ShardsResumed int     `json:"shards_resumed,omitempty"`
	Checkpoint    bool    `json:"checkpoint,omitempty"`
	Distributed   bool    `json:"distributed,omitempty"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	TrialsPerSec  float64 `json:"trials_per_sec,omitempty"`
	EtaSec        float64 `json:"eta_sec,omitempty"`
	Error         string  `json:"error,omitempty"`
	ResultURL     string  `json:"result_url,omitempty"`
}

// status renders a point-in-time snapshot. Rates count only trials
// evaluated by this process — resumed shards were paid for by a
// previous run and would otherwise inflate trials/sec and collapse the
// ETA.
func (j *job) status() jobStatusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	elapsed := end.Sub(j.started).Seconds()
	st := jobStatusJSON{
		ID: j.id, Kind: j.kind, State: j.state,
		Trials: j.trials, TrialsDone: j.prog.TrialsDone,
		Shards: j.prog.Shards, ShardsDone: j.prog.ShardsDone,
		ShardsResumed: j.prog.ShardsResumed,
		Checkpoint:    j.checkpoint,
		Distributed:   j.coord != nil,
		ElapsedSec:    elapsed,
		Error:         j.errMsg,
	}
	if live := j.prog.TrialsDone - j.prog.TrialsResumed; live > 0 && elapsed > 0 {
		st.TrialsPerSec = float64(live) / elapsed
		if j.state == "running" {
			st.EtaSec = float64(j.trials-j.prog.TrialsDone) / st.TrialsPerSec
		}
	}
	if j.state == "done" {
		st.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return st
}

// terminal reports whether the job has finished (in any way).
func (j *job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// jobManager owns the job table and the background runners. It is
// created with the server and drained after the HTTP listener.
type jobManager struct {
	log        *slog.Logger
	metrics    *metrics
	tracer     *obs.Tracer // optional; set by the server after construction
	dir        string
	maxRunning int
	// distribute runs every job through a lease-granting Coordinator so
	// peer replicas can pull shards; owner names this replica's local
	// worker in the lease table, leaseTTL is the shard-lease lifetime and
	// localWorkers sizes the in-process worker loop (-1 disables local
	// evaluation entirely — a pure coordinator).
	distribute   bool
	owner        string
	leaseTTL     time.Duration
	localWorkers int

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
	stopOnce  sync.Once

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // insertion order, for eviction
	running int
}

func newJobManager(cfg Config, m *metrics, log *slog.Logger) *jobManager {
	ctx, cancel := context.WithCancel(context.Background())
	return &jobManager{
		log: log, metrics: m, dir: cfg.JobDir, maxRunning: cfg.MaxJobs,
		distribute:   cfg.DistributeJobs,
		owner:        cfg.WorkerID,
		leaseTTL:     cfg.LeaseTTL,
		localWorkers: cfg.JobWorkers,
		baseCtx:      ctx, cancelAll: cancel,
		jobs: map[string]*job{},
	}
}

// startOrAttach returns the job for req, creating and starting it if it
// is not already tracked. The bool reports whether a new job was
// created.
func (m *jobManager) startOrAttach(req jobRequest) (*job, bool, error) {
	if req.Checkpoint && m.dir == "" {
		return nil, false, badRequest(fmt.Errorf("checkpointing requires the daemon to run with -job-dir"))
	}
	k, err := buildKernel(req)
	if err != nil {
		return nil, false, err
	}
	id, specHash := jobID(req, k)

	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.jobs[id]; ok {
		return existing, false, nil
	}
	if m.running >= m.maxRunning {
		return nil, false, &apiError{status: http.StatusTooManyRequests, code: "jobs_saturated",
			err: fmt.Errorf("server at its %d-job concurrency limit", m.maxRunning)}
	}
	if err := m.baseCtx.Err(); err != nil {
		return nil, false, fmt.Errorf("job manager shutting down")
	}

	runCtx, cancel := context.WithCancel(m.baseCtx)
	j := &job{
		id: id, kind: k.Kind(), trials: req.Trials,
		checkpoint: req.Checkpoint,
		done:       make(chan struct{}),
		cancel:     cancel,
		state:      "running",
		started:    time.Now(),
		events:     mcjob.NewEventLog(0),
	}
	distributed := m.distribute
	cfg := mcjob.RunConfig{
		Trials: req.Trials, Shards: req.Shards, Seed: req.Seed,
		SpecHash: specHash,
		OnProgress: func(p mcjob.Progress) {
			j.mu.Lock()
			j.prog = p
			elapsed := time.Since(j.started).Seconds()
			j.mu.Unlock()
			if p.LastShard >= 0 {
				m.metrics.jobShardSeconds.Observe(p.LastShardSeconds)
				if !distributed {
					// Distributed runs get per-shard events from the
					// coordinator itself; local runs record merges here.
					j.events.Append(mcjob.EventShardMerged, p.LastShard, m.owner, "")
				}
			}
			if live := p.TrialsDone - p.TrialsResumed; live > 0 && elapsed > 0 {
				m.metrics.jobTrialsPerSec.Set(float64(live) / elapsed)
			}
		},
	}
	if req.Checkpoint {
		cfg.CheckpointDir = filepath.Join(m.dir, id)
		// The journal rides beside the shard log. Best-effort: a journal
		// that cannot open costs explanation, not correctness.
		if err := j.events.Journal(filepath.Join(cfg.CheckpointDir, "events.ndjson")); err != nil {
			m.log.Warn("event journal unavailable", "job_id", id, "error", err)
		}
	}
	j.events.Append(mcjob.EventSubmitted, -1, "",
		fmt.Sprintf("kind=%s trials=%d", k.Kind(), req.Trials))

	if m.distribute {
		coord, err := mcjob.NewCoordinator(k, cfg, mcjob.CoordinatorConfig{LeaseTTL: m.leaseTTL, Events: j.events})
		if err != nil {
			cancel()
			j.events.Close()
			if errors.Is(err, mcjob.ErrCheckpointMismatch) {
				return nil, false, &apiError{status: http.StatusConflict, code: "checkpoint_mismatch", err: err}
			}
			return nil, false, err
		}
		j.coord = coord
		if spec, err := json.Marshal(req); err == nil {
			j.specJSON = spec
		}
	}

	m.jobs[id] = j
	m.order = append(m.order, id)
	m.evictLocked()
	m.running++
	m.metrics.jobsTotal.With("submitted").Inc()
	m.wg.Add(1)
	if j.coord != nil {
		go m.runDistributed(runCtx, j)
	} else {
		go m.run(runCtx, j, k, cfg)
	}
	return j, true, nil
}

// traceJob opens the job's root span in the replica's tracer under the
// deterministic "job-<id>" trace, so background job work is retrievable
// at /debug/trace/job-<id> (and federates with worker-side spans
// recorded under the same trace id). Returns ctx unchanged when tracing
// is unavailable.
func (m *jobManager) traceJob(ctx context.Context, j *job) (context.Context, *obs.Span) {
	tid := obs.SanitizeID("job-" + j.id)
	if m.tracer == nil || tid == "" {
		return ctx, nil
	}
	ctx, sp := m.tracer.StartRoot(ctx, tid, "job.run")
	sp.SetAttr("job", j.id)
	sp.SetAttr("kind", j.kind)
	return ctx, sp
}

// run executes the job to a terminal state.
func (m *jobManager) run(ctx context.Context, j *job, k mcjob.Kernel, cfg mcjob.RunConfig) {
	defer m.wg.Done()
	defer close(j.done)
	ctx, span := m.traceJob(ctx, j)
	defer span.End()
	var (
		res    mcjob.Result
		runErr error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				runErr = fmt.Errorf("job panicked: %v", r)
			}
		}()
		res, runErr = mcjob.Run(ctx, k, cfg)
	}()
	m.finishJob(j, res, runErr)
}

// runDistributed drives a coordinator-owned job: this replica's local
// workers participate through the same lease protocol remote replicas
// use over HTTP, so the job finishes when the canonical fold covers
// every shard no matter who computed what. A local evaluation error
// fails the job (shard errors are deterministic — every replica would
// hit the same one).
func (m *jobManager) runDistributed(ctx context.Context, j *job) {
	defer m.wg.Done()
	defer close(j.done)
	defer j.coord.Close()
	ctx, span := m.traceJob(ctx, j)
	defer span.End()
	var (
		res    mcjob.Result
		runErr error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				runErr = fmt.Errorf("job panicked: %v", r)
			}
		}()
		if m.localWorkers < 0 {
			// Pure coordinator: merge remote uploads only.
			select {
			case <-j.coord.Done():
			case <-ctx.Done():
				runErr = ctx.Err()
			}
		} else {
			runErr = j.coord.RunLocal(ctx, m.owner, m.localWorkers)
		}
		if runErr == nil {
			var ok bool
			res, ok = j.coord.Result()
			if !ok {
				runErr = fmt.Errorf("coordinator stopped before the fold completed")
			}
		}
	}()
	m.finishJob(j, res, runErr)
}

// finishJob records a run's terminal state, result bytes and metrics.
func (m *jobManager) finishJob(j *job, res mcjob.Result, runErr error) {
	j.mu.Lock()
	j.finished = time.Now()
	state := "done"
	switch {
	case runErr == nil:
		body, err := json.Marshal(resultEnvelope{ID: j.id, Kind: j.kind, Result: res})
		if err != nil {
			state, j.errMsg = "failed", fmt.Sprintf("encode result: %v", err)
		} else {
			j.resultBytes = append(body, '\n')
		}
	case errors.Is(runErr, context.Canceled):
		state, j.errMsg = "cancelled", "job cancelled"
	default:
		state, j.errMsg = "failed", runErr.Error()
	}
	j.state = state
	errMsg := j.errMsg
	elapsed := j.finished.Sub(j.started)
	j.mu.Unlock()

	switch state {
	case "done":
		j.events.Append(mcjob.EventCompleted, -1, "", "")
	case "cancelled":
		j.events.Append(mcjob.EventCancelled, -1, "", "")
	default:
		j.events.Append(mcjob.EventFailed, -1, "", errMsg)
	}
	j.events.Close()

	m.mu.Lock()
	m.running--
	m.mu.Unlock()
	switch state {
	case "done":
		m.metrics.jobsTotal.With("completed").Inc()
	case "cancelled":
		m.metrics.jobsTotal.With("cancelled").Inc()
	default:
		m.metrics.jobsTotal.With("failed").Inc()
	}
	m.log.Info("job finished", "job_id", j.id, "kind", j.kind, "state", state,
		"trials", j.trials, "elapsed", elapsed)
}

// get returns the tracked job, or nil.
func (m *jobManager) get(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// evictLocked drops the oldest terminal jobs beyond maxTrackedJobs.
// Callers hold m.mu.
func (m *jobManager) evictLocked() {
	if len(m.order) <= maxTrackedJobs {
		return
	}
	kept := m.order[:0]
	excess := len(m.order) - maxTrackedJobs
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && j != nil && j.terminal() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// shutdown cancels every running job and waits (bounded) for the
// runners to exit. Idempotent.
func (m *jobManager) shutdown(timeout time.Duration) {
	m.stopOnce.Do(func() {
		m.cancelAll()
		done := make(chan struct{})
		go func() { m.wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(timeout):
			m.log.Warn("job manager shutdown timed out with jobs still running")
		}
	})
}

// ---------------------------------------------------------------------------
// HTTP handlers

// handleJobSubmit accepts a job spec, starts (or attaches to) the job,
// and answers 202 for a newly created job, 200 for an already-tracked
// one — both with the job's current status snapshot.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) (any, error) {
	req, err := decodeJSON[jobRequest](r)
	if err != nil {
		return nil, err
	}
	j, created, err := s.jobs.startOrAttach(req)
	if err != nil {
		return nil, err
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, j.status())
	return wroteResponse{}, nil
}

// handleJobStatus answers one status snapshot, or — with
// "Accept: application/x-ndjson" — streams a snapshot per completed
// shard (coalesced to poll ticks) until the job reaches a terminal
// state, the request deadline passes, or the client leaves.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) (any, error) {
	j := s.jobs.get(trimmedPathValue(r, "id"))
	if j == nil {
		return nil, jobNotFound(r)
	}
	if !wantsNDJSON(r) {
		return j.status(), nil
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	write := func() error {
		st := j.status()
		if err := enc.Encode(st); err != nil {
			return err
		}
		flush(w)
		return nil
	}
	if err := write(); err != nil {
		return wroteResponse{}, nil
	}
	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-j.done:
			write()
			return wroteResponse{}, nil
		case <-r.Context().Done():
			return wroteResponse{}, nil
		case <-ticker.C:
			if err := write(); err != nil {
				return wroteResponse{}, nil
			}
		}
	}
}

// handleJobResult serves the stored result bytes verbatim: for a fixed
// spec the body is byte-identical across runs and resumes.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) (any, error) {
	j := s.jobs.get(trimmedPathValue(r, "id"))
	if j == nil {
		return nil, jobNotFound(r)
	}
	j.mu.Lock()
	state, body := j.state, j.resultBytes
	errMsg := j.errMsg
	j.mu.Unlock()
	switch state {
	case "done":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return wroteResponse{}, nil
	case "running":
		return nil, &apiError{status: http.StatusConflict, code: "result_not_ready",
			err: fmt.Errorf("job %s is still running", j.id)}
	default:
		return nil, &apiError{status: http.StatusConflict, code: "job_" + state,
			err: fmt.Errorf("job %s %s: %s", j.id, state, errMsg)}
	}
}

// handleJobCancel requests cancellation and answers the status after
// the job settles (bounded wait; a slow shard may still be unwinding).
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) (any, error) {
	j := s.jobs.get(trimmedPathValue(r, "id"))
	if j == nil {
		return nil, jobNotFound(r)
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	cancel()
	select {
	case <-j.done:
	case <-time.After(2 * time.Second):
	case <-r.Context().Done():
	}
	return j.status(), nil
}

// jobEventsJSON is the GET /v1/jobs/{id}/events body: the retained
// lifecycle timeline, oldest first.
type jobEventsJSON struct {
	ID            string        `json:"id"`
	State         string        `json:"state"`
	DroppedEvents int64         `json:"dropped_events,omitempty"`
	Events        []mcjob.Event `json:"events"`
}

// handleJobEvents serves a job's lifecycle timeline: a JSON snapshot, or
// — with "Accept: application/x-ndjson" — a live stream that replays the
// retained ring and then follows new events until the job reaches a
// terminal state (the stream's last line is the terminal event), the
// request deadline passes, or the client leaves.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) (any, error) {
	j := s.jobs.get(trimmedPathValue(r, "id"))
	if j == nil {
		return nil, jobNotFound(r)
	}
	if !wantsNDJSON(r) {
		evs, dropped := j.events.Snapshot(0)
		if evs == nil {
			evs = []mcjob.Event{}
		}
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		return jobEventsJSON{ID: j.id, State: state, DroppedEvents: dropped, Events: evs}, nil
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	var last int64
	emit := func() error {
		evs, _ := j.events.Snapshot(last)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return err
			}
			last = ev.Seq
		}
		if len(evs) > 0 {
			flush(w)
		}
		return nil
	}
	if err := emit(); err != nil {
		return wroteResponse{}, nil
	}
	for {
		// Grab the change channel before re-checking terminality so an
		// append between emit and select cannot be missed.
		ch := j.events.Changed()
		select {
		case <-j.done:
			emit()
			return wroteResponse{}, nil
		case <-r.Context().Done():
			return wroteResponse{}, nil
		case <-ch:
			if err := emit(); err != nil {
				return wroteResponse{}, nil
			}
		}
	}
}

func jobNotFound(r *http.Request) *apiError {
	return &apiError{status: http.StatusNotFound, code: "job_not_found",
		err: fmt.Errorf("no tracked job %q", trimmedPathValue(r, "id"))}
}
