package serve

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestReadyzTracksLifecycle walks the state machine by hand and checks
// the probe split: /healthz stays 200 in every state (liveness), while
// /readyz answers 200 only in ready and 503 + Retry-After elsewhere.
func TestReadyzTracksLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})

	code, hdr, body := do(t, s, "GET", "/readyz", "")
	if code != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("starting readyz = %d %v, want 503 starting", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("not-ready readyz carries no Retry-After")
	}
	if code, _, body := do(t, s, "GET", "/healthz", ""); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("starting healthz = %d %v, want 200 ok", code, body)
	}

	s.MarkReady()
	if code, _, body := do(t, s, "GET", "/readyz", ""); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("ready readyz = %d %v, want 200 ready", code, body)
	}

	s.advanceState(lifecycleDraining)
	if code, _, body := do(t, s, "GET", "/readyz", ""); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining readyz = %d %v, want 503 draining", code, body)
	}
	if code, _, body := do(t, s, "GET", "/healthz", ""); code != http.StatusOK || body["state"] != "draining" {
		t.Fatalf("draining healthz = %d %v, want 200 with state", code, body)
	}
}

// TestLifecycleIsMonotonic pins the forward-only guarantee: once a
// server drains, a stray MarkReady cannot resurrect it.
func TestLifecycleIsMonotonic(t *testing.T) {
	s := newTestServer(t, Config{})
	if !s.advanceState(lifecycleReady) || !s.advanceState(lifecycleDraining) {
		t.Fatal("forward transitions refused")
	}
	s.MarkReady()
	if got := s.Lifecycle(); got != "draining" {
		t.Fatalf("MarkReady moved a draining server to %q", got)
	}
	if s.advanceState(lifecycleReady) {
		t.Fatal("backward transition reported success")
	}
	if !s.advanceState(lifecycleStopped) {
		t.Fatal("draining → stopped refused")
	}
}

// TestServeDrivesLifecycle runs a real listener through its whole life:
// ready once the listener is up, stopped after the drain completes.
func TestServeDrivesLifecycle(t *testing.T) {
	s := newTestServer(t, Config{ShutdownTimeout: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	deadline := time.Now().Add(5 * time.Second)
	for s.Lifecycle() != "ready" {
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready (state %s)", s.Lifecycle())
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get("http://" + s.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live readyz = %d, want 200", resp.StatusCode)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := s.Lifecycle(); got != "stopped" {
		t.Fatalf("post-drain state = %q, want stopped", got)
	}
}
