package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/memo"
)

// TestFigureSnapshotWarmRestart drives the warm-restart path the daemon
// uses: generate a figure, snapshot the memo state, purge (a "restart"),
// load the snapshot — the next fetch must serve byte-identical bytes and
// a working ETag without regenerating anything.
func TestFigureSnapshotWarmRestart(t *testing.T) {
	s := newTestServer(t, Config{})
	code, hdr, body := rawDo(t, s, "GET", "/v1/figures/1", "")
	if code != http.StatusOK {
		t.Fatalf("figure fetch = %d %s", code, body)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("figure response carries no ETag")
	}

	path := filepath.Join(t.TempDir(), "memo.snapshot")
	if _, err := memo.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	figureCache.Purge()
	st, err := memo.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries == 0 {
		t.Fatalf("load restored nothing: %+v", st)
	}

	before := figureCache.Stats()
	code2, hdr2, body2 := rawDo(t, s, "GET", "/v1/figures/1", "")
	if code2 != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("restored figure differs: %d\n%s\n%s", code2, body, body2)
	}
	if hdr2.Get("ETag") != etag {
		t.Fatalf("restored ETag %q != original %q", hdr2.Get("ETag"), etag)
	}
	after := figureCache.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("restored fetch was not a cache hit (hits %d → %d)", before.Hits, after.Hits)
	}

	// The recomputed tag must still revalidate: If-None-Match → 304.
	req := httptest.NewRequest("GET", "/v1/figures/1", nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match after restore = %d, want 304", rec.Code)
	}
}
